// Table 6 — the ensemble test: performance degradation when eight
// concurrent 4-processor copies of a 12-day T42L18 CCM2 run occupy all 32
// processors, relative to a single 4-processor copy on a quiet system.
//
// Paper: "The relative degradation of the job is only 1.89%."

#include <cstdio>
#include <iostream>

#include "ccm2/model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("table6_ensemble", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);

  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  ccm2::Ccm2 model(c, node);

  // Both cases need timing only, so they replay the charge sequence
  // (bit-identical seconds, see Ccm2::charge_step) without integrating the
  // dycore. Single instance: one 4-CPU job, quiet node.
  node.reset();
  const double quiet_step = model.measure_charge_seconds(4, 3);

  // Multiple instances: the same job while 7 other 4-CPU copies keep the
  // remaining 28 processors hitting the same memory banks.
  node.reset();
  node.set_external_active_cpus(28);
  const double loaded_step = model.measure_charge_seconds(4, 3);
  node.set_external_active_cpus(0);

  const double steps = 12.0 * model.config().res.steps_per_day();
  const double single = quiet_step * steps;
  const double multi = loaded_step * steps;
  const double degradation = 100.0 * (multi / single - 1.0);

  print_banner(std::cout, "Table 6: ensemble test (12-day T42L18, 4 CPUs/job)");
  Table t({"Case", "Wall clock", "Degradation"});
  t.add_row({"single instance (1 x 4 CPUs)", format_duration(single), "-"});
  t.add_row({"eight instances (8 x 4 CPUs)", format_duration(multi),
             format_fixed(degradation, 2) + "%"});
  t.print(std::cout);

  rep.metric("table6.single_instance_seconds", single, "s");
  rep.metric("table6.eight_instance_seconds", multi, "s");
  rep.expect("table6.degradation_percent", degradation,
             bench::Band::relative(1.89, 0.25),
             "paper Table 6: the relative degradation is only 1.89%", "%");

  std::printf("\ndegradation: %.2f%% (paper: 1.89%%)\n", degradation);
  std::printf("small-percent degradation reproduced: %s\n",
              degradation > 0.5 && degradation < 4.0 ? "yes" : "NO");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  return rep.finish(std::cout);
}
