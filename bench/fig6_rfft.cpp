// Figure 6 — RFFT ("scalar"-style FFT) on the SX-4/1, Mflops vs FFT length
// for the three length families (2^n, 3*2^n, 5*2^n), constant total work
// (~10^6 elements), KTRIES = 20.
//
// Paper-shape constraints: performance roughly an order of magnitude below
// VFFT (Figure 7) at comparable lengths, growing modestly with N.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fft/style_bench.hpp"
#include "harness/reporter.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("fig6_rfft", argc, argv);
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  sxs::Cpu& cpu = node.cpu(0);

  print_banner(std::cout, "Figure 6: RFFT (scalar style), SX-4/1, Mflops");

  Table t({"N", "M", "Family", "Mflops", "verified"});
  bool all_ok = true;
  double best = 0;
  for (auto [n, m] : fft::rfft_schedule()) {
    const auto p = fft::run_rfft(cpu, n, m, 20);
    const char* family = (n % 5 == 0) ? "5*2^n" : (n % 3 == 0) ? "3*2^n" : "2^n";
    t.add_row({std::to_string(p.n), std::to_string(p.m), family,
               format_fixed(p.mflops, 1), p.verified ? "yes" : "NO"});
    all_ok = all_ok && p.verified;
    best = std::max(best, p.mflops);
    rep.metric("fig6.rfft.mflops@N=" + std::to_string(p.n), p.mflops,
               "Mflops");
  }
  t.print(std::cout);

  rep.expect_true("fig6.numerics_verified", all_ok,
                  "every transform checked against the naive DFT");
  rep.expect("fig6.rfft.peak_mflops", best, bench::Band::range(50.0, 400.0),
             "paper Fig 6 prose: O(100) Mflops, an order below VFFT",
             "Mflops");

  std::printf("\nnumerics verified against naive DFT: %s\n",
              all_ok ? "yes" : "NO");
  std::printf("peak RFFT rate: %.1f Mflops (paper: O(100) Mflops, an order "
              "below VFFT)\n",
              best);
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));

  // Host wall-clock percentiles for a representative transform, run on a
  // scratch node so the deterministic metrics above are untouched.
  {
    sxs::Node tnode(cfg);
    std::vector<double> samples;
    for (int r = 0; r < 11; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      fft::run_rfft(tnode.cpu(0), 256, 512, 1);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    rep.host_timing("fig6.host.rfft_n256_s", samples);
  }
  return rep.finish(std::cout);
}
