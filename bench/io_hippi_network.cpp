// Section 4.5 — the I/O, HIPPI, and NETWORK benchmarks.
//
// The paper describes these three benchmarks but withholds the results
// ("voluminous and the configuration of the tests is tuned to NCAR's
// computing environment"), so this bench reports the device models'
// figures and checks their internal consistency instead of paper numbers.

#include <cstdio>
#include <iostream>

#include "ccm2/resolution.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "iosim/disk.hpp"
#include "iosim/hippi.hpp"
#include "iosim/history.hpp"
#include "iosim/network.hpp"
#include "sxs/machine_config.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("io_hippi_network", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();

  // --- I/O: history-tape writes at multiple climate model resolutions ----
  print_banner(std::cout, "I/O benchmark: history tape writes by resolution");
  iosim::DiskSystem disk;
  Table io({"Resolution", "Volume MB", "1 writer (s)", "32 writers (s)",
            "MB/s (32w)"});
  bool writers_scale = true;
  for (const auto& res : ccm2::table4()) {
    iosim::HistoryShape shape{res.nlon, res.nlat, res.nlev, 16};
    const double bytes = iosim::history_write_bytes(shape).value();
    const double t1 = iosim::write_history_seconds(disk, shape, 1).value();
    const double t32 = iosim::write_history_seconds(disk, shape, 32).value();
    io.add_row({res.name, format_fixed(bytes / 1e6, 1), format_fixed(t1, 2),
                format_fixed(t32, 2), format_fixed(bytes / t32 / 1e6, 1)});
    writers_scale = writers_scale && t32 <= t1;
    rep.metric("io.history_mb_per_s_32w." + res.name, bytes / t32 / 1e6,
               "MB/s");
  }
  io.print(std::cout);
  std::printf("streaming ceiling: %.0f MB/s\n",
              to_mb_per_s(disk.streaming_bytes_per_s()));
  rep.metric("io.disk_streaming_mb_per_s",
             to_mb_per_s(disk.streaming_bytes_per_s()), "MB/s");
  rep.expect_true("io.concurrent_writers_not_slower", writers_scale,
                  "concurrent history-record writers never slower than one");

  // --- HIPPI: packet-size sweep, single and concurrent transfers ---------
  print_banner(std::cout, "HIPPI benchmark: raw packet transfers");
  iosim::HippiChannel hippi(cfg);
  Table h({"Packet KB", "1 stream MB/s", "2 streams MB/s", "4 streams MB/s",
           "8 streams MB/s"});
  double prev = 0;
  bool monotone = true;
  for (double kb : {4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    const Bytes bytes(kb * 1024);
    h.add_row(
        {format_fixed(kb, 0),
         format_fixed(to_mb_per_s(hippi.effective_bytes_per_s(bytes)), 1),
         format_fixed(to_mb_per_s(hippi.concurrent_bytes_per_s(2, bytes)), 1),
         format_fixed(to_mb_per_s(hippi.concurrent_bytes_per_s(4, bytes)), 1),
         format_fixed(to_mb_per_s(hippi.concurrent_bytes_per_s(8, bytes)), 1)});
    const double eff = hippi.effective_bytes_per_s(bytes).value();
    monotone = monotone && eff >= prev;
    prev = eff;
    rep.metric("hippi.mb_per_s@packet_kb=" + std::to_string(long(kb)),
               eff / 1e6, "MB/s");
  }
  h.print(std::cout);
  const double big = hippi.effective_bytes_per_s(Bytes(4096 * 1024)).value();
  std::printf("large-packet rate approaches the HIPPI-800 payload: %.1f MB/s\n",
              big / 1e6);
  rep.expect_true("hippi.rate_monotone_in_packet_size", monotone,
                  "bigger packets amortise channel setup");
  rep.expect("hippi.large_packet_mb_per_s", big / 1e6,
             bench::Band::range(0.9 * cfg.hippi_bytes_per_s.value() / 1e6,
                                cfg.hippi_bytes_per_s.value() / 1e6),
             "approaches the HIPPI-800 100 MB/s payload limit", "MB/s");
  rep.expect_true(
      "hippi.concurrency_capped_by_iops",
      hippi.concurrent_bytes_per_s(8, Bytes(1 << 20)) <=
          hippi.concurrent_bytes_per_s(4, Bytes(1 << 20)) * 1.001,
      "beyond the 4 IOP channels, concurrency cannot add bandwidth");

  // --- NETWORK: FDDI/IP data-transfer and command tests -------------------
  print_banner(std::cout, "NETWORK benchmark: FDDI/IP");
  iosim::Network net;
  Table n({"Test", "Result"});
  n.add_row(
      {"throughput ceiling",
       format_fixed(to_mb_per_s(net.throughput_bytes_per_s()), 2) + " MB/s"});
  n.add_row({"100 MB ftp-style transfer",
             format_duration(net.data_transfer_seconds(Bytes(100e6)))});
  n.add_row({"1 MB transfer",
             format_duration(net.data_transfer_seconds(Bytes(1e6)))});
  n.add_row({"non-data command", format_duration(net.command_seconds())});
  n.print(std::cout);
  rep.metric("network.throughput_mb_per_s",
             to_mb_per_s(net.throughput_bytes_per_s()), "MB/s");
  rep.metric("network.command_seconds", net.command_seconds().value(), "s");
  rep.expect_true("network.bounded_by_fddi_line_rate",
                  net.throughput_bytes_per_s() <=
                      BytesPerSec(100e6 / 8.0 + 1),
                  "FDDI line rate bounds the ceiling");

  const bool ok = writers_scale && monotone;
  std::printf("\ninternal consistency checks: %s\n", ok ? "pass" : "FAIL");
  return rep.finish(std::cout);
}
