// Table 2 — specification of the NEC SX-4/32 used for the paper's results.
//
// Purely descriptive: prints the benchmarked machine's configuration in the
// paper's format alongside the model parameters derived from it, so every
// other bench can be cross-checked against this table. The expectations
// pin the model configuration to the published numbers exactly.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "sxs/machine_config.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("table2_system_spec", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();

  print_banner(std::cout, "Table 2: NEC SX-4/32 system specification");

  Table t({"Attribute", "Paper", "Model"});
  t.add_row({"Clock Rate", "9.2 ns", format_fixed(cfg.clock_ns, 1) + " ns"});
  t.add_row({"Peak FLOP Rate / CPU", "2 GFLOPS (8 ns part)",
             format_fixed(to_gflops(cfg.peak_flops_per_cpu()), 2) +
                 " GFLOPS (at 9.2 ns)"});
  t.add_row({"Peak Memory Bandwidth", "16 GB/sec/proc",
             format_fixed(cfg.port_bytes_per_clock.value() * cfg.clock_hz() / 1e9, 1) +
                 " GB/sec/proc"});
  t.add_row({"Processors", "32", std::to_string(cfg.total_cpus())});
  t.add_row({"Memory banks", "up to 1024", std::to_string(cfg.memory_banks)});
  t.add_row({"Vector register length", "256 elements (8 chips x 32)",
             std::to_string(cfg.vector_length)});
  t.add_row({"Extended Memory (XMU)", "4 GB",
             format_fixed(cfg.xmu_capacity_bytes.value() / (1024.0 * 1024 * 1024), 0) +
                 " GB"});
  t.add_row({"IOP channels", "4 x 1.6 GB/s",
             std::to_string(cfg.iops) + " x " +
                 format_fixed(cfg.iop_bytes_per_s.value() / 1e9, 1) + " GB/s"});
  t.add_row({"Cooling", "air cooled", "air cooled (CMOS model)"});
  t.print(std::cout);

  rep.expect("table2.clock_ns", cfg.clock_ns,
             bench::Band::absolute(9.2, 1e-9), "paper Table 2", "ns");
  rep.expect("table2.peak_gflops_per_cpu", to_gflops(cfg.peak_flops_per_cpu()),
             bench::Band::relative(1.74, 0.01),
             "paper Table 2: 2 GFLOPS at 8 ns == 1.74 at 9.2 ns", "Gflops");
  rep.expect("table2.port_gb_per_s",
             cfg.port_bytes_per_clock.value() * cfg.clock_hz() / 1e9,
             bench::Band::relative(16.0 * 8.0 / 9.2, 0.01),
             "paper Table 2: 16 GB/s at 8 ns == 13.9 at 9.2 ns", "GB/s");
  rep.expect("table2.cpus", cfg.total_cpus(), bench::Band::absolute(32, 0),
             "paper Table 2");
  rep.expect("table2.memory_banks", cfg.memory_banks,
             bench::Band::absolute(1024, 0), "paper Table 2");
  rep.expect("table2.vector_length", cfg.vector_length,
             bench::Band::absolute(256, 0), "paper Table 2");
  rep.expect("table2.xmu_gb", cfg.xmu_capacity_bytes.value() / (1024.0 * 1024 * 1024),
             bench::Band::absolute(4.0, 1e-9), "paper Table 2", "GB");
  rep.expect("table2.iops", cfg.iops, bench::Band::absolute(4, 0),
             "paper Table 2");
  rep.expect("table2.iop_gb_per_s", cfg.iop_bytes_per_s.value() / 1e9,
             bench::Band::relative(1.6, 0.01), "paper Table 2", "GB/s");

  const auto product = sxs::MachineConfig::sx4_product();
  rep.metric("table2.product.peak_gflops_per_cpu",
             to_gflops(product.peak_flops_per_cpu()), "Gflops");
  std::cout << "\nProduction part: " << product.name << ", peak "
            << format_fixed(to_gflops(product.peak_flops_per_cpu()), 1)
            << " GFLOPS/CPU, node peak "
            << format_fixed(
                   to_gflops(product.peak_flops_per_cpu()) * product.cpus_per_node,
                   0)
            << " GFLOPS\n";
  return rep.finish(std::cout);
}
