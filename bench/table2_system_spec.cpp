// Table 2 — specification of the NEC SX-4/32 used for the paper's results.
//
// Purely descriptive: prints the benchmarked machine's configuration in the
// paper's format alongside the model parameters derived from it, so every
// other bench can be cross-checked against this table.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"

int main() {
  using namespace ncar;
  std::cout << "host execution: " << sxs::host_execution_summary()
            << "\n\n";
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();

  print_banner(std::cout, "Table 2: NEC SX-4/32 system specification");

  Table t({"Attribute", "Paper", "Model"});
  t.add_row({"Clock Rate", "9.2 ns", format_fixed(cfg.clock_ns, 1) + " ns"});
  t.add_row({"Peak FLOP Rate / CPU", "2 GFLOPS (8 ns part)",
             format_fixed(to_gflops(cfg.peak_flops_per_cpu()), 2) +
                 " GFLOPS (at 9.2 ns)"});
  t.add_row({"Peak Memory Bandwidth", "16 GB/sec/proc",
             format_fixed(cfg.port_bytes_per_clock * cfg.clock_hz() / 1e9, 1) +
                 " GB/sec/proc"});
  t.add_row({"Processors", "32", std::to_string(cfg.total_cpus())});
  t.add_row({"Memory banks", "up to 1024", std::to_string(cfg.memory_banks)});
  t.add_row({"Vector register length", "256 elements (8 chips x 32)",
             std::to_string(cfg.vector_length)});
  t.add_row({"Extended Memory (XMU)", "4 GB",
             format_fixed(cfg.xmu_capacity_bytes / (1024.0 * 1024 * 1024), 0) +
                 " GB"});
  t.add_row({"IOP channels", "4 x 1.6 GB/s",
             std::to_string(cfg.iops) + " x " +
                 format_fixed(cfg.iop_bytes_per_s / 1e9, 1) + " GB/s"});
  t.add_row({"Cooling", "air cooled", "air cooled (CMOS model)"});
  t.print(std::cout);

  const auto product = sxs::MachineConfig::sx4_product();
  std::cout << "\nProduction part: " << product.name << ", peak "
            << format_fixed(to_gflops(product.peak_flops_per_cpu()), 1)
            << " GFLOPS/CPU, node peak "
            << format_fixed(
                   to_gflops(product.peak_flops_per_cpu()) * product.cpus_per_node,
                   0)
            << " GFLOPS\n";
  return 0;
}
