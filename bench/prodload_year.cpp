// prodload_year — a year of NQS operations on the DES kernel.
//
// The paper's PRODLOAD replays a fixed 93-minute job script (bench/
// prodload.cpp). This bench asks the question a center planner would: what
// does a *year* of production look like on the SX-4/32 node? A synthetic
// workload (Markov job mix, bursty MMPP arrivals, heavy-tailed service
// times, failure/retry storms — src/des/workload.hpp) feeds an online NQS
// queue complex (src/prodload/queue_complex.hpp) dispatching onto the
// 32-CPU node logical process, all on one event calendar.
//
// Memory stays bounded no matter the horizon: the generator keeps one
// arrival event in flight, the calendar holds only live events (no
// tombstones), and the bench accumulates aggregates, never per-job
// records. Every simulated metric is deterministic — byte-identical
// across repeat runs, host-thread policies, and SX4NCAR_TRACE settings
// (bench/cmake/year_determinism_check.cmake pins this). The only
// host-dependent output is the events/sec throughput of the kernel
// itself, reported as a host metric (omitted under --deterministic).
//
// Knobs (environment):
//   SX4NCAR_YEAR_DAYS  simulated horizon in days (default 365)
//   SX4NCAR_YEAR_SEED  RNG registry seed (default the kernel's)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unordered_map>

#include "common/table.hpp"
#include "common/units.hpp"
#include "des/simulation.hpp"
#include "des/workload.hpp"
#include "harness/reporter.hpp"
#include "prodload/node_lp.hpp"
#include "prodload/queue_complex.hpp"
#include "sxs/machine_config.hpp"

namespace {

double env_double(const char* var, double fallback) {
  const char* v = std::getenv(var);
  return v && *v ? std::atof(v) : fallback;
}

/// The job mix: CCM2-flavoured classes sized so the node runs at roughly
/// 55-60% average utilisation — busy enough for queueing, stable enough
/// that a year-long backlog stays bounded.
ncar::des::WorkloadConfig year_mix() {
  ncar::des::WorkloadConfig cfg;
  cfg.classes = {
      // name       queue         cpus  mean_s  tail   shape  cap      prio
      {"express",   "express",    1,    240.0,  0.05,  1.5,   3600.0,  10},
      {"t42_dev",   "regular",    2,    900.0,  0.10,  1.5,   43200.0, 0},
      {"t106_prod", "production", 8,    450.0,  0.10,  1.5,   43200.0, 0},
      {"t170_prod", "production", 16,   150.0,  0.10,  1.5,   21600.0, 5},
  };
  // Row-stochastic weights steering the stationary mix toward the narrow
  // classes (roughly .4 express, .35 t42, .15 t106, .1 t170).
  cfg.transition = {
      {0.45, 0.35, 0.12, 0.08},
      {0.40, 0.38, 0.14, 0.08},
      {0.35, 0.33, 0.20, 0.12},
      {0.35, 0.30, 0.15, 0.20},
  };
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("prodload_year", argc, argv);
  const auto machine = sxs::MachineConfig::sx4_benchmarked();

  const double days = env_double("SX4NCAR_YEAR_DAYS", 365.0);
  const double seed_d = env_double("SX4NCAR_YEAR_SEED", 0.0);
  const Seconds horizon(days * 86400.0);

  des::Simulation sim = seed_d != 0.0
                            ? des::Simulation(static_cast<std::uint64_t>(seed_d))
                            : des::Simulation();
  prodload::NodeLp node(sim, machine.cpus_per_node,
                        machine.bank_contention_per_cpu);
  prodload::QueueComplexLp nqs(
      sim, node,
      {{"express", 2, 4}, {"regular", 8, 8}, {"production", 16, 4}});

  const des::WorkloadConfig mix = year_mix();
  // In-flight jobs by tag, so a completion can be routed back to the
  // generator's failure/retry machinery. Bounded by jobs in the system.
  std::unordered_map<std::uint64_t, des::SyntheticJob> in_flight;
  std::size_t peak_in_flight = 0;
  std::uint64_t failures = 0;

  des::WorkloadGenerator gen(sim, mix, [&](const des::SyntheticJob& job) {
    const auto& jc = mix.classes[static_cast<std::size_t>(job.job_class)];
    prodload::NqsJob nj;
    nj.name = jc.name;
    nj.cpus = jc.cpus;
    nj.service = job.service;
    nj.priority = jc.priority;
    nj.tag = job.id * 8 + static_cast<std::uint64_t>(job.attempt);
    in_flight.emplace(nj.tag, job);
    peak_in_flight = std::max(peak_in_flight, in_flight.size());
    nqs.submit(jc.queue, std::move(nj));
  });

  nqs.set_completion([&](const prodload::NqsJob& nj, Seconds, Seconds,
                         Seconds) {
    const auto it = in_flight.find(nj.tag);
    const des::SyntheticJob job = it->second;
    in_flight.erase(it);
    if (gen.draw_failure()) {
      ++failures;
      gen.report_failure(job);
    }
  });

  gen.start(horizon);
  const auto host_start = std::chrono::steady_clock::now();
  sim.run();
  const double host_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  const double sim_days = sim.now().value() / 86400.0;
  const double completed = static_cast<double>(nqs.jobs_completed());
  const double mean_wait =
      completed > 0 ? nqs.total_wait_s() / completed : 0.0;
  const double mean_response =
      completed > 0 ? nqs.total_response_s() / completed : 0.0;
  const double utilization =
      node.busy_cpu_seconds() /
      (static_cast<double>(machine.cpus_per_node) * sim.now().value());
  const double events = static_cast<double>(sim.events_executed());

  print_banner(std::cout,
               "PRODLOAD-YEAR: a year of NQS operations, SX-4/32");
  Table t({"Quantity", "Value"});
  t.add_row({"simulated horizon", format_duration(horizon)});
  t.add_row({"simulated time", format_duration(sim.now())});
  t.add_row({"jobs completed", std::to_string(nqs.jobs_completed())});
  t.add_row({"retries", std::to_string(gen.retries_emitted())});
  t.add_row({"arrival bursts", std::to_string(gen.bursts())});
  t.add_row({"failure storms", std::to_string(gen.storms())});
  t.add_row({"node utilization",
             std::to_string(100.0 * utilization).substr(0, 5) + " %"});
  t.add_row({"mean queue wait", format_duration(Seconds(mean_wait))});
  t.add_row({"events executed", std::to_string(sim.events_executed())});
  t.print(std::cout);
  std::printf("\nhost: %.0f events/sec (%.2f s for %.0f events)\n",
              host_s > 0 ? events / host_s : 0.0, host_s, events);

  rep.metric("prodload_year.simulated_days", sim_days, "days");
  rep.metric("prodload_year.jobs_submitted",
             static_cast<double>(nqs.jobs_submitted()));
  rep.metric("prodload_year.jobs_completed", completed);
  rep.metric("prodload_year.retries",
             static_cast<double>(gen.retries_emitted()));
  rep.metric("prodload_year.retries_abandoned",
             static_cast<double>(gen.retries_abandoned()));
  rep.metric("prodload_year.failures", static_cast<double>(failures));
  rep.metric("prodload_year.bursts", static_cast<double>(gen.bursts()));
  rep.metric("prodload_year.storms", static_cast<double>(gen.storms()));
  rep.metric("prodload_year.events", events);
  rep.metric("prodload_year.node_utilization", utilization);
  rep.metric("prodload_year.mean_wait_s", mean_wait, "s");
  rep.metric("prodload_year.mean_response_s", mean_response, "s");
  rep.metric("prodload_year.max_backlog",
             static_cast<double>(nqs.max_backlog()));
  rep.metric("prodload_year.peak_in_flight",
             static_cast<double>(peak_in_flight));
  rep.host_metric("prodload_year.events_per_sec",
                  host_s > 0 ? events / host_s : 0.0, "events/s");

  rep.expect_true("prodload_year.ran_full_horizon", sim_days >= days,
                  "the simulation must cover the configured horizon");
  rep.expect_true("prodload_year.drained", nqs.idle() && node.idle(),
                  "all submitted work must complete");
  rep.expect_true("prodload_year.stable",
                  utilization > 0.0 && utilization < 1.0 &&
                      nqs.max_backlog() < nqs.jobs_submitted(),
                  "the configured mix must keep the node stable");
  return rep.finish(std::cout);
}
