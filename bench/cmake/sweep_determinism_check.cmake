# Determinism regression check for the design_sweep bench.
#
# The sweep engine's headline guarantee: the emitted result JSON *and* the
# full per-point sweep report must be byte-identical across
#   * sequential execution (SX4NCAR_HOST_THREADS=1),
#   * threaded execution (SX4NCAR_HOST_THREADS=8), and
#   * a repeated threaded run (no run-to-run wobble either).
# All runs use --deterministic so host perf telemetry (configs/sec,
# peak_live_workspaces) is omitted from the result JSON; the sweep report
# never contains host-dependent fields in the first place.
#
# Required -D variables: BENCH_BIN, BENCH_NAME, OUT_DIR.

foreach(var BENCH_BIN BENCH_NAME OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_determinism_check: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

function(run_sweep threads tag)
  set(out ${OUT_DIR}/${BENCH_NAME}.${tag}.json)
  set(report ${OUT_DIR}/${BENCH_NAME}.${tag}.report.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      SX4NCAR_BENCH_FULL=
      SX4NCAR_TRACE=
      SX4NCAR_HOST_THREADS=${threads}
      SX4NCAR_SWEEP_REPORT=${report}
      ${BENCH_BIN} --deterministic --json ${out}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${BENCH_NAME} failed (SX4NCAR_HOST_THREADS=${threads}, exit ${rc}):\n"
      "${stdout}\n${stderr}")
  endif()
endfunction()

run_sweep(1 seq)
run_sweep(8 thr)
run_sweep(8 thr2)

foreach(pair "seq;thr" "thr;thr2")
  list(GET pair 0 a)
  list(GET pair 1 b)
  foreach(suffix "json" "report.json")
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
        ${OUT_DIR}/${BENCH_NAME}.${a}.${suffix}
        ${OUT_DIR}/${BENCH_NAME}.${b}.${suffix}
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
        "${BENCH_NAME}: ${suffix} differs between ${a} and ${b}; compare\n"
        "  ${OUT_DIR}/${BENCH_NAME}.${a}.${suffix}\n"
        "  ${OUT_DIR}/${BENCH_NAME}.${b}.${suffix}")
    endif()
  endforeach()
endforeach()

message(STATUS
  "${BENCH_NAME}: result + report JSON byte-identical across "
  "sequential, threaded, and repeated threaded runs")
