# Determinism regression check for the prodload_year bench.
#
# The year bench's guarantee is stronger than the generic one in
# determinism_check.cmake: its JSON must be byte-identical across
#   * repeated runs of the same binary (no wall clock, no address-order
#     dependence anywhere in a year of simulated events), and
#   * SX4NCAR_TRACE=off vs =summary (trace plumbing must not add, remove,
#     or perturb a single simulated metric).
# All runs use --deterministic so host perf telemetry (events/sec) is
# omitted, and a one-year horizon (the acceptance bar for the bench).
#
# Required -D variables: BENCH_BIN, BENCH_NAME, OUT_DIR.

foreach(var BENCH_BIN BENCH_NAME OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "year_determinism_check: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

function(run_year trace tag)
  set(out ${OUT_DIR}/${BENCH_NAME}.${tag}.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      SX4NCAR_BENCH_FULL=
      SX4NCAR_TRACE=${trace}
      SX4NCAR_YEAR_DAYS=365
      ${BENCH_BIN} --deterministic --json ${out}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${BENCH_NAME} failed (SX4NCAR_TRACE=${trace}, exit ${rc}):\n"
      "${stdout}\n${stderr}")
  endif()
endfunction()

run_year("" off1)
run_year("" off2)
run_year(summary sum)

foreach(pair "off1;off2" "off1;sum")
  list(GET pair 0 a)
  list(GET pair 1 b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${OUT_DIR}/${BENCH_NAME}.${a}.json
      ${OUT_DIR}/${BENCH_NAME}.${b}.json
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${BENCH_NAME}: emitted JSON differs between ${a} and ${b}; compare\n"
      "  ${OUT_DIR}/${BENCH_NAME}.${a}.json\n"
      "  ${OUT_DIR}/${BENCH_NAME}.${b}.json")
  endif()
endforeach()

message(STATUS
  "${BENCH_NAME}: one-year JSON byte-identical across runs and trace modes")
