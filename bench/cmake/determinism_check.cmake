# Determinism regression check for a bench binary's emitted JSON.
#
# Runs BENCH_BIN under SX4NCAR_HOST_THREADS=1 and =8 (and =8 a second
# time to catch run-to-run nondeterminism), with --deterministic so the
# host-execution banner and wall time are omitted from the JSON, then
# requires all three files to be byte-identical. This is PR 1's
# cross-policy determinism guarantee enforced at the bench-harness layer.
#
# Required -D variables: BENCH_BIN, BENCH_NAME, OUT_DIR.

foreach(var BENCH_BIN BENCH_NAME OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "determinism_check: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${OUT_DIR})

function(run_bench threads tag)
  set(out ${OUT_DIR}/${BENCH_NAME}.${tag}.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      SX4NCAR_HOST_THREADS=${threads}
      SX4NCAR_BENCH_FULL=
      ${BENCH_BIN} --deterministic --json ${out}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${BENCH_NAME} failed (threads=${threads}, exit ${rc}):\n"
      "${stdout}\n${stderr}")
  endif()
endfunction()

run_bench(1 t1)
run_bench(8 t8)
run_bench(8 t8b)

foreach(pair "t1;t8" "t8;t8b")
  list(GET pair 0 a)
  list(GET pair 1 b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${OUT_DIR}/${BENCH_NAME}.${a}.json
      ${OUT_DIR}/${BENCH_NAME}.${b}.json
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${BENCH_NAME}: emitted JSON differs between ${a} and ${b} "
      "(host-thread policy leaked into simulated results); compare\n"
      "  ${OUT_DIR}/${BENCH_NAME}.${a}.json\n"
      "  ${OUT_DIR}/${BENCH_NAME}.${b}.json")
  endif()
endforeach()

message(STATUS "${BENCH_NAME}: JSON byte-identical across policies and runs")
