// Ablation: multi-node SX-4 over the IXS (paper sections 2.5 and the
// SX-4/512 full configuration).
//
// The paper benchmarks a single 32-CPU node; the architecture section
// describes joining up to 16 such nodes through the IXS crossbar (8 GB/s
// in + out per node, 128 GB/s bisection) with a single system image. This
// bench projects the CCM2 T170L18 workload across 1..16 nodes: each step's
// parallelisable work divides across nodes, the per-step serial section
// does not, and the spectral transposition (grid <-> wavenumber layouts)
// crosses the IXS twice per step.

#include <cstdio>
#include <iostream>

#include "ccm2/model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "harness/trace_report.hpp"
#include "sxs/ixs.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("ablation_ixs", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);
  // Streaming trace sink (SX4NCAR_TRACE=stream); inactive in other modes.
  bench::StreamTrace stream(rep.aux_path("trace.sxt"), node);

  ccm2::Ccm2Config c;
  c.res = ccm2::t170l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, node);

  // Measure the single-node step and its serial component. Timing only, so
  // replay the charge sequence twice (bit-identical to two step() calls,
  // see Ccm2::charge_step) and read the second step's timing as before.
  node.reset();
  model.charge_step(32);
  const auto t = model.charge_step(32);
  const double serial = t.serial;
  const double parallel = t.total - t.serial;
  double flops = 0;
  for (int r = 0; r < node.cpu_count(); ++r) flops += node.cpu(r).equiv_flops().value();
  const double flops_per_step = flops / 2.0;  // two steps charged

  // Transposition volume per step: the full 3-D grid, both directions.
  const double grid_bytes = 8.0 * c.res.nlon * c.res.nlat * c.res.nlev *
                            c.dynamics_fields;

  print_banner(std::cout,
               "Ablation: CCM2 T170L18 across IXS-coupled nodes (32 CPUs each)");
  Table tbl({"Nodes", "CPUs", "Step (ms)", "IXS (ms)", "Gflops", "Efficiency"});
  double prev_gflops = 0;
  bool monotone = true;
  double eff16 = 0, g1 = 0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    auto mcfg = sxs::MachineConfig::sx4_multinode(nodes);
    mcfg.clock_ns = cfg.clock_ns;
    sxs::Ixs ixs(mcfg);
    const double ixs_s =
        nodes == 1
            ? 0.0
            : 2.0 * ixs.all_to_all_seconds(nodes, Bytes(grid_bytes / nodes))
                      .value() +
                  8.0 * ixs.global_barrier_seconds(nodes).value();
    const double step = serial + parallel / nodes + ixs_s;
    const double g = flops_per_step / step / 1e9;
    if (nodes == 1) g1 = g;
    const double eff = g / (g1 * nodes);
    tbl.add_row({std::to_string(nodes), std::to_string(32 * nodes),
                 format_fixed(step * 1e3, 1), format_fixed(ixs_s * 1e3, 2),
                 format_fixed(g, 1), format_fixed(100 * eff, 0) + "%"});
    monotone = monotone && g >= prev_gflops;
    prev_gflops = g;
    if (nodes == 16) eff16 = eff;
    rep.metric("ablation_ixs.ccm2_gflops@nodes=" + std::to_string(nodes), g,
               "Gflops");
  }
  tbl.print(std::cout);

  rep.metric("ablation_ixs.efficiency@nodes=16", eff16);
  rep.expect_true("ablation_ixs.throughput_grows_with_nodes", monotone,
                  "IXS coupling adds throughput on the fixed-size problem");
  std::printf("\nthroughput grows with nodes: %s\n", monotone ? "yes" : "NO");
  std::printf("strong-scaling efficiency at 16 nodes: %.0f%% (the fixed-size\n"
              "problem is limited by the serial step section, not the IXS)\n",
              100 * eff16);
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  // Attribution covers the two measured T170 steps on the single node.
  bench::print_attribution(std::cout, node);
  bench::report_attribution(rep, "ablation_ixs", node);
  bench::write_chrome_trace_file(rep.trace_path(), node);
  stream.finish(rep);
  return rep.finish(std::cout);
}
