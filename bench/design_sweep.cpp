// design_sweep — the machine design-space exploration bench.
//
// The paper's Table 1 contrasts five machines on two kernels; this bench
// contrasts *thousands*. It expands parameter ranges (arithmetic pipes,
// vector length, memory port width, bank count, clock) over a catalog base
// machine into a lazy cartesian grid (src/machines/sweep.hpp), records the
// chosen kernel's op stream once, replays it against every design point on
// the host thread pool with per-config CostCache reuse, classifies each
// point memory-bound vs compute-bound via perturbation twins, and flags
// the flip boundaries. The full per-point report is written as
// deterministic JSON next to the result file — byte-identical across
// host-thread policies and repeat runs
// (bench/cmake/sweep_determinism_check.cmake pins this).
//
// Deliberately NOT in SX4NCAR_BENCH_MAINS: like prodload_year, it is a
// capacity/exploration bench pinned by its own smoke + determinism tests
// (the committed baseline set stays at exactly the 16 paper benches).
//
// Knobs (environment):
//   SX4NCAR_SWEEP_KERNEL  radabs | hint | vfft        (default radabs)
//   SX4NCAR_SWEEP_BASE    catalog machine to sweep    (default NEC SX-4/1)
//   SX4NCAR_SWEEP_PIPES   comma list of pipe counts   (default 1,2,4,8,16,32)
//   SX4NCAR_SWEEP_VL      comma list of vector lengths(default 32,...,512)
//   SX4NCAR_SWEEP_PORT    comma list of port widths   (default 16,...,256)
//   SX4NCAR_SWEEP_BANKS   comma list of bank counts   (default 256,...,2048)
//   SX4NCAR_SWEEP_CLOCKS  comma list of clock periods (default 9.2,8)
//   SX4NCAR_SWEEP_REPORT  report path (default <results>/design_sweep.report.json)

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "harness/reporter.hpp"
#include "machines/description.hpp"
#include "machines/sweep.hpp"
#include "sxs/execution_policy.hpp"

namespace {

using ncar::machines::Axis;
using ncar::machines::Grid;
using ncar::machines::SweepReport;

std::string env_string(const char* var, const std::string& fallback) {
  const char* v = std::getenv(var);
  return v && *v ? std::string(v) : fallback;
}

std::vector<double> env_values(const char* var,
                               std::vector<double> fallback) {
  const char* v = std::getenv(var);
  if (!v || !*v) return fallback;
  std::vector<double> out;
  const std::string s(v);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const double value = std::strtod(tok.c_str(), &end);
    NCAR_REQUIRE(end == tok.c_str() + tok.size() && !tok.empty(),
                 "malformed value list in sweep knob");
    out.push_back(value);
    pos = comma == std::string::npos ? s.size() + 1 : comma + 1;
  }
  NCAR_REQUIRE(!out.empty(), "empty value list in sweep knob");
  return out;
}

/// Metric-name slug for a catalog machine ("NEC SX-4/1" -> "nec_sx_4_1").
std::string slug(const std::string& name) {
  std::string out;
  bool gap = false;
  for (const char ch : name) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      if (gap && !out.empty()) out += '_';
      gap = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else {
      gap = true;
    }
  }
  return out;
}

std::string format_values(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += ncar::machines::format_number(values[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("design_sweep", argc, argv);

  const std::string kernel = env_string("SX4NCAR_SWEEP_KERNEL", "radabs");
  const std::string base_name =
      env_string("SX4NCAR_SWEEP_BASE", "NEC SX-4/1");
  const std::vector<Axis> axes = {
      {"pipes_per_group", env_values("SX4NCAR_SWEEP_PIPES",
                                     {1, 2, 4, 8, 16, 32})},
      {"vector_length", env_values("SX4NCAR_SWEEP_VL",
                                   {32, 64, 128, 256, 512})},
      {"port_bytes_per_clock", env_values("SX4NCAR_SWEEP_PORT",
                                          {16, 32, 64, 128, 256})},
      {"memory_banks", env_values("SX4NCAR_SWEEP_BANKS",
                                  {256, 512, 1024, 2048})},
      {"clock_ns", env_values("SX4NCAR_SWEEP_CLOCKS", {9.2, 8})},
  };

  const Grid grid(machines::builtin_catalog().at(base_name), axes);

  machines::SweepOptions opts;
  opts.kernel = kernel;
  opts.policy = sxs::default_execution_policy();

  const auto host_start = std::chrono::steady_clock::now();
  const SweepReport report = machines::run_sweep(grid, opts);
  const double host_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  print_banner(std::cout, "DESIGN SWEEP: " + std::to_string(grid.size()) +
                              " machines descended from " + base_name);
  Table t({"Quantity", "Value"});
  t.add_row({"kernel", kernel});
  for (const Axis& axis : grid.axes()) {
    t.add_row({"axis " + axis.key, format_values(axis.values)});
  }
  t.add_row({"grid points", std::to_string(report.points.size())});
  t.add_row({"valid points", std::to_string(report.valid_count())});
  t.add_row({"memory-bound", std::to_string(report.memory_bound_count())});
  t.add_row({"compute-bound",
             std::to_string(report.valid_count() -
                            report.memory_bound_count())});
  t.add_row({"flip edges", std::to_string(report.flips.size())});
  t.print(std::cout);

  const machines::PointResult* best = report.fastest();
  NCAR_REQUIRE(best != nullptr, "sweep produced no valid design point");
  std::printf("\nfastest design point (#%zu):", best->index);
  for (std::size_t a = 0; a < grid.axes().size(); ++a) {
    std::printf(" %s=%s", grid.axes()[a].key.c_str(),
                machines::format_number(best->values[a]).c_str());
  }
  std::printf("\n  %s seconds, %.0f hw Mflops, %s\n",
              machines::format_number(best->seconds).c_str(),
              best->hw_mflops, best->memory_bound ? "memory-bound" : "compute-bound");

  // Rank the full catalog on the same recorded probe — the modern design
  // points (SX-Aurora, A64FX, RVV) against the 1996 fleet.
  const machines::Probe probe = machines::record_probe(kernel);
  std::printf("\ncatalog machines on the same %s probe:\n", kernel.c_str());
  Table rank({"Machine", "Seconds", "HW Mflops"});
  for (const auto& name : machines::builtin_names()) {
    const machines::Replay r =
        machines::replay_probe(probe, machines::spec_for(name));
    rank.add_row({name, machines::format_number(r.seconds),
                  std::to_string(static_cast<long>(
                      r.seconds > 0 ? r.hw_flops / r.seconds / 1e6 : 0))});
    rep.metric("design_sweep.catalog." + slug(name) + ".seconds", r.seconds,
               "s");
  }
  rank.print(std::cout);

  const std::string report_path =
      env_string("SX4NCAR_SWEEP_REPORT", rep.aux_path("report.json"));
  bool report_written = false;
  {
    const std::filesystem::path p(report_path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream out(report_path);
    if (out) {
      out << report.to_json();
      report_written = static_cast<bool>(out);
    }
  }
  std::printf("\nfull per-point report: %s\n", report_path.c_str());

  rep.metric("design_sweep.grid_size",
             static_cast<double>(report.points.size()));
  rep.metric("design_sweep.valid_points",
             static_cast<double>(report.valid_count()));
  rep.metric("design_sweep.memory_bound_points",
             static_cast<double>(report.memory_bound_count()));
  rep.metric("design_sweep.flip_edges",
             static_cast<double>(report.flips.size()));
  rep.metric("design_sweep.fastest.seconds", best->seconds, "s");
  rep.metric("design_sweep.fastest.index",
             static_cast<double>(best->index));
  rep.metric("design_sweep.probe_ops",
             static_cast<double>(probe.ops.size()));
  rep.cost_cache_counters(static_cast<double>(report.cache_hits),
                          static_cast<double>(report.cache_misses));
  // Host-dependent gauges ride as host metrics: omitted under
  // --deterministic, never baselined.
  rep.host_metric("design_sweep.configs_per_sec",
                  host_s > 0 ? static_cast<double>(report.points.size()) /
                                   host_s
                             : 0.0,
                  "configs/s");
  rep.host_metric("design_sweep.peak_live_workspaces",
                  static_cast<double>(report.peak_live_workspaces));

  rep.expect_true("design_sweep.grid_at_least_1000",
                  report.points.size() >= 1000,
                  "the CI smoke sweep must cover >= 1000 configs");
  rep.expect_true("design_sweep.all_points_evaluated",
                  report.valid_count() >= 1 &&
                      report.valid_count() <= report.points.size(),
                  "every grid point must be evaluated");
  rep.expect_true("design_sweep.classification_total",
                  report.memory_bound_count() <= report.valid_count(),
                  "memory-bound points are a subset of valid points");
  rep.expect_true("design_sweep.flip_boundary_found",
                  !report.flips.empty(),
                  "the default grid straddles the memory/compute boundary");
  rep.expect_true("design_sweep.report_written", report_written,
                  "the per-point JSON report must be written");
  return rep.finish(std::cout);
}
