// Figure 7 — VFFT ("vector"-style FFT) on the SX-4/1, Mflops for the
// paper's length set with instance counts M = 1 .. 500, KTRIES = 5.
//
// Paper-shape constraints: "approximately an order of magnitude faster"
// than RFFT; rate grows with M (the vector length) toward a plateau.
// EXPERIMENTS.md records the measured anchors: 8.7x over RFFT at N = 256,
// VFFT 1371 Mflops at M = 500.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fft/style_bench.hpp"
#include "harness/reporter.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("fig7_vfft", argc, argv);
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  sxs::Cpu& cpu = node.cpu(0);

  print_banner(std::cout, "Figure 7: VFFT (vector style), SX-4/1, Mflops");

  // Main sweep: Mflops vs N at the largest instance count.
  Table t({"N", "Mflops (M=500)", "verified"});
  bool all_ok = true;
  double vfft_256 = 0;
  for (long n : fft::vfft_lengths()) {
    const auto p = fft::run_vfft(cpu, n, 500, 5);
    t.add_row({std::to_string(n), format_fixed(p.mflops, 1),
               p.verified ? "yes" : "NO"});
    all_ok = all_ok && p.verified;
    if (n == 256) vfft_256 = p.mflops;
    rep.metric("fig7.vfft.mflops@N=" + std::to_string(n) + ",M=500", p.mflops,
               "Mflops");
  }
  t.print(std::cout);

  // Vector-length dependence at N = 256.
  Table t2({"M", "Mflops (N=256)"});
  double prev = 0;
  bool grows = true;
  for (long m : fft::vfft_instances()) {
    const auto p = fft::run_vfft(cpu, 256, m, 5);
    t2.add_row({std::to_string(m), format_fixed(p.mflops, 1)});
    grows = grows && p.mflops >= prev * 0.98;
    prev = p.mflops;
    if (m != 500) {  // M=500 already recorded by the N sweep above
      rep.metric("fig7.vfft.mflops@N=256,M=" + std::to_string(m), p.mflops,
                 "Mflops");
    }
  }
  std::cout << '\n';
  t2.print(std::cout);

  // Order-of-magnitude comparison against RFFT at the same length.
  const auto r = fft::run_rfft(cpu, 256, 4000, 5);
  const double ratio = vfft_256 / r.mflops;
  rep.expect_true("fig7.numerics_verified", all_ok,
                  "every transform checked against the naive DFT");
  rep.expect_true("fig7.rate_grows_with_m", grows,
                  "paper Fig 7 prose: rate grows with the vector length M");
  rep.expect("fig7.vfft.mflops_at_n256_m500", vfft_256,
             bench::Band::relative(1371.0, 0.25), "EXPERIMENTS.md Fig 7",
             "Mflops");
  rep.expect("fig7.vfft_over_rfft_at_n256", ratio,
             bench::Band::range(5.0, 20.0),
             "paper prose: approximately an order of magnitude faster");
  std::printf("\nnumerics verified: %s\n", all_ok ? "yes" : "NO");
  std::printf("rate grows with vector length M: %s\n", grows ? "yes" : "NO");
  std::printf("VFFT/RFFT at N=256: %.1fx (paper: ~10x)\n", ratio);
  const bool order_of_magnitude = ratio > 5.0 && ratio < 20.0;
  std::printf("order-of-magnitude separation: %s\n",
              order_of_magnitude ? "yes" : "NO");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));

  // Host wall-clock percentiles for a representative transform, run on a
  // scratch node so the deterministic metrics above are untouched.
  {
    sxs::Node tnode(cfg);
    std::vector<double> samples;
    for (int r = 0; r < 11; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      fft::run_vfft(tnode.cpu(0), 256, 500, 1);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    rep.host_timing("fig7.host.vfft_n256_s", samples);
  }
  return rep.finish(std::cout);
}
