// Section 4.4 — RADABS on the SX-4/1: the paper reports 865.9 Cray Y-MP
// equivalent Mflops (with the 9.2 ns clock).
//
// Also reproduces the RADABS/ELEFUNT linkage the paper notes ("much of the
// time in RADABS is spent in intrinsic function calls") by reporting the
// fraction of simulated time spent in intrinsics.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "machines/comparator.hpp"
#include "radabs/radabs.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("radabs_sx4", argc, argv);
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  const auto r = radabs::run_radabs_standard(sx4);

  print_banner(std::cout, "RADABS raw performance, SX-4/1");
  Table t({"Quantity", "Paper", "Model"});
  t.add_row({"Y-MP equivalent Mflops", "865.9", format_fixed(r.equiv_mflops, 1)});
  t.add_row({"hardware Mflops", "-", format_fixed(r.hw_mflops, 1)});
  t.add_row({"level pairs", "-", std::to_string(r.level_pairs)});
  t.add_row({"time in intrinsics", "\"much of the time\"",
             format_fixed(100 * sx4.intrinsic_time_fraction(), 0) + "%"});
  t.print(std::cout);

  const double ratio = r.equiv_mflops / 865.9;
  std::printf("\nmodel/paper = %.3f\n", ratio);
  std::printf("checksum = %.6f (regression anchor)\n", r.checksum);
  const bool intrinsic_bound = sx4.intrinsic_time_fraction() > 0.4;
  std::printf("intrinsics dominate the kernel (paper: \"much of the time in\n"
              "RADABS is spent in intrinsic function calls\"): %s\n",
              intrinsic_bound ? "yes" : "NO");
  std::printf("within 25%% of the paper's figure: %s\n",
              ratio > 0.8 && ratio < 1.25 && intrinsic_bound ? "yes" : "NO");

  rep.expect("radabs.equiv_mflops", r.equiv_mflops,
             bench::Band::relative(865.9, 0.25), "paper section 4.4",
             "Mflops");
  rep.metric("radabs.hw_mflops", r.hw_mflops, "Mflops");
  rep.metric("radabs.checksum", r.checksum);
  rep.expect("radabs.intrinsic_time_fraction", sx4.intrinsic_time_fraction(),
             bench::Band::range(0.4, 1.0),
             "paper: much of the time is spent in intrinsic function calls");

  // Host wall-clock percentiles of the kernel itself, on a scratch machine
  // and a shared workspace (the zero-allocation repeat path).
  {
    machines::Comparator scratch(machines::Comparator::nec_sx4_single());
    const auto field = radabs::make_test_atmosphere(128, 18);
    radabs::RadabsWorkspace ws;
    std::vector<double> samples;
    for (int r = 0; r < 11; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      radabs::run_radabs(scratch, field, ws);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    rep.host_timing("radabs.host.kernel_s", samples);
  }
  return rep.finish(std::cout);
}
