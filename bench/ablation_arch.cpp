// Ablation studies over the SX-4 model's design parameters (DESIGN.md
// section 5): what each architectural feature buys, measured with the
// benchmark kernels themselves.
//
//   banks  — 1024 vs 256 vs 64 memory banks, on XPOSE's worst stride
//   VL     — 256 vs 128 vs 64 element vector registers, on VFFT
//   clock  — 9.2 ns (benchmarked) vs 8.0 ns (product): the paper predicts
//            ~15% improvement from the faster clock plus tuning
//   sync   — macrotask barrier cost, on CCM2 scaling at 32 CPUs

#include <cstdio>
#include <iostream>

#include "ccm2/model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "fft/style_bench.hpp"
#include "harness/reporter.hpp"
#include "harness/trace_report.hpp"
#include "kernels/memory_kernels.hpp"
#include "radabs/radabs.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"
#include "trace/category.hpp"

using namespace ncar;

namespace {

double xpose_bw(sxs::MachineConfig cfg) {
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  return kernels::run_xpose(node.cpu(0), 512, 4, 3).mb_per_s;
}

double vfft_mflops(sxs::MachineConfig cfg) {
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  return fft::run_vfft(node.cpu(0), 256, 500, 3).mflops;
}

double ccm2_gflops(const sxs::MachineConfig& cfg) {
  sxs::Node node(cfg);
  ccm2::Ccm2Config c;
  c.res = ccm2::t106l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, node);
  // Gflops depend only on the charge sequence (see Ccm2::charge_step), so
  // the ablation replays charges instead of integrating the dycore.
  return model.charge_sustained_equiv_gflops(32, 1);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter rep("ablation_arch", argc, argv);

  // --- banks --------------------------------------------------------------
  print_banner(std::cout, "Ablation: memory bank count (XPOSE N=512)");
  Table tb({"Banks", "XPOSE MB/s"});
  double prev = 0;
  bool banks_ok = true;
  for (int banks : {64, 256, 1024}) {
    auto cfg = sxs::MachineConfig::sx4_benchmarked();
    cfg.memory_banks = banks;
    const double bw = xpose_bw(cfg);
    tb.add_row({std::to_string(banks), format_fixed(bw, 0)});
    banks_ok = banks_ok && bw >= prev;
    prev = bw;
    rep.metric("ablation.xpose_mb_per_s@banks=" + std::to_string(banks), bw,
               "MB/s");
  }
  tb.print(std::cout);
  std::printf("more banks monotonically help power-of-two strides: %s\n",
              banks_ok ? "yes" : "NO");
  rep.expect_true("ablation.banks_monotone", banks_ok,
                  "more banks help power-of-two strides (DESIGN.md section 5)");

  // --- vector length -------------------------------------------------------
  print_banner(std::cout, "Ablation: vector register length (VFFT N=256)");
  Table tv({"VL", "VFFT Mflops"});
  prev = 0;
  bool vl_ok = true;
  for (int vl : {64, 128, 256}) {
    auto cfg = sxs::MachineConfig::sx4_benchmarked();
    cfg.vector_length = vl;
    const double mf = vfft_mflops(cfg);
    tv.add_row({std::to_string(vl), format_fixed(mf, 1)});
    vl_ok = vl_ok && mf >= prev * 0.999;
    prev = mf;
    rep.metric("ablation.vfft_mflops@vl=" + std::to_string(vl), mf, "Mflops");
  }
  tv.print(std::cout);
  rep.expect_true("ablation.vector_length_monotone", vl_ok,
                  "longer vector registers help VFFT at M=500");

  // --- clock ---------------------------------------------------------------
  print_banner(std::cout, "Ablation: 9.2 ns vs 8.0 ns clock (RADABS)");
  machines::Comparator benchmarked(machines::Comparator::nec_sx4_single());
  const double r92 = radabs::run_radabs_standard(benchmarked).equiv_mflops;
  auto product = machines::Comparator::nec_sx4_single();
  product.cfg.clock_ns = 8.0;
  machines::Comparator prod(product);
  const double r80 = radabs::run_radabs_standard(prod).equiv_mflops;
  Table tc({"Clock", "RADABS equiv Mflops"});
  tc.add_row({"9.2 ns", format_fixed(r92, 1)});
  tc.add_row({"8.0 ns", format_fixed(r80, 1)});
  tc.print(std::cout);
  const double gain = r80 / r92 - 1.0;
  std::printf("clock gain: %.1f%% (paper predicts ~15%% with tuning; the\n"
              "pure clock ratio is %.1f%%)\n",
              100 * gain, 100 * (9.2 / 8.0 - 1.0));
  rep.expect("ablation.clock_gain_fraction", gain,
             bench::Band::range(0.10, 0.18),
             "paper: an additional 15% performance improvement at 8.0 ns");

  // --- synchronisation -----------------------------------------------------
  print_banner(std::cout, "Ablation: barrier cost (CCM2 T106, 32 CPUs)");
  Table ts({"Barrier base clocks", "CCM2 Gflops"});
  double g_cheap = 0, g_dear = 0;
  for (double base : {100.0, 1500.0, 15000.0}) {
    auto cfg = sxs::MachineConfig::sx4_benchmarked();
    cfg.barrier_base_clocks = base;
    const double g = ccm2_gflops(cfg);
    ts.add_row({format_fixed(base, 0), format_fixed(g, 2)});
    if (base == 100.0) g_cheap = g;
    if (base == 15000.0) g_dear = g;
    rep.metric("ablation.ccm2_gflops@barrier_clocks=" +
                   std::to_string(long(base)),
               g, "Gflops");
  }
  ts.print(std::cout);
  std::printf("cheap barriers beat expensive ones: %s\n",
              g_cheap > g_dear ? "yes" : "NO");
  rep.expect_true("ablation.cheap_barriers_beat_expensive", g_cheap > g_dear,
                  "inflating macrotask barrier cost lowers 32-CPU CCM2 rate");

  // Attribution of the benchmarked configuration (CCM2 T106, 32 CPUs) — an
  // extra charge replay, run only when tracing is on so the default-mode
  // wall time and result JSON are untouched.
  if (trace::mode() != trace::Mode::Off) {
    const auto cfg = sxs::MachineConfig::sx4_benchmarked();
    sxs::Node node(cfg);
    // Streaming trace sink (SX4NCAR_TRACE=stream); inactive in other modes.
    bench::StreamTrace stream(rep.aux_path("trace.sxt"), node);
    ccm2::Ccm2Config c;
    c.res = ccm2::t106l18();
    c.active_levels = 1;
    ccm2::Ccm2 model(c, node);
    model.charge_sustained_equiv_gflops(32, 1);
    bench::print_attribution(std::cout, node);
    bench::report_attribution(rep, "ablation", node);
    bench::write_chrome_trace_file(rep.trace_path(), node);
    stream.finish(rep);
  }

  return rep.finish(std::cout);
}
