// Figure 5 — single-CPU memory bandwidth for COPY, IA, and XPOSE on the
// SX-4/1 (MB/s vs inner axis length, constant total work ~10^6 elements,
// KTRIES = 20 with best-of reporting).
//
// The paper's prose constraint: "the performance on the COPY benchmark far
// exceeds the performance on the XPOSE and IA benchmarks", with bandwidth
// growing with N as vector startup amortises.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "kernels/memory_kernels.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main() {
  using namespace ncar;
  std::cout << "host execution: " << sxs::host_execution_summary()
            << "\n\n";
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  sxs::Cpu& cpu = node.cpu(0);

  const bool full = std::getenv("SX4NCAR_BENCH_FULL") != nullptr;
  const long total = full ? 1'000'000 : 250'000;
  const int ktries = 20;

  print_banner(std::cout, "Figure 5: memory bandwidth, SX-4/1 (MB/s)");
  std::printf("total work per point: %ld elements, KTRIES=%d\n\n", total,
              ktries);

  const auto copy = kernels::sweep(kernels::MemKernel::Copy, cpu, total, ktries);
  const auto ia =
      kernels::sweep(kernels::MemKernel::IndirectAddress, cpu, total, ktries);
  const auto xpose =
      kernels::sweep(kernels::MemKernel::Transpose, cpu, total, ktries);

  Table t({"N (COPY/IA)", "COPY MB/s", "IA MB/s", "N (XPOSE)", "XPOSE MB/s"});
  const std::size_t rows = std::max(copy.size(), xpose.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::string c_n, c_copy, c_ia, x_n, x_bw;
    if (i < copy.size()) {
      c_n = std::to_string(copy[i].n);
      c_copy = format_fixed(copy[i].mb_per_s, 0);
      c_ia = format_fixed(ia[i].mb_per_s, 0);
    }
    if (i < xpose.size()) {
      x_n = std::to_string(xpose[i].n);
      x_bw = format_fixed(xpose[i].mb_per_s, 0);
    }
    t.add_row({c_n, c_copy, c_ia, x_n, x_bw});
  }
  t.print(std::cout);

  bool verified = true;
  for (const auto& p : copy) verified = verified && p.verified;
  for (const auto& p : ia) verified = verified && p.verified;
  for (const auto& p : xpose) verified = verified && p.verified;

  // Paper-shape checks at the long-vector end.
  const auto& c_hi = copy.back();
  const auto& i_hi = ia.back();
  const auto& x_hi = xpose.back();
  const bool copy_dominates =
      c_hi.mb_per_s > 2.0 * i_hi.mb_per_s && c_hi.mb_per_s > 1.5 * x_hi.mb_per_s;
  const bool grows = copy.front().mb_per_s < c_hi.mb_per_s;

  std::printf("\nnumerics verified: %s\n", verified ? "yes" : "NO");
  std::printf("COPY far exceeds IA and XPOSE at long vectors: %s (paper: yes)\n",
              copy_dominates ? "yes" : "NO");
  std::printf("bandwidth grows with N (startup amortisation): %s\n",
              grows ? "yes" : "NO");
  std::printf("peak COPY bandwidth: %.0f MB/s (one-way payload)\n",
              c_hi.mb_per_s);
  return (verified && copy_dominates && grows) ? 0 : 1;
}
