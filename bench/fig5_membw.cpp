// Figure 5 — single-CPU memory bandwidth for COPY, IA, and XPOSE on the
// SX-4/1 (MB/s vs inner axis length, constant total work ~10^6 elements,
// KTRIES = 20 with best-of reporting).
//
// The paper's prose constraint: "the performance on the COPY benchmark far
// exceeds the performance on the XPOSE and IA benchmarks", with bandwidth
// growing with N as vector startup amortises.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "kernels/memory_kernels.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("fig5_membw", argc, argv);
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  sxs::Cpu& cpu = node.cpu(0);

  const bool full = rep.full_mode();
  const long total = full ? 1'000'000 : 250'000;
  const int ktries = 20;

  print_banner(std::cout, "Figure 5: memory bandwidth, SX-4/1 (MB/s)");
  std::printf("total work per point: %ld elements, KTRIES=%d\n\n", total,
              ktries);

  const auto copy = kernels::sweep(kernels::MemKernel::Copy, cpu, total, ktries);
  const auto ia =
      kernels::sweep(kernels::MemKernel::IndirectAddress, cpu, total, ktries);
  const auto xpose =
      kernels::sweep(kernels::MemKernel::Transpose, cpu, total, ktries);

  Table t({"N (COPY/IA)", "COPY MB/s", "IA MB/s", "N (XPOSE)", "XPOSE MB/s"});
  const std::size_t rows = std::max(copy.size(), xpose.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::string c_n, c_copy, c_ia, x_n, x_bw;
    if (i < copy.size()) {
      c_n = std::to_string(copy[i].n);
      c_copy = format_fixed(copy[i].mb_per_s, 0);
      c_ia = format_fixed(ia[i].mb_per_s, 0);
    }
    if (i < xpose.size()) {
      x_n = std::to_string(xpose[i].n);
      x_bw = format_fixed(xpose[i].mb_per_s, 0);
    }
    t.add_row({c_n, c_copy, c_ia, x_n, x_bw});
  }
  t.print(std::cout);

  bool verified = true;
  for (const auto& p : copy) {
    verified = verified && p.verified;
    rep.metric("fig5.copy.mb_per_s@N=" + std::to_string(p.n), p.mb_per_s,
               "MB/s");
  }
  for (const auto& p : ia) {
    verified = verified && p.verified;
    rep.metric("fig5.ia.mb_per_s@N=" + std::to_string(p.n), p.mb_per_s,
               "MB/s");
  }
  for (const auto& p : xpose) {
    verified = verified && p.verified;
    rep.metric("fig5.xpose.mb_per_s@N=" + std::to_string(p.n), p.mb_per_s,
               "MB/s");
  }

  // Paper-shape checks at the long-vector end.
  const auto& c_hi = copy.back();
  const auto& i_hi = ia.back();
  const auto& x_hi = xpose.back();
  const bool copy_dominates =
      c_hi.mb_per_s > 2.0 * i_hi.mb_per_s && c_hi.mb_per_s > 1.5 * x_hi.mb_per_s;
  const bool grows = copy.front().mb_per_s < c_hi.mb_per_s;

  rep.expect_true("fig5.numerics_verified", verified,
                  "all kernel results checked against reference");
  rep.expect_true(
      "fig5.copy_dominates", copy_dominates,
      "paper Fig 5 prose: COPY far exceeds IA and XPOSE at long vectors");
  rep.expect_true("fig5.bandwidth_grows_with_n", grows,
                  "paper Fig 5 prose: vector startup amortises with N");
  rep.metric("fig5.copy.peak_mb_per_s", c_hi.mb_per_s, "MB/s");

  std::printf("\nnumerics verified: %s\n", verified ? "yes" : "NO");
  std::printf("COPY far exceeds IA and XPOSE at long vectors: %s (paper: yes)\n",
              copy_dominates ? "yes" : "NO");
  std::printf("bandwidth grows with N (startup amortisation): %s\n",
              grows ? "yes" : "NO");
  std::printf("peak COPY bandwidth: %.0f MB/s (one-way payload)\n",
              c_hi.mb_per_s);
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));

  // Host-side timing telemetry: repeat the COPY sweep on a scratch node (so
  // the deterministic metrics above are untouched) and report wall-clock
  // percentiles. Rides in host_metrics, omitted under --deterministic.
  {
    sxs::Node tnode(cfg);
    std::vector<double> samples;
    for (int r = 0; r < 11; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      kernels::sweep(kernels::MemKernel::Copy, tnode.cpu(0), total, ktries);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    rep.host_timing("fig5.host.copy_sweep_s", samples);
  }
  return rep.finish(std::cout);
}
