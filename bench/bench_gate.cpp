// bench_gate — CI gate over the bench result files.
//
// Diffs bench/results/*.json (a fresh run) against bench/baselines/*.json
// (committed) with a symmetric relative tolerance, re-checks every
// recorded paper expectation, and writes one BENCH_SUMMARY.json roll-up.
// Exit 0 = clean; 1 = regression / missing metric / failed expectation;
// 2 = unusable configuration.
//
//   bench_gate --results build/bench/results --baselines bench/baselines
//              --summary build/bench/BENCH_SUMMARY.json [--tol 0.02]
//
// `--update-baselines` regenerates the committed baselines from a results
// directory (used after an intentional model change; see README.md).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/gate.hpp"

namespace {

[[noreturn]] void usage(int exit_code) {
  std::FILE* out = exit_code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: bench_gate [options]\n"
               "  --results <dir>     bench result JSONs (default "
               "bench/results)\n"
               "  --baselines <dir>   committed baselines (default "
               "bench/baselines)\n"
               "  --summary <path>    write roll-up JSON (default "
               "BENCH_SUMMARY.json next to --results)\n"
               "  --tol <rel>         relative tolerance (default 0.02)\n"
               "  --update-baselines  rewrite baselines from results\n"
               "  --help              this message\n");
  std::exit(exit_code);
}

}  // namespace

int main(int argc, char** argv) {
  ncar::bench::GateOptions opts;
  opts.results_dir = "bench/results";
  opts.baselines_dir = "bench/baselines";
  bool summary_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_gate: %s needs a value\n", arg.c_str());
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--results") opts.results_dir = value();
    else if (arg == "--baselines") opts.baselines_dir = value();
    else if (arg == "--summary") {
      opts.summary_path = value();
      summary_set = true;
    } else if (arg == "--tol") opts.rel_tol = std::atof(value().c_str());
    else if (arg == "--update-baselines") opts.update_baselines = true;
    else if (arg == "--help" || arg == "-h") usage(0);
    else {
      std::fprintf(stderr, "bench_gate: unknown option %s\n", arg.c_str());
      usage(2);
    }
  }
  if (!summary_set && !opts.update_baselines) {
    opts.summary_path = opts.results_dir + "/../BENCH_SUMMARY.json";
  }

  return ncar::bench::run_gate(opts, std::cout);
}
