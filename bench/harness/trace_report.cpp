#include "harness/trace_report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <vector>

#include "harness/reporter.hpp"
#include "sxs/machine.hpp"
#include "sxs/node.hpp"
#include "trace/attribution.hpp"
#include "trace/category.hpp"
#include "trace/chrome_trace.hpp"

namespace ncar::bench {

namespace {

std::vector<const trace::Collector*> cpu_tracks(const sxs::Node& node) {
  std::vector<const trace::Collector*> tracks;
  tracks.reserve(static_cast<std::size_t>(node.cpu_count()));
  for (int i = 0; i < node.cpu_count(); ++i) {
    tracks.push_back(&node.cpu(i).trace());
  }
  return tracks;
}

void report_rows(BenchReporter& rep, const std::string& prefix,
                 const trace::Attribution& attr, const std::string& unit,
                 bool fractions) {
  rep.metric(prefix + ".total." + unit, attr.total_ticks, unit);
  for (const trace::AttributionRow& row : attr.rows) {
    const std::string base = prefix + "." + trace::to_string(row.category);
    rep.metric(base + "." + unit, row.ticks, unit);
    if (fractions) rep.metric(base + ".fraction", row.fraction);
  }
}

void report_cpu_and_runtime(BenchReporter& rep, const std::string& prefix,
                            const std::vector<const trace::Collector*>& cpus,
                            const std::vector<const trace::Collector*>& runtime) {
  report_rows(rep, prefix + ".attribution",
              trace::build_attribution(cpus), "cycles",
              /*fractions=*/true);
  report_rows(rep, prefix + ".attribution.node",
              trace::build_attribution(runtime), "seconds",
              /*fractions=*/false);
  // Span buffers can saturate (SX4NCAR_TRACE_MAX_SPANS) or a stream sink
  // can drop; surface the counts instead of letting a truncated trace
  // read as a short run. Only span-recording modes can truncate, so
  // summary-mode output stays unchanged.
  if (trace::spans_enabled(trace::mode())) {
    double dropped = 0.0;
    double max_spans = 0.0;
    for (const trace::Collector* c : cpus) {
      dropped += static_cast<double>(c->dropped_spans());
      max_spans = std::max(max_spans, static_cast<double>(c->max_spans()));
    }
    for (const trace::Collector* c : runtime) {
      dropped += static_cast<double>(c->dropped_spans());
      max_spans = std::max(max_spans, static_cast<double>(c->max_spans()));
    }
    rep.metric(prefix + ".trace.dropped_spans", dropped);
    rep.metric(prefix + ".trace.max_spans", max_spans);
  }
}

void print_rows(std::ostream& os, const trace::Attribution& attr,
                const char* unit) {
  char line[128];
  std::snprintf(line, sizeof line, "  %-16s %18s %8s\n", "category", unit,
                "share");
  os << "attribution (" << trace::to_string(trace::mode()) << " mode):\n"
     << line;
  for (const trace::AttributionRow& row : attr.rows) {
    if (row.ticks == 0.0) continue;
    std::snprintf(line, sizeof line, "  %-16s %18.6e %7.2f%%\n",
                  trace::to_string(row.category), row.ticks,
                  100.0 * row.fraction);
    os << line;
  }
  std::snprintf(line, sizeof line, "  %-16s %18.6e\n", "total",
                attr.total_ticks);
  os << line << "\n";
}

bool write_tracks(const std::string& path,
                  const std::vector<trace::TraceTrack>& tracks) {
  if (trace::mode() != trace::Mode::Full) return false;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path);
  if (!out) return false;
  trace::write_chrome_trace(out, tracks);
  return out.good();
}

void append_node_tracks(std::vector<trace::TraceTrack>& tracks,
                        const sxs::Node& node, int pid,
                        const std::string& process_name) {
  tracks.push_back({&node.runtime_trace(), pid, 0, process_name, "runtime"});
  for (int i = 0; i < node.cpu_count(); ++i) {
    const trace::Collector& c = node.cpu(i).trace();
    if (c.spans().empty()) continue;
    tracks.push_back(
        {&c, pid, i + 1, process_name, "cpu" + std::to_string(i)});
  }
}

}  // namespace

void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const sxs::Node& node) {
  if (trace::mode() == trace::Mode::Off) return;
  report_cpu_and_runtime(rep, prefix, cpu_tracks(node),
                         {&node.runtime_trace()});
}

void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const sxs::Machine& machine) {
  if (trace::mode() == trace::Mode::Off) return;
  std::vector<const trace::Collector*> cpus;
  std::vector<const trace::Collector*> runtime;
  for (int n = 0; n < machine.node_count(); ++n) {
    const sxs::Node& node = machine.node(n);
    for (int i = 0; i < node.cpu_count(); ++i) {
      cpus.push_back(&node.cpu(i).trace());
    }
    runtime.push_back(&node.runtime_trace());
  }
  report_cpu_and_runtime(rep, prefix, cpus, runtime);
}

void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const trace::Collector& track,
                        const std::string& unit) {
  if (trace::mode() == trace::Mode::Off) return;
  report_rows(rep, prefix + ".attribution", trace::build_attribution(track),
              unit, /*fractions=*/true);
}

bool write_chrome_trace_file(const std::string& path, const sxs::Node& node) {
  std::vector<trace::TraceTrack> tracks;
  append_node_tracks(tracks, node, 0, "node0");
  return write_tracks(path, tracks);
}

bool write_chrome_trace_file(const std::string& path,
                             const sxs::Machine& machine) {
  std::vector<trace::TraceTrack> tracks;
  for (int n = 0; n < machine.node_count(); ++n) {
    append_node_tracks(tracks, machine.node(n), n,
                       "node" + std::to_string(n));
  }
  return write_tracks(path, tracks);
}

bool write_chrome_trace_file(const std::string& path, const sxs::Node& node,
                             const trace::Collector& extra_track,
                             const std::string& extra_name) {
  std::vector<trace::TraceTrack> tracks;
  append_node_tracks(tracks, node, 0, "node0");
  tracks.push_back({&extra_track, 1, 0, extra_name, extra_name});
  return write_tracks(path, tracks);
}

void print_attribution(std::ostream& os, const sxs::Node& node) {
  if (trace::mode() == trace::Mode::Off) return;
  print_rows(os, trace::build_attribution(cpu_tracks(node)), "cycles");
}

StreamTrace::StreamTrace(const std::string& path, sxs::Node& node) {
  if (trace::mode() != trace::Mode::Stream) return;
  writer_ = trace::stream::Writer::open(path);
  if (writer_ == nullptr) return;
  attach_node(node, 0, "node0");
}

StreamTrace::StreamTrace(const std::string& path, sxs::Machine& machine) {
  if (trace::mode() != trace::Mode::Stream) return;
  writer_ = trace::stream::Writer::open(path);
  if (writer_ == nullptr) return;
  for (int n = 0; n < machine.node_count(); ++n) {
    attach_node(machine.node(n), n, "node" + std::to_string(n));
  }
}

StreamTrace::StreamTrace(const std::string& path, sxs::Node& node,
                         trace::Collector& extra_track,
                         const std::string& extra_name) {
  if (trace::mode() != trace::Mode::Stream) return;
  writer_ = trace::stream::Writer::open(path);
  if (writer_ == nullptr) return;
  attach_node(node, 0, "node0");
  trace::stream::Writer::TrackSpec spec;
  spec.pid = 1;
  spec.tid = 0;
  spec.process_name = extra_name;
  spec.thread_name = extra_name;
  attach(extra_track, spec);
}

StreamTrace::~StreamTrace() {
  for (trace::Collector* c : attached_) c->set_stream_sink(nullptr);
  // writer_ destructor finalises if finish() never ran.
}

void StreamTrace::attach_node(sxs::Node& node, int pid,
                              const std::string& process_name) {
  // Track order and identity mirror append_node_tracks exactly: runtime
  // first on tid 0, then cpu i on tid i+1 with the Full-mode exporter's
  // skip-empty-CPU-track rule carried as a footer flag.
  trace::stream::Writer::TrackSpec spec;
  spec.pid = pid;
  spec.tid = 0;
  spec.process_name = process_name;
  spec.thread_name = "runtime";
  attach(node.runtime_trace(), spec);
  for (int i = 0; i < node.cpu_count(); ++i) {
    spec.tid = i + 1;
    spec.thread_name = "cpu" + std::to_string(i);
    spec.skip_if_empty = true;
    attach(node.cpu(i).trace(), spec);
  }
}

void StreamTrace::attach(trace::Collector& collector,
                         const trace::stream::Writer::TrackSpec& spec) {
  trace::stream::Writer::TrackSpec full = spec;
  full.seconds_per_tick = collector.seconds_per_tick();
  full.max_spans = collector.max_spans();
  collector.set_stream_sink(&writer_->add_track(full));
  attached_.push_back(&collector);
}

bool StreamTrace::finish(BenchReporter& rep) {
  if (!active()) return false;
  for (trace::Collector* c : attached_) c->set_stream_sink(nullptr);
  attached_.clear();
  const bool ok = writer_->finalize();
  const trace::stream::Writer::Stats& st = writer_->stats();
  const std::string prefix = rep.name() + ".trace_stream";
  const double events = static_cast<double>(st.events);
  const double bytes = static_cast<double>(st.file_bytes);
  rep.metric(prefix + ".events", events);
  rep.metric(prefix + ".bytes", bytes, "bytes");
  rep.metric(prefix + ".bytes_per_event", events > 0 ? bytes / events : 0.0);
  rep.metric(prefix + ".dropped", static_cast<double>(st.dropped));
  writer_.reset();
  return ok;
}

void print_attribution(std::ostream& os, const sxs::Machine& machine) {
  if (trace::mode() == trace::Mode::Off) return;
  std::vector<const trace::Collector*> cpus;
  for (int n = 0; n < machine.node_count(); ++n) {
    const sxs::Node& node = machine.node(n);
    for (int i = 0; i < node.cpu_count(); ++i) {
      cpus.push_back(&node.cpu(i).trace());
    }
  }
  print_rows(os, trace::build_attribution(cpus), "cycles");
}

}  // namespace ncar::bench
