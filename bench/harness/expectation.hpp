#pragma once
// Tolerance bands and paper-anchored expectations.
//
// An Expectation ties a named metric to the value the paper (or
// EXPERIMENTS.md) records for it, plus the tolerance band inside which the
// model is considered faithful. Bench mains register expectations through
// BenchReporter; the band, actual value, and verdict all land in the
// emitted JSON so `bench_gate` and CI can re-check them without rerunning
// the bench.

#include <string>
#include <vector>

#include "harness/json.hpp"

namespace ncar::bench {

/// An inclusive acceptance interval around an expected value.
struct Band {
  enum class Kind {
    Absolute,  ///< expected ± tol
    Relative,  ///< expected ± tol * |expected|
    Range,     ///< [lo, hi] with no single expected point
    Boolean,   ///< actual must equal expected (0 or 1)
  };

  Kind kind = Kind::Absolute;
  double expected = 0.0;  ///< paper value (midpoint for Range)
  double tol = 0.0;       ///< absolute or relative half-width
  double lo_ = 0.0, hi_ = 0.0;  ///< Range bounds

  static Band absolute(double expected, double tol);
  static Band relative(double expected, double rel_tol);
  static Band range(double lo, double hi);
  static Band boolean(bool expected);

  double lo() const;
  double hi() const;
  bool contains(double actual) const;

  /// Human-readable form, e.g. "24 ±25%" or "[0.10, 0.18]".
  std::string describe() const;

  Json to_json() const;
  static Band from_json(const Json& j);

  bool operator==(const Band& other) const;
};

/// A checked claim: metric vs band, with provenance.
struct Expectation {
  std::string metric;  ///< name of the metric being checked
  Band band;
  std::string source;  ///< e.g. "paper Table 7", "EXPERIMENTS.md fig8"
  double actual = 0.0;
  bool passed = false;

  Json to_json() const;
  static Expectation from_json(const Json& j);
};

}  // namespace ncar::bench
