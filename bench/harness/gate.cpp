#include "harness/gate.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "harness/baseline.hpp"
#include "harness/expectation.hpp"
#include "harness/reporter.hpp"

namespace fs = std::filesystem;

namespace ncar::bench {

namespace {

/// Sorted *.json stems in `dir` so the gate's order (and the summary) is
/// independent of directory enumeration order.
std::vector<std::string> json_stems(const fs::path& dir) {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      stems.push_back(entry.path().stem().string());
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

Json load_json_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

}  // namespace

Json GateReport::summary(double rel_tol) const {
  Json j = Json::object();
  j.set("schema", "sx4ncar-bench-summary-v1");
  j.set("rel_tol", rel_tol);
  j.set("ok", ok);
  int regressed = 0, failed_exp = 0;
  Json benches = Json::array();
  for (const auto& e : entries) {
    Json b = Json::object();
    b.set("bench", e.bench);
    b.set("status", e.status);
    b.set("metrics_checked", e.metrics_checked);
    b.set("regressed", e.regressed);
    b.set("missing_metrics", e.missing_metrics);
    b.set("expectations_failed", e.expectations_failed);
    if (!e.notes.empty()) {
      Json notes = Json::array();
      for (const auto& n : e.notes) notes.push_back(n);
      b.set("notes", std::move(notes));
    }
    benches.push_back(std::move(b));
    regressed += e.regressed;
    failed_exp += e.expectations_failed;
  }
  j.set("benches", std::move(benches));
  j.set("total_regressed", regressed);
  j.set("total_expectations_failed", failed_exp);
  return j;
}

int run_gate(const GateOptions& opts, std::ostream& log,
             GateReport* out_report) {
  if (!fs::is_directory(opts.results_dir)) {
    log << "bench_gate: results directory not found: " << opts.results_dir
        << '\n';
    return 2;
  }

  if (opts.update_baselines) {
    fs::create_directories(opts.baselines_dir);
    int written = 0;
    for (const auto& stem : json_stems(opts.results_dir)) {
      try {
        const Json result =
            load_json_file(fs::path(opts.results_dir) / (stem + ".json"));
        const Baseline base = result_to_baseline(result);
        base.save((fs::path(opts.baselines_dir) / (stem + ".json")).string());
        log << "bench_gate: baselined " << base.bench << " ("
            << base.metrics.size() << " metrics)\n";
        ++written;
      } catch (const std::exception& e) {
        log << "bench_gate: skipping " << stem << ": " << e.what() << '\n';
      }
    }
    log << "bench_gate: wrote " << written << " baselines to "
        << opts.baselines_dir << '\n';
    return 0;
  }

  if (!fs::is_directory(opts.baselines_dir)) {
    log << "bench_gate: baselines directory not found: " << opts.baselines_dir
        << '\n';
    return 2;
  }

  GateReport report;

  // Pass 1: every committed baseline must have a matching, in-band result.
  for (const auto& stem : json_stems(opts.baselines_dir)) {
    GateEntry entry;
    entry.bench = stem;
    const fs::path result_path = fs::path(opts.results_dir) / (stem + ".json");

    Baseline base;
    try {
      base = Baseline::load(
          (fs::path(opts.baselines_dir) / (stem + ".json")).string());
    } catch (const std::exception& e) {
      entry.status = "invalid-result";
      entry.notes.push_back(e.what());
      report.entries.push_back(std::move(entry));
      continue;
    }

    if (!fs::exists(result_path)) {
      entry.status = "missing-result";
      entry.notes.push_back("no result file " + result_path.string());
      report.entries.push_back(std::move(entry));
      continue;
    }

    Json result;
    Baseline run;
    try {
      result = load_json_file(result_path);
      run = Baseline::from_json(result);
    } catch (const std::exception& e) {
      entry.status = "invalid-result";
      entry.notes.push_back(e.what());
      report.entries.push_back(std::move(entry));
      continue;
    }

    if (run.full_mode != base.full_mode) {
      entry.status = "mode-mismatch";
      entry.notes.push_back(std::string("baseline is ") +
                            (base.full_mode ? "full" : "quick") +
                            " mode, result is " +
                            (run.full_mode ? "full" : "quick"));
      report.entries.push_back(std::move(entry));
      continue;
    }

    const CompareResult cmp = compare_metrics(base, run.metrics, opts.rel_tol);
    entry.metrics_checked = static_cast<int>(cmp.deltas.size());
    entry.regressed = cmp.regressed;
    entry.missing_metrics = cmp.missing;
    for (const auto& d : cmp.deltas) {
      if (d.status == MetricDelta::Status::Missing) {
        entry.notes.push_back("missing metric " + d.name);
      } else if (d.status == MetricDelta::Status::Regressed) {
        entry.notes.push_back(
            d.name + ": baseline " + Json::number_to_string(d.baseline) +
            ", now " + Json::number_to_string(d.actual) + " (" +
            Json::number_to_string(100.0 * d.rel_change) + "%)");
      }
    }

    if (const Json* failed = result.find("expectations_failed")) {
      entry.expectations_failed = static_cast<int>(failed->as_number());
      if (const Json* exps = result.find("expectations")) {
        for (const auto& ej : exps->as_array()) {
          const Expectation e = Expectation::from_json(ej);
          if (!e.passed) {
            entry.notes.push_back("expectation failed: " + e.metric + " [" +
                                  e.source + "]");
          }
        }
      }
    }

    if (entry.expectations_failed > 0) entry.status = "expectation-failed";
    else if (!cmp.ok()) entry.status = "regressed";
    else entry.status = "ok";
    report.entries.push_back(std::move(entry));
  }

  // Pass 2: results without a baseline still gate on their own recorded
  // expectations (e.g. host-timing benches we deliberately don't baseline).
  for (const auto& stem : json_stems(opts.results_dir)) {
    if (fs::exists(fs::path(opts.baselines_dir) / (stem + ".json"))) continue;
    GateEntry entry;
    entry.bench = stem;
    entry.status = "no-baseline";
    try {
      const Json result =
          load_json_file(fs::path(opts.results_dir) / (stem + ".json"));
      if (const Json* failed = result.find("expectations_failed")) {
        entry.expectations_failed = static_cast<int>(failed->as_number());
        if (entry.expectations_failed > 0) entry.status = "expectation-failed";
      }
    } catch (const std::exception& e) {
      entry.status = "invalid-result";
      entry.notes.push_back(e.what());
    }
    report.entries.push_back(std::move(entry));
  }

  std::sort(report.entries.begin(), report.entries.end(),
            [](const GateEntry& a, const GateEntry& b) {
              return a.bench < b.bench;
            });

  report.ok = true;
  for (const auto& e : report.entries) {
    if (e.status != "ok" && e.status != "no-baseline") report.ok = false;
    log << "bench_gate: " << e.bench << ": " << e.status;
    if (e.metrics_checked > 0) log << " (" << e.metrics_checked << " metrics)";
    log << '\n';
    for (const auto& n : e.notes) log << "  - " << n << '\n';
  }
  log << "bench_gate: " << report.entries.size() << " benches, verdict "
      << (report.ok ? "PASS" : "FAIL") << '\n';

  int rc = report.ok ? 0 : 1;
  if (!opts.summary_path.empty()) {
    try {
      const fs::path p(opts.summary_path);
      if (p.has_parent_path()) fs::create_directories(p.parent_path());
      std::ofstream out(opts.summary_path);
      if (!out) throw std::runtime_error("cannot write " + opts.summary_path);
      out << report.summary(opts.rel_tol).dump() << '\n';
      log << "bench_gate: wrote " << opts.summary_path << '\n';
    } catch (const std::exception& e) {
      log << "bench_gate: ERROR: " << e.what() << '\n';
      rc = 2;
    }
  }
  if (out_report) *out_report = std::move(report);
  return rc;
}

}  // namespace ncar::bench
