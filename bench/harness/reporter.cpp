#include "harness/reporter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>

#include "sxs/execution_policy.hpp"

namespace ncar::bench {

namespace {

[[noreturn]] void usage(const std::string& name, int exit_code) {
  std::FILE* out = exit_code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [options]\n"
               "  --json <path>        write result JSON to <path>\n"
               "  --results-dir <dir>  result directory (default bench/results)\n"
               "  --list               print metrics/expectations, no JSON\n"
               "  --ci-check           diff metrics against committed baseline\n"
               "  --baseline-dir <dir> baselines for --ci-check (default "
               "bench/baselines)\n"
               "  --tol <rel>          baseline tolerance (default 0.02)\n"
               "  --deterministic      omit host-dependent JSON fields\n"
               "  --help               this message\n",
               name.c_str());
  std::exit(exit_code);
}

std::string env_or(const char* var, const std::string& fallback) {
  const char* v = std::getenv(var);
  return v && *v ? std::string(v) : fallback;
}

}  // namespace

BenchReporter::BenchReporter(std::string name, int argc, char** argv)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
  // Set *and non-empty* selects the full sweep; `SX4NCAR_BENCH_FULL=` forces
  // the quick mode (CTest uses this so runs match the committed baselines).
  const char* full = std::getenv("SX4NCAR_BENCH_FULL");
  full_mode_ = full != nullptr && *full != '\0';
  results_dir_ = env_or("SX4NCAR_BENCH_RESULTS_DIR", "bench/results");
  baseline_dir_ = env_or("SX4NCAR_BASELINE_DIR", "bench/baselines");

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", name_.c_str(),
                     arg.c_str());
        usage(name_, 2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path_ = value();
    else if (arg == "--results-dir") results_dir_ = value();
    else if (arg == "--baseline-dir") baseline_dir_ = value();
    else if (arg == "--tol") tol_ = std::atof(value().c_str());
    else if (arg == "--list") list_ = true;
    else if (arg == "--ci-check") ci_check_ = true;
    else if (arg == "--deterministic") deterministic_ = true;
    else if (arg == "--help" || arg == "-h") usage(name_, 0);
    else {
      std::fprintf(stderr, "%s: unknown option %s\n", name_.c_str(),
                   arg.c_str());
      usage(name_, 2);
    }
  }

  host_execution_ = sxs::host_execution_summary();
  std::cout << "host execution: " << host_execution_ << "\n\n";
}

namespace {

void require_unique(const std::string& bench, const std::string& name,
                    const std::vector<Metric>& a,
                    const std::vector<Metric>& b) {
  for (const auto* v : {&a, &b}) {
    for (const auto& m : *v) {
      if (m.name == name) {
        std::fprintf(stderr, "%s: duplicate metric \"%s\"\n", bench.c_str(),
                     name.c_str());
        std::exit(2);
      }
    }
  }
}

}  // namespace

double BenchReporter::metric(const std::string& name, double value,
                             const std::string& unit) {
  require_unique(name_, name, metrics_, host_metrics_);
  metrics_.push_back({name, value, unit});
  return value;
}

double BenchReporter::host_metric(const std::string& name, double value,
                                  const std::string& unit) {
  require_unique(name_, name, metrics_, host_metrics_);
  host_metrics_.push_back({name, value, unit});
  return value;
}

void BenchReporter::host_timing(const std::string& prefix,
                                std::vector<double> samples) {
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  // Nearest-rank percentile: the smallest sample with at least p% of the
  // set at or below it.
  auto pct = [&](double p) {
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    return samples[std::min(rank, n) - 1];
  };
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= static_cast<double>(n);
  host_metric(prefix + ".p50", pct(50.0), "s");
  host_metric(prefix + ".p90", pct(90.0), "s");
  host_metric(prefix + ".p99", pct(99.0), "s");
  host_metric(prefix + ".stddev", std::sqrt(var), "s");
}

bool BenchReporter::expect(const std::string& metric_name, double actual,
                           Band band, const std::string& source,
                           const std::string& unit) {
  metric(metric_name, actual, unit);
  Expectation e;
  e.metric = metric_name;
  e.band = band;
  e.source = source;
  e.actual = actual;
  e.passed = band.contains(actual);
  expectations_.push_back(e);
  return e.passed;
}

bool BenchReporter::expect_true(const std::string& metric_name, bool ok,
                                const std::string& source) {
  return expect(metric_name, ok ? 1.0 : 0.0, Band::boolean(true), source);
}

void BenchReporter::cost_cache_counters(double hits, double misses) {
  metric(name_ + ".cost_cache.hits", hits);
  metric(name_ + ".cost_cache.misses", misses);
  const double total = hits + misses;
  metric(name_ + ".cost_cache.hit_rate", total > 0 ? hits / total : 0.0);
}

Json BenchReporter::result_json() const {
  Json j = Json::object();
  j.set("schema", "sx4ncar-bench-result-v1");
  j.set("bench", name_);
  j.set("full_mode", full_mode_);
  if (!deterministic_) {
    j.set("host_execution", host_execution_);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    j.set("wall_time_s", wall);
    if (!host_metrics_.empty()) {
      Json hs = Json::object();
      for (const auto& m : host_metrics_) hs.set(m.name, m.value);
      j.set("host_metrics", std::move(hs));
    }
  }
  Json ms = Json::object();
  for (const auto& m : metrics_) ms.set(m.name, m.value);
  j.set("metrics", std::move(ms));
  Json units = Json::object();
  for (const auto& m : metrics_) {
    if (!m.unit.empty()) units.set(m.name, m.unit);
  }
  if (!units.as_object().empty()) j.set("units", std::move(units));
  Json exps = Json::array();
  int failed = 0;
  for (const auto& e : expectations_) {
    exps.push_back(e.to_json());
    if (!e.passed) ++failed;
  }
  j.set("expectations", std::move(exps));
  j.set("expectations_failed", failed);
  j.set("passed", failed == 0);
  return j;
}

int BenchReporter::check_baseline(std::ostream& os) {
  const std::string path = baseline_dir_ + "/" + name_ + ".json";
  Baseline base;
  try {
    base = Baseline::load(path);
  } catch (const std::exception& e) {
    os << "[harness] ci-check: " << e.what() << '\n';
    return 1;
  }
  if (base.full_mode != full_mode_) {
    os << "[harness] ci-check: mode mismatch (baseline "
       << (base.full_mode ? "full" : "quick") << ", run "
       << (full_mode_ ? "full" : "quick") << ")\n";
    return 1;
  }
  const CompareResult cmp = compare_metrics(base, metrics_, tol_);
  for (const auto& d : cmp.deltas) {
    if (d.status == MetricDelta::Status::Missing) {
      os << "[harness] ci-check MISSING " << d.name << " (baseline "
         << Json::number_to_string(d.baseline) << ")\n";
    } else if (d.status == MetricDelta::Status::Regressed) {
      os << "[harness] ci-check REGRESSED " << d.name << ": baseline "
         << Json::number_to_string(d.baseline) << ", now "
         << Json::number_to_string(d.actual) << " ("
         << Json::number_to_string(100.0 * d.rel_change) << "%)\n";
    }
  }
  os << "[harness] ci-check vs " << path << ": " << cmp.deltas.size()
     << " metrics, " << cmp.regressed << " regressed, " << cmp.missing
     << " missing\n";
  return cmp.ok() ? 0 : 1;
}

int BenchReporter::finish(std::ostream& os) {
  int failed = 0;
  for (const auto& e : expectations_) {
    if (!e.passed) ++failed;
  }

  os << "\n[harness] " << name_ << ": " << metrics_.size() << " metrics, "
     << expectations_.size() << " expectations, " << failed << " failed"
     << (full_mode_ ? " (full mode)" : "") << '\n';
  for (const auto& e : expectations_) {
    if (!e.passed) {
      os << "[harness] FAILED " << e.metric << ": actual "
         << Json::number_to_string(e.actual) << " outside "
         << e.band.describe() << " [" << e.source << "]\n";
    }
  }

  int rc = failed == 0 ? 0 : 1;
  if (ci_check_ && check_baseline(os) != 0) rc = 1;

  if (list_) {
    for (const auto& m : metrics_) {
      os << "metric " << m.name << " = " << Json::number_to_string(m.value);
      if (!m.unit.empty()) os << ' ' << m.unit;
      os << '\n';
    }
    for (const auto& m : host_metrics_) {
      os << "host_metric " << m.name << " = "
         << Json::number_to_string(m.value);
      if (!m.unit.empty()) os << ' ' << m.unit;
      os << '\n';
    }
    for (const auto& e : expectations_) {
      os << "expectation " << e.metric << " in " << e.band.describe()
         << " [" << e.source << "] -> " << (e.passed ? "pass" : "FAIL")
         << '\n';
    }
    if (json_path_.empty()) return rc;
  }

  const std::string path =
      json_path_.empty() ? results_dir_ + "/" + name_ + ".json" : json_path_;
  try {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << result_json().dump() << '\n';
    os << "[harness] wrote " << path << '\n';
  } catch (const std::exception& e) {
    os << "[harness] ERROR writing result JSON: " << e.what() << '\n';
    return 2;
  }
  return rc;
}

Baseline result_to_baseline(const Json& result) {
  Baseline b = Baseline::from_json(result);
  return b;
}

}  // namespace ncar::bench
