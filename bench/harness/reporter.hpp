#pragma once
// BenchReporter — the machine-readable spine of every bench main.
//
// Usage pattern (see any bench/*.cpp):
//
//   int main(int argc, char** argv) {
//     bench::BenchReporter rep("table7_mom", argc, argv);
//     ... print the human tables exactly as before ...
//     rep.metric("table7.mom.speedup@cpus=32", speedup);
//     rep.expect("table7.mom.seconds@cpus=32", time350,
//                bench::Band::relative(226.62, 0.25), "paper Table 7");
//     return rep.finish(std::cout);
//   }
//
// The reporter prints the host-execution banner at construction, collects
// named scalar metrics and paper expectations during the run, and at
// finish() prints a verdict block, writes bench/results/<name>.json, and
// returns the process exit code (0 only if every expectation holds — and,
// under --ci-check, if no metric regressed against the committed
// baseline). Command line:
//
//   --json <path>         write the result JSON to <path> instead of
//                         <results-dir>/<name>.json
//   --results-dir <dir>   result directory (default bench/results, or
//                         $SX4NCAR_BENCH_RESULTS_DIR)
//   --list                print registered metrics/expectations instead of
//                         writing JSON
//   --ci-check            also diff metrics against the committed baseline
//   --baseline-dir <dir>  baseline directory for --ci-check (default
//                         bench/baselines, or $SX4NCAR_BASELINE_DIR)
//   --tol <rel>           baseline tolerance for --ci-check (default 0.02)
//   --deterministic       omit host-dependent JSON fields (host_execution,
//                         wall_time_s, host_metrics) so emitted files are
//                         byte-identical across host-thread policies

#include <chrono>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/baseline.hpp"
#include "harness/expectation.hpp"
#include "harness/json.hpp"

namespace ncar::bench {

class BenchReporter {
public:
  /// Parses flags (exits on --help / bad usage) and prints the
  /// "host execution: ..." banner followed by a blank line.
  BenchReporter(std::string name, int argc, char** argv);

  /// Register a named scalar. Names must be unique within a run; returns
  /// `value` so measurements can be registered inline.
  double metric(const std::string& name, double value,
                const std::string& unit = "");

  /// Register a host-dependent scalar (events/sec, wall-clock rates...).
  /// Host metrics live under a separate "host_metrics" JSON key, are never
  /// folded into baselines, and are omitted entirely under
  /// --deterministic — so perf telemetry can ride along without breaking
  /// byte-identity guarantees.
  double host_metric(const std::string& name, double value,
                     const std::string& unit = "");

  /// Register host-timing statistics over per-repetition wall-clock
  /// samples (seconds): `<prefix>.p50/.p90/.p99` (nearest-rank percentiles
  /// on a sorted copy) and `<prefix>.stddev` (population). Host metrics
  /// like host_metric(): never folded into baselines, omitted entirely
  /// under --deterministic. No-op on an empty sample set.
  void host_timing(const std::string& prefix, std::vector<double> samples);

  /// Register a metric *and* check it against a paper band. Returns the
  /// verdict (also folded into the exit code at finish()).
  bool expect(const std::string& metric_name, double actual, Band band,
              const std::string& source, const std::string& unit = "");

  /// Boolean claim (stored as a 0/1 metric with a Boolean band).
  bool expect_true(const std::string& metric_name, bool ok,
                   const std::string& source);

  /// Record the simulator's op-cost cache counters under the standard names
  /// `<bench>.cost_cache.{hits,misses,hit_rate}` (CI greps for the
  /// hit_rate suffix). Plain doubles keep the harness decoupled from
  /// sxs::Cpu; counters are deterministic, so the metrics are gate-safe.
  void cost_cache_counters(double hits, double misses);

  /// True when SX4NCAR_BENCH_FULL is set — recorded in the JSON so the
  /// gate can refuse to compare quick-mode results to full-mode baselines.
  bool full_mode() const { return full_mode_; }

  /// Default location for the Chrome trace a bench may emit in
  /// SX4NCAR_TRACE=full mode: <results-dir>/<name>.trace.json.
  std::string trace_path() const { return aux_path("trace.json"); }

  /// Path for an auxiliary artifact riding along with the result JSON:
  /// <results-dir>/<name>.<suffix> (e.g. design_sweep's full report).
  std::string aux_path(const std::string& suffix) const {
    return results_dir_ + "/" + name_ + "." + suffix;
  }

  const std::string& name() const { return name_; }
  const std::vector<Metric>& metrics() const { return metrics_; }
  const std::vector<Metric>& host_metrics() const { return host_metrics_; }
  const std::vector<Expectation>& expectations() const {
    return expectations_;
  }

  /// Result document in the result-v1 schema (what finish() writes).
  Json result_json() const;

  /// Print the verdict block, write (or --list) the JSON, and return the
  /// process exit code.
  int finish(std::ostream& os);

private:
  int check_baseline(std::ostream& os);

  std::string name_;
  bool full_mode_ = false;
  bool list_ = false;
  bool ci_check_ = false;
  bool deterministic_ = false;
  double tol_ = 0.02;
  std::string json_path_;
  std::string results_dir_;
  std::string baseline_dir_;
  std::string host_execution_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Metric> metrics_;
  std::vector<Metric> host_metrics_;
  std::vector<Expectation> expectations_;
};

/// Convert a result-v1 document into the committed-baseline schema
/// (drops host-dependent fields and expectations). Used by
/// `bench_gate --update-baselines`.
Baseline result_to_baseline(const Json& result);

}  // namespace ncar::bench
