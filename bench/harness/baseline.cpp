#include "harness/baseline.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ncar::bench {

const Metric* Baseline::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Json Baseline::to_json() const {
  Json j = Json::object();
  j.set("schema", "sx4ncar-bench-baseline-v1");
  j.set("bench", bench);
  j.set("full_mode", full_mode);
  Json ms = Json::object();
  for (const auto& m : metrics) ms.set(m.name, m.value);
  j.set("metrics", std::move(ms));
  Json units = Json::object();
  for (const auto& m : metrics) {
    if (!m.unit.empty()) units.set(m.name, m.unit);
  }
  if (!units.as_object().empty()) j.set("units", std::move(units));
  return j;
}

Baseline Baseline::from_json(const Json& j) {
  Baseline b;
  b.bench = j.at("bench").as_string();
  if (const Json* full = j.find("full_mode")) b.full_mode = full->as_bool();
  const Json* units = j.find("units");
  for (const auto& [name, value] : j.at("metrics").as_object()) {
    Metric m;
    m.name = name;
    m.value = value.as_number();
    if (units) {
      if (const Json* u = units->find(name)) m.unit = u->as_string();
    }
    b.metrics.push_back(std::move(m));
  }
  return b;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("baseline: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return from_json(Json::parse(ss.str()));
  } catch (const std::exception& e) {
    throw std::runtime_error("baseline: " + path + ": " + e.what());
  }
}

void Baseline::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("baseline: cannot write " + path);
  out << to_json().dump() << '\n';
}

CompareResult compare_metrics(const Baseline& baseline,
                              const std::vector<Metric>& actual,
                              double rel_tol) {
  CompareResult r;
  for (const auto& ref : baseline.metrics) {
    MetricDelta d;
    d.name = ref.name;
    d.baseline = ref.value;
    const Metric* got = nullptr;
    for (const auto& m : actual) {
      if (m.name == ref.name) {
        got = &m;
        break;
      }
    }
    if (!got) {
      d.status = MetricDelta::Status::Missing;
      ++r.missing;
      r.deltas.push_back(std::move(d));
      continue;
    }
    d.actual = got->value;
    const double denom = std::fabs(ref.value);
    d.rel_change = denom > 0 ? (got->value - ref.value) / denom
                             : got->value - ref.value;
    if (std::fabs(d.rel_change) > rel_tol) {
      d.status = MetricDelta::Status::Regressed;
      ++r.regressed;
    }
    r.deltas.push_back(std::move(d));
  }
  return r;
}

}  // namespace ncar::bench
