#pragma once
// bench_gate — diff a results directory against the committed baselines
// and roll the verdict up into one BENCH_SUMMARY.json.
//
// The logic lives in this library (run_gate) so the unit tests can drive
// it on fixtures; bench/bench_gate.cpp is a thin argv wrapper.

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/json.hpp"

namespace ncar::bench {

struct GateOptions {
  std::string results_dir;    ///< directory of bench result JSONs
  std::string baselines_dir;  ///< directory of committed baseline JSONs
  std::string summary_path;   ///< roll-up output; empty = don't write
  double rel_tol = 0.02;      ///< symmetric relative tolerance
  bool update_baselines = false;  ///< rewrite baselines from results
};

/// Per-bench verdict in the roll-up.
struct GateEntry {
  std::string bench;
  /// "ok", "regressed", "missing-result", "mode-mismatch",
  /// "expectation-failed", "no-baseline", "invalid-result"
  std::string status;
  int metrics_checked = 0;
  int regressed = 0;
  int missing_metrics = 0;
  int expectations_failed = 0;
  std::vector<std::string> notes;  ///< one line per problem
};

struct GateReport {
  std::vector<GateEntry> entries;
  bool ok = true;
  Json summary(double rel_tol) const;
};

/// Run the gate. Returns the process exit code: 0 = all baselines matched
/// and all recorded expectations passed; 1 = regression, missing metric,
/// missing result, mode mismatch, or failed expectation; 2 = unusable
/// configuration (missing directories, unwritable summary).
///
/// With `update_baselines` set, instead rewrites
/// `<baselines_dir>/<bench>.json` from every result in `results_dir`
/// (host-dependent fields dropped) and returns 0.
int run_gate(const GateOptions& opts, std::ostream& log,
             GateReport* out_report = nullptr);

}  // namespace ncar::bench
