#pragma once
// Bench-side glue for the src/trace subsystem: fold a run's collectors into
// attribution metrics on the BenchReporter, and (in SX4NCAR_TRACE=full mode)
// write a Chrome trace_event JSON next to the result file.
//
// Every function here is a no-op when SX4NCAR_TRACE is off, so a bench that
// adopts it emits byte-identical result JSON to the committed baselines in
// the default configuration. In summary/full mode the reporter gains
//
//   <prefix>.attribution.total.cycles          fold of all per-CPU tracks
//   <prefix>.attribution.<category>.cycles     per-category charged cycles
//   <prefix>.attribution.<category>.fraction   cycles / total (0 if empty)
//   <prefix>.attribution.node.<category>.seconds   runtime-overhead track
//
// The per-CPU rows conserve: summing every <category>.cycles in enum order
// reproduces total.cycles bit-exactly (Other is the residual; see
// trace/attribution.hpp). tests/trace/ asserts this on real benchmarks.

#include <string>

#include "trace/collector.hpp"

namespace ncar::sxs {
class Machine;
class Node;
}  // namespace ncar::sxs

namespace ncar::bench {

class BenchReporter;

/// Register the attribution tables for one node: the fold of its per-CPU
/// collectors plus its runtime-overhead track. No-op when tracing is off.
void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const sxs::Node& node);

/// Same, folding every node of a machine (per-CPU tracks across all nodes;
/// runtime tracks likewise folded).
void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const sxs::Machine& machine);

/// Register a standalone track (I/O device or scheduler collector) as
/// <prefix>.attribution.<category>.<unit> rows plus a .total.<unit> row.
/// No-op when tracing is off.
void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const trace::Collector& track,
                        const std::string& unit = "seconds");

/// Write a Chrome trace_event JSON (one pid per node, one tid per CPU plus
/// a runtime-overhead thread) to `path`. Returns true if written; false —
/// without touching the filesystem — unless SX4NCAR_TRACE=full. Extra
/// standalone tracks (I/O, scheduler) can be appended as their own pid via
/// the three-argument overload.
bool write_chrome_trace_file(const std::string& path, const sxs::Node& node);
bool write_chrome_trace_file(const std::string& path,
                             const sxs::Machine& machine);
bool write_chrome_trace_file(const std::string& path, const sxs::Node& node,
                             const trace::Collector& extra_track,
                             const std::string& extra_name);

/// Print the per-CPU attribution table as aligned text (category, cycles,
/// percent) — the human-readable companion of the JSON metrics. No-op when
/// tracing is off.
void print_attribution(std::ostream& os, const sxs::Node& node);
void print_attribution(std::ostream& os, const sxs::Machine& machine);

}  // namespace ncar::bench
