#pragma once
// Bench-side glue for the src/trace subsystem: fold a run's collectors into
// attribution metrics on the BenchReporter, and (in SX4NCAR_TRACE=full mode)
// write a Chrome trace_event JSON next to the result file.
//
// Every function here is a no-op when SX4NCAR_TRACE is off, so a bench that
// adopts it emits byte-identical result JSON to the committed baselines in
// the default configuration. In summary/full mode the reporter gains
//
//   <prefix>.attribution.total.cycles          fold of all per-CPU tracks
//   <prefix>.attribution.<category>.cycles     per-category charged cycles
//   <prefix>.attribution.<category>.fraction   cycles / total (0 if empty)
//   <prefix>.attribution.node.<category>.seconds   runtime-overhead track
//
// The per-CPU rows conserve: summing every <category>.cycles in enum order
// reproduces total.cycles bit-exactly (Other is the residual; see
// trace/attribution.hpp). tests/trace/ asserts this on real benchmarks.

#include <memory>
#include <string>
#include <vector>

#include "trace/collector.hpp"
#include "trace/stream/writer.hpp"

namespace ncar::sxs {
class Machine;
class Node;
}  // namespace ncar::sxs

namespace ncar::bench {

class BenchReporter;

/// Register the attribution tables for one node: the fold of its per-CPU
/// collectors plus its runtime-overhead track. No-op when tracing is off.
void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const sxs::Node& node);

/// Same, folding every node of a machine (per-CPU tracks across all nodes;
/// runtime tracks likewise folded).
void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const sxs::Machine& machine);

/// Register a standalone track (I/O device or scheduler collector) as
/// <prefix>.attribution.<category>.<unit> rows plus a .total.<unit> row.
/// No-op when tracing is off.
void report_attribution(BenchReporter& rep, const std::string& prefix,
                        const trace::Collector& track,
                        const std::string& unit = "seconds");

/// Write a Chrome trace_event JSON (one pid per node, one tid per CPU plus
/// a runtime-overhead thread) to `path`. Returns true if written; false —
/// without touching the filesystem — unless SX4NCAR_TRACE=full. Extra
/// standalone tracks (I/O, scheduler) can be appended as their own pid via
/// the three-argument overload.
bool write_chrome_trace_file(const std::string& path, const sxs::Node& node);
bool write_chrome_trace_file(const std::string& path,
                             const sxs::Machine& machine);
bool write_chrome_trace_file(const std::string& path, const sxs::Node& node,
                             const trace::Collector& extra_track,
                             const std::string& extra_name);

/// Print the per-CPU attribution table as aligned text (category, cycles,
/// percent) — the human-readable companion of the JSON metrics. No-op when
/// tracing is off.
void print_attribution(std::ostream& os, const sxs::Node& node);
void print_attribution(std::ostream& os, const sxs::Machine& machine);

/// RAII session for SX4NCAR_TRACE=stream: opens a .sxt writer at `path`
/// and wires every collector of the node/machine (plus an optional
/// standalone track, mirroring the write_chrome_trace_file overloads) to
/// a per-track streaming sink. Inactive — every method a no-op, nothing
/// touched on disk — in any other mode, so benches construct one
/// unconditionally.
///
/// Call finish(rep) after the run: it detaches the sinks, finalises the
/// file, and lands `<bench>.trace_stream.{events,bytes,bytes_per_event,
/// dropped}` on the reporter. The destructor detaches and finalises too
/// (without metrics) if finish was never reached.
class StreamTrace {
public:
  StreamTrace(const std::string& path, sxs::Node& node);
  StreamTrace(const std::string& path, sxs::Machine& machine);
  StreamTrace(const std::string& path, sxs::Node& node,
              trace::Collector& extra_track, const std::string& extra_name);
  ~StreamTrace();
  StreamTrace(const StreamTrace&) = delete;
  StreamTrace& operator=(const StreamTrace&) = delete;

  /// True when a writer is open (mode was Stream and the file created).
  bool active() const { return writer_ != nullptr; }

  /// Finalise the .sxt and report the trace_stream metrics. Returns true
  /// when a file was written successfully.
  bool finish(BenchReporter& rep);

private:
  void attach_node(sxs::Node& node, int pid, const std::string& process_name);
  void attach(trace::Collector& collector,
              const trace::stream::Writer::TrackSpec& spec);

  std::vector<trace::Collector*> attached_;
  std::unique_ptr<trace::stream::Writer> writer_;
};

}  // namespace ncar::bench
