#pragma once
// Minimal JSON value with a deterministic writer and a strict parser.
//
// The bench harness needs machine-readable output (bench/results/*.json,
// bench/baselines/*.json, BENCH_SUMMARY.json) without adding a dependency
// the container may not have, so this is a small self-contained JSON
// implementation. Two properties matter more than generality:
//
//  * Determinism: object members keep insertion order and doubles are
//    rendered with the shortest round-trip representation
//    (std::to_chars), so identical values serialise to identical bytes —
//    the bench determinism tests diff emitted files byte-for-byte.
//  * Round-trip: parse(dump(v)) == v for every value the harness writes.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ncar::bench {

class Json;

/// Thrown on malformed input; carries a byte offset for diagnostics.
class JsonParseError : public std::runtime_error {
public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

private:
  std::size_t offset_;
};

class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  /// Insertion-ordered; duplicate keys are rejected by the parser.
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double d) : kind_(Kind::Number), num_(d) {}
  Json(int i) : kind_(Kind::Number), num_(i) {}
  Json(long l) : kind_(Kind::Number), num_(static_cast<double>(l)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Json(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
  Json(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object helpers. `set` appends or overwrites in place (order kept);
  /// `find` returns nullptr when the key is absent.
  void set(const std::string& key, Json value);
  const Json* find(const std::string& key) const;
  /// Member access that throws with the key name when absent.
  const Json& at(const std::string& key) const;

  /// Array helper.
  void push_back(Json value);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Render. `indent` > 0 pretty-prints with that many spaces per level;
  /// 0 emits a compact single line. Always ends without a trailing newline.
  std::string dump(int indent = 2) const;

  /// Parse a complete document; trailing garbage is an error.
  static Json parse(std::string_view text);

  /// Shortest round-trip rendering of a double (integral values render
  /// without a decimal point). Exposed for tests.
  static std::string number_to_string(double v);

private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace ncar::bench
