#include "harness/expectation.hpp"

#include <cmath>
#include <stdexcept>

namespace ncar::bench {

Band Band::absolute(double expected, double tol) {
  if (tol < 0) throw std::invalid_argument("band: negative tolerance");
  Band b;
  b.kind = Kind::Absolute;
  b.expected = expected;
  b.tol = tol;
  return b;
}

Band Band::relative(double expected, double rel_tol) {
  if (rel_tol < 0) throw std::invalid_argument("band: negative tolerance");
  Band b;
  b.kind = Kind::Relative;
  b.expected = expected;
  b.tol = rel_tol;
  return b;
}

Band Band::range(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("band: lo > hi");
  Band b;
  b.kind = Kind::Range;
  b.lo_ = lo;
  b.hi_ = hi;
  b.expected = 0.5 * (lo + hi);
  return b;
}

Band Band::boolean(bool expected) {
  Band b;
  b.kind = Kind::Boolean;
  b.expected = expected ? 1.0 : 0.0;
  return b;
}

double Band::lo() const {
  switch (kind) {
    case Kind::Absolute: return expected - tol;
    case Kind::Relative: return expected - tol * std::fabs(expected);
    case Kind::Range: return lo_;
    case Kind::Boolean: return expected;
  }
  return 0.0;
}

double Band::hi() const {
  switch (kind) {
    case Kind::Absolute: return expected + tol;
    case Kind::Relative: return expected + tol * std::fabs(expected);
    case Kind::Range: return hi_;
    case Kind::Boolean: return expected;
  }
  return 0.0;
}

bool Band::contains(double actual) const {
  if (kind == Kind::Boolean) return actual == expected;
  return actual >= lo() && actual <= hi();
}

std::string Band::describe() const {
  switch (kind) {
    case Kind::Absolute:
      return Json::number_to_string(expected) + " ±" +
             Json::number_to_string(tol);
    case Kind::Relative:
      return Json::number_to_string(expected) + " ±" +
             Json::number_to_string(100.0 * tol) + "%";
    case Kind::Range:
      return "[" + Json::number_to_string(lo_) + ", " +
             Json::number_to_string(hi_) + "]";
    case Kind::Boolean:
      return expected != 0.0 ? "true" : "false";
  }
  return "?";
}

namespace {

const char* kind_name(Band::Kind k) {
  switch (k) {
    case Band::Kind::Absolute: return "abs";
    case Band::Kind::Relative: return "rel";
    case Band::Kind::Range: return "range";
    case Band::Kind::Boolean: return "bool";
  }
  return "?";
}

Band::Kind kind_from_name(const std::string& s) {
  if (s == "abs") return Band::Kind::Absolute;
  if (s == "rel") return Band::Kind::Relative;
  if (s == "range") return Band::Kind::Range;
  if (s == "bool") return Band::Kind::Boolean;
  throw std::runtime_error("band: unknown kind \"" + s + "\"");
}

}  // namespace

Json Band::to_json() const {
  Json j = Json::object();
  j.set("kind", kind_name(kind));
  switch (kind) {
    case Kind::Absolute:
    case Kind::Relative:
      j.set("expected", expected);
      j.set("tol", tol);
      break;
    case Kind::Range:
      j.set("lo", lo_);
      j.set("hi", hi_);
      break;
    case Kind::Boolean:
      j.set("expected", expected != 0.0);
      break;
  }
  return j;
}

Band Band::from_json(const Json& j) {
  const Kind k = kind_from_name(j.at("kind").as_string());
  switch (k) {
    case Kind::Absolute:
      return absolute(j.at("expected").as_number(), j.at("tol").as_number());
    case Kind::Relative:
      return relative(j.at("expected").as_number(), j.at("tol").as_number());
    case Kind::Range:
      return range(j.at("lo").as_number(), j.at("hi").as_number());
    case Kind::Boolean:
      return boolean(j.at("expected").as_bool());
  }
  throw std::runtime_error("band: unreachable");
}

bool Band::operator==(const Band& other) const {
  return kind == other.kind && expected == other.expected &&
         tol == other.tol && lo_ == other.lo_ && hi_ == other.hi_;
}

Json Expectation::to_json() const {
  Json j = Json::object();
  j.set("metric", metric);
  j.set("band", band.to_json());
  j.set("source", source);
  if (band.kind == Band::Kind::Boolean) {
    j.set("actual", actual != 0.0);
  } else {
    j.set("actual", actual);
  }
  j.set("passed", passed);
  return j;
}

Expectation Expectation::from_json(const Json& j) {
  Expectation e;
  e.metric = j.at("metric").as_string();
  e.band = Band::from_json(j.at("band"));
  e.source = j.at("source").as_string();
  const Json& actual = j.at("actual");
  e.actual = actual.is_bool() ? (actual.as_bool() ? 1.0 : 0.0)
                              : actual.as_number();
  e.passed = j.at("passed").as_bool();
  return e;
}

}  // namespace ncar::bench
