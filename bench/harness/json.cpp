#include "harness/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ncar::bench {

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) throw std::runtime_error("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) throw std::runtime_error("json: not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::Array) throw std::runtime_error("json: not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::Object) throw std::runtime_error("json: not an object");
  return obj_;
}

void Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::Object) throw std::runtime_error("json: not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::runtime_error("json: missing key \"" + key + "\"");
  return *v;
}

void Json::push_back(Json value) {
  if (kind_ != Kind::Array) throw std::runtime_error("json: not an array");
  arr_.push_back(std::move(value));
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Number: return num_ == other.num_;
    case Kind::String: return str_ == other.str_;
    case Kind::Array: return arr_ == other.arr_;
    case Kind::Object: return obj_ == other.obj_;
  }
  return false;
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; the harness never produces them, but render
    // something parseable rather than corrupting the document.
    return "null";
  }
  // Integral values within the exactly-representable range print as
  // integers (metric counts, CPU numbers, exit codes).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) throw std::runtime_error("json: number format");
  return std::string(buf, ptr);
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: out += number_to_string(num_); return;
    case Kind::String: escape_string(out, str_); return;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        escape_string(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view.

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // The harness only ever writes ASCII escapes; encode the BMP
            // code point as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    double v = 0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("bad number");
    return Json(v);
  }

  Json parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == ']') {
        ++pos_;
        return arr;
      } else {
        fail("expected ',' or ']'");
      }
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (obj.find(key)) fail("duplicate key \"" + key + "\"");
      skip_ws();
      if (peek() != ':') fail("expected ':'");
      ++pos_;
      obj.set(key, parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == '}') {
        ++pos_;
        return obj;
      } else {
        fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ncar::bench
