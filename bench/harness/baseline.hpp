#pragma once
// Stored benchmark baselines and regression comparison.
//
// A Baseline is the committed reference copy of one bench binary's result
// file (bench/baselines/<name>.json): the named scalar metrics it emitted
// on a known-good build, plus the mode it ran in. `compare_metrics` diffs
// a fresh run against it with a symmetric relative tolerance — the model
// is deterministic, so the tolerance only has to absorb cross-platform
// libm and codegen differences, not run-to-run noise.

#include <optional>
#include <string>
#include <vector>

#include "harness/json.hpp"

namespace ncar::bench {

/// One named scalar measurement.
struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< optional, e.g. "MB/s", "s", "Mflops"

  bool operator==(const Metric& other) const {
    return name == other.name && value == other.value && unit == other.unit;
  }
};

struct Baseline {
  std::string bench;       ///< bench binary name, e.g. "table7_mom"
  bool full_mode = false;  ///< recorded with SX4NCAR_BENCH_FULL set?
  std::vector<Metric> metrics;  ///< insertion order preserved

  const Metric* find(const std::string& name) const;

  Json to_json() const;
  static Baseline from_json(const Json& j);

  /// File I/O; load throws std::runtime_error on missing/invalid files.
  static Baseline load(const std::string& path);
  void save(const std::string& path) const;

  bool operator==(const Baseline& other) const {
    return bench == other.bench && full_mode == other.full_mode &&
           metrics == other.metrics;
  }
};

/// Verdict for one baseline metric after comparison.
struct MetricDelta {
  enum class Status { Ok, Regressed, Missing };
  std::string name;
  double baseline = 0.0;
  double actual = 0.0;       ///< undefined when Missing
  double rel_change = 0.0;   ///< (actual - baseline) / |baseline|
  Status status = Status::Ok;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;
  int regressed = 0;
  int missing = 0;
  bool ok() const { return regressed == 0 && missing == 0; }
};

/// Compare a fresh run's metrics against a baseline. Every baseline metric
/// must be present in `actual` and within `rel_tol` of its recorded value
/// (exact-zero baselines use an absolute tolerance of `rel_tol`). Metrics
/// present only in `actual` are ignored — new metrics are not regressions.
CompareResult compare_metrics(const Baseline& baseline,
                              const std::vector<Metric>& actual,
                              double rel_tol);

}  // namespace ncar::bench
