// Table 7 — MOM ocean model benchmark: time for 350 timesteps of the
// 1-degree / 45-level global configuration, and speedup vs one processor.
//
// Paper values (seconds): 1 -> 1861.25, 4 -> 696.92, 8 -> 519.74,
// 16 -> 331.67, 32 -> 226.62; the paper's speedup column reads 1.00, 2.70,
// 3.66, 5.88, 9.06. The paper notes the modest scalability is "in part due
// to the fact that the benchmark prints out model diagnostics every 10
// timesteps and in part with the algorithms and coding of the application".
//
// Method: as in the paper, initialization is excluded (we measure steady
// steps); per-step simulated cost is averaged over one 10-step diagnostics
// cycle and extrapolated to 350 steps.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "harness/trace_report.hpp"
#include "ocean/mom.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("table7_mom", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);
  // Streaming trace sink (SX4NCAR_TRACE=stream); inactive in other modes.
  bench::StreamTrace stream(rep.aux_path("trace.sxt"), node);
  ocean::Mom mom(ocean::MomConfig::high_resolution(), node);

  print_banner(std::cout, "Table 7: MOM 1-degree x 45-level, 350 timesteps");
  std::printf("land mask: %.0f%% ocean, block imbalance at 32 CPUs %.2f\n\n",
              100.0 * mom.mask().ocean_fraction(),
              mom.mask().block_imbalance(32));

  struct Row {
    int cpus;
    double paper_s;
  };
  const Row rows[] = {{1, 1861.25}, {4, 696.92}, {8, 519.74},
                      {16, 331.67}, {32, 226.62}};
  Table t({"CPUs", "Paper (s)", "Model (s)", "Model/Paper", "Speedup (model)",
           "Speedup (paper times)"});
  double t1 = 0;
  bool ok = true;
  for (const auto& row : rows) {
    node.reset();
    // The ocean numerics don't depend on the CPU count, so only the first
    // row runs them; the other rows replay the charge sequence against a
    // fresh node (bit-identical timing, see Mom::charge_step) and leave the
    // after-10-steps physical state from row 1 for the diagnostics below.
    double per_step;
    if (row.cpus == 1) {
      mom.reset();
      per_step = mom.measure_step_seconds(row.cpus, 10);
    } else {
      per_step = mom.measure_charge_seconds(row.cpus, 10);
    }
    const double time350 = per_step * 350.0;
    if (row.cpus == 1) t1 = time350;
    const double ratio = time350 / row.paper_s;
    t.add_row({std::to_string(row.cpus), format_fixed(row.paper_s, 2),
               format_fixed(time350, 2), format_fixed(ratio, 3),
               format_fixed(t1 / time350, 2),
               format_fixed(1861.25 / row.paper_s, 2)});
    ok = ok && ratio > 0.8 && ratio < 1.25;
    rep.expect("table7.mom.seconds@cpus=" + std::to_string(row.cpus), time350,
               bench::Band::relative(row.paper_s, 0.25), "paper Table 7", "s");
    rep.metric("table7.mom.speedup@cpus=" + std::to_string(row.cpus),
               t1 / time350);
  }
  t.print(std::cout);

  rep.metric("table7.mom.sor_residual", mom.last_sor_residual());
  rep.expect("table7.mom.mean_temperature_c", mom.mean_temperature(),
             bench::Band::range(-2.0, 30.0), "physical ocean range", "C");

  std::printf("\nSOR residual after the rigid-lid solve: %.2e\n",
              mom.last_sor_residual());
  std::printf("mean ocean temperature: %.3f C (physical range)\n",
              mom.mean_temperature());
  std::printf("all times within 25%% of the paper: %s\n", ok ? "yes" : "NO");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  // Attribution covers the last sweep point (32 CPUs, charge replay).
  bench::print_attribution(std::cout, node);
  bench::report_attribution(rep, "table7", node);
  bench::write_chrome_trace_file(rep.trace_path(), node);
  stream.finish(rep);
  return rep.finish(std::cout);
}
