// Table 3 — ELEFUNT intrinsic performance on the SX-4/1 (64-bit), in
// millions of function calls per second, plus the accuracy battery and the
// PARANOIA verdict (paper section 4.1: "the SX-4 passed these tests").
//
// The paper's Table 3 values survive only as a bitmap; EXPERIMENTS.md
// records our modeled rates. The prose constraints checked here: all
// accuracy tests pass, and the vectorised intrinsics run at tens to
// hundreds of Mcalls/s (consistent with RADABS sustaining ~866 equivalent
// Mflops out of intrinsic-dominated code).

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fpt/elefunt.hpp"
#include "fpt/paranoia.hpp"
#include "harness/reporter.hpp"
#include "machines/comparator.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("table3_elefunt", argc, argv);

  // PARANOIA first: no performance number matters on broken arithmetic.
  const auto paranoia = fpt::run_paranoia();
  print_banner(std::cout, "PARANOIA: basic floating point arithmetic");
  Table pt({"Check", "Result", "Detail"});
  for (const auto& c : paranoia.checks) {
    pt.add_row({c.name, c.passed ? "pass" : "FAIL", c.detail});
  }
  pt.print(std::cout);
  std::printf("\nPARANOIA verdict: %s (paper: SX-4 passed)\n",
              paranoia.all_passed() ? "PASS" : "FAIL");
  rep.expect_true("table3.paranoia_passed", paranoia.all_passed(),
                  "paper section 4.1: the SX-4 passed these tests");

  print_banner(std::cout, "ELEFUNT accuracy (64-bit, identity tests)");
  Table at({"Function", "Max ulp", "RMS ulp", "Threshold", "Result"});
  bool acc_ok = true;
  for (const auto& r : fpt::run_elefunt_accuracy()) {
    at.add_row({sxs::intrinsic_name(r.func), format_fixed(r.max_ulp, 2),
                format_fixed(r.rms_ulp, 3),
                format_fixed(fpt::ulp_threshold(r.func), 1),
                r.passed ? "pass" : "FAIL"});
    acc_ok = acc_ok && r.passed;
  }
  at.print(std::cout);
  rep.expect_true("table3.elefunt_accuracy_passed", acc_ok,
                  "paper section 4.1: every accuracy identity within bound");

  print_banner(std::cout,
               "Table 3: intrinsic performance, SX-4/1, Mcalls/second");
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  Table t({"Function", "Mcalls/s (model)"});
  bool rates_in_prose_band = true;
  for (const auto& r : fpt::run_elefunt_performance(sx4)) {
    t.add_row({sxs::intrinsic_name(r.func), format_fixed(r.mcalls_per_s, 1)});
    rep.metric(std::string("table3.mcalls_per_s.") + sxs::intrinsic_name(r.func),
               r.mcalls_per_s, "Mcalls/s");
    rates_in_prose_band =
        rates_in_prose_band && r.mcalls_per_s > 10 && r.mcalls_per_s < 1000;
  }
  t.print(std::cout);
  rep.expect_true(
      "table3.rates_tens_to_hundreds_mcalls", rates_in_prose_band,
      "paper prose: vectorised intrinsics at tens-to-hundreds of Mcalls/s");

  return rep.finish(std::cout);
}
