// Table 3 — ELEFUNT intrinsic performance on the SX-4/1 (64-bit), in
// millions of function calls per second, plus the accuracy battery and the
// PARANOIA verdict (paper section 4.1: "the SX-4 passed these tests").
//
// The paper's Table 3 values survive only as a bitmap; EXPERIMENTS.md
// records our modeled rates. The prose constraints checked here: all
// accuracy tests pass, and the vectorised intrinsics run at tens to
// hundreds of Mcalls/s (consistent with RADABS sustaining ~866 equivalent
// Mflops out of intrinsic-dominated code).

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fpt/elefunt.hpp"
#include "fpt/paranoia.hpp"
#include "machines/comparator.hpp"
#include "sxs/execution_policy.hpp"

int main() {
  using namespace ncar;
  std::cout << "host execution: " << sxs::host_execution_summary()
            << "\n\n";

  // PARANOIA first: no performance number matters on broken arithmetic.
  const auto paranoia = fpt::run_paranoia();
  print_banner(std::cout, "PARANOIA: basic floating point arithmetic");
  Table pt({"Check", "Result", "Detail"});
  for (const auto& c : paranoia.checks) {
    pt.add_row({c.name, c.passed ? "pass" : "FAIL", c.detail});
  }
  pt.print(std::cout);
  std::printf("\nPARANOIA verdict: %s (paper: SX-4 passed)\n",
              paranoia.all_passed() ? "PASS" : "FAIL");

  print_banner(std::cout, "ELEFUNT accuracy (64-bit, identity tests)");
  Table at({"Function", "Max ulp", "RMS ulp", "Threshold", "Result"});
  bool acc_ok = true;
  for (const auto& r : fpt::run_elefunt_accuracy()) {
    at.add_row({sxs::intrinsic_name(r.func), format_fixed(r.max_ulp, 2),
                format_fixed(r.rms_ulp, 3),
                format_fixed(fpt::ulp_threshold(r.func), 1),
                r.passed ? "pass" : "FAIL"});
    acc_ok = acc_ok && r.passed;
  }
  at.print(std::cout);

  print_banner(std::cout,
               "Table 3: intrinsic performance, SX-4/1, Mcalls/second");
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  Table t({"Function", "Mcalls/s (model)"});
  for (const auto& r : fpt::run_elefunt_performance(sx4)) {
    t.add_row({sxs::intrinsic_name(r.func), format_fixed(r.mcalls_per_s, 1)});
  }
  t.print(std::cout);

  return (paranoia.all_passed() && acc_ok) ? 0 : 1;
}
