// Section 4.6 — PRODLOAD: the simulated production workload.
//
// Paper: "The NEC SX-4/32 completed the PRODLOAD benchmark in 93 minutes
// and 28 seconds (with the 9.2 ns clock)." — 5608 seconds.
//
// A job = HIPPI benchmark + three CCM2 copies (one 3-day T106, two 20-day
// T42) running simultaneously. Test 1: one sequence of four jobs. Test 2:
// two sequences concurrently. Test 3: four sequences concurrently. Test 4:
// two 2-day T170 runs concurrently. Component service times come from the
// CCM2 model (measured per-step simulated cost at each job's CPU width) and
// the HIPPI channel model; the discrete-event scheduler allocates the 32
// CPUs FIFO and applies the node's bank-contention slowdown.

#include <cstdio>
#include <iostream>

#include "ccm2/model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "harness/trace_report.hpp"
#include "iosim/hippi.hpp"
#include "prodload/scheduler.hpp"
#include "trace/collector.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

/// Quiet-machine service time of an n-day CCM2 run at `cpus` width.
ncar::Seconds ccm2_days(ncar::sxs::Node& node,
                        const ncar::ccm2::Resolution& res, int cpus,
                        double days) {
  ncar::ccm2::Ccm2Config c;
  c.res = res;
  c.active_levels = 1;
  ncar::ccm2::Ccm2 model(c, node);
  node.reset();
  // Service times need timing only — replay the charge sequence
  // (bit-identical seconds, see Ccm2::charge_step).
  const double per_step = model.measure_charge_seconds(cpus, 2);
  return ncar::Seconds(per_step * res.steps_per_day() * days);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("prodload", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);

  // Scheduler track collector — declared ahead of the component
  // measurements so the streaming sink can cover every span of the run.
  trace::Collector sched_trace;
  // Streaming trace sink (SX4NCAR_TRACE=stream); inactive in other modes.
  // The scheduler rides along as its own pid, like the Chrome export.
  bench::StreamTrace stream(rep.aux_path("trace.sxt"), node, sched_trace,
                            "scheduler");

  // Component service times. CPU widths: T42 on 2 CPUs, T106 on 8, T170 on
  // 16 — the static Resource-Block style allocation of the benchmark run.
  const Seconds t42_20d = ccm2_days(node, ccm2::t42l18(), 2, 20.0);
  const Seconds t106_3d = ccm2_days(node, ccm2::t106l18(), 8, 3.0);
  const Seconds t170_2d = ccm2_days(node, ccm2::t170l18(), 16, 2.0);

  iosim::HippiChannel hippi(cfg);
  const Seconds hippi_test =
      hippi.transfer_seconds(Bytes(10e9), Bytes(1 << 20));

  prodload::Job job;
  job.name = "job";
  job.components = {
      {"HIPPI", 1, hippi_test},
      {"CCM2 T106 3-day", 8, t106_3d},
      {"CCM2 T42 20-day A", 2, t42_20d},
      {"CCM2 T42 20-day B", 2, t42_20d},
  };

  auto make_seq = [&](const std::string& name) {
    prodload::Sequence s;
    s.name = name;
    for (int j = 0; j < 4; ++j) {
      prodload::Job numbered = job;
      numbered.name = "job" + std::to_string(j + 1);
      s.jobs.push_back(numbered);
    }
    return s;
  };

  prodload::Scheduler sched(cfg.cpus_per_node, cfg.bank_contention_per_cpu);
  // Scheduler track: one span per completed job (start .. completion in
  // simulated seconds). The four tests each restart at t=0, so the Gantt
  // rows of a test overlay the previous test's — read them per-test.
  sched.set_trace(&sched_trace);

  const Seconds test1 = sched.run({make_seq("seq1")}).makespan;
  const Seconds test2 =
      sched.run({make_seq("seq1"), make_seq("seq2")}).makespan;
  const Seconds test3 = sched.run({make_seq("seq1"), make_seq("seq2"),
                                   make_seq("seq3"), make_seq("seq4")})
                            .makespan;

  prodload::Sequence t170a{"t170a", {{"T170 2-day", {{"CCM2 T170", 16, t170_2d}}}}};
  prodload::Sequence t170b{"t170b", {{"T170 2-day", {{"CCM2 T170", 16, t170_2d}}}}};
  const Seconds test4 = sched.run({t170a, t170b}).makespan;

  const Seconds total = test1 + test2 + test3 + test4;

  print_banner(std::cout, "PRODLOAD: simulated production job load, SX-4/32");
  Table c({"Component", "CPUs", "Service time"});
  c.add_row({"HIPPI test", "1", format_duration(hippi_test)});
  c.add_row({"CCM2 T42L18, 20 days", "2", format_duration(t42_20d)});
  c.add_row({"CCM2 T106L18, 3 days", "8", format_duration(t106_3d)});
  c.add_row({"CCM2 T170L18, 2 days", "16", format_duration(t170_2d)});
  c.print(std::cout);

  std::cout << '\n';
  Table t({"Test", "Composition", "Wall clock"});
  t.add_row({"1", "1 sequence of 4 jobs", format_duration(test1)});
  t.add_row({"2", "2 sequences concurrent", format_duration(test2)});
  t.add_row({"3", "4 sequences concurrent", format_duration(test3)});
  t.add_row({"4", "2 x CCM2 T170 2-day concurrent", format_duration(test4)});
  t.add_row({"total", "", format_duration(total)});
  t.print(std::cout);

  rep.metric("prodload.test1_seconds", test1.value(), "s");
  rep.metric("prodload.test2_seconds", test2.value(), "s");
  rep.metric("prodload.test3_seconds", test3.value(), "s");
  rep.metric("prodload.test4_seconds", test4.value(), "s");

  const Seconds paper(93 * 60 + 28);
  const double ratio = total / paper;  // Seconds / Seconds: dimensionless
  std::printf("\ntotal: %s (paper: 93m 28s), ratio %.3f\n",
              format_duration(total).c_str(), ratio);
  const bool within = ratio > 0.75 && ratio < 1.25;
  std::printf("within 25%% of the paper: %s\n", within ? "yes" : "NO");
  rep.expect("prodload.total_seconds", total.value(),
             bench::Band::relative(paper.value(), 0.25),
             "paper section 4.6: 93m 28s with the 9.2 ns clock", "s");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  // Node attribution covers the T170 service-time measurement (the last
  // node.reset()); the scheduler track totals job-seconds across all tests.
  bench::print_attribution(std::cout, node);
  bench::report_attribution(rep, "prodload", node);
  bench::report_attribution(rep, "prodload.scheduler", sched_trace, "seconds");
  bench::write_chrome_trace_file(rep.trace_path(), node, sched_trace,
                                 "scheduler");
  stream.finish(rep);
  return rep.finish(std::cout);
}
