// Host-side microbenchmarks of the numerical substrates (google-benchmark).
//
// These measure the *host* execution speed of the real numerics — the FFT,
// the Legendre transform, the SOR solver, and the SLT — as a regression
// guard for the library's own implementation quality (everything else in
// bench/ reports *simulated* SX-4 time).

#include <benchmark/benchmark.h>

#include "ccm2/slt.hpp"
#include "common/rng.hpp"
#include "fft/real_fft.hpp"
#include "ocean/mask.hpp"
#include "spectral/sht.hpp"

namespace {

using namespace ncar;

void BM_RealFft(benchmark::State& state) {
  const long n = state.range(0);
  fft::Plan plan(n);
  Rng rng(1);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<fft::cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  for (auto _ : state) {
    fft::real_forward(plan, x, spec);
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RealFft)->Arg(128)->Arg(512)->Arg(1280);

void BM_ShtRoundTrip(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  spectral::ShTransform s(t, t == 21 ? 32 : 64, t == 21 ? 64 : 128);
  std::vector<spectral::cd> spec(static_cast<std::size_t>(s.spec_size()),
                                 spectral::cd(1e-6, 0));
  Array2D<double> grid(static_cast<std::size_t>(s.nlon()),
                       static_cast<std::size_t>(s.nlat()));
  for (auto _ : state) {
    s.synthesis(spec, grid);
    s.analysis(grid, spec);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_ShtRoundTrip)->Arg(21)->Arg(42);

void BM_SltAdvect(benchmark::State& state) {
  const int nlat = static_cast<int>(state.range(0));
  const int nlon = 2 * nlat;
  const auto nodes = spectral::gauss_legendre(nlat);
  ccm2::SemiLagrangian slt(nodes, nlon, 6.371e6);
  Array2D<double> q(static_cast<std::size_t>(nlon), static_cast<std::size_t>(nlat), 1.0);
  Array2D<double> u(q.ni(), q.nj(), 20.0), v(q.ni(), q.nj(), 3.0);
  Array2D<double> out(q.ni(), q.nj());
  for (auto _ : state) {
    slt.advect(q, u, v, 1200.0, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * nlon * nlat);
}
BENCHMARK(BM_SltAdvect)->Arg(32)->Arg(64);

void BM_LandMaskBuild(benchmark::State& state) {
  for (auto _ : state) {
    ocean::LandMask m(360, 180);
    benchmark::DoNotOptimize(m.ocean_total());
  }
}
BENCHMARK(BM_LandMaskBuild);

}  // namespace

BENCHMARK_MAIN();
