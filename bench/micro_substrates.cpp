// Host-side microbenchmarks of the numerical substrates (google-benchmark).
//
// These measure the *host* execution speed of the real numerics — the FFT,
// the Legendre transform, the SOR solver, and the SLT — as a regression
// guard for the library's own implementation quality (everything else in
// bench/ reports *simulated* SX-4 time).
//
// The custom main routes results through BenchReporter so this binary
// emits the same result-JSON schema as the rest of bench/. Host timings
// are machine-dependent, so no baseline is committed for them and
// bench_gate reports this bench as "no-baseline" — the JSON exists for
// trajectory tracking (BENCH_*.json), not for gating.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "ccm2/slt.hpp"
#include "common/rng.hpp"
#include "fft/real_fft.hpp"
#include "harness/reporter.hpp"
#include "ocean/mask.hpp"
#include "spectral/sht.hpp"

namespace {

using namespace ncar;

void BM_RealFft(benchmark::State& state) {
  const long n = state.range(0);
  fft::Plan plan(n);
  Rng rng(1);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<fft::cd> spec(static_cast<std::size_t>(fft::spectrum_size(n)));
  for (auto _ : state) {
    fft::real_forward(plan, x, spec);
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RealFft)->Arg(128)->Arg(512)->Arg(1280);

void BM_ShtRoundTrip(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  spectral::ShTransform s(t, t == 21 ? 32 : 64, t == 21 ? 64 : 128);
  std::vector<spectral::cd> spec(static_cast<std::size_t>(s.spec_size()),
                                 spectral::cd(1e-6, 0));
  Array2D<double> grid(static_cast<std::size_t>(s.nlon()),
                       static_cast<std::size_t>(s.nlat()));
  for (auto _ : state) {
    s.synthesis(spec, grid);
    s.analysis(grid, spec);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_ShtRoundTrip)->Arg(21)->Arg(42);

void BM_SltAdvect(benchmark::State& state) {
  const int nlat = static_cast<int>(state.range(0));
  const int nlon = 2 * nlat;
  const auto nodes = spectral::gauss_legendre(nlat);
  ccm2::SemiLagrangian slt(nodes, nlon, 6.371e6);
  Array2D<double> q(static_cast<std::size_t>(nlon), static_cast<std::size_t>(nlat), 1.0);
  Array2D<double> u(q.ni(), q.nj(), 20.0), v(q.ni(), q.nj(), 3.0);
  Array2D<double> out(q.ni(), q.nj());
  for (auto _ : state) {
    slt.advect(q, u, v, 1200.0, out);
    benchmark::DoNotOptimize(out.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * nlon * nlat);
}
BENCHMARK(BM_SltAdvect)->Arg(32)->Arg(64);

void BM_LandMaskBuild(benchmark::State& state) {
  for (auto _ : state) {
    ocean::LandMask m(360, 180);
    benchmark::DoNotOptimize(m.ocean_total());
  }
}
BENCHMARK(BM_LandMaskBuild);

// google-benchmark renamed Run::error_occurred to Run::skipped in v1.8;
// detect whichever member this library version has.
template <typename R, typename = void>
struct HasErrorOccurred : std::false_type {};
template <typename R>
struct HasErrorOccurred<
    R, std::void_t<decltype(std::declval<const R&>().error_occurred)>>
    : std::true_type {};

template <typename R>
bool run_failed(const R& run) {
  if constexpr (HasErrorOccurred<R>::value) {
    return run.error_occurred;
  } else {
    return run.skipped != 0;
  }
}

/// Console output as usual, plus each per-iteration run captured as a
/// harness metric (real ns/iteration and, where set, items/s).
class HarnessReporter : public benchmark::ConsoleReporter {
public:
  explicit HarnessReporter(bench::BenchReporter& rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const auto& run : reports) {
      if (run.run_type != Run::RT_Iteration || run_failed(run)) continue;
      const std::string base = "micro." + run.benchmark_name();
      rep_.metric(base + ".real_ns", run.GetAdjustedRealTime(), "ns");
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        rep_.metric(base + ".items_per_s", items->second, "items/s");
      }
    }
  }

private:
  bench::BenchReporter& rep_;
};

}  // namespace

int main(int argc, char** argv) {
  // Split argv: --benchmark_* goes to google-benchmark, the rest to the
  // harness.
  std::vector<char*> gb_args{argv[0]};
  std::vector<char*> harness_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0) {
      gb_args.push_back(argv[i]);
    } else {
      harness_args.push_back(argv[i]);
    }
  }

  bench::BenchReporter rep("micro_substrates",
                           static_cast<int>(harness_args.size()),
                           harness_args.data());

  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  HarnessReporter reporter(rep);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  return rep.finish(std::cout);
}
