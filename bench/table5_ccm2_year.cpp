// Table 5 — time to simulate one year of climate on the SX-4/32, with
// daily average climate statistics written each model day.
//
// Paper: T42L18 in 1327.53 s; T63L18 in 3452.48 s, the latter writing
// approximately 15 GB of model data and restart information ("completed a
// one year simulation of global climate at T63L18 in 57.5 minutes").
//
// Method: per-step simulated cost is measured over a few real steps on 32
// CPUs, the year is extrapolated (26,280 steps at T42's 20-minute step;
// 43,800 at T63's 12-minute step), and the daily history write goes through
// the disk-subsystem model.

#include <cstdio>
#include <iostream>

#include "ccm2/model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "harness/trace_report.hpp"
#include "iosim/disk.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("table5_ccm2_year", argc, argv);
  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);
  // Streaming trace sink (SX4NCAR_TRACE=stream); inactive in other modes.
  bench::StreamTrace stream(rep.aux_path("trace.sxt"), node);
  iosim::DiskSystem disk;

  print_banner(std::cout, "Table 5: one-year simulation time, SX-4/32");
  Table t({"Resolution", "Paper (s)", "Model (s)", "Model/Paper",
           "History GB/yr"});

  struct Target {
    ccm2::Resolution res;
    double paper_s;
  };
  bool ok = true;
  for (const auto& [res, paper] :
       {Target{ccm2::t42l18(), 1327.53}, Target{ccm2::t63l18(), 3452.48}}) {
    ccm2::Ccm2Config c;
    c.res = res;
    ccm2::Ccm2 model(c, node);
    node.reset();
    // Timing only — replay the charge sequence instead of integrating the
    // dycore (bit-identical per-step seconds, see Ccm2::charge_step).
    const double per_step = model.measure_charge_seconds(32, 3);
    const long steps = res.steps_per_day() * 365;
    const double hist = model.write_history(disk, 32).value();
    const double year = per_step * steps + hist * 365;
    const double gb = model.history_bytes().value() * 365 / 1e9;
    t.add_row({res.name, format_fixed(paper, 2), format_fixed(year, 2),
               format_fixed(year / paper, 3), format_fixed(gb, 1)});
    ok = ok && year / paper > 0.75 && year / paper < 1.25;
    rep.expect("table5.year_seconds." + res.name, year,
               bench::Band::relative(paper, 0.25), "paper Table 5", "s");
    if (res.name == "T63L18") {
      rep.expect("table5.history_gb_per_year." + res.name, gb,
                 bench::Band::relative(15.0, 0.25),
                 "paper: the T63 run wrote approximately 15 GB", "GB");
    } else {
      rep.metric("table5.history_gb_per_year." + res.name, gb, "GB");
    }
  }
  t.print(std::cout);

  std::printf("\nT63L18 run wrote ~15 GB in the paper; both times within 25%%: %s\n",
              ok ? "yes" : "NO");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  // Attribution covers the T63L18 measurement (last node.reset()).
  bench::print_attribution(std::cout, node);
  bench::report_attribution(rep, "table5", node);
  bench::write_chrome_trace_file(rep.trace_path(), node);
  stream.finish(rep);
  return rep.finish(std::cout);
}
