// Table 1 — HINT "MQUIPS" vs RADABS Mflops across four systems.
//
// Paper values:
//   HINT   (MQUIPS): Sparc20 3.5, RS6000/590 5.2, J90 1.7, Y-MP 3.1
//   RADABS (MFLOPS): Sparc20 12.8, RS6000/590 16.5, J90 60.8, Y-MP 178.1
//
// The point under test is the *inversion*: HINT ranks the workstations
// above the vector Crays, RADABS ranks them the other way around by an
// order of magnitude — which is why NCAR rejected HINT as a predictor for
// climate workloads (paper section 3.3).

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "hint/hint.hpp"
#include "machines/comparator.hpp"
#include "radabs/radabs.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("table1_hint_radabs", argc, argv);
  using machines::Comparator;

  struct Row {
    const char* label;
    const char* key;
    machines::Spec spec;
    double paper_mquips;
    double paper_mflops;
  };
  std::vector<Row> rows = {
      {"SUN SPARC20", "sparc20", Comparator::sun_sparc20(), 3.5, 12.8},
      {"IBM RS6K 590", "rs6000_590", Comparator::ibm_rs6000_590(), 5.2, 16.5},
      {"CRI J90", "j90", Comparator::cray_j90(), 1.7, 60.8},
      {"CRI YMP", "ymp", Comparator::cray_ymp(), 3.1, 178.1},
  };

  print_banner(std::cout,
               "Table 1: HINT (MQUIPS) vs RADABS (MFLOPS), single CPU");
  Table t({"Benchmark / System", "Paper", "Model", "Model/Paper"});

  std::vector<double> model_mquips, model_mflops;
  bool hint_ok = true;
  for (auto& row : rows) {
    Comparator machine(row.spec);
    const auto h = hint::run_hint(machine);
    model_mquips.push_back(h.mquips);
    t.add_row({std::string("HINT MQUIPS  ") + row.label,
               format_fixed(row.paper_mquips, 1), format_fixed(h.mquips, 1),
               format_fixed(h.mquips / row.paper_mquips, 2)});
    if (!h.verified) std::printf("!! HINT bounds failed on %s\n", row.label);
    hint_ok = hint_ok && h.verified;
    rep.expect(std::string("table1.hint_mquips.") + row.key, h.mquips,
               bench::Band::relative(row.paper_mquips, 0.30), "paper Table 1",
               "MQUIPS");
  }
  for (auto& row : rows) {
    Comparator machine(row.spec);
    const auto r = radabs::run_radabs_standard(machine);
    model_mflops.push_back(r.equiv_mflops);
    t.add_row({std::string("RADABS MFLOPS ") + row.label,
               format_fixed(row.paper_mflops, 1),
               format_fixed(r.equiv_mflops, 1),
               format_fixed(r.equiv_mflops / row.paper_mflops, 2)});
    rep.expect(std::string("table1.radabs_mflops.") + row.key, r.equiv_mflops,
               bench::Band::relative(row.paper_mflops, 0.30), "paper Table 1",
               "Mflops");
  }
  t.print(std::cout);

  // The headline qualitative claims.
  const bool hint_prefers_scalar =
      model_mquips[0] > model_mquips[2] && model_mquips[1] > model_mquips[2] &&
      model_mquips[1] > model_mquips[3];
  const bool radabs_prefers_vector =
      model_mflops[3] > 5 * model_mflops[0] &&
      model_mflops[2] > 2 * model_mflops[0];
  rep.expect_true("table1.hint_bounds_verified", hint_ok,
                  "HINT internal bounds checks");
  rep.expect_true("table1.hint_ranks_workstations_above_j90",
                  hint_prefers_scalar, "paper section 3.3");
  rep.expect_true("table1.radabs_ranks_vector_above_workstations",
                  radabs_prefers_vector, "paper section 3.3");
  std::printf("\nHINT ranks workstations above the J90%s (paper: yes)\n",
              hint_prefers_scalar ? "" : " -- NOT REPRODUCED");
  std::printf("RADABS ranks vector machines far above workstations%s "
              "(paper: yes)\n",
              radabs_prefers_vector ? "" : " -- NOT REPRODUCED");
  return rep.finish(std::cout);
}
