// Section 4.7.3 — POP on one SX-4 processor.
//
// Paper: "A pre-release of the NEC F90 compiler was used for this benchmark
// test. At the time, the CSHIFT intrinsic did not vectorize. Even so, we
// observed 537 Mflops on the 2-degree POP benchmark on one processor of
// the SX-4."

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "ocean/pop.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main() {
  using namespace ncar;
  std::cout << "host execution: " << sxs::host_execution_summary()
            << "\n\n";
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  ocean::Pop pop(ocean::PopConfig::two_degree(), node);

  const double mflops = pop.measure_mflops(5);

  print_banner(std::cout, "POP 2-degree free-surface ocean, SX-4/1");
  Table t({"Quantity", "Paper", "Model"});
  t.add_row({"sustained Mflops", "537", format_fixed(mflops, 1)});
  t.add_row({"time in unvectorised CSHIFT", "-",
             format_fixed(100 * pop.cshift_time_fraction(), 0) + "%"});
  t.add_row({"mean surface height drift", "-",
             format_fixed(pop.mean_eta() * 1e12, 3) + "e-12"});
  t.print(std::cout);

  const double ratio = mflops / 537.0;
  std::printf("\nmodel/paper = %.3f\n", ratio);
  const bool ok = ratio > 0.8 && ratio < 1.25;
  std::printf("within 25%%: %s; volume conserved: %s\n", ok ? "yes" : "NO",
              std::abs(pop.mean_eta()) < 1e-9 ? "yes" : "NO");
  return (ok && std::abs(pop.mean_eta()) < 1e-9) ? 0 : 1;
}
