// Section 4.7.3 — POP on one SX-4 processor.
//
// Paper: "A pre-release of the NEC F90 compiler was used for this benchmark
// test. At the time, the CSHIFT intrinsic did not vectorize. Even so, we
// observed 537 Mflops on the 2-degree POP benchmark on one processor of
// the SX-4."

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "ocean/pop.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("pop_sx4", argc, argv);
  auto cfg = sxs::MachineConfig::sx4_benchmarked();
  cfg.cpus_per_node = 1;
  sxs::Node node(cfg);
  ocean::Pop pop(ocean::PopConfig::two_degree(), node);

  const double mflops = pop.measure_mflops(5);

  print_banner(std::cout, "POP 2-degree free-surface ocean, SX-4/1");
  Table t({"Quantity", "Paper", "Model"});
  t.add_row({"sustained Mflops", "537", format_fixed(mflops, 1)});
  t.add_row({"time in unvectorised CSHIFT", "-",
             format_fixed(100 * pop.cshift_time_fraction(), 0) + "%"});
  t.add_row({"mean surface height drift", "-",
             format_fixed(pop.mean_eta() * 1e12, 3) + "e-12"});
  t.print(std::cout);

  const double ratio = mflops / 537.0;
  std::printf("\nmodel/paper = %.3f\n", ratio);
  const bool volume_ok = std::abs(pop.mean_eta()) < 1e-9;
  std::printf("within 25%%: %s; volume conserved: %s\n",
              ratio > 0.8 && ratio < 1.25 ? "yes" : "NO",
              volume_ok ? "yes" : "NO");

  rep.expect("pop.sustained_mflops", mflops, bench::Band::relative(537.0, 0.25),
             "paper section 4.7.3: 537 Mflops on one processor", "Mflops");
  rep.expect("pop.cshift_time_fraction", pop.cshift_time_fraction(),
             bench::Band::range(0.4, 0.9),
             "paper: the CSHIFT intrinsic did not vectorize (dominant cost)");
  rep.expect_true("pop.volume_conserved", volume_ok,
                  "free-surface volume conservation to rounding");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  return rep.finish(std::cout);
}
