// Figure 8 (and Table 4) — CCM2 sustained Cray-equivalent Gflops vs
// processor count for three resolutions on the SX-4/32 (9.2 ns clock).
//
// Paper anchors: T170L18 on 32 processors sustains 24 Gflops; "the SX-4
// runs most efficiently on long vector problems and medium and large
// problems scale reasonably well" (small T42 flattens at high processor
// counts). Table 4's grid shapes and time steps are printed first.

#include <cstdio>
#include <iostream>

#include "ccm2/model.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "harness/reporter.hpp"
#include "harness/trace_report.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

int main(int argc, char** argv) {
  using namespace ncar;
  bench::BenchReporter rep("fig8_ccm2", argc, argv);

  print_banner(std::cout, "Table 4: CCM2 resolutions");
  Table t4({"Resolution", "Grid (lat x lon)", "Levels", "Time step"});
  for (const auto& r : ccm2::table4()) {
    t4.add_row({r.name, std::to_string(r.nlat) + " x " + std::to_string(r.nlon),
                std::to_string(r.nlev),
                format_fixed(r.dt_seconds / 60.0, 1) + " min"});
  }
  t4.print(std::cout);

  const auto cfg = sxs::MachineConfig::sx4_benchmarked();
  sxs::Node node(cfg);
  // Streaming trace sink (SX4NCAR_TRACE=stream); inactive in other modes.
  bench::StreamTrace stream(rep.aux_path("trace.sxt"), node);
  const bool full = rep.full_mode();

  print_banner(std::cout,
               "Figure 8: CCM2 sustained Cray-equivalent Gflops, SX-4/32");
  Table t({"Resolution", "CPUs", "Gflops", "Speedup"});
  double t170_32 = 0, t42_eff = 0, t170_eff = 0;
  std::vector<ccm2::Resolution> resolutions = {ccm2::t42l18(), ccm2::t106l18(),
                                               ccm2::t170l18()};
  for (const auto& res : resolutions) {
    ccm2::Ccm2Config c;
    c.res = res;
    c.active_levels = full ? 2 : 1;
    ccm2::Ccm2 model(c, node);
    double g1 = 0;
    for (int p : {1, 2, 4, 8, 16, 32}) {
      node.reset();
      // Gflops depend only on the charge sequence, never on the prognostic
      // fields, so the sweep replays charges (see Ccm2::charge_step) instead
      // of re-running the host numerics at every CPU count.
      const double g = model.charge_sustained_equiv_gflops(p, full ? 2 : 1);
      if (p == 1) g1 = g;
      t.add_row({res.name, std::to_string(p), format_fixed(g, 2),
                 format_fixed(g / g1, 2)});
      rep.metric("fig8.ccm2." + res.name + ".gflops@cpus=" + std::to_string(p),
                 g, "Gflops");
      if (res.name == "T170L18" && p == 32) {
        t170_32 = g;
        t170_eff = g / g1 / 32.0;
      }
      if (res.name == "T42L18" && p == 32) t42_eff = g / g1 / 32.0;
    }
  }
  t.print(std::cout);

  rep.expect("fig8.ccm2.t170_gflops@cpus=32", t170_32,
             bench::Band::relative(24.0, 0.25),
             "paper Fig 8: T170L18 sustains 24 Gflops on 32 CPUs", "Gflops");
  rep.metric("fig8.ccm2.t42_efficiency@cpus=32", t42_eff);
  rep.metric("fig8.ccm2.t170_efficiency@cpus=32", t170_eff);
  rep.expect_true("fig8.larger_problems_scale_better", t170_eff > t42_eff,
                  "paper prose: medium and large problems scale reasonably "
                  "well, small ones flatten");

  std::printf("\nT170L18 on 32 CPUs: %.1f Gflops (paper: 24), ratio %.2f\n",
              t170_32, t170_32 / 24.0);
  std::printf("parallel efficiency at 32 CPUs: T42 %.0f%%, T170 %.0f%%\n",
              100 * t42_eff, 100 * t170_eff);
  const bool anchor = t170_32 > 0.8 * 24.0 && t170_32 < 1.25 * 24.0;
  const bool shape = t170_eff > t42_eff;
  std::printf("T170 within 25%% of paper: %s; larger problems scale better: %s\n",
              anchor ? "yes" : "NO", shape ? "yes" : "NO");
  rep.cost_cache_counters(static_cast<double>(node.cost_cache_hits()),
                          static_cast<double>(node.cost_cache_misses()));
  // Attribution covers the last sweep point (T170L18 on 32 CPUs): node.reset()
  // clears the collectors with the cycle counters. No-op when tracing is off.
  bench::print_attribution(std::cout, node);
  bench::report_attribution(rep, "fig8", node);
  if (bench::write_chrome_trace_file(rep.trace_path(), node)) {
    std::printf("chrome trace: %s\n", rep.trace_path().c_str());
  }
  if (stream.finish(rep)) {
    std::printf("stream trace: %s\n", rep.aux_path("trace.sxt").c_str());
  }
  return rep.finish(std::cout);
}
