#include "fpt/elefunt.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ncar::fpt {

namespace {

/// Size of one ulp at `x`.
double ulp_at(double x) {
  const double ax = std::abs(x);
  if (ax == 0.0) return std::numeric_limits<double>::denorm_min();
  int exp;
  std::frexp(ax, &exp);
  return std::ldexp(1.0, exp - 53);
}

double ulp_error(double computed, double reference) {
  if (computed == reference) return 0.0;
  return std::abs(computed - reference) / ulp_at(reference);
}

/// "Purify" x so that x and x+delta are both exact and their difference is
/// exactly delta (Cody's trick: round x to a form with trailing zeros).
double purify(double x, int keep_bits = 40) {
  int exp;
  const double m = std::frexp(x, &exp);
  const double scaled = std::ldexp(m, keep_bits);
  return std::ldexp(std::nearbyint(scaled), exp - keep_bits);
}

}  // namespace

double ulp_threshold(sxs::Intrinsic f) {
  using sxs::Intrinsic;
  switch (f) {
    case Intrinsic::Sqrt: return 1.0;   // IEEE requires correct rounding
    case Intrinsic::Exp: return 4.0;    // identity tests amplify ~2 ulp
    case Intrinsic::Log: return 4.0;
    case Intrinsic::Sin: return 4.0;
    case Intrinsic::Cos: return 4.0;
    case Intrinsic::Pow: return 6.0;    // two-function composition
  }
  throw ncar::precondition_error("unknown intrinsic");
}

AccuracyResult measure_accuracy(sxs::Intrinsic f, long samples,
                                std::uint64_t seed) {
  NCAR_REQUIRE(samples > 0, "need at least one sample");
  using sxs::Intrinsic;
  Rng rng(seed);
  AccuracyResult r;
  r.func = f;
  r.samples = samples;
  double sum_sq = 0;

  for (long i = 0; i < samples; ++i) {
    double err = 0;
    switch (f) {
      case Intrinsic::Exp: {
        // Cody: exp(x - 1/16) vs exp(x) / exp(1/16); 1/16 is exact, and the
        // subtraction on a purified x is exact.
        const double x = purify(rng.uniform(-30.0, 30.0));
        const double lhs = std::exp(x - 0.0625);
        const double rhs = std::exp(x) / std::exp(0.0625);
        err = ulp_error(lhs, rhs);
        break;
      }
      case Intrinsic::Log: {
        // Cody: log(x*x) vs 2*log(x); x*x made exact by purifying to 26
        // bits so the square is representable.
        const double x = purify(rng.uniform(0.5, 1e6), 26);
        const double lhs = std::log(x * x);
        const double rhs = 2.0 * std::log(x);
        err = ulp_error(lhs, rhs);
        break;
      }
      case Intrinsic::Sin: {
        // Triple-angle identity: sin(3x) = 3 sin(x) - 4 sin^3(x), on a range
        // where sin(3x) stays well away from zero (Cody restricts the
        // argument range so the identity does not amplify cancellation).
        const double x = purify(rng.uniform(0.01, 0.55));
        const double s = std::sin(x);
        const double lhs = std::sin(3.0 * x);
        const double rhs = 3.0 * s - 4.0 * s * s * s;
        err = ulp_error(lhs, rhs);
        break;
      }
      case Intrinsic::Cos: {
        // cos(2x) = 2 cos^2(x) - 1, with 2x kept below 1 radian so cos(2x)
        // stays away from zero (no cancellation amplification).
        const double x = purify(rng.uniform(0.01, 0.5));
        const double lhs = std::cos(2.0 * x);
        const double rhs = 2.0 * std::cos(x) * std::cos(x) - 1.0;
        err = ulp_error(lhs, rhs);
        break;
      }
      case Intrinsic::Pow: {
        // x^1.5 vs x * sqrt(x); x is an exact square so sqrt(x) is exact
        // and the product rounds once.
        const double s = purify(rng.uniform(1.0, 1000.0), 26);
        const double x = s * s;  // exact
        err = ulp_error(std::pow(x, 1.5), x * std::sqrt(x));
        break;
      }
      case Intrinsic::Sqrt: {
        // sqrt(x^2) == |x| exactly for representable squares.
        const double x = purify(rng.uniform(1.0, 1e7), 26);
        err = ulp_error(std::sqrt(x * x), std::abs(x));
        break;
      }
    }
    r.max_ulp = std::max(r.max_ulp, err);
    sum_sq += err * err;
  }
  r.rms_ulp = std::sqrt(sum_sq / static_cast<double>(samples));
  r.passed = r.max_ulp <= ulp_threshold(f);
  return r;
}

std::vector<AccuracyResult> run_elefunt_accuracy(long samples) {
  using sxs::Intrinsic;
  std::vector<AccuracyResult> out;
  for (auto f : {Intrinsic::Exp, Intrinsic::Log, Intrinsic::Pow,
                 Intrinsic::Sin, Intrinsic::Sqrt}) {
    out.push_back(measure_accuracy(f, samples));
  }
  return out;
}

PerformanceResult measure_performance(machines::Comparator& machine,
                                      sxs::Intrinsic f, long calls) {
  NCAR_REQUIRE(calls > 0, "need at least one call");
  using sxs::Intrinsic;

  // Really evaluate the function over a modest buffer (the checksum keeps
  // the compiler honest), then charge the machine for the full call count.
  const long sample = std::min<long>(calls, 1 << 14);
  Rng rng(7);
  double checksum = 0;
  for (long i = 0; i < sample; ++i) {
    const double x = rng.uniform(0.1, 10.0);
    switch (f) {
      case Intrinsic::Exp: checksum += std::exp(-x); break;
      case Intrinsic::Log: checksum += std::log(x); break;
      case Intrinsic::Pow: checksum += std::pow(x, 1.3); break;
      case Intrinsic::Sin: checksum += std::sin(x); break;
      case Intrinsic::Cos: checksum += std::cos(x); break;
      case Intrinsic::Sqrt: checksum += std::sqrt(x); break;
    }
  }
  NCAR_REQUIRE(std::isfinite(checksum), "intrinsic evaluation diverged");

  machine.reset();
  machine.intrinsic(f, calls);
  PerformanceResult r;
  r.func = f;
  r.calls = calls;
  r.mcalls_per_s = static_cast<double>(calls) / machine.seconds().value() / 1e6;
  return r;
}

std::vector<PerformanceResult> run_elefunt_performance(
    machines::Comparator& machine, long calls) {
  using sxs::Intrinsic;
  std::vector<PerformanceResult> out;
  for (auto f : {Intrinsic::Exp, Intrinsic::Log, Intrinsic::Pow,
                 Intrinsic::Sin, Intrinsic::Sqrt}) {
    out.push_back(measure_performance(machine, f, calls));
  }
  return out;
}

}  // namespace ncar::fpt
