#pragma once
// PARANOIA-style floating-point arithmetic correctness tests.
//
// The NCAR suite's first benchmark category (paper section 4.1) checks the
// correctness of a vendor's basic floating-point arithmetic with Kahan's
// PARANOIA before trusting any performance number. This module implements
// the core battery of PARANOIA's diagnostics for the host's `double`
// arithmetic: radix and precision discovery, guard digits, rounding
// behaviour, exactness of small-integer arithmetic, square-root fidelity,
// and underflow/overflow behaviour. Each check is an independent pass/fail
// with a description, so a failure pinpoints the broken operation — the
// paper's reason for running these tests in isolation.

#include <string>
#include <vector>

namespace ncar::fpt {

struct Check {
  std::string name;
  bool passed = false;
  std::string detail;  ///< what was measured / expected
};

struct ParanoiaReport {
  int radix = 0;        ///< discovered floating-point base (2 for IEEE 754)
  int digits = 0;       ///< significand digits in that base (53 for binary64)
  bool has_guard_digit = false;
  bool rounds_to_nearest = false;
  bool gradual_underflow = false;
  std::vector<Check> checks;

  bool all_passed() const;
  /// Number of failed checks (0 on a conforming IEEE 754 implementation).
  int failures() const;
};

/// Run the full battery on the host double arithmetic.
ParanoiaReport run_paranoia();

// Individual diagnostics, exposed for targeted tests ------------------------

/// Discover the radix of `double` arithmetic (PARANOIA's B).
int discover_radix();

/// Discover significand digits in the discovered radix (PARANOIA's T).
int discover_digits();

/// One ulp above/below 1.0 behave exactly (guard digit in subtraction).
bool check_guard_digit();

/// Addition rounds to nearest (ties measurable at the halfway point).
bool check_round_to_nearest();

/// Multiplication by small integers is exact.
bool check_small_integer_arithmetic();

/// sqrt(x*x) == x for exactly representable x.
bool check_sqrt_exactness();

/// Subnormals exist and compare correctly (gradual underflow).
bool check_gradual_underflow();

/// Overflow saturates to +inf, and inf/nan propagate correctly.
bool check_infinity_semantics();

}  // namespace ncar::fpt
