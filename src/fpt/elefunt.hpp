#pragma once
// ELEFUNT-style elementary function tests (accuracy + performance).
//
// Paper section 4.1: the second correctness benchmark is based on W. J.
// Cody's ELEFUNT, measuring the accuracy of intrinsic functions, to which
// NCAR added performance measurement (millions of function calls per
// second) for EXP, LOG, PWR, SIN, and SQRT — the intrinsics that dominate
// RADABS. Accuracy here is measured Cody-style through function identities
// evaluated at "purified" arguments (chosen so the identity's right-hand
// side is exact in floating point), reported in ulps.

#include <string>
#include <vector>

#include "machines/comparator.hpp"
#include "sxs/ops.hpp"

namespace ncar::fpt {

struct AccuracyResult {
  sxs::Intrinsic func;
  double max_ulp = 0;    ///< worst observed identity violation
  double rms_ulp = 0;    ///< root-mean-square error
  long samples = 0;
  bool passed = false;   ///< max_ulp below the conformance threshold
};

/// Identity-based accuracy measurement for one intrinsic over `samples`
/// deterministic pseudo-random purified arguments.
AccuracyResult measure_accuracy(sxs::Intrinsic f, long samples = 20000,
                                std::uint64_t seed = 1996);

/// Accuracy battery over the five functions the paper names.
std::vector<AccuracyResult> run_elefunt_accuracy(long samples = 20000);

/// Threshold (ulps) below which an identity test passes. Cody's tests
/// tolerate a few ulps of identity error on correctly rounded libraries.
double ulp_threshold(sxs::Intrinsic f);

struct PerformanceResult {
  sxs::Intrinsic func;
  double mcalls_per_s = 0;   ///< simulated millions of calls per second
  long calls = 0;
};

/// Table 3: vectorised intrinsic throughput on a machine model. The calls
/// are actually evaluated on the host (their results are reduced into a
/// checksum so the work is real), while time comes from the machine model.
PerformanceResult measure_performance(machines::Comparator& machine,
                                      sxs::Intrinsic f, long calls = 1 << 20);

std::vector<PerformanceResult> run_elefunt_performance(
    machines::Comparator& machine, long calls = 1 << 20);

}  // namespace ncar::fpt
