#include "fpt/paranoia.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace ncar::fpt {

namespace {

// Defeat constant folding: force a value through memory.
volatile double sink;
double store(double x) {
  sink = x;
  return sink;
}

}  // namespace

int discover_radix() {
  // PARANOIA: grow a until (a+1)-a != 1 (a has absorbed the ulp), then find
  // the smallest b with (a+b)-a != 0; that increment is the radix.
  double a = 1.0;
  while (store(store(a + 1.0) - a) == 1.0) a *= 2.0;
  double b = 1.0;
  while (store(store(a + b) - a) == 0.0) b += 1.0;
  return static_cast<int>(store(store(a + b) - a));
}

int discover_digits() {
  const double radix = discover_radix();
  int t = 0;
  double p = 1.0;
  // Smallest t with (radix^t + 1) - radix^t != 1.
  while (store(store(p + 1.0) - p) == 1.0) {
    p *= radix;
    ++t;
  }
  return t;
}

bool check_guard_digit() {
  // With a guard digit, (1+e) - 1 recovers e exactly for e = 2^-k well
  // within the significand, and (1.5 - 1) - 0.5 is exactly zero.
  const double e = std::ldexp(1.0, -30);
  if (store(store(1.0 + e) - 1.0) != e) return false;
  if (store(store(1.5 - 1.0) - 0.5) != 0.0) return false;
  // Classic failure on machines without guard digits: x - y with y/2 <= x
  // <= 2y must be exact (Sterbenz); test a representative pair.
  const double x = 1.000000059604644775390625;  // 1 + 2^-24
  const double y = 1.0;
  const double diff = store(x - y);
  return diff == std::ldexp(1.0, -24);
}

bool check_round_to_nearest() {
  // 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: round-to-nearest-
  // even must return 1. 1 + 3*2^-54 lies above halfway: must round up.
  const double half_ulp = std::ldexp(1.0, -53);
  if (store(1.0 + half_ulp) != 1.0) return false;
  const double above = std::ldexp(3.0, -54);
  if (store(1.0 + above) != 1.0 + std::ldexp(1.0, -52)) return false;
  // Symmetric case below 1.0: 1 - 2^-54 is halfway between 1-2^-53 and 1;
  // even rounding gives 1.
  if (store(1.0 - std::ldexp(1.0, -54)) != 1.0) return false;
  return true;
}

bool check_small_integer_arithmetic() {
  // Products, sums, and quotients of small integers are exact.
  for (int i = 1; i <= 100; ++i) {
    for (int j = 1; j <= 20; ++j) {
      const double p = store(static_cast<double>(i) * j);
      if (p != static_cast<double>(i * j)) return false;
    }
  }
  // x/y*y == x when y divides x exactly in binary.
  for (int k = 0; k < 50; ++k) {
    const double x = static_cast<double>(3 * (1 << 10) + k * 8);
    if (store(store(x / 8.0) * 8.0) != x) return false;
  }
  return true;
}

bool check_sqrt_exactness() {
  for (int i = 1; i <= 1000; ++i) {
    const double x = static_cast<double>(i);
    if (store(std::sqrt(x * x)) != x) return false;
  }
  // sqrt of powers of 4 is exact.
  for (int k = 0; k < 200; k += 2) {
    const double x = std::ldexp(1.0, k);
    if (store(std::sqrt(x)) != std::ldexp(1.0, k / 2)) return false;
  }
  return true;
}

bool check_gradual_underflow() {
  const double tiny = std::numeric_limits<double>::denorm_min();
  if (tiny == 0.0) return false;
  if (store(tiny / 2.0) != 0.0) return false;   // below denorm_min flushes
  if (store(tiny * 2.0) <= tiny) return false;  // subnormals scale
  const double min_normal = std::numeric_limits<double>::min();
  const double sub = store(min_normal / 4.0);
  if (sub == 0.0) return false;                  // gradual, not abrupt
  return store(sub * 4.0) == min_normal;         // exact (trailing zeros)
}

bool check_infinity_semantics() {
  const double huge = std::numeric_limits<double>::max();
  const double inf = std::numeric_limits<double>::infinity();
  if (store(huge * 2.0) != inf) return false;
  if (!(inf > huge)) return false;
  const double nan = store(inf - inf);
  if (nan == nan) return false;  // NaN compares unequal to itself
  return true;
}

bool ParanoiaReport::all_passed() const { return failures() == 0; }

int ParanoiaReport::failures() const {
  int n = 0;
  for (const auto& c : checks) n += !c.passed;
  return n;
}

ParanoiaReport run_paranoia() {
  ParanoiaReport r;
  r.radix = discover_radix();
  r.digits = discover_digits();
  r.has_guard_digit = check_guard_digit();
  r.rounds_to_nearest = check_round_to_nearest();
  r.gradual_underflow = check_gradual_underflow();

  auto add = [&r](const std::string& name, bool ok, const std::string& det) {
    r.checks.push_back({name, ok, det});
  };
  {
    std::ostringstream d;
    d << "radix=" << r.radix << " (IEEE 754 binary: 2)";
    add("radix discovery", r.radix == 2, d.str());
  }
  {
    std::ostringstream d;
    d << "digits=" << r.digits << " (binary64: 53)";
    add("precision discovery", r.digits == 53, d.str());
  }
  add("guard digit in subtraction", r.has_guard_digit,
      "(1+e)-1 == e and Sterbenz subtraction exact");
  add("round to nearest even", r.rounds_to_nearest,
      "ties at half-ulp round to even");
  add("small integer arithmetic exact", check_small_integer_arithmetic(),
      "i*j, x/8*8 exact for small operands");
  add("sqrt exact on perfect squares", check_sqrt_exactness(),
      "sqrt(x*x)==x, sqrt(4^k)==2^k");
  add("gradual underflow", r.gradual_underflow,
      "subnormals exist below DBL_MIN");
  add("infinity and NaN semantics", check_infinity_semantics(),
      "overflow->inf, inf-inf is NaN, NaN!=NaN");
  return r;
}

}  // namespace ncar::fpt
