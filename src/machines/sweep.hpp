#pragma once
// Design-space sweep engine (DESIGN.md section 10).
//
// The paper's Table 1 asks "which architecture wins?" for exactly five
// machines; the sweep engine asks it for thousands. A Grid expands
// parameter ranges (pipes, vector length, banks, port width, cache shape)
// over a base MachineDescription into a lazy cartesian product — configs
// are materialised one at a time from an index, never as a list, so
// pending-config memory stays bounded no matter how large the product.
//
// Charging a real kernel against every config would re-run the numerics
// thousands of times, so the engine records the kernel ONCE: an OpSink on a
// Comparator captures the logical op stream (RADABS ~1e3 descriptors, HINT
// ~1e2, VFFT a handful with repeat counts), and replay against each swept
// config is pure timing-model evaluation that leans on the per-config
// CostCache. Each point is then classified memory-bound vs compute-bound
// by perturbation twins — does doubling the memory port help more than
// doubling the arithmetic pipes? — and neighbouring points that disagree
// form the flip boundary the report flags.
//
// Determinism: replay is a pure function of (probe, config), points are
// written into a preallocated slot per index, and aggregate counters are
// order-independent integer sums — so the JSON report is byte-identical
// across Sequential and Threaded execution and across repeated runs
// (tests/machines/test_sweep.cpp, bench/design_sweep determinism check).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "machines/description.hpp"
#include "sxs/execution_policy.hpp"

namespace ncar {
class ThreadPool;
}

namespace ncar::machines {

/// One swept parameter: a description key plus the values it takes.
struct Axis {
  std::string key;
  std::vector<double> values;

  friend bool operator==(const Axis&, const Axis&) = default;
};

/// A lazy cartesian grid of machine descriptions: `base` overlaid with one
/// value per axis. Point `i` is decoded mixed-radix (first axis fastest);
/// nothing is materialised until config(i) is called.
class Grid {
public:
  /// Throws ncar::config_error on unknown axis keys, empty value lists,
  /// duplicate axis keys, or a product that overflows size_t.
  Grid(MachineDescription base, std::vector<Axis> axes);

  std::size_t size() const { return size_; }
  const MachineDescription& base() const { return base_; }
  const std::vector<Axis>& axes() const { return axes_; }

  /// Per-axis value indices of point `index` (first axis fastest).
  std::vector<std::size_t> coordinates(std::size_t index) const;
  /// Per-axis parameter values of point `index`.
  std::vector<double> values(std::size_t index) const;
  /// Materialise the description at `index` (base + axis overlays).
  MachineDescription config(std::size_t index) const;
  /// Index of the next point along `axis` (coordinate + 1), or size()
  /// when `index` is already on the grid's edge along that axis.
  std::size_t neighbor(std::size_t index, std::size_t axis) const;

private:
  MachineDescription base_;
  std::vector<Axis> axes_;
  std::size_t size_;
};

/// One recorded charge: a tagged union over the Comparator charging API.
struct ProbeOp {
  enum class Kind { Vector, Scalar, Intrinsic };
  Kind kind = Kind::Vector;
  sxs::VectorOp vec;       ///< Kind::Vector
  long repeats = 1;        ///< Kind::Vector
  sxs::ScalarOp scalar;    ///< Kind::Scalar
  sxs::Intrinsic f = sxs::Intrinsic::Exp;  ///< Kind::Intrinsic
  long calls = 0;          ///< Kind::Intrinsic
};

/// A kernel's logical op stream, recorded once and replayed per config.
struct Probe {
  std::string kernel;
  std::vector<ProbeOp> ops;

  /// Total charges after expanding repeat counts (reporting only).
  double total_charges() const;
};

/// Kernels record_probe understands: "radabs", "hint", "vfft".
std::vector<std::string> probe_kernels();

/// Record `kernel`'s op stream by running its numerics once against an
/// SX-4 Comparator with an OpSink attached ("vfft" charges the documented
/// stage structure directly). Throws ncar::config_error on unknown names.
Probe record_probe(std::string_view kernel);

/// Timing-model replay of a probe against one spec.
struct Replay {
  double seconds = 0;
  double hw_flops = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

Replay replay_probe(const Probe& probe, const Spec& spec);

/// The sweep's verdict on one grid point.
struct PointResult {
  std::size_t index = 0;
  std::vector<double> values;  ///< axis parameter values at this point
  bool valid = false;
  std::string error;           ///< lowering failure for invalid points
  double seconds = 0;
  double hw_mflops = 0;
  /// Speedup from doubling the memory port width (the memory twin).
  double memory_gain = 1.0;
  /// Speedup from doubling the arithmetic pipes (the compute twin).
  double compute_gain = 1.0;
  /// True when the memory twin gains at least as much as the compute twin.
  bool memory_bound = false;
  std::uint64_t cache_hits = 0;    ///< not serialised (aggregated)
  std::uint64_t cache_misses = 0;  ///< not serialised (aggregated)
};

/// A grid edge across which the memory-bound classification flips.
struct FlipEdge {
  std::size_t from = 0;  ///< lower point (memory_bound differs from `to`)
  std::size_t to = 0;
  std::string axis;      ///< axis key the edge runs along
};

struct SweepOptions {
  std::string kernel = "radabs";
  /// Host execution policy; simulated results are policy-independent.
  sxs::ExecutionPolicy policy = sxs::default_execution_policy();
  /// Pool for Threaded policy; nullptr means ThreadPool::global().
  ThreadPool* pool = nullptr;
};

struct SweepReport {
  std::string kernel;
  MachineDescription base;
  std::vector<Axis> axes;
  std::vector<PointResult> points;
  std::vector<FlipEdge> flips;
  /// Order-independent sums over all points (deterministic, serialised).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Peak simultaneously-live replay workspaces (bounded-memory witness:
  /// never exceeds the host thread count). Host-thread-dependent, so NOT
  /// part of to_json().
  int peak_live_workspaces = 0;

  std::size_t valid_count() const;
  std::size_t memory_bound_count() const;
  /// Fastest valid point, ties broken by lower index; nullptr when none.
  const PointResult* fastest() const;

  /// Deterministic JSON: insertion-ordered keys, shortest round-trip
  /// numbers — byte-identical across execution policies and runs.
  std::string to_json() const;
};

/// Record the kernel once, replay it over every grid point (each point
/// plus its two perturbation twins), classify, and find flip edges.
SweepReport run_sweep(const Grid& grid, const SweepOptions& opts);

}  // namespace ncar::machines
