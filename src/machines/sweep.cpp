#include "machines/sweep.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "hint/hint.hpp"
#include "radabs/radabs.hpp"

namespace ncar::machines {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw ncar::config_error(message);
}

}  // namespace

// ---------------------------------------------------------------------------
// Grid

Grid::Grid(MachineDescription base, std::vector<Axis> axes)
    : base_(std::move(base)), axes_(std::move(axes)), size_(1) {
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const Axis& axis = axes_[a];
    if (!known_key(axis.key)) {
      fail("sweep axis: unknown key '" + axis.key + "'");
    }
    if (axis.values.empty()) {
      fail("sweep axis '" + axis.key + "': no values");
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (axes_[b].key == axis.key) {
        fail("sweep axis '" + axis.key + "': duplicate axis");
      }
    }
    if (size_ > std::numeric_limits<std::size_t>::max() / axis.values.size()) {
      fail("sweep grid: size overflows");
    }
    size_ *= axis.values.size();
  }
}

std::vector<std::size_t> Grid::coordinates(std::size_t index) const {
  NCAR_REQUIRE(index < size_, "grid index out of range");
  std::vector<std::size_t> coords(axes_.size());
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    coords[a] = index % axes_[a].values.size();
    index /= axes_[a].values.size();
  }
  return coords;
}

std::vector<double> Grid::values(std::size_t index) const {
  const std::vector<std::size_t> coords = coordinates(index);
  std::vector<double> out(axes_.size());
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    out[a] = axes_[a].values[coords[a]];
  }
  return out;
}

MachineDescription Grid::config(std::size_t index) const {
  const std::vector<std::size_t> coords = coordinates(index);
  MachineDescription d = base_;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    d.set(axes_[a].key, axes_[a].values[coords[a]]);
  }
  return d;
}

std::size_t Grid::neighbor(std::size_t index, std::size_t axis) const {
  NCAR_REQUIRE(axis < axes_.size(), "grid axis out of range");
  const std::vector<std::size_t> coords = coordinates(index);
  if (coords[axis] + 1 >= axes_[axis].values.size()) return size_;
  std::size_t stride = 1;
  for (std::size_t a = 0; a < axis; ++a) stride *= axes_[a].values.size();
  return index + stride;
}

// ---------------------------------------------------------------------------
// Probe recording

double Probe::total_charges() const {
  double total = 0;
  for (const ProbeOp& op : ops) {
    total += op.kind == ProbeOp::Kind::Vector
                 ? static_cast<double>(op.repeats)
                 : 1.0;
  }
  return total;
}

std::vector<std::string> probe_kernels() { return {"radabs", "hint", "vfft"}; }

namespace {

/// OpSink that appends every charge to a probe's op list.
class Recorder final : public OpSink {
public:
  explicit Recorder(std::vector<ProbeOp>& out) : out_(&out) {}

  void on_vec(const sxs::VectorOp& op, long repeats) override {
    ProbeOp p;
    p.kind = ProbeOp::Kind::Vector;
    p.vec = op;
    p.repeats = repeats;
    out_->push_back(p);
  }
  void on_scalar(const sxs::ScalarOp& op) override {
    ProbeOp p;
    p.kind = ProbeOp::Kind::Scalar;
    p.scalar = op;
    out_->push_back(p);
  }
  void on_intrinsic(sxs::Intrinsic f, long n) override {
    ProbeOp p;
    p.kind = ProbeOp::Kind::Intrinsic;
    p.f = f;
    p.calls = n;
    out_->push_back(p);
  }

private:
  std::vector<ProbeOp>* out_;
};

}  // namespace

Probe record_probe(std::string_view kernel) {
  Probe probe;
  probe.kernel = std::string(kernel);
  if (kernel == "vfft") {
    // The VFFT charging structure for n = 256 over m = 128 instances
    // (fft/style_bench.cpp): eight radix-2 stages, each butterfly one
    // unit-stride vector op across the instances, n/f butterflies per
    // stage. Emitted directly because run_vfft charges a bare sxs::Cpu.
    for (int stage = 0; stage < 8; ++stage) {
      ProbeOp op;
      op.kind = ProbeOp::Kind::Vector;
      op.vec.n = 128;
      op.vec.flops_per_elem = 5.0;  // 0.5 * radix-2 butterfly flops
      op.vec.load_words = 2.0;
      op.vec.store_words = 2.0;
      op.vec.pipe_groups = 2;
      op.repeats = 128;  // 256 / 2 butterflies per stage
      probe.ops.push_back(op);
    }
    return probe;
  }

  // Run the kernel's numerics once against the SX-4 with a recorder
  // attached; the captured stream is the *logical* charges, so replaying
  // it against scalar machines still takes their scalar fallback path.
  Comparator machine(Comparator::nec_sx4_single());
  Recorder recorder(probe.ops);
  machine.set_op_sink(&recorder);
  if (kernel == "radabs") {
    (void)radabs::run_radabs_standard(machine);
  } else if (kernel == "hint") {
    (void)hint::run_hint(machine, 50'000);
  } else {
    fail("record_probe: unknown kernel '" + probe.kernel +
         "' (known: radabs, hint, vfft)");
  }
  return probe;
}

// ---------------------------------------------------------------------------
// Replay

Replay replay_probe(const Probe& probe, const Spec& spec) {
  Comparator machine(spec);
  for (const ProbeOp& op : probe.ops) {
    switch (op.kind) {
      case ProbeOp::Kind::Vector:
        machine.vec(op.vec, op.repeats);
        break;
      case ProbeOp::Kind::Scalar:
        machine.scalar(op.scalar);
        break;
      case ProbeOp::Kind::Intrinsic:
        machine.intrinsic(op.f, op.calls);
        break;
    }
  }
  Replay r;
  r.seconds = machine.seconds().value();
  r.hw_flops = machine.hw_flops().value();
  r.cache_hits = machine.cpu().cost_cache_hits();
  r.cache_misses = machine.cpu().cost_cache_misses();
  return r;
}

// ---------------------------------------------------------------------------
// Classification twins

namespace {

/// Memory twin: same machine with the per-CPU memory port twice as wide.
MachineDescription memory_twin(const MachineDescription& d) {
  const sxs::MachineConfig defaults;
  MachineDescription t = d;
  t.set("port_bytes_per_clock",
        2.0 * t.get_or("port_bytes_per_clock",
                       defaults.port_bytes_per_clock.value()));
  return t;
}

/// Compute twin: same machine with twice the arithmetic pipes (vector
/// length bumped to the next multiple when the doubling breaks the
/// VL-divides-pipes constraint).
MachineDescription compute_twin(const MachineDescription& d) {
  const sxs::MachineConfig defaults;
  MachineDescription t = d;
  const double pipes =
      2.0 * t.get_or("pipes_per_group",
                     static_cast<double>(defaults.pipes_per_group));
  double vl =
      t.get_or("vector_length", static_cast<double>(defaults.vector_length));
  vl = std::ceil(vl / pipes) * pipes;
  t.set("pipes_per_group", pipes);
  t.set("vector_length", vl);
  return t;
}

/// Speedup of a twin over the base time; an unloverable twin gains 1.0
/// (the perturbation fell off the valid design space, so it cannot help).
double twin_gain(const Probe& probe, const MachineDescription& twin,
                 double base_seconds, PointResult& p) {
  try {
    const Replay r = replay_probe(probe, twin.lower());
    p.cache_hits += r.cache_hits;
    p.cache_misses += r.cache_misses;
    return r.seconds > 0 ? base_seconds / r.seconds : 1.0;
  } catch (const ncar::config_error&) {
    return 1.0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Sweep

std::size_t SweepReport::valid_count() const {
  std::size_t n = 0;
  for (const PointResult& p : points) n += p.valid ? 1 : 0;
  return n;
}

std::size_t SweepReport::memory_bound_count() const {
  std::size_t n = 0;
  for (const PointResult& p : points) n += (p.valid && p.memory_bound) ? 1 : 0;
  return n;
}

const PointResult* SweepReport::fastest() const {
  const PointResult* best = nullptr;
  for (const PointResult& p : points) {
    if (!p.valid) continue;
    if (best == nullptr || p.seconds < best->seconds) best = &p;
  }
  return best;
}

SweepReport run_sweep(const Grid& grid, const SweepOptions& opts) {
  NCAR_REQUIRE(grid.size() >= 1, "empty sweep grid");
  NCAR_REQUIRE(grid.size() <=
                   static_cast<std::size_t>(std::numeric_limits<int>::max()),
               "sweep grid too large");
  SweepReport rep;
  rep.kernel = opts.kernel;
  rep.base = grid.base();
  rep.axes = grid.axes();
  rep.points.resize(grid.size());

  const Probe probe = record_probe(opts.kernel);

  // Bounded-memory witness: each in-flight point owns one replay workspace
  // (a Comparator + its cost caches); the peak gauge can never exceed the
  // host thread count, no matter the grid size.
  std::atomic<int> live{0};
  std::atomic<int> peak{0};

  auto evaluate = [&](int i) {
    const int now = live.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }

    const std::size_t index = static_cast<std::size_t>(i);
    PointResult& p = rep.points[index];
    p.index = index;
    p.values = grid.values(index);
    const MachineDescription d = grid.config(index);
    try {
      const Spec spec = d.lower();
      const Replay base = replay_probe(probe, spec);
      p.valid = true;
      p.seconds = base.seconds;
      p.hw_mflops =
          base.seconds > 0 ? base.hw_flops / base.seconds / 1e6 : 0.0;
      p.cache_hits = base.cache_hits;
      p.cache_misses = base.cache_misses;
      p.memory_gain = twin_gain(probe, memory_twin(d), base.seconds, p);
      p.compute_gain = twin_gain(probe, compute_twin(d), base.seconds, p);
      // Ties go to memory: on a balanced point more bandwidth is the
      // paper's answer (section 2.2), and the rule keeps the label a pure
      // function of the two gains.
      p.memory_bound = p.memory_gain >= p.compute_gain;
    } catch (const ncar::config_error& e) {
      p.valid = false;
      p.error = e.what();
    }
    live.fetch_sub(1);
  };

  const int n = static_cast<int>(grid.size());
  if (opts.policy == sxs::ExecutionPolicy::Threaded) {
    ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::global();
    pool.parallel_for(n, evaluate);
  } else {
    for (int i = 0; i < n; ++i) evaluate(i);
  }

  for (const PointResult& p : rep.points) {
    rep.cache_hits += p.cache_hits;
    rep.cache_misses += p.cache_misses;
  }
  rep.peak_live_workspaces = peak.load();

  // Flip boundary: forward edges whose endpoints disagree on the label.
  for (std::size_t i = 0; i < rep.points.size(); ++i) {
    if (!rep.points[i].valid) continue;
    for (std::size_t a = 0; a < rep.axes.size(); ++a) {
      const std::size_t nb = grid.neighbor(i, a);
      if (nb >= rep.points.size() || !rep.points[nb].valid) continue;
      if (rep.points[i].memory_bound != rep.points[nb].memory_bound) {
        rep.flips.push_back({i, nb, rep.axes[a].key});
      }
    }
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Deterministic JSON report

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  out += std::isfinite(v) ? format_number(v) : "null";
}

}  // namespace

std::string SweepReport::to_json() const {
  std::string j = "{\n  \"kernel\": ";
  append_escaped(j, kernel);

  j += ",\n  \"base\": {\n    \"name\": ";
  append_escaped(j, base.name);
  for (const auto& [key, value] : base.entries) {
    j += ",\n    ";
    append_escaped(j, key);
    j += ": ";
    append_number(j, value);
  }
  j += "\n  },\n  \"axes\": [";
  for (std::size_t a = 0; a < axes.size(); ++a) {
    j += a == 0 ? "\n" : ",\n";
    j += "    {\"key\": ";
    append_escaped(j, axes[a].key);
    j += ", \"values\": [";
    for (std::size_t v = 0; v < axes[a].values.size(); ++v) {
      if (v != 0) j += ", ";
      append_number(j, axes[a].values[v]);
    }
    j += "]}";
  }
  j += "\n  ],\n  \"grid_size\": " + format_number(static_cast<double>(points.size()));
  j += ",\n  \"valid_points\": " +
       format_number(static_cast<double>(valid_count()));
  j += ",\n  \"memory_bound_points\": " +
       format_number(static_cast<double>(memory_bound_count()));
  j += ",\n  \"compute_bound_points\": " +
       format_number(static_cast<double>(valid_count() - memory_bound_count()));
  j += ",\n  \"flip_edges\": " +
       format_number(static_cast<double>(flips.size()));
  j += ",\n  \"cost_cache\": {\"hits\": " +
       format_number(static_cast<double>(cache_hits)) +
       ", \"misses\": " + format_number(static_cast<double>(cache_misses)) +
       "}";

  if (const PointResult* best = fastest()) {
    j += ",\n  \"fastest\": {\"index\": " +
         format_number(static_cast<double>(best->index)) + ", \"seconds\": ";
    append_number(j, best->seconds);
    j += ", \"hw_mflops\": ";
    append_number(j, best->hw_mflops);
    j += "}";
  }

  j += ",\n  \"flips\": [";
  for (std::size_t f = 0; f < flips.size(); ++f) {
    j += f == 0 ? "\n" : ",\n";
    j += "    {\"from\": " + format_number(static_cast<double>(flips[f].from)) +
         ", \"to\": " + format_number(static_cast<double>(flips[f].to)) +
         ", \"axis\": ";
    append_escaped(j, flips[f].axis);
    j += "}";
  }
  j += flips.empty() ? "],\n" : "\n  ],\n";

  j += "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"index\": " + format_number(static_cast<double>(p.index)) +
         ", \"values\": [";
    for (std::size_t v = 0; v < p.values.size(); ++v) {
      if (v != 0) j += ", ";
      append_number(j, p.values[v]);
    }
    j += "], ";
    if (!p.valid) {
      j += "\"valid\": false, \"error\": ";
      append_escaped(j, p.error);
      j += "}";
      continue;
    }
    j += "\"valid\": true, \"seconds\": ";
    append_number(j, p.seconds);
    j += ", \"hw_mflops\": ";
    append_number(j, p.hw_mflops);
    j += ", \"memory_gain\": ";
    append_number(j, p.memory_gain);
    j += ", \"compute_gain\": ";
    append_number(j, p.compute_gain);
    j += ", \"memory_bound\": ";
    j += p.memory_bound ? "true" : "false";
    j += "}";
  }
  j += points.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return j;
}

}  // namespace ncar::machines
