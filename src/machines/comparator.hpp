#pragma once
// Comparator machine models for the paper's Table 1.
//
// The paper contrasts the HINT metric with the NCAR RADABS kernel on four
// systems: SUN Sparc20, IBM RS6000/590, Cray J90, and Cray Y-MP. The point
// of the table is the scalar/vector asymmetry — HINT ranks the cache-based
// workstations above the vector Crays while RADABS ranks them the other way
// around. We model each system with the same parameterised timing machinery
// as the SX-4 (the sxs::MachineConfig is general enough to describe a Cray's
// single-wide vector pipes or a workstation with no vector unit at all).
//
// Calibration sources for the presets: published clock rates and pipe
// structures (Y-MP: 6 ns, one add + one multiply pipe per CPU, VL=64;
// J90: 10 ns CMOS derivative of the Y-MP; SuperSPARC ~60 MHz, 16 KB data
// cache; POWER2 ~66.5 MHz, dual FMA units, 256 KB data cache).

#include <memory>
#include <string>

#include "sxs/cpu.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/ops.hpp"

namespace ncar::machines {

/// Observer of the *logical* op stream charged to a Comparator. Callbacks
/// fire before machine dispatch, so a vec() charge is reported as a vector
/// op even on machines without vector hardware — a recorded stream replays
/// correctly against any target (sweep.hpp's record/replay engine).
class OpSink {
public:
  virtual ~OpSink() = default;
  virtual void on_vec(const sxs::VectorOp& op, long repeats) = 0;
  virtual void on_scalar(const sxs::ScalarOp& op) = 0;
  virtual void on_intrinsic(sxs::Intrinsic f, long n) = 0;
};

/// Description of a comparator system on top of the generic timing model.
struct Spec {
  std::string name;
  sxs::MachineConfig cfg;
  bool has_vector = true;
  /// Extra scalar cycles per libm intrinsic call (call overhead, argument
  /// checks) on machines that evaluate intrinsics in scalar library code.
  double libm_call_overhead_cycles = 0.0;
  /// Time multiplier for *vector* intrinsic evaluation relative to the
  /// machine's arithmetic pipes (1.0 = fully tuned vector libm).
  double vector_libm_multiplier = 1.0;
};

/// A machine that benchmark kernels can charge work against. Vector-style
/// loops fall back to the scalar unit on machines without vector hardware.
class Comparator {
public:
  explicit Comparator(Spec spec);

  // The internal Cpu references spec_.cfg; copying would dangle.
  Comparator(const Comparator&) = delete;
  Comparator& operator=(const Comparator&) = delete;

  const std::string& name() const { return spec_.name; }
  bool has_vector() const { return spec_.has_vector; }
  const sxs::MachineConfig& config() const { return spec_.cfg; }

  /// Charge a vectorisable loop (runs on vector pipes when present),
  /// `repeats` times.
  void vec(const sxs::VectorOp& op, long repeats = 1);
  /// Charge an inherently scalar loop.
  void scalar(const sxs::ScalarOp& op);
  /// Charge `n` intrinsic calls via the machine's best path.
  void intrinsic(sxs::Intrinsic f, long n);

  /// Attach an observer of every charged op (nullptr detaches; not owned).
  /// The sink survives reset() — kernels reset the machine on entry, and a
  /// recorder must still see the ops that follow.
  void set_op_sink(OpSink* sink) { sink_ = sink; }

  Seconds seconds() const { return Seconds(cpu_.seconds()); }
  Flops hw_flops() const { return cpu_.hw_flops(); }
  Flops equiv_flops() const { return cpu_.equiv_flops(); }
  /// Fraction of charged time spent in intrinsic evaluation.
  double intrinsic_time_fraction() const {
    return cpu_.cycles() > 0 ? cpu_.intrinsic_cycles() / cpu_.cycles() : 0.0;
  }
  /// Read access to the underlying CPU accounting.
  const sxs::Cpu& cpu() const { return cpu_; }
  void reset() { cpu_.reset(); }

  // --- presets (Table 1 systems + the SX-4 itself) -----------------------
  // Thin wrappers over the builtin machine catalog (description.hpp); the
  // pre-catalog hard-coded Specs survive verbatim in
  // tests/machines/test_golden_descriptions.cpp, which pins each preset
  // bit-identical to its description-built twin.
  static Spec sun_sparc20();
  static Spec ibm_rs6000_590();
  static Spec cray_j90();
  static Spec cray_ymp();
  static Spec nec_sx4_single();

private:
  Spec spec_;
  sxs::Cpu cpu_;
  OpSink* sink_ = nullptr;
};

}  // namespace ncar::machines
