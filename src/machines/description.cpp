#include "machines/description.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>

#include "common/error.hpp"

namespace ncar::machines {

namespace {

// ---------------------------------------------------------------------------
// Schema

const std::vector<KeyInfo>& schema() {
  // Canonical order: general → vector unit → scalar/cache → memory →
  // synchronisation → XMU/IOP/IXS → libm model. to_table() emits set keys
  // in this order, so equality is independent of source-table key order.
  static const std::vector<KeyInfo> kSchema = {
      {"clock_ns", KeyKind::Real},
      {"cpus_per_node", KeyKind::Count},
      {"nodes", KeyKind::Count},
      {"vector_unit", KeyKind::Flag},
      {"vector_length", KeyKind::Count},
      {"pipes_per_group", KeyKind::Count},
      {"vector_issue_clocks", KeyKind::Cycles},
      {"vector_startup_clocks", KeyKind::Cycles},
      {"divide_cycles_per_result", KeyKind::Cycles},
      {"scalar_issue_width", KeyKind::Count},
      {"dcache_bytes", KeyKind::Size},
      {"icache_bytes", KeyKind::Size},
      {"cache_line_bytes", KeyKind::Size},
      {"cache_ways", KeyKind::Count},
      {"cache_miss_clocks", KeyKind::Cycles},
      {"memory_banks", KeyKind::Count},
      {"bank_cycle_clocks", KeyKind::Cycles},
      {"port_bytes_per_clock", KeyKind::Rate},
      {"node_bytes_per_clock", KeyKind::Rate},
      {"gather_port_divisor", KeyKind::Real},
      {"scatter_port_divisor", KeyKind::Real},
      {"strided_port_divisor", KeyKind::Real},
      {"bank_contention_per_cpu", KeyKind::Cycles},
      {"commreg_op_clocks", KeyKind::Cycles},
      {"barrier_base_clocks", KeyKind::Cycles},
      {"barrier_per_cpu_clocks", KeyKind::Cycles},
      {"xmu_bytes_per_clock", KeyKind::Rate},
      {"xmu_capacity_bytes", KeyKind::Size},
      {"iops", KeyKind::Count},
      {"iop_bytes_per_s", KeyKind::Rate},
      {"hippi_bytes_per_s", KeyKind::Rate},
      {"hippi_setup_s", KeyKind::Cycles},
      {"ixs_channel_bytes_per_s", KeyKind::Rate},
      {"ixs_latency_s", KeyKind::Cycles},
      {"ixs_max_nodes", KeyKind::Count},
      {"libm_call_overhead_cycles", KeyKind::Cycles},
      {"vector_libm_multiplier", KeyKind::Real},
  };
  return kSchema;
}

int schema_index(std::string_view key) {
  const auto& s = schema();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (key == s[i].key) return static_cast<int>(i);
  }
  return -1;
}

[[noreturn]] void fail(const std::string& message) {
  throw ncar::config_error(message);
}

/// Check `value` against the key's kind; `context` prefixes the message
/// ("machine 'X': " or "catalog line N: ").
void check_kind(const std::string& context, std::string_view key,
                KeyKind kind, double value) {
  const std::string k(key);
  switch (kind) {
    case KeyKind::Real:
    case KeyKind::Rate:
      if (!(value > 0) || !std::isfinite(value)) {
        fail(context + k + " must be a positive number (got " +
             format_number(value) + ")");
      }
      break;
    case KeyKind::Count:
    case KeyKind::Size:
      if (!(value >= 1) || value != std::floor(value) ||
          !std::isfinite(value)) {
        fail(context + k + " must be a positive integer (got " +
             format_number(value) + ")");
      }
      break;
    case KeyKind::Flag:
      if (value != 0.0 && value != 1.0) {
        fail(context + k + " must be true or false");
      }
      break;
    case KeyKind::Cycles:
      if (!(value >= 0) || !std::isfinite(value)) {
        fail(context + k + " must be a non-negative number (got " +
             format_number(value) + ")");
      }
      break;
  }
}

/// Assign one validated key onto the lowered spec.
void apply_key(Spec& s, std::string_view key, double value) {
  sxs::MachineConfig& c = s.cfg;
  const auto i = [&] { return static_cast<int>(value); };
  const auto z = [&] { return static_cast<std::size_t>(value); };
  if (key == "clock_ns") c.clock_ns = value;
  else if (key == "cpus_per_node") c.cpus_per_node = i();
  else if (key == "nodes") c.nodes = i();
  else if (key == "vector_unit") s.has_vector = value != 0.0;
  else if (key == "vector_length") c.vector_length = i();
  else if (key == "pipes_per_group") c.pipes_per_group = i();
  else if (key == "vector_issue_clocks") c.vector_issue_clocks = value;
  else if (key == "vector_startup_clocks") c.vector_startup_clocks = value;
  else if (key == "divide_cycles_per_result") c.divide_cycles_per_result = value;
  else if (key == "scalar_issue_width") c.scalar_issue_width = i();
  else if (key == "dcache_bytes") c.dcache_bytes = z();
  else if (key == "icache_bytes") c.icache_bytes = z();
  else if (key == "cache_line_bytes") c.cache_line_bytes = z();
  else if (key == "cache_ways") c.cache_ways = i();
  else if (key == "cache_miss_clocks") c.cache_miss_clocks = value;
  else if (key == "memory_banks") c.memory_banks = i();
  else if (key == "bank_cycle_clocks") c.bank_cycle_clocks = value;
  else if (key == "port_bytes_per_clock") c.port_bytes_per_clock = Bytes(value);
  else if (key == "node_bytes_per_clock") c.node_bytes_per_clock = Bytes(value);
  else if (key == "gather_port_divisor") c.gather_port_divisor = value;
  else if (key == "scatter_port_divisor") c.scatter_port_divisor = value;
  else if (key == "strided_port_divisor") c.strided_port_divisor = value;
  else if (key == "bank_contention_per_cpu") c.bank_contention_per_cpu = value;
  else if (key == "commreg_op_clocks") c.commreg_op_clocks = value;
  else if (key == "barrier_base_clocks") c.barrier_base_clocks = value;
  else if (key == "barrier_per_cpu_clocks") c.barrier_per_cpu_clocks = value;
  else if (key == "xmu_bytes_per_clock") c.xmu_bytes_per_clock = Bytes(value);
  else if (key == "xmu_capacity_bytes") c.xmu_capacity_bytes = Bytes(value);
  else if (key == "iops") c.iops = i();
  else if (key == "iop_bytes_per_s") c.iop_bytes_per_s = BytesPerSec(value);
  else if (key == "hippi_bytes_per_s") c.hippi_bytes_per_s = BytesPerSec(value);
  else if (key == "hippi_setup_s") c.hippi_setup_s = value;
  else if (key == "ixs_channel_bytes_per_s")
    c.ixs_channel_bytes_per_s = BytesPerSec(value);
  else if (key == "ixs_latency_s") c.ixs_latency_s = value;
  else if (key == "ixs_max_nodes") c.ixs_max_nodes = i();
  else if (key == "libm_call_overhead_cycles")
    s.libm_call_overhead_cycles = value;
  else if (key == "vector_libm_multiplier") s.vector_libm_multiplier = value;
  else fail("description: unmapped key '" + std::string(key) + "'");
}

// ---------------------------------------------------------------------------
// Parsing

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_number(const std::string& context, std::string_view token) {
  const std::string t(token);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size() || t.empty() || errno == ERANGE ||
      !std::isfinite(v)) {
    fail(context + "malformed number '" + t + "'");
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// MachineDescription

const std::vector<KeyInfo>& description_schema() { return schema(); }

std::string format_number(double v) {
  // Mirrors the bench harness writer (bench/harness/json.cpp): integral
  // values print without a decimal point, everything else via std::to_chars
  // for shortest round-trip form, so parse(to_table()) reproduces the exact
  // double and the sweep JSON is byte-stable.
  if (!std::isfinite(v)) return "inf";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) fail("description: number format failure");
  return std::string(buf, ptr);
}

bool known_key(std::string_view key) { return schema_index(key) >= 0; }

bool MachineDescription::has(std::string_view key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return true;
  }
  return false;
}

double MachineDescription::get_or(std::string_view key,
                                  double fallback) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return fallback;
}

void MachineDescription::set(std::string_view key, double value) {
  const int idx = schema_index(key);
  if (idx < 0) {
    fail("machine '" + name + "': unknown key '" + std::string(key) + "'");
  }
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = value;
      return;
    }
  }
  // Insert keeping canonical schema order.
  const auto pos = [&] {
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (schema_index(entries[e].first) > idx) return e;
    }
    return entries.size();
  }();
  entries.insert(entries.begin() + static_cast<long>(pos),
                 {std::string(key), value});
}

Spec MachineDescription::lower() const {
  if (name.empty()) fail("machine description has no name");
  const std::string context = "machine '" + name + "': ";
  if (!has("clock_ns")) fail(context + "clock_ns is required");
  Spec s;
  s.name = name;
  s.cfg.name = name;
  for (const auto& [key, value] : entries) {
    const int idx = schema_index(key);
    if (idx < 0) fail(context + "unknown key '" + key + "'");
    check_kind(context, key, schema()[static_cast<std::size_t>(idx)].kind,
               value);
    apply_key(s, key, value);
  }
  try {
    s.cfg.validate();
  } catch (const ncar::config_error& e) {
    fail(context + e.what());
  }
  return s;
}

std::string MachineDescription::to_table() const {
  std::string out = "machine \"" + name + "\"\n";
  for (const auto& [key, value] : entries) {
    out += "  " + key + " = ";
    const int idx = schema_index(key);
    if (idx >= 0 &&
        schema()[static_cast<std::size_t>(idx)].kind == KeyKind::Flag) {
      out += value != 0.0 ? "true" : "false";
    } else {
      out += format_number(value);
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Catalog

const MachineDescription* Catalog::find(std::string_view name) const {
  for (const auto& m : machines) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const MachineDescription& Catalog::at(std::string_view name) const {
  if (const MachineDescription* m = find(name)) return *m;
  std::string known;
  for (const auto& m : machines) {
    known += (known.empty() ? "" : ", ") + m.name;
  }
  fail("no machine named '" + std::string(name) + "' in catalog (known: " +
       known + ")");
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(machines.size());
  for (const auto& m : machines) out.push_back(m.name);
  return out;
}

std::string Catalog::to_table() const {
  std::string out;
  for (const auto& m : machines) {
    if (!out.empty()) out += '\n';
    out += m.to_table();
  }
  return out;
}

Catalog parse_catalog(std::string_view text) {
  Catalog cat;
  MachineDescription* current = nullptr;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const std::string_view line = trim(raw);
    const std::string context =
        "catalog line " + std::to_string(line_no) + ": ";
    if (line.empty() || line.front() == '#') continue;

    if (line.substr(0, 8) == "machine " || line == "machine") {
      const std::string_view rest = trim(line.substr(7));
      if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
        fail(context + "machine header must be: machine \"Name\"");
      }
      const std::string_view mname = rest.substr(1, rest.size() - 2);
      if (mname.empty()) fail(context + "machine name must not be empty");
      if (mname.find('"') != std::string_view::npos) {
        fail(context + "machine name must not contain quotes");
      }
      if (cat.find(mname) != nullptr) {
        fail(context + "duplicate machine name '" + std::string(mname) +
             "'");
      }
      cat.machines.push_back({std::string(mname), {}});
      current = &cat.machines.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(context + "expected `key = value` or `machine \"Name\"`, got '" +
           std::string(line) + "'");
    }
    if (current == nullptr) {
      fail(context + "key before the first machine header");
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string_view value_token = trim(line.substr(eq + 1));
    if (key.empty()) fail(context + "empty key");
    if (value_token.empty()) fail(context + "empty value for '" + key + "'");
    const int idx = schema_index(key);
    if (idx < 0) {
      fail(context + "unknown key '" + key + "' in machine '" +
           current->name + "'");
    }
    if (current->has(key)) {
      fail(context + "duplicate key '" + key + "' in machine '" +
           current->name + "'");
    }
    double value = 0.0;
    if (schema()[static_cast<std::size_t>(idx)].kind == KeyKind::Flag) {
      if (value_token == "true") value = 1.0;
      else if (value_token == "false") value = 0.0;
      else fail(context + key + " must be true or false, got '" +
                std::string(value_token) + "'");
    } else {
      value = parse_number(context, value_token);
    }
    current->set(key, value);
  }
  return cat;
}

// ---------------------------------------------------------------------------
// Builtin catalog

namespace {

// The four 1996 Table 1 comparators (calibration sources in
// comparator.hpp's header comment), the benchmarked single-CPU SX-4, and
// three modern vector design points from PAPERS.md. The 1996 entries are
// pinned bit-identical to the verbatim legacy presets by
// tests/machines/test_golden_descriptions.cpp.
constexpr const char* kBuiltinCatalog = R"(# sx4ncar builtin machine catalog
# Schema: src/machines/description.hpp; lowering rules: DESIGN.md sec. 10.
# Unset keys inherit the SX-4 defaults of sxs::MachineConfig.

machine "SUN Sparc20"
  clock_ns = 16.7
  cpus_per_node = 1
  vector_unit = false
  scalar_issue_width = 2
  dcache_bytes = 16384
  cache_line_bytes = 32
  cache_ways = 4
  cache_miss_clocks = 12
  libm_call_overhead_cycles = 52

machine "IBM RS6000/590"
  clock_ns = 15
  cpus_per_node = 1
  vector_unit = false
  scalar_issue_width = 2
  dcache_bytes = 262144
  cache_line_bytes = 256
  cache_ways = 4
  cache_miss_clocks = 12
  libm_call_overhead_cycles = 42

machine "CRI J90"
  clock_ns = 10
  cpus_per_node = 1
  vector_length = 64
  pipes_per_group = 1
  vector_issue_clocks = 1
  vector_startup_clocks = 28
  divide_cycles_per_result = 6
  scalar_issue_width = 1
  dcache_bytes = 512
  cache_line_bytes = 8
  cache_ways = 1
  cache_miss_clocks = 6
  memory_banks = 256
  port_bytes_per_clock = 8
  node_bytes_per_clock = 8
  gather_port_divisor = 2
  scatter_port_divisor = 2
  vector_libm_multiplier = 2.2

machine "CRI Y-MP"
  clock_ns = 6
  cpus_per_node = 1
  vector_length = 64
  pipes_per_group = 1
  vector_issue_clocks = 1
  vector_startup_clocks = 18
  divide_cycles_per_result = 4
  scalar_issue_width = 1
  dcache_bytes = 512
  cache_line_bytes = 8
  cache_ways = 1
  cache_miss_clocks = 5
  memory_banks = 256
  port_bytes_per_clock = 24
  node_bytes_per_clock = 24
  gather_port_divisor = 2
  scatter_port_divisor = 2
  vector_libm_multiplier = 1.25

machine "NEC SX-4/1"
  clock_ns = 9.2
  cpus_per_node = 1

# --- modern vector design points (ROADMAP: PAPERS.md retrievals) ---------

# NEC SX-Aurora TSUBASA vector engine (arXiv 2304.11921): 1.6 GHz, 256
# double elements per vector register, 32 FMA lanes, HBM2 main memory.
machine "NEC SX-Aurora TSUBASA"
  clock_ns = 0.625
  cpus_per_node = 8
  vector_length = 256
  pipes_per_group = 32
  vector_issue_clocks = 1
  vector_startup_clocks = 14
  divide_cycles_per_result = 2
  scalar_issue_width = 4
  dcache_bytes = 32768
  cache_line_bytes = 128
  cache_ways = 8
  cache_miss_clocks = 60
  memory_banks = 4096
  port_bytes_per_clock = 128
  node_bytes_per_clock = 1024
  gather_port_divisor = 4
  scatter_port_divisor = 4
  vector_libm_multiplier = 1.1

# Fujitsu A64FX with 512-bit SVE (QPACE 4, arXiv 2112.01852): 2.0 GHz,
# two 8-lane FMA pipes per core, short vectors, HBM2.
machine "Fujitsu A64FX"
  clock_ns = 0.5
  cpus_per_node = 48
  vector_length = 16
  pipes_per_group = 8
  vector_issue_clocks = 1
  vector_startup_clocks = 6
  divide_cycles_per_result = 4
  scalar_issue_width = 4
  dcache_bytes = 65536
  cache_line_bytes = 256
  cache_ways = 4
  cache_miss_clocks = 37
  memory_banks = 512
  port_bytes_per_clock = 16
  node_bytes_per_clock = 512
  gather_port_divisor = 8
  scatter_port_divisor = 8
  vector_libm_multiplier = 1.3

# RISC-V RVV long-vector core (Vitruvius-style, arXiv 2111.01949):
# 1.4 GHz, 256 double elements per register over 8 lanes, modest memory.
machine "RISC-V RVV Vitruvius"
  clock_ns = 0.7
  cpus_per_node = 1
  vector_length = 256
  pipes_per_group = 8
  vector_issue_clocks = 2
  vector_startup_clocks = 30
  divide_cycles_per_result = 8
  scalar_issue_width = 2
  dcache_bytes = 32768
  cache_line_bytes = 64
  cache_ways = 4
  cache_miss_clocks = 40
  memory_banks = 256
  port_bytes_per_clock = 32
  node_bytes_per_clock = 64
  gather_port_divisor = 4
  scatter_port_divisor = 4
  vector_libm_multiplier = 1.5
)";

}  // namespace

const Catalog& builtin_catalog() {
  static const Catalog kCatalog = [] {
    Catalog cat = parse_catalog(kBuiltinCatalog);
    // Every builtin entry must lower cleanly; fail at first use, loudly,
    // rather than on some later spec_for() call.
    for (const auto& m : cat.machines) (void)m.lower();
    return cat;
  }();
  return kCatalog;
}

std::vector<std::string> builtin_names() { return builtin_catalog().names(); }

Spec spec_for(std::string_view name) {
  return builtin_catalog().at(name).lower();
}

}  // namespace ncar::machines
