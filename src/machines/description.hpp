#pragma once
// Data-driven machine descriptions (DESIGN.md section 10).
//
// The paper's whole argument is architecture-vs-application: the same NCAR
// kernels rank machines differently depending on vector pipes, banks, and
// caches. To explore that space a machine must be a *description* — a
// key-value table of architectural parameters — rather than a C++ preset.
// A MachineDescription is parsed from a catalog table, strictly validated
// (unknown keys, duplicate keys, malformed values and physically
// impossible parameters are all rejected with precise messages), and
// *lowered* onto the existing sxs::MachineConfig / machines::Spec so every
// Comparator is constructed from data.
//
// Lowering rules: a description stores only the keys it sets; every unset
// key inherits the SX-4 default of sxs::MachineConfig. to_table() re-emits
// exactly the set keys, in canonical schema order, with shortest
// round-trip number formatting — so parse(to_table(d)) == d bit-exactly
// (pinned by tests/machines/test_description.cpp).
//
// The builtin catalog re-expresses the four 1996 Table 1 comparators as
// tables (golden-equivalence-tested against the verbatim legacy presets)
// and adds modern vector design points: NEC SX-Aurora TSUBASA
// (arXiv 2304.11921), Fujitsu A64FX/SVE (arXiv 2112.01852) and a RISC-V
// RVV long-vector core (Vitruvius-style, arXiv 2111.01949).

#include <string>
#include <string_view>
#include <vector>

#include "machines/comparator.hpp"

namespace ncar::machines {

/// Value class of a description key (drives parsing and re-emission).
enum class KeyKind {
  Real,     ///< any positive real (clock periods, divisors, multipliers)
  Count,    ///< strictly positive integer (pipes, banks, CPUs)
  Size,     ///< positive integral byte count (caches, capacities)
  Rate,     ///< positive real rate or width (bytes/clock, bytes/s)
  Flag,     ///< boolean, written `true` / `false`
  Cycles,   ///< non-negative real cycle count (startup, overheads)
};

struct KeyInfo {
  const char* key;
  KeyKind kind;
};

/// The full description schema, in canonical (emission) order. Every key
/// maps 1:1 onto a sxs::MachineConfig field or a machines::Spec extra
/// (vector_unit, libm_call_overhead_cycles, vector_libm_multiplier).
const std::vector<KeyInfo>& description_schema();

/// Shortest round-trip rendering of a value: integral values without a
/// decimal point, everything else via std::to_chars so parsing reproduces
/// the exact double. Shared by to_table() and the sweep JSON writer.
std::string format_number(double v);

/// True when `key` names a schema entry.
bool known_key(std::string_view key);

/// A declarative machine: a name plus the explicitly-set parameter table.
/// Entries are kept in canonical schema order so equality and re-emission
/// are independent of the order keys appeared in the source table.
struct MachineDescription {
  std::string name;
  std::vector<std::pair<std::string, double>> entries;

  bool has(std::string_view key) const;
  /// Value of `key`, or `fallback` when unset.
  double get_or(std::string_view key, double fallback) const;
  /// Set `key` (insert in canonical order or overwrite). Throws
  /// ncar::config_error on unknown keys.
  void set(std::string_view key, double value);

  /// Lower onto the generic timing model: defaults + entries → Spec.
  /// Throws ncar::config_error naming this machine on any invalid
  /// parameter (zero clock, VL=0, negative bank count, non-integral
  /// counts, inconsistent cache shape, ...).
  Spec lower() const;

  /// Canonical table form; parse_catalog(to_table()) round-trips exactly.
  std::string to_table() const;

  friend bool operator==(const MachineDescription&,
                         const MachineDescription&) = default;
};

/// An ordered set of named machine descriptions.
struct Catalog {
  std::vector<MachineDescription> machines;

  const MachineDescription* find(std::string_view name) const;
  /// Lookup that throws ncar::config_error listing known names on a miss.
  const MachineDescription& at(std::string_view name) const;
  std::vector<std::string> names() const;
  /// Concatenated to_table() of every machine.
  std::string to_table() const;
};

/// Strict parser for the catalog format:
///
///   # comment
///   machine "Name"
///     key = value
///
/// Rejected with a message naming the line: unknown keys, duplicate keys
/// within a machine, duplicate machine names, malformed numbers, keys
/// before the first machine header, and malformed headers.
Catalog parse_catalog(std::string_view text);

/// The embedded builtin catalog (parsed once, then cached).
const Catalog& builtin_catalog();

/// Names in the builtin catalog, in catalog order.
std::vector<std::string> builtin_names();

/// Lower the named builtin description to a Spec ready for Comparator
/// construction. Throws ncar::config_error on unknown names.
Spec spec_for(std::string_view name);

}  // namespace ncar::machines
