#include "machines/comparator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "machines/description.hpp"

namespace ncar::machines {

Comparator::Comparator(Spec spec) : spec_(std::move(spec)), cpu_(spec_.cfg) {
  spec_.cfg.validate();
}

void Comparator::vec(const sxs::VectorOp& op, long repeats) {
  if (sink_ != nullptr) sink_->on_vec(op, repeats);
  if (spec_.has_vector) {
    cpu_.vec(op, repeats);
    return;
  }
  // No vector hardware: the loop runs on the scalar unit. Streams become
  // cached references; gathers/scatters are ordinary indexed loads there.
  sxs::ScalarOp s;
  s.iters = op.n;
  s.flops_per_iter = op.flops_per_elem + op.div_per_elem;
  s.mem_words_per_iter =
      op.load_words + op.store_words + op.gather_words + op.scatter_words;
  s.other_ops_per_iter = 2.0;  // loop control / addressing
  s.working_set_bytes = static_cast<double>(op.n) * s.mem_words_per_iter * 8.0;
  s.reuse_fraction = 0.0;  // vectorisable loops are streaming by nature
  for (long r = 0; r < repeats; ++r) cpu_.scalar(s);
}

void Comparator::scalar(const sxs::ScalarOp& op) {
  if (sink_ != nullptr) sink_->on_scalar(op);
  cpu_.scalar(op);
}

void Comparator::intrinsic(sxs::Intrinsic f, long n) {
  if (sink_ != nullptr) sink_->on_intrinsic(f, n);
  if (spec_.has_vector) {
    cpu_.intrinsic(f, n, 1.0, 1.0, spec_.vector_libm_multiplier);
    return;
  }
  cpu_.scalar_intrinsic(f, n);
  if (spec_.libm_call_overhead_cycles > 0 && n > 0) {
    cpu_.charge_cycles(Cycles(spec_.libm_call_overhead_cycles *
                              static_cast<double>(n)));
  }
}

// The presets lower the builtin catalog's description tables (the catalog
// carries the calibration notes). test_golden_descriptions.cpp keeps the
// pre-catalog hard-coded Specs verbatim and pins bit-identical charges.

Spec Comparator::sun_sparc20() { return spec_for("SUN Sparc20"); }

Spec Comparator::ibm_rs6000_590() { return spec_for("IBM RS6000/590"); }

Spec Comparator::cray_j90() { return spec_for("CRI J90"); }

Spec Comparator::cray_ymp() { return spec_for("CRI Y-MP"); }

Spec Comparator::nec_sx4_single() { return spec_for("NEC SX-4/1"); }

}  // namespace ncar::machines
