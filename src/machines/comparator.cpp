#include "machines/comparator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ncar::machines {

Comparator::Comparator(Spec spec) : spec_(std::move(spec)), cpu_(spec_.cfg) {
  spec_.cfg.validate();
}

void Comparator::vec(const sxs::VectorOp& op) {
  if (spec_.has_vector) {
    cpu_.vec(op);
    return;
  }
  // No vector hardware: the loop runs on the scalar unit. Streams become
  // cached references; gathers/scatters are ordinary indexed loads there.
  sxs::ScalarOp s;
  s.iters = op.n;
  s.flops_per_iter = op.flops_per_elem + op.div_per_elem;
  s.mem_words_per_iter =
      op.load_words + op.store_words + op.gather_words + op.scatter_words;
  s.other_ops_per_iter = 2.0;  // loop control / addressing
  s.working_set_bytes = static_cast<double>(op.n) * s.mem_words_per_iter * 8.0;
  s.reuse_fraction = 0.0;  // vectorisable loops are streaming by nature
  cpu_.scalar(s);
}

void Comparator::scalar(const sxs::ScalarOp& op) { cpu_.scalar(op); }

void Comparator::intrinsic(sxs::Intrinsic f, long n) {
  if (spec_.has_vector) {
    cpu_.intrinsic(f, n, 1.0, 1.0, spec_.vector_libm_multiplier);
    return;
  }
  cpu_.scalar_intrinsic(f, n);
  if (spec_.libm_call_overhead_cycles > 0 && n > 0) {
    cpu_.charge_cycles(Cycles(spec_.libm_call_overhead_cycles *
                              static_cast<double>(n)));
  }
}

namespace {

/// Shared starting point: strip the SX-4 defaults down to a single CPU.
sxs::MachineConfig base_single_cpu() {
  sxs::MachineConfig c;
  c.cpus_per_node = 1;
  c.nodes = 1;
  return c;
}

}  // namespace

Spec Comparator::sun_sparc20() {
  Spec s;
  s.name = "SUN Sparc20";
  s.has_vector = false;
  s.libm_call_overhead_cycles = 52.0;
  sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 16.7;  // 60 MHz SuperSPARC
  c.scalar_issue_width = 2;  // 3-way issue, ~2 sustained on tuned loops
  c.dcache_bytes = 16 * 1024;
  c.cache_line_bytes = 32;
  c.cache_ways = 4;
  c.cache_miss_clocks = 12.0;  // L2 / memory blend
  // Vector parameters are unused (has_vector == false) but must validate.
  return s;
}

Spec Comparator::ibm_rs6000_590() {
  Spec s;
  s.name = "IBM RS6000/590";
  s.has_vector = false;
  s.libm_call_overhead_cycles = 42.0;
  sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 15.0;  // 66.5 MHz POWER2
  c.scalar_issue_width = 2;  // dual FMA units; ~2 sustained instr/clock
  c.dcache_bytes = 256 * 1024;
  c.cache_line_bytes = 256;
  c.cache_ways = 4;
  c.cache_miss_clocks = 12.0;
  return s;
}

Spec Comparator::cray_j90() {
  Spec s;
  s.name = "CRI J90";
  s.has_vector = true;
  s.vector_libm_multiplier = 2.2;  // early CMOS vector libm, poorly tuned
  sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 10.0;  // 100 MHz CMOS
  c.vector_length = 64;
  c.pipes_per_group = 1;  // one add pipe + one multiply pipe
  c.vector_startup_clocks = 28.0;
  c.vector_issue_clocks = 1.0;
  c.divide_cycles_per_result = 6.0;
  c.memory_banks = 256;
  c.port_bytes_per_clock = Bytes(8.0);  // one word per clock (J90's weak memory)
  c.node_bytes_per_clock = Bytes(8.0);
  c.gather_port_divisor = 2.0;
  c.scatter_port_divisor = 2.0;
  // Scalar side: no data cache on Crays; model as a tiny buffer with a short
  // pipelined memory latency per reference.
  c.scalar_issue_width = 1;
  c.dcache_bytes = 512;
  c.cache_line_bytes = 8;
  c.cache_ways = 1;
  c.cache_miss_clocks = 6.0;
  return s;
}

Spec Comparator::cray_ymp() {
  Spec s;
  s.name = "CRI Y-MP";
  s.has_vector = true;
  s.vector_libm_multiplier = 1.25;  // library flops beyond the pipe model
  sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 6.0;  // 166 MHz ECL
  c.vector_length = 64;
  c.pipes_per_group = 1;
  c.vector_startup_clocks = 18.0;
  c.vector_issue_clocks = 1.0;
  c.divide_cycles_per_result = 4.0;
  c.memory_banks = 256;
  c.port_bytes_per_clock = Bytes(24.0);  // two loads + one store per clock
  c.node_bytes_per_clock = Bytes(24.0);
  c.gather_port_divisor = 2.0;
  c.scatter_port_divisor = 2.0;
  c.scalar_issue_width = 1;
  c.dcache_bytes = 512;
  c.cache_line_bytes = 8;
  c.cache_ways = 1;
  c.cache_miss_clocks = 5.0;
  return s;
}

Spec Comparator::nec_sx4_single() {
  Spec s;
  s.name = "NEC SX-4/1";
  s.has_vector = true;
  s.cfg = sxs::MachineConfig::sx4_benchmarked();
  s.cfg.cpus_per_node = 1;
  s.cfg.name = s.name;
  return s;
}

}  // namespace ncar::machines
