#pragma once
// A simulated SX-4 central processor.
//
// The Cpu accumulates simulated cycles as benchmark kernels charge vector,
// scalar, and intrinsic operations against it, and tracks two flop
// currencies: hardware flops (what our pipes executed) and Cray-Y-MP
// equivalent flops (the unit the paper reports for RADABS and CCM2).
//
// Pricing is memoized: VectorUnit::cycles / ScalarUnit::cycles are pure
// functions of (descriptor, MachineConfig), so each Cpu keeps an op-cost
// cache (common/cost_cache.hpp) keyed by the full descriptor tuple.
// Contention, cycle multipliers and repeat counts multiply the cached value
// exactly as they multiplied the freshly computed one, so memoization is
// bit-identical. cost_cache_hits()/misses() expose the counters for the
// bench reporter.

#include <cstdint>

#include "common/cost_cache.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/memory_model.hpp"
#include "sxs/ops.hpp"
#include "sxs/scalar_unit.hpp"
#include "sxs/vector_unit.hpp"
#include "trace/category.hpp"
#include "trace/collector.hpp"

namespace ncar::sxs {

class Cpu {
public:
  explicit Cpu(const MachineConfig& cfg)
      : cfg_(&cfg), mem_(cfg), vu_(cfg, mem_), su_(cfg),
        trace_(cfg.seconds_per_clock()) {}

  // The subunits hold references into this object and into the owning
  // configuration; copying or moving would leave them dangling.
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // --- charging ------------------------------------------------------------
  /// Charge a vectorised loop, `repeats` times (the common case of an
  /// identical inner loop executed for every instance/latitude/level: the
  /// timing is evaluated once and multiplied, keeping simulation cost flat).
  /// Adds flops to both currencies (1:1 for plain arithmetic; divide
  /// results count as one flop each).
  void vec(const VectorOp& op, long repeats = 1);

  /// Same charge, but filed under an explicit attribution category instead
  /// of the descriptor-derived one (e.g. Category::SltInterp for the
  /// semi-Lagrangian interpolation loops, which would otherwise disappear
  /// into the generic vector-pipe buckets). Cycle and flop accounting are
  /// identical to the two-argument overload.
  void vec(const VectorOp& op, long repeats, trace::Category category);

  /// Charge a scalar-mode loop (runs through the cache model).
  void scalar(const ScalarOp& op);

  /// Charge `n` vectorised intrinsic evaluations, each consuming
  /// `extra_streams` additional load/store words per element.
  /// `cycle_multiplier` scales the *time* of the evaluation without changing
  /// the flop accounting — it models machines whose vector libm is less
  /// tuned than their pipes (e.g. the J90's early CMOS library).
  void intrinsic(Intrinsic f, long n, double extra_load_words = 1.0,
                 double extra_store_words = 1.0,
                 double cycle_multiplier = 1.0, long repeats = 1);

  /// Charge `n` *scalar* intrinsic evaluations (cache-style code).
  void scalar_intrinsic(Intrinsic f, long n);

  /// Charge raw cycles (synchronisation, I/O waits, fixed overheads).
  /// Typed on purpose: a caller holding wall-clock time cannot charge it as
  /// cycles (or vice versa) without converting through a MachineConfig.
  /// `category` files the charge in the attribution taxonomy; model code in
  /// src/sxs and src/iosim must pass it explicitly (sxlint trace-category).
  void charge_cycles(Cycles cycles,
                     trace::Category category = trace::Category::Other);
  void charge_seconds(Seconds seconds,
                      trace::Category category = trace::Category::Other);

  /// Adjust the equivalent-flop count without touching time (used when a
  /// kernel's Cray flop-count convention differs from the hardware count).
  void add_equiv_flops(Flops flops) { equiv_flops_ += flops.value(); }

  // --- contention -------------------------------------------------------------
  /// Memory-bound cycle inflation applied while other CPUs are active;
  /// set by Node::parallel from the bank-contention model.
  void set_contention(double factor);
  double contention() const { return contention_; }

  // --- accounting -------------------------------------------------------------
  double cycles() const { return cycles_; }
  double seconds() const { return cycles_ * cfg_->seconds_per_clock(); }
  Flops hw_flops() const { return Flops(hw_flops_); }
  Flops equiv_flops() const { return Flops(equiv_flops_); }

  /// Cycle breakdown by execution class (vector loops / scalar loops /
  /// vectorised intrinsics / raw charges). Sums to cycles().
  double vector_cycles() const { return vector_cycles_; }
  double scalar_cycles() const { return scalar_cycles_; }
  double intrinsic_cycles() const { return intrinsic_cycles_; }
  double other_cycles() const {
    return cycles_ - vector_cycles_ - scalar_cycles_ - intrinsic_cycles_;
  }

  void reset();

  // --- op-cost cache ----------------------------------------------------------
  /// Cached-cost lookups that found (missed) an entry, summed over the
  /// vector and scalar caches. reset() leaves both alone: the cache is an
  /// evaluator detail, valid for the lifetime of the configuration.
  std::uint64_t cost_cache_hits() const {
    return vec_cost_.hits() + scalar_cost_.hits();
  }
  std::uint64_t cost_cache_misses() const {
    return vec_cost_.misses() + scalar_cost_.misses();
  }

  // --- tracing ---------------------------------------------------------------
  /// Attribution counters / span track for this Cpu. Written only by the
  /// rank charging the Cpu, same ownership discipline as the cycle counter.
  trace::Collector& trace() { return trace_; }
  const trace::Collector& trace() const { return trace_; }

  /// Span timestamps are `cycles() + offset`, so Node::parallel aligns each
  /// rank's track with the node wall clock by setting the offset to the
  /// node's elapsed cycles at region entry.
  void set_trace_time_offset(double cycles) { trace_time_offset_ = cycles; }
  double trace_time_offset() const { return trace_time_offset_; }

  const MachineConfig& config() const { return *cfg_; }
  const MemoryModel& memory() const { return mem_; }
  const VectorUnit& vector_unit() const { return vu_; }
  const ScalarUnit& scalar_unit() const { return su_; }

private:
  /// Shared body of the vec() overloads: `category` is where the charge is
  /// filed (classify(op) for the default overload).
  void vec_impl(const VectorOp& op, long repeats, trace::Category category);

  /// Cycles for `op`, via the cache (pure in op given the fixed config).
  double vec_cost(const VectorOp& op);
  double scalar_cost(const ScalarOp& op);
  double scalar_miss_cost(const ScalarOp& op);

  /// File `charged` (the full, contention-inflated amount) under `category`,
  /// carving the contention inflation (charged - base) into bank_conflict
  /// and, when `miss` / `gather_scatter` > 0, a cache_miss or
  /// gather_scatter share out of the base.
  void record(trace::Category category, double start, double charged,
              double base, double miss, double gather_scatter,
              const char* tag);

  const MachineConfig* cfg_;
  MemoryModel mem_;
  VectorUnit vu_;
  ScalarUnit su_;
  CostCache<VectorOp, VectorOpHash> vec_cost_;
  CostCache<ScalarOp, ScalarOpHash> scalar_cost_;
  CostCache<ScalarOp, ScalarOpHash> scalar_miss_cost_;
  trace::Collector trace_;
  double trace_time_offset_ = 0;
  double cycles_ = 0;
  double vector_cycles_ = 0;
  double scalar_cycles_ = 0;
  double intrinsic_cycles_ = 0;
  double hw_flops_ = 0;
  double equiv_flops_ = 0;
  double contention_ = 1.0;
};

}  // namespace ncar::sxs
