#include "sxs/cache_sim.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::sxs {

namespace {
bool power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  NCAR_REQUIRE(ways >= 1, "associativity");
  NCAR_REQUIRE(power_of_two(line_bytes), "line size must be a power of two");
  NCAR_REQUIRE(size_bytes % (line_bytes * static_cast<std::size_t>(ways)) == 0,
               "capacity must divide into sets");
  sets_ = size_bytes / (line_bytes * static_cast<std::size_t>(ways));
  NCAR_REQUIRE(power_of_two(sets_), "set count must be a power of two");
  lines_.resize(sets_ * static_cast<std::size_t>(ways_));
  mru_way_.assign(sets_, 0);
}

bool CacheSim::touch_line(std::uint64_t line_addr, std::uint64_t run) {
  tick_ += run;
  const std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[set * static_cast<std::size_t>(ways_)];

  // Hot-path shortcut: kernels replay long runs against the same line, so
  // the most-recently-hit way almost always matches. Probe order cannot
  // change hit/miss outcomes (a hit is a hit whichever way holds the tag),
  // so this is purely a constant-factor win.
  int& mru = mru_way_[set];
  {
    Line& line = base[mru];
    if (line.valid && line.tag == tag) {
      line.last_use = tick_;
      hits_ += run;
      return true;
    }
  }

  Line* lru = base;
  int lru_way = 0;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = tick_;
      hits_ += run;
      mru = w;
      return true;
    }
    if (!line.valid) {
      lru = &line;  // prefer an invalid way for the fill
      lru_way = w;
    } else if (lru->valid && line.last_use < lru->last_use) {
      lru = &line;
      lru_way = w;
    }
  }
  // First byte of the run misses; the remaining run - 1 bytes hit the line
  // just filled.
  ++misses_;
  hits_ += run - 1;
  lru->valid = true;
  lru->tag = tag;
  lru->last_use = tick_;
  mru = lru_way;
  return false;
}

bool CacheSim::access(std::uint64_t addr) {
  return touch_line(addr / line_bytes_, 1);
}

void CacheSim::access_range(std::uint64_t addr, std::uint64_t bytes) {
  while (bytes > 0) {
    const std::uint64_t line_addr = addr / line_bytes_;
    const std::uint64_t line_end = (line_addr + 1) * line_bytes_;
    const std::uint64_t run = std::min<std::uint64_t>(bytes, line_end - addr);
    touch_line(line_addr, run);
    addr += run;
    bytes -= run;
  }
}

void CacheSim::access_stream(std::uint64_t base, std::uint64_t stride,
                             std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t addr = base + static_cast<std::uint64_t>(i) * stride;
    const std::uint64_t line_addr = addr / line_bytes_;
    std::uint64_t run = 1;
    if (stride == 0) {
      run = n - i;
    } else if (stride < line_bytes_) {
      const std::uint64_t line_end = (line_addr + 1) * line_bytes_;
      run = std::min<std::uint64_t>(
          n - i, (line_end - addr + stride - 1) / stride);
    }
    touch_line(line_addr, run);
    i += static_cast<std::size_t>(run);
  }
}

void CacheSim::flush() {
  for (auto& line : lines_) line.valid = false;
  std::fill(mru_way_.begin(), mru_way_.end(), 0);
  tick_ = hits_ = misses_ = 0;
}

}  // namespace ncar::sxs
