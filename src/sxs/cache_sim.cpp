#include "sxs/cache_sim.hpp"

#include "common/error.hpp"

namespace ncar::sxs {

namespace {
bool power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  NCAR_REQUIRE(ways >= 1, "associativity");
  NCAR_REQUIRE(power_of_two(line_bytes), "line size must be a power of two");
  NCAR_REQUIRE(size_bytes % (line_bytes * static_cast<std::size_t>(ways)) == 0,
               "capacity must divide into sets");
  sets_ = size_bytes / (line_bytes * static_cast<std::size_t>(ways));
  NCAR_REQUIRE(power_of_two(sets_), "set count must be a power of two");
  lines_.resize(sets_ * static_cast<std::size_t>(ways_));
}

bool CacheSim::access(std::uint64_t addr) {
  ++tick_;
  const std::uint64_t line_addr = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line_addr) & (sets_ - 1);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[set * static_cast<std::size_t>(ways_)];

  Line* lru = base;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = tick_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      lru = &line;  // prefer an invalid way for the fill
    } else if (lru->valid && line.last_use < lru->last_use) {
      lru = &line;
    }
  }
  ++misses_;
  lru->valid = true;
  lru->tag = tag;
  lru->last_use = tick_;
  return false;
}

void CacheSim::flush() {
  for (auto& line : lines_) line.valid = false;
  tick_ = hits_ = misses_ = 0;
}

}  // namespace ncar::sxs
