#include "sxs/memory_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace ncar::sxs {

MemoryModel::MemoryModel(const MachineConfig& cfg) : cfg_(cfg) {
  // Strength reduction for the hot stride_conflict_factor() path: one
  // analytic evaluation per stride class at construction, a table load per
  // priced stream thereafter.
  const long banks = cfg_.memory_banks;
  stride_factor_.reserve(static_cast<std::size_t>(banks) + 1);
  for (long s = 0; s <= banks; ++s) {
    stride_factor_.push_back(analytic_conflict_factor(s));
  }
}

double MemoryModel::analytic_conflict_factor(long stride) const {
  if (stride <= 2) return 1.0;  // conflict-free by design (section 2.2)
  // A stride-s stream touches banks s apart; with B banks only
  // B / gcd(s, B) distinct banks are visited. Each bank can accept a new
  // request every `bank_cycle_clocks`; the port wants `port_words_per_clock`
  // requests per clock. When the visited banks cannot sustain that rate the
  // stream slows by the ratio.
  const long banks = cfg_.memory_banks;
  const long visited = banks / std::gcd(stride, banks);
  const double demand = port_words_per_clock().value() * cfg_.bank_cycle_clocks;
  const double capacity = static_cast<double>(visited);
  return std::max(cfg_.strided_port_divisor, demand / capacity);
}

double MemoryModel::stride_conflict_factor(long stride) const {
  stride = std::labs(stride);
  if (stride < static_cast<long>(stride_factor_.size())) {
    return stride_factor_[static_cast<std::size_t>(stride)];
  }
  return analytic_conflict_factor(stride);
}

Cycles MemoryModel::stream_cycles(long n_words, long stride) const {
  NCAR_REQUIRE(n_words >= 0, "negative word count");
  if (n_words == 0) return Cycles(0.0);
  const double words_per_clock =
      port_words_per_clock().value() / stride_conflict_factor(stride);
  return Cycles(static_cast<double>(n_words) / words_per_clock);
}

Cycles MemoryModel::gather_cycles(long n_words) const {
  NCAR_REQUIRE(n_words >= 0, "negative word count");
  if (n_words == 0) return Cycles(0.0);
  const double words_per_clock =
      port_words_per_clock().value() / cfg_.gather_port_divisor;
  return Cycles(static_cast<double>(n_words) / words_per_clock);
}

Cycles MemoryModel::scatter_cycles(long n_words) const {
  NCAR_REQUIRE(n_words >= 0, "negative word count");
  if (n_words == 0) return Cycles(0.0);
  const double words_per_clock =
      port_words_per_clock().value() / cfg_.scatter_port_divisor;
  return Cycles(static_cast<double>(n_words) / words_per_clock);
}

}  // namespace ncar::sxs
