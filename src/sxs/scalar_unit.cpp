#include "sxs/scalar_unit.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ncar::sxs {

double ScalarUnit::miss_rate(const ScalarOp& op) const {
  NCAR_REQUIRE(op.reuse_fraction >= 0.0 && op.reuse_fraction <= 1.0,
               "reuse_fraction in [0,1]");
  const double words_per_line =
      static_cast<double>(cfg_.cache_line_bytes) / 8.0;

  // Streaming references miss once per line (sequential walk).
  const double streaming_miss = 1.0 / words_per_line;

  // Resident references miss in proportion to how much of the working set
  // does not fit in the data cache.
  double resident_miss = 0.0;
  if (op.working_set_bytes > static_cast<double>(cfg_.dcache_bytes)) {
    // The fraction of the working set that does not fit misses once per
    // line each pass over the set.
    const double excess =
        1.0 - static_cast<double>(cfg_.dcache_bytes) / op.working_set_bytes;
    resident_miss = std::min(excess / words_per_line, 1.0);
  }

  return op.reuse_fraction * resident_miss +
         (1.0 - op.reuse_fraction) * streaming_miss;
}

Cycles ScalarUnit::miss_cycles(const ScalarOp& op) const {
  NCAR_REQUIRE(op.iters >= 0, "negative iteration count");
  if (op.iters == 0) return Cycles(0.0);
  const double n = static_cast<double>(op.iters);
  const double misses = n * op.mem_words_per_iter * miss_rate(op);
  return Cycles(misses * cfg_.cache_miss_clocks);
}

Cycles ScalarUnit::cycles(const ScalarOp& op) const {
  NCAR_REQUIRE(op.iters >= 0, "negative iteration count");
  if (op.iters == 0) return Cycles(0.0);
  const double n = static_cast<double>(op.iters);

  const double instr_per_iter =
      op.flops_per_iter + op.mem_words_per_iter + op.other_ops_per_iter;
  const double issue_cycles =
      n * instr_per_iter / static_cast<double>(cfg_.scalar_issue_width);

  return Cycles(issue_cycles + miss_cycles(op).value());
}

}  // namespace ncar::sxs
