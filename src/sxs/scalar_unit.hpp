#pragma once
// Scalar (superscalar RISC) unit timing model.
//
// Paper section 2.1: the scalar unit issues up to two instructions per
// clock through 64 KB instruction and data caches, with branch prediction
// and out-of-order execution. Scalar-style code (RFFT, HINT, non-vectorised
// CSHIFT in POP) runs here instead of on the vector pipes — that contrast
// is the entire point of the coding-style benchmarks.

#include "sxs/machine_config.hpp"
#include "sxs/ops.hpp"

namespace ncar::sxs {

class ScalarUnit {
public:
  explicit ScalarUnit(const MachineConfig& cfg) : cfg_(cfg) {}

  /// Cycles to execute a scalar loop described by `op`.
  ///
  /// Instruction cost: (flops + memory refs + other) per iteration divided
  /// by the issue width. Memory cost: references that miss the data cache
  /// pay `cache_miss_clocks`. The miss rate is analytic:
  ///   resident part  — the fraction `reuse_fraction` of references that hit
  ///                    a working set; it misses only to the extent the
  ///                    working set exceeds the cache;
  ///   streaming part — the remaining references miss once per cache line.
  Cycles cycles(const ScalarOp& op) const;

  /// The data-cache miss-stall portion of `cycles` (a pure function of the
  /// descriptor, so the trace layer can price the cache_miss attribution
  /// split through the op-cost cache).
  Cycles miss_cycles(const ScalarOp& op) const;

  /// The analytic miss rate used by `cycles` (exposed for tests, which
  /// compare it against the CacheSim reference on synthetic streams).
  double miss_rate(const ScalarOp& op) const;

private:
  const MachineConfig& cfg_;
};

}  // namespace ncar::sxs
