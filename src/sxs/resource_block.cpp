#include "sxs/resource_block.hpp"

#include <algorithm>
#include <numeric>

namespace ncar::sxs {

ResourceBlockTable::ResourceBlockTable(int total_cpus,
                                       std::vector<ResourceBlockSpec> blocks)
    : total_(total_cpus), specs_(std::move(blocks)) {
  NCAR_REQUIRE(total_cpus >= 1, "node must have CPUs");
  NCAR_REQUIRE(!specs_.empty(), "need at least one resource block");
  int min_sum = 0;
  for (const auto& s : specs_) {
    NCAR_REQUIRE(!s.name.empty(), "block needs a name");
    NCAR_REQUIRE(s.min_cpus >= 0, "negative minimum");
    NCAR_REQUIRE(s.max_cpus >= std::max(s.min_cpus, 1),
                 "maximum below minimum (or zero)");
    NCAR_REQUIRE(s.max_cpus <= total_, "block maximum exceeds the node");
    min_sum += s.min_cpus;
  }
  NCAR_REQUIRE(min_sum <= total_, "block minima exceed the node");
  used_.assign(specs_.size(), 0);
}

const ResourceBlockSpec& ResourceBlockTable::spec(int block) const {
  NCAR_REQUIRE(block >= 0 && block < block_count(), "block index");
  return specs_[static_cast<std::size_t>(block)];
}

int ResourceBlockTable::block_index(const std::string& name) const {
  for (std::size_t b = 0; b < specs_.size(); ++b) {
    if (specs_[b].name == name) return static_cast<int>(b);
  }
  return -1;
}

int ResourceBlockTable::used(int block) const {
  NCAR_REQUIRE(block >= 0 && block < block_count(), "block index");
  return used_[static_cast<std::size_t>(block)];
}

int ResourceBlockTable::available(int block) const {
  NCAR_REQUIRE(block >= 0 && block < block_count(), "block index");
  const auto& s = specs_[static_cast<std::size_t>(block)];
  const int mine = used_[static_cast<std::size_t>(block)];

  // Free CPUs on the node, minus the unexercised minima other blocks are
  // entitled to reclaim at any time.
  int used_total = 0;
  int reserved_elsewhere = 0;
  for (std::size_t b = 0; b < specs_.size(); ++b) {
    used_total += used_[b];
    if (static_cast<int>(b) != block) {
      reserved_elsewhere +=
          std::max(0, specs_[b].min_cpus - used_[b]);
    }
  }
  const int node_free = total_ - used_total - reserved_elsewhere;
  return std::max(0, std::min(s.max_cpus - mine, node_free));
}

Allocation ResourceBlockTable::allocate(int block, int cpus) {
  NCAR_REQUIRE(block >= 0 && block < block_count(), "block index");
  NCAR_REQUIRE(cpus >= 1, "must allocate at least one CPU");
  if (cpus > available(block)) return Allocation{};
  used_[static_cast<std::size_t>(block)] += cpus;
  return Allocation{block, cpus, next_id_++};
}

Allocation ResourceBlockTable::allocate(const std::string& name, int cpus) {
  const int b = block_index(name);
  NCAR_REQUIRE(b >= 0, "unknown resource block: " + name);
  return allocate(b, cpus);
}

void ResourceBlockTable::release(Allocation& a) {
  NCAR_REQUIRE(a.valid(), "releasing an invalid allocation");
  NCAR_REQUIRE(a.block >= 0 && a.block < block_count(), "allocation block");
  NCAR_REQUIRE(used_[static_cast<std::size_t>(a.block)] >= a.cpus,
               "double release");
  used_[static_cast<std::size_t>(a.block)] -= a.cpus;
  a = Allocation{};
}

bool ResourceBlockTable::single_process_capable() const {
  for (const auto& s : specs_) {
    if (s.max_cpus == total_) return true;
  }
  return false;
}

}  // namespace ncar::sxs
