#include "sxs/machine_config.hpp"

#include "common/error.hpp"

namespace ncar::sxs {

MachineConfig MachineConfig::sx4_benchmarked() {
  MachineConfig c;
  c.name = "SX-4/32 (benchmarked, 9.2 ns)";
  c.clock_ns = 9.2;
  c.cpus_per_node = 32;
  c.nodes = 1;
  c.validate();
  return c;
}

MachineConfig MachineConfig::sx4_product() {
  MachineConfig c;
  c.name = "SX-4/32 (product, 8.0 ns)";
  c.clock_ns = 8.0;
  c.cpus_per_node = 32;
  c.nodes = 1;
  c.validate();
  return c;
}

MachineConfig MachineConfig::sx4_multinode(int nodes) {
  NCAR_REQUIRE(nodes >= 1, "node count");
  MachineConfig c = sx4_product();
  NCAR_REQUIRE(nodes <= c.ixs_max_nodes, "IXS supports at most 16 nodes");
  c.name = "SX-4/" + std::to_string(32 * nodes) + " (multi-node)";
  c.nodes = nodes;
  c.validate();
  return c;
}

void MachineConfig::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw ncar::config_error(std::string("MachineConfig: ") + what);
  };
  check(clock_ns > 0, "clock period must be positive");
  check(cpus_per_node > 0, "need at least one CPU per node");
  check(nodes > 0 && nodes <= ixs_max_nodes, "node count out of range");
  check(vector_length > 0 && pipes_per_group > 0, "vector unit shape");
  check(vector_length % pipes_per_group == 0,
        "vector register length must be a multiple of the pipe width");
  check(memory_banks > 0 && (memory_banks & (memory_banks - 1)) == 0,
        "bank count must be a power of two");
  check(port_bytes_per_clock > Bytes(0.0) && node_bytes_per_clock > Bytes(0.0),
        "bandwidths");
  check(xmu_bytes_per_clock > Bytes(0.0) && xmu_capacity_bytes > Bytes(0.0),
        "XMU shape");
  check(iop_bytes_per_s > BytesPerSec(0.0) &&
            hippi_bytes_per_s > BytesPerSec(0.0) &&
            ixs_channel_bytes_per_s > BytesPerSec(0.0),
        "I/O bandwidths");
  check(gather_port_divisor >= 1 && scatter_port_divisor >= 1,
        "port divisors must be >= 1");
  check(cache_ways > 0 && cache_line_bytes > 0 && dcache_bytes > 0,
        "cache shape");
  check(dcache_bytes % (cache_line_bytes * cache_ways) == 0,
        "cache size must be divisible by line size times associativity");
  check(bank_contention_per_cpu >= 0, "contention coefficient");
}

}  // namespace ncar::sxs
