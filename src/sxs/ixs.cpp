#include "sxs/ixs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::sxs {

Ixs::Ixs(const MachineConfig& cfg) : cfg_(cfg) { cfg_.validate(); }

BytesPerSec Ixs::bisection_bytes_per_s() const {
  // 8 GB/s per node, 16 nodes -> 128 GB/s bisection for the full system.
  return cfg_.ixs_channel_bytes_per_s * static_cast<double>(cfg_.ixs_max_nodes);
}

Seconds Ixs::transfer_seconds(Bytes bytes) const {
  NCAR_REQUIRE(bytes.value() >= 0, "negative transfer size");
  return Seconds(cfg_.ixs_latency_s) + bytes / cfg_.ixs_channel_bytes_per_s;
}

Seconds Ixs::all_to_all_seconds(int nodes, Bytes bytes_per_node) const {
  NCAR_REQUIRE(nodes >= 1 && nodes <= cfg_.ixs_max_nodes, "node count");
  NCAR_REQUIRE(bytes_per_node.value() >= 0, "negative transfer size");
  if (nodes == 1) return Seconds(0.0);
  const Seconds channel_time = bytes_per_node / cfg_.ixs_channel_bytes_per_s;
  const Bytes aggregate = bytes_per_node * static_cast<double>(nodes);
  const Seconds bisection_time = aggregate / bisection_bytes_per_s();
  return Seconds(cfg_.ixs_latency_s) + std::max(channel_time, bisection_time);
}

Seconds Ixs::global_barrier_seconds(int nodes) const {
  NCAR_REQUIRE(nodes >= 1 && nodes <= cfg_.ixs_max_nodes, "node count");
  if (nodes == 1) return Seconds(0.0);
  // One communications-register round trip per node joining the barrier.
  return Seconds(cfg_.ixs_latency_s * 2.0) +
         cfg_.to_seconds(Cycles(cfg_.commreg_op_clocks)) *
             static_cast<double>(nodes);
}

}  // namespace ncar::sxs
