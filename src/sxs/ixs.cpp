#include "sxs/ixs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::sxs {

Ixs::Ixs(const MachineConfig& cfg) : cfg_(cfg) { cfg_.validate(); }

double Ixs::bisection_bytes_per_s() const {
  // 8 GB/s per node, 16 nodes -> 128 GB/s bisection for the full system.
  return cfg_.ixs_channel_bytes_per_s * cfg_.ixs_max_nodes;
}

double Ixs::transfer_seconds(double bytes) const {
  NCAR_REQUIRE(bytes >= 0, "negative transfer size");
  return cfg_.ixs_latency_s + bytes / cfg_.ixs_channel_bytes_per_s;
}

double Ixs::all_to_all_seconds(int nodes, double bytes_per_node) const {
  NCAR_REQUIRE(nodes >= 1 && nodes <= cfg_.ixs_max_nodes, "node count");
  NCAR_REQUIRE(bytes_per_node >= 0, "negative transfer size");
  if (nodes == 1) return 0.0;
  const double channel_time = bytes_per_node / cfg_.ixs_channel_bytes_per_s;
  const double aggregate = bytes_per_node * nodes;
  const double bisection_time = aggregate / bisection_bytes_per_s();
  return cfg_.ixs_latency_s + std::max(channel_time, bisection_time);
}

double Ixs::global_barrier_seconds(int nodes) const {
  NCAR_REQUIRE(nodes >= 1 && nodes <= cfg_.ixs_max_nodes, "node count");
  if (nodes == 1) return 0.0;
  // One communications-register round trip per node joining the barrier.
  return cfg_.ixs_latency_s * 2.0 +
         cfg_.commreg_op_clocks * cfg_.seconds_per_clock() * nodes;
}

}  // namespace ncar::sxs
