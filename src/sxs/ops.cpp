#include "sxs/ops.hpp"

#include "common/error.hpp"

namespace ncar::sxs {

IntrinsicCost intrinsic_cost(Intrinsic f) {
  // hw_flops: add/multiply pipe work per result for the vectorised library
  // routine (argument reduction + polynomial + reconstruction).
  // equiv_flops: Cray Y-MP hardware-performance-monitor counts for the
  // corresponding libm routines — the currency of "equivalent Mflops".
  switch (f) {
    case Intrinsic::Exp:  return {18.0, 0.0, 11.0};
    case Intrinsic::Log:  return {20.0, 0.0, 11.0};
    case Intrinsic::Pow:  return {42.0, 0.0, 25.0};
    case Intrinsic::Sin:  return {22.0, 0.0, 12.0};
    case Intrinsic::Cos:  return {22.0, 0.0, 12.0};
    case Intrinsic::Sqrt: return {6.0, 1.0, 8.0};
  }
  throw ncar::precondition_error("unknown intrinsic");
}

const char* intrinsic_name(Intrinsic f) {
  switch (f) {
    case Intrinsic::Exp:  return "EXP";
    case Intrinsic::Log:  return "LOG";
    case Intrinsic::Pow:  return "PWR";
    case Intrinsic::Sin:  return "SIN";
    case Intrinsic::Cos:  return "COS";
    case Intrinsic::Sqrt: return "SQRT";
  }
  throw ncar::precondition_error("unknown intrinsic");
}

}  // namespace ncar::sxs
