#pragma once
// Internode crossbar (IXS) model.
//
// Paper section 2.5: a fibre-channel crossbar joining up to 16 nodes, with
// an 8 GB/s input and 8 GB/s output channel per node that operate
// concurrently, 128 GB/s bisection bandwidth for the full system, and
// global communications registers for internode synchronisation.

#include "sxs/machine_config.hpp"

namespace ncar::sxs {

class Ixs {
public:
  explicit Ixs(const MachineConfig& cfg);

  /// Seconds for a point-to-point transfer of `bytes` from one node to
  /// another (latency plus channel-rate-limited payload).
  Seconds transfer_seconds(Bytes bytes) const;

  /// Seconds for every node simultaneously sending `bytes_per_node` across
  /// the bisection (all-to-all style). Limited by the per-node channel or
  /// the bisection bandwidth, whichever saturates first.
  Seconds all_to_all_seconds(int nodes, Bytes bytes_per_node) const;

  /// Seconds for a global internode barrier using the IXS communications
  /// registers.
  Seconds global_barrier_seconds(int nodes) const;

  /// The sustained bisection bandwidth of this configuration.
  BytesPerSec bisection_bytes_per_s() const;

private:
  MachineConfig cfg_;
};

}  // namespace ncar::sxs
