#pragma once
// Banked-memory timing model for the SX-4 main memory unit.
//
// Paper section 2.2: up to 1024 banks of 64-bit-wide SSRAM with a two-clock
// bank cycle; each CPU owns a 16 GB/s port into a non-blocking crossbar;
// conflict-free unit-stride and stride-2 access is guaranteed, and "higher
// strides and list vector access benefit from the very short bank cycle
// time" — i.e. they are slower, but not catastrophically so.

#include <vector>

#include "sxs/machine_config.hpp"

namespace ncar::sxs {

class MemoryModel {
public:
  /// Precomputes the stride -> conflict-factor table for |stride| up to
  /// `memory_banks` (gcd is periodic in the bank count, so that range
  /// covers every distinct conflict geometry; larger strides fall back to
  /// the analytic formula, which stays bit-identical to the table entries).
  explicit MemoryModel(const MachineConfig& cfg);

  /// Cycles for a strided vector stream of `n` 8-byte words at `stride`.
  /// Unit stride and stride 2 run at full port width; larger strides pay a
  /// bank-conflict factor that grows when the stride folds the request
  /// stream onto few banks (power-of-two strides are the worst case).
  Cycles stream_cycles(long n_words, long stride) const;

  /// Cycles for a gather (list-vector load) of `n` words: one generated
  /// address per element at reduced port width, plus a stochastic
  /// bank-conflict allowance.
  Cycles gather_cycles(long n_words) const;

  /// Cycles for a scatter (list-vector store) of `n` words.
  Cycles scatter_cycles(long n_words) const;

  /// Conflict multiplier for a constant-stride stream (>= 1).
  double stride_conflict_factor(long stride) const;

  /// Full contiguous port width in 8-byte words per clock. Typed: the
  /// dimension survives the public surface (sxsema sema-unit-leak);
  /// internal pricing takes .value() at the point of arithmetic.
  Words port_words_per_clock() const {
    return to_words(cfg_.port_bytes_per_clock);
  }

private:
  double analytic_conflict_factor(long stride) const;

  const MachineConfig& cfg_;
  std::vector<double> stride_factor_;  ///< index |stride| in [0, banks]
};

}  // namespace ncar::sxs
