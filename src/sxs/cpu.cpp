#include "sxs/cpu.hpp"

#include "common/error.hpp"

namespace ncar::sxs {

namespace {

// Attribution class of a vector loop — a pure function of the descriptor:
// divide work binds the divide/sqrt pipe, multi-group arithmetic is
// madd-style, single-group arithmetic is add-pipe work, and flop-free loops
// (copies, masks, shifts) are logical traffic.
trace::Category classify(const VectorOp& op) {
  if (op.div_per_elem > 0) return trace::Category::VectorDiv;
  if (op.flops_per_elem > 0) {
    return op.pipe_groups >= 2 ? trace::Category::VectorMul
                               : trace::Category::VectorAdd;
  }
  return trace::Category::VectorLogical;
}

}  // namespace

double Cpu::vec_cost(const VectorOp& op) {
  return vec_cost_.get(op, [&] { return vu_.cycles(op).value(); });
}

double Cpu::scalar_cost(const ScalarOp& op) {
  return scalar_cost_.get(op, [&] { return su_.cycles(op).value(); });
}

double Cpu::scalar_miss_cost(const ScalarOp& op) {
  return scalar_miss_cost_.get(op,
                               [&] { return su_.miss_cycles(op).value(); });
}

void Cpu::record(trace::Category category, double start, double charged,
                 double base, double miss, double gather_scatter,
                 const char* tag) {
  // total mirrors the cycle counter addition-for-addition, so
  // trace().total_ticks() stays bit-identical to cycles().
  trace_.count_total(charged);
  double conflict = charged - base;  // contention (+ stride) inflation
  if (conflict < 0) conflict = 0;    // last-ulp guard near contention == 1
  double main = base;
  if (miss > 0) {
    if (miss > main) miss = main;
    main -= miss;
    trace_.count(trace::Category::CacheMiss, miss);
  }
  if (gather_scatter > 0) {
    if (gather_scatter > main) gather_scatter = main;
    main -= gather_scatter;
    trace_.count(trace::Category::GatherScatter, gather_scatter);
  }
  trace_.count(category, main);
  if (conflict > 0) trace_.count(trace::Category::BankConflict, conflict);
  trace_.span(category, start, charged, tag);
}

void Cpu::vec(const VectorOp& op, long repeats) {
  vec_impl(op, repeats, classify(op));
}

void Cpu::vec(const VectorOp& op, long repeats, trace::Category category) {
  vec_impl(op, repeats, category);
}

void Cpu::vec_impl(const VectorOp& op, long repeats,
                   trace::Category category) {
  NCAR_REQUIRE(repeats >= 0, "negative repeat count");
  if (repeats == 0) return;
  const double reps = static_cast<double>(repeats);
  const double cost = vec_cost(op);
  const double c = cost * contention_ * reps;
  const double start = cycles_ + trace_time_offset_;
  cycles_ += c;
  vector_cycles_ += c;

  // Refined attribution (summary/full): reprice the loop with unit strides
  // to carve the stride-conflict premium out of the pipe category and into
  // bank_conflict, and with the list-vector traffic removed to carve the
  // gather/scatter premium into gather_scatter. Off mode keeps the hot
  // path to the counter updates.
  double base = cost * reps;
  double gather_scatter = 0.0;
  if (trace::mode() != trace::Mode::Off) {
    if (op.load_stride != 1 || op.store_stride != 1) {
      VectorOp unit = op;
      unit.load_stride = 1;
      unit.store_stride = 1;
      const double unit_cost = vec_cost(unit);
      if (unit_cost < cost) base = unit_cost * reps;
    }
    if (op.gather_words > 0 || op.scatter_words > 0) {
      VectorOp contiguous = op;
      contiguous.gather_words = 0;
      contiguous.scatter_words = 0;
      const double contiguous_cost = vec_cost(contiguous);
      if (contiguous_cost < cost) {
        gather_scatter = (cost - contiguous_cost) * reps;
      }
    }
  }
  record(category, start, c, base, 0.0, gather_scatter, "vec");

  const double n = static_cast<double>(op.n) * reps;
  const double flops = n * (op.flops_per_elem + op.div_per_elem);
  hw_flops_ += flops;
  equiv_flops_ += flops;
}

void Cpu::scalar(const ScalarOp& op) {
  const double cost = scalar_cost(op);
  const double c = cost * contention_;
  const double start = cycles_ + trace_time_offset_;
  cycles_ += c;
  scalar_cycles_ += c;

  const double miss =
      trace::mode() != trace::Mode::Off ? scalar_miss_cost(op) : 0.0;
  record(trace::Category::Scalar, start, c, cost, miss, 0.0, "scalar");

  const double flops =
      static_cast<double>(op.iters) * op.flops_per_iter;
  hw_flops_ += flops;
  equiv_flops_ += flops;
}

void Cpu::intrinsic(Intrinsic f, long n, double extra_load_words,
                    double extra_store_words, double cycle_multiplier,
                    long repeats) {
  NCAR_REQUIRE(n >= 0, "negative intrinsic count");
  NCAR_REQUIRE(repeats >= 0, "negative repeat count");
  NCAR_REQUIRE(cycle_multiplier >= 1.0, "cycle multiplier below 1");
  if (n == 0 || repeats == 0) return;
  const IntrinsicCost cost = intrinsic_cost(f);
  VectorOp op;
  op.n = n;
  op.flops_per_elem = cost.hw_flops;
  op.div_per_elem = cost.hw_div;
  op.load_words = extra_load_words;
  op.store_words = extra_store_words;
  op.pipe_groups = 2;
  const double reps = static_cast<double>(repeats);
  const double op_cost = vec_cost(op);
  const double c = op_cost * contention_ * cycle_multiplier * reps;
  const double start = cycles_ + trace_time_offset_;
  cycles_ += c;
  intrinsic_cycles_ += c;

  record(trace::Category::VectorMul, start, c,
         op_cost * cycle_multiplier * reps, 0.0, 0.0, "intrinsic");

  const double total = static_cast<double>(n) * reps;
  hw_flops_ += total * (cost.hw_flops + cost.hw_div);
  equiv_flops_ += total * cost.equiv_flops;
}

void Cpu::scalar_intrinsic(Intrinsic f, long n) {
  NCAR_REQUIRE(n >= 0, "negative intrinsic count");
  if (n == 0) return;
  const IntrinsicCost cost = intrinsic_cost(f);
  ScalarOp op;
  op.iters = n;
  op.flops_per_iter = cost.hw_flops + cost.hw_div;
  op.mem_words_per_iter = 2.0;  // argument load + result store
  op.other_ops_per_iter = 6.0;  // call / branch / table indexing overhead
  op.working_set_bytes = 4096;  // coefficient tables stay resident
  op.reuse_fraction = 0.9;
  const double op_cost = scalar_cost(op);
  const double c = op_cost * contention_;
  const double start = cycles_ + trace_time_offset_;
  cycles_ += c;
  intrinsic_cycles_ += c;

  const double miss =
      trace::mode() != trace::Mode::Off ? scalar_miss_cost(op) : 0.0;
  record(trace::Category::Scalar, start, c, op_cost, miss, 0.0,
         "scalar_intrinsic");

  hw_flops_ += static_cast<double>(n) * (cost.hw_flops + cost.hw_div);
  equiv_flops_ += static_cast<double>(n) * cost.equiv_flops;
}

void Cpu::charge_cycles(Cycles cycles, trace::Category category) {
  NCAR_REQUIRE(cycles.value() >= 0, "negative cycle charge");
  // Raw charges represent real work (memory-touching included), so the
  // node contention factor applies here as well.
  const double v = cycles.value();
  const double c = v * contention_;
  const double start = cycles_ + trace_time_offset_;
  cycles_ += c;
  record(category, start, c, v, 0.0, 0.0, "charge");
}

void Cpu::charge_seconds(Seconds seconds, trace::Category category) {
  NCAR_REQUIRE(seconds.value() >= 0, "negative time charge");
  charge_cycles(cfg_->to_cycles(seconds), category);
}

void Cpu::set_contention(double factor) {
  NCAR_REQUIRE(factor >= 1.0, "contention factor below 1");
  contention_ = factor;
}

void Cpu::reset() {
  cycles_ = 0;
  vector_cycles_ = 0;
  scalar_cycles_ = 0;
  intrinsic_cycles_ = 0;
  hw_flops_ = 0;
  equiv_flops_ = 0;
  contention_ = 1.0;
  trace_.reset();
  trace_time_offset_ = 0;
}

}  // namespace ncar::sxs
