#include "sxs/cpu.hpp"

#include "common/error.hpp"

namespace ncar::sxs {

double Cpu::vec_cost(const VectorOp& op) {
  return vec_cost_.get(op, [&] { return vu_.cycles(op).value(); });
}

double Cpu::scalar_cost(const ScalarOp& op) {
  return scalar_cost_.get(op, [&] { return su_.cycles(op).value(); });
}

void Cpu::vec(const VectorOp& op, long repeats) {
  NCAR_REQUIRE(repeats >= 0, "negative repeat count");
  if (repeats == 0) return;
  const double reps = static_cast<double>(repeats);
  const double c = vec_cost(op) * contention_ * reps;
  cycles_ += c;
  vector_cycles_ += c;
  const double n = static_cast<double>(op.n) * reps;
  const double flops = n * (op.flops_per_elem + op.div_per_elem);
  hw_flops_ += flops;
  equiv_flops_ += flops;
}

void Cpu::scalar(const ScalarOp& op) {
  const double c = scalar_cost(op) * contention_;
  cycles_ += c;
  scalar_cycles_ += c;
  const double flops =
      static_cast<double>(op.iters) * op.flops_per_iter;
  hw_flops_ += flops;
  equiv_flops_ += flops;
}

void Cpu::intrinsic(Intrinsic f, long n, double extra_load_words,
                    double extra_store_words, double cycle_multiplier,
                    long repeats) {
  NCAR_REQUIRE(n >= 0, "negative intrinsic count");
  NCAR_REQUIRE(repeats >= 0, "negative repeat count");
  NCAR_REQUIRE(cycle_multiplier >= 1.0, "cycle multiplier below 1");
  if (n == 0 || repeats == 0) return;
  const IntrinsicCost cost = intrinsic_cost(f);
  VectorOp op;
  op.n = n;
  op.flops_per_elem = cost.hw_flops;
  op.div_per_elem = cost.hw_div;
  op.load_words = extra_load_words;
  op.store_words = extra_store_words;
  op.pipe_groups = 2;
  const double reps = static_cast<double>(repeats);
  const double c = vec_cost(op) * contention_ * cycle_multiplier * reps;
  cycles_ += c;
  intrinsic_cycles_ += c;
  const double total = static_cast<double>(n) * reps;
  hw_flops_ += total * (cost.hw_flops + cost.hw_div);
  equiv_flops_ += total * cost.equiv_flops;
}

void Cpu::scalar_intrinsic(Intrinsic f, long n) {
  NCAR_REQUIRE(n >= 0, "negative intrinsic count");
  if (n == 0) return;
  const IntrinsicCost cost = intrinsic_cost(f);
  ScalarOp op;
  op.iters = n;
  op.flops_per_iter = cost.hw_flops + cost.hw_div;
  op.mem_words_per_iter = 2.0;  // argument load + result store
  op.other_ops_per_iter = 6.0;  // call / branch / table indexing overhead
  op.working_set_bytes = 4096;  // coefficient tables stay resident
  op.reuse_fraction = 0.9;
  const double c = scalar_cost(op) * contention_;
  cycles_ += c;
  intrinsic_cycles_ += c;
  hw_flops_ += static_cast<double>(n) * (cost.hw_flops + cost.hw_div);
  equiv_flops_ += static_cast<double>(n) * cost.equiv_flops;
}

void Cpu::charge_cycles(Cycles cycles) {
  NCAR_REQUIRE(cycles.value() >= 0, "negative cycle charge");
  // Raw charges represent real work (memory-touching included), so the
  // node contention factor applies here as well.
  cycles_ += cycles.value() * contention_;
}

void Cpu::charge_seconds(Seconds seconds) {
  NCAR_REQUIRE(seconds.value() >= 0, "negative time charge");
  charge_cycles(cfg_->to_cycles(seconds));
}

void Cpu::set_contention(double factor) {
  NCAR_REQUIRE(factor >= 1.0, "contention factor below 1");
  contention_ = factor;
}

void Cpu::reset() {
  cycles_ = 0;
  vector_cycles_ = 0;
  scalar_cycles_ = 0;
  intrinsic_cycles_ = 0;
  hw_flops_ = 0;
  equiv_flops_ = 0;
  contention_ = 1.0;
}

}  // namespace ncar::sxs
