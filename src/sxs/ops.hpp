#pragma once
// Operation descriptors charged against the SX-4 timing model.
//
// Benchmark kernels perform their numerics in ordinary C++ and *charge* the
// simulated CPU with a descriptor of what a Fortran compiler would have
// generated for the same loop nest on the SX-4: how many elements, how many
// flops per element, how many words move through the memory port and with
// what access pattern, and which pipe groups the loop keeps busy. The split
// keeps the numerical code clean while the timing model sees exactly the
// architectural quantities the paper's results depend on.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/cost_cache.hpp"

namespace ncar::sxs {

/// A vector-mode loop (vectorised inner loop of length `n`).
struct VectorOp {
  long n = 0;                ///< total elements processed by the loop
  double flops_per_elem = 0; ///< add/multiply flops per element
  double div_per_elem = 0;   ///< divide or square-root results per element

  // Words of 8 bytes moving through the CPU's memory port, per element.
  double load_words = 0;     ///< contiguous / constant-stride loads
  double store_words = 0;    ///< contiguous / constant-stride stores
  double gather_words = 0;   ///< list-vector (indexed) loads
  double scatter_words = 0;  ///< list-vector (indexed) stores

  long load_stride = 1;      ///< stride of the strided load streams
  long store_stride = 1;     ///< stride of the strided store streams
  int pipe_groups = 2;       ///< arithmetic pipe groups kept busy (1..3)

  /// Number of distinct vector instructions in the loop body (used for the
  /// per-chunk issue cost). Zero means "derive from the streams and flops".
  int instructions = 0;

  /// Field-tuple equality: the cost model is a pure function of every field,
  /// so two equal descriptors always price identically (cost-cache key).
  friend bool operator==(const VectorOp&, const VectorOp&) = default;
};

/// A scalar-mode loop (runs on the superscalar unit through the caches).
struct ScalarOp {
  long iters = 0;
  double flops_per_iter = 0;
  double mem_words_per_iter = 0;  ///< loads + stores, 8-byte words
  double other_ops_per_iter = 0;  ///< integer / address / branch instructions
  /// Bytes the loop touches repeatedly; decides the cache-resident fraction.
  double working_set_bytes = 0;
  /// Fraction of memory references that are re-uses of the working set
  /// (1.0 = fully resident blocking, 0.0 = pure streaming).
  double reuse_fraction = 0.0;

  friend bool operator==(const ScalarOp&, const ScalarOp&) = default;
};

/// Hash over the full VectorOp field tuple (doubles hashed by bit pattern;
/// +0.0/-0.0 compare equal but hash apart, which only costs a duplicate
/// cache slot, never a wrong value).
struct VectorOpHash {
  std::size_t operator()(const VectorOp& op) const {
    std::size_t seed = 0;
    hash_combine(seed, static_cast<std::size_t>(op.n));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.flops_per_elem));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.div_per_elem));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.load_words));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.store_words));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.gather_words));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.scatter_words));
    hash_combine(seed, static_cast<std::size_t>(op.load_stride));
    hash_combine(seed, static_cast<std::size_t>(op.store_stride));
    hash_combine(seed, static_cast<std::size_t>(op.pipe_groups));
    hash_combine(seed, static_cast<std::size_t>(op.instructions));
    return seed;
  }
};

struct ScalarOpHash {
  std::size_t operator()(const ScalarOp& op) const {
    std::size_t seed = 0;
    hash_combine(seed, static_cast<std::size_t>(op.iters));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.flops_per_iter));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.mem_words_per_iter));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.other_ops_per_iter));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.working_set_bytes));
    hash_combine(seed, std::bit_cast<std::uint64_t>(op.reuse_fraction));
    return seed;
  }
};

/// Vectorised intrinsic functions with hardware cost models (Table 3) and
/// Cray-Y-MP-equivalent flop weights (used for "equivalent Mflops").
enum class Intrinsic { Exp, Log, Pow, Sin, Cos, Sqrt };

struct IntrinsicCost {
  double hw_flops;      ///< add/multiply work per element in our pipes
  double hw_div;        ///< divide-pipe results per element
  double equiv_flops;   ///< Cray hardware-performance-monitor flop count
};

/// Cost table for vector intrinsic evaluation. The hardware costs reflect
/// polynomial/table evaluation on the add+multiply pipe groups; the
/// equivalent-flop weights are the conventional Cray library counts used to
/// report "Cray Y-MP equivalent Mflops" for RADABS and CCM2.
IntrinsicCost intrinsic_cost(Intrinsic f);

/// Name for reports ("EXP", "LOG", ...), matching the paper's Table 3.
const char* intrinsic_name(Intrinsic f);

}  // namespace ncar::sxs
