#pragma once
// SUPER-UX Resource Blocks (paper section 2.6.4).
//
// "Resource Blocking ... allows the system administrator to define logical
// scheduling groups which are mapped onto the SX-4 processors. Each
// Resource Block has a maximum and minimum processor count, memory limits,
// and scheduling characteristics" — e.g. an interactive partition next to
// a FIFO batch partition. This module models that partitioning layer: a
// ResourceBlockTable carves a node's CPUs into named blocks; allocations
// are granted against a block and never exceed its maximum, and the table
// guarantees the per-block minimum is always available to that block.

#include <string>
#include <vector>

#include "common/error.hpp"

namespace ncar::sxs {

enum class SchedulingPolicy {
  Fifo,         ///< static parallel-processing FIFO (batch)
  Interactive,  ///< time-shared interactive work
  Vector,       ///< traditional multi-CPU vector batch
};

struct ResourceBlockSpec {
  std::string name;
  int min_cpus = 0;  ///< reserved for this block even when idle
  int max_cpus = 0;  ///< hard ceiling for this block
  SchedulingPolicy policy = SchedulingPolicy::Fifo;
};

/// A granted allocation; release through the table.
struct Allocation {
  int block = -1;  ///< block index
  int cpus = 0;
  long id = -1;    ///< handle
  bool valid() const { return id >= 0; }
};

class ResourceBlockTable {
public:
  /// Build over `total_cpus`; the sum of minima must fit, and each block's
  /// max must be at least its min and at most the node size.
  ResourceBlockTable(int total_cpus, std::vector<ResourceBlockSpec> blocks);

  int total_cpus() const { return total_; }
  int block_count() const { return static_cast<int>(specs_.size()); }
  const ResourceBlockSpec& spec(int block) const;
  int block_index(const std::string& name) const;  ///< -1 when absent

  /// CPUs currently in use by a block.
  int used(int block) const;
  /// CPUs a block could allocate right now: limited by its max, by the
  /// node's free CPUs, and by the minima reserved for other blocks.
  int available(int block) const;

  /// Try to allocate; returns an invalid Allocation when it cannot be
  /// granted. Never over-commits.
  Allocation allocate(int block, int cpus);
  Allocation allocate(const std::string& name, int cpus);

  void release(Allocation& a);

  /// All processors assigned to a single process (paper: "All processors
  /// can be assigned to a single process by properly defining the Resource
  /// Blocks"): true when some block's max equals the node size.
  bool single_process_capable() const;

private:
  int total_;
  std::vector<ResourceBlockSpec> specs_;
  std::vector<int> used_;
  long next_id_ = 0;
};

}  // namespace ncar::sxs
