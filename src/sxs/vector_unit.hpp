#pragma once
// Vector-unit timing model.
//
// Paper section 2.1: the vector unit is eight VLSI chips, each holding 32
// elements of every vector register; the chips together form 8-wide pipe
// groups for add/shift, multiply, divide, and logical operations, all of
// which may run concurrently. One add and one multiply group busy gives
// 16 flops/clock = 2 GFLOPS at 8 ns; a concurrent divide "can exceed the
// peak rating".

#include "sxs/machine_config.hpp"
#include "sxs/memory_model.hpp"
#include "sxs/ops.hpp"

namespace ncar::sxs {

class VectorUnit {
public:
  VectorUnit(const MachineConfig& cfg, const MemoryModel& mem)
      : cfg_(cfg), mem_(mem) {}

  /// Cycles to execute a vectorised loop described by `op`.
  ///
  /// The loop is strip-mined into ceil(n / VL) chunks. Each chunk pays an
  /// issue cost per vector instruction; the whole sequence pays one pipeline
  /// startup. Steady-state throughput is the slowest of: the arithmetic pipe
  /// groups, the divide pipes, and the memory port streams. Arithmetic and
  /// memory overlap (loads are chained into the pipes), so the bound is a
  /// max, not a sum.
  Cycles cycles(const VectorOp& op) const;

  /// Steady-state flops per clock for a loop keeping `pipe_groups` busy.
  double flops_per_clock(int pipe_groups) const {
    return static_cast<double>(cfg_.pipes_per_group) *
           static_cast<double>(pipe_groups);
  }

private:
  const MachineConfig& cfg_;
  const MemoryModel& mem_;
};

}  // namespace ncar::sxs
