#pragma once
// Machine configuration for the SX-4 performance model.
//
// Every parameter here is taken from the paper's architecture section
// (section 2) or its Table 2 (the SX-4/32 actually benchmarked in February
// 1996, which ran a 9.2 ns clock rather than the production 8.0 ns part).
// The model is deliberately parameter-driven so that the ablation benches
// can vary bank count, vector length, clock, and synchronisation cost.

#include <cstddef>
#include <string>

#include "common/quantity.hpp"

namespace ncar::sxs {

struct MachineConfig {
  std::string name = "SX-4";

  // --- clock -------------------------------------------------------------
  double clock_ns = 8.0;  ///< clock period; 9.2 ns on the benchmarked system

  // --- node shape ----------------------------------------------------------
  int cpus_per_node = 32;
  int nodes = 1;

  // --- vector unit (paper section 2.1) -------------------------------------
  // Eight vector-pipeline VLSI chips, each holding 32 vector elements per
  // register; together a 256-element vector register feeding 8-wide pipe
  // groups (add/shift, multiply, divide, logical).
  int vector_length = 256;     ///< elements per vector register
  int pipes_per_group = 8;     ///< results per cycle per pipe group
  double vector_issue_clocks = 2.0;   ///< "most vector instructions issue in two clocks"
  double vector_startup_clocks = 42.0;  ///< pipe fill + address setup per op sequence
  double divide_cycles_per_result = 4.0;  ///< divide pipes are not fully pipelined per-cycle

  // --- scalar unit (paper section 2.1) --------------------------------------
  int scalar_issue_width = 2;  ///< superscalar unit issues 2 instructions/clock
  std::size_t dcache_bytes = 64 * 1024;
  std::size_t icache_bytes = 64 * 1024;
  std::size_t cache_line_bytes = 128;
  int cache_ways = 2;
  double cache_miss_clocks = 45.0;  ///< main-memory load-use latency, clocks

  // --- main memory (paper section 2.2) ---------------------------------------
  int memory_banks = 1024;
  double bank_cycle_clocks = 2.0;          ///< SSRAM bank busy time
  // Port widths are architecture invariants (bytes moved per clock), so
  // they are typed Bytes; ablation benches that vary the clock keep the
  // width and change only the derived BytesPerSec rates.
  Bytes port_bytes_per_clock{128.0};     ///< 16 GB/s per CPU at 8 ns
  Bytes node_bytes_per_clock{4096.0};    ///< 512 GB/s sustainable per node
  // Gather / scatter (list-vector) accesses generate one address per element
  // and cannot use the full-width contiguous port; the paper's Figure 5 shows
  // IA and XPOSE far below COPY. Expressed as a divisor on port width.
  double gather_port_divisor = 4.0;
  double scatter_port_divisor = 4.0;
  // Strides above 2 lose the guaranteed conflict freedom: they run at a
  // reduced port width (this divisor) even when the stride spreads well
  // across banks, and degrade further on power-of-two strides (see
  // MemoryModel::stride_conflict_factor).
  double strided_port_divisor = 2.0;
  // Mild degradation per additional active CPU from bank conflicts; tuned so
  // the ensemble test (Table 6) reproduces the paper's 1.89 % degradation.
  double bank_contention_per_cpu = 6.8e-4;

  // --- synchronisation (communications registers, section 2.1) ---------------
  double commreg_op_clocks = 12.0;   ///< test-set / store-add on a comm register
  double barrier_base_clocks = 1500.0;  ///< macrotask fork/join dispatch
  double barrier_per_cpu_clocks = 40.0;

  // --- XMU (section 2.3) -----------------------------------------------------
  Bytes xmu_bytes_per_clock{128.0};  ///< 16 GB/s node XMU bandwidth at 8 ns
  Bytes xmu_capacity_bytes{4.0 * 1024 * 1024 * 1024};  // Table 2: 4 GB

  // --- IOP / HIPPI (section 2.4) ---------------------------------------------
  int iops = 4;
  BytesPerSec iop_bytes_per_s{1.6e9};    ///< per-IOP channel bandwidth
  BytesPerSec hippi_bytes_per_s{100e6};  ///< HIPPI-800 payload rate ~100 MB/s
  double hippi_setup_s = 40e-6;          ///< per-packet connection/setup cost

  // --- IXS (section 2.5) -------------------------------------------------------
  BytesPerSec ixs_channel_bytes_per_s{8e9};  ///< 8 GB/s per node in + out
  double ixs_latency_s = 3e-6;
  int ixs_max_nodes = 16;

  // --- derived ------------------------------------------------------------
  double clock_hz() const { return 1e9 / clock_ns; }
  double seconds_per_clock() const { return clock_ns * 1e-9; }
  /// Peak vector flop rate per CPU (add + multiply groups concurrently).
  double peak_flops_per_cpu() const {
    return 2.0 * pipes_per_group * clock_hz();
  }
  int total_cpus() const { return cpus_per_node * nodes; }

  // --- checked dimension conversions ---------------------------------------
  // Cycles and Seconds are distinct types (common/quantity.hpp); the ONLY
  // bridge between them is this machine's clock, so a conversion always
  // states which clock period it means.
  Seconds to_seconds(Cycles c) const {
    return Seconds(c.value() * seconds_per_clock());
  }
  Cycles to_cycles(Seconds s) const {
    return Cycles(s.value() / seconds_per_clock());
  }
  /// Per-CPU contiguous memory port bandwidth as a typed rate.
  BytesPerSec port_bandwidth() const {
    return port_bytes_per_clock / Seconds(seconds_per_clock());
  }
  /// Node XMU bandwidth as a typed rate.
  BytesPerSec xmu_bandwidth() const {
    return BytesPerSec(xmu_bytes_per_clock.value() * clock_hz());
  }
  /// Peak vector flop rate per CPU as a typed rate.
  FlopsPerSec peak_rate_per_cpu() const {
    return FlopsPerSec(peak_flops_per_cpu());
  }

  /// The SX-4/32 of Table 2: 9.2 ns clock, 32 CPUs, 8 GB memory, 4 GB XMU.
  static MachineConfig sx4_benchmarked();
  /// The production SX-4 with the 8.0 ns clock.
  static MachineConfig sx4_product();
  /// A multi-node SX-4 (up to 16 nodes joined by the IXS).
  static MachineConfig sx4_multinode(int nodes);

  /// Throws ncar::config_error when parameters are inconsistent.
  void validate() const;
};

}  // namespace ncar::sxs
