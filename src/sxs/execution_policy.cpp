#include "sxs/execution_policy.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/thread_pool.hpp"
#include "simd/simd.hpp"

namespace ncar::sxs {

namespace {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ExecutionPolicy policy_from_env(const char* value) {
  if (value == nullptr || *value == '\0') return ExecutionPolicy::Threaded;
  if (std::strcmp(value, "seq") == 0 || std::strcmp(value, "sequential") == 0) {
    return ExecutionPolicy::Sequential;
  }
  if (std::strcmp(value, "threaded") == 0) return ExecutionPolicy::Threaded;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end != value && *end == '\0' && n <= 1) {
    return ExecutionPolicy::Sequential;
  }
  return ExecutionPolicy::Threaded;
}

int threads_from_env(const char* value) {
  if (value == nullptr || *value == '\0') return hardware_threads();
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end != value && *end == '\0') {
    return static_cast<int>(std::clamp(n, 1L, 1024L));
  }
  return hardware_threads();
}

ExecutionPolicy default_execution_policy() {
  return policy_from_env(std::getenv("SX4NCAR_HOST_THREADS"));
}

const char* to_string(ExecutionPolicy p) {
  return p == ExecutionPolicy::Sequential ? "sequential" : "threaded";
}

std::string host_execution_summary() {
  const std::string simd =
      std::string(", simd ") + simd::to_string(simd::active());
  if (default_execution_policy() == ExecutionPolicy::Sequential) {
    return "sequential (1 host thread)" + simd;
  }
  const int threads = ThreadPool::configured_host_threads();
  return "threaded (" + std::to_string(threads) + " host thread" +
         (threads == 1 ? "" : "s") + ")" + simd;
}

}  // namespace ncar::sxs
