#pragma once
// Set-associative cache simulator (true LRU).
//
// The SX-4 scalar unit has 64 KB instruction and 64 KB data caches (paper
// section 2.1, Figure 4). The analytic scalar timing model in ScalarUnit is
// calibrated against this reference simulator; tests drive both against the
// same access streams.

#include <cstdint>
#include <vector>

#include "sxs/machine_config.hpp"

namespace ncar::sxs {

class CacheSim {
public:
  /// `size_bytes` total capacity, `line_bytes` per line, `ways` associativity.
  CacheSim(std::size_t size_bytes, std::size_t line_bytes, int ways);

  /// Build from a machine configuration's data-cache parameters.
  static CacheSim dcache(const MachineConfig& cfg) {
    return CacheSim(cfg.dcache_bytes, cfg.cache_line_bytes, cfg.cache_ways);
  }

  /// Access one byte address; returns true on hit. Loads and stores are
  /// treated alike (write-allocate, write-back).
  bool access(std::uint64_t addr);

  /// Access every byte in [addr, addr + bytes). Exactly equivalent — same
  /// hit/miss counts, same tick and LRU state — to calling access() once per
  /// byte, but charges whole line-runs with a single tag probe each.
  void access_range(std::uint64_t addr, std::uint64_t bytes);

  /// Access the `n` byte addresses base, base + stride, ..., in order
  /// (stride is a forward byte distance). Exactly equivalent to the
  /// corresponding access() sequence; sub-line strides collapse runs of
  /// same-line accesses into one probe.
  void access_stream(std::uint64_t base, std::uint64_t stride, std::size_t n);

  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double miss_rate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(misses_) / static_cast<double>(accesses());
  }

  std::size_t sets() const { return sets_; }
  std::size_t line_bytes() const { return line_bytes_; }
  int ways() const { return ways_; }

  /// Typed capacity / line size (common/quantity.hpp) for model code that
  /// reasons about cache volume in the same dimension system as the rest of
  /// the timing model.
  Bytes capacity() const {
    return Bytes(static_cast<double>(sets_ * static_cast<std::size_t>(ways_) *
                                     line_bytes_));
  }
  Bytes line_size() const { return Bytes(static_cast<double>(line_bytes_)); }

private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  /// Charge `run` consecutive byte accesses that all land on line
  /// `line_addr`. Only the final access's tick can matter for LRU state
  /// (no other line in the set is touched in between), so one probe with
  /// `tick_ += run` reproduces the per-byte bookkeeping exactly.
  bool touch_line(std::uint64_t line_addr, std::uint64_t run);

  std::size_t line_bytes_;
  std::size_t sets_;
  int ways_;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
  std::vector<int> mru_way_;  // per-set most-recently-hit way, probed first
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ncar::sxs
