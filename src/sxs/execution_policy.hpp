#pragma once
// How simulated-CPU work bodies are executed on the *host*.
//
// Simulated timings are a pure function of the charged operations: each rank
// charges cycles to its own Cpu, the contention factor is fixed before the
// region starts, and the region time is a max-reduction over ranks. Running
// rank bodies on host threads therefore changes wall-clock time only — the
// simulated seconds, cycle counters, and flop currencies are bit-identical
// under either policy (the determinism tests in tests/sxs and
// tests/integration enforce this).

#include <string>

namespace ncar::sxs {

enum class ExecutionPolicy {
  /// Rank bodies run one after another on the calling host thread.
  Sequential,
  /// Rank bodies are dispatched to the host thread pool; the caller
  /// participates and blocks until the region completes.
  Threaded,
};

/// Policy selected by the SX4NCAR_HOST_THREADS environment variable:
/// unset → Threaded with hardware_concurrency host threads; a value of
/// 0 or 1 → Sequential; larger values → Threaded with that many threads.
ExecutionPolicy default_execution_policy();

/// Pure parsing helpers (exposed for tests; `value` is the raw environment
/// string, or nullptr when the variable is unset).
ExecutionPolicy policy_from_env(const char* value);
int threads_from_env(const char* value);

const char* to_string(ExecutionPolicy p);

/// One-line description of the host execution setup, e.g.
/// "threaded (8 host threads)" — printed by the bench harness mains.
std::string host_execution_summary();

}  // namespace ncar::sxs
