#include "sxs/machine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace ncar::sxs {

Machine::Machine(const MachineConfig& cfg, ExecutionPolicy policy)
    : cfg_(cfg), ixs_(cfg), policy_(policy) {
  cfg_.validate();
  nodes_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int i = 0; i < cfg_.nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(cfg_, policy_));
  }
}

Node& Machine::node(int i) {
  NCAR_REQUIRE(i >= 0 && i < node_count(), "node index");
  return *nodes_[static_cast<std::size_t>(i)];
}

const Node& Machine::node(int i) const {
  NCAR_REQUIRE(i >= 0 && i < node_count(), "node index");
  return *nodes_[static_cast<std::size_t>(i)];
}

void Machine::set_execution_policy(ExecutionPolicy p) {
  policy_ = p;
  for (auto& n : nodes_) n->set_execution_policy(p);
}

void Machine::set_thread_pool(ThreadPool* pool) {
  pool_ = pool;
  for (auto& n : nodes_) n->set_thread_pool(pool);
}

ThreadPool& Machine::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::global();
}

double Machine::parallel(int nodes_used, int cpus_per_node_used,
                         const std::function<void(int, int, Cpu&)>& body) {
  NCAR_REQUIRE(nodes_used >= 1 && nodes_used <= node_count(),
               "node count for the region");
  const double start = elapsed_seconds();

  // Each task touches only its own node (clock, CPUs); times[n] is written
  // by exactly one task. Nested rank fan-out inside Node::parallel shares
  // the same pool, which supports that nesting without deadlock.
  std::vector<double> times(static_cast<std::size_t>(nodes_used), 0.0);
  const auto run_node = [&](int n) {
    times[static_cast<std::size_t>(n)] = node(n).parallel(
        cpus_per_node_used,
        [&](int rank, Cpu& cpu) { body(n, rank, cpu); });
  };

  if (policy_ == ExecutionPolicy::Threaded && nodes_used > 1) {
    pool().parallel_for(nodes_used, run_node);
  } else {
    for (int n = 0; n < nodes_used; ++n) run_node(n);
  }

  double slowest = 0;
  for (const double t : times) slowest = std::max(slowest, t);

  const double barrier =
      nodes_used > 1 ? ixs_.global_barrier_seconds(nodes_used).value() : 0.0;
  // Synchronise every participating node's clock to the region end.
  const double region_end = start + slowest + barrier;
  for (int n = 0; n < nodes_used; ++n) {
    Node& nd = node(n);
    if (nd.elapsed_seconds() < region_end) {
      // Global-barrier wait: the gap to the region end is time spent in the
      // IXS communications-register barrier behind the slowest node.
      nd.advance_seconds(Seconds(region_end - nd.elapsed_seconds()),
                         trace::Category::Barrier);
    }
  }
  return slowest + barrier;
}

double Machine::exchange(int nodes_used, Bytes bytes_per_node) {
  NCAR_REQUIRE(nodes_used >= 1 && nodes_used <= node_count(),
               "node count for the exchange");
  const double t = ixs_.all_to_all_seconds(nodes_used, bytes_per_node).value();
  for (int n = 0; n < nodes_used; ++n) {
    node(n).advance_seconds(Seconds(t), trace::Category::IxsTransfer);
  }
  return t;
}

Seconds Machine::xmu_transfer_seconds(Bytes bytes) const {
  NCAR_REQUIRE(bytes.value() >= 0, "negative transfer size");
  return bytes / cfg_.xmu_bandwidth();
}

Seconds Machine::iop_transfer_seconds(Bytes bytes) const {
  NCAR_REQUIRE(bytes.value() >= 0, "negative transfer size");
  return bytes / cfg_.iop_bytes_per_s;
}

double Machine::elapsed_seconds() const {
  double t = 0;
  for (const auto& n : nodes_) t = std::max(t, n->elapsed_seconds());
  return t;
}

void Machine::reset() {
  for (auto& n : nodes_) n->reset();
}

}  // namespace ncar::sxs
