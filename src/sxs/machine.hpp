#pragma once
// A complete (possibly multi-node) SX-4 system: nodes joined by the IXS,
// plus XMU and IOP device models. Single-node configurations are the common
// case for the paper's benchmarks; multi-node is exercised by tests and the
// IXS ablation bench.

#include <functional>
#include <memory>
#include <vector>

#include "sxs/execution_policy.hpp"
#include "sxs/ixs.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace ncar {
class ThreadPool;
}

namespace ncar::sxs {

class Machine {
public:
  explicit Machine(const MachineConfig& cfg,
                   ExecutionPolicy policy = default_execution_policy());

  const MachineConfig& config() const { return cfg_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i);
  const Node& node(int i) const;
  const Ixs& ixs() const { return ixs_; }

  /// A parallel region spanning `nodes_used` nodes with `cpus_per_node_used`
  /// CPUs each (the single-system-image macrotasking the IXS enables,
  /// section 2.5). `body(node, rank, cpu)` runs per simulated CPU. The
  /// region ends with a global communications-register barrier over the
  /// IXS; all participating node clocks synchronise to the slowest node.
  /// Returns the region's simulated seconds.
  ///
  /// Under ExecutionPolicy::Threaded, node regions are dispatched to the
  /// host thread pool and each node's ranks fan out in turn (the pool
  /// handles the nesting); simulated results are bit-identical to the
  /// sequential policy.
  double parallel(int nodes_used, int cpus_per_node_used,
                  const std::function<void(int, int, Cpu&)>& body);

  /// All-to-all exchange of `bytes_per_node` across the first `nodes_used`
  /// nodes (spectral transposition and the like); advances their clocks.
  double exchange(int nodes_used, Bytes bytes_per_node);

  /// Seconds to move `bytes` between main memory and the XMU (section 2.3).
  Seconds xmu_transfer_seconds(Bytes bytes) const;

  /// Seconds to move `bytes` through one IOP channel (section 2.4).
  Seconds iop_transfer_seconds(Bytes bytes) const;

  /// Set the host execution policy for this machine and all its nodes.
  void set_execution_policy(ExecutionPolicy p);
  ExecutionPolicy execution_policy() const { return policy_; }

  /// Use `pool` instead of ThreadPool::global() on this machine and all its
  /// nodes (dependency injection for tests); nullptr restores the global
  /// pool. The pool must outlive every region run on this machine.
  void set_thread_pool(ThreadPool* pool);

  /// Global simulated wall clock: max over node clocks.
  double elapsed_seconds() const;

  void reset();

private:
  ThreadPool& pool() const;

  MachineConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Ixs ixs_;
  ExecutionPolicy policy_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace ncar::sxs
