#pragma once
// A shared-memory SX-4 node: up to 32 CPUs behind one non-blocking crossbar,
// with a macrotasking runtime modelled on the SX-4's communications
// registers (paper section 2.1) and Resource Blocks (section 2.6.4).
//
// The runtime accounts cycles per simulated CPU; the simulated elapsed time
// of a parallel region is the maximum over participating CPUs plus the
// barrier cost. On the *host*, rank bodies run either sequentially or on the
// host thread pool (ExecutionPolicy); because every rank charges its own
// Cpu and the region time is a max-reduction, the simulated result is
// deterministic and bit-identical under either policy.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sxs/cpu.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"

namespace ncar {
class ThreadPool;
}

namespace ncar::sxs {

class Node {
public:
  explicit Node(const MachineConfig& cfg,
                ExecutionPolicy policy = default_execution_policy());

  const MachineConfig& config() const { return cfg_; }
  int cpu_count() const { return static_cast<int>(cpus_.size()); }
  Cpu& cpu(int i);
  const Cpu& cpu(int i) const;

  /// Run `body(rank, cpu)` for ranks [0, ncpu). Returns the simulated
  /// elapsed seconds of the region: max over CPUs of the cycles the body
  /// charged, plus one barrier. Node wall clock advances by the same amount.
  /// Memory-bound work inside the region is inflated by the bank-contention
  /// factor for `ncpu` active CPUs (plus any external load, see
  /// `set_external_active_cpus`).
  ///
  /// Under ExecutionPolicy::Threaded the rank bodies run concurrently on
  /// host threads. A body must confine its side effects to its own rank's
  /// state (its Cpu, plus any rank-private or rank-partitioned host data) —
  /// every body in this repository already does. If a body throws, the
  /// lowest-throwing rank's exception propagates, every rank's contention
  /// factor is restored to 1.0, and the node clock does not advance.
  double parallel(int ncpu, const std::function<void(int, Cpu&)>& body);

  /// Run `body(cpu0)` serially on CPU 0; returns and advances by its time.
  double serial(const std::function<void(Cpu&)>& body);

  /// Simulated cost of one macrotask barrier among `ncpu` CPUs.
  double barrier_seconds(int ncpu) const;

  /// Bank-conflict inflation when `active_cpus` CPUs hit memory at once.
  double contention_factor(int active_cpus) const;

  /// Declare CPUs busy with *other* jobs (the PRODLOAD / ensemble tests):
  /// they contribute to memory contention but do no work here.
  void set_external_active_cpus(int n);
  int external_active_cpus() const { return external_active_; }

  /// How rank bodies are executed on the host. Never changes simulated
  /// results; see execution_policy.hpp.
  void set_execution_policy(ExecutionPolicy p) { policy_ = p; }
  ExecutionPolicy execution_policy() const { return policy_; }

  /// Use `pool` instead of ThreadPool::global() for threaded regions
  /// (dependency injection for tests); nullptr restores the global pool.
  /// The pool must outlive every region run on this node.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Op-cost cache traffic summed over this node's CPUs (the caches are
  /// per-Cpu, see cpu.hpp). reset() leaves them running; they count the
  /// whole process lifetime, which is what the bench reporter records.
  std::uint64_t cost_cache_hits() const;
  std::uint64_t cost_cache_misses() const;

  /// Node wall clock (simulated seconds since construction / reset).
  double elapsed_seconds() const { return elapsed_; }
  /// Advance the node wall clock without CPU work (I/O waits, internode
  /// transfers); `category` files the wait in the runtime attribution.
  void advance_seconds(Seconds s,
                       trace::Category category = trace::Category::Other);

  /// Runtime-overhead track (seconds ticks): barrier and mean-per-rank idle
  /// time of parallel regions plus categorised clock advances. Its total
  /// mirrors elapsed_seconds() bit-exactly; the Other residual of its
  /// attribution table is the mean rank-compute time, which the per-CPU
  /// tracks break down.
  trace::Collector& runtime_trace() { return runtime_trace_; }
  const trace::Collector& runtime_trace() const { return runtime_trace_; }

  /// Reset wall clock and all CPU counters.
  void reset();

private:
  ThreadPool& pool() const;

  MachineConfig cfg_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  trace::Collector runtime_trace_;
  double elapsed_ = 0;
  int external_active_ = 0;
  ExecutionPolicy policy_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace ncar::sxs
