#pragma once
// A shared-memory SX-4 node: up to 32 CPUs behind one non-blocking crossbar,
// with a macrotasking runtime modelled on the SX-4's communications
// registers (paper section 2.1) and Resource Blocks (section 2.6.4).
//
// The runtime executes simulated-CPU work bodies sequentially on the host
// while accounting cycles per simulated CPU; the simulated elapsed time of a
// parallel region is the maximum over participating CPUs plus the barrier
// cost. This is deterministic and independent of host parallelism.

#include <functional>
#include <memory>
#include <vector>

#include "sxs/cpu.hpp"
#include "sxs/machine_config.hpp"

namespace ncar::sxs {

class Node {
public:
  explicit Node(const MachineConfig& cfg);

  const MachineConfig& config() const { return cfg_; }
  int cpu_count() const { return static_cast<int>(cpus_.size()); }
  Cpu& cpu(int i);
  const Cpu& cpu(int i) const;

  /// Run `body(rank, cpu)` for ranks [0, ncpu). Returns the simulated
  /// elapsed seconds of the region: max over CPUs of the cycles the body
  /// charged, plus one barrier. Node wall clock advances by the same amount.
  /// Memory-bound work inside the region is inflated by the bank-contention
  /// factor for `ncpu` active CPUs (plus any external load, see
  /// `set_external_active_cpus`).
  double parallel(int ncpu, const std::function<void(int, Cpu&)>& body);

  /// Run `body(cpu0)` serially on CPU 0; returns and advances by its time.
  double serial(const std::function<void(Cpu&)>& body);

  /// Simulated cost of one macrotask barrier among `ncpu` CPUs.
  double barrier_seconds(int ncpu) const;

  /// Bank-conflict inflation when `active_cpus` CPUs hit memory at once.
  double contention_factor(int active_cpus) const;

  /// Declare CPUs busy with *other* jobs (the PRODLOAD / ensemble tests):
  /// they contribute to memory contention but do no work here.
  void set_external_active_cpus(int n);
  int external_active_cpus() const { return external_active_; }

  /// Node wall clock (simulated seconds since construction / reset).
  double elapsed_seconds() const { return elapsed_; }
  /// Advance the node wall clock without CPU work (I/O waits etc.).
  void advance_seconds(double s);

  /// Reset wall clock and all CPU counters.
  void reset();

private:
  MachineConfig cfg_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  double elapsed_ = 0;
  int external_active_ = 0;
};

}  // namespace ncar::sxs
