#include "sxs/vector_unit.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ncar::sxs {

Cycles VectorUnit::cycles(const VectorOp& op) const {
  NCAR_REQUIRE(op.n >= 0, "vector op with negative length");
  if (op.n == 0) return Cycles(0.0);
  NCAR_REQUIRE(op.pipe_groups >= 1 && op.pipe_groups <= 3,
               "pipe_groups must be 1..3");

  const double n = static_cast<double>(op.n);
  const long chunks = (op.n + cfg_.vector_length - 1) / cfg_.vector_length;

  // Arithmetic bound: the add and multiply groups each retire
  // `pipes_per_group` results per clock.
  double arith_cycles = 0.0;
  if (op.flops_per_elem > 0) {
    arith_cycles = n * op.flops_per_elem / flops_per_clock(op.pipe_groups);
  }

  // Divide bound: the divide group is its own set of 8 pipes, but each pipe
  // delivers a result only every `divide_cycles_per_result` clocks.
  double div_cycles = 0.0;
  if (op.div_per_elem > 0) {
    const double div_per_clock = static_cast<double>(cfg_.pipes_per_group) /
                                 cfg_.divide_cycles_per_result;
    div_cycles = n * op.div_per_elem / div_per_clock;
  }

  // Memory bound: contiguous/strided streams plus list-vector traffic.
  Cycles mem_cycles =
      mem_.stream_cycles(static_cast<long>(n * op.load_words),
                         op.load_stride) +
      mem_.stream_cycles(static_cast<long>(n * op.store_words),
                         op.store_stride);
  mem_cycles += mem_.gather_cycles(static_cast<long>(n * op.gather_words));
  mem_cycles += mem_.scatter_cycles(static_cast<long>(n * op.scatter_words));

  // Instruction issue: "most vector instructions issue in two clocks".
  int instrs = op.instructions;
  if (instrs == 0) {
    const double streams = op.load_words + op.store_words + op.gather_words +
                           op.scatter_words;
    instrs = static_cast<int>(std::ceil(streams)) +
             static_cast<int>(std::ceil(op.flops_per_elem / 2.0)) +
             static_cast<int>(std::ceil(op.div_per_elem));
    instrs = std::max(instrs, 1);
  }
  const double issue_cycles =
      static_cast<double>(chunks) * instrs * cfg_.vector_issue_clocks;

  // The scalar unit issues ahead of the pipes, so instruction issue overlaps
  // execution of the previous strip; a loop is issue-bound only when issue is
  // the slowest stage.
  return Cycles(cfg_.vector_startup_clocks +
                std::max({arith_cycles, div_cycles, mem_cycles.value(),
                          issue_cycles}));
}

}  // namespace ncar::sxs
