#include "sxs/node.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace ncar::sxs {

namespace {

/// Restores a Cpu's contention factor to 1.0 when the region body exits,
/// even by exception — otherwise a throwing body would leave the factor
/// stuck and poison every later region on that Cpu.
class ContentionScope {
public:
  ContentionScope(Cpu& cpu, double factor) : cpu_(cpu) {
    cpu_.set_contention(factor);
  }
  ~ContentionScope() { cpu_.set_contention(1.0); }

  ContentionScope(const ContentionScope&) = delete;
  ContentionScope& operator=(const ContentionScope&) = delete;

private:
  Cpu& cpu_;
};

}  // namespace

Node::Node(const MachineConfig& cfg, ExecutionPolicy policy)
    : cfg_(cfg), policy_(policy) {
  cfg_.validate();
  cpus_.reserve(static_cast<std::size_t>(cfg_.cpus_per_node));
  for (int i = 0; i < cfg_.cpus_per_node; ++i) {
    cpus_.push_back(std::make_unique<Cpu>(cfg_));
  }
}

Cpu& Node::cpu(int i) {
  NCAR_REQUIRE(i >= 0 && i < cpu_count(), "cpu index");
  return *cpus_[static_cast<std::size_t>(i)];
}

const Cpu& Node::cpu(int i) const {
  NCAR_REQUIRE(i >= 0 && i < cpu_count(), "cpu index");
  return *cpus_[static_cast<std::size_t>(i)];
}

double Node::contention_factor(int active_cpus) const {
  NCAR_REQUIRE(active_cpus >= 0, "active cpu count");
  if (active_cpus <= 1) return 1.0;
  return 1.0 + cfg_.bank_contention_per_cpu * (active_cpus - 1);
}

double Node::barrier_seconds(int ncpu) const {
  if (ncpu <= 1) return 0.0;
  const double clocks =
      cfg_.barrier_base_clocks + cfg_.barrier_per_cpu_clocks * ncpu +
      cfg_.commreg_op_clocks * 2.0;  // store-add entering, test-set leaving
  return clocks * cfg_.seconds_per_clock();
}

ThreadPool& Node::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::global();
}

double Node::parallel(int ncpu, const std::function<void(int, Cpu&)>& body) {
  NCAR_REQUIRE(ncpu >= 1 && ncpu <= cpu_count(),
               "parallel width exceeds node CPU count");
  const int active = std::min(ncpu + external_active_, cpu_count());
  const double contention = contention_factor(active);
  const double region_start_cycles =
      cfg_.to_cycles(Seconds(elapsed_)).value();

  // Each rank touches only its own Cpu, so the bodies can run on host
  // threads in any order; delta[rank] is written by exactly one rank.
  std::vector<double> delta(static_cast<std::size_t>(ncpu), 0.0);
  const auto run_rank = [&](int rank) {
    Cpu& c = *cpus_[static_cast<std::size_t>(rank)];
    const double before = c.cycles();
    // Align this rank's span track with the node wall clock.
    c.set_trace_time_offset(region_start_cycles - before);
    ContentionScope scope(c, contention);
    body(rank, c);
    delta[static_cast<std::size_t>(rank)] = c.cycles() - before;
  };

  if (policy_ == ExecutionPolicy::Threaded && ncpu > 1) {
    pool().parallel_for(ncpu, run_rank);
  } else {
    for (int rank = 0; rank < ncpu; ++rank) run_rank(rank);
  }

  // The reduction runs in rank order on the calling thread, and max is
  // insensitive to ordering anyway, so the region time is bit-identical
  // under either execution policy.
  double max_delta = 0.0;
  for (const double d : delta) max_delta = std::max(max_delta, d);

  const double barrier = barrier_seconds(ncpu);
  const double region = max_delta * cfg_.seconds_per_clock() + barrier;

  // Runtime attribution: Idle is the *mean* per-rank wait for the slowest
  // rank, so region = mean-rank-compute (Other residual) + Idle + Barrier
  // and no row can go negative. The barrier is charged to the region, not
  // to any Cpu. Recorded on the calling thread only, so tracing never
  // perturbs rank bodies.
  double idle_cycles = 0.0;
  for (const double d : delta) idle_cycles += max_delta - d;
  runtime_trace_.count_total(region);
  runtime_trace_.count(trace::Category::Idle,
                       idle_cycles / ncpu * cfg_.seconds_per_clock());
  runtime_trace_.count(trace::Category::Barrier, barrier);
  if (trace::spans_enabled(trace::mode())) {
    runtime_trace_.span(trace::Category::Barrier,
                        elapsed_ + max_delta * cfg_.seconds_per_clock(),
                        barrier, "barrier");
    for (int rank = 0; rank < ncpu; ++rank) {
      const double d = delta[static_cast<std::size_t>(rank)];
      cpus_[static_cast<std::size_t>(rank)]->trace().span(
          trace::Category::Idle, region_start_cycles + d, max_delta - d,
          "idle");
    }
  }

  elapsed_ += region;
  return region;
}

double Node::serial(const std::function<void(Cpu&)>& body) {
  Cpu& c = *cpus_.front();
  const double before = c.cycles();
  c.set_trace_time_offset(cfg_.to_cycles(Seconds(elapsed_)).value() -
                          before);
  // Memory traffic from other jobs on the node slows serial sections too.
  const int active = std::min(1 + external_active_, cpu_count());
  ContentionScope scope(c, contention_factor(active));
  body(c);
  const double region = (c.cycles() - before) * cfg_.seconds_per_clock();
  runtime_trace_.count_total(region);
  elapsed_ += region;
  return region;
}

void Node::set_external_active_cpus(int n) {
  NCAR_REQUIRE(n >= 0 && n <= cpu_count(), "external active cpus");
  external_active_ = n;
}

void Node::advance_seconds(Seconds s, trace::Category category) {
  NCAR_REQUIRE(s.value() >= 0, "negative advance");
  runtime_trace_.count_total(s.value());
  runtime_trace_.count(category, s.value());
  runtime_trace_.span(category, elapsed_, s.value(), "advance");
  elapsed_ += s.value();
}

void Node::reset() {
  elapsed_ = 0;
  external_active_ = 0;
  runtime_trace_.reset();
  for (auto& c : cpus_) c->reset();
}

std::uint64_t Node::cost_cache_hits() const {
  std::uint64_t total = 0;
  for (const auto& c : cpus_) total += c->cost_cache_hits();
  return total;
}

std::uint64_t Node::cost_cache_misses() const {
  std::uint64_t total = 0;
  for (const auto& c : cpus_) total += c->cost_cache_misses();
  return total;
}

}  // namespace ncar::sxs
