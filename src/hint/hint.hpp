#pragma once
// The HINT benchmark (Gustafson & Snell), used by the paper's section 3.3
// as a counter-example: its QUIPS metric ranks scalar workstations above
// vector supercomputers, the opposite of what NCAR's workload experiences.
//
// HINT bounds the area under y = (1-x)/(1+x) on [0,1] by interval
// subdivision: every split of the interval with the largest bound gap
// tightens the rational bounds on the integral. Quality is 1/(upper-lower);
// QUIPS is quality improvements per second. The subdivision really runs
// (the bounds are checked against the analytic area 2 ln 2 - 1); time is
// charged to the machine model as the scalar, pointer-heavy code it is.

#include "machines/comparator.hpp"

namespace ncar::hint {

struct HintResult {
  long splits = 0;
  double lower = 0;        ///< final lower bound on the area
  double upper = 0;        ///< final upper bound on the area
  double quality = 0;      ///< 1 / (upper - lower)
  double seconds = 0;      ///< simulated time on the machine model
  double mquips = 0;       ///< millions of quality improvements / second
  bool verified = false;   ///< bounds bracket the analytic area
};

/// Analytic area under (1-x)/(1+x) on [0,1]: 2 ln 2 - 1.
double analytic_area();

/// Run HINT for `splits` subdivisions on a machine model.
HintResult run_hint(machines::Comparator& machine, long splits = 100'000);

}  // namespace ncar::hint
