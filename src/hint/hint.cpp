#include "hint/hint.hpp"

#include <cmath>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace ncar::hint {

namespace {

double f(double x) { return (1.0 - x) / (1.0 + x); }

struct Interval {
  double x0, x1;  ///< interval bounds
  double f0, f1;  ///< function values (f is decreasing, so f0 >= f1)
  double gap() const { return (f0 - f1) * (x1 - x0); }
};

struct GapLess {
  bool operator()(const Interval& a, const Interval& b) const {
    return a.gap() < b.gap();
  }
};

}  // namespace

double analytic_area() { return 2.0 * std::log(2.0) - 1.0; }

HintResult run_hint(machines::Comparator& machine, long splits) {
  NCAR_REQUIRE(splits >= 1, "need at least one split");

  std::priority_queue<Interval, std::vector<Interval>, GapLess> heap;
  heap.push({0.0, 1.0, f(0.0), f(1.0)});
  // For a monotone decreasing f, lower = sum f1*w, upper = sum f0*w; track
  // the total gap (upper - lower) incrementally.
  double lower = f(1.0) * 1.0;
  double gap = heap.top().gap();

  machine.reset();
  const int kBatch = 1024;
  long done = 0;
  while (done < splits) {
    const int batch = static_cast<int>(std::min<long>(kBatch, splits - done));
    for (int b = 0; b < batch; ++b) {
      Interval iv = heap.top();
      heap.pop();
      const double xm = 0.5 * (iv.x0 + iv.x1);
      const double fm = f(xm);
      const Interval left{iv.x0, xm, iv.f0, fm};
      const Interval right{xm, iv.x1, fm, iv.f1};
      // Lower bound gains: fm on the left half (was f1 across the whole).
      lower += (fm - iv.f1) * (xm - iv.x0);
      gap += left.gap() + right.gap() - iv.gap();
      heap.push(left);
      heap.push(right);
    }
    done += batch;

    // Charge the machine for this batch of subdivision steps: the function
    // evaluation (one divide), bound updates, and heap maintenance whose
    // working set is the live interval array.
    sxs::ScalarOp op;
    op.iters = batch;
    op.flops_per_iter = 5.0;     // midpoint, bound updates
    // + the divide inside f(); count it as a flop for the scalar unit.
    op.flops_per_iter += 1.0;
    const double heap_bytes = static_cast<double>(heap.size()) * sizeof(Interval);
    op.mem_words_per_iter = 6.0;  // pop/push traffic on the interval records
    op.other_ops_per_iter = 8.0;  // compares, branches, index arithmetic
    // Only the hot top of the heap is revisited; cap the effective set.
    op.working_set_bytes = std::min(heap_bytes, 24.0 * 1024);
    op.reuse_fraction = 0.9;
    machine.scalar(op);
  }

  HintResult r;
  r.splits = splits;
  r.lower = lower;
  r.upper = lower + gap;
  r.quality = 1.0 / gap;
  r.seconds = machine.seconds().value();
  r.mquips = r.quality / r.seconds / 1e6;
  const double area = analytic_area();
  r.verified = (r.lower <= area && area <= r.upper) &&
               (r.upper - r.lower) < 1e-3;
  return r;
}

}  // namespace ncar::hint
