#pragma once
// The event calendar: an indexed binary heap of pending events.
//
// This replaces the ad-hoc drain-clock loops that used to live in
// src/prodload and src/iosim: every logical process schedules its next
// state change as an event, and one heap orders all of them. The design
// follows the OMNeT++ event-set contract (see DESIGN.md section 9):
//
//   * pop order is nondecreasing (time, priority, fifo) — deterministic
//     FIFO tie-break, never dependent on heap internals;
//   * cancel and reschedule are O(log n) true removals (an id -> heap-slot
//     index is maintained through every sift), so memory stays bounded by
//     the number of *live* events — no tombstones that a year-scale run
//     would accumulate;
//   * validate() checks the heap invariant and the id map after any
//     operation; the property tests call it after every single op.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "des/event.hpp"

namespace ncar::des {

class Calendar {
public:
  /// Schedule `fn` at absolute time `time`. Lower `priority` values pop
  /// first among same-time events; equal priorities pop FIFO.
  EventId schedule(Seconds time, int priority, std::function<void()> fn);
  EventId schedule(Seconds time, std::function<void()> fn) {
    return schedule(time, 0, std::move(fn));
  }

  /// Remove a pending event. Returns false when the handle is stale (the
  /// event already fired or was cancelled).
  bool cancel(EventId id);

  /// Move a pending event to `time`, keeping its priority and handler but
  /// taking a fresh FIFO position (identical ordering to cancel +
  /// schedule). Returns false on a stale handle.
  bool reschedule(EventId id, Seconds time);

  /// Pop the earliest event (by the full key). Precondition: !empty().
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Key of the event pop() would return next. Precondition: !empty().
  const EventKey& next_key() const;
  Seconds next_time() const { return next_key().time; }

  /// True when the event is still pending.
  bool pending(EventId id) const { return slot_.count(id.id) != 0; }

  // --- lifetime counters (deterministic; the year bench reports them) -----
  std::uint64_t scheduled() const { return scheduled_; }
  std::uint64_t cancelled() const { return cancelled_; }
  std::uint64_t popped() const { return popped_; }

  /// Full structural check: heap order on every parent/child edge plus
  /// id-map consistency. O(n); meant for tests, not hot paths.
  bool validate() const;

private:
  struct Entry {
    EventKey key;
    std::uint64_t id = 0;
    std::function<void()> fn;
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Entry&& e);
  std::size_t remove_at(std::size_t i, Entry& out);

  std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, std::size_t> slot_;  ///< id -> heap index
  std::uint64_t next_id_ = 1;
  std::uint64_t next_fifo_ = 1;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace ncar::des
