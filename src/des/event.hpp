#pragma once
// Event-calendar primitives for the discrete-event simulation kernel.
//
// An event is a callback scheduled at an absolute simulated time with a
// small integer priority. The calendar pops events in nondecreasing
// (time, priority, fifo) order: earlier time first, then lower priority
// value, then admission order (FIFO). The fifo counter is assigned at
// schedule time and refreshed by a reschedule, so a rescheduled event
// behaves exactly like cancel-then-schedule at its new time.
//
// EventId is an opaque handle that stays valid until the event fires or is
// cancelled; a default-constructed id never names a live event.

#include <cstdint>
#include <functional>

#include "common/quantity.hpp"

namespace ncar::des {

/// Handle to a scheduled event. Ids are unique over the lifetime of one
/// Calendar and are never reused, so a stale handle is always detected.
struct EventId {
  std::uint64_t id = 0;  ///< 0 == "no event"

  constexpr bool valid() const { return id != 0; }
  friend constexpr bool operator==(EventId a, EventId b) {
    return a.id == b.id;
  }
};

/// The strict weak order of the calendar, exposed so tests can assert it.
struct EventKey {
  Seconds time{};
  int priority = 0;       ///< lower value pops first at equal time
  std::uint64_t fifo = 0; ///< admission order breaks remaining ties

  friend constexpr bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.fifo < b.fifo;
  }
};

/// A popped calendar entry: the key it was ordered by, its handle, and the
/// handler to run.
struct Event {
  EventKey key;
  EventId id;
  std::function<void()> fn;
};

}  // namespace ncar::des
