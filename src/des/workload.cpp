#include "des/workload.hpp"

#include <utility>

#include "common/error.hpp"

namespace ncar::des {

void WorkloadConfig::validate() const {
  NCAR_REQUIRE(!classes.empty(), "workload needs at least one job class");
  for (const auto& jc : classes) {
    NCAR_REQUIRE(!jc.name.empty(), "job class needs a name");
    NCAR_REQUIRE(jc.cpus >= 1, "job class CPU width");
    NCAR_REQUIRE(jc.mean_service_s > 0, "job class mean service time");
    NCAR_REQUIRE(jc.tail_fraction >= 0 && jc.tail_fraction <= 1,
                 "tail fraction is a probability");
    NCAR_REQUIRE(jc.tail_shape > 0, "tail shape");
    NCAR_REQUIRE(jc.tail_cap_s > jc.mean_service_s,
                 "tail cap must exceed the mean service time");
  }
  if (!transition.empty()) {
    NCAR_REQUIRE(transition.size() == classes.size(),
                 "transition matrix must have one row per class");
    for (const auto& row : transition) {
      NCAR_REQUIRE(row.size() == classes.size(),
                   "transition rows must have one entry per class");
      double total = 0;
      for (const double w : row) {
        NCAR_REQUIRE(w >= 0, "transition weights are nonnegative");
        total += w;
      }
      NCAR_REQUIRE(total > 0, "transition rows need a positive total");
    }
  }
  NCAR_REQUIRE(mean_interarrival_s > 0, "mean interarrival");
  NCAR_REQUIRE(burst_rate_multiplier >= 1, "burst multiplier");
  NCAR_REQUIRE(mean_calm_s > 0 && mean_burst_s > 0, "phase durations");
  NCAR_REQUIRE(failure_prob >= 0 && failure_prob <= 1, "failure probability");
  NCAR_REQUIRE(storm_failure_prob >= 0 && storm_failure_prob <= 1,
               "storm failure probability");
  NCAR_REQUIRE(mean_storm_gap_s > 0 && mean_storm_s > 0, "storm durations");
  NCAR_REQUIRE(mean_retry_delay_s > 0, "retry delay");
  NCAR_REQUIRE(max_retries >= 0, "retry budget");
}

WorkloadGenerator::WorkloadGenerator(Simulation& sim, WorkloadConfig cfg,
                                     Sink sink)
    : sim_(sim), cfg_(std::move(cfg)), sink_(std::move(sink)) {
  cfg_.validate();
  NCAR_REQUIRE(static_cast<bool>(sink_), "workload generator needs a sink");
}

void WorkloadGenerator::start(Seconds horizon) {
  NCAR_REQUIRE(!started_, "generator already started");
  NCAR_REQUIRE(horizon > sim_.now(), "horizon must lie ahead");
  started_ = true;
  horizon_ = horizon;
  schedule_next_arrival();
  schedule_phase_flip();
  schedule_storm_edge();
}

int WorkloadGenerator::draw_next_class() {
  RngStream& mix = sim_.rng("jobmix");
  if (cfg_.transition.empty()) {
    return static_cast<int>(mix.next_below(cfg_.classes.size()));
  }
  const auto& row = cfg_.transition[static_cast<std::size_t>(current_class_)];
  return static_cast<int>(mix.weighted_choice(row.data(), row.size()));
}

Seconds WorkloadGenerator::draw_service(const JobClass& jc) {
  // Two draws per job, always: tail-or-body selector, then the variate
  // from whichever distribution won — a fixed draw count keeps the
  // "service" stream's counter a pure function of the job count.
  RngStream& svc = sim_.rng("service");
  const bool tail = svc.next_double() < jc.tail_fraction;
  const double scale = jc.mean_service_s / 2.0;
  return Seconds(tail
                     ? svc.bounded_pareto(jc.tail_shape, scale, jc.tail_cap_s)
                     : svc.exponential(jc.mean_service_s));
}

void WorkloadGenerator::schedule_next_arrival() {
  RngStream& arr = sim_.rng("arrival");
  const double mean = in_burst_
                          ? cfg_.mean_interarrival_s / cfg_.burst_rate_multiplier
                          : cfg_.mean_interarrival_s;
  const Seconds gap(arr.exponential(mean));
  const Seconds t = sim_.now() + gap;
  if (t > horizon_) return;  // generation ends; in-flight work drains
  sim_.at(t, [this] {
    current_class_ = draw_next_class();
    const JobClass& jc =
        cfg_.classes[static_cast<std::size_t>(current_class_)];
    SyntheticJob job;
    job.id = next_job_id_++;
    job.job_class = current_class_;
    job.attempt = 0;
    job.arrival = sim_.now();
    job.service = draw_service(jc);
    emit(job);
    schedule_next_arrival();
  });
}

void WorkloadGenerator::schedule_phase_flip() {
  RngStream& phase = sim_.rng("phase");
  const double mean = in_burst_ ? cfg_.mean_burst_s : cfg_.mean_calm_s;
  const Seconds t = sim_.now() + Seconds(phase.exponential(mean));
  if (t > horizon_) return;
  sim_.at(t, [this] {
    in_burst_ = !in_burst_;
    if (in_burst_) ++bursts_;
    schedule_phase_flip();
  });
}

void WorkloadGenerator::schedule_storm_edge() {
  RngStream& phase = sim_.rng("phase");
  const double mean = in_storm_ ? cfg_.mean_storm_s : cfg_.mean_storm_gap_s;
  const Seconds t = sim_.now() + Seconds(phase.exponential(mean));
  if (t > horizon_) return;
  sim_.at(t, [this] {
    in_storm_ = !in_storm_;
    if (in_storm_) ++storms_;
    schedule_storm_edge();
  });
}

void WorkloadGenerator::emit(SyntheticJob job) {
  if (job.attempt == 0) ++jobs_emitted_;
  else ++retries_emitted_;
  sink_(job);
}

bool WorkloadGenerator::draw_failure() {
  const double p = in_storm_ ? cfg_.storm_failure_prob : cfg_.failure_prob;
  return sim_.rng("failure").next_double() < p;
}

bool WorkloadGenerator::report_failure(const SyntheticJob& job) {
  if (job.attempt >= cfg_.max_retries) {
    ++retries_abandoned_;
    return false;
  }
  SyntheticJob retry = job;
  ++retry.attempt;
  const Seconds delay(
      sim_.rng("failure").exponential(cfg_.mean_retry_delay_s));
  sim_.in(delay, [this, retry]() mutable {
    retry.arrival = sim_.now();
    emit(retry);
  });
  return true;
}

}  // namespace ncar::des
