#pragma once
// Named per-stream deterministic random numbers for the DES kernel.
//
// The OMNeT++ lesson (SNIPPETS.md snippet 3): every model component draws
// from its *own* named stream, so adding a component — or reordering event
// execution — never perturbs anyone else's draws. Two properties make that
// hold here:
//
//   * a stream's key is a pure function of (registry seed, stream name) —
//     creation order and lookup order are irrelevant;
//   * the generator is counter-based (the splitmix64 construction: draw n
//     of key k is finalize(k + (n+1)*PHI)), so draw n depends only on the
//     stream key and n, never on other streams' state. Interleaving any
//     number of draws on stream B between draws on stream A leaves A's
//     sequence byte-identical, and skip-ahead is O(1).
//
// All distribution helpers consume a fixed number of u64 draws per call
// (inverse-transform, never rejection) so `draws()` is a pure function of
// the call sequence — the determinism tests rely on that.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ncar::des {

/// One named, counter-based random stream. Cheap to copy; copies continue
/// the counter independently (tests use this for replay).
class RngStream {
public:
  RngStream() = default;
  RngStream(std::string name, std::uint64_t key)
      : name_(std::move(name)), key_(key) {}

  const std::string& name() const { return name_; }
  std::uint64_t key() const { return key_; }
  /// Number of u64 draws consumed so far.
  std::uint64_t draws() const { return counter_; }

  /// Draw counter `n` of this stream, without advancing (pure function).
  std::uint64_t at(std::uint64_t n) const;

  std::uint64_t next_u64() { return at(counter_++); }

  /// Skip `n` draws in O(1) — counter-based generators jump for free.
  void skip(std::uint64_t n) { counter_ += n; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in (0, 1] (safe as a log() argument).
  double next_double_nonzero() {
    return static_cast<double>((next_u64() >> 11) + 1) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }
  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Exponential with the given mean (one draw).
  double exponential(double mean);
  /// Pareto (heavy tail): P(X > x) = (scale/x)^shape for x >= scale.
  double pareto(double shape, double scale);
  /// Bounded Pareto on [scale, cap] — heavy-tailed service times whose
  /// worst case cannot blow up a year-scale run (one draw).
  double bounded_pareto(double shape, double scale, double cap);
  /// Poisson via inversion by sequential search (one draw). Meant for
  /// small means (batch sizes); cost is O(mean).
  long poisson(double mean);
  /// Weighted choice: index i with probability weights[i] / sum (one
  /// draw). Precondition: n > 0, nonnegative weights, positive sum.
  std::size_t weighted_choice(const double* weights, std::size_t n);

private:
  std::string name_;
  std::uint64_t key_ = 0;
  std::uint64_t counter_ = 0;
};

/// The registry: hands out streams by name, creating them on first use.
/// References are stable for the registry's lifetime.
class RngRegistry {
public:
  explicit RngRegistry(std::uint64_t seed) : seed_(seed) {}

  /// The stream named `name` (created on first use). The stream's key —
  /// hence its entire sequence — depends only on (seed, name).
  RngStream& stream(std::string_view name);

  std::uint64_t seed() const { return seed_; }
  std::size_t stream_count() const { return streams_.size(); }

  /// The key `stream(name)` would use, without creating anything.
  static std::uint64_t derive_key(std::uint64_t seed, std::string_view name);

private:
  std::uint64_t seed_;
  std::map<std::string, RngStream, std::less<>> streams_;
};

}  // namespace ncar::des
