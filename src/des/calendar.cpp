#include "des/calendar.hpp"

#include <utility>

#include "common/error.hpp"

namespace ncar::des {

EventId Calendar::schedule(Seconds time, int priority,
                           std::function<void()> fn) {
  NCAR_REQUIRE(static_cast<bool>(fn), "event needs a handler");
  Entry e;
  e.key = EventKey{time, priority, next_fifo_++};
  e.id = next_id_++;
  e.fn = std::move(fn);
  const EventId id{e.id};
  heap_.push_back(std::move(e));
  slot_[id.id] = heap_.size() - 1;
  sift_up(heap_.size() - 1);
  ++scheduled_;
  return id;
}

bool Calendar::cancel(EventId id) {
  const auto it = slot_.find(id.id);
  if (it == slot_.end()) return false;
  Entry dropped;
  remove_at(it->second, dropped);
  ++cancelled_;
  return true;
}

bool Calendar::reschedule(EventId id, Seconds time) {
  const auto it = slot_.find(id.id);
  if (it == slot_.end()) return false;
  Entry e;
  const std::size_t i = remove_at(it->second, e);
  e.key.time = time;
  e.key.fifo = next_fifo_++;  // fresh FIFO position, like cancel + schedule
  // Reinsert; `i` only tells us removal compacted the heap, the reinsert
  // goes through the normal push path to keep one code path correct.
  (void)i;
  heap_.push_back(std::move(e));
  slot_[id.id] = heap_.size() - 1;
  sift_up(heap_.size() - 1);
  return true;
}

Event Calendar::pop() {
  NCAR_REQUIRE(!heap_.empty(), "pop on an empty calendar");
  Entry e;
  remove_at(0, e);
  ++popped_;
  return Event{e.key, EventId{e.id}, std::move(e.fn)};
}

const EventKey& Calendar::next_key() const {
  NCAR_REQUIRE(!heap_.empty(), "next_key on an empty calendar");
  return heap_.front().key;
}

void Calendar::place(std::size_t i, Entry&& e) {
  slot_[e.id] = i;
  heap_[i] = std::move(e);
}

void Calendar::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(e.key < heap_[parent].key)) break;
    place(i, std::move(heap_[parent]));
    i = parent;
  }
  place(i, std::move(e));
}

void Calendar::sift_down(std::size_t i) {
  Entry e = std::move(heap_[i]);
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].key < heap_[child].key) ++child;
    if (!(heap_[child].key < e.key)) break;
    place(i, std::move(heap_[child]));
    i = child;
  }
  place(i, std::move(e));
}

std::size_t Calendar::remove_at(std::size_t i, Entry& out) {
  out = std::move(heap_[i]);
  slot_.erase(out.id);
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    heap_[i] = std::move(heap_[last]);
    slot_[heap_[i].id] = i;
    heap_.pop_back();
    // The moved-in entry may need to go either way relative to `i`.
    if (i > 0 && heap_[i].key < heap_[(i - 1) / 2].key) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  } else {
    heap_.pop_back();
  }
  return i;
}

bool Calendar::validate() const {
  if (slot_.size() != heap_.size()) return false;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const auto it = slot_.find(heap_[i].id);
    if (it == slot_.end() || it->second != i) return false;
    if (i > 0 && heap_[i].key < heap_[(i - 1) / 2].key) return false;
    if (!heap_[i].fn) return false;
  }
  return true;
}

}  // namespace ncar::des
