#pragma once
// Synthetic multi-tenant workload generation for year-scale PRODLOAD runs.
//
// The paper's PRODLOAD replays one fixed 93-minute trace; evaluating a
// center-scale machine needs the workload *model* behind such traces
// (OMI4papps-style): a Markov chain over job classes (which job follows
// which), a Markov-modulated Poisson arrival process (calm/burst phases),
// heavy-tailed service times, and failure/retry storms. Every stochastic
// choice draws from its own named RNG stream ("arrival", "jobmix",
// "service", "failure", "phase"), so the generated job sequence is
// byte-identical no matter how the consuming simulation interleaves its
// own events — the foundation of the prodload_year determinism guarantee.
//
// The generator is a logical process: it schedules one arrival event at a
// time (bounded memory regardless of horizon) and hands each job to a
// sink callback; the sink decides what "running a job" means (the year
// bench routes them into an NQS queue complex on a shared DesNode).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "des/simulation.hpp"

namespace ncar::des {

/// One job class of the mix: a CPU width, a service-time distribution
/// (exponential body with a bounded-Pareto tail), and the NQS queue the
/// class is submitted to.
struct JobClass {
  std::string name;
  std::string queue;         ///< target queue name
  int cpus = 1;
  double mean_service_s = 600.0;
  double tail_fraction = 0.1;   ///< fraction of jobs drawn from the tail
  double tail_shape = 1.5;      ///< bounded-Pareto shape (heavier when small)
  double tail_cap_s = 86400.0;  ///< hard cap on one service time
  int priority = 0;
};

struct WorkloadConfig {
  std::vector<JobClass> classes;
  /// Row-stochastic Markov transition weights between classes; entry
  /// [i][j] is the (unnormalised) weight of class j following class i.
  /// Empty means independent draws with equal weights.
  std::vector<std::vector<double>> transition;

  // --- arrivals: Markov-modulated Poisson -------------------------------
  double mean_interarrival_s = 120.0;  ///< calm-phase mean interarrival
  double burst_rate_multiplier = 6.0;  ///< burst phase is this much hotter
  double mean_calm_s = 4.0 * 3600;     ///< mean calm-phase duration
  double mean_burst_s = 20.0 * 60;     ///< mean burst-phase duration

  // --- failures and retry storms ----------------------------------------
  double failure_prob = 0.01;        ///< per-completion failure, calm
  double storm_failure_prob = 0.25;  ///< per-completion failure, storm
  double mean_storm_gap_s = 30.0 * 86400;  ///< mean time between storms
  double mean_storm_s = 2.0 * 3600;        ///< mean storm duration
  double mean_retry_delay_s = 300.0;
  int max_retries = 3;

  void validate() const;  ///< throws ncar::config_error on nonsense
};

/// One generated arrival, handed to the sink at its arrival event.
struct SyntheticJob {
  std::uint64_t id = 0;
  int job_class = 0;   ///< index into WorkloadConfig::classes
  int attempt = 0;     ///< 0 = first submission, >0 = retry
  Seconds arrival{};
  Seconds service{};
};

class WorkloadGenerator {
public:
  using Sink = std::function<void(const SyntheticJob&)>;

  /// Starts generating arrivals on `sim` from now() until `horizon`; jobs
  /// are delivered to `sink` at their arrival events. The generator must
  /// outlive the simulation run.
  WorkloadGenerator(Simulation& sim, WorkloadConfig cfg, Sink sink);

  /// Report a completed job as failed; schedules a retry (same class and
  /// service time, attempt+1) after a random delay unless the retry
  /// budget is spent. Returns true when a retry was scheduled.
  bool report_failure(const SyntheticJob& job);

  /// Draw from the "failure" stream: does this completion fail? (Elevated
  /// probability while a failure storm is active.)
  bool draw_failure();

  void start(Seconds horizon);

  // --- state & statistics (deterministic) --------------------------------
  bool in_burst() const { return in_burst_; }
  bool in_storm() const { return in_storm_; }
  std::uint64_t jobs_emitted() const { return jobs_emitted_; }
  std::uint64_t retries_emitted() const { return retries_emitted_; }
  std::uint64_t retries_abandoned() const { return retries_abandoned_; }
  std::uint64_t bursts() const { return bursts_; }
  std::uint64_t storms() const { return storms_; }

private:
  void schedule_next_arrival();
  void schedule_phase_flip();
  void schedule_storm_edge();
  void emit(SyntheticJob job);
  int draw_next_class();
  Seconds draw_service(const JobClass& jc);

  Simulation& sim_;
  WorkloadConfig cfg_;
  Sink sink_;
  Seconds horizon_{};
  bool started_ = false;
  bool in_burst_ = false;
  bool in_storm_ = false;
  int current_class_ = 0;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t jobs_emitted_ = 0;
  std::uint64_t retries_emitted_ = 0;
  std::uint64_t retries_abandoned_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t storms_ = 0;
};

}  // namespace ncar::des
