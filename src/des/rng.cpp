#include "des/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ncar::des {

namespace {

constexpr std::uint64_t kPhi = 0x9e3779b97f4a7c15ull;

/// The splitmix64 finalizer (Steele, Lea & Flood) — a 64-bit bijection
/// with full avalanche; the same mixer common/rng.hpp uses for seeding.
constexpr std::uint64_t finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// FNV-1a over the stream name: stable across platforms and runs.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint64_t RngStream::at(std::uint64_t n) const {
  // splitmix64 seeded at the stream key: state n is key + (n+1)*PHI.
  return finalize(key_ + (n + 1) * kPhi);
}

std::uint64_t RngStream::next_below(std::uint64_t n) {
  NCAR_REQUIRE(n > 0, "next_below needs a positive bound");
  // Modulo bias is negligible for the bounds this codebase uses (same
  // justification as common/rng.hpp), and keeps the draw count fixed.
  return next_u64() % n;
}

double RngStream::exponential(double mean) {
  NCAR_REQUIRE(mean > 0, "exponential mean must be positive");
  return -mean * std::log(next_double_nonzero());
}

double RngStream::pareto(double shape, double scale) {
  NCAR_REQUIRE(shape > 0 && scale > 0, "pareto parameters must be positive");
  return scale / std::pow(next_double_nonzero(), 1.0 / shape);
}

double RngStream::bounded_pareto(double shape, double scale, double cap) {
  NCAR_REQUIRE(shape > 0 && scale > 0 && cap > scale,
               "bounded pareto needs shape>0, 0<scale<cap");
  // Inverse transform of the truncated CDF; exactly one draw.
  const double la = std::pow(scale, shape);
  const double ha = std::pow(cap, shape);
  const double u = next_double();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
}

long RngStream::poisson(double mean) {
  NCAR_REQUIRE(mean > 0, "poisson mean must be positive");
  // Inversion by sequential search on one uniform draw: deterministic
  // draw count, O(mean) arithmetic.
  const double u = next_double();
  double p = std::exp(-mean);
  double cdf = p;
  long k = 0;
  while (u > cdf && k < 10000) {
    ++k;
    p *= mean / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

std::size_t RngStream::weighted_choice(const double* weights, std::size_t n) {
  NCAR_REQUIRE(n > 0, "weighted_choice needs at least one weight");
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    NCAR_REQUIRE(weights[i] >= 0, "weights must be nonnegative");
    total += weights[i];
  }
  NCAR_REQUIRE(total > 0, "weights must not all be zero");
  const double x = next_double() * total;
  double acc = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return n - 1;
}

std::uint64_t RngRegistry::derive_key(std::uint64_t seed,
                                      std::string_view name) {
  // Two finalizer rounds decorrelate related (seed, name) pairs; the name
  // hash lands between them so neither input can cancel the other.
  return finalize(finalize(seed ^ kPhi) ^ fnv1a(name));
}

RngStream& RngRegistry::stream(std::string_view name) {
  const auto it = streams_.find(name);
  if (it != streams_.end()) return it->second;
  std::string key(name);
  auto [pos, inserted] = streams_.emplace(
      key, RngStream(key, derive_key(seed_, name)));
  return pos->second;
}

}  // namespace ncar::des
