#pragma once
// Simulation — the DES kernel façade: one clock, one event calendar, one
// RNG registry.
//
// Logical processes (the prodload node, NQS queue complexes, the iosim
// device adapters, the synthetic workload generator) hold a Simulation&
// and talk to each other only through scheduled events, so simulated time
// advances monotonically no matter how many processes interleave. The
// clock is typed (Seconds); scheduling into the past is a precondition
// error, not a silent reordering.
//
// Determinism contract: with the same seed and the same sequence of
// schedule/cancel calls, run() executes the same events in the same order
// and every named RNG stream produces the same draws — independent of
// host threading, allocation addresses, or stream creation order. The
// tests in tests/des/ pin this.

#include <cstdint>
#include <string_view>

#include "des/calendar.hpp"
#include "des/rng.hpp"

namespace ncar::des {

class Simulation {
public:
  explicit Simulation(std::uint64_t seed = 0x5eed'5eed'5eed'5eedull)
      : rng_(seed) {}

  // --- clock ---------------------------------------------------------------
  Seconds now() const { return now_; }

  // --- scheduling ----------------------------------------------------------
  /// Schedule at an absolute time (>= now()).
  EventId at(Seconds time, std::function<void()> fn) {
    return at(time, 0, std::move(fn));
  }
  EventId at(Seconds time, int priority, std::function<void()> fn);
  /// Schedule `delay` after now().
  EventId in(Seconds delay, std::function<void()> fn) {
    return in(delay, 0, std::move(fn));
  }
  EventId in(Seconds delay, int priority, std::function<void()> fn);

  bool cancel(EventId id) { return calendar_.cancel(id); }
  bool reschedule(EventId id, Seconds time);

  // --- execution -----------------------------------------------------------
  /// Run until the calendar is empty or stop() is called. Returns the
  /// number of events executed by this call.
  std::uint64_t run();
  /// Execute every event with time <= `until`, then advance the clock to
  /// `until` (even if no event lands there). Returns events executed.
  std::uint64_t run_until(Seconds until);
  /// From inside a handler: stop after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Events executed over the simulation's lifetime (the year bench's
  /// events/sec denominator).
  std::uint64_t events_executed() const { return executed_; }

  // --- randomness ----------------------------------------------------------
  /// The named RNG stream (see des/rng.hpp for the independence contract).
  RngStream& rng(std::string_view name) { return rng_.stream(name); }
  RngRegistry& rng_registry() { return rng_; }

  Calendar& calendar() { return calendar_; }
  const Calendar& calendar() const { return calendar_; }

private:
  void execute(Event&& ev);

  Calendar calendar_;
  RngRegistry rng_;
  Seconds now_{};
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace ncar::des
