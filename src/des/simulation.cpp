#include "des/simulation.hpp"

#include <utility>

#include "common/error.hpp"

namespace ncar::des {

EventId Simulation::at(Seconds time, int priority, std::function<void()> fn) {
  NCAR_REQUIRE(time >= now_, "cannot schedule into the simulated past");
  return calendar_.schedule(time, priority, std::move(fn));
}

EventId Simulation::in(Seconds delay, int priority, std::function<void()> fn) {
  NCAR_REQUIRE(delay >= Seconds(0.0), "negative event delay");
  return calendar_.schedule(now_ + delay, priority, std::move(fn));
}

bool Simulation::reschedule(EventId id, Seconds time) {
  NCAR_REQUIRE(time >= now_, "cannot reschedule into the simulated past");
  return calendar_.reschedule(id, time);
}

void Simulation::execute(Event&& ev) {
  // The calendar orders events; the clock only ever moves forward.
  NCAR_REQUIRE(ev.key.time >= now_, "event calendar ordering violated");
  now_ = ev.key.time;
  ++executed_;
  ev.fn();
}

std::uint64_t Simulation::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!calendar_.empty() && !stopped_) {
    execute(calendar_.pop());
    ++n;
  }
  return n;
}

std::uint64_t Simulation::run_until(Seconds until) {
  NCAR_REQUIRE(until >= now_, "cannot run backwards");
  stopped_ = false;
  std::uint64_t n = 0;
  while (!calendar_.empty() && !stopped_ &&
         calendar_.next_time() <= until) {
    execute(calendar_.pop());
    ++n;
  }
  if (!stopped_ && now_ < until) now_ = until;
  return n;
}

}  // namespace ncar::des
