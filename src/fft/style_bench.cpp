#include "fft/style_bench.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fft/real_fft.hpp"

namespace ncar::fft {

namespace {

/// Real flops for one radix-f complex combine butterfly (twiddle multiply
/// plus the small-DFT adds), the count used consistently for charging and
/// for the reported Mflops.
double butterfly_flops(int f) {
  switch (f) {
    case 2: return 10.0;
    case 3: return 32.0;
    case 5: return 76.0;
    default: throw ncar::precondition_error("unsupported radix");
  }
}

/// Execute `check` real forward transforms and verify them against the
/// naive DFT; returns false on any mismatch.
bool verify_numerics(long n, int check) {
  Plan plan(n);
  Rng rng(static_cast<std::uint64_t>(n) * 977 + 13);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<cd> spec(static_cast<std::size_t>(spectrum_size(n)));
  std::vector<cd> cin(static_cast<std::size_t>(n)),
      cref(static_cast<std::size_t>(n));
  for (int inst = 0; inst < check; ++inst) {
    for (long j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] = rng.uniform(-1.0, 1.0);
      cin[static_cast<std::size_t>(j)] = cd(x[static_cast<std::size_t>(j)], 0);
    }
    real_forward(plan, x, spec);
    naive_dft(cin, cref, false);
    for (long k = 0; k < spectrum_size(n); ++k) {
      const double err = std::abs(spec[static_cast<std::size_t>(k)] -
                                  cref[static_cast<std::size_t>(k)]);
      if (err > 1e-8 * std::max(1.0, static_cast<double>(n))) return false;
    }
    // Round trip.
    std::vector<double> back(static_cast<std::size_t>(n));
    real_inverse(plan, spec, back);
    if (max_abs_diff(back, x) > 1e-10 * static_cast<double>(n)) return false;
  }
  return true;
}

}  // namespace

double rfft_flops(long n) {
  Plan plan(n);
  double flops = 0;
  for (int f : plan.factors()) {
    flops += static_cast<double>(n / f) * butterfly_flops(f);
  }
  return 0.5 * flops;  // real transform: half the complex work
}

FftPoint run_rfft(sxs::Cpu& cpu, long n, long m, int ktries) {
  NCAR_REQUIRE(n >= 2 && m >= 1, "RFFT shape");
  NCAR_REQUIRE(Plan::supported(n), "length must factor into 2, 3, 5");
  NCAR_REQUIRE(ktries >= 1, "KTRIES");

  const bool ok = verify_numerics(n, static_cast<int>(std::min<long>(m, 2)));

  // Charging: FFTPACK processes one sequence at a time. At the stage with
  // factor f, l1 = product of factors already done and ido = n/(l1*f); the
  // compiler vectorises the longer of the two loops, at non-unit stride
  // (the butterfly legs are l1*ido apart and twiddles are gathered). Real
  // transforms do half the complex work.
  Plan plan(n);
  BestOf best;
  for (int t = 0; t < ktries; ++t) {
    const double before = cpu.cycles();
    long l1 = 1;
    for (int f : plan.factors()) {
      const long ido = n / (l1 * f);
      const long vlen = std::max<long>(std::max(l1, ido), 1);
      const long reps = std::max<long>((n / f) / vlen, 1);
      // FFTPACK works on separate real and imaginary arrays, so every
      // butterfly group is two vector instruction sequences (one per
      // component), each moving half the complex traffic — twice the
      // startup exposure, which is what kills short-vector FFTs.
      sxs::VectorOp op;
      op.n = vlen;
      op.flops_per_elem = 0.25 * butterfly_flops(f);
      op.load_words = 0.5 * static_cast<double>(f);  // butterfly legs
      op.load_stride = std::max<long>(l1 * f, 2);    // legs are l1 apart
      op.store_words = 0.5 * static_cast<double>(f);
      op.store_stride = std::max<long>(ido, 2);
      op.gather_words = 0.5;                         // twiddle table access
      op.pipe_groups = 2;
      cpu.vec(op, 2 * reps * m);
      l1 *= f;
    }
    best.add_time((cpu.cycles() - before) * cpu.config().seconds_per_clock());
  }

  FftPoint p;
  p.n = n;
  p.m = m;
  p.seconds = best.best_time();
  p.mflops = rfft_flops(n) * static_cast<double>(m) / p.seconds / 1e6;
  p.verified = ok;
  return p;
}

FftPoint run_vfft(sxs::Cpu& cpu, long n, long m, int ktries) {
  NCAR_REQUIRE(n >= 2 && m >= 1, "VFFT shape");
  NCAR_REQUIRE(Plan::supported(n), "length must factor into 2, 3, 5");
  NCAR_REQUIRE(ktries >= 1, "KTRIES");

  const bool ok = verify_numerics(n, 2);

  // Charging: with a(M, N) the instance axis is contiguous; every butterfly
  // is one vector operation of length M at unit stride, and there are n/f
  // butterflies per stage. Twiddles are scalar-broadcast (free streams).
  Plan plan(n);
  BestOf best;
  for (int t = 0; t < ktries; ++t) {
    const double before = cpu.cycles();
    for (int f : plan.factors()) {
      sxs::VectorOp op;
      op.n = m;
      op.flops_per_elem = 0.5 * butterfly_flops(f);
      op.load_words = static_cast<double>(f);
      op.store_words = static_cast<double>(f);
      op.pipe_groups = 2;
      cpu.vec(op, n / f);
    }
    best.add_time((cpu.cycles() - before) * cpu.config().seconds_per_clock());
  }

  FftPoint p;
  p.n = n;
  p.m = m;
  p.seconds = best.best_time();
  p.mflops = rfft_flops(n) * static_cast<double>(m) / p.seconds / 1e6;
  p.verified = ok;
  return p;
}

std::vector<std::pair<long, long>> rfft_schedule(long total) {
  std::vector<std::pair<long, long>> out;
  auto add = [&](long n) {
    out.emplace_back(n, std::min<long>(500'000, std::max<long>(1, total / n)));
  };
  for (int e = 1; e <= 10; ++e) add(1L << e);           // 2 .. 1024
  for (int e = 0; e <= 8; ++e) add(3L * (1L << e));     // 3 .. 768
  for (int e = 0; e <= 8; ++e) add(5L * (1L << e));     // 5 .. 1280
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<long> vfft_lengths() {
  std::vector<long> out;
  for (int e : {2, 4, 6, 7, 8, 9}) out.push_back(1L << e);
  for (int e : {0, 2, 4, 6, 8}) out.push_back(3L * (1L << e));
  for (int e : {0, 2, 4, 6, 8}) out.push_back(5L * (1L << e));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<long> vfft_instances() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500};
}

}  // namespace ncar::fft
