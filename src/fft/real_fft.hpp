#pragma once
// Real-to-complex FFT on top of the mixed-radix complex transform.
//
// FFTPACK's RFFTF/RFFTB pair: forward takes n reals to the n/2+1
// non-redundant spectrum bins; backward reconstructs the reals (normalised
// here, unlike raw FFTPACK, so forward-then-inverse is the identity).

#include <complex>
#include <span>

#include "fft/complex_fft.hpp"

namespace ncar::fft {

/// Number of non-redundant spectrum bins for a length-n real transform.
inline long spectrum_size(long n) { return n / 2 + 1; }

/// Forward real transform: out[k] = sum_j in[j] exp(-2 pi i jk/n),
/// k = 0 .. n/2. `out` must have spectrum_size(n) entries.
void real_forward(const Plan& plan, std::span<const double> in,
                  std::span<cd> out);

/// Inverse of real_forward (normalised): recovers the original reals.
void real_inverse(const Plan& plan, std::span<const cd> in,
                  std::span<double> out);

}  // namespace ncar::fft
