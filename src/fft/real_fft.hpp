#pragma once
// Real-to-complex FFT on top of the mixed-radix complex transform.
//
// FFTPACK's RFFTF/RFFTB pair: forward takes n reals to the n/2+1
// non-redundant spectrum bins; backward reconstructs the reals (normalised
// here, unlike raw FFTPACK, so forward-then-inverse is the identity).
//
// Each transform needs 2n complex values of workspace. The Arena overloads
// take it from a caller-owned pool (allocation-free hot path); the plain
// overloads keep a local vector for callers without an arena.

#include <complex>
#include <span>

#include "common/arena.hpp"
#include "fft/complex_fft.hpp"

namespace ncar::fft {

/// Number of non-redundant spectrum bins for a length-n real transform.
inline long spectrum_size(long n) { return n / 2 + 1; }

/// Workspace doubles an Arena must have free for a length-n real transform.
inline std::size_t real_fft_arena_doubles(long n) {
  return 4 * static_cast<std::size_t>(n);
}

/// Forward real transform: out[k] = sum_j in[j] exp(-2 pi i jk/n),
/// k = 0 .. n/2. `out` must have spectrum_size(n) entries.
void real_forward(const Plan& plan, std::span<const double> in,
                  std::span<cd> out);
void real_forward(const Plan& plan, std::span<const double> in,
                  std::span<cd> out, Arena& arena);

/// Inverse of real_forward (normalised): recovers the original reals.
void real_inverse(const Plan& plan, std::span<const cd> in,
                  std::span<double> out);
void real_inverse(const Plan& plan, std::span<const cd> in,
                  std::span<double> out, Arena& arena);

}  // namespace ncar::fft
