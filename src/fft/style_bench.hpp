#pragma once
// RFFT / VFFT — the coding-style comparison benchmarks (paper section 4.3).
//
// Both compute multi-instance real FFTs from FFTPACK; the ONLY difference
// is loop order. RFFT (array a(N, M), FFT axis fastest) transforms one
// sequence at a time — the style suited to cache-based processors, which on
// a vector machine yields short, strided vector operations. VFFT (array
// a(M, N), instance axis fastest) performs each butterfly across all M
// instances at unit stride — long vectors, the style the SX-4 wants. The
// paper's conclusion: VFFT runs about an order of magnitude faster.
//
// The numerics run for real on a bounded number of instances and are
// verified against the naive DFT; the machine model is charged with the
// stage-by-stage loop structure of each style.

#include <vector>

#include "sxs/cpu.hpp"

namespace ncar::fft {

struct FftPoint {
  long n = 0;        ///< FFT axis length
  long m = 0;        ///< instance count
  double seconds = 0;
  double mflops = 0;
  bool verified = false;
};

/// Flop count for one length-n real transform under the mixed-radix
/// factorisation (the convention used for the Mflops reported here).
double rfft_flops(long n);

/// RFFT: scalar-style, one sequence at a time (a(N, M) layout).
FftPoint run_rfft(sxs::Cpu& cpu, long n, long m, int ktries = 20);

/// VFFT: vector-style, all instances per butterfly (a(M, N) layout).
FftPoint run_vfft(sxs::Cpu& cpu, long n, long m, int ktries = 5);

/// The paper's RFFT length families: 2^n (n=1..10), 3*2^n and 5*2^n
/// (n=0..8), with M chosen to keep N*M ~ 10^6 (capped at 500,000).
std::vector<std::pair<long, long>> rfft_schedule(long total = 1'000'000);

/// The paper's VFFT lengths: 2^n (n=2,4,6,7,8,9), 3*2^n and 5*2^n
/// (n=0,2,4,6,8), each paired with the given instance count.
std::vector<long> vfft_lengths();

/// The paper's VFFT instance counts: 1, 2, 5, ..., 500.
std::vector<long> vfft_instances();

}  // namespace ncar::fft
