#include "fft/real_fft.hpp"

#include <vector>

#include "common/error.hpp"

namespace ncar::fft {

namespace {

void forward_impl(const Plan& plan, std::span<const double> in,
                  std::span<cd> out, std::span<cd> buf, std::span<cd> full) {
  const long n = plan.size();
  for (long j = 0; j < n; ++j) {
    buf[static_cast<std::size_t>(j)] = cd(in[static_cast<std::size_t>(j)], 0.0);
  }
  plan.forward(buf, full);
  for (long k = 0; k < spectrum_size(n); ++k) {
    out[static_cast<std::size_t>(k)] = full[static_cast<std::size_t>(k)];
  }
}

void inverse_impl(const Plan& plan, std::span<const cd> in,
                  std::span<double> out, std::span<cd> full,
                  std::span<cd> time_domain) {
  const long n = plan.size();
  // Rebuild the full Hermitian spectrum, inverse-transform, normalise.
  for (long k = 0; k < spectrum_size(n); ++k) {
    full[static_cast<std::size_t>(k)] = in[static_cast<std::size_t>(k)];
  }
  for (long k = spectrum_size(n); k < n; ++k) {
    full[static_cast<std::size_t>(k)] =
        std::conj(in[static_cast<std::size_t>(n - k)]);
  }
  plan.inverse(full, time_domain);
  const double scale = 1.0 / static_cast<double>(n);
  for (long j = 0; j < n; ++j) {
    out[static_cast<std::size_t>(j)] =
        time_domain[static_cast<std::size_t>(j)].real() * scale;
  }
}

}  // namespace

void real_forward(const Plan& plan, std::span<const double> in,
                  std::span<cd> out) {
  const long n = plan.size();
  NCAR_REQUIRE(static_cast<long>(in.size()) == n, "input length");
  NCAR_REQUIRE(static_cast<long>(out.size()) == spectrum_size(n),
               "output length");
  std::vector<cd> buf(static_cast<std::size_t>(n));
  std::vector<cd> full(static_cast<std::size_t>(n));
  forward_impl(plan, in, out, buf, full);
}

void real_forward(const Plan& plan, std::span<const double> in,
                  std::span<cd> out, Arena& arena) {
  const long n = plan.size();
  NCAR_REQUIRE(static_cast<long>(in.size()) == n, "input length");
  NCAR_REQUIRE(static_cast<long>(out.size()) == spectrum_size(n),
               "output length");
  ArenaScope frame(arena);
  auto buf = arena.take<cd>(static_cast<std::size_t>(n));
  auto full = arena.take<cd>(static_cast<std::size_t>(n));
  forward_impl(plan, in, out, buf, full);
}

void real_inverse(const Plan& plan, std::span<const cd> in,
                  std::span<double> out) {
  const long n = plan.size();
  NCAR_REQUIRE(static_cast<long>(in.size()) == spectrum_size(n),
               "input length");
  NCAR_REQUIRE(static_cast<long>(out.size()) == n, "output length");
  std::vector<cd> full(static_cast<std::size_t>(n));
  std::vector<cd> time_domain(static_cast<std::size_t>(n));
  inverse_impl(plan, in, out, full, time_domain);
}

void real_inverse(const Plan& plan, std::span<const cd> in,
                  std::span<double> out, Arena& arena) {
  const long n = plan.size();
  NCAR_REQUIRE(static_cast<long>(in.size()) == spectrum_size(n),
               "input length");
  NCAR_REQUIRE(static_cast<long>(out.size()) == n, "output length");
  ArenaScope frame(arena);
  auto full = arena.take<cd>(static_cast<std::size_t>(n));
  auto time_domain = arena.take<cd>(static_cast<std::size_t>(n));
  inverse_impl(plan, in, out, full, time_domain);
}

}  // namespace ncar::fft
