#include "fft/real_fft.hpp"

#include <vector>

#include "common/error.hpp"

namespace ncar::fft {

void real_forward(const Plan& plan, std::span<const double> in,
                  std::span<cd> out) {
  const long n = plan.size();
  NCAR_REQUIRE(static_cast<long>(in.size()) == n, "input length");
  NCAR_REQUIRE(static_cast<long>(out.size()) == spectrum_size(n),
               "output length");
  std::vector<cd> buf(static_cast<std::size_t>(n));
  std::vector<cd> full(static_cast<std::size_t>(n));
  for (long j = 0; j < n; ++j) {
    buf[static_cast<std::size_t>(j)] = cd(in[static_cast<std::size_t>(j)], 0.0);
  }
  plan.forward(buf, full);
  for (long k = 0; k < spectrum_size(n); ++k) {
    out[static_cast<std::size_t>(k)] = full[static_cast<std::size_t>(k)];
  }
}

void real_inverse(const Plan& plan, std::span<const cd> in,
                  std::span<double> out) {
  const long n = plan.size();
  NCAR_REQUIRE(static_cast<long>(in.size()) == spectrum_size(n),
               "input length");
  NCAR_REQUIRE(static_cast<long>(out.size()) == n, "output length");
  // Rebuild the full Hermitian spectrum, inverse-transform, normalise.
  std::vector<cd> full(static_cast<std::size_t>(n));
  for (long k = 0; k < spectrum_size(n); ++k) {
    full[static_cast<std::size_t>(k)] = in[static_cast<std::size_t>(k)];
  }
  for (long k = spectrum_size(n); k < n; ++k) {
    full[static_cast<std::size_t>(k)] =
        std::conj(in[static_cast<std::size_t>(n - k)]);
  }
  std::vector<cd> time_domain(static_cast<std::size_t>(n));
  plan.inverse(full, time_domain);
  const double scale = 1.0 / static_cast<double>(n);
  for (long j = 0; j < n; ++j) {
    out[static_cast<std::size_t>(j)] =
        time_domain[static_cast<std::size_t>(j)].real() * scale;
  }
}

}  // namespace ncar::fft
