#include "fft/complex_fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace ncar::fft {

namespace {

std::vector<int> factorize(long n) {
  std::vector<int> fs;
  for (int f : {2, 3, 5}) {
    while (n % f == 0) {
      fs.push_back(f);
      n /= f;
    }
  }
  NCAR_REQUIRE(n == 1, "length must factor into 2, 3, and 5");
  return fs;
}

constexpr double kTau = 2.0 * std::numbers::pi;

/// Combine f sub-transforms of size m in place: for each k the f values at
/// out[k + j*m] are twiddled and passed through a small DFT of size f.
void combine(cd* out, long m, int f, long n, bool inv) {
  const double sign = inv ? 1.0 : -1.0;
  for (long k = 0; k < m; ++k) {
    cd t[5];
    for (int j = 0; j < f; ++j) {
      const double ang = sign * kTau * static_cast<double>(j * k) /
                         static_cast<double>(n);
      t[j] = out[static_cast<long>(j) * m + k] * cd(std::cos(ang), std::sin(ang));
    }
    switch (f) {
      case 2: {
        out[k] = t[0] + t[1];
        out[m + k] = t[0] - t[1];
        break;
      }
      case 3: {
        // w = exp(sign * 2 pi i / 3) = -1/2 + sign * i sqrt(3)/2
        constexpr double kHalfSqrt3 = 0.86602540378443864676;
        const cd s = t[1] + t[2];
        const cd d = t[1] - t[2];
        const cd a = t[0] - 0.5 * s;
        const cd b = cd(0.0, sign * kHalfSqrt3) * d;
        out[k] = t[0] + s;
        out[m + k] = a + b;
        out[2 * m + k] = a - b;
        break;
      }
      case 5: {
        // Hard-coded 5-point DFT (Winograd-style symmetric form).
        constexpr double c1 = 0.30901699437494742410;   // cos(2 pi/5)
        constexpr double c2 = -0.80901699437494742410;  // cos(4 pi/5)
        constexpr double s1 = 0.95105651629515357212;   // sin(2 pi/5)
        constexpr double s2 = 0.58778525229247312917;   // sin(4 pi/5)
        const cd p1 = t[1] + t[4], m1 = t[1] - t[4];
        const cd p2 = t[2] + t[3], m2 = t[2] - t[3];
        out[k] = t[0] + p1 + p2;
        const cd a1 = t[0] + c1 * p1 + c2 * p2;
        const cd a2 = t[0] + c2 * p1 + c1 * p2;
        const cd b1 = cd(0.0, sign) * (s1 * m1 + s2 * m2);
        const cd b2 = cd(0.0, sign) * (s2 * m1 - s1 * m2);
        out[m + k] = a1 + b1;
        out[2 * m + k] = a2 + b2;
        out[3 * m + k] = a2 - b2;
        out[4 * m + k] = a1 - b1;
        break;
      }
      default:
        throw ncar::precondition_error("unsupported radix");
    }
  }
}

}  // namespace

Plan::Plan(long n) : n_(n) {
  NCAR_REQUIRE(n >= 1, "transform length must be positive");
  factors_ = factorize(n);
}

bool Plan::supported(long n) {
  if (n < 1) return false;
  for (int f : {2, 3, 5}) {
    while (n % f == 0) n /= f;
  }
  return n == 1;
}

void Plan::rec(const cd* in, long in_stride, cd* out, long n, bool inv) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  int f = 2;
  if (n % 2 != 0) f = (n % 3 == 0) ? 3 : 5;
  const long m = n / f;
  for (int j = 0; j < f; ++j) {
    rec(in + static_cast<long>(j) * in_stride, in_stride * f,
        out + static_cast<long>(j) * m, m, inv);
  }
  combine(out, m, f, n, inv);
}

void Plan::forward(std::span<const cd> in, std::span<cd> out) const {
  NCAR_REQUIRE(static_cast<long>(in.size()) == n_ &&
                   static_cast<long>(out.size()) == n_,
               "buffer sizes must equal the plan length");
  rec(in.data(), 1, out.data(), n_, false);
}

void Plan::inverse(std::span<const cd> in, std::span<cd> out) const {
  NCAR_REQUIRE(static_cast<long>(in.size()) == n_ &&
                   static_cast<long>(out.size()) == n_,
               "buffer sizes must equal the plan length");
  rec(in.data(), 1, out.data(), n_, true);
}

void naive_dft(std::span<const cd> in, std::span<cd> out, bool inverse) {
  NCAR_REQUIRE(in.size() == out.size(), "buffer size mismatch");
  const long n = static_cast<long>(in.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (long k = 0; k < n; ++k) {
    cd acc = 0;
    for (long j = 0; j < n; ++j) {
      const double ang = sign * kTau * static_cast<double>(j * k) /
                         static_cast<double>(n);
      acc += in[static_cast<std::size_t>(j)] * cd(std::cos(ang), std::sin(ang));
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
}

}  // namespace ncar::fft
