#include "fft/complex_fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace ncar::fft {

namespace {

std::vector<int> factorize(long n) {
  std::vector<int> fs;
  for (int f : {2, 3, 5}) {
    while (n % f == 0) {
      fs.push_back(f);
      n /= f;
    }
  }
  NCAR_REQUIRE(n == 1, "length must factor into 2, 3, and 5");
  return fs;
}

constexpr double kTau = 2.0 * std::numbers::pi;

}  // namespace

Plan::Plan(long n) : n_(n) {
  NCAR_REQUIRE(n >= 1, "transform length must be positive");
  factors_ = factorize(n);
  // The radix chosen at each level is a pure function of the sub-transform
  // size, and every leg at a given depth has the same size — so the stage
  // list (and its twiddle tables) is one chain from n down to 1, indexed by
  // recursion depth.
  std::size_t total = 0;
  for (long sz = n_; sz > 1;) {
    int f = 2;
    if (sz % 2 != 0) f = (sz % 3 == 0) ? 3 : 5;
    const long m = sz / f;
    stages_.push_back(Stage{sz, f, m, total});
    total += static_cast<std::size_t>(sz);
    sz = m;
  }
  tw_fwd_.resize(total);
  tw_inv_.resize(total);
  for (const Stage& st : stages_) {
    for (int j = 0; j < st.f; ++j) {
      for (long k = 0; k < st.m; ++k) {
        // Exactly the angle expression the combine loop used to evaluate
        // inline, per sign, so the tables reproduce its twiddles bit for
        // bit (including the signed zeros at j*k == 0).
        const std::size_t at = st.tw_offset +
                               static_cast<std::size_t>(j) *
                                   static_cast<std::size_t>(st.m) +
                               static_cast<std::size_t>(k);
        const double fwd = -1.0 * kTau * static_cast<double>(j * k) /
                           static_cast<double>(st.n);
        const double inv = 1.0 * kTau * static_cast<double>(j * k) /
                           static_cast<double>(st.n);
        tw_fwd_[at] = cd(std::cos(fwd), std::sin(fwd));
        tw_inv_[at] = cd(std::cos(inv), std::sin(inv));
      }
    }
  }
}

bool Plan::supported(long n) {
  if (n < 1) return false;
  for (int f : {2, 3, 5}) {
    while (n % f == 0) n /= f;
  }
  return n == 1;
}

void Plan::rec(const cd* in, long in_stride, cd* out, long n, bool inv,
               std::size_t depth) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const Stage& st = stages_[depth];
  const int f = st.f;
  const long m = st.m;
  for (int j = 0; j < f; ++j) {
    rec(in + static_cast<long>(j) * in_stride, in_stride * f,
        out + static_cast<long>(j) * m, m, inv, depth + 1);
  }
  const cd* tw = (inv ? tw_inv_ : tw_fwd_).data() + st.tw_offset;
  const double sign = inv ? 1.0 : -1.0;
  const simd::KernelTable& kt = simd::table();
  switch (f) {
    case 2:
      kt.fft_combine2(out, m, tw);
      break;
    case 3:
      kt.fft_combine3(out, m, tw, sign);
      break;
    default:
      kt.fft_combine5(out, m, tw, sign);
      break;
  }
}

void Plan::forward(std::span<const cd> in, std::span<cd> out) const {
  NCAR_REQUIRE(static_cast<long>(in.size()) == n_ &&
                   static_cast<long>(out.size()) == n_,
               "buffer sizes must equal the plan length");
  rec(in.data(), 1, out.data(), n_, false, 0);
}

void Plan::inverse(std::span<const cd> in, std::span<cd> out) const {
  NCAR_REQUIRE(static_cast<long>(in.size()) == n_ &&
                   static_cast<long>(out.size()) == n_,
               "buffer sizes must equal the plan length");
  rec(in.data(), 1, out.data(), n_, true, 0);
}

void naive_dft(std::span<const cd> in, std::span<cd> out, bool inverse) {
  NCAR_REQUIRE(in.size() == out.size(), "buffer size mismatch");
  const long n = static_cast<long>(in.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (long k = 0; k < n; ++k) {
    cd acc = 0;
    for (long j = 0; j < n; ++j) {
      const double ang = sign * kTau * static_cast<double>(j * k) /
                         static_cast<double>(n);
      acc += in[static_cast<std::size_t>(j)] * cd(std::cos(ang), std::sin(ang));
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
}

}  // namespace ncar::fft
