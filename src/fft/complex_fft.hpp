#pragma once
// Mixed-radix (2/3/5) complex FFT, FFTPACK-style.
//
// The RFFT/VFFT benchmarks (paper section 4.3) use Swarztrauber's FFTPACK,
// whose transforms support lengths with factors 2, 3, and 5 — exactly the
// three length families the paper sweeps (2^n, 3*2^n, 5*2^n). This is a
// from-scratch decimation-in-time implementation with hard-coded radix
// 2/3/5 combine kernels, recursive over the factorisation.

#include <complex>
#include <span>
#include <vector>

namespace ncar::fft {

using cd = std::complex<double>;

/// A transform plan for a fixed length n (factors 2, 3, 5 only).
///
/// The plan precomputes the twiddle factors of every combine stage at
/// construction (forward and inverse signs), so the transforms themselves
/// never call libm and never allocate — the combine passes run through the
/// runtime-dispatched SIMD kernel table (src/simd/).
class Plan {
public:
  explicit Plan(long n);

  long size() const { return n_; }
  /// The factorisation used, smallest factors first (e.g. 12 -> {2,2,3}).
  const std::vector<int>& factors() const { return factors_; }

  /// Out-of-place forward DFT: out[k] = sum_j in[j] exp(-2 pi i jk / n).
  void forward(std::span<const cd> in, std::span<cd> out) const;

  /// Out-of-place unnormalised inverse DFT (forward then inverse gives n*x).
  void inverse(std::span<const cd> in, std::span<cd> out) const;

  /// True when n factors completely into 2, 3, and 5.
  static bool supported(long n);

private:
  /// One combine pass: n = f * m values merged from f sub-transforms of
  /// size m, with twiddles at tw_offset (laid out tw[j*m + k]).
  struct Stage {
    long n;
    int f;
    long m;
    std::size_t tw_offset;
  };

  void rec(const cd* in, long in_stride, cd* out, long n, bool inv,
           std::size_t depth) const;

  long n_;
  std::vector<int> factors_;
  std::vector<Stage> stages_;  // depth 0 = the full-length combine
  std::vector<cd> tw_fwd_;
  std::vector<cd> tw_inv_;
};

/// Reference O(n^2) DFT for verification.
void naive_dft(std::span<const cd> in, std::span<cd> out, bool inverse);

}  // namespace ncar::fft
