#pragma once
// Mixed-radix (2/3/5) complex FFT, FFTPACK-style.
//
// The RFFT/VFFT benchmarks (paper section 4.3) use Swarztrauber's FFTPACK,
// whose transforms support lengths with factors 2, 3, and 5 — exactly the
// three length families the paper sweeps (2^n, 3*2^n, 5*2^n). This is a
// from-scratch decimation-in-time implementation with hard-coded radix
// 2/3/5 combine kernels, recursive over the factorisation.

#include <complex>
#include <span>
#include <vector>

namespace ncar::fft {

using cd = std::complex<double>;

/// A transform plan for a fixed length n (factors 2, 3, 5 only).
class Plan {
public:
  explicit Plan(long n);

  long size() const { return n_; }
  /// The factorisation used, smallest factors first (e.g. 12 -> {2,2,3}).
  const std::vector<int>& factors() const { return factors_; }

  /// Out-of-place forward DFT: out[k] = sum_j in[j] exp(-2 pi i jk / n).
  void forward(std::span<const cd> in, std::span<cd> out) const;

  /// Out-of-place unnormalised inverse DFT (forward then inverse gives n*x).
  void inverse(std::span<const cd> in, std::span<cd> out) const;

  /// True when n factors completely into 2, 3, and 5.
  static bool supported(long n);

private:
  void rec(const cd* in, long in_stride, cd* out, long n, bool inv) const;

  long n_;
  std::vector<int> factors_;
};

/// Reference O(n^2) DFT for verification.
void naive_dft(std::span<const cd> in, std::span<cd> out, bool inverse);

}  // namespace ncar::fft
