// AVX-512F backend: 8 doubles / 4 complexes per vector. Built with
// -mavx512f and -ffp-contract=off (crucial: -mavx512f implies FMA
// availability and gnu++20 defaults to contract=fast — contraction would
// break the bit-identity contract). Compiles to a null table when the
// toolchain or target cannot provide the ISA.

#include "simd/simd.hpp"

#if defined(NCAR_SIMD_AVX512) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "simd/kernels_body.hpp"

namespace ncar::simd {
namespace {

struct Avx512 {
  using vd = __m512d;
  static constexpr long kLanes = 8;

  static vd load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, vd v) { _mm512_storeu_pd(p, v); }
  static vd set1(double x) { return _mm512_set1_pd(x); }
  static vd add(vd a, vd b) { return _mm512_add_pd(a, b); }
  static vd sub(vd a, vd b) { return _mm512_sub_pd(a, b); }
  static vd mul(vd a, vd b) { return _mm512_mul_pd(a, b); }
  static vd div(vd a, vd b) { return _mm512_div_pd(a, b); }
  static vd vsqrt(vd a) { return _mm512_sqrt_pd(a); }

  static vd select_nonzero(vd mask, vd a, vd b) {
    const __mmask8 m =
        _mm512_cmp_pd_mask(mask, _mm512_setzero_pd(), _CMP_NEQ_UQ);
    return _mm512_mask_blend_pd(m, b, a);
  }
  static vd select_gt(vd x, vd y, vd a, vd b) {
    return _mm512_mask_blend_pd(_mm512_cmp_pd_mask(x, y, _CMP_GT_OQ), b, a);
  }

  static vd gather(const double* base, const long* idx) {
    const __m512i vi =
        _mm512_loadu_si512(reinterpret_cast<const void*>(idx));
    return _mm512_i64gather_pd(vi, base, 8);
  }
  static vd stride_gather(const double* base, long stride) {
    const __m512i vi = _mm512_set_epi64(7 * stride, 6 * stride, 5 * stride,
                                        4 * stride, 3 * stride, 2 * stride,
                                        stride, 0);
    return _mm512_i64gather_pd(vi, base, 8);
  }

  static vd cmul(vd a, vd b) {
    const vd br = _mm512_permute_pd(b, 0x00);
    const vd bi = _mm512_permute_pd(b, 0xFF);
    const vd as = _mm512_permute_pd(a, 0x55);
    const vd t1 = _mm512_mul_pd(a, br);
    const vd t2 = _mm512_mul_pd(as, bi);
    // addsub: even lanes t1-t2, odd lanes t1+t2 (mask 0x55 = even lanes).
    return _mm512_mask_sub_pd(_mm512_add_pd(t1, t2), 0x55, t1, t2);
  }
  static vd dup_real(const double* p) {
    // (p0,p0,p1,p1,p2,p2,p3,p3)
    const __m512d lo = _mm512_castpd256_pd512(_mm256_loadu_pd(p));
    const __m512i pick = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
    return _mm512_permutexvar_pd(pick, lo);
  }
  static vd bcast_cd(const cd& z) {
    // Broadcast one (re, im) pair to all four complex slots without
    // AVX512DQ's broadcast_f64x2.
    const __m512d lo =
        _mm512_castpd128_pd512(_mm_loadu_pd(reinterpret_cast<const double*>(&z)));
    const __m512i pick = _mm512_set_epi64(1, 0, 1, 0, 1, 0, 1, 0);
    return _mm512_permutexvar_pd(pick, lo);
  }
};

}  // namespace

const KernelTable* avx512_table_impl() {
  static const KernelTable t = body::make_table<Avx512>();
  return &t;
}

}  // namespace ncar::simd

#else

namespace ncar::simd {
const KernelTable* avx512_table_impl() { return nullptr; }
}  // namespace ncar::simd

#endif
