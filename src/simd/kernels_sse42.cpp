// SSE4.2 backend: 2 doubles / 1 complex per vector. Built with -msse4.2 and
// -ffp-contract=off (see src/simd/CMakeLists.txt); compiles to a null table
// when the toolchain or target cannot provide the ISA.

#include "simd/simd.hpp"

#if defined(NCAR_SIMD_SSE42) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "simd/kernels_body.hpp"

namespace ncar::simd {
namespace {

struct Sse42 {
  using vd = __m128d;
  static constexpr long kLanes = 2;

  static vd load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, vd v) { _mm_storeu_pd(p, v); }
  static vd set1(double x) { return _mm_set1_pd(x); }
  static vd add(vd a, vd b) { return _mm_add_pd(a, b); }
  static vd sub(vd a, vd b) { return _mm_sub_pd(a, b); }
  static vd mul(vd a, vd b) { return _mm_mul_pd(a, b); }
  static vd div(vd a, vd b) { return _mm_div_pd(a, b); }
  static vd vsqrt(vd a) { return _mm_sqrt_pd(a); }

  static vd select_nonzero(vd mask, vd a, vd b) {
    // mask != 0.0 ? a : b, with C != semantics (NaN mask selects a).
    const vd m = _mm_cmpneq_pd(mask, _mm_setzero_pd());
    return _mm_blendv_pd(b, a, m);
  }
  static vd select_gt(vd x, vd y, vd a, vd b) {
    return _mm_blendv_pd(b, a, _mm_cmpgt_pd(x, y));
  }

  static vd gather(const double* base, const long* idx) {
    return _mm_set_pd(base[idx[1]], base[idx[0]]);
  }
  static vd stride_gather(const double* base, long stride) {
    return _mm_set_pd(base[stride], base[0]);
  }

  static vd cmul(vd a, vd b) {
    // (ar*br - ai*bi, ai*br + ar*bi) via mul/addsub — componentwise equal to
    // the libstdc++ naive formula (IEEE + and * are commutative).
    const vd br = _mm_shuffle_pd(b, b, 0x0);
    const vd bi = _mm_shuffle_pd(b, b, 0x3);
    const vd as = _mm_shuffle_pd(a, a, 0x1);
    return _mm_addsub_pd(_mm_mul_pd(a, br), _mm_mul_pd(as, bi));
  }
  static vd dup_real(const double* p) { return _mm_loaddup_pd(p); }
  static vd bcast_cd(const cd& z) {
    return _mm_set_pd(z.imag(), z.real());
  }
};

}  // namespace

const KernelTable* sse42_table_impl() {
  static const KernelTable t = body::make_table<Sse42>();
  return &t;
}

}  // namespace ncar::simd

#else

namespace ncar::simd {
const KernelTable* sse42_table_impl() { return nullptr; }
}  // namespace ncar::simd

#endif
