#include "simd/scalar_kernels.hpp"
#include "simd/simd.hpp"

namespace ncar::simd {

const KernelTable& scalar_table() {
  static const KernelTable t = {
      scalar_ref::copy_d,        scalar_ref::gather_d,
      scalar_ref::strided_copy_d, scalar_ref::add_d,
      scalar_ref::scale_d,       scalar_ref::scale2_d,
      scalar_ref::select_d,      scalar_ref::radabs_pair_d,
      scalar_ref::mom_stencil_d, scalar_ref::mix_unstable_d,
      scalar_ref::pop_eta_d,     scalar_ref::pop_momentum_d,
      scalar_ref::pop_tracer_d,  scalar_ref::fft_combine2,
      scalar_ref::fft_combine3,  scalar_ref::fft_combine5,
      scalar_ref::axpy_cd_r,     scalar_ref::dot_cd_r,
      scalar_ref::dot2_cd_r,
  };
  return t;
}

}  // namespace ncar::simd
