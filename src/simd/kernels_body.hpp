#pragma once
// Width-generic SIMD kernel bodies, instantiated per ISA.
//
// Each ISA translation unit defines a traits struct V (vector type, lane
// count, exactly-rounded arithmetic, bitwise selects, complex helpers) and
// instantiates make_table<V>(). The bodies use only operations IEEE 754
// defines exactly (add/sub/mul/div/sqrt, moves, selects), call libm
// transcendentals per lane, and keep every reduction in its original
// sequential order — so every instantiation is bit-identical to the scalar
// reference in scalar_kernels.hpp, which also provides the remainder-lane
// tails.
//
// Traits contract (kLanes doubles per vector; kLanes/2 interleaved
// complexes):
//   using vd;  static constexpr long kLanes;
//   vd load(const double*); void store(double*, vd); vd set1(double);
//   vd add/sub/mul/div(vd, vd); vd vsqrt(vd);
//   vd select_nonzero(vd mask, vd a, vd b);   // mask != 0 ? a : b
//   vd select_gt(vd x, vd y, vd a, vd b);     // x > y ? a : b
//   vd gather(const double* base, const long* idx);
//   vd stride_gather(const double* base, long stride);
//   vd cmul(vd a, vd b);                      // interleaved complex multiply
//   vd dup_real(const double* p);             // (p0,p0,p1,p1,...)
//   vd bcast_cd(const cd& z);                 // (re,im,re,im,...)

#include <complex>

#include "simd/scalar_kernels.hpp"
#include "simd/simd.hpp"

namespace ncar::simd::body {

template <class V>
void copy_d(const double* src, double* dst, long n) {
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(dst + i, V::load(src + i));
  }
  scalar_ref::copy_d(src + i, dst + i, n - i);
}

template <class V>
void gather_d(const double* src, const long* idx, double* dst, long n) {
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(dst + i, V::gather(src, idx + i));
  }
  scalar_ref::gather_d(src, idx + i, dst + i, n - i);
}

template <class V>
void strided_copy_d(const double* src, long stride, double* dst, long n) {
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(dst + i, V::stride_gather(src + i * stride, stride));
  }
  scalar_ref::strided_copy_d(src + i * stride, stride, dst + i, n - i);
}

template <class V>
void add_d(double* acc, const double* x, long n) {
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(acc + i, V::add(V::load(acc + i), V::load(x + i)));
  }
  scalar_ref::add_d(acc + i, x + i, n - i);
}

template <class V>
void scale_d(const double* x, double s, double* dst, long n) {
  const auto sv = V::set1(s);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(dst + i, V::mul(V::load(x + i), sv));
  }
  scalar_ref::scale_d(x + i, s, dst + i, n - i);
}

template <class V>
void scale2_d(const double* x, double s1, double s2, double* dst, long n) {
  const auto s1v = V::set1(s1);
  const auto s2v = V::set1(s2);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(dst + i, V::mul(V::mul(V::load(x + i), s1v), s2v));
  }
  scalar_ref::scale2_d(x + i, s1, s2, dst + i, n - i);
}

template <class V>
void select_d(const double* mask, const double* a, const double* b,
              double* dst, long n) {
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    V::store(dst + i, V::select_nonzero(V::load(mask + i), V::load(a + i),
                                        V::load(b + i)));
  }
  scalar_ref::select_d(mask + i, a + i, b + i, dst + i, n - i);
}

template <class V>
void radabs_pair_d(const double* w, const double* t1, const double* t2,
                   double sp, double* a12, double* scratch, long n) {
  const auto half = V::set1(0.5);
  const auto one = V::set1(1.0);
  const auto diffusivity = V::set1(1.66);
  const auto spv = V::set1(sp);
  const auto neg8 = V::set1(-8.0);
  const auto ref_temp = V::set1(250.0);
  const auto band2 = V::set1(0.04);
  long c = 0;
  for (; c + V::kLanes <= n; c += V::kLanes) {
    const auto tbar = V::mul(half, V::add(V::load(t1 + c), V::load(t2 + c)));
    const auto u = V::mul(V::mul(diffusivity, V::load(w + c)), spv);
    const auto earg = V::mul(neg8, V::vsqrt(u));
    const auto rb = V::div(tbar, ref_temp);
    // Transcendentals stay scalar per lane (same libm symbols as the
    // scalar reference).
    alignas(64) double se[V::kLanes];
    alignas(64) double st[V::kLanes];
    V::store(se, earg);
    V::store(st, rb);
    for (long l = 0; l < V::kLanes; ++l) {
      se[l] = std::exp(se[l]);
      st[l] = std::pow(st[l], 0.5);
    }
    const auto ev = V::load(se);
    const auto tfac = V::load(st);
    V::store(se, V::add(one, V::mul(u, tfac)));
    for (long l = 0; l < V::kLanes; ++l) se[l] = std::log(se[l]);
    const auto a2 = V::mul(band2, V::load(se));
    V::store(a12 + c, V::add(V::sub(one, ev), a2));
  }
  scalar_ref::radabs_pair_d(w + c, t1 + c, t2 + c, sp, a12 + c, scratch,
                            n - c);
}

template <class V>
void mom_stencil_d(const double* f, const double* aip, const double* aim,
                   const double* ajp, const double* ajm, const double* uu,
                   const double* vv, double adv, double kappa, double* dst,
                   long n) {
  const auto half = V::set1(0.5);
  const auto four = V::set1(4.0);
  const auto advv = V::set1(adv);
  const auto kapv = V::set1(kappa);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const auto fv = V::load(f + i);
    const auto ip = V::load(aip + i);
    const auto im = V::load(aim + i);
    const auto jp = V::load(ajp + i);
    const auto jm = V::load(ajm + i);
    const auto fx = V::sub(ip, im);
    const auto fy = V::sub(jp, jm);
    const auto lap =
        V::sub(V::add(V::add(V::add(ip, im), jp), jm), V::mul(four, fv));
    const auto advect = V::mul(
        V::mul(advv, V::add(V::mul(V::load(uu + i), fx),
                            V::mul(V::load(vv + i), fy))),
        half);
    V::store(dst + i, V::add(V::sub(fv, advect), V::mul(kapv, lap)));
  }
  scalar_ref::mom_stencil_d(f + i, aip + i, aim + i, ajp + i, ajm + i, uu + i,
                            vv + i, adv, kappa, dst + i, n - i);
}

template <class V>
void mix_unstable_d(double* upper, double* lower, long n) {
  const auto half = V::set1(0.5);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const auto up = V::load(upper + i);
    const auto lo = V::load(lower + i);
    const auto mixed = V::mul(half, V::add(up, lo));
    V::store(upper + i, V::select_gt(lo, up, mixed, up));
    V::store(lower + i, V::select_gt(lo, up, mixed, lo));
  }
  scalar_ref::mix_unstable_d(upper + i, lower + i, n - i);
}

template <class V>
void pop_eta_d(const double* uxp, const double* uxm, const double* vyp,
               const double* vym, double s, double* eta, long n) {
  const auto half = V::set1(0.5);
  const auto sv = V::set1(s);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const auto div = V::mul(
        half, V::add(V::sub(V::load(uxp + i), V::load(uxm + i)),
                     V::sub(V::load(vyp + i), V::load(vym + i))));
    V::store(eta + i, V::sub(V::load(eta + i), V::mul(sv, div)));
  }
  scalar_ref::pop_eta_d(uxp + i, uxm + i, vyp + i, vym + i, s, eta + i, n - i);
}

template <class V>
void pop_momentum_d(const double* ex_p, const double* ex_m, const double* ey_p,
                    const double* ey_m, double dtb, double gscale, double cor,
                    double drag, double* u, double* v, long n) {
  const auto half = V::set1(0.5);
  const auto dtbv = V::set1(dtb);
  const auto gv = V::set1(gscale);
  const auto corv = V::set1(cor);
  const auto ncorv = V::set1(-cor);
  const auto dragv = V::set1(drag);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const auto uv = V::load(u + i);
    const auto vv_ = V::load(v + i);
    const auto ex = V::mul(half, V::sub(V::load(ex_p + i), V::load(ex_m + i)));
    const auto ey = V::mul(half, V::sub(V::load(ey_p + i), V::load(ey_m + i)));
    const auto un = V::add(
        uv, V::mul(dtbv, V::sub(V::sub(V::mul(corv, vv_), V::mul(gv, ex)),
                                V::mul(dragv, uv))));
    const auto vn = V::add(
        vv_, V::mul(dtbv, V::sub(V::sub(V::mul(ncorv, uv), V::mul(gv, ey)),
                                 V::mul(dragv, vv_))));
    V::store(u + i, un);
    V::store(v + i, vn);
  }
  scalar_ref::pop_momentum_d(ex_p + i, ex_m + i, ey_p + i, ey_m + i, dtb,
                             gscale, cor, drag, u + i, v + i, n - i);
}

template <class V>
void pop_tracer_d(const double* txp, const double* txm, const double* typ,
                  const double* tym, const double* u, const double* v,
                  double nadv, double kappa, double* t, long n) {
  const auto half = V::set1(0.5);
  const auto four = V::set1(4.0);
  const auto nadvv = V::set1(nadv);
  const auto kapv = V::set1(kappa);
  long i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const auto xp = V::load(txp + i);
    const auto xm = V::load(txm + i);
    const auto yp = V::load(typ + i);
    const auto ym = V::load(tym + i);
    const auto tv = V::load(t + i);
    const auto tx = V::mul(half, V::sub(xp, xm));
    const auto ty = V::mul(half, V::sub(yp, ym));
    const auto lap =
        V::sub(V::add(V::add(V::add(xp, xm), yp), ym), V::mul(four, tv));
    const auto rhs = V::add(V::mul(nadvv, V::add(V::mul(V::load(u + i), tx),
                                                 V::mul(V::load(v + i), ty))),
                            V::mul(kapv, lap));
    V::store(t + i, V::add(tv, rhs));
  }
  scalar_ref::pop_tracer_d(txp + i, txm + i, typ + i, tym + i, u + i, v + i,
                           nadv, kappa, t + i, n - i);
}

template <class V>
void fft_combine2(cd* out, long m, const cd* tw) {
  constexpr long kC = V::kLanes / 2;
  double* od = reinterpret_cast<double*>(out);
  const double* twd = reinterpret_cast<const double*>(tw);
  long k = 0;
  for (; k + kC <= m; k += kC) {
    const auto t0 = V::cmul(V::load(od + 2 * k), V::load(twd + 2 * k));
    const auto t1 =
        V::cmul(V::load(od + 2 * (m + k)), V::load(twd + 2 * (m + k)));
    V::store(od + 2 * k, V::add(t0, t1));
    V::store(od + 2 * (m + k), V::sub(t0, t1));
  }
  scalar_ref::fft_combine2_tail(out, m, tw, k);
}

template <class V>
void fft_combine3(cd* out, long m, const cd* tw, double sign) {
  constexpr long kC = V::kLanes / 2;
  constexpr double kHalfSqrt3 = 0.86602540378443864676;
  const auto half = V::set1(0.5);
  const auto wv = V::bcast_cd(cd(0.0, sign * kHalfSqrt3));
  double* od = reinterpret_cast<double*>(out);
  const double* twd = reinterpret_cast<const double*>(tw);
  long k = 0;
  for (; k + kC <= m; k += kC) {
    const auto t0 = V::cmul(V::load(od + 2 * k), V::load(twd + 2 * k));
    const auto t1 =
        V::cmul(V::load(od + 2 * (m + k)), V::load(twd + 2 * (m + k)));
    const auto t2 =
        V::cmul(V::load(od + 2 * (2 * m + k)), V::load(twd + 2 * (2 * m + k)));
    const auto s = V::add(t1, t2);
    const auto d = V::sub(t1, t2);
    const auto a = V::sub(t0, V::mul(half, s));
    const auto b = V::cmul(wv, d);
    V::store(od + 2 * k, V::add(t0, s));
    V::store(od + 2 * (m + k), V::add(a, b));
    V::store(od + 2 * (2 * m + k), V::sub(a, b));
  }
  scalar_ref::fft_combine3_tail(out, m, tw, sign, k);
}

template <class V>
void fft_combine5(cd* out, long m, const cd* tw, double sign) {
  constexpr long kC = V::kLanes / 2;
  constexpr double c1 = 0.30901699437494742410;
  constexpr double c2 = -0.80901699437494742410;
  constexpr double s1 = 0.95105651629515357212;
  constexpr double s2 = 0.58778525229247312917;
  const auto c1v = V::set1(c1);
  const auto c2v = V::set1(c2);
  const auto s1v = V::set1(s1);
  const auto s2v = V::set1(s2);
  const auto wv = V::bcast_cd(cd(0.0, sign));
  double* od = reinterpret_cast<double*>(out);
  const double* twd = reinterpret_cast<const double*>(tw);
  long k = 0;
  for (; k + kC <= m; k += kC) {
    const auto t0 = V::cmul(V::load(od + 2 * k), V::load(twd + 2 * k));
    const auto t1 =
        V::cmul(V::load(od + 2 * (m + k)), V::load(twd + 2 * (m + k)));
    const auto t2 =
        V::cmul(V::load(od + 2 * (2 * m + k)), V::load(twd + 2 * (2 * m + k)));
    const auto t3 =
        V::cmul(V::load(od + 2 * (3 * m + k)), V::load(twd + 2 * (3 * m + k)));
    const auto t4 =
        V::cmul(V::load(od + 2 * (4 * m + k)), V::load(twd + 2 * (4 * m + k)));
    const auto p1 = V::add(t1, t4);
    const auto m1 = V::sub(t1, t4);
    const auto p2 = V::add(t2, t3);
    const auto m2 = V::sub(t2, t3);
    V::store(od + 2 * k, V::add(V::add(t0, p1), p2));
    const auto a1 = V::add(V::add(t0, V::mul(c1v, p1)), V::mul(c2v, p2));
    const auto a2 = V::add(V::add(t0, V::mul(c2v, p1)), V::mul(c1v, p2));
    const auto b1 = V::cmul(wv, V::add(V::mul(s1v, m1), V::mul(s2v, m2)));
    const auto b2 = V::cmul(wv, V::sub(V::mul(s2v, m1), V::mul(s1v, m2)));
    V::store(od + 2 * (m + k), V::add(a1, b1));
    V::store(od + 2 * (2 * m + k), V::add(a2, b2));
    V::store(od + 2 * (3 * m + k), V::sub(a2, b2));
    V::store(od + 2 * (4 * m + k), V::sub(a1, b1));
  }
  scalar_ref::fft_combine5_tail(out, m, tw, sign, k);
}

template <class V>
void axpy_cd_r(cd* acc, cd g, const double* p, long n) {
  constexpr long kC = V::kLanes / 2;
  const auto gv = V::bcast_cd(g);
  double* ad = reinterpret_cast<double*>(acc);
  long k = 0;
  for (; k + kC <= n; k += kC) {
    const auto pv = V::dup_real(p + k);
    V::store(ad + 2 * k, V::add(V::load(ad + 2 * k), V::mul(gv, pv)));
  }
  scalar_ref::axpy_cd_r(acc + k, g, p + k, n - k);
}

template <class V>
cd dot_cd_r(const cd* s, const double* p, long n) {
  // Fixed-order reduction: the products are vectorised, the accumulation
  // walks them sequentially in k order — bit-identical to the scalar loop.
  constexpr long kC = V::kLanes / 2;
  const double* sd = reinterpret_cast<const double*>(s);
  double re = 0.0, im = 0.0;
  long k = 0;
  for (; k + kC <= n; k += kC) {
    alignas(64) double prod[V::kLanes];
    V::store(prod, V::mul(V::load(sd + 2 * k), V::dup_real(p + k)));
    for (long l = 0; l < kC; ++l) {
      re += prod[2 * l];
      im += prod[2 * l + 1];
    }
  }
  for (; k < n; ++k) {
    re += s[k].real() * p[k];
    im += s[k].imag() * p[k];
  }
  return cd(re, im);
}

template <class V>
void dot2_cd_r(const cd* s, const double* p, const double* d, long n,
               cd* out_p, cd* out_d) {
  constexpr long kC = V::kLanes / 2;
  const double* sd = reinterpret_cast<const double*>(s);
  double pre = 0.0, pim = 0.0, dre = 0.0, dim = 0.0;
  long k = 0;
  for (; k + kC <= n; k += kC) {
    const auto sv = V::load(sd + 2 * k);
    alignas(64) double prod_p[V::kLanes];
    alignas(64) double prod_d[V::kLanes];
    V::store(prod_p, V::mul(sv, V::dup_real(p + k)));
    V::store(prod_d, V::mul(sv, V::dup_real(d + k)));
    for (long l = 0; l < kC; ++l) {
      pre += prod_p[2 * l];
      pim += prod_p[2 * l + 1];
      dre += prod_d[2 * l];
      dim += prod_d[2 * l + 1];
    }
  }
  for (; k < n; ++k) {
    pre += s[k].real() * p[k];
    pim += s[k].imag() * p[k];
    dre += s[k].real() * d[k];
    dim += s[k].imag() * d[k];
  }
  *out_p = cd(pre, pim);
  *out_d = cd(dre, dim);
}

template <class V>
KernelTable make_table() {
  return KernelTable{
      copy_d<V>,        gather_d<V>,       strided_copy_d<V>,
      add_d<V>,         scale_d<V>,        scale2_d<V>,
      select_d<V>,      radabs_pair_d<V>,  mom_stencil_d<V>,
      mix_unstable_d<V>, pop_eta_d<V>,     pop_momentum_d<V>,
      pop_tracer_d<V>,  fft_combine2<V>,   fft_combine3<V>,
      fft_combine5<V>,  axpy_cd_r<V>,      dot_cd_r<V>,
      dot2_cd_r<V>,
  };
}

}  // namespace ncar::simd::body
