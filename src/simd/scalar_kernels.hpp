#pragma once
// Scalar reference implementations of every dispatched kernel.
//
// These loops are the semantic definition of the KernelTable entries: the
// SIMD backends must match them bit for bit (see simd.hpp). The ISA
// translation units include this header for remainder-lane tails, so a
// backend's tail and the scalar backend run literally the same code.
// Transcendentals (exp/log/pow) are plain libm calls — every translation
// unit resolves the same glibc symbols, so per-lane results are identical
// no matter which backend's loop called them.

#include <cmath>
#include <complex>

namespace ncar::simd::scalar_ref {

using cd = std::complex<double>;

inline void copy_d(const double* src, double* dst, long n) {
  for (long i = 0; i < n; ++i) dst[i] = src[i];
}

inline void gather_d(const double* src, const long* idx, double* dst, long n) {
  for (long i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

inline void strided_copy_d(const double* src, long stride, double* dst,
                           long n) {
  for (long i = 0; i < n; ++i) dst[i] = src[i * stride];
}

inline void add_d(double* acc, const double* x, long n) {
  for (long i = 0; i < n; ++i) acc[i] += x[i];
}

inline void scale_d(const double* x, double s, double* dst, long n) {
  for (long i = 0; i < n; ++i) dst[i] = x[i] * s;
}

inline void scale2_d(const double* x, double s1, double s2, double* dst,
                     long n) {
  for (long i = 0; i < n; ++i) dst[i] = x[i] * s1 * s2;
}

inline void select_d(const double* mask, const double* a, const double* b,
                     double* dst, long n) {
  for (long i = 0; i < n; ++i) dst[i] = mask[i] != 0.0 ? a[i] : b[i];
}

inline void radabs_pair_d(const double* w, const double* t1, const double* t2,
                          double sp, double* a12, double* scratch, long n) {
  // Same expression shapes as the original per-column loop in
  // radabs/radabs.cpp; only the loop nesting differs (one pass per
  // expression instead of one column per iteration), which is exact because
  // every column is independent.
  for (long c = 0; c < n; ++c) {
    const double tbar = 0.5 * (t1[c] + t2[c]);
    const double u = 1.66 * w[c] * sp;
    const double a1 = 1.0 - std::exp(-8.0 * std::sqrt(u));
    const double tfac = std::pow(tbar / 250.0, 0.5);
    const double a2 = 0.04 * std::log(1.0 + u * tfac);
    a12[c] = a1 + a2;
  }
  (void)scratch;
}

inline void mom_stencil_d(const double* f, const double* aip,
                          const double* aim, const double* ajp,
                          const double* ajm, const double* uu,
                          const double* vv, double adv, double kappa,
                          double* dst, long n) {
  for (long i = 0; i < n; ++i) {
    const double fx = aip[i] - aim[i];
    const double fy = ajp[i] - ajm[i];
    const double lap = aip[i] + aim[i] + ajp[i] + ajm[i] - 4.0 * f[i];
    dst[i] = f[i] - adv * (uu[i] * fx + vv[i] * fy) * 0.5 + kappa * lap;
  }
}

inline void mix_unstable_d(double* upper, double* lower, long n) {
  for (long i = 0; i < n; ++i) {
    if (lower[i] > upper[i]) {
      const double mixed = 0.5 * (upper[i] + lower[i]);
      upper[i] = mixed;
      lower[i] = mixed;
    }
  }
}

inline void pop_eta_d(const double* uxp, const double* uxm, const double* vyp,
                      const double* vym, double s, double* eta, long n) {
  for (long i = 0; i < n; ++i) {
    const double div = 0.5 * ((uxp[i] - uxm[i]) + (vyp[i] - vym[i]));
    eta[i] -= s * div;
  }
}

inline void pop_momentum_d(const double* ex_p, const double* ex_m,
                           const double* ey_p, const double* ey_m, double dtb,
                           double gscale, double cor, double drag, double* u,
                           double* v, long n) {
  const double ncor = -cor;
  for (long i = 0; i < n; ++i) {
    const double ex = 0.5 * (ex_p[i] - ex_m[i]);
    const double ey = 0.5 * (ey_p[i] - ey_m[i]);
    const double un = u[i] + dtb * (cor * v[i] - gscale * ex - drag * u[i]);
    const double vn = v[i] + dtb * (ncor * u[i] - gscale * ey - drag * v[i]);
    u[i] = un;
    v[i] = vn;
  }
}

inline void pop_tracer_d(const double* txp, const double* txm,
                         const double* typ, const double* tym, const double* u,
                         const double* v, double nadv, double kappa, double* t,
                         long n) {
  for (long i = 0; i < n; ++i) {
    const double tx = 0.5 * (txp[i] - txm[i]);
    const double ty = 0.5 * (typ[i] - tym[i]);
    const double lap = txp[i] + txm[i] + typ[i] + tym[i] - 4.0 * t[i];
    t[i] += nadv * (u[i] * tx + v[i] * ty) + kappa * lap;
  }
}

// The *_tail variants start at butterfly k0 — the SIMD bodies call them for
// remainder lanes, the plain entry points call them with k0 = 0.

inline void fft_combine2_tail(cd* out, long m, const cd* tw, long k0) {
  for (long k = k0; k < m; ++k) {
    const cd t0 = out[k] * tw[k];
    const cd t1 = out[m + k] * tw[m + k];
    out[k] = t0 + t1;
    out[m + k] = t0 - t1;
  }
}

inline void fft_combine2(cd* out, long m, const cd* tw) {
  fft_combine2_tail(out, m, tw, 0);
}

inline void fft_combine3_tail(cd* out, long m, const cd* tw, double sign,
                              long k0) {
  constexpr double kHalfSqrt3 = 0.86602540378443864676;
  const cd w(0.0, sign * kHalfSqrt3);
  for (long k = k0; k < m; ++k) {
    const cd t0 = out[k] * tw[k];
    const cd t1 = out[m + k] * tw[m + k];
    const cd t2 = out[2 * m + k] * tw[2 * m + k];
    const cd s = t1 + t2;
    const cd d = t1 - t2;
    const cd a = t0 - 0.5 * s;
    const cd b = w * d;
    out[k] = t0 + s;
    out[m + k] = a + b;
    out[2 * m + k] = a - b;
  }
}

inline void fft_combine3(cd* out, long m, const cd* tw, double sign) {
  fft_combine3_tail(out, m, tw, sign, 0);
}

inline void fft_combine5_tail(cd* out, long m, const cd* tw, double sign,
                              long k0) {
  constexpr double c1 = 0.30901699437494742410;   // cos(2 pi/5)
  constexpr double c2 = -0.80901699437494742410;  // cos(4 pi/5)
  constexpr double s1 = 0.95105651629515357212;   // sin(2 pi/5)
  constexpr double s2 = 0.58778525229247312917;   // sin(4 pi/5)
  const cd w(0.0, sign);
  for (long k = k0; k < m; ++k) {
    const cd t0 = out[k] * tw[k];
    const cd t1 = out[m + k] * tw[m + k];
    const cd t2 = out[2 * m + k] * tw[2 * m + k];
    const cd t3 = out[3 * m + k] * tw[3 * m + k];
    const cd t4 = out[4 * m + k] * tw[4 * m + k];
    const cd p1 = t1 + t4, m1 = t1 - t4;
    const cd p2 = t2 + t3, m2 = t2 - t3;
    out[k] = t0 + p1 + p2;
    const cd a1 = t0 + c1 * p1 + c2 * p2;
    const cd a2 = t0 + c2 * p1 + c1 * p2;
    const cd b1 = w * (s1 * m1 + s2 * m2);
    const cd b2 = w * (s2 * m1 - s1 * m2);
    out[m + k] = a1 + b1;
    out[2 * m + k] = a2 + b2;
    out[3 * m + k] = a2 - b2;
    out[4 * m + k] = a1 - b1;
  }
}

inline void fft_combine5(cd* out, long m, const cd* tw, double sign) {
  fft_combine5_tail(out, m, tw, sign, 0);
}

inline void axpy_cd_r(cd* acc, cd g, const double* p, long n) {
  for (long k = 0; k < n; ++k) acc[k] += g * p[k];
}

inline cd dot_cd_r(const cd* s, const double* p, long n) {
  cd acc(0, 0);
  for (long k = 0; k < n; ++k) acc += s[k] * p[k];
  return acc;
}

inline void dot2_cd_r(const cd* s, const double* p, const double* d, long n,
                      cd* out_p, cd* out_d) {
  cd acc_p(0, 0), acc_d(0, 0);
  for (long k = 0; k < n; ++k) {
    acc_p += s[k] * p[k];
    acc_d += s[k] * d[k];
  }
  *out_p = acc_p;
  *out_d = acc_d;
}

}  // namespace ncar::simd::scalar_ref
