// AVX2 backend: 4 doubles / 2 complexes per vector. Built with -mavx2 and
// -ffp-contract=off (no FMA — the determinism contract forbids it); compiles
// to a null table when the toolchain or target cannot provide the ISA.

#include "simd/simd.hpp"

#if defined(NCAR_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "simd/kernels_body.hpp"

namespace ncar::simd {
namespace {

struct Avx2 {
  using vd = __m256d;
  static constexpr long kLanes = 4;

  static vd load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, vd v) { _mm256_storeu_pd(p, v); }
  static vd set1(double x) { return _mm256_set1_pd(x); }
  static vd add(vd a, vd b) { return _mm256_add_pd(a, b); }
  static vd sub(vd a, vd b) { return _mm256_sub_pd(a, b); }
  static vd mul(vd a, vd b) { return _mm256_mul_pd(a, b); }
  static vd div(vd a, vd b) { return _mm256_div_pd(a, b); }
  static vd vsqrt(vd a) { return _mm256_sqrt_pd(a); }

  static vd select_nonzero(vd mask, vd a, vd b) {
    // _CMP_NEQ_UQ: unordered-or-unequal, matching C != (NaN mask selects a).
    const vd m = _mm256_cmp_pd(mask, _mm256_setzero_pd(), _CMP_NEQ_UQ);
    return _mm256_blendv_pd(b, a, m);
  }
  static vd select_gt(vd x, vd y, vd a, vd b) {
    // _CMP_GT_OQ: ordered greater-than, matching scalar > (NaN selects b).
    return _mm256_blendv_pd(b, a, _mm256_cmp_pd(x, y, _CMP_GT_OQ));
  }

  static vd gather(const double* base, const long* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i64gather_pd(base, vi, 8);
  }
  static vd stride_gather(const double* base, long stride) {
    const __m256i vi = _mm256_set_epi64x(3 * stride, 2 * stride, stride, 0);
    return _mm256_i64gather_pd(base, vi, 8);
  }

  static vd cmul(vd a, vd b) {
    const vd br = _mm256_shuffle_pd(b, b, 0x0);
    const vd bi = _mm256_shuffle_pd(b, b, 0xF);
    const vd as = _mm256_shuffle_pd(a, a, 0x5);
    return _mm256_addsub_pd(_mm256_mul_pd(a, br), _mm256_mul_pd(as, bi));
  }
  static vd dup_real(const double* p) {
    // (p0, p0, p1, p1)
    const __m256d lo = _mm256_castpd128_pd256(_mm_loadu_pd(p));
    return _mm256_permute4x64_pd(lo, 0x50);
  }
  static vd bcast_cd(const cd& z) {
    return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(&z));
  }
};

}  // namespace

const KernelTable* avx2_table_impl() {
  static const KernelTable t = body::make_table<Avx2>();
  return &t;
}

}  // namespace ncar::simd

#else

namespace ncar::simd {
const KernelTable* avx2_table_impl() { return nullptr; }
}  // namespace ncar::simd

#endif
