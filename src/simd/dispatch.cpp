// Runtime backend selection: CPUID probe + SX4NCAR_SIMD override.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/simd.hpp"

namespace ncar::simd {

namespace {

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Backend::Sse42:
      return __builtin_cpu_supports("sse4.2") != 0;
    case Backend::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Backend::Avx512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    case Backend::Sse42:
    case Backend::Avx2:
    case Backend::Avx512:
      return false;
#endif
  }
  return false;
}

/// The table compiled for `b`, or null when that TU was built without the
/// instruction set (non-x86 target, toolchain too old).
const KernelTable* compiled_table(Backend b) {
  switch (b) {
    case Backend::Scalar:
      return &scalar_table();
    case Backend::Sse42:
      return sse42_table_impl();
    case Backend::Avx2:
      return avx2_table_impl();
    case Backend::Avx512:
      return avx512_table_impl();
  }
  return nullptr;
}

std::atomic<Backend>& active_storage() {
  static std::atomic<Backend> backend{backend_from_env(
      std::getenv("SX4NCAR_SIMD"))};
  return backend;
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Scalar:
      return "scalar";
    case Backend::Sse42:
      return "sse42";
    case Backend::Avx2:
      return "avx2";
    case Backend::Avx512:
      return "avx512";
  }
  return "scalar";
}

bool backend_from_string(const char* name, Backend& out, bool& is_auto) {
  is_auto = false;
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    out = Backend::Scalar;
  } else if (std::strcmp(name, "sse42") == 0) {
    out = Backend::Sse42;
  } else if (std::strcmp(name, "avx2") == 0) {
    out = Backend::Avx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    out = Backend::Avx512;
  } else if (std::strcmp(name, "auto") == 0) {
    is_auto = true;
    out = best_supported();
  } else {
    return false;
  }
  return true;
}

bool supported(Backend b) {
  return cpu_supports(b) && compiled_table(b) != nullptr;
}

Backend best_supported() {
  for (Backend b : {Backend::Avx512, Backend::Avx2, Backend::Sse42}) {
    if (supported(b)) return b;
  }
  return Backend::Scalar;
}

Backend backend_from_env(const char* value) {
  Backend parsed = Backend::Scalar;
  bool is_auto = false;
  if (!backend_from_string(value, parsed, is_auto) || is_auto) {
    return best_supported();
  }
  return supported(parsed) ? parsed : best_supported();
}

Backend active() { return active_storage().load(std::memory_order_relaxed); }

Backend set_backend(Backend b) {
  const Backend actual = supported(b) ? b : best_supported();
  active_storage().store(actual, std::memory_order_relaxed);
  return actual;
}

const KernelTable& table() { return table_for(active()); }

const KernelTable& table_for(Backend b) {
  const KernelTable* t = supported(b) ? compiled_table(b) : nullptr;
  return t != nullptr ? *t : scalar_table();
}

}  // namespace ncar::simd
