#pragma once
// Runtime-dispatched SIMD backends for the host-side numeric kernels.
//
// The paper's whole argument is that vector hardware turns the NCAR kernels
// into streaming loops; this layer gives the *host* the same treatment. At
// startup the CPU is probed (SSE4.2 / AVX2 / AVX-512F) and a function-pointer
// table of kernels is selected; every kernel also has a scalar reference
// implementation that is always available and always the semantic truth.
//
// Determinism contract (DESIGN.md section 12): every backend is bit-identical
// to the scalar reference. The kernels use only exactly-rounded IEEE
// operations (add/sub/mul/div/sqrt, copies, bitwise selects), never FMA (the
// SIMD translation units compile with -ffp-contract=off), keep libm
// transcendentals as per-lane scalar calls, and vectorise only across
// independent elements — reductions keep their original sequential order.
// Complex multiplies use the mul/addsub pattern, whose components equal the
// libstdc++ naive formula term by term (IEEE + and * are commutative
// bitwise). Remainder lanes fall back to the scalar reference code.
//
// Selection: SX4NCAR_SIMD=scalar|sse42|avx2|avx512|auto (default auto = best
// supported). Forcing a backend the CPU cannot run falls back to the best
// supported one; supported() lets callers (tests, CI probes) check first.

#include <complex>

namespace ncar::simd {

using cd = std::complex<double>;

enum class Backend {
  Scalar = 0,
  Sse42,
  Avx2,
  Avx512,
};

inline constexpr int kBackendCount = static_cast<int>(Backend::Avx512) + 1;

/// One dispatchable kernel set. All pointers are always non-null.
struct KernelTable {
  // --- streaming / memory ---------------------------------------------------
  /// dst[i] = src[i]
  void (*copy_d)(const double* src, double* dst, long n);
  /// dst[i] = src[idx[i]]
  void (*gather_d)(const double* src, const long* idx, double* dst, long n);
  /// dst[i] = src[i * stride]
  void (*strided_copy_d)(const double* src, long stride, double* dst, long n);

  // --- elementwise ----------------------------------------------------------
  /// acc[i] = acc[i] + x[i]
  void (*add_d)(double* acc, const double* x, long n);
  /// dst[i] = x[i] * s
  void (*scale_d)(const double* x, double s, double* dst, long n);
  /// dst[i] = (x[i] * s1) * s2
  void (*scale2_d)(const double* x, double s1, double s2, double* dst, long n);
  /// dst[i] = mask[i] != 0 ? a[i] : b[i]   (bitwise select; dst may alias
  /// a or b)
  void (*select_d)(const double* mask, const double* a, const double* b,
                   double* dst, long n);

  // --- fused model kernels --------------------------------------------------
  /// RADABS two-band absorptance for one level pair over the column axis:
  /// a12[c] = a1 + a2 with u = (1.66*w[c])*sp, a1 = 1 - exp(-8*sqrt(u)),
  /// a2 = 0.04*log(1 + u*pow((0.5*(t1[c]+t2[c]))/250, 0.5)).
  /// `scratch` must hold at least 4*n doubles.
  void (*radabs_pair_d)(const double* w, const double* t1, const double* t2,
                        double sp, double* a12, double* scratch, long n);
  /// MOM baroclinic advection-diffusion stencil over one latitude row:
  /// dst[i] = f[i] - adv*(uu[i]*(aip-aim) + vv[i]*(ajp-ajm))*0.5
  ///        + kappa*(aip+aim+ajp+ajm - 4*f[i]).
  void (*mom_stencil_d)(const double* f, const double* aip, const double* aim,
                        const double* ajp, const double* ajm, const double* uu,
                        const double* vv, double adv, double kappa,
                        double* dst, long n);
  /// Convective adjustment of one level pair across columns: where
  /// lower[i] > upper[i], both become 0.5*(upper[i]+lower[i]).
  void (*mix_unstable_d)(double* upper, double* lower, long n);
  /// POP free-surface continuity: eta[i] -= s * (0.5*((uxp-uxm)+(vyp-vym))).
  void (*pop_eta_d)(const double* uxp, const double* uxm, const double* vyp,
                    const double* vym, double s, double* eta, long n);
  /// POP momentum update (ncor = -coriolis, precomputed by the caller):
  /// u[i] += dtb*(cor*v - gscale*0.5*(exp-exm) - drag*u),
  /// v[i] += dtb*(ncor*u - gscale*0.5*(eyp-eym) - drag*v), simultaneously.
  void (*pop_momentum_d)(const double* ex_p, const double* ex_m,
                         const double* ey_p, const double* ey_m, double dtb,
                         double gscale, double cor, double drag, double* u,
                         double* v, long n);
  /// POP tracer advection-diffusion (nadv = -adv, precomputed):
  /// t[i] += nadv*(u*tx + v*ty) + kappa*lap with the cshift-style stencil.
  void (*pop_tracer_d)(const double* txp, const double* txm, const double* typ,
                       const double* tym, const double* u, const double* v,
                       double nadv, double kappa, double* t, long n);

  // --- complex / FFT --------------------------------------------------------
  /// Radix-2/3/5 FFT combine passes over `m` butterflies in place. `tw` is
  /// the stage twiddle table laid out tw[j*m + k]; `sign` is -1 forward /
  /// +1 inverse (baked into tw for the twiddle multiplies themselves).
  void (*fft_combine2)(cd* out, long m, const cd* tw);
  void (*fft_combine3)(cd* out, long m, const cd* tw, double sign);
  void (*fft_combine5)(cd* out, long m, const cd* tw, double sign);
  /// acc[k] += g * p[k]  (complex * real, componentwise)
  void (*axpy_cd_r)(cd* acc, cd g, const double* p, long n);
  /// Fixed-order reduction sum_k s[k]*p[k]: products may be vectorised, the
  /// accumulation is sequential in k (bit-identical to the scalar loop).
  cd (*dot_cd_r)(const cd* s, const double* p, long n);
  /// Two fixed-order reductions sharing one pass: sum s[k]*p[k] and
  /// sum s[k]*d[k].
  void (*dot2_cd_r)(const cd* s, const double* p, const double* d, long n,
                    cd* out_p, cd* out_d);
};

/// Stable lowercase name ("scalar", "sse42", "avx2", "avx512").
const char* to_string(Backend b);

/// Parse a backend name; "auto" sets `is_auto` and returns best_supported().
/// Returns false for unknown names (callers treat that as auto).
bool backend_from_string(const char* name, Backend& out, bool& is_auto);

/// True when this host can execute `b` (Scalar is always true; on non-x86
/// builds everything else is false).
bool supported(Backend b);

/// The most capable supported backend.
Backend best_supported();

/// The active backend (initialised from SX4NCAR_SIMD on first use).
Backend active();

/// Force a backend; unsupported requests clamp to best_supported().
/// Returns the backend actually selected.
Backend set_backend(Backend b);

/// The kernel table for the active backend.
const KernelTable& table();

/// The kernel table for a specific backend (clamped to Scalar when
/// unsupported) — the property battery compares these pairwise.
const KernelTable& table_for(Backend b);

/// Pure parse of an SX4NCAR_SIMD value (nullptr/empty/"auto"/unknown ->
/// best_supported). Exposed for tests.
Backend backend_from_env(const char* value);

// Per-ISA tables (internal wiring; null when the translation unit was built
// without that instruction set).
const KernelTable& scalar_table();
const KernelTable* sse42_table_impl();
const KernelTable* avx2_table_impl();
const KernelTable* avx512_table_impl();

}  // namespace ncar::simd
