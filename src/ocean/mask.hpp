#pragma once
// Synthetic land/ocean mask for the ocean model benchmarks.
//
// The NCAR MOM benchmark runs a global domain with real bathymetry (which
// we do not have); this mask builds the closest synthetic equivalent: two
// continental plates whose widths vary with latitude, plus an unbroken
// circumpolar "Southern Ocean" band. The resulting distribution of ocean
// points per latitude row is what drives the benchmark's block-decomposition
// load imbalance — a first-order term in MOM's measured scalability.

#include <vector>

#include "common/array.hpp"

namespace ncar::ocean {

class LandMask {
public:
  /// Build for an nlon x nlat grid; latitudes are equally spaced from
  /// -90+d/2 to 90-d/2.
  LandMask(int nlon, int nlat);

  int nlon() const { return nlon_; }
  int nlat() const { return nlat_; }

  bool ocean(int i, int j) const {
    return mask_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) != 0;
  }

  /// Ocean points in latitude row j.
  int ocean_in_row(int j) const {
    return row_counts_[static_cast<std::size_t>(j)];
  }

  /// Total ocean points.
  long ocean_total() const { return total_; }

  /// Global ocean fraction.
  double ocean_fraction() const {
    return static_cast<double>(total_) /
           (static_cast<double>(nlon_) * static_cast<double>(nlat_));
  }

  /// Max-over-blocks / mean load ratio for a block decomposition of the
  /// latitude rows over `p` processors (work = ocean points per block).
  double block_imbalance(int p) const;

private:
  int nlon_, nlat_;
  Array2D<int> mask_;
  std::vector<int> row_counts_;
  long total_ = 0;
};

}  // namespace ncar::ocean
