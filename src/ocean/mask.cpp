#include "ocean/mask.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ncar::ocean {

LandMask::LandMask(int nlon, int nlat)
    : nlon_(nlon),
      nlat_(nlat),
      mask_(static_cast<std::size_t>(nlon), static_cast<std::size_t>(nlat), 1),
      row_counts_(static_cast<std::size_t>(nlat), 0) {
  NCAR_REQUIRE(nlon >= 8 && nlat >= 8, "mask grid too small");

  for (int j = 0; j < nlat; ++j) {
    const double lat =
        -90.0 + (j + 0.5) * 180.0 / static_cast<double>(nlat);

    // Ocean fraction by latitude: an unbroken circumpolar band between
    // 64S and 40S, polar caps mostly land, and two continental plates
    // elsewhere leaving ~40% ocean.
    double frac;
    if (lat >= -64.0 && lat <= -40.0) {
      frac = 1.0;
    } else if (lat < -75.0 || lat > 78.0) {
      frac = 0.10;  // polar caps
    } else {
      frac = 0.41 + 0.06 * std::cos(lat * 0.10);
    }
    frac = std::clamp(frac, 0.0, 1.0);

    const int land = static_cast<int>(std::lround((1.0 - frac) * nlon));
    // Two plates: 60% of the land in one block, 40% in a second, separated
    // by an ocean channel so the plates never overlap; coastlines slope
    // with latitude.
    const int land1 = (land * 3) / 5;
    const int land2 = land - land1;
    const int ocean_gap = (nlon - land) / 2;
    const int start1 =
        static_cast<int>(nlon * 0.08 + 0.10 * nlon * std::sin(lat * M_PI / 180.0));
    const int start2 = start1 + land1 + ocean_gap;
    auto set_land = [&](int start, int len) {
      for (int k = 0; k < len; ++k) {
        const int i = ((start + k) % nlon + nlon) % nlon;
        mask_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = 0;
      }
    };
    set_land(start1, land1);
    set_land(start2, land2);

    int count = 0;
    for (int i = 0; i < nlon; ++i) {
      count += mask_(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    }
    row_counts_[static_cast<std::size_t>(j)] = count;
    total_ += count;
  }
}

double LandMask::block_imbalance(int p) const {
  NCAR_REQUIRE(p >= 1 && p <= nlat_, "processor count");
  double max_block = 0;
  for (int r = 0; r < p; ++r) {
    const int lo = static_cast<int>(static_cast<long>(nlat_) * r / p);
    const int hi = static_cast<int>(static_cast<long>(nlat_) * (r + 1) / p);
    double w = 0;
    for (int j = lo; j < hi; ++j) {
      w += row_counts_[static_cast<std::size_t>(j)];
    }
    max_block = std::max(max_block, w);
  }
  const double mean = static_cast<double>(total_) / p;
  return max_block / mean;
}

}  // namespace ncar::ocean
