#pragma once
// POP — the Parallel Ocean Program benchmark (paper 4.7.3).
//
// Los Alamos' POP is a free-surface, flat-bottom ocean model written in
// Fortran 90 array syntax with heavy use of CSHIFT for finite differences.
// The paper's result: with a pre-release NEC F90 compiler whose CSHIFT
// intrinsic "did not vectorize", the 2-degree POP benchmark still sustained
// 537 Mflops on one SX-4 processor.
//
// This implementation evolves a free-surface barotropic subsystem
// (subcycled shallow-water continuity + momentum) and per-level tracer
// advection-diffusion, written exactly in that style: whole-array
// operations built from a cshift() helper. Whole-array arithmetic charges
// the vector pipes; every cshift charges the *scalar* unit, reproducing the
// compiler deficiency the paper describes.

#include "common/array.hpp"
#include "sxs/node.hpp"

namespace ncar::ocean {

/// F90-style circular shift of a 2-D field along dim 0 (longitude,
/// periodic) or dim 1 (latitude, clamped walls).
Array2D<double> cshift(const Array2D<double>& a, int dim, int offset);

struct PopConfig {
  int nlon = 180;   ///< 2-degree global grid
  int nlat = 90;
  int nlev = 20;
  double dt_seconds = 1800.0;
  int barotropic_subcycles = 10;
  double gravity = 9.8;
  double depth = 4000.0;
  double coriolis = 1e-4;
  double drag = 1e-5;
  double kappa = 0.04;       ///< tracer diffusivity (grid units per dt)

  // --- cost model ----------------------------------------------------------
  double array_op_flops = 3.0;       ///< per point per whole-array operation
  double cshift_mem_words = 2.0;     ///< scalar copy traffic per point
  double cshift_other_ops = 2.55;
  /// Extra vectorised physics (EOS, mixing) flops per point per level.
  double physics_flops = 100.0;

  static PopConfig two_degree();
};

class Pop {
public:
  Pop(const PopConfig& cfg, sxs::Node& node);

  const PopConfig& config() const { return cfg_; }

  void reset();

  /// One model step (barotropic subcycles + tracers); single processor, as
  /// the paper's POP figure is a one-CPU measurement.
  double step();

  long steps_taken() const { return steps_; }

  // --- diagnostics ---------------------------------------------------------
  /// Mean surface height (free-surface volume conservation check).
  double mean_eta() const;
  double surface_ke() const;
  double mean_tracer(int level) const;
  double checksum() const;

  /// Sustained Cray-equivalent Mflops over `nsteps` fresh steps.
  double measure_mflops(int nsteps = 5);
  /// Fraction of simulated time spent in unvectorised CSHIFT code.
  double cshift_time_fraction() const;

private:
  void charge_array_op(int count, long pts);
  void charge_cshift(int count, long pts);
  /// cshift() into a preallocated destination (no per-call allocation; the
  /// copies are memcpy runs, bit-identical to the elementwise original).
  void cshift_into(const Array2D<double>& a, int dim, int offset,
                   Array2D<double>& out) const;

  PopConfig cfg_;
  sxs::Node* node_;
  Array2D<double> eta_, u_, v_;
  std::vector<Array2D<double>> tracer_;
  // Reusable shift destinations for the four-stencil CSHIFT pattern.
  Array2D<double> sh1_, sh2_, sh3_, sh4_;
  long steps_ = 0;
  double cshift_seconds_ = 0;
  double total_seconds_ = 0;
};

}  // namespace ncar::ocean
