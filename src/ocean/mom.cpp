#include "ocean/mom.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "simd/simd.hpp"
#include "sxs/ops.hpp"

namespace ncar::ocean {

MomConfig MomConfig::high_resolution() { return MomConfig{}; }

MomConfig MomConfig::low_resolution() {
  MomConfig c;
  c.nlon = 120;
  c.nlat = 60;
  c.nlev = 25;
  return c;
}

Mom::Mom(const MomConfig& cfg, sxs::Node& node)
    : cfg_(cfg),
      node_(&node),
      mask_(cfg.nlon, cfg.nlat),
      temp_(static_cast<std::size_t>(cfg.nlon), static_cast<std::size_t>(cfg.nlat),
            static_cast<std::size_t>(cfg.nlev)),
      salt_(temp_.ni(), temp_.nj(), temp_.nk()),
      psi_(temp_.ni(), temp_.nj()),
      forcing_(temp_.ni(), temp_.nj()),
      u_(temp_.ni(), temp_.nj()),
      v_(temp_.ni(), temp_.nj()),
      scratch_(temp_.ni(), temp_.nj(), temp_.nk()),
      mask_c_(temp_.ni(), temp_.nj()),
      mask_ip_(temp_.ni(), temp_.nj()),
      mask_im_(temp_.ni(), temp_.nj()),
      mask_jp_(temp_.ni(), temp_.nj()),
      mask_jm_(temp_.ni(), temp_.nj()),
      sip_(temp_.ni()),
      sim_(temp_.ni()),
      aip_(temp_.ni()),
      aim_(temp_.ni()),
      ajp_(temp_.ni()),
      ajm_(temp_.ni()),
      uu_(temp_.ni()),
      vv_(temp_.ni()),
      zeros_(temp_.ni(), 0.0) {
  NCAR_REQUIRE(cfg.nlev >= 2, "need at least two levels");
  NCAR_REQUIRE(cfg.sor_iters >= 1 && cfg.diag_every >= 1, "config");
  // The land mask never changes, so the neighbour selects of the baroclinic
  // stencil can be driven by precomputed 0/1 rows.
  for (int j = 0; j < cfg.nlat; ++j) {
    for (int i = 0; i < cfg.nlon; ++i) {
      const int im = (i + cfg.nlon - 1) % cfg.nlon, ip = (i + 1) % cfg.nlon;
      const std::size_t ii = static_cast<std::size_t>(i);
      const std::size_t jj = static_cast<std::size_t>(j);
      mask_c_(ii, jj) = mask_.ocean(i, j) ? 1.0 : 0.0;
      mask_ip_(ii, jj) = mask_.ocean(ip, j) ? 1.0 : 0.0;
      mask_im_(ii, jj) = mask_.ocean(im, j) ? 1.0 : 0.0;
      mask_jp_(ii, jj) =
          (j + 1 < cfg.nlat && mask_.ocean(i, j + 1)) ? 1.0 : 0.0;
      mask_jm_(ii, jj) = (j > 0 && mask_.ocean(i, j - 1)) ? 1.0 : 0.0;
    }
  }
  reset();
}

void Mom::reset() {
  const int nlon = cfg_.nlon, nlat = cfg_.nlat, nlev = cfg_.nlev;
  for (int k = 0; k < nlev; ++k) {
    const double depth_frac = static_cast<double>(k) / nlev;
    for (int j = 0; j < nlat; ++j) {
      const double lat = -90.0 + (j + 0.5) * 180.0 / nlat;
      const double surface_t = 2.0 + 26.0 * std::cos(lat * M_PI / 180.0);
      for (int i = 0; i < nlon; ++i) {
        const std::size_t ii = static_cast<std::size_t>(i);
        const std::size_t jj = static_cast<std::size_t>(j);
        const std::size_t kk = static_cast<std::size_t>(k);
        temp_(ii, jj, kk) =
            mask_.ocean(i, j) ? surface_t * std::exp(-3.0 * depth_frac) : 0.0;
        salt_(ii, jj, kk) = mask_.ocean(i, j) ? 35.0 - 1.0 * depth_frac : 0.0;
      }
    }
  }
  psi_.fill(0.0);
  // Wind-stress curl forcing: westerlies/trades pattern.
  for (int j = 0; j < cfg_.nlat; ++j) {
    const double lat = -90.0 + (j + 0.5) * 180.0 / cfg_.nlat;
    for (int i = 0; i < cfg_.nlon; ++i) {
      forcing_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          mask_.ocean(i, j) ? 1e-11 * std::sin(2.0 * lat * M_PI / 180.0) : 0.0;
    }
  }
  steps_ = 0;
  sor_residual_ = 0;
}

void Mom::solve_barotropic() {
  // Gauss-Seidel SOR for del^2 psi = forcing, psi = 0 on land, periodic in
  // longitude, five-point stencil on the (unit-spaced) grid.
  const int nlon = cfg_.nlon, nlat = cfg_.nlat;
  const double w = cfg_.sor_omega;
  for (int it = 0; it < cfg_.sor_iters; ++it) {
    for (int j = 1; j < nlat - 1; ++j) {
      for (int i = 0; i < nlon; ++i) {
        if (!mask_.ocean(i, j)) continue;
        const int im = (i + nlon - 1) % nlon, ip = (i + 1) % nlon;
        const std::size_t jj = static_cast<std::size_t>(j);
        const double nbr =
            psi_(static_cast<std::size_t>(im), jj) +
            psi_(static_cast<std::size_t>(ip), jj) +
            psi_(static_cast<std::size_t>(i), jj - 1) +
            psi_(static_cast<std::size_t>(i), jj + 1);
        const double gs =
            0.25 * (nbr - forcing_(static_cast<std::size_t>(i), jj));
        psi_(static_cast<std::size_t>(i), jj) =
            (1.0 - w) * psi_(static_cast<std::size_t>(i), jj) + w * gs;
      }
    }
  }
  // Residual check.
  double res = 0;
  for (int j = 1; j < nlat - 1; ++j) {
    for (int i = 0; i < nlon; ++i) {
      if (!mask_.ocean(i, j)) continue;
      const int im = (i + nlon - 1) % nlon, ip = (i + 1) % nlon;
      const std::size_t jj = static_cast<std::size_t>(j);
      const double lap = psi_(static_cast<std::size_t>(im), jj) +
                         psi_(static_cast<std::size_t>(ip), jj) +
                         psi_(static_cast<std::size_t>(i), jj - 1) +
                         psi_(static_cast<std::size_t>(i), jj + 1) -
                         4.0 * psi_(static_cast<std::size_t>(i), jj);
      res = std::max(res, std::abs(lap - forcing_(static_cast<std::size_t>(i), jj)));
    }
  }
  sor_residual_ = res;

  // Barotropic velocities from the streamfunction (masked central diffs).
  for (int j = 1; j < nlat - 1; ++j) {
    for (int i = 0; i < nlon; ++i) {
      const std::size_t jj = static_cast<std::size_t>(j);
      if (!mask_.ocean(i, j)) {
        u_(static_cast<std::size_t>(i), jj) = 0;
        v_(static_cast<std::size_t>(i), jj) = 0;
        continue;
      }
      const int im = (i + nlon - 1) % nlon, ip = (i + 1) % nlon;
      u_(static_cast<std::size_t>(i), jj) =
          -0.5 * (psi_(static_cast<std::size_t>(i), jj + 1) -
                  psi_(static_cast<std::size_t>(i), jj - 1)) * 1e4;
      v_(static_cast<std::size_t>(i), jj) =
          0.5 * (psi_(static_cast<std::size_t>(ip), jj) -
                 psi_(static_cast<std::size_t>(im), jj)) * 1e4;
    }
  }
}

void Mom::baroclinic_step() {
  const int nlon = cfg_.nlon, nlat = cfg_.nlat, nlev = cfg_.nlev;
  const double kappa = 0.05;  // grid-units diffusivity * dt
  const double adv = 0.2;     // CFL-safe advection coefficient
  const simd::KernelTable& kt = simd::table();
  const std::size_t row_bytes = (static_cast<std::size_t>(nlon) - 1) *
                                sizeof(double);

  for (auto* field : {&temp_, &salt_}) {
    auto& f = *field;
    for (int k = 0; k < nlev; ++k) {
      const double depth_damp = std::exp(-2.0 * k / nlev);
      const std::size_t kk = static_cast<std::size_t>(k);
      for (int j = 1; j < nlat - 1; ++j) {
        const std::size_t jj = static_cast<std::size_t>(j);
        const double* fc = &f(0, jj, kk);
        // Periodic i-shifts of the row, then coastline no-flux selects:
        // a land neighbour contributes the centre value instead.
        std::memcpy(sip_.data(), fc + 1, row_bytes);
        sip_[static_cast<std::size_t>(nlon) - 1] = fc[0];
        sim_[0] = fc[static_cast<std::size_t>(nlon) - 1];
        std::memcpy(sim_.data() + 1, fc, row_bytes);
        kt.select_d(&mask_ip_(0, jj), sip_.data(), fc, aip_.data(), nlon);
        kt.select_d(&mask_im_(0, jj), sim_.data(), fc, aim_.data(), nlon);
        kt.select_d(&mask_jp_(0, jj), &f(0, jj + 1, kk), fc, ajp_.data(),
                    nlon);
        kt.select_d(&mask_jm_(0, jj), &f(0, jj - 1, kk), fc, ajm_.data(),
                    nlon);
        kt.scale_d(&u_(0, jj), depth_damp, uu_.data(), nlon);
        kt.scale_d(&v_(0, jj), depth_damp, vv_.data(), nlon);
        double* srow = &scratch_(0, jj, kk);
        kt.mom_stencil_d(fc, aip_.data(), aim_.data(), ajp_.data(),
                         ajm_.data(), uu_.data(), vv_.data(), adv, kappa,
                         srow, nlon);
        kt.select_d(&mask_c_(0, jj), srow, zeros_.data(), srow, nlon);
      }
    }
    // Commit, then convective adjustment (the unvectorised column loop).
    for (int k = 0; k < nlev; ++k) {
      const std::size_t kk = static_cast<std::size_t>(k);
      for (int j = 1; j < nlat - 1; ++j) {
        const std::size_t jj = static_cast<std::size_t>(j);
        kt.select_d(&mask_c_(0, jj), &scratch_(0, jj, kk), &f(0, jj, kk),
                    &f(0, jj, kk), nlon);
      }
    }
  }
  // Convective adjustment on temperature columns: mix statically unstable
  // neighbours (deeper water must not be warmer). Columns are independent
  // and each column still sees its k-cascade in ascending order, so running
  // the level pair across whole rows reorders nothing; land columns are
  // identically zero, so the lower > upper test never fires there.
  for (int k = 0; k + 1 < nlev; ++k) {
    const std::size_t kk = static_cast<std::size_t>(k);
    for (int j = 1; j < nlat - 1; ++j) {
      const std::size_t jj = static_cast<std::size_t>(j);
      kt.mix_unstable_d(&temp_(0, jj, kk), &temp_(0, jj, kk + 1), nlon);
    }
  }
}

void Mom::compute_diagnostics() {
  double sum_t = 0, ke = 0;
  long n = 0;
  for (int j = 0; j < cfg_.nlat; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      if (!mask_.ocean(i, j)) continue;
      const std::size_t ii = static_cast<std::size_t>(i);
      const std::size_t jj = static_cast<std::size_t>(j);
      ke += 0.5 * (u_(ii, jj) * u_(ii, jj) + v_(ii, jj) * v_(ii, jj));
      for (int k = 0; k < cfg_.nlev; ++k) {
        sum_t += temp_(ii, jj, static_cast<std::size_t>(k));
        ++n;
      }
    }
  }
  diag_mean_t_ = n > 0 ? sum_t / static_cast<double>(n) : 0.0;
  diag_ke_ = ke;
}

double Mom::step(int ncpu) {
  NCAR_REQUIRE(ncpu >= 1 && ncpu <= node_->cpu_count(), "processor count");

  // ---- numerics -----------------------------------------------------------
  solve_barotropic();
  baroclinic_step();
  if ((steps_ + 1) % cfg_.diag_every == 0) compute_diagnostics();

  // ---- timing -------------------------------------------------------------
  const double elapsed = charge_step(ncpu, steps_);
  ++steps_;
  return elapsed;
}

double Mom::charge_step(int ncpu, long step_index) const {
  NCAR_REQUIRE(ncpu >= 1 && ncpu <= node_->cpu_count(), "processor count");
  const int nlat = cfg_.nlat, nlev = cfg_.nlev;
  double elapsed = 0;

  // ---- timing: rigid-lid SOR — one parallel sweep + barrier per iteration.
  for (int it = 0; it < cfg_.sor_iters; ++it) {
    elapsed += node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
      const int lo = static_cast<int>(static_cast<long>(nlat) * rank / ncpu);
      const int hi = static_cast<int>(static_cast<long>(nlat) * (rank + 1) / ncpu);
      for (int j = lo; j < hi; ++j) {
        const int pts = mask_.ocean_in_row(j);
        if (pts == 0) continue;
        sxs::VectorOp op;
        op.n = pts;
        op.flops_per_elem = 7.0;
        op.load_words = 5.0;
        op.gather_words = 1.0;  // masked compression
        op.store_words = 1.0;
        op.pipe_groups = 2;
        cpu.vec(op);
      }
    });
  }

  // ---- timing: baroclinic region, block-decomposed over latitude --------
  elapsed += node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    const int lo = static_cast<int>(static_cast<long>(nlat) * rank / ncpu);
    const int hi = static_cast<int>(static_cast<long>(nlat) * (rank + 1) / ncpu);
    for (int j = lo; j < hi; ++j) {
      const int pts = mask_.ocean_in_row(j);
      if (pts == 0) continue;
      // Vectorised finite-difference passes.
      sxs::VectorOp op;
      op.n = pts;
      op.flops_per_elem = cfg_.vec_flops;
      op.load_words = cfg_.vec_loads;
      op.load_stride = 3;
      op.gather_words = cfg_.vec_gather;
      op.store_words = cfg_.vec_stores;
      op.pipe_groups = 2;
      cpu.vec(op, static_cast<long>(nlev) * cfg_.vec_passes);
      // Unvectorised EOS / convective adjustment / implicit mixing.
      sxs::ScalarOp sc;
      sc.iters = static_cast<long>(pts) * nlev;
      sc.flops_per_iter = cfg_.sc_flops;
      sc.mem_words_per_iter = cfg_.sc_mem;
      sc.other_ops_per_iter = cfg_.sc_other;
      sc.working_set_bytes = static_cast<double>(pts) * nlev * 8.0;
      sc.reuse_fraction = 0.2;
      cpu.scalar(sc);
    }
  });

  // ---- timing: serial diagnostics every diag_every steps ----------------
  if ((step_index + 1) % cfg_.diag_every == 0) {
    elapsed += node_->serial([&](sxs::Cpu& cpu) {
      sxs::ScalarOp d;
      d.iters = mask_.ocean_total() * static_cast<long>(nlev) * cfg_.diag_passes;
      d.flops_per_iter = cfg_.diag_flops;
      d.mem_words_per_iter = cfg_.diag_mem;
      d.other_ops_per_iter = cfg_.diag_other;
      d.reuse_fraction = 0.0;
      cpu.scalar(d);
    });
  }

  return elapsed;
}

double Mom::mean_temperature() const {
  double sum = 0;
  long n = 0;
  for (int j = 0; j < cfg_.nlat; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      if (!mask_.ocean(i, j)) continue;
      for (int k = 0; k < cfg_.nlev; ++k) {
        sum += temp_(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                     static_cast<std::size_t>(k));
        ++n;
      }
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Mom::mean_salinity() const {
  double sum = 0;
  long n = 0;
  for (int j = 0; j < cfg_.nlat; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      if (!mask_.ocean(i, j)) continue;
      for (int k = 0; k < cfg_.nlev; ++k) {
        sum += salt_(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                     static_cast<std::size_t>(k));
        ++n;
      }
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Mom::barotropic_ke() const {
  double ke = 0;
  for (int j = 0; j < cfg_.nlat; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      const std::size_t jj = static_cast<std::size_t>(j);
      ke += 0.5 * (u_(ii, jj) * u_(ii, jj) + v_(ii, jj) * v_(ii, jj));
    }
  }
  return ke;
}

double Mom::last_sor_residual() const { return sor_residual_; }

bool Mom::columns_statically_stable() const {
  for (int j = 1; j < cfg_.nlat - 1; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      if (!mask_.ocean(i, j)) continue;
      for (int k = 0; k + 1 < cfg_.nlev; ++k) {
        const double upper = temp_(static_cast<std::size_t>(i),
                                   static_cast<std::size_t>(j),
                                   static_cast<std::size_t>(k));
        const double lower = temp_(static_cast<std::size_t>(i),
                                   static_cast<std::size_t>(j),
                                   static_cast<std::size_t>(k + 1));
        if (lower > upper + 1e-12) return false;
      }
    }
  }
  return true;
}

double Mom::checksum() const {
  double c = 0;
  for (double v : temp_.flat()) c += v;
  for (double v : salt_.flat()) c += 0.1 * v;
  for (double v : psi_.flat()) c += v;
  return c;
}

std::vector<double> Mom::checkpoint() const {
  std::vector<double> out;
  out.push_back(static_cast<double>(steps_));
  out.insert(out.end(), temp_.flat().begin(), temp_.flat().end());
  out.insert(out.end(), salt_.flat().begin(), salt_.flat().end());
  out.insert(out.end(), psi_.flat().begin(), psi_.flat().end());
  out.insert(out.end(), u_.flat().begin(), u_.flat().end());
  out.insert(out.end(), v_.flat().begin(), v_.flat().end());
  return out;
}

void Mom::restore(const std::vector<double>& state) {
  const std::size_t expect =
      1 + 2 * temp_.size() + psi_.size() + u_.size() + v_.size();
  NCAR_REQUIRE(state.size() == expect,
               "checkpoint does not match this configuration");
  std::size_t pos = 0;
  steps_ = static_cast<long>(state[pos++]);
  for (auto& v : temp_.flat()) v = state[pos++];
  for (auto& v : salt_.flat()) v = state[pos++];
  for (auto& v : psi_.flat()) v = state[pos++];
  for (auto& v : u_.flat()) v = state[pos++];
  for (auto& v : v_.flat()) v = state[pos++];
}

double Mom::checkpoint_bytes() const {
  const std::size_t doubles =
      1 + 2 * temp_.size() + psi_.size() + u_.size() + v_.size();
  return 8.0 * static_cast<double>(doubles);
}

double Mom::measure_step_seconds(int ncpu, int nsteps) {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  double total = 0;
  for (int s = 0; s < nsteps; ++s) total += step(ncpu);
  return total / nsteps;
}

double Mom::measure_charge_seconds(int ncpu, int nsteps) const {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  double total = 0;
  for (int s = 0; s < nsteps; ++s) total += charge_step(ncpu, s);
  return total / nsteps;
}

}  // namespace ncar::ocean
