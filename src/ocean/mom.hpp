#pragma once
// MOM — rigid-lid finite-difference ocean model benchmark (paper 4.7.2).
//
// Based on the structure of GFDL MOM 1.1 as the NCAR benchmark configures
// it: rigid-lid Boussinesq primitive equations in latitude-longitude-depth
// coordinates, predicting temperature, salinity and velocity. The high
// resolution version is nominally 1 degree with 45 levels; the low
// resolution 3-degree / 25-level version exists "for familiarization and
// porting verification". The benchmark runs 350 timesteps and prints model
// diagnostics every 10 timesteps — which the paper names as one reason for
// the modest scalability (Table 7).
//
// The pieces that drive performance are all here and real:
//   * a barotropic streamfunction Poisson solve (SOR) on the masked grid —
//     the rigid-lid solver, synchronisation-heavy at high CPU counts;
//   * baroclinic advection-diffusion of T and S over the masked 3-D grid,
//     block-decomposed by latitude (load imbalance from the continents);
//   * unvectorised per-point work (equation of state, convective
//     adjustment, implicit vertical mixing) charged to the scalar unit —
//     "the algorithms and coding of the application";
//   * serial diagnostics every 10 steps.

#include "common/array.hpp"
#include "ocean/mask.hpp"
#include "sxs/node.hpp"

namespace ncar::ocean {

struct MomConfig {
  int nlon = 360;
  int nlat = 180;
  int nlev = 45;
  double dt_seconds = 3600.0;
  int diag_every = 10;   ///< the benchmark prints diagnostics every 10 steps
  int sor_iters = 60;    ///< rigid-lid SOR iterations per step
  double sor_omega = 1.7;

  // --- cost model (per ocean point per step), calibrated to Table 7 -------
  int vec_passes = 17;          ///< vectorised FD passes over the 3-D grid
  double vec_flops = 8.0;       ///< per point per pass
  double vec_loads = 5.0;
  double vec_gather = 1.0;      ///< masked compression list-vectors
  double vec_stores = 1.0;
  double sc_flops = 90.0;       ///< unvectorised EOS / convection / mixing
  double sc_mem = 90.0;
  double sc_other = 211.0;
  double diag_flops = 14.0;     ///< serial diagnostics, per 3-D point
  double diag_mem = 20.0;
  double diag_other = 34.0;
  int diag_passes = 2;

  /// The benchmark configuration: nominal 1 degree, 45 levels.
  static MomConfig high_resolution();
  /// The porting/verification configuration: 3 degrees, 25 levels.
  static MomConfig low_resolution();
};

class Mom {
public:
  Mom(const MomConfig& cfg, sxs::Node& node);

  const MomConfig& config() const { return cfg_; }
  const LandMask& mask() const { return mask_; }

  void reset();

  /// One timestep on `ncpu` processors; returns simulated seconds
  /// (diagnostics included on every diag_every-th step).
  double step(int ncpu);

  /// Charge one step's timing model without advancing the ocean state.
  /// MOM's charges depend only on the configuration, the (immutable) land
  /// mask, `ncpu`, and the step index parity for the every-diag_every-steps
  /// serial diagnostics — so from the same node state this issues exactly
  /// the charge sequence step() at `step_index` would, returning the
  /// bit-identical simulated seconds.
  double charge_step(int ncpu, long step_index) const;

  long steps_taken() const { return steps_; }

  // --- physical diagnostics ------------------------------------------------
  double mean_temperature() const;
  double mean_salinity() const;
  double barotropic_ke() const;      ///< kinetic energy proxy of psi flow
  double last_sor_residual() const;  ///< max |residual| after the solve
  /// True when no ocean column has deeper water warmer than shallower
  /// water (convective adjustment invariant).
  bool columns_statically_stable() const;
  double checksum() const;

  /// Average simulated seconds per step over `nsteps` fresh steps (the
  /// every-10-steps diagnostics pattern should divide nsteps).
  double measure_step_seconds(int ncpu, int nsteps = 10);
  /// Charge-replay variant of measure_step_seconds: same simulated numbers
  /// (see charge_step), without running the host-side numerics.
  double measure_charge_seconds(int ncpu, int nsteps = 10) const;

  // --- checkpoint / restart (paper section 2.6.2) --------------------------
  std::vector<double> checkpoint() const;
  void restore(const std::vector<double>& state);
  double checkpoint_bytes() const;

private:
  void solve_barotropic();
  void baroclinic_step();
  void compute_diagnostics();

  MomConfig cfg_;
  sxs::Node* node_;
  LandMask mask_;
  Array3D<double> temp_, salt_;
  Array2D<double> psi_, forcing_, u_, v_;
  Array3D<double> scratch_;
  // Precomputed 0/1 neighbour masks (centre, i+1, i-1, j+1, j-1) and
  // per-row workspace for the vectorised baroclinic stencil — sized in the
  // constructor so baroclinic_step never allocates.
  Array2D<double> mask_c_, mask_ip_, mask_im_, mask_jp_, mask_jm_;
  std::vector<double> sip_, sim_, aip_, aim_, ajp_, ajm_, uu_, vv_, zeros_;
  double sor_residual_ = 0;
  double diag_mean_t_ = 0, diag_ke_ = 0;
  long steps_ = 0;
};

}  // namespace ncar::ocean
