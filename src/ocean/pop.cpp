#include "ocean/pop.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "simd/simd.hpp"
#include "sxs/ops.hpp"

namespace ncar::ocean {

Array2D<double> cshift(const Array2D<double>& a, int dim, int offset) {
  NCAR_REQUIRE(dim == 0 || dim == 1, "dim must be 0 or 1");
  const long ni = static_cast<long>(a.ni());
  const long nj = static_cast<long>(a.nj());
  Array2D<double> out(a.ni(), a.nj());
  for (long j = 0; j < nj; ++j) {
    for (long i = 0; i < ni; ++i) {
      long si = i, sj = j;
      if (dim == 0) {
        si = ((i + offset) % ni + ni) % ni;  // periodic longitude
      } else {
        sj = std::min(std::max(j + offset, 0L), nj - 1);  // wall latitude
      }
      out(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          a(static_cast<std::size_t>(si), static_cast<std::size_t>(sj));
    }
  }
  return out;
}

PopConfig PopConfig::two_degree() { return PopConfig{}; }

Pop::Pop(const PopConfig& cfg, sxs::Node& node)
    : cfg_(cfg),
      node_(&node),
      eta_(static_cast<std::size_t>(cfg.nlon), static_cast<std::size_t>(cfg.nlat)),
      u_(eta_.ni(), eta_.nj()),
      v_(eta_.ni(), eta_.nj()),
      sh1_(eta_.ni(), eta_.nj()),
      sh2_(eta_.ni(), eta_.nj()),
      sh3_(eta_.ni(), eta_.nj()),
      sh4_(eta_.ni(), eta_.nj()) {
  NCAR_REQUIRE(cfg.nlon >= 8 && cfg.nlat >= 8 && cfg.nlev >= 1, "grid shape");
  NCAR_REQUIRE(cfg.barotropic_subcycles >= 1, "subcycles");
  tracer_.assign(static_cast<std::size_t>(cfg.nlev),
                 Array2D<double>(eta_.ni(), eta_.nj()));
  reset();
}

void Pop::reset() {
  for (std::size_t j = 0; j < eta_.nj(); ++j) {
    const double lat = -90.0 + (static_cast<double>(j) + 0.5) * 180.0 /
                                   static_cast<double>(eta_.nj());
    for (std::size_t i = 0; i < eta_.ni(); ++i) {
      const double lon = 360.0 * static_cast<double>(i) /
                         static_cast<double>(eta_.ni());
      eta_(i, j) = 0.1 * std::sin(2.0 * lon * M_PI / 180.0) *
                   std::cos(lat * M_PI / 180.0);
      u_(i, j) = 0.0;
      v_(i, j) = 0.0;
    }
  }
  for (std::size_t l = 0; l < tracer_.size(); ++l) {
    for (std::size_t j = 0; j < eta_.nj(); ++j) {
      const double lat = -90.0 + (static_cast<double>(j) + 0.5) * 180.0 /
                                     static_cast<double>(eta_.nj());
      for (std::size_t i = 0; i < eta_.ni(); ++i) {
        tracer_[l](i, j) = (2.0 + 26.0 * std::cos(lat * M_PI / 180.0)) *
                           std::exp(-2.0 * static_cast<double>(l) /
                                    static_cast<double>(tracer_.size()));
      }
    }
  }
  steps_ = 0;
  cshift_seconds_ = 0;
  total_seconds_ = 0;
}

void Pop::charge_array_op(int count, long pts) {
  const double t = node_->serial([&](sxs::Cpu& cpu) {
    sxs::VectorOp op;
    op.n = pts;
    op.flops_per_elem = cfg_.array_op_flops;
    op.load_words = 2.0;
    op.store_words = 1.0;
    op.pipe_groups = 2;
    cpu.vec(op, count);
  });
  total_seconds_ += t;
}

void Pop::charge_cshift(int count, long pts) {
  const double t = node_->serial([&](sxs::Cpu& cpu) {
    sxs::ScalarOp op;
    op.iters = pts * count;
    op.mem_words_per_iter = cfg_.cshift_mem_words;
    op.other_ops_per_iter = cfg_.cshift_other_ops;
    // The scalar unit's data prefetching (paper section 2.1) streams the
    // copy; the cost is issue-limited, not miss-limited.
    op.working_set_bytes = 4096;
    op.reuse_fraction = 1.0;
    cpu.scalar(op);
  });
  cshift_seconds_ += t;
  total_seconds_ += t;
}

void Pop::cshift_into(const Array2D<double>& a, int dim, int offset,
                      Array2D<double>& out) const {
  NCAR_REQUIRE(dim == 0 || dim == 1, "dim must be 0 or 1");
  const long ni = static_cast<long>(a.ni());
  const long nj = static_cast<long>(a.nj());
  if (dim == 0) {
    const long o = ((offset % ni) + ni) % ni;  // periodic longitude
    for (long j = 0; j < nj; ++j) {
      const double* src = &a(0, static_cast<std::size_t>(j));
      double* dst = &out(0, static_cast<std::size_t>(j));
      std::memcpy(dst, src + o, static_cast<std::size_t>(ni - o) * 8);
      std::memcpy(dst + (ni - o), src, static_cast<std::size_t>(o) * 8);
    }
  } else {
    for (long j = 0; j < nj; ++j) {
      const long sj = std::min(std::max(j + offset, 0L), nj - 1);  // walls
      std::memcpy(&out(0, static_cast<std::size_t>(j)),
                  &a(0, static_cast<std::size_t>(sj)),
                  static_cast<std::size_t>(ni) * 8);
    }
  }
}

double Pop::step() {
  const long pts = static_cast<long>(eta_.ni()) * static_cast<long>(eta_.nj());
  const double before = total_seconds_;

  // --- barotropic free-surface subcycling (the paper's free-surface
  // formulation replaces MOM's rigid-lid elliptic solve) ------------------
  const double dtb =
      cfg_.dt_seconds / static_cast<double>(cfg_.barotropic_subcycles);
  const double hscale = cfg_.depth * 2e-7;  // grid-scaled wave speed factor
  const ncar::simd::KernelTable& kt = ncar::simd::table();
  for (int sub = 0; sub < cfg_.barotropic_subcycles; ++sub) {
    // div = dx(u) + dy(v) using CSHIFT differences (4 shifts).
    cshift_into(u_, 0, 1, sh1_);
    cshift_into(u_, 0, -1, sh2_);
    cshift_into(v_, 1, 1, sh3_);
    cshift_into(v_, 1, -1, sh4_);
    charge_cshift(4, pts);
    // eta update + gradient of eta (2 shifts) + momentum updates. The flat
    // views walk (i, j) in exactly the nested loop order they replace.
    kt.pop_eta_d(sh1_.flat().data(), sh2_.flat().data(), sh3_.flat().data(),
                 sh4_.flat().data(), dtb * hscale, eta_.flat().data(), pts);
    cshift_into(eta_, 0, 1, sh1_);
    cshift_into(eta_, 0, -1, sh2_);
    cshift_into(eta_, 1, 1, sh3_);
    cshift_into(eta_, 1, -1, sh4_);
    charge_cshift(4, pts);
    const double gscale = cfg_.gravity * 5e-7;  // grid-scaled gradient
    kt.pop_momentum_d(sh1_.flat().data(), sh2_.flat().data(),
                      sh3_.flat().data(), sh4_.flat().data(), dtb, gscale,
                      cfg_.coriolis, cfg_.drag, u_.flat().data(),
                      v_.flat().data(), pts);
    // Walls: no meridional flow through the north/south boundaries.
    for (std::size_t i = 0; i < eta_.ni(); ++i) {
      v_(i, 0) = 0.0;
      v_(i, eta_.nj() - 1) = 0.0;
    }
    charge_array_op(9, pts);
  }

  // --- per-level tracer advection-diffusion (array syntax + cshift) ------
  for (auto& t : tracer_) {
    cshift_into(t, 0, 1, sh1_);
    cshift_into(t, 0, -1, sh2_);
    cshift_into(t, 1, 1, sh3_);
    cshift_into(t, 1, -1, sh4_);
    charge_cshift(4, pts);
    const double adv = 0.2;
    kt.pop_tracer_d(sh1_.flat().data(), sh2_.flat().data(),
                    sh3_.flat().data(), sh4_.flat().data(), u_.flat().data(),
                    v_.flat().data(), -adv, cfg_.kappa, t.flat().data(), pts);
    charge_array_op(6, pts);
    // Vectorised physics per level (EOS, vertical mixing terms).
    const double phys = node_->serial([&](sxs::Cpu& cpu) {
      sxs::VectorOp op;
      op.n = pts;
      op.flops_per_elem = cfg_.physics_flops;
      op.load_words = 4.0;
      op.store_words = 2.0;
      op.pipe_groups = 2;
      cpu.vec(op);
    });
    total_seconds_ += phys;
  }

  ++steps_;
  return total_seconds_ - before;
}

double Pop::mean_eta() const {
  double s = 0;
  for (double v : eta_.flat()) s += v;
  return s / static_cast<double>(eta_.size());
}

double Pop::surface_ke() const {
  double ke = 0;
  for (std::size_t j = 0; j < u_.nj(); ++j) {
    for (std::size_t i = 0; i < u_.ni(); ++i) {
      ke += 0.5 * (u_(i, j) * u_(i, j) + v_(i, j) * v_(i, j));
    }
  }
  return ke;
}

double Pop::mean_tracer(int level) const {
  NCAR_REQUIRE(level >= 0 && level < cfg_.nlev, "level");
  double s = 0;
  for (double v : tracer_[static_cast<std::size_t>(level)].flat()) s += v;
  return s / static_cast<double>(eta_.size());
}

double Pop::checksum() const {
  double c = 0;
  for (double v : eta_.flat()) c += v;
  for (double v : u_.flat()) c += 0.5 * v;
  for (const auto& t : tracer_) {
    for (double v : t.flat()) c += 0.01 * v;
  }
  return c;
}

double Pop::measure_mflops(int nsteps) {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  const double f0 = node_->cpu(0).equiv_flops().value();
  double t = 0;
  for (int s = 0; s < nsteps; ++s) t += step();
  const double f1 = node_->cpu(0).equiv_flops().value();
  return (f1 - f0) / t / 1e6;
}

double Pop::cshift_time_fraction() const {
  return total_seconds_ > 0 ? cshift_seconds_ / total_seconds_ : 0.0;
}

}  // namespace ncar::ocean
