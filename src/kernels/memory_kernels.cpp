#include "kernels/memory_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/array.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "simd/simd.hpp"

namespace ncar::kernels {

namespace {

/// Charge the timing of one kernel invocation and return its simulated
/// duration (delta of the CPU's cycle counter).
template <typename ChargeFn>
double timed(sxs::Cpu& cpu, ChargeFn&& charge) {
  const double before = cpu.cycles();
  charge();
  return (cpu.cycles() - before) * cpu.config().seconds_per_clock();
}

/// Numerics are executed on a capped instance count: the kernel's work is
/// identical per instance, so validating a slice proves the whole while
/// keeping host cost bounded for M up to 10^6.
long capped_instances(long m) { return std::min<long>(m, 64); }

}  // namespace

BandwidthPoint run_copy(sxs::Cpu& cpu, long n, long m, int ktries) {
  NCAR_REQUIRE(n >= 1 && m >= 1, "COPY needs positive axes");
  NCAR_REQUIRE(ktries >= 1, "KTRIES must be positive");

  // Real numerics over a bounded slice of instances.
  const long mm = capped_instances(m);
  Array2D<double> a(static_cast<std::size_t>(n), static_cast<std::size_t>(mm));
  Array2D<double> b(static_cast<std::size_t>(n), static_cast<std::size_t>(mm));
  Rng rng(42);
  for (auto& v : a.flat()) v = rng.next_double();
  // The (j, i) nest walks the flat storage in order — stream it whole.
  simd::table().copy_d(a.flat().data(), b.flat().data(),
                       static_cast<long>(a.size()));
  const bool ok = max_abs_diff(a.flat(), b.flat()) == 0.0;

  // Timing: one vector op of length N per instance, M instances.
  sxs::VectorOp op;
  op.n = n;
  op.load_words = 1;
  op.store_words = 1;
  op.instructions = 2;

  BestOf best;
  for (int t = 0; t < ktries; ++t) {
    best.add_time(timed(cpu, [&] { cpu.vec(op, m); }));
  }

  BandwidthPoint p;
  p.n = n;
  p.m = m;
  p.seconds = best.best_time();
  p.mb_per_s = 8.0 * static_cast<double>(n) * static_cast<double>(m) /
               p.seconds / 1e6;
  p.verified = ok;
  return p;
}

BandwidthPoint run_ia(sxs::Cpu& cpu, long n, long m, int ktries) {
  NCAR_REQUIRE(n >= 1 && m >= 1, "IA needs positive axes");
  NCAR_REQUIRE(ktries >= 1, "KTRIES must be positive");

  const long mm = capped_instances(m);
  Array2D<double> a(static_cast<std::size_t>(n), static_cast<std::size_t>(mm));
  Array2D<double> b(static_cast<std::size_t>(n), static_cast<std::size_t>(mm));
  std::vector<long> indx(static_cast<std::size_t>(n));
  std::iota(indx.begin(), indx.end(), 0L);
  // Deterministic shuffle: the benchmark gathers through a permutation.
  Rng rng(1996);
  for (long i = n - 1; i > 0; --i) {
    const long j = static_cast<long>(rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(indx[static_cast<std::size_t>(i)], indx[static_cast<std::size_t>(j)]);
  }
  for (auto& v : a.flat()) v = rng.next_double();
  bool ok = true;
  for (long j = 0; j < mm; ++j) {
    simd::table().gather_d(&a(0, static_cast<std::size_t>(j)), indx.data(),
                           &b(0, static_cast<std::size_t>(j)), n);
  }
  for (long i = 0; i < n && ok; ++i) {
    ok = b(static_cast<std::size_t>(i), 0) ==
         a(static_cast<std::size_t>(indx[static_cast<std::size_t>(i)]), 0);
  }

  // Timing: gather of N elements plus the index-vector load (the index
  // traffic is charged but, per the paper, not counted in the bandwidth).
  sxs::VectorOp op;
  op.n = n;
  op.load_words = 1;    // indx(i)
  op.gather_words = 1;  // a(indx(i), j)
  op.store_words = 1;   // b(i, j)
  op.instructions = 3;

  BestOf best;
  for (int t = 0; t < ktries; ++t) {
    best.add_time(timed(cpu, [&] { cpu.vec(op, m); }));
  }

  BandwidthPoint p;
  p.n = n;
  p.m = m;
  p.seconds = best.best_time();
  p.mb_per_s = 8.0 * static_cast<double>(n) * static_cast<double>(m) /
               p.seconds / 1e6;
  p.verified = ok;
  return p;
}

BandwidthPoint run_xpose(sxs::Cpu& cpu, long n, long m, int ktries) {
  NCAR_REQUIRE(n >= 2, "XPOSE needs a matrix dimension of at least 2");
  NCAR_REQUIRE(m >= 1, "XPOSE needs positive instance count");
  NCAR_REQUIRE(ktries >= 1, "KTRIES must be positive");

  const long mm = std::min<long>(m, 8);
  Array3D<double> a(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                    static_cast<std::size_t>(mm));
  Array3D<double> b(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                    static_cast<std::size_t>(mm));
  Rng rng(7);
  for (auto& v : a.flat()) v = rng.next_double();
  for (long k = 0; k < mm; ++k) {
    for (long j = 0; j < n; ++j) {
      // b(., j, k) <- a(j, ., k): a stride-n read, a unit-stride write.
      simd::table().strided_copy_d(
          &a(static_cast<std::size_t>(j), 0, static_cast<std::size_t>(k)), n,
          &b(0, static_cast<std::size_t>(j), static_cast<std::size_t>(k)), n);
    }
  }
  bool ok = true;
  for (long i = 0; i < n && ok; ++i) {
    for (long j = 0; j < n && ok; ++j) {
      ok = b(static_cast<std::size_t>(i), static_cast<std::size_t>(j), 0) ==
           a(static_cast<std::size_t>(j), static_cast<std::size_t>(i), 0);
    }
  }

  // Timing: the inner i-loop reads a(j,i,k) at stride N and writes b(i,j,k)
  // at unit stride; there are N such vector ops per matrix, M matrices.
  sxs::VectorOp op;
  op.n = n;
  op.load_words = 1;
  op.load_stride = n;
  op.store_words = 1;
  op.instructions = 2;

  BestOf best;
  for (int t = 0; t < ktries; ++t) {
    best.add_time(timed(cpu, [&] { cpu.vec(op, m * n); }));
  }

  BandwidthPoint p;
  p.n = n;
  p.m = m;
  p.seconds = best.best_time();
  p.mb_per_s = 8.0 * static_cast<double>(n) * static_cast<double>(n) *
               static_cast<double>(m) / p.seconds / 1e6;
  p.verified = ok;
  return p;
}

std::vector<std::pair<long, long>> constant_work_schedule(
    long total, long n_min, long n_max, int points_per_decade) {
  NCAR_REQUIRE(total >= 1 && n_min >= 1 && n_max >= n_min, "schedule bounds");
  NCAR_REQUIRE(points_per_decade >= 1, "need at least one point per decade");
  std::vector<std::pair<long, long>> out;
  const double step = std::pow(10.0, 1.0 / points_per_decade);
  long prev = 0;
  for (double x = static_cast<double>(n_min); x <= static_cast<double>(n_max) * 1.0001;
       x *= step) {
    const long n = std::min(n_max, static_cast<long>(std::llround(x)));
    if (n == prev) continue;
    prev = n;
    out.emplace_back(n, std::max<long>(1, total / n));
  }
  return out;
}

std::vector<std::pair<long, long>> xpose_schedule(long total,
                                                  int points_per_decade) {
  std::vector<std::pair<long, long>> out;
  const double step = std::pow(10.0, 1.0 / points_per_decade);
  long prev = 0;
  for (double x = 2.0; x <= 1000.0 * 1.0001; x *= step) {
    const long n = std::min<long>(1000, std::llround(x));
    if (n == prev) continue;
    prev = n;
    out.emplace_back(n, std::max<long>(1, total / (n * n)));
  }
  if (prev != 1000) {
    out.emplace_back(1000, std::max<long>(1, total / (1000L * 1000L)));
  }
  return out;
}

std::vector<BandwidthPoint> sweep(MemKernel k, sxs::Cpu& cpu, long total,
                                  int ktries) {
  std::vector<BandwidthPoint> out;
  if (k == MemKernel::Transpose) {
    for (auto [n, m] : xpose_schedule(total)) {
      out.push_back(run_xpose(cpu, n, m, ktries));
    }
    return out;
  }
  for (auto [n, m] : constant_work_schedule(total)) {
    out.push_back(k == MemKernel::Copy ? run_copy(cpu, n, m, ktries)
                                       : run_ia(cpu, n, m, ktries));
  }
  return out;
}

}  // namespace ncar::kernels
