#pragma once
// The NCAR memory-bandwidth kernels: COPY, IA, and XPOSE (paper section 4.2).
//
// All three share the suite's "novel feature": M and N are chosen so the
// total data moved stays roughly constant (~10^6 elements), sweeping from
// many tiny arrays to a few huge ones — a bandwidth *curve*, not a point.
// KTRIES repetitions are taken and the best time reported (section 4).
//
// The kernels really execute (b is checked against a), and the simulated
// CPU is charged with exactly the loop structure of the Fortran original:
// one vector operation of length N per instance.

#include <vector>

#include "sxs/cpu.hpp"

namespace ncar::kernels {

struct BandwidthPoint {
  long n = 0;          ///< inner (vector) axis length
  long m = 0;          ///< instance axis length
  double seconds = 0;  ///< best-of-KTRIES simulated time
  double mb_per_s = 0; ///< one-way bandwidth (only a->b payload counted)
  bool verified = false;  ///< numerics checked against reference
};

/// COPY: b(i,j) = a(i,j) — unit-stride memory-to-memory copy.
BandwidthPoint run_copy(sxs::Cpu& cpu, long n, long m, int ktries = 20);

/// IA: b(i,j) = a(indx(i),j) — gather through a random permutation.
BandwidthPoint run_ia(sxs::Cpu& cpu, long n, long m, int ktries = 20);

/// XPOSE: b(i,j,k) = a(j,i,k) — transpose of M matrices of size N x N.
/// `n` here is the matrix dimension; elements moved per instance are N^2.
BandwidthPoint run_xpose(sxs::Cpu& cpu, long n, long m, int ktries = 20);

/// The suite's constant-work (N, M) schedule: N log-spaced over
/// [n_min, n_max], M = max(1, total / N).
std::vector<std::pair<long, long>> constant_work_schedule(
    long total = 1'000'000, long n_min = 1, long n_max = 1'000'000,
    int points_per_decade = 3);

/// XPOSE schedule: N in [2, 1000], M = max(1, total / N^2).
std::vector<std::pair<long, long>> xpose_schedule(long total = 1'000'000,
                                                  int points_per_decade = 3);

enum class MemKernel { Copy, IndirectAddress, Transpose };

/// Run a full Figure-5 sweep of one kernel on the given CPU.
std::vector<BandwidthPoint> sweep(MemKernel k, sxs::Cpu& cpu,
                                  long total = 1'000'000, int ktries = 20);

}  // namespace ncar::kernels
