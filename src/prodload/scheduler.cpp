#include "prodload/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace ncar::prodload {

namespace {

struct Running {
  int seq;           ///< owning sequence
  int job;           ///< job index within the sequence
  int comp;          ///< component index within the job
  int cpus;
  double remaining;  ///< quiet-machine seconds of service left
};

struct Waiting {
  int seq, job, comp;
  int cpus;
  double busy;
  long fifo;  ///< admission order
};

}  // namespace

Scheduler::Scheduler(int total_cpus, double contention_per_cpu)
    : total_cpus_(total_cpus), contention_per_cpu_(contention_per_cpu) {
  NCAR_REQUIRE(total_cpus >= 1, "need at least one CPU");
  NCAR_REQUIRE(contention_per_cpu >= 0, "contention coefficient");
}

RunResult Scheduler::run(const std::vector<Sequence>& sequences) const {
  NCAR_REQUIRE(!sequences.empty(), "need at least one sequence");
  for (const auto& s : sequences) {
    NCAR_REQUIRE(!s.jobs.empty(), "sequence with no jobs");
    for (const auto& j : s.jobs) {
      NCAR_REQUIRE(!j.components.empty(), "job with no components");
      for (const auto& c : j.components) {
        NCAR_REQUIRE(c.cpus >= 1 && c.cpus <= total_cpus_,
                     "component CPU demand must fit the node");
        NCAR_REQUIRE(c.busy > Seconds(0.0), "component service time");
      }
    }
  }

  RunResult result;
  const std::size_t nseq = sequences.size();
  std::vector<std::size_t> next_job(nseq, 0);  // job each sequence is on
  std::vector<int> live_components(nseq, 0);   // of the current job
  std::vector<double> job_start(nseq, 0);

  std::vector<Running> running;
  std::vector<Waiting> waiting;
  long fifo_counter = 0;
  int used_cpus = 0;
  double now = 0;

  auto admit_job = [&](int seq, double t) {
    const auto& job = sequences[static_cast<std::size_t>(seq)]
                          .jobs[next_job[static_cast<std::size_t>(seq)]];
    live_components[static_cast<std::size_t>(seq)] =
        static_cast<int>(job.components.size());
    job_start[static_cast<std::size_t>(seq)] = t;
    for (std::size_t c = 0; c < job.components.size(); ++c) {
      waiting.push_back({seq,
                         static_cast<int>(next_job[static_cast<std::size_t>(seq)]),
                         static_cast<int>(c), job.components[c].cpus,
                         job.components[c].busy.value(), fifo_counter++});
    }
  };

  auto start_waiting = [&] {
    // FIFO admission: start the oldest waiting components that fit.
    std::sort(waiting.begin(), waiting.end(),
              [](const Waiting& a, const Waiting& b) { return a.fifo < b.fifo; });
    for (auto it = waiting.begin(); it != waiting.end();) {
      if (it->cpus <= total_cpus_ - used_cpus) {
        running.push_back({it->seq, it->job, it->comp, it->cpus, it->busy});
        used_cpus += it->cpus;
        it = waiting.erase(it);
      } else {
        // Strict FIFO: do not let later small components jump the queue.
        break;
      }
    }
  };

  for (std::size_t s = 0; s < nseq; ++s) admit_job(static_cast<int>(s), 0.0);
  start_waiting();

  while (!running.empty()) {
    // All running components progress at 1/contention(active CPUs).
    const double factor =
        1.0 + contention_per_cpu_ * std::max(0, used_cpus - 1);
    // Time until the next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& r : running) dt = std::min(dt, r.remaining * factor);
    now += dt;
    // Retire everything finishing now.
    for (auto& r : running) r.remaining -= dt / factor;
    for (auto it = running.begin(); it != running.end();) {
      if (it->remaining <= 1e-12) {
        used_cpus -= it->cpus;
        const int seq = it->seq;
        it = running.erase(it);
        if (--live_components[static_cast<std::size_t>(seq)] == 0) {
          const auto& sequence = sequences[static_cast<std::size_t>(seq)];
          const double started = job_start[static_cast<std::size_t>(seq)];
          result.jobs.push_back(
              {sequence.name + "/" +
                   sequence.jobs[next_job[static_cast<std::size_t>(seq)]].name,
               Seconds(started), Seconds(now)});
          if (trace_ != nullptr) {
            trace_->add(trace::Category::Other, started, now - started,
                        trace_->intern(result.jobs.back().name));
          }
          if (++next_job[static_cast<std::size_t>(seq)] <
              sequence.jobs.size()) {
            admit_job(seq, now);
          }
        }
      } else {
        ++it;
      }
    }
    start_waiting();
    NCAR_REQUIRE(!running.empty() || waiting.empty(),
                 "scheduler deadlock: waiting components cannot start");
  }

  result.makespan = Seconds(now);
  return result;
}

}  // namespace ncar::prodload
