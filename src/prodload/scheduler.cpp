#include "prodload/scheduler.hpp"

#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "des/simulation.hpp"
#include "prodload/node_lp.hpp"

namespace ncar::prodload {

Scheduler::Scheduler(int total_cpus, double contention_per_cpu)
    : total_cpus_(total_cpus), contention_per_cpu_(contention_per_cpu) {
  NCAR_REQUIRE(total_cpus >= 1, "need at least one CPU");
  NCAR_REQUIRE(contention_per_cpu >= 0, "contention coefficient");
}

RunResult Scheduler::run(const std::vector<Sequence>& sequences) const {
  NCAR_REQUIRE(!sequences.empty(), "need at least one sequence");
  for (const auto& s : sequences) {
    NCAR_REQUIRE(!s.jobs.empty(), "sequence with no jobs");
    for (const auto& j : s.jobs) {
      NCAR_REQUIRE(!j.components.empty(), "job with no components");
      for (const auto& c : j.components) {
        NCAR_REQUIRE(c.cpus >= 1 && c.cpus <= total_cpus_,
                     "component CPU demand must fit the node");
        NCAR_REQUIRE(c.busy > Seconds(0.0), "component service time");
      }
    }
  }

  RunResult result;
  const std::size_t nseq = sequences.size();
  std::vector<std::size_t> next_job(nseq, 0);  // job each sequence is on
  std::vector<int> live_components(nseq, 0);   // of the current job
  std::vector<double> job_start(nseq, 0);

  des::Simulation sim;
  NodeLp node(sim, total_cpus_, contention_per_cpu_);

  // Submit every component of a sequence's current job; the last
  // component's completion closes the job and chains the next one.
  std::function<void(std::size_t)> admit_job = [&](std::size_t s) {
    const auto& job = sequences[s].jobs[next_job[s]];
    live_components[s] = static_cast<int>(job.components.size());
    job_start[s] = sim.now().value();
    for (const auto& c : job.components) {
      node.submit(c.cpus, c.busy, [&, s] {
        if (--live_components[s] != 0) return;
        const auto& sequence = sequences[s];
        const double started = job_start[s];
        const double now = sim.now().value();
        result.jobs.push_back({sequence.name + "/" +
                                   sequence.jobs[next_job[s]].name,
                               Seconds(started), Seconds(now)});
        if (trace_ != nullptr) {
          trace_->add(trace::Category::Other, started, now - started,
                      trace_->intern(result.jobs.back().name));
        }
        if (++next_job[s] < sequence.jobs.size()) admit_job(s);
      });
    }
  };

  for (std::size_t s = 0; s < nseq; ++s) admit_job(s);
  sim.run();
  NCAR_REQUIRE(node.idle(), "scheduler finished with work still queued");

  result.makespan = sim.now();
  return result;
}

}  // namespace ncar::prodload
