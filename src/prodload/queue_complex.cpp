#include "prodload/queue_complex.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace ncar::prodload {

QueueComplexLp::QueueComplexLp(des::Simulation& sim, NodeLp& node,
                               std::vector<QueueSpec> queues)
    : sim_(sim), node_(node), queues_(std::move(queues)) {
  NCAR_REQUIRE(!queues_.empty(), "need at least one queue");
  for (const auto& q : queues_) {
    NCAR_REQUIRE(!q.name.empty(), "queue needs a name");
    NCAR_REQUIRE(q.max_cpus_per_job >= 1, "per-job CPU ceiling");
    NCAR_REQUIRE(q.run_limit >= 1, "run limit");
  }
  backlog_.resize(queues_.size());
  active_.resize(queues_.size(), 0);
}

const QueueSpec& QueueComplexLp::queue(int q) const {
  NCAR_REQUIRE(q >= 0 && q < queue_count(), "queue index");
  return queues_[static_cast<std::size_t>(q)];
}

int QueueComplexLp::queue_index(const std::string& name) const {
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (queues_[q].name == name) return static_cast<int>(q);
  }
  return -1;
}

void QueueComplexLp::submit(const std::string& queue, NqsJob job) {
  const int q = queue_index(queue);
  NCAR_REQUIRE(q >= 0, "unknown queue: " + queue);
  submit(q, std::move(job));
}

void QueueComplexLp::submit(int q, NqsJob job) {
  NCAR_REQUIRE(q >= 0 && q < queue_count(), "queue index");
  const auto qi = static_cast<std::size_t>(q);
  NCAR_REQUIRE(job.cpus >= 1, "job CPU request");
  NCAR_REQUIRE(job.cpus <= queues_[qi].max_cpus_per_job,
               "job exceeds the queue's per-job CPU ceiling");
  NCAR_REQUIRE(job.cpus <= node_.total_cpus(),
               "job exceeds the node's CPU count");
  NCAR_REQUIRE(job.service > Seconds(0.0), "job service time");
  backlog_[qi].push_back({std::move(job), sim_.now()});
  ++submitted_;
  max_backlog_ = std::max(max_backlog_,
                          static_cast<std::uint64_t>(backlog_[qi].size()));
  dispatch(qi);
}

int QueueComplexLp::backlog(int q) const {
  NCAR_REQUIRE(q >= 0 && q < queue_count(), "queue index");
  return static_cast<int>(backlog_[static_cast<std::size_t>(q)].size());
}

int QueueComplexLp::in_service(int q) const {
  NCAR_REQUIRE(q >= 0 && q < queue_count(), "queue index");
  return active_[static_cast<std::size_t>(q)];
}

bool QueueComplexLp::idle() const {
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (!backlog_[q].empty() || active_[q] != 0) return false;
  }
  return true;
}

void QueueComplexLp::dispatch(std::size_t q) {
  auto& backlog = backlog_[q];
  while (!backlog.empty() && active_[q] < queues_[q].run_limit) {
    // Highest priority first; submission order breaks ties (the same
    // order Nqs::lower's stable sort produces on a closed backlog).
    auto best = backlog.begin();
    for (auto it = backlog.begin(); it != backlog.end(); ++it) {
      if (it->job.priority > best->job.priority) best = it;
    }
    Queued qd = std::move(*best);
    backlog.erase(best);
    ++active_[q];
    const Seconds dispatched = sim_.now();
    total_wait_s_ += (dispatched - qd.queued).value();
    node_.submit(qd.job.cpus, qd.job.service,
                 [this, q, qd = std::move(qd), dispatched] {
                   --active_[q];
                   ++completed_;
                   const Seconds finished = sim_.now();
                   total_response_s_ += (finished - qd.queued).value();
                   if (completion_) {
                     completion_(qd.job, qd.queued, dispatched, finished);
                   }
                   dispatch(q);
                 });
  }
}

}  // namespace ncar::prodload
