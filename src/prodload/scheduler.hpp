#pragma once
// PRODLOAD — simulated production job load (paper section 4.6).
//
// A "job" is the HIPPI benchmark plus three CCM2 copies (one 3-day T106 run
// and two 20-day T42 runs) executing simultaneously; a job completes when
// all components finish. Test 1 runs one sequence of four jobs back to
// back; tests 2 and 3 run two and four such sequences concurrently; test 4
// runs two 2-day T170 CCM2 copies concurrently. The benchmark measure is
// the wall clock from first job start to last job completion, summed over
// the tests — 93 minutes 28 seconds on the SX-4/32.
//
// This module is the discrete-event scheduler: components demand CPUs from
// a 32-CPU node (FIFO, like a SUPER-UX Resource Block), run at a rate
// reduced by the node's bank-contention factor for the currently active
// CPU count, and queue when the node is full. The node itself is a
// logical process on the DES kernel (prodload/node_lp.hpp); run() wires
// the sequences onto it and drains the event calendar. The ported
// arithmetic is bit-identical to the original drain-clock loop — the
// committed PRODLOAD baselines pin this.

#include <string>
#include <vector>

#include "common/quantity.hpp"
#include "trace/collector.hpp"

namespace ncar::prodload {

/// One schedulable component: needs `cpus` processors for `busy` seconds
/// of quiet-machine service time.
struct Component {
  std::string name;
  int cpus = 1;
  Seconds busy{};
};

/// Components of a job run concurrently; the job ends when all end.
struct Job {
  std::string name;
  std::vector<Component> components;
};

/// Jobs of a sequence run strictly one after another.
struct Sequence {
  std::string name;
  std::vector<Job> jobs;
};

struct JobRecord {
  std::string name;
  Seconds start{};
  Seconds end{};
};

struct RunResult {
  Seconds makespan{};            ///< first start to last completion
  std::vector<JobRecord> jobs;   ///< per-job start/stop times
};

class Scheduler {
public:
  /// `total_cpus` on the node; `contention_per_cpu` is the per-active-CPU
  /// bank-conflict slowdown (same constant as the SX-4 node model).
  Scheduler(int total_cpus, double contention_per_cpu);

  /// Run the given sequences concurrently to completion.
  RunResult run(const std::vector<Sequence>& sequences) const;

  /// Record one span per completed job ("sequence/job" tag, seconds ticks)
  /// on `t`; nullptr disables. The collector must outlive the scheduler's
  /// run() calls.
  void set_trace(trace::Collector* t) { trace_ = t; }

private:
  int total_cpus_;
  double contention_per_cpu_;
  trace::Collector* trace_ = nullptr;
};

}  // namespace ncar::prodload
