#pragma once
// The PRODLOAD node as a DES logical process.
//
// This is the port of the old Scheduler drain-clock loop onto the event
// calendar (src/des/): the node holds a set of running components that
// progress fluidly at 1/contention(active CPUs), a strict-FIFO admission
// queue, and ONE armed calendar event — the next component completion.
// Any change to the active set (completion, admission, a new arrival from
// the year-scale workload generator) re-arms that event.
//
// Bit-identity contract: when every component is submitted at t=0 and no
// foreign events interleave (the Scheduler::run case, i.e. the committed
// PRODLOAD baselines), the sequence of (factor, dt, remaining) updates is
// arithmetic-for-arithmetic the old loop:
//
//   factor = 1 + c * max(0, used - 1)
//   dt     = min over running of remaining * factor     (same scan order)
//   now    = now + dt                                   (the event's time)
//   each remaining -= dt / factor; retire <= 1e-12      (same epsilon)
//
// The armed dt is *stored* with the event and replayed in its handler —
// never re-derived from event times — so (now + dt) - now rounding can
// never leak into the remaining-time bookkeeping.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "des/simulation.hpp"

namespace ncar::prodload {

class NodeLp {
public:
  /// Runs when a component completes, at its completion event; the
  /// simulation clock reads the completion time.
  using Completion = std::function<void()>;

  /// `total_cpus` on the node; `contention_per_cpu` is the per-active-CPU
  /// bank-conflict slowdown (same constant as the SX-4 node model).
  NodeLp(des::Simulation& sim, int total_cpus, double contention_per_cpu);

  /// FIFO-submit a component needing `cpus` processors for `busy`
  /// quiet-machine seconds. Admission is strict FIFO: a waiting component
  /// that does not fit blocks everything behind it.
  void submit(int cpus, Seconds busy, Completion done);

  int total_cpus() const { return total_cpus_; }
  int used_cpus() const { return used_; }
  std::size_t running_count() const { return running_.size(); }
  std::size_t waiting_count() const { return waiting_.size(); }
  bool idle() const { return running_.empty() && waiting_.empty(); }

  /// CPU-seconds of wall occupancy delivered so far (the year bench's
  /// utilisation numerator). Updated at every node event.
  double busy_cpu_seconds() const { return busy_cpu_seconds_; }
  std::uint64_t completions() const { return completions_; }

private:
  struct Running {
    int cpus;
    double remaining;  ///< quiet-machine seconds of service left
    Completion done;
  };
  struct Waiting {
    int cpus;
    double busy;
    Completion done;
  };

  /// Fluid-advance running components to sim_.now() (for arrivals that
  /// land between completion events).
  void sync_progress();
  void on_completion();
  void try_admit();
  /// Recompute (factor, dt) from the current active set and (re)arm the
  /// single completion event.
  void arm();

  des::Simulation& sim_;
  int total_cpus_;
  double contention_per_cpu_;
  std::vector<Running> running_;
  std::deque<Waiting> waiting_;
  int used_ = 0;
  bool in_event_ = false;
  double synced_at_ = 0;       ///< sim seconds the remaining values are current at
  double pending_dt_ = 0;      ///< the armed step, replayed by the handler
  double pending_factor_ = 1;  ///< contention factor of the armed step
  des::EventId completion_{};
  double busy_cpu_seconds_ = 0;
  std::uint64_t completions_ = 0;
};

}  // namespace ncar::prodload
