#include "prodload/nqs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::prodload {

Nqs::Nqs(std::vector<QueueSpec> queues) : queues_(std::move(queues)) {
  NCAR_REQUIRE(!queues_.empty(), "need at least one queue");
  for (const auto& q : queues_) {
    NCAR_REQUIRE(!q.name.empty(), "queue needs a name");
    NCAR_REQUIRE(q.max_cpus_per_job >= 1, "per-job CPU ceiling");
    NCAR_REQUIRE(q.run_limit >= 1, "run limit");
  }
  pending_.resize(queues_.size());
}

const QueueSpec& Nqs::queue(int q) const {
  NCAR_REQUIRE(q >= 0 && q < queue_count(), "queue index");
  return queues_[static_cast<std::size_t>(q)];
}

int Nqs::queue_index(const std::string& name) const {
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (queues_[q].name == name) return static_cast<int>(q);
  }
  return -1;
}

void Nqs::submit(const std::string& queue, NqsJob job) {
  const int q = queue_index(queue);
  NCAR_REQUIRE(q >= 0, "unknown queue: " + queue);
  NCAR_REQUIRE(job.cpus >= 1, "job CPU request");
  NCAR_REQUIRE(job.cpus <= queues_[static_cast<std::size_t>(q)].max_cpus_per_job,
               "job exceeds the queue's per-job CPU ceiling");
  NCAR_REQUIRE(job.service > Seconds(0.0), "job service time");
  pending_[static_cast<std::size_t>(q)].push_back(std::move(job));
}

int Nqs::backlog(int q) const {
  NCAR_REQUIRE(q >= 0 && q < queue_count(), "queue index");
  return static_cast<int>(pending_[static_cast<std::size_t>(q)].size());
}

std::vector<Sequence> Nqs::lower() const {
  std::vector<Sequence> out;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    const auto& spec = queues_[q];
    // Priority order (stable, so submission order breaks ties).
    auto jobs = pending_[q];
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const NqsJob& a, const NqsJob& b) {
                       return a.priority > b.priority;
                     });
    // run_limit serial chains, filled round-robin: at any moment at most
    // run_limit of this queue's jobs execute.
    const int chains = std::min<int>(spec.run_limit,
                                     std::max<int>(1, static_cast<int>(jobs.size())));
    std::vector<Sequence> seqs(static_cast<std::size_t>(chains));
    for (int c = 0; c < chains; ++c) {
      seqs[static_cast<std::size_t>(c)].name =
          spec.name + "#" + std::to_string(c);
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto& job = jobs[j];
      seqs[j % static_cast<std::size_t>(chains)].jobs.push_back(
          Job{job.name, {Component{job.name, job.cpus, job.service}}});
    }
    for (auto& s : seqs) {
      if (!s.jobs.empty()) out.push_back(std::move(s));
    }
  }
  NCAR_REQUIRE(!out.empty(), "no jobs submitted");
  return out;
}

RunResult Nqs::run(const Scheduler& scheduler) const {
  return scheduler.run(lower());
}

}  // namespace ncar::prodload
