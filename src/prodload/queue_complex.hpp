#pragma once
// An online NQS queue complex as a DES logical process.
//
// `Nqs::run` lowers a *closed* backlog onto the scheduler (every job known
// up front — the PRODLOAD benchmark shape). A production year is an *open*
// system: jobs arrive continuously, queues drain by priority under their
// run limits, and the machine's FIFO resource block is shared by every
// queue. QueueComplexLp is that open system on the DES kernel: each queue
// holds a (priority desc, arrival asc) backlog, dispatches to the shared
// NodeLp whenever it has a free run slot, and reclaims the slot at the
// job's completion event.
//
// Everything here is deterministic: dispatch order is a pure function of
// (priority, submission order), and all timing comes from the simulation
// clock.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "des/simulation.hpp"
#include "prodload/node_lp.hpp"
#include "prodload/nqs.hpp"

namespace ncar::prodload {

class QueueComplexLp {
public:
  /// Runs at a job's completion event: the job, when it entered the
  /// queue, when it was dispatched to the node, and now() = completion.
  using Completion = std::function<void(const NqsJob&, Seconds queued,
                                        Seconds dispatched, Seconds finished)>;

  QueueComplexLp(des::Simulation& sim, NodeLp& node,
                 std::vector<QueueSpec> queues);

  int queue_count() const { return static_cast<int>(queues_.size()); }
  const QueueSpec& queue(int q) const;
  int queue_index(const std::string& name) const;  ///< -1 when absent

  /// Enqueue a job at now(); dispatches immediately if the queue has a
  /// free run slot. Throws when the job exceeds the queue's per-job
  /// ceiling or the node's CPU count.
  void submit(int q, NqsJob job);
  void submit(const std::string& queue, NqsJob job);

  void set_completion(Completion cb) { completion_ = std::move(cb); }

  // --- instantaneous state ------------------------------------------------
  int backlog(int q) const;     ///< queued, not yet dispatched
  int in_service(int q) const;  ///< dispatched, not yet completed
  bool idle() const;            ///< no queue has backlog or in-service jobs

  // --- cumulative statistics ----------------------------------------------
  std::uint64_t jobs_submitted() const { return submitted_; }
  std::uint64_t jobs_completed() const { return completed_; }
  std::uint64_t max_backlog() const { return max_backlog_; }
  double total_wait_s() const { return total_wait_s_; }          ///< queue->dispatch
  double total_response_s() const { return total_response_s_; }  ///< queue->finish

private:
  /// Backlog entries stay in submission order (push_back only), so the
  /// first entry of any priority is the oldest — FIFO tie-break for free.
  struct Queued {
    NqsJob job;
    Seconds queued{};
  };

  /// Dispatch from queue `q` while it has backlog and free run slots.
  void dispatch(std::size_t q);

  des::Simulation& sim_;
  NodeLp& node_;
  std::vector<QueueSpec> queues_;
  std::vector<std::deque<Queued>> backlog_;  // per queue
  std::vector<int> active_;                  // per queue, counts run slots held
  Completion completion_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t max_backlog_ = 0;
  double total_wait_s_ = 0;
  double total_response_s_ = 0;
};

}  // namespace ncar::prodload
