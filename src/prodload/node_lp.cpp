#include "prodload/node_lp.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace ncar::prodload {

NodeLp::NodeLp(des::Simulation& sim, int total_cpus, double contention_per_cpu)
    : sim_(sim),
      total_cpus_(total_cpus),
      contention_per_cpu_(contention_per_cpu),
      synced_at_(sim.now().value()) {
  NCAR_REQUIRE(total_cpus >= 1, "need at least one CPU");
  NCAR_REQUIRE(contention_per_cpu >= 0, "contention coefficient");
}

void NodeLp::submit(int cpus, Seconds busy, Completion done) {
  NCAR_REQUIRE(cpus >= 1 && cpus <= total_cpus_,
               "component CPU demand must fit the node");
  NCAR_REQUIRE(busy > Seconds(0.0), "component service time");
  waiting_.push_back({cpus, busy.value(), std::move(done)});
  // From inside a completion handler, admission and re-arming are deferred
  // to the end of the retirement batch (the old loop's ordering).
  if (in_event_) return;
  sync_progress();
  try_admit();
  arm();
}

void NodeLp::sync_progress() {
  const double now = sim_.now().value();
  if (now > synced_at_ && !running_.empty()) {
    const double dt = now - synced_at_;
    for (auto& r : running_) r.remaining -= dt / pending_factor_;
    busy_cpu_seconds_ += dt * static_cast<double>(used_);
  }
  synced_at_ = now;
}

void NodeLp::on_completion() {
  completion_ = {};
  in_event_ = true;
  // Replay the stored step, never (event time - synced time): the stored
  // dt is the exact double the remaining-time scan produced.
  const double dt = pending_dt_;
  const double factor = pending_factor_;
  busy_cpu_seconds_ += dt * static_cast<double>(used_);
  for (auto& r : running_) r.remaining -= dt / factor;
  synced_at_ = sim_.now().value();
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->remaining <= 1e-12) {
      used_ -= it->cpus;
      Completion done = std::move(it->done);
      it = running_.erase(it);
      ++completions_;
      if (done) done();
    } else {
      ++it;
    }
  }
  in_event_ = false;
  try_admit();
  arm();
}

void NodeLp::try_admit() {
  while (!waiting_.empty() &&
         waiting_.front().cpus <= total_cpus_ - used_) {
    Waiting w = std::move(waiting_.front());
    waiting_.pop_front();
    used_ += w.cpus;
    running_.push_back({w.cpus, w.busy, std::move(w.done)});
  }
  // Strict FIFO means a too-wide component blocks everything behind it;
  // an empty node that still cannot start its front component is stuck.
  NCAR_REQUIRE(!running_.empty() || waiting_.empty(),
               "scheduler deadlock: waiting components cannot start");
}

void NodeLp::arm() {
  if (completion_.valid()) {
    sim_.cancel(completion_);
    completion_ = {};
  }
  if (running_.empty()) {
    pending_dt_ = 0;
    pending_factor_ = 1.0;
    return;
  }
  const double factor =
      1.0 + contention_per_cpu_ * std::max(0, used_ - 1);
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& r : running_) dt = std::min(dt, r.remaining * factor);
  pending_dt_ = dt;
  pending_factor_ = factor;
  completion_ = sim_.at(Seconds(synced_at_ + dt), [this] { on_completion(); });
}

}  // namespace ncar::prodload
