#pragma once
// NQS batch subsystem (paper section 2.6.3).
//
// "SUPER-UX NQS is enhanced to add substantial user control over work...
// NQS queues, queue complexes, and the full range of individual queue
// parameters and accounting facilities are supported."
//
// The model: named queues with a per-job CPU ceiling, a run limit (how
// many of the queue's jobs may execute concurrently), and job priorities.
// `Nqs::run` lowers the queue complex onto the discrete-event Scheduler:
// each queue becomes `run_limit` serial job chains filled in priority
// order, all chains across all queues competing for the node FIFO —
// exactly how a run-limited batch queue shapes a machine's load. The
// returned accounting (per-job start/stop) is what the PRODLOAD benchmark
// "considers in order to identify system specific characteristics".
//
// This lowering handles a *closed* backlog (every job known up front).
// For open workloads — jobs arriving over simulated time, as in the
// prodload_year bench — the same queue semantics run live on the DES
// kernel as prodload/queue_complex.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "prodload/scheduler.hpp"

namespace ncar::prodload {

struct QueueSpec {
  std::string name;
  int max_cpus_per_job = 32;  ///< per-job CPU ceiling (qmgr "per-request")
  int run_limit = 1;          ///< concurrently executing jobs from this queue
};

struct NqsJob {
  std::string name;
  int cpus = 1;
  Seconds service{};
  int priority = 0;       ///< higher runs earlier within its queue
  std::uint64_t tag = 0;  ///< caller-owned correlation id (completion callbacks)
};

class Nqs {
public:
  explicit Nqs(std::vector<QueueSpec> queues);

  int queue_count() const { return static_cast<int>(queues_.size()); }
  const QueueSpec& queue(int q) const;
  int queue_index(const std::string& name) const;  ///< -1 when absent

  /// Enqueue a job; throws when it exceeds the queue's per-job ceiling.
  void submit(const std::string& queue, NqsJob job);

  /// Jobs waiting in a queue (before run()).
  int backlog(int q) const;

  /// Lower every queue onto the scheduler and run to completion.
  RunResult run(const Scheduler& scheduler) const;

  /// The sequences `run` would hand the scheduler (exposed for tests).
  std::vector<Sequence> lower() const;

private:
  std::vector<QueueSpec> queues_;
  std::vector<std::vector<NqsJob>> pending_;  // per queue
};

}  // namespace ncar::prodload
