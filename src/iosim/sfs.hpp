#pragma once
// SFS — the SUPER-UX native file system with XMU-backed caching (paper
// sections 2.3 and 2.6.5).
//
// "The SUPER-UX native file system is called SFS. It has a flexible file
// system level caching scheme utilizing XMU space; numerous parameters can
// be set including write back method, staging unit, and allocation cluster
// size." The XMU (section 2.3) is semiconductor disk: 16 GB/s of bandwidth
// on a 32-CPU node, up to 32 GB capacity.
//
// The model: writes land in the XMU cache at XMU speed and drain to the
// disk subsystem in the background (write-back) or synchronously
// (write-through). Reads hit the cache when the data is resident. Time
// advances through an explicit clock so that background draining overlaps
// compute, exactly how the history-tape writes of a climate run would use
// it.
//
// The clock runs on a DES event calendar (src/des/): whenever dirty bytes
// are pending, one cancellable "drain complete" event is kept armed at the
// moment the cache would empty, and advancing the clock pops every due
// event in order. The fluid drain arithmetic is unchanged from the
// pre-calendar implementation — the iosim bench baselines pin it
// bit-identically.

#include "des/calendar.hpp"
#include "iosim/disk.hpp"
#include "sxs/machine_config.hpp"
#include "trace/collector.hpp"

namespace ncar::iosim {

enum class WriteBackMethod {
  WriteBack,     ///< complete at XMU speed; drain asynchronously
  WriteThrough,  ///< complete only when the disk has the data
};

struct SfsConfig {
  Bytes cache{4.0 * 1024 * 1024 * 1024};  ///< XMU space given to SFS
  WriteBackMethod method = WriteBackMethod::WriteBack;
  Bytes staging_unit{4.0 * 1024 * 1024};  ///< drain granularity
};

class Sfs {
public:
  Sfs(const sxs::MachineConfig& machine, DiskSystem& disk,
      SfsConfig cfg = {});

  const SfsConfig& config() const { return cfg_; }

  /// Current simulated time of the file system clock.
  Seconds now() const { return now_; }
  /// Advance the clock (compute happening elsewhere); the drain proceeds.
  void advance(Seconds seconds);

  /// Write `bytes`; returns the simulated seconds the *caller* waits.
  /// Write-back: XMU transfer time, unless the cache is full and the call
  /// must first wait for the drain. Write-through: XMU + full disk time.
  Seconds write(Bytes bytes);

  /// Read `bytes`; cache-resident fraction at XMU speed, rest from disk.
  Seconds read(Bytes bytes);

  /// Bytes currently dirty in the XMU cache awaiting drain.
  Bytes dirty_bytes() const { return dirty_; }
  /// Seconds until the cache is fully drained at disk speed.
  Seconds drain_seconds() const;
  /// Wait for the drain to finish (e.g. before a checkpoint); returns the
  /// wait and advances the clock.
  Seconds flush();

  /// Total bytes accepted.
  Bytes bytes_written() const { return written_; }

  /// The file system's event calendar (exposed for tests: holds exactly
  /// one pending "drain complete" event while dirty bytes remain).
  const des::Calendar& calendar() const { return calendar_; }
  /// Times the drain ran the cache empty (a calendar event each).
  std::uint64_t drain_completions() const { return drain_completions_; }

  /// Record XMU-speed and disk-speed activity on `t` (seconds ticks on this
  /// file system's clock); nullptr (the default) disables recording. The
  /// collector must outlive the Sfs.
  void set_trace(trace::Collector* t) { trace_ = t; }

private:
  Seconds xmu_seconds(Bytes bytes) const;
  void drain_until(Seconds t);
  /// Keep the single drain-complete event consistent with dirty_.
  void arm_drain();
  void note(trace::Category c, Seconds start, Seconds seconds,
            const char* tag);

  SfsConfig cfg_;
  const sxs::MachineConfig machine_;
  DiskSystem* disk_;
  des::Calendar calendar_;
  des::EventId drain_done_{};
  std::uint64_t drain_completions_ = 0;
  Seconds now_;
  Bytes dirty_;
  Bytes resident_;  ///< clean cached bytes (for reads)
  Bytes written_;
  trace::Collector* trace_ = nullptr;
};

}  // namespace ncar::iosim
