#pragma once
// DES adapters for the iosim device models.
//
// The device models (DiskSystem, HippiChannel, the XMU staging path) are
// analytic: they price a transfer in closed form and keep busy-timeline
// accounting, but have no notion of *when* requests contend. These
// adapters put each device behind a single FIFO server on the event
// calendar: a request occupies the device for its priced service time,
// later requests queue, and completions are calendar events — which is
// what the year-scale PRODLOAD simulation needs to overlap job I/O with
// the compute schedule.
//
// Every adapter keeps the device's own accounting authoritative (the
// analytic benches stay byte-identical — they never construct adapters);
// the adapter only adds queueing state and deterministic statistics.

#include <cstdint>
#include <deque>
#include <functional>

#include "des/simulation.hpp"
#include "iosim/disk.hpp"
#include "iosim/hippi.hpp"
#include "sxs/machine_config.hpp"
#include "trace/collector.hpp"

namespace ncar::iosim {

/// One device as a FIFO server: requests hold the server for a priced
/// service time; completions are calendar events.
class FifoServerLp {
public:
  using Done = std::function<void()>;

  explicit FifoServerLp(des::Simulation& sim) : sim_(sim) {}

  /// Enqueue a request holding the server for `service`; `done` runs at
  /// the request's completion event.
  void enqueue(Seconds service, Done done);

  bool busy() const { return busy_; }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t completed() const { return completed_; }
  double busy_seconds() const { return busy_seconds_; }
  std::uint64_t max_queue() const { return max_queue_; }

private:
  struct Request {
    double service_s;
    Done done;
  };

  void start(Request&& r);

  des::Simulation& sim_;
  std::deque<Request> queue_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t max_queue_ = 0;
  double busy_seconds_ = 0;
};

/// The disk subsystem behind a FIFO queue. Each transfer is priced by
/// DiskSystem::sequential_seconds and recorded on the device's accounting
/// (and io_disk trace timeline) at its completion event.
class DiskLp {
public:
  DiskLp(des::Simulation& sim, DiskSystem& disk)
      : server_(sim), disk_(&disk) {}

  void transfer(Bytes bytes, FifoServerLp::Done done = {});

  const FifoServerLp& server() const { return server_; }

private:
  FifoServerLp server_;
  DiskSystem* disk_;
};

/// A HIPPI channel behind a FIFO queue; transfers are priced and traced
/// by HippiChannel::traced_transfer at their completion events.
class HippiLp {
public:
  HippiLp(des::Simulation& sim, HippiChannel& channel)
      : server_(sim), channel_(&channel) {}

  void transfer(Bytes total_bytes, Bytes packet_bytes,
                FifoServerLp::Done done = {});

  const FifoServerLp& server() const { return server_; }

private:
  FifoServerLp server_;
  HippiChannel* channel_;
};

/// The XMU staging path behind a FIFO queue: stages move at the machine's
/// XMU bandwidth; spans land on io_xmu when a collector is attached.
class XmuLp {
public:
  XmuLp(des::Simulation& sim, const sxs::MachineConfig& machine)
      : server_(sim), machine_(machine) {}

  void stage(Bytes bytes, FifoServerLp::Done done = {});

  /// Destination for staging spans (io_xmu, busy-timeline ticks); nullptr
  /// disables. The collector must outlive the adapter.
  void set_trace(trace::Collector* t) { trace_ = t; }

  const FifoServerLp& server() const { return server_; }

private:
  FifoServerLp server_;
  sxs::MachineConfig machine_;
  trace::Collector* trace_ = nullptr;
  double traced_busy_s_ = 0;
};

}  // namespace ncar::iosim
