#pragma once
// HIPPI channel model (paper sections 2.4 and 4.5.2).
//
// The HIPPI benchmark sends and receives raw HIPPI packets of varying sizes
// and measures the data rate for single and multiple concurrent transfers.
// A HIPPI-800 channel carries 100 MB/s of payload; each packet pays a
// connection/setup latency; concurrent transfers ride separate channels up
// to the IOP count and then share.
//
// The model is analytic; for event-driven use (transfers queueing on the
// channel in simulated time) wrap it in a HippiLp from iosim/lp.hpp.

#include <vector>

#include "sxs/machine_config.hpp"
#include "trace/collector.hpp"

namespace ncar::iosim {

class HippiChannel {
public:
  explicit HippiChannel(const sxs::MachineConfig& cfg);

  /// Seconds to move one packet of `bytes` payload.
  Seconds packet_seconds(Bytes bytes) const;

  /// Seconds to move `total_bytes` as packets of `packet_bytes`.
  Seconds transfer_seconds(Bytes total_bytes, Bytes packet_bytes) const;

  /// Effective rate for a stream of `packet_bytes` packets.
  BytesPerSec effective_bytes_per_s(Bytes packet_bytes) const;

  /// Aggregate rate of `transfers` concurrent streams of `packet_bytes`
  /// packets across the machine's HIPPI channels (one per IOP); beyond
  /// that the streams time-share.
  BytesPerSec concurrent_bytes_per_s(int transfers, Bytes packet_bytes) const;

  /// Price a transfer like transfer_seconds and record it as io_hippi
  /// activity on the channel's cumulative-busy timeline.
  Seconds traced_transfer(Bytes total_bytes, Bytes packet_bytes);

  /// Destination for traced_transfer spans; nullptr disables. The collector
  /// must outlive the channel.
  void set_trace(trace::Collector* t) { trace_ = t; }

private:
  sxs::MachineConfig cfg_;
  trace::Collector* trace_ = nullptr;
  double traced_busy_s_ = 0;
};

}  // namespace ncar::iosim
