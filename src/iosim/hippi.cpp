#include "iosim/hippi.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ncar::iosim {

HippiChannel::HippiChannel(const sxs::MachineConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

Seconds HippiChannel::packet_seconds(Bytes bytes) const {
  NCAR_REQUIRE(bytes.value() >= 0, "negative packet size");
  return Seconds(cfg_.hippi_setup_s) + bytes / cfg_.hippi_bytes_per_s;
}

Seconds HippiChannel::transfer_seconds(Bytes total_bytes,
                                       Bytes packet_bytes) const {
  NCAR_REQUIRE(total_bytes.value() >= 0, "negative transfer size");
  NCAR_REQUIRE(packet_bytes.value() > 0, "packet size must be positive");
  const double packets = std::ceil(total_bytes / packet_bytes);
  const Seconds payload_time = total_bytes / cfg_.hippi_bytes_per_s;
  return Seconds(packets * cfg_.hippi_setup_s) + payload_time;
}

BytesPerSec HippiChannel::effective_bytes_per_s(Bytes packet_bytes) const {
  NCAR_REQUIRE(packet_bytes.value() > 0, "packet size must be positive");
  return BytesPerSec(packet_bytes.value() /
                     packet_seconds(packet_bytes).value());
}

Seconds HippiChannel::traced_transfer(Bytes total_bytes, Bytes packet_bytes) {
  const Seconds t = transfer_seconds(total_bytes, packet_bytes);
  if (trace_ != nullptr && t.value() > 0) {
    trace_->add(trace::Category::IoHippi, traced_busy_s_, t.value(),
                "hippi");
  }
  traced_busy_s_ += t.value();
  return t;
}

BytesPerSec HippiChannel::concurrent_bytes_per_s(int transfers,
                                                 Bytes packet_bytes) const {
  NCAR_REQUIRE(transfers >= 1, "need at least one transfer");
  const BytesPerSec per_stream = effective_bytes_per_s(packet_bytes);
  const int channels = cfg_.iops;  // one HIPPI channel per IOP
  const int parallel = std::min(transfers, channels);
  return per_stream * static_cast<double>(parallel);
}

}  // namespace ncar::iosim
