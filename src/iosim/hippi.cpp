#include "iosim/hippi.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ncar::iosim {

HippiChannel::HippiChannel(const sxs::MachineConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

double HippiChannel::packet_seconds(double bytes) const {
  NCAR_REQUIRE(bytes >= 0, "negative packet size");
  return cfg_.hippi_setup_s + bytes / cfg_.hippi_bytes_per_s;
}

double HippiChannel::transfer_seconds(double total_bytes,
                                      double packet_bytes) const {
  NCAR_REQUIRE(total_bytes >= 0, "negative transfer size");
  NCAR_REQUIRE(packet_bytes > 0, "packet size must be positive");
  const double packets = std::ceil(total_bytes / packet_bytes);
  const double payload_time = total_bytes / cfg_.hippi_bytes_per_s;
  return packets * cfg_.hippi_setup_s + payload_time;
}

double HippiChannel::effective_bytes_per_s(double packet_bytes) const {
  NCAR_REQUIRE(packet_bytes > 0, "packet size must be positive");
  return packet_bytes / packet_seconds(packet_bytes);
}

double HippiChannel::concurrent_bytes_per_s(int transfers,
                                            double packet_bytes) const {
  NCAR_REQUIRE(transfers >= 1, "need at least one transfer");
  const double per_stream = effective_bytes_per_s(packet_bytes);
  const int channels = cfg_.iops;  // one HIPPI channel per IOP
  const int parallel = std::min(transfers, channels);
  return per_stream * parallel;
}

}  // namespace ncar::iosim
