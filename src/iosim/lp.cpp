#include "iosim/lp.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace ncar::iosim {

void FifoServerLp::enqueue(Seconds service, Done done) {
  NCAR_REQUIRE(service.value() >= 0, "negative service time");
  Request r{service.value(), std::move(done)};
  if (busy_) {
    queue_.push_back(std::move(r));
    max_queue_ = std::max(max_queue_,
                          static_cast<std::uint64_t>(queue_.size()));
    return;
  }
  start(std::move(r));
}

void FifoServerLp::start(Request&& r) {
  busy_ = true;
  const double service_s = r.service_s;
  sim_.in(Seconds(service_s), [this, service_s, done = std::move(r.done)] {
    busy_seconds_ += service_s;
    ++completed_;
    busy_ = false;
    if (done) done();
    // The completion callback may have enqueued (and thereby started) new
    // work; only pull from the queue when the server is still free.
    if (!busy_ && !queue_.empty()) {
      Request next = std::move(queue_.front());
      queue_.pop_front();
      start(std::move(next));
    }
  });
}

void DiskLp::transfer(Bytes bytes, FifoServerLp::Done done) {
  const Seconds service = disk_->sequential_seconds(bytes);
  server_.enqueue(service, [this, bytes, service, done = std::move(done)] {
    disk_->record_transfer(bytes, service);
    if (done) done();
  });
}

void HippiLp::transfer(Bytes total_bytes, Bytes packet_bytes,
                       FifoServerLp::Done done) {
  const Seconds service =
      channel_->transfer_seconds(total_bytes, packet_bytes);
  server_.enqueue(service,
                  [this, total_bytes, packet_bytes, done = std::move(done)] {
                    channel_->traced_transfer(total_bytes, packet_bytes);
                    if (done) done();
                  });
}

void XmuLp::stage(Bytes bytes, FifoServerLp::Done done) {
  const Seconds service(bytes.value() / machine_.xmu_bandwidth().value());
  server_.enqueue(service, [this, service, done = std::move(done)] {
    if (trace_ != nullptr && service.value() > 0) {
      trace_->add(trace::Category::IoXmu, traced_busy_s_, service.value(),
                  "xmu_stage");
    }
    traced_busy_s_ += service.value();
    if (done) done();
  });
}

}  // namespace ncar::iosim
