#include "iosim/disk.hpp"

#include <algorithm>
#include <cmath>

namespace ncar::iosim {

DiskSystem::DiskSystem(DiskConfig cfg) : cfg_(cfg) {
  NCAR_REQUIRE(cfg_.spindles >= 1, "need at least one spindle");
  NCAR_REQUIRE(cfg_.media_bytes_per_s > 0 && cfg_.controller_bytes_per_s > 0,
               "transfer rates must be positive");
  NCAR_REQUIRE(cfg_.stripe_bytes > 0, "stripe unit must be positive");
}

double DiskSystem::streaming_bytes_per_s() const {
  return std::min(cfg_.controller_bytes_per_s,
                  cfg_.media_bytes_per_s * cfg_.spindles);
}

double DiskSystem::sequential_seconds(double bytes) const {
  NCAR_REQUIRE(bytes >= 0, "negative transfer size");
  if (bytes == 0) return 0.0;
  // Striping engages one spindle per stripe unit, up to all spindles.
  const double stripes = std::ceil(bytes / static_cast<double>(cfg_.stripe_bytes));
  const int active = static_cast<int>(
      std::min<double>(cfg_.spindles, std::max(1.0, stripes)));
  const double rate =
      std::min(cfg_.controller_bytes_per_s, cfg_.media_bytes_per_s * active);
  return cfg_.seek_s + cfg_.rotational_s + bytes / rate;
}

double DiskSystem::direct_access_seconds(long records, double record_bytes,
                                         int writers) const {
  NCAR_REQUIRE(records >= 0 && record_bytes >= 0, "record shape");
  NCAR_REQUIRE(writers >= 1, "need at least one writer");
  if (records == 0) return 0.0;
  // Each record pays positioning on the spindle it lands on; positioning
  // overlaps across spindles and across concurrent writers, but no more
  // than `spindles` positioning streams exist.
  const int streams = std::min(cfg_.spindles, writers);
  const double position_total =
      static_cast<double>(records) * (cfg_.seek_s + cfg_.rotational_s) /
      static_cast<double>(streams);
  const double media_total =
      static_cast<double>(records) * record_bytes / streaming_bytes_per_s();
  // Positioning and media overlap imperfectly: the slower one dominates,
  // the other contributes its non-overlapped tail.
  return std::max(position_total, media_total) +
         0.1 * std::min(position_total, media_total);
}

void DiskSystem::record_transfer(double bytes, double seconds) {
  NCAR_REQUIRE(bytes >= 0 && seconds >= 0, "accounting values");
  total_bytes_ += bytes;
  busy_seconds_ += seconds;
}

void DiskSystem::reset_accounting() {
  total_bytes_ = 0;
  busy_seconds_ = 0;
}

}  // namespace ncar::iosim
