#include "iosim/disk.hpp"

#include <algorithm>
#include <cmath>

namespace ncar::iosim {

DiskSystem::DiskSystem(DiskConfig cfg) : cfg_(cfg) {
  NCAR_REQUIRE(cfg_.spindles >= 1, "need at least one spindle");
  NCAR_REQUIRE(cfg_.media_rate.value() > 0 && cfg_.controller_rate.value() > 0,
               "transfer rates must be positive");
  NCAR_REQUIRE(cfg_.stripe.value() > 0, "stripe unit must be positive");
}

BytesPerSec DiskSystem::streaming_bytes_per_s() const {
  return std::min(cfg_.controller_rate, cfg_.media_rate * cfg_.spindles);
}

Seconds DiskSystem::sequential_seconds(Bytes bytes) const {
  NCAR_REQUIRE(bytes.value() >= 0, "negative transfer size");
  if (bytes.value() == 0) return Seconds(0.0);
  // Striping engages one spindle per stripe unit, up to all spindles.
  const double stripes = std::ceil(bytes / cfg_.stripe);
  const int active = static_cast<int>(
      std::min<double>(cfg_.spindles, std::max(1.0, stripes)));
  const BytesPerSec rate =
      std::min(cfg_.controller_rate, cfg_.media_rate * active);
  return cfg_.seek + cfg_.rotational + bytes / rate;
}

Seconds DiskSystem::direct_access_seconds(long records, Bytes record_bytes,
                                          int writers) const {
  NCAR_REQUIRE(records >= 0 && record_bytes.value() >= 0, "record shape");
  NCAR_REQUIRE(writers >= 1, "need at least one writer");
  if (records == 0) return Seconds(0.0);
  // Each record pays positioning on the spindle it lands on; positioning
  // overlaps across spindles and across concurrent writers, but no more
  // than `spindles` positioning streams exist.
  const int streams = std::min(cfg_.spindles, writers);
  const Seconds position_total = static_cast<double>(records) *
                                 (cfg_.seek + cfg_.rotational) /
                                 static_cast<double>(streams);
  const Seconds media_total = static_cast<double>(records) * record_bytes /
                              streaming_bytes_per_s();
  // Positioning and media overlap imperfectly: the slower one dominates,
  // the other contributes its non-overlapped tail.
  return std::max(position_total, media_total) +
         0.1 * std::min(position_total, media_total);
}

void DiskSystem::record_transfer(Bytes bytes, Seconds seconds) {
  NCAR_REQUIRE(bytes.value() >= 0 && seconds.value() >= 0,
               "accounting values");
  total_bytes_ += bytes;
  if (trace_ != nullptr && seconds.value() > 0) {
    trace_->add(trace::Category::IoDisk, busy_seconds_.value(),
                seconds.value(), "transfer");
  }
  busy_seconds_ += seconds;
}

void DiskSystem::reset_accounting() {
  total_bytes_ = Bytes();
  busy_seconds_ = Seconds();
}

}  // namespace ncar::iosim
