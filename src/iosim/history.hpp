#pragma once
// Climate-model history I/O (the I/O benchmark of paper 4.5.1, and the
// write load behind CCM2's one-year runs in Table 5 — ~15 GB at T63L18).
//
// A "history tape" is an unformatted direct-access file with one record per
// latitude, so different processors can write different records. A header
// file precedes it. write volumes follow directly from the model grid.

#include "common/quantity.hpp"
#include "iosim/disk.hpp"

namespace ncar::iosim {

struct HistoryShape {
  int nlon = 0;
  int nlat = 0;
  int nlev = 0;
  int fields = 0;  ///< 2-D-equivalent field slices written per record
};

/// Bytes of one latitude record: nlon * nlev * fields doubles.
Bytes history_record_bytes(const HistoryShape& s);

/// Bytes of one full history write (header + all latitude records).
Bytes history_write_bytes(const HistoryShape& s);

/// Seconds to write one history volume with `writers` concurrent
/// processors writing records (paper: "different processors could write
/// different records"). Accounting is recorded on the disk system.
Seconds write_history_seconds(DiskSystem& disk, const HistoryShape& s,
                              int writers = 1);

/// Seconds to read initial-condition data of the same shape.
Seconds read_initial_seconds(DiskSystem& disk, const HistoryShape& s);

}  // namespace ncar::iosim
