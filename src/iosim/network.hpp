#pragma once
// FDDI/IP external network model for the NETWORK benchmark (paper 4.5.3).
//
// The benchmark script runs data-transfer commands (ftp-like bulk moves
// between the benchmarked machine and a peer) and non-data commands
// (rsh-like round trips). FDDI carries 100 Mbit/s; IP/TCP processing adds
// per-packet host overhead and a window-limited throughput ceiling.

#include "common/error.hpp"
#include "common/quantity.hpp"

namespace ncar::iosim {

struct NetworkConfig {
  double line_bits_per_s = 100e6;   ///< FDDI ring rate
  double mtu_bytes = 4352;          ///< FDDI MTU
  double per_packet_host_s = 120e-6;  ///< 1990s IP stack cost per packet
  double rtt_s = 1.2e-3;            ///< LAN round-trip time
  double tcp_window_bytes = 48 * 1024;
  double command_overhead_s = 30e-3;  ///< process spawn / login negotiation
};

class Network {
public:
  explicit Network(NetworkConfig cfg = {});

  const NetworkConfig& config() const { return cfg_; }

  /// Throughput ceiling: min of line rate, host packet processing, and
  /// the TCP window/RTT bound.
  BytesPerSec throughput_bytes_per_s() const;

  /// Seconds for an ftp-like transfer of `bytes`.
  Seconds data_transfer_seconds(Bytes bytes) const;

  /// Seconds for a non-data command (rsh/rlogin round trip).
  Seconds command_seconds() const;

private:
  NetworkConfig cfg_;
};

}  // namespace ncar::iosim
