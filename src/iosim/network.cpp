#include "iosim/network.hpp"

#include <algorithm>

namespace ncar::iosim {

Network::Network(NetworkConfig cfg) : cfg_(cfg) {
  NCAR_REQUIRE(cfg_.line_bits_per_s > 0 && cfg_.mtu_bytes > 0,
               "line parameters must be positive");
  NCAR_REQUIRE(cfg_.rtt_s > 0 && cfg_.tcp_window_bytes > 0,
               "TCP parameters must be positive");
}

BytesPerSec Network::throughput_bytes_per_s() const {
  const double line = cfg_.line_bits_per_s / 8.0;
  const double host = cfg_.mtu_bytes / cfg_.per_packet_host_s;
  const double window = cfg_.tcp_window_bytes / cfg_.rtt_s;
  return BytesPerSec(std::min({line, host, window}));
}

Seconds Network::data_transfer_seconds(Bytes bytes) const {
  NCAR_REQUIRE(bytes.value() >= 0, "negative transfer size");
  return Seconds(cfg_.command_overhead_s + cfg_.rtt_s +
                 bytes.value() / throughput_bytes_per_s().value());
}

Seconds Network::command_seconds() const {
  return Seconds(cfg_.command_overhead_s + 2.0 * cfg_.rtt_s);
}

}  // namespace ncar::iosim
