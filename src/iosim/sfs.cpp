#include "iosim/sfs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::iosim {

Sfs::Sfs(const sxs::MachineConfig& machine, DiskSystem& disk, SfsConfig cfg)
    : cfg_(cfg), machine_(machine), disk_(&disk) {
  NCAR_REQUIRE(cfg_.cache_bytes > 0, "cache size must be positive");
  NCAR_REQUIRE(cfg_.staging_unit_bytes > 0, "staging unit must be positive");
  NCAR_REQUIRE(Bytes(cfg_.cache_bytes) <= machine_.xmu_capacity_bytes,
               "SFS cache cannot exceed the XMU capacity");
  NCAR_REQUIRE(cfg_.staging_unit_bytes <= cfg_.cache_bytes,
               "staging unit cannot exceed the cache");
}

double Sfs::xmu_seconds(double bytes) const {
  return bytes / machine_.xmu_bandwidth().value();
}

void Sfs::note(trace::Category c, double start, double seconds,
               const char* tag) {
  if (trace_ != nullptr && seconds > 0) trace_->add(c, start, seconds, tag);
}

void Sfs::arm_drain() {
  if (dirty_ <= 0) {
    if (drain_done_.valid()) {
      calendar_.cancel(drain_done_);
      drain_done_ = {};
    }
    return;
  }
  const Seconds done(now_ + dirty_ / disk_->streaming_bytes_per_s().value());
  if (drain_done_.valid() && calendar_.pending(drain_done_)) {
    calendar_.reschedule(drain_done_, done);
    return;
  }
  drain_done_ = calendar_.schedule(done, [this] {
    drain_done_ = {};
    ++drain_completions_;
  });
}

void Sfs::drain_until(double t) {
  if (t <= now_) return;
  // Fire every calendar event inside the window, in order — the armed
  // drain-complete marker lands here when the cache runs dry mid-window.
  while (!calendar_.empty() && calendar_.next_time() <= Seconds(t)) {
    calendar_.pop().fn();
  }
  const double window = t - now_;
  const double stream_rate = disk_->streaming_bytes_per_s().value();
  const double drained = std::min(dirty_, stream_rate * window);
  if (drained > 0) {
    disk_->record_transfer(Bytes(drained), Seconds(drained / stream_rate));
    note(trace::Category::IoDisk, now_, drained / stream_rate, "drain");
    dirty_ -= drained;
    resident_ = std::min(cfg_.cache_bytes, resident_ + drained);
  }
  now_ = t;
  arm_drain();
}

void Sfs::advance(Seconds seconds) {
  NCAR_REQUIRE(seconds.value() >= 0, "negative advance");
  drain_until(now_ + seconds.value());
}

Seconds Sfs::write(Bytes bytes_q) {
  const double bytes = bytes_q.value();
  NCAR_REQUIRE(bytes >= 0, "negative write size");
  if (bytes == 0) return Seconds(0.0);
  written_ += bytes;
  double wait = 0;

  if (cfg_.method == WriteBackMethod::WriteThrough) {
    const double xmu_t = xmu_seconds(bytes);
    const double disk_t = disk_->sequential_seconds(bytes_q).value();
    const double t = xmu_t + disk_t;
    disk_->record_transfer(bytes_q, disk_->sequential_seconds(bytes_q));
    note(trace::Category::IoXmu, now_, xmu_t, "write_through");
    note(trace::Category::IoDisk, now_ + xmu_t, disk_t, "write_through");
    drain_until(now_ + t);
    return Seconds(t);
  }

  // Write-back in staging units: each unit lands at XMU speed once there
  // is cache room; when the cache is full the caller stalls on the drain.
  double remaining = bytes;
  while (remaining > 0) {
    const double unit = std::min(remaining, cfg_.staging_unit_bytes);
    const double free_space = cfg_.cache_bytes - dirty_;
    if (unit > free_space) {
      // Wait for the drain to make room for this staging unit.
      const double need = unit - free_space;
      const double stall = need / disk_->streaming_bytes_per_s().value();
      drain_until(now_ + stall);
      wait += stall;
    }
    const double t = xmu_seconds(unit);
    note(trace::Category::IoXmu, now_, t, "write_back");
    drain_until(now_ + t);
    wait += t;
    dirty_ += unit;
    remaining -= unit;
    arm_drain();
  }
  return Seconds(wait);
}

Seconds Sfs::read(Bytes bytes_q) {
  const double bytes = bytes_q.value();
  NCAR_REQUIRE(bytes >= 0, "negative read size");
  if (bytes == 0) return Seconds(0.0);
  const double cached = std::min(bytes, resident_ + dirty_);
  const double from_disk = bytes - cached;
  double t = xmu_seconds(cached);
  note(trace::Category::IoXmu, now_, t, "read");
  if (from_disk > 0) {
    const double disk_t = disk_->sequential_seconds(Bytes(from_disk)).value();
    note(trace::Category::IoDisk, now_ + t, disk_t, "read");
    t += disk_t;
    disk_->record_transfer(Bytes(from_disk),
                           disk_->sequential_seconds(Bytes(from_disk)));
  }
  drain_until(now_ + t);
  return Seconds(t);
}

Seconds Sfs::drain_seconds() const {
  return Seconds(dirty_ / disk_->streaming_bytes_per_s().value());
}

Seconds Sfs::flush() {
  const Seconds wait = drain_seconds();
  drain_until(now_ + wait.value());
  return wait;
}

}  // namespace ncar::iosim
