#include "iosim/sfs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::iosim {

Sfs::Sfs(const sxs::MachineConfig& machine, DiskSystem& disk, SfsConfig cfg)
    : cfg_(cfg), machine_(machine), disk_(&disk) {
  NCAR_REQUIRE(cfg_.cache.value() > 0, "cache size must be positive");
  NCAR_REQUIRE(cfg_.staging_unit.value() > 0,
               "staging unit must be positive");
  NCAR_REQUIRE(cfg_.cache <= machine_.xmu_capacity_bytes,
               "SFS cache cannot exceed the XMU capacity");
  NCAR_REQUIRE(cfg_.staging_unit <= cfg_.cache,
               "staging unit cannot exceed the cache");
}

Seconds Sfs::xmu_seconds(Bytes bytes) const {
  return bytes / machine_.xmu_bandwidth();
}

void Sfs::note(trace::Category c, Seconds start, Seconds seconds,
               const char* tag) {
  if (trace_ != nullptr && seconds.value() > 0) {
    trace_->add(c, start.value(), seconds.value(), tag);
  }
}

void Sfs::arm_drain() {
  if (dirty_.value() <= 0) {
    if (drain_done_.valid()) {
      calendar_.cancel(drain_done_);
      drain_done_ = {};
    }
    return;
  }
  const Seconds done = now_ + dirty_ / disk_->streaming_bytes_per_s();
  if (drain_done_.valid() && calendar_.pending(drain_done_)) {
    calendar_.reschedule(drain_done_, done);
    return;
  }
  drain_done_ = calendar_.schedule(done, [this] {
    drain_done_ = {};
    ++drain_completions_;
  });
}

void Sfs::drain_until(Seconds t) {
  if (t <= now_) return;
  // Fire every calendar event inside the window, in order — the armed
  // drain-complete marker lands here when the cache runs dry mid-window.
  while (!calendar_.empty() && calendar_.next_time() <= t) {
    calendar_.pop().fn();
  }
  const Seconds window = t - now_;
  const BytesPerSec stream_rate = disk_->streaming_bytes_per_s();
  const Bytes drained = std::min(dirty_, stream_rate * window);
  if (drained.value() > 0) {
    disk_->record_transfer(drained, drained / stream_rate);
    note(trace::Category::IoDisk, now_, drained / stream_rate, "drain");
    dirty_ -= drained;
    resident_ = std::min(cfg_.cache, resident_ + drained);
  }
  now_ = t;
  arm_drain();
}

void Sfs::advance(Seconds seconds) {
  NCAR_REQUIRE(seconds.value() >= 0, "negative advance");
  drain_until(now_ + seconds);
}

Seconds Sfs::write(Bytes bytes) {
  NCAR_REQUIRE(bytes.value() >= 0, "negative write size");
  if (bytes.value() == 0) return Seconds(0.0);
  written_ += bytes;

  if (cfg_.method == WriteBackMethod::WriteThrough) {
    const Seconds xmu_t = xmu_seconds(bytes);
    const Seconds disk_t = disk_->sequential_seconds(bytes);
    const Seconds t = xmu_t + disk_t;
    disk_->record_transfer(bytes, disk_->sequential_seconds(bytes));
    note(trace::Category::IoXmu, now_, xmu_t, "write_through");
    note(trace::Category::IoDisk, now_ + xmu_t, disk_t, "write_through");
    drain_until(now_ + t);
    return t;
  }

  // Write-back in staging units: each unit lands at XMU speed once there
  // is cache room; when the cache is full the caller stalls on the drain.
  Seconds wait;
  Bytes remaining = bytes;
  while (remaining.value() > 0) {
    const Bytes unit = std::min(remaining, cfg_.staging_unit);
    const Bytes free_space = cfg_.cache - dirty_;
    if (unit > free_space) {
      // Wait for the drain to make room for this staging unit.
      const Bytes need = unit - free_space;
      const Seconds stall = need / disk_->streaming_bytes_per_s();
      drain_until(now_ + stall);
      wait += stall;
    }
    const Seconds t = xmu_seconds(unit);
    note(trace::Category::IoXmu, now_, t, "write_back");
    drain_until(now_ + t);
    wait += t;
    dirty_ += unit;
    remaining -= unit;
    arm_drain();
  }
  return wait;
}

Seconds Sfs::read(Bytes bytes) {
  NCAR_REQUIRE(bytes.value() >= 0, "negative read size");
  if (bytes.value() == 0) return Seconds(0.0);
  const Bytes cached = std::min(bytes, resident_ + dirty_);
  const Bytes from_disk = bytes - cached;
  Seconds t = xmu_seconds(cached);
  note(trace::Category::IoXmu, now_, t, "read");
  if (from_disk.value() > 0) {
    const Seconds disk_t = disk_->sequential_seconds(from_disk);
    note(trace::Category::IoDisk, now_ + t, disk_t, "read");
    t += disk_t;
    disk_->record_transfer(from_disk, disk_->sequential_seconds(from_disk));
  }
  drain_until(now_ + t);
  return t;
}

Seconds Sfs::drain_seconds() const {
  return dirty_ / disk_->streaming_bytes_per_s();
}

Seconds Sfs::flush() {
  const Seconds wait = drain_seconds();
  drain_until(now_ + wait);
  return wait;
}

}  // namespace ncar::iosim
