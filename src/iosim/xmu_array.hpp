#pragma once
// XMU direct-mapped arrays (paper section 2.3).
//
// "Hardware features allow the XMU to be effectively used for direct
// mapped FORTRAN data arrays. This feature allows processing of large data
// sets that might not fit into main memory... supported by compile time
// options and does not require special programming."
//
// The model: an out-of-core array of `total_words` doubles living on the
// XMU, accessed through a main-memory window of `window_words`. Touching
// an element outside the resident window stages the containing block in
// (and the displaced block out) at XMU bandwidth; time accumulates on the
// object and can be charged to a Cpu. Real data is stored so numerics work.
// When staging must contend with other XMU traffic in simulated time, the
// event-driven XmuLp adapter in iosim/lp.hpp models the shared path.

#include <vector>

#include "sxs/cpu.hpp"
#include "sxs/machine_config.hpp"

namespace ncar::iosim {

class XmuArray {
public:
  /// An array of `total_words` doubles with a resident window of
  /// `window_words` (must divide into whole blocks of `block_words`).
  XmuArray(const sxs::MachineConfig& machine, long total_words,
           long window_words, long block_words = 65536);

  long size() const { return total_; }
  long window_words() const { return window_; }

  double read(long index);
  void write(long index, double value);

  /// Simulated seconds spent staging blocks so far.
  Seconds staging_seconds() const { return Seconds(staging_seconds_); }
  long faults() const { return faults_; }
  /// Charge the accumulated staging time to a CPU and reset the meter.
  void charge(sxs::Cpu& cpu);

private:
  void touch(long index);

  sxs::MachineConfig machine_;
  long total_, window_, block_;
  std::vector<double> data_;        ///< backing store ("the XMU")
  std::vector<long> resident_;      ///< block ids currently in the window
  std::vector<long> lru_;           ///< last-use stamps, parallel to resident_
  long tick_ = 0;
  long faults_ = 0;
  double staging_seconds_ = 0;
};

}  // namespace ncar::iosim
