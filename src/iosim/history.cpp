#include "iosim/history.hpp"

#include "common/error.hpp"

namespace ncar::iosim {

namespace {
constexpr double kHeaderBytes = 64 * 1024;
}

Bytes history_record_bytes(const HistoryShape& s) {
  NCAR_REQUIRE(s.nlon > 0 && s.nlat > 0 && s.nlev > 0 && s.fields > 0,
               "history shape");
  return Bytes(8.0 * s.nlon * s.nlev * s.fields);
}

Bytes history_write_bytes(const HistoryShape& s) {
  return Bytes(kHeaderBytes) +
         history_record_bytes(s) * static_cast<double>(s.nlat);
}

Seconds write_history_seconds(DiskSystem& disk, const HistoryShape& s,
                              int writers) {
  const Seconds header = disk.sequential_seconds(Bytes(kHeaderBytes));
  const Seconds records =
      disk.direct_access_seconds(s.nlat, history_record_bytes(s), writers);
  const Seconds total = header + records;
  disk.record_transfer(history_write_bytes(s), total);
  return total;
}

Seconds read_initial_seconds(DiskSystem& disk, const HistoryShape& s) {
  const Seconds t = disk.sequential_seconds(history_write_bytes(s));
  disk.record_transfer(history_write_bytes(s), t);
  return t;
}

}  // namespace ncar::iosim
