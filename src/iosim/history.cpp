#include "iosim/history.hpp"

#include "common/error.hpp"

namespace ncar::iosim {

namespace {
constexpr double kHeaderBytes = 64 * 1024;
}

double history_record_bytes(const HistoryShape& s) {
  NCAR_REQUIRE(s.nlon > 0 && s.nlat > 0 && s.nlev > 0 && s.fields > 0,
               "history shape");
  return 8.0 * s.nlon * s.nlev * s.fields;
}

double history_write_bytes(const HistoryShape& s) {
  return kHeaderBytes + history_record_bytes(s) * s.nlat;
}

double write_history_seconds(DiskSystem& disk, const HistoryShape& s,
                             int writers) {
  const double header = disk.sequential_seconds(kHeaderBytes);
  const double records =
      disk.direct_access_seconds(s.nlat, history_record_bytes(s), writers);
  const double total = header + records;
  disk.record_transfer(history_write_bytes(s), total);
  return total;
}

double read_initial_seconds(DiskSystem& disk, const HistoryShape& s) {
  const double t = disk.sequential_seconds(history_write_bytes(s));
  disk.record_transfer(history_write_bytes(s), t);
  return t;
}

}  // namespace ncar::iosim
