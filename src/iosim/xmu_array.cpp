#include "iosim/xmu_array.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ncar::iosim {

XmuArray::XmuArray(const sxs::MachineConfig& machine, long total_words,
                   long window_words, long block_words)
    : machine_(machine),
      total_(total_words),
      window_(window_words),
      block_(block_words) {
  NCAR_REQUIRE(total_ >= 1, "array must have elements");
  NCAR_REQUIRE(block_ >= 1, "block size");
  NCAR_REQUIRE(window_ >= block_, "window must hold at least one block");
  NCAR_REQUIRE(window_ % block_ == 0, "window must be whole blocks");
  NCAR_REQUIRE(to_bytes(Words(static_cast<double>(total_))) <=
                   machine_.xmu_capacity_bytes,
               "array exceeds the XMU capacity");
  data_.assign(static_cast<std::size_t>(total_), 0.0);
  const long slots = window_ / block_;
  resident_.assign(static_cast<std::size_t>(slots), -1);
  lru_.assign(static_cast<std::size_t>(slots), 0);
}

void XmuArray::touch(long index) {
  NCAR_REQUIRE(index >= 0 && index < total_, "index out of range");
  const long block = index / block_;
  ++tick_;
  // Hit?
  for (std::size_t s = 0; s < resident_.size(); ++s) {
    if (resident_[s] == block) {
      lru_[s] = tick_;
      return;
    }
  }
  // Fault: stage the block in (and the LRU victim out) at XMU bandwidth.
  ++faults_;
  std::size_t victim = 0;
  for (std::size_t s = 1; s < resident_.size(); ++s) {
    if (resident_[s] == -1) {
      victim = s;
      break;
    }
    if (lru_[s] < lru_[victim]) victim = s;
  }
  const double xmu_rate = machine_.xmu_bandwidth().value();
  const double bytes = 8.0 * static_cast<double>(block_) *
                       (resident_[victim] == -1 ? 1.0 : 2.0);  // in (+ out)
  staging_seconds_ += bytes / xmu_rate;
  resident_[victim] = block;
  lru_[victim] = tick_;
}

double XmuArray::read(long index) {
  touch(index);
  return data_[static_cast<std::size_t>(index)];
}

void XmuArray::write(long index, double value) {
  touch(index);
  data_[static_cast<std::size_t>(index)] = value;
}

void XmuArray::charge(sxs::Cpu& cpu) {
  cpu.charge_seconds(Seconds(staging_seconds_), trace::Category::IoXmu);
  staging_seconds_ = 0;
}

}  // namespace ncar::iosim
