#pragma once
// Conventional-disk subsystem model for the I/O benchmark (paper 4.5.1).
//
// The benchmark writes a simulated header file and an unformatted
// direct-access "history tape" whose records can be written by different
// processors (one record per latitude). The model is a striped array of
// spindles behind controllers: each request pays seek + rotational latency
// once per contiguous extent and then streams at the media rate; striping
// spreads large transfers across spindles.
//
// The model is analytic (it prices transfers in closed form); for
// event-driven use, where queued transfers contend in simulated time,
// wrap the device in a DiskLp from iosim/lp.hpp.

#include <cstdint>

#include "common/error.hpp"
#include "common/quantity.hpp"
#include "trace/collector.hpp"

namespace ncar::iosim {

struct DiskConfig {
  int spindles = 16;                     ///< striped drive count
  Seconds seek{8e-3};                    ///< average seek
  Seconds rotational{4e-3};              ///< average rotational latency (7200rpm/2)
  BytesPerSec media_rate{9e6};           ///< per-spindle sustained media rate
  BytesPerSec controller_rate{80e6};     ///< shared controller ceiling
  Bytes stripe{256.0 * 1024};            ///< striping unit
};

class DiskSystem {
public:
  explicit DiskSystem(DiskConfig cfg = {});

  const DiskConfig& config() const { return cfg_; }

  /// Seconds for one sequential transfer of `bytes` (read or write — the
  /// model is symmetric), including one positioning delay.
  Seconds sequential_seconds(Bytes bytes) const;

  /// Seconds for `records` direct-access record writes of `record_bytes`
  /// each, issued from `writers` concurrent processors. Positioning costs
  /// overlap across spindles; media time shares the controller.
  Seconds direct_access_seconds(long records, Bytes record_bytes,
                                int writers = 1) const;

  /// Effective streaming bandwidth for very large transfers.
  BytesPerSec streaming_bytes_per_s() const;

  // --- accounting ---------------------------------------------------------
  void record_transfer(Bytes bytes, Seconds seconds);
  Bytes total_bytes() const { return total_bytes_; }
  Seconds busy_seconds() const { return busy_seconds_; }
  void reset_accounting();

  /// Record transfers as io_disk activity on `t` (device-busy timeline:
  /// span starts at the cumulative busy seconds before each transfer);
  /// nullptr disables. The collector must outlive the DiskSystem.
  void set_trace(trace::Collector* t) { trace_ = t; }

private:
  DiskConfig cfg_;
  Bytes total_bytes_;
  Seconds busy_seconds_;
  trace::Collector* trace_ = nullptr;
};

}  // namespace ncar::iosim
