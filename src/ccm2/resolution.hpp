#pragma once
// CCM2 resolutions — the paper's Table 4.
//
// | Resolution | grid (lat x lon) | spacing | time step |
// | T42L18     | 64 x 128         | 2.8 deg | 20.0 min  |
// | T63L18     | 96 x 192         | 2.1 deg | 12.0 min  |
// | T85L18     | 128 x 256        | 1.4 deg | 10.0 min  |
// | T106L18    | 160 x 320        | 1.1 deg |  7.5 min  |
// | T170L18    | 256 x 512        | 0.7 deg |  5.0 min  |

#include <string>
#include <vector>

namespace ncar::ccm2 {

struct Resolution {
  std::string name;
  int truncation = 0;
  int nlat = 0;
  int nlon = 0;
  int nlev = 18;
  double dt_seconds = 0;

  long steps_per_day() const {
    return static_cast<long>(86400.0 / dt_seconds + 0.5);
  }
};

Resolution t42l18();
Resolution t63l18();
Resolution t85l18();
Resolution t106l18();
Resolution t170l18();

/// All Table 4 resolutions, coarse to fine.
std::vector<Resolution> table4();

/// Look up by name ("T42L18", ...); throws on unknown names.
Resolution resolution_by_name(const std::string& name);

}  // namespace ncar::ccm2
