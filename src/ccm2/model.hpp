#pragma once
// CCM2-like spectral atmospheric model (paper section 4.7.1).
//
// The computational skeleton matches the paper's description of CCM2:
//   * spectral transform dynamics on a Gaussian grid (FFT in longitude,
//     Gauss–Legendre quadrature in latitude, triangular truncation);
//   * non-linear terms formed in grid space, linear terms and horizontal
//     derivatives applied in spectral space (local there);
//   * column physics, numerically independent in the horizontal, dominated
//     by RADABS-style intrinsic-heavy radiation;
//   * shape-preserving semi-Lagrangian transport of water vapour with
//     indirect addressing on the Gaussian grid.
//
// The dynamical core solves the nonlinear barotropic vorticity equation
// per level (leapfrog + Robert–Asselin filter, implicit del^4 diffusion) —
// a real, testable spectral dycore with the same transform structure and
// cost profile as CCM2's dry dynamics. Substitutions for host-cost reasons
// (documented in DESIGN.md): only `active_levels` levels are integrated
// numerically (every level is *charged*; per-level work is identical), and
// radiation numerics sample every `radiation_col_stride`-th column while
// the timing model is charged for all columns.
//
// Parallelisation mirrors CCM2's macrotasked structure: latitude-parallel
// grid/physics/FFT/synthesis regions and wavenumber-parallel analysis and
// spectral regions, with a barrier between regions (Node::parallel).

#include <complex>
#include <memory>
#include <vector>

#include "ccm2/resolution.hpp"
#include "ccm2/slt.hpp"
#include "common/array.hpp"
#include "fft/complex_fft.hpp"
#include "iosim/disk.hpp"
#include "iosim/history.hpp"
#include "spectral/sht.hpp"
#include "sxs/node.hpp"

namespace ncar::ccm2 {

struct Ccm2Config {
  Resolution res = t42l18();
  double radius = 6.371e6;          ///< earth radius (m)
  double omega = 7.292e-5;          ///< rotation rate (1/s)
  double u0 = 25.0;                 ///< initial zonal jet speed (m/s)
  double wave_amplitude = 6e-6;     ///< initial m=4 Rossby wave vorticity
  double hyperdiff_tau_s = 9000.0;  ///< e-folding time of the smallest scale
  double asselin = 0.05;            ///< Robert–Asselin filter coefficient
  int active_levels = 2;            ///< levels integrated numerically
  int radiation_col_stride = 16;    ///< radiation numerics column sampling
  int history_fields = 16;          ///< 3-D field slices per history write

  // --- full-CCM2 cost accounting -----------------------------------------
  // The numerical dycore evolves one prognostic field per level; CCM2
  // evolves vorticity, divergence, temperature and surface pressure, with
  // correspondingly more transform passes. Charges scale with this count.
  int dynamics_fields = 4;
  // Longwave absorptivity pairs refreshed per step (the O(nlev^2) RADABS
  // table amortised over the radiation cycle).
  int radiation_pairs_per_step = 60;
  // Plain-arithmetic flops per grid point per level for the remaining
  // physics parameterisations (clouds, convection, PBL, surface).
  double physics_param_flops = 220.0;
  // Serial per-step section: time-step management, history buffering, SLT
  // setup and macrotask dispatch that does not parallelise. Calibrated so
  // Table 5's one-year times and Figure 8's T170 sustained rate hold
  // simultaneously (see EXPERIMENTS.md).
  double serial_overhead_s = 0.030;
};

/// Per-step simulated timing broken down by model section.
struct StepTiming {
  double total = 0;
  double serial = 0;          ///< per-step serial management section
  double spectral_local = 0;  ///< inverse Laplacian, update, diffusion
  double synthesis = 0;       ///< Legendre synthesis + gradients
  double ffts = 0;
  double grid = 0;            ///< nonlinear terms on the Gaussian grid
  double analysis = 0;
  double slt = 0;
  double physics = 0;
};

class Ccm2 {
public:
  Ccm2(const Ccm2Config& cfg, sxs::Node& node);

  const Ccm2Config& config() const { return cfg_; }
  const spectral::ShTransform& transform() const { return sht_; }

  /// Reset the state to the initial jet + Rossby wave + moist blob.
  void reset();

  /// Advance one time step on `ncpu` processors of the node. Returns the
  /// simulated wall-clock of the step (also accumulated on the node).
  StepTiming step(int ncpu);

  /// Charge one step's timing model against the node WITHOUT advancing the
  /// numerical state. CCM2's per-step charges depend only on the
  /// configuration and `ncpu` — never on the prognostic fields — so from
  /// the same node state this issues the exact charge sequence step() would
  /// and returns the bit-identical StepTiming. Performance harnesses that
  /// only need timing (CPU-count sweeps, ensemble replays) use this to skip
  /// the host-side numerics, which dominate real wall time.
  StepTiming charge_step(int ncpu) const;

  long steps_taken() const { return steps_; }

  // --- diagnostics (level 0 unless noted) ---------------------------------
  /// Spectral enstrophy 0.5 sum |zeta|^2 (conserved by the inviscid BVE).
  double enstrophy() const;
  /// Spectral kinetic energy 0.5 sum |zeta|^2 / (n(n+1)/a^2).
  double energy() const;
  /// Quadrature-weighted global moisture integral at `level`.
  double moisture_mass(int level) const;
  /// Deterministic state checksum (regression anchor).
  double checksum() const;
  const Array2D<double>& moisture(int level) const;
  const Array2D<double>& temperature(int level) const;

  // --- performance harness --------------------------------------------------
  /// Average simulated seconds per step over `nsteps` fresh steps.
  double measure_step_seconds(int ncpu, int nsteps);
  /// Sustained Cray-equivalent Gflops over `nsteps` fresh steps.
  double sustained_equiv_gflops(int ncpu, int nsteps);
  /// Charge-replay variants: same simulated numbers as the step()-driven
  /// measurements (see charge_step), without evolving the state.
  double measure_charge_seconds(int ncpu, int nsteps) const;
  double charge_sustained_equiv_gflops(int ncpu, int nsteps) const;

  // --- checkpoint / restart (paper section 2.6.2) ---------------------------
  /// Serialise the full prognostic state ("no special programming is
  /// required for checkpointing" — NQS snapshots the whole job).
  std::vector<double> checkpoint() const;
  /// Restore a checkpoint; continuation is bit-identical (tested).
  void restore(const std::vector<double>& state);
  /// Bytes an NQS checkpoint of this state would write.
  double checkpoint_bytes() const;

  // --- history I/O ------------------------------------------------------------
  iosim::HistoryShape history_shape() const;
  Bytes history_bytes() const;
  /// Simulated seconds to write one (daily) history volume.
  Seconds write_history(iosim::DiskSystem& disk, int writers) const;

private:
  void charge_transform_pass(sxs::Cpu& cpu, int passes, long repeats) const;
  void charge_fft_set(sxs::Cpu& cpu, int instances, long repeats) const;

  Ccm2Config cfg_;
  sxs::Node* node_;
  spectral::ShTransform sht_;
  SemiLagrangian slt_;
  // Longitude FFT plan used by the per-step charge model (charge_fft_set
  // only reads the factorisation; building a Plan per call would allocate
  // on every charged step).
  fft::Plan fft_plan_;

  // Spectral state per active level (leapfrog needs two time levels).
  std::vector<std::vector<spectral::cd>> zeta_, zeta_prev_;
  // Grid state per active level.
  std::vector<Array2D<double>> q_, temp_;
  long steps_ = 0;

  // Scratch grids.
  Array2D<double> zg_, zlam_, zmu_, plam_, pmu_, ug_, vg_, gg_, qn_;
  // Per-step spectral scratch, sized in reset() so step() never allocates.
  std::vector<std::vector<spectral::cd>> tendency_;
  std::vector<spectral::cd> psi_;
};

}  // namespace ncar::ccm2
