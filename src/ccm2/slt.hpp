#pragma once
// Shape-preserving semi-Lagrangian transport on the Gaussian grid (paper
// section 4.7.1: "trace gases, including water vapor, are transported by
// the wind fields using a shape preserving SLT scheme. This transport
// involves indirect addressing on the Gaussian polar grid.").
//
// Departure points are found by one-step backward trajectories; values are
// bilinearly interpolated (the indirect addressing / gather) and clamped to
// the envelope of the surrounding cell (the shape-preserving limiter of
// Williamson & Rasch).

#include "common/array.hpp"
#include "spectral/gauss.hpp"

namespace ncar::ccm2 {

class SemiLagrangian {
public:
  /// `nodes` are the Gaussian latitudes (mu ascending), `nlon` equally
  /// spaced longitudes, sphere of `radius` metres.
  SemiLagrangian(const spectral::GaussNodes& nodes, int nlon, double radius);

  /// Advect `q` with winds (u east, v north, m/s) over `dt` seconds.
  /// All fields are (nlon, nlat), longitude contiguous.
  void advect(const Array2D<double>& q, const Array2D<double>& u,
              const Array2D<double>& v, double dt, Array2D<double>& out) const;

  /// Global mass integral: sum q * w_j (quadrature-weighted mean * 2).
  double mass(const Array2D<double>& q) const;

  int nlat() const { return static_cast<int>(phi_.size()); }
  int nlon() const { return nlon_; }

private:
  /// Latitude cell containing phi: largest j with phi_[j] <= phi, clamped
  /// to [0, nlat-2].
  int lat_cell(double phi) const;

  std::vector<double> phi_;     ///< latitudes (radians), ascending
  std::vector<double> weight_;  ///< Gaussian weights
  int nlon_;
  double radius_;
  double dlon_;
};

}  // namespace ncar::ccm2
