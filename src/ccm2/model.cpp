#include "ccm2/model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sxs/ops.hpp"
#include "trace/category.hpp"

namespace ncar::ccm2 {

using spectral::cd;

Ccm2::Ccm2(const Ccm2Config& cfg, sxs::Node& node)
    : cfg_(cfg),
      node_(&node),
      sht_(cfg.res.truncation, cfg.res.nlat, cfg.res.nlon),
      slt_(sht_.nodes(), cfg.res.nlon, cfg.radius),
      fft_plan_(cfg.res.nlon),
      zg_(static_cast<std::size_t>(cfg.res.nlon), static_cast<std::size_t>(cfg.res.nlat)),
      zlam_(zg_.ni(), zg_.nj()),
      zmu_(zg_.ni(), zg_.nj()),
      plam_(zg_.ni(), zg_.nj()),
      pmu_(zg_.ni(), zg_.nj()),
      ug_(zg_.ni(), zg_.nj()),
      vg_(zg_.ni(), zg_.nj()),
      gg_(zg_.ni(), zg_.nj()),
      qn_(zg_.ni(), zg_.nj()) {
  NCAR_REQUIRE(cfg_.active_levels >= 1 && cfg_.active_levels <= cfg_.res.nlev,
               "active_levels must be in [1, nlev]");
  NCAR_REQUIRE(cfg_.radiation_col_stride >= 1, "radiation column stride");
  reset();
}

void Ccm2::reset() {
  const int L = cfg_.active_levels;
  const auto& idx = sht_.index();
  zeta_.assign(static_cast<std::size_t>(L),
               std::vector<cd>(static_cast<std::size_t>(sht_.spec_size()),
                               cd(0, 0)));
  // Zonal jet: psi = -a U0 mu  =>  zeta = 2 U0 mu / a; mu = Pbar_1^0/sqrt(3).
  const cd jet(2.0 * cfg_.u0 / (cfg_.radius * std::sqrt(3.0)), 0.0);
  // Plus a Rossby-Haurwitz-like m=4 wave and a weak tail for realism.
  for (int l = 0; l < L; ++l) {
    auto& z = zeta_[static_cast<std::size_t>(l)];
    z[static_cast<std::size_t>(idx.at(0, 1))] = jet;
    const double amp = cfg_.wave_amplitude * (1.0 + 0.1 * l);
    if (sht_.truncation() >= 5) {
      z[static_cast<std::size_t>(idx.at(4, 5))] = cd(amp, 0.4 * amp);
    }
    if (sht_.truncation() >= 8) {
      z[static_cast<std::size_t>(idx.at(2, 6))] = cd(-0.3 * amp, 0.2 * amp);
      z[static_cast<std::size_t>(idx.at(6, 8))] = cd(0.15 * amp, -0.1 * amp);
    }
  }
  zeta_prev_ = zeta_;

  // Moisture: a positive zonally-varying blob, decaying with level; and a
  // realistic meridional temperature profile.
  q_.assign(static_cast<std::size_t>(L), Array2D<double>(zg_.ni(), zg_.nj()));
  temp_.assign(static_cast<std::size_t>(L),
               Array2D<double>(zg_.ni(), zg_.nj()));
  for (int l = 0; l < L; ++l) {
    for (std::size_t j = 0; j < zg_.nj(); ++j) {
      const double mu = sht_.nodes().mu[j];
      const double cphi = std::sqrt(1.0 - mu * mu);
      for (std::size_t i = 0; i < zg_.ni(); ++i) {
        const double lam =
            2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(zg_.ni());
        q_[static_cast<std::size_t>(l)](i, j) =
            0.010 * std::exp(-0.2 * l) * cphi *
            (1.0 + 0.5 * std::cos(lam) * cphi);
        temp_[static_cast<std::size_t>(l)](i, j) =
            250.0 + 35.0 * cphi * cphi - 4.0 * l;
      }
    }
  }

  tendency_.assign(static_cast<std::size_t>(L),
                   std::vector<cd>(static_cast<std::size_t>(sht_.spec_size())));
  psi_.assign(static_cast<std::size_t>(sht_.spec_size()), cd(0, 0));
  steps_ = 0;
}

void Ccm2::charge_transform_pass(sxs::Cpu& cpu, int passes, long repeats) const {
  // One Legendre pass over all m-columns, with every level fused into the
  // inner loop (flops and streams scale with nlev).
  const int t = sht_.truncation();
  const double f = static_cast<double>(cfg_.res.nlev);
  for (int m = 0; m <= t; ++m) {
    sxs::VectorOp op;
    op.n = t - m + 1;
    op.flops_per_elem = 4.0 * f;    // complex axpy per level
    // Fusing nlev levels of complex accumulators exceeds the vector
    // register file, so partial sums spill and refill: coefficient loads
    // plus Pbar plus spill traffic. This is what holds the Legendre
    // transform below peak on the real machine.
    op.load_words = 4.0 * f + 1.0;
    op.store_words = 3.3 * f;
    op.pipe_groups = 2;
    cpu.vec(op, repeats * passes);
  }
}

void Ccm2::charge_fft_set(sxs::Cpu& cpu, int instances, long repeats) const {
  // Multi-instance (VFFT-style) FFT over the longitude axis.
  for (int f : fft_plan_.factors()) {
    sxs::VectorOp op;
    op.n = instances;
    op.flops_per_elem = (f == 2) ? 5.0 : (f == 3) ? 16.0 : 38.0;
    op.load_words = static_cast<double>(f) + 1.0;  // legs + twiddles
    op.store_words = static_cast<double>(f) + 1.0;
    op.pipe_groups = 2;
    cpu.vec(op, repeats * (cfg_.res.nlon / f));
  }
}

StepTiming Ccm2::step(int ncpu) {
  NCAR_REQUIRE(ncpu >= 1 && ncpu <= node_->cpu_count(), "processor count");
  const int L = cfg_.active_levels;
  const int nlat = cfg_.res.nlat;
  const int nlon = cfg_.res.nlon;
  const int t = sht_.truncation();
  const double a = cfg_.radius;
  const double dt = cfg_.res.dt_seconds;
  const bool first = (steps_ == 0);

  // ---- numerics (host), per active level --------------------------------
  for (int l = 0; l < L; ++l) {
    auto& z = zeta_[static_cast<std::size_t>(l)];
    // psi = del^-2 zeta (local in spectral space). psi_ is pre-sized in
    // reset(); copy keeps the step allocation-free (sema-hot-alloc).
    std::copy(z.begin(), z.end(), psi_.begin());
    sht_.inverse_laplacian(psi_, a);
    // Synthesis: zeta, grad zeta, grad psi.
    sht_.synthesis(z, zg_);
    sht_.synthesis_gradient(z, zlam_, zmu_);
    sht_.synthesis_gradient(psi_, plam_, pmu_);
    // Grid-space winds and advective tendency.
    for (std::size_t j = 0; j < static_cast<std::size_t>(nlat); ++j) {
      const double mu = sht_.nodes().mu[j];
      const double cphi = std::sqrt(1.0 - mu * mu);
      const double inv_acos = 1.0 / (a * cphi);
      const double beta = 2.0 * cfg_.omega * cphi / a;
      for (std::size_t i = 0; i < static_cast<std::size_t>(nlon); ++i) {
        const double u = -pmu_(i, j) * inv_acos;
        const double v = plam_(i, j) * inv_acos;
        ug_(i, j) = u;
        vg_(i, j) = v;
        gg_(i, j) = -(u * zlam_(i, j) * inv_acos +
                      v * (zmu_(i, j) * inv_acos + beta));
      }
    }
    // Analysis of the tendency.
    sht_.analysis(gg_, tendency_[static_cast<std::size_t>(l)]);

    // Leapfrog + implicit del^4 + Robert-Asselin filter.
    const double step_dt = first ? dt : 2.0 * dt;
    const double lam_max =
        static_cast<double>(t) * (t + 1.0) / (a * a);
    const double k4 = 1.0 / (cfg_.hyperdiff_tau_s * lam_max * lam_max);
    auto& zp = zeta_prev_[static_cast<std::size_t>(l)];
    const auto& idx = sht_.index();
    for (int m = 0; m <= t; ++m) {
      for (int n = m; n <= t; ++n) {
        const std::size_t k = static_cast<std::size_t>(idx.at(m, n));
        const double lam_n = static_cast<double>(n) * (n + 1.0) / (a * a);
        const cd base = first ? z[k] : zp[k];
        const cd raw =
            (base + step_dt * tendency_[static_cast<std::size_t>(l)][k]) /
            (1.0 + step_dt * k4 * lam_n * lam_n);
        const cd filtered =
            z[k] + cfg_.asselin * (raw - 2.0 * z[k] + zp[k]);
        zp[k] = first ? z[k] : filtered;
        z[k] = raw;
      }
    }

    // Semi-Lagrangian moisture transport with the updated winds.
    slt_.advect(q_[static_cast<std::size_t>(l)], ug_, vg_, dt, qn_);
    std::swap(q_[static_cast<std::size_t>(l)], qn_);

    // Column physics (sampled numerics): radiative heating with the RADABS
    // intrinsic mix, a crude condensation sink, and relaxation.
    auto& T = temp_[static_cast<std::size_t>(l)];
    auto& q = q_[static_cast<std::size_t>(l)];
    for (std::size_t j = 0; j < static_cast<std::size_t>(nlat); ++j) {
      for (std::size_t i = 0; i < static_cast<std::size_t>(nlon);
           i += static_cast<std::size_t>(cfg_.radiation_col_stride)) {
        const double path = q(i, j) * 80.0;
        const double heat = 1.2e-5 * (1.0 - std::exp(-8.0 * std::sqrt(path))) *
                            std::pow(T(i, j) / 250.0, 0.5);
        const double cool = 1.0e-5 * std::log(1.0 + 40.0 * q(i, j));
        T(i, j) += dt * (heat - cool) - dt * (T(i, j) - 250.0) * 1e-7;
        const double qsat =
            0.02 * std::exp(17.0 * (T(i, j) - 273.0) / (T(i, j) - 36.0));
        q(i, j) = std::min(q(i, j), qsat);
      }
    }
  }

  // ---- timing model: the macrotasked regions CCM2 runs per step ---------
  const StepTiming timing = charge_step(ncpu);
  ++steps_;
  return timing;
}

StepTiming Ccm2::charge_step(int ncpu) const {
  NCAR_REQUIRE(ncpu >= 1 && ncpu <= node_->cpu_count(), "processor count");
  const int nlev = cfg_.res.nlev;
  const int nlat = cfg_.res.nlat;
  const int nlon = cfg_.res.nlon;
  const int t = sht_.truncation();
  StepTiming timing;

  // Row/column decomposition for the charges.
  auto rows_of = [&](int rank) {
    const long lo = static_cast<long>(nlat) * rank / ncpu;
    const long hi = static_cast<long>(nlat) * (rank + 1) / ncpu;
    return hi - lo;
  };

  const double f = static_cast<double>(nlev);
  const int fields = cfg_.dynamics_fields;

  // Serial step-management section (see Ccm2Config::serial_overhead_s).
  timing.serial = node_->serial([&](sxs::Cpu& cpu) {
    cpu.charge_seconds(Seconds(cfg_.serial_overhead_s));
  });

  // Region 1 (m-parallel): spectral-local work — inverse Laplacian, time
  // update, hyperdiffusion — round-robin over m columns.
  timing.spectral_local = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    for (int m = rank; m <= t; m += ncpu) {
      sxs::VectorOp op;
      op.n = t - m + 1;
      op.flops_per_elem = 14.0 * f * fields;
      op.load_words = 4.0 * f * fields;
      op.store_words = 4.0 * f * fields;
      op.pipe_groups = 2;
      cpu.vec(op);
    }
  });

  // Region 2 (lat-parallel): Legendre synthesis of zeta plus the two
  // gradient pairs (5 passes) for every level, then the longitude FFTs.
  // Five Legendre passes per prognostic field: synthesis, the two
  // derivative passes, and the semi-implicit / wind-synthesis passes.
  const int synth_passes = 5 * fields;
  timing.synthesis = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    charge_transform_pass(cpu, synth_passes, rows_of(rank));
  });
  timing.ffts = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    charge_fft_set(cpu, synth_passes * nlev, rows_of(rank));
  });

  // Region 3 (lat-parallel): grid-space winds + nonlinear tendency.
  timing.grid = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    sxs::VectorOp op;
    op.n = nlon;
    op.flops_per_elem = 14.0;
    op.load_words = 6.0;
    op.store_words = 3.0;
    op.pipe_groups = 2;
    cpu.vec(op, rows_of(rank) * nlev * fields);
  });

  // Region 4 (lat-parallel then m-parallel): analysis FFTs + quadrature.
  // Three analysis passes per field (tendencies back to spectral space).
  const int anal_passes = 3 * fields;
  timing.analysis = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    charge_fft_set(cpu, anal_passes * nlev, rows_of(rank));
  });
  timing.analysis += node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    // Each CPU accumulates its m columns over every latitude.
    const int t_ = sht_.truncation();
    for (int m = rank; m <= t_; m += ncpu) {
      sxs::VectorOp op;
      op.n = t_ - m + 1;
      op.flops_per_elem = 4.0 * f;
      op.load_words = 4.0 * f + 1.0;  // see charge_transform_pass
      op.store_words = 3.3 * f;
      op.pipe_groups = 2;
      cpu.vec(op, static_cast<long>(nlat) * anal_passes);
    }
  });

  // Region 5 (lat-parallel): semi-Lagrangian transport — the "indirect
  // addressing on the Gaussian polar grid". Filed under SltInterp so the
  // interpolation shows up apart from the generic dynamics categories.
  timing.slt = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    sxs::VectorOp op;
    op.n = nlon;
    op.flops_per_elem = 28.0;
    op.gather_words = 4.0;   // the four bilinear corners
    op.load_words = 5.0;
    op.store_words = 1.0;
    op.pipe_groups = 2;
    cpu.vec(op, rows_of(rank) * nlev, trace::Category::SltInterp);
  });

  // Region 6 (lat-parallel): column physics. Radiation dominates, with the
  // RADABS intrinsic mix per column and level pair; charged for EVERY
  // column (numerics above sampled every radiation_col_stride columns).
  timing.physics = node_->parallel(ncpu, [&](int rank, sxs::Cpu& cpu) {
    const long rows = rows_of(rank);
    if (rows == 0) return;
    // Per latitude row: band absorptance over the level pairs refreshed
    // this step (the full O(nlev^2) RADABS table amortised over the
    // radiation cycle).
    const long pairs = cfg_.radiation_pairs_per_step;
    sxs::VectorOp body;
    body.n = nlon;
    body.flops_per_elem = 14.0;
    body.load_words = 3.0;
    body.store_words = 1.0;
    body.pipe_groups = 2;
    cpu.vec(body, rows * pairs);
    using sxs::Intrinsic;
    cpu.intrinsic(Intrinsic::Exp, nlon, 1, 1, 1.0, rows * pairs);
    cpu.intrinsic(Intrinsic::Sqrt, nlon, 1, 1, 1.0, rows * pairs);
    cpu.intrinsic(Intrinsic::Pow, nlon, 1, 1, 1.0, rows * pairs);
    cpu.intrinsic(Intrinsic::Log, nlon, 1, 1, 1.0, rows * pairs);
    // Remaining parameterisations: clouds, convection, PBL, surface
    // exchange — plain arithmetic plus a saturation exponential per level.
    sxs::VectorOp params;
    params.n = nlon;
    params.flops_per_elem = cfg_.physics_param_flops;
    params.load_words = cfg_.physics_param_flops / 4.0;
    params.store_words = cfg_.physics_param_flops / 8.0;
    cpu.vec(params, rows * nlev);
    cpu.intrinsic(Intrinsic::Exp, nlon, 1, 1, 1.0, rows * nlev * 2);
  });

  timing.total = timing.serial + timing.spectral_local + timing.synthesis +
                 timing.ffts + timing.grid + timing.analysis + timing.slt +
                 timing.physics;
  return timing;
}

double Ccm2::enstrophy() const {
  const auto& z = zeta_.front();
  const auto& idx = sht_.index();
  double e = 0;
  for (int m = 0; m <= sht_.truncation(); ++m) {
    const double w = (m == 0) ? 1.0 : 2.0;  // conjugate pair
    for (int n = m; n <= sht_.truncation(); ++n) {
      e += 0.5 * w * std::norm(z[static_cast<std::size_t>(idx.at(m, n))]);
    }
  }
  return e;
}

double Ccm2::energy() const {
  const auto& z = zeta_.front();
  const auto& idx = sht_.index();
  const double a2 = cfg_.radius * cfg_.radius;
  double e = 0;
  for (int m = 0; m <= sht_.truncation(); ++m) {
    const double w = (m == 0) ? 1.0 : 2.0;
    for (int n = std::max(m, 1); n <= sht_.truncation(); ++n) {
      const double lam = static_cast<double>(n) * (n + 1.0) / a2;
      e += 0.5 * w * std::norm(z[static_cast<std::size_t>(idx.at(m, n))]) / lam;
    }
  }
  return e;
}

double Ccm2::moisture_mass(int level) const {
  NCAR_REQUIRE(level >= 0 && level < cfg_.active_levels, "level");
  return slt_.mass(q_[static_cast<std::size_t>(level)]);
}

double Ccm2::checksum() const {
  double c = 0;
  for (const auto& z : zeta_) {
    for (const auto& v : z) c += v.real() + 0.5 * v.imag();
  }
  for (const auto& q : q_) {
    for (double v : q.flat()) c += v;
  }
  return c;
}

const Array2D<double>& Ccm2::moisture(int level) const {
  NCAR_REQUIRE(level >= 0 && level < cfg_.active_levels, "level");
  return q_[static_cast<std::size_t>(level)];
}

const Array2D<double>& Ccm2::temperature(int level) const {
  NCAR_REQUIRE(level >= 0 && level < cfg_.active_levels, "level");
  return temp_[static_cast<std::size_t>(level)];
}

double Ccm2::measure_step_seconds(int ncpu, int nsteps) {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  double total = 0;
  for (int s = 0; s < nsteps; ++s) total += step(ncpu).total;
  return total / nsteps;
}

double Ccm2::sustained_equiv_gflops(int ncpu, int nsteps) {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  double flops_before = 0;
  for (int r = 0; r < node_->cpu_count(); ++r) {
    flops_before += node_->cpu(r).equiv_flops().value();
  }
  double total = 0;
  for (int s = 0; s < nsteps; ++s) total += step(ncpu).total;
  double flops_after = 0;
  for (int r = 0; r < node_->cpu_count(); ++r) {
    flops_after += node_->cpu(r).equiv_flops().value();
  }
  return (flops_after - flops_before) / total / 1e9;
}

double Ccm2::measure_charge_seconds(int ncpu, int nsteps) const {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  double total = 0;
  for (int s = 0; s < nsteps; ++s) total += charge_step(ncpu).total;
  return total / nsteps;
}

double Ccm2::charge_sustained_equiv_gflops(int ncpu, int nsteps) const {
  NCAR_REQUIRE(nsteps >= 1, "step count");
  double flops_before = 0;
  for (int r = 0; r < node_->cpu_count(); ++r) {
    flops_before += node_->cpu(r).equiv_flops().value();
  }
  double total = 0;
  for (int s = 0; s < nsteps; ++s) total += charge_step(ncpu).total;
  double flops_after = 0;
  for (int r = 0; r < node_->cpu_count(); ++r) {
    flops_after += node_->cpu(r).equiv_flops().value();
  }
  return (flops_after - flops_before) / total / 1e9;
}

std::vector<double> Ccm2::checkpoint() const {
  std::vector<double> out;
  out.push_back(static_cast<double>(steps_));
  for (const auto& z : zeta_) {
    for (const auto& v : z) {
      out.push_back(v.real());
      out.push_back(v.imag());
    }
  }
  for (const auto& z : zeta_prev_) {
    for (const auto& v : z) {
      out.push_back(v.real());
      out.push_back(v.imag());
    }
  }
  for (const auto& q : q_) {
    out.insert(out.end(), q.flat().begin(), q.flat().end());
  }
  for (const auto& t : temp_) {
    out.insert(out.end(), t.flat().begin(), t.flat().end());
  }
  return out;
}

void Ccm2::restore(const std::vector<double>& state) {
  const std::size_t spec = static_cast<std::size_t>(sht_.spec_size());
  const std::size_t L = static_cast<std::size_t>(cfg_.active_levels);
  const std::size_t grid = zg_.size();
  const std::size_t expect = 1 + 2 * 2 * spec * L + 2 * grid * L;
  NCAR_REQUIRE(state.size() == expect,
               "checkpoint does not match this configuration");
  std::size_t pos = 0;
  steps_ = static_cast<long>(state[pos++]);
  for (auto& z : zeta_) {
    for (auto& v : z) {
      v = cd(state[pos], state[pos + 1]);
      pos += 2;
    }
  }
  for (auto& z : zeta_prev_) {
    for (auto& v : z) {
      v = cd(state[pos], state[pos + 1]);
      pos += 2;
    }
  }
  for (auto& q : q_) {
    for (auto& v : q.flat()) v = state[pos++];
  }
  for (auto& t : temp_) {
    for (auto& v : t.flat()) v = state[pos++];
  }
}

double Ccm2::checkpoint_bytes() const {
  // A real NQS checkpoint writes every level of every prognostic field,
  // not only the actively-integrated ones.
  const double spec = static_cast<double>(sht_.spec_size());
  const double grid = static_cast<double>(zg_.size());
  const double nlev = static_cast<double>(cfg_.res.nlev);
  return 8.0 * nlev * (2.0 * 2.0 * spec + 2.0 * grid);
}

iosim::HistoryShape Ccm2::history_shape() const {
  iosim::HistoryShape s;
  s.nlon = cfg_.res.nlon;
  s.nlat = cfg_.res.nlat;
  s.nlev = cfg_.res.nlev;
  s.fields = cfg_.history_fields;
  return s;
}

Bytes Ccm2::history_bytes() const {
  return iosim::history_write_bytes(history_shape());
}

Seconds Ccm2::write_history(iosim::DiskSystem& disk, int writers) const {
  return iosim::write_history_seconds(disk, history_shape(), writers);
}

}  // namespace ncar::ccm2
