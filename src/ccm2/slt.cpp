#include "ccm2/slt.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace ncar::ccm2 {

SemiLagrangian::SemiLagrangian(const spectral::GaussNodes& nodes, int nlon,
                               double radius)
    : nlon_(nlon), radius_(radius) {
  NCAR_REQUIRE(nlon >= 4, "need at least four longitudes");
  NCAR_REQUIRE(radius > 0, "radius must be positive");
  NCAR_REQUIRE(nodes.mu.size() >= 2, "need at least two latitudes");
  phi_.reserve(nodes.mu.size());
  for (double mu : nodes.mu) phi_.push_back(std::asin(mu));
  weight_ = nodes.weight;
  dlon_ = 2.0 * std::numbers::pi / nlon;
}

int SemiLagrangian::lat_cell(double phi) const {
  const auto it = std::upper_bound(phi_.begin(), phi_.end(), phi);
  long j = std::distance(phi_.begin(), it) - 1;
  j = std::clamp<long>(j, 0, static_cast<long>(phi_.size()) - 2);
  return static_cast<int>(j);
}

void SemiLagrangian::advect(const Array2D<double>& q, const Array2D<double>& u,
                            const Array2D<double>& v, double dt,
                            Array2D<double>& out) const {
  const std::size_t nlon = static_cast<std::size_t>(nlon_);
  const std::size_t nlat = phi_.size();
  NCAR_REQUIRE(q.ni() == nlon && q.nj() == nlat, "q shape");
  NCAR_REQUIRE(u.ni() == nlon && u.nj() == nlat, "u shape");
  NCAR_REQUIRE(v.ni() == nlon && v.nj() == nlat, "v shape");
  NCAR_REQUIRE(out.ni() == nlon && out.nj() == nlat, "out shape");
  NCAR_REQUIRE(dt > 0, "time step must be positive");

  const double phi_min = phi_.front();
  const double phi_max = phi_.back();

  for (std::size_t j = 0; j < nlat; ++j) {
    const double cosphi = std::cos(phi_[j]);
    for (std::size_t i = 0; i < nlon; ++i) {
      // Backward trajectory (one Euler step; adequate for the benchmark's
      // CFL-respecting time steps).
      const double lam_d =
          static_cast<double>(i) * dlon_ - u(i, j) * dt / (radius_ * cosphi);
      const double phi_d =
          std::clamp(phi_[j] - v(i, j) * dt / radius_, phi_min, phi_max);

      // Longitude cell (periodic).
      double lam_rel = lam_d / dlon_;
      lam_rel -= std::floor(lam_rel / nlon_) * nlon_;
      const long i0 = static_cast<long>(std::floor(lam_rel)) % nlon_;
      const long i1 = (i0 + 1) % nlon_;
      const double fx = lam_rel - std::floor(lam_rel);

      // Latitude cell (clamped at the poleward-most circles).
      const int j0 = lat_cell(phi_d);
      const int j1 = j0 + 1;
      const double span = phi_[static_cast<std::size_t>(j1)] -
                          phi_[static_cast<std::size_t>(j0)];
      const double fy =
          std::clamp((phi_d - phi_[static_cast<std::size_t>(j0)]) / span, 0.0,
                     1.0);

      // Bilinear interpolation — the gather — over the four corners.
      const double q00 = q(static_cast<std::size_t>(i0), static_cast<std::size_t>(j0));
      const double q10 = q(static_cast<std::size_t>(i1), static_cast<std::size_t>(j0));
      const double q01 = q(static_cast<std::size_t>(i0), static_cast<std::size_t>(j1));
      const double q11 = q(static_cast<std::size_t>(i1), static_cast<std::size_t>(j1));
      double val = (1 - fx) * (1 - fy) * q00 + fx * (1 - fy) * q10 +
                   (1 - fx) * fy * q01 + fx * fy * q11;

      // Shape-preserving limiter: stay inside the cell envelope.
      const double lo = std::min(std::min(q00, q10), std::min(q01, q11));
      const double hi = std::max(std::max(q00, q10), std::max(q01, q11));
      val = std::clamp(val, lo, hi);

      out(i, j) = val;
    }
  }
}

double SemiLagrangian::mass(const Array2D<double>& q) const {
  double total = 0;
  for (std::size_t j = 0; j < phi_.size(); ++j) {
    double row = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(nlon_); ++i) {
      row += q(i, j);
    }
    total += weight_[j] * row / static_cast<double>(nlon_);
  }
  return total;
}

}  // namespace ncar::ccm2
