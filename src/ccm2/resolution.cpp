#include "ccm2/resolution.hpp"

#include "common/error.hpp"

namespace ncar::ccm2 {

namespace {
Resolution make(const char* name, int t, int nlat, int nlon, double dt_min) {
  Resolution r;
  r.name = name;
  r.truncation = t;
  r.nlat = nlat;
  r.nlon = nlon;
  r.nlev = 18;
  r.dt_seconds = dt_min * 60.0;
  return r;
}
}  // namespace

Resolution t42l18() { return make("T42L18", 42, 64, 128, 20.0); }
Resolution t63l18() { return make("T63L18", 63, 96, 192, 12.0); }
Resolution t85l18() { return make("T85L18", 85, 128, 256, 10.0); }
Resolution t106l18() { return make("T106L18", 106, 160, 320, 7.5); }
Resolution t170l18() { return make("T170L18", 170, 256, 512, 5.0); }

std::vector<Resolution> table4() {
  return {t42l18(), t63l18(), t85l18(), t106l18(), t170l18()};
}

Resolution resolution_by_name(const std::string& name) {
  for (auto& r : table4()) {
    if (r.name == name) return r;
  }
  throw ncar::precondition_error("unknown CCM2 resolution: " + name);
}

}  // namespace ncar::ccm2
