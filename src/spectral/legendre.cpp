#include "spectral/legendre.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ncar::spectral {

TriangularIndex::TriangularIndex(int truncation) : t_(truncation) {
  NCAR_REQUIRE(truncation >= 1, "truncation must be at least 1");
  offsets_.resize(static_cast<std::size_t>(t_) + 2);
  int off = 0;
  for (int m = 0; m <= t_; ++m) {
    offsets_[static_cast<std::size_t>(m)] = off;
    off += t_ - m + 1;
  }
  offsets_[static_cast<std::size_t>(t_) + 1] = off;
}

int TriangularIndex::at(int m, int n) const {
  NCAR_REQUIRE(m >= 0 && m <= t_ && n >= m && n <= t_, "coefficient (m,n)");
  return offsets_[static_cast<std::size_t>(m)] + (n - m);
}

int TriangularIndex::column_start(int m) const {
  NCAR_REQUIRE(m >= 0 && m <= t_, "column m");
  return offsets_[static_cast<std::size_t>(m)];
}

namespace {

double eps(int n, int m) {
  const double nn = static_cast<double>(n), mm = static_cast<double>(m);
  return std::sqrt((nn * nn - mm * mm) / (4.0 * nn * nn - 1.0));
}

/// Evaluate Pbar up to degree `deg` for all m <= min(deg, T)-columns of a
/// rectangular-ish table indexed by a caller-provided accessor.
void evaluate_to_degree(int t, int deg, double mu, std::vector<double>& buf,
                        int stride) {
  // buf holds columns m = 0..t, each of length deg-m+1, packed with
  // column starts supplied via `stride`-free packing computed here.
  (void)stride;
  const double s = std::sqrt(1.0 - mu * mu);
  int off = 0;
  // First compute the diagonal Pbar_m^m, carried along column starts.
  std::vector<double> diag(static_cast<std::size_t>(t) + 1);
  diag[0] = 1.0;
  for (int m = 1; m <= t; ++m) {
    diag[static_cast<std::size_t>(m)] =
        std::sqrt((2.0 * m + 1.0) / (2.0 * m)) * s *
        diag[static_cast<std::size_t>(m - 1)];
  }
  for (int m = 0; m <= t; ++m) {
    double pm2 = 0.0;                                 // Pbar_{m-1}^m ( = 0 )
    double pm1 = diag[static_cast<std::size_t>(m)];   // Pbar_m^m
    buf[static_cast<std::size_t>(off)] = pm1;
    for (int n = m + 1; n <= deg; ++n) {
      const double p = (mu * pm1 - eps(n - 1, m) * pm2) / eps(n, m);
      buf[static_cast<std::size_t>(off + (n - m))] = p;
      pm2 = pm1;
      pm1 = p;
    }
    off += deg - m + 1;
  }
}

}  // namespace

void evaluate_pbar(int truncation, double mu, const TriangularIndex& idx,
                   std::vector<double>& out) {
  NCAR_REQUIRE(idx.truncation() == truncation, "index mismatch");
  out.resize(static_cast<std::size_t>(idx.size()));
  // Pack directly at truncation degree.
  std::vector<double> buf(static_cast<std::size_t>(idx.size()));
  evaluate_to_degree(truncation, truncation, mu, buf, 0);
  out = buf;
}

LegendreTable::LegendreTable(int truncation, const GaussNodes& nodes)
    : index_(truncation), nlat_(static_cast<int>(nodes.mu.size())) {
  NCAR_REQUIRE(nlat_ >= truncation + 1,
               "need at least T+1 Gaussian latitudes for exact quadrature");
  const int t = truncation;
  const std::size_t csize = static_cast<std::size_t>(index_.size());
  p_.resize(csize * static_cast<std::size_t>(nlat_));
  dp_.resize(csize * static_cast<std::size_t>(nlat_));

  // Extended table to degree T+1 (the derivative recurrence needs n+1).
  int ext_size = 0;
  for (int m = 0; m <= t; ++m) ext_size += (t + 1) - m + 1;
  std::vector<double> ext(static_cast<std::size_t>(ext_size));

  for (int j = 0; j < nlat_; ++j) {
    const double mu = nodes.mu[static_cast<std::size_t>(j)];
    evaluate_to_degree(t, t + 1, mu, ext, 0);
    int ext_off = 0;
    for (int m = 0; m <= t; ++m) {
      const int col = index_.column_start(m);
      for (int n = m; n <= t; ++n) {
        const double pn = ext[static_cast<std::size_t>(ext_off + (n - m))];
        const double pnp1 = ext[static_cast<std::size_t>(ext_off + (n + 1 - m))];
        const double pnm1 =
            (n > m) ? ext[static_cast<std::size_t>(ext_off + (n - 1 - m))] : 0.0;
        const std::size_t dst =
            static_cast<std::size_t>(j) * csize +
            static_cast<std::size_t>(col + (n - m));
        p_[dst] = pn;
        // (1 - mu^2) dPbar_n^m/dmu = -n eps(n+1,m) Pbar_{n+1}^m
        //                            + (n+1) eps(n,m) Pbar_{n-1}^m
        dp_[dst] = -static_cast<double>(n) * eps(n + 1, m) * pnp1 +
                   static_cast<double>(n + 1) * eps(n, m) * pnm1;
      }
      ext_off += (t + 1) - m + 1;
    }
  }
}

double LegendreTable::p(int j, int m, int n) const {
  NCAR_REQUIRE(j >= 0 && j < nlat_, "latitude index");
  return p_[static_cast<std::size_t>(j) * static_cast<std::size_t>(index_.size()) +
            static_cast<std::size_t>(index_.at(m, n))];
}

double LegendreTable::dp(int j, int m, int n) const {
  NCAR_REQUIRE(j >= 0 && j < nlat_, "latitude index");
  return dp_[static_cast<std::size_t>(j) * static_cast<std::size_t>(index_.size()) +
             static_cast<std::size_t>(index_.at(m, n))];
}

const double* LegendreTable::p_column(int j, int m) const {
  NCAR_REQUIRE(j >= 0 && j < nlat_, "latitude index");
  return p_.data() +
         static_cast<std::size_t>(j) * static_cast<std::size_t>(index_.size()) +
         static_cast<std::size_t>(index_.column_start(m));
}

const double* LegendreTable::dp_column(int j, int m) const {
  NCAR_REQUIRE(j >= 0 && j < nlat_, "latitude index");
  return dp_.data() +
         static_cast<std::size_t>(j) * static_cast<std::size_t>(index_.size()) +
         static_cast<std::size_t>(index_.column_start(m));
}

}  // namespace ncar::spectral
