#pragma once
// Normalised associated Legendre functions and their derivatives, tabulated
// at the Gaussian latitudes for a triangular truncation T (the "T" of
// T42/T106/T170 in the paper's Table 4).
//
// Normalisation: (1/2) Integral_{-1}^{1} Pbar_n^m(mu)^2 dmu = 1 — the
// convention of spectral climate models, so analysis and synthesis are
// exact inverses under Gaussian quadrature with weights summing to 2.

#include <vector>

#include "spectral/gauss.hpp"

namespace ncar::spectral {

/// Index layout for triangular truncation: coefficients (m, n) with
/// 0 <= m <= T and m <= n <= T, stored m-major.
class TriangularIndex {
public:
  explicit TriangularIndex(int truncation);

  int truncation() const { return t_; }
  /// Total coefficient count: (T+1)(T+2)/2.
  int size() const { return static_cast<int>(offsets_.back()); }
  /// Flat index of coefficient (m, n).
  int at(int m, int n) const;
  /// First flat index of the m-column; column length is T - m + 1.
  int column_start(int m) const;
  int column_length(int m) const { return t_ - m + 1; }

private:
  int t_;
  std::vector<int> offsets_;
};

/// Table of Pbar_n^m(mu_j) and (1 - mu^2) dPbar/dmu at each latitude.
class LegendreTable {
public:
  LegendreTable(int truncation, const GaussNodes& nodes);

  int truncation() const { return index_.truncation(); }
  int nlat() const { return nlat_; }
  const TriangularIndex& index() const { return index_; }

  /// Pbar_n^m at latitude j (flat coefficient indexing).
  double p(int j, int m, int n) const;
  /// (1 - mu^2) dPbar_n^m/dmu at latitude j.
  double dp(int j, int m, int n) const;

  /// Contiguous m-column of Pbar values at latitude j (length T-m+1).
  const double* p_column(int j, int m) const;
  const double* dp_column(int j, int m) const;

private:
  TriangularIndex index_;
  int nlat_;
  std::vector<double> p_;   // [lat][coeff]
  std::vector<double> dp_;  // [lat][coeff]
};

/// Compute the full vector of Pbar_n^m(mu) for one mu (testing hook and
/// table builder backend).
void evaluate_pbar(int truncation, double mu, const TriangularIndex& idx,
                   std::vector<double>& out);

}  // namespace ncar::spectral
