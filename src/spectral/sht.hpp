#pragma once
// Spherical harmonic transform on the Gaussian grid (the spectral transform
// method of CCM2, paper section 4.7.1): FFT in longitude, Gauss–Legendre
// quadrature in latitude, triangular truncation.
//
// Conventions: a real grid field f(lambda_i, mu_j) on nlon equally spaced
// longitudes and nlat Gaussian latitudes is represented by complex
// coefficients S(m, n), 0 <= m <= n <= T, with the m < 0 half implied by
// conjugate symmetry. Analysis followed by synthesis is the identity for
// fields band-limited to the truncation (tested).

#include <complex>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/array.hpp"
#include "fft/complex_fft.hpp"
#include "spectral/legendre.hpp"

namespace ncar::spectral {

using cd = std::complex<double>;

class ShTransform {
public:
  /// A standard quadratic-ish grid: nlon >= 3T+1 avoids aliasing of
  /// quadratic products; nlat = nlon/2. The paper's resolutions (Table 4)
  /// all satisfy this (e.g. T42: 128 x 64).
  ShTransform(int truncation, int nlat, int nlon);

  int truncation() const { return table_.truncation(); }
  int nlat() const { return nlat_; }
  int nlon() const { return nlon_; }
  const TriangularIndex& index() const { return table_.index(); }
  const GaussNodes& nodes() const { return nodes_; }
  const LegendreTable& table() const { return table_; }

  /// Number of complex spectral coefficients.
  int spec_size() const { return index().size(); }

  /// Grid -> spectral. `grid` is (nlon, nlat) with longitude contiguous.
  void analysis(const Array2D<double>& grid, std::span<cd> spec) const;

  /// Spectral -> grid.
  void synthesis(std::span<const cd> spec, Array2D<double>& grid) const;

  /// Spectral -> (d/dlambda, (1-mu^2) d/dmu) grid fields.
  void synthesis_gradient(std::span<const cd> spec, Array2D<double>& dlam,
                          Array2D<double>& dmu) const;

  /// In-place spectral Laplacian: S(m,n) *= -n(n+1)/radius^2.
  void laplacian(std::span<cd> spec, double radius) const;

  /// In-place inverse Laplacian (the (0,0) mode is annihilated).
  void inverse_laplacian(std::span<cd> spec, double radius) const;

  /// Approximate flop count of one analysis or synthesis (used by callers
  /// to charge the machine model consistently).
  double transform_flops() const;

private:
  /// Half-spectrum Fourier coefficients per latitude: fm(m, j), m <= T.
  /// Every entry of `fm` is written (callers pass uninitialised arena
  /// spans).
  void fourier_analysis(const Array2D<double>& grid, std::span<cd> fm) const;
  void fourier_synthesis(std::span<const cd> fm, Array2D<double>& grid) const;

  GaussNodes nodes_;
  LegendreTable table_;
  int nlat_;
  int nlon_;
  fft::Plan plan_;
  // Workspace pool sized at construction so the transforms never allocate
  // (mutable: taking scratch from the pool does not change observable
  // state — every frame is released before the method returns).
  mutable Arena arena_;
};

}  // namespace ncar::spectral
