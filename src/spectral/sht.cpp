#include "spectral/sht.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fft/real_fft.hpp"
#include "simd/simd.hpp"

namespace ncar::spectral {

ShTransform::ShTransform(int truncation, int nlat, int nlon)
    : nodes_(gauss_legendre(nlat)),
      table_(truncation, nodes_),
      nlat_(nlat),
      nlon_(nlon),
      plan_(nlon) {
  NCAR_REQUIRE(nlon >= 2 * (truncation + 1),
               "longitude count cannot represent the truncation");
  NCAR_REQUIRE(fft::Plan::supported(nlon), "nlon must factor into 2,3,5");
  // Worst-case transform workspace: two fm planes (synthesis_gradient) plus
  // one Fourier row and the real-FFT scratch nested inside it.
  const std::size_t fm_doubles = 2 * static_cast<std::size_t>(truncation + 1) *
                                 static_cast<std::size_t>(nlat) * 2;
  const std::size_t row_doubles =
      2 * static_cast<std::size_t>(fft::spectrum_size(nlon));
  arena_.reserve(fm_doubles + row_doubles + fft::real_fft_arena_doubles(nlon));
}

void ShTransform::fourier_analysis(const Array2D<double>& grid,
                                   std::span<cd> fm) const {
  const int t = truncation();
  ArenaScope frame(arena_);
  auto spec_row =
      arena_.take<cd>(static_cast<std::size_t>(fft::spectrum_size(nlon_)));
  for (int j = 0; j < nlat_; ++j) {
    fft::real_forward(plan_, grid.column(static_cast<std::size_t>(j)),
                      spec_row, arena_);
    for (int m = 0; m <= t; ++m) {
      // F[m] = nlon * G_m; store G_m.
      fm[static_cast<std::size_t>(m) * static_cast<std::size_t>(nlat_) +
         static_cast<std::size_t>(j)] =
          spec_row[static_cast<std::size_t>(m)] / static_cast<double>(nlon_);
    }
  }
}

void ShTransform::fourier_synthesis(std::span<const cd> fm,
                                    Array2D<double>& grid) const {
  const int t = truncation();
  ArenaScope frame(arena_);
  auto spec_row =
      arena_.take<cd>(static_cast<std::size_t>(fft::spectrum_size(nlon_)));
  for (int j = 0; j < nlat_; ++j) {
    for (int m = 0; m <= t; ++m) {
      spec_row[static_cast<std::size_t>(m)] =
          fm[static_cast<std::size_t>(m) * static_cast<std::size_t>(nlat_) +
             static_cast<std::size_t>(j)] *
          static_cast<double>(nlon_);
    }
    for (int m = t + 1; m < fft::spectrum_size(nlon_); ++m) {
      spec_row[static_cast<std::size_t>(m)] = cd(0, 0);
    }
    auto col = grid.column(static_cast<std::size_t>(j));
    fft::real_inverse(plan_, spec_row, col, arena_);
  }
}

void ShTransform::analysis(const Array2D<double>& grid,
                           std::span<cd> spec) const {
  NCAR_REQUIRE(grid.ni() == static_cast<std::size_t>(nlon_) &&
                   grid.nj() == static_cast<std::size_t>(nlat_),
               "grid shape");
  NCAR_REQUIRE(static_cast<int>(spec.size()) == spec_size(), "spec size");
  const int t = truncation();
  ArenaScope frame(arena_);
  auto fm = arena_.take<cd>(static_cast<std::size_t>(t + 1) *
                            static_cast<std::size_t>(nlat_));
  fourier_analysis(grid, fm);

  const simd::KernelTable& kt = simd::table();
  for (auto& s : spec) s = cd(0, 0);
  for (int j = 0; j < nlat_; ++j) {
    const double w = 0.5 * nodes_.weight[static_cast<std::size_t>(j)];
    for (int m = 0; m <= t; ++m) {
      const cd g = w * fm[static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(nlat_) +
                          static_cast<std::size_t>(j)];
      const double* pcol = table_.p_column(j, m);
      cd* scol = spec.data() + index().column_start(m);
      const int len = index().column_length(m);
      kt.axpy_cd_r(scol, g, pcol, len);
    }
  }
  // The m = 0 column of a real field is real; clamp rounding residue.
  {
    cd* scol = spec.data() + index().column_start(0);
    for (int k = 0; k < index().column_length(0); ++k) {
      scol[k] = cd(scol[k].real(), 0.0);
    }
  }
}

void ShTransform::synthesis(std::span<const cd> spec,
                            Array2D<double>& grid) const {
  NCAR_REQUIRE(grid.ni() == static_cast<std::size_t>(nlon_) &&
                   grid.nj() == static_cast<std::size_t>(nlat_),
               "grid shape");
  NCAR_REQUIRE(static_cast<int>(spec.size()) == spec_size(), "spec size");
  const int t = truncation();
  ArenaScope frame(arena_);
  auto fm = arena_.take<cd>(static_cast<std::size_t>(t + 1) *
                            static_cast<std::size_t>(nlat_));
  const simd::KernelTable& kt = simd::table();
  for (int j = 0; j < nlat_; ++j) {
    for (int m = 0; m <= t; ++m) {
      const double* pcol = table_.p_column(j, m);
      const cd* scol = spec.data() + index().column_start(m);
      const int len = index().column_length(m);
      fm[static_cast<std::size_t>(m) * static_cast<std::size_t>(nlat_) +
         static_cast<std::size_t>(j)] = kt.dot_cd_r(scol, pcol, len);
    }
  }
  fourier_synthesis(fm, grid);
}

void ShTransform::synthesis_gradient(std::span<const cd> spec,
                                     Array2D<double>& dlam,
                                     Array2D<double>& dmu) const {
  NCAR_REQUIRE(static_cast<int>(spec.size()) == spec_size(), "spec size");
  const int t = truncation();
  ArenaScope frame(arena_);
  const std::size_t plane =
      static_cast<std::size_t>(t + 1) * static_cast<std::size_t>(nlat_);
  auto fm_lam = arena_.take<cd>(plane);
  auto fm_mu = arena_.take<cd>(plane);
  const simd::KernelTable& kt = simd::table();
  for (int j = 0; j < nlat_; ++j) {
    for (int m = 0; m <= t; ++m) {
      const double* pcol = table_.p_column(j, m);
      const double* dcol = table_.dp_column(j, m);
      const cd* scol = spec.data() + index().column_start(m);
      const int len = index().column_length(m);
      cd acc_p(0, 0), acc_d(0, 0);
      kt.dot2_cd_r(scol, pcol, dcol, len, &acc_p, &acc_d);
      const std::size_t dst =
          static_cast<std::size_t>(m) * static_cast<std::size_t>(nlat_) +
          static_cast<std::size_t>(j);
      fm_lam[dst] = cd(0, 1) * static_cast<double>(m) * acc_p;
      fm_mu[dst] = acc_d;
    }
  }
  fourier_synthesis(fm_lam, dlam);
  fourier_synthesis(fm_mu, dmu);
}

void ShTransform::laplacian(std::span<cd> spec, double radius) const {
  NCAR_REQUIRE(radius > 0, "radius");
  NCAR_REQUIRE(static_cast<int>(spec.size()) == spec_size(), "spec size");
  const int t = truncation();
  const double a2 = radius * radius;
  for (int m = 0; m <= t; ++m) {
    cd* scol = spec.data() + index().column_start(m);
    for (int n = m; n <= t; ++n) {
      scol[n - m] *= -static_cast<double>(n) * (n + 1.0) / a2;
    }
  }
}

void ShTransform::inverse_laplacian(std::span<cd> spec, double radius) const {
  NCAR_REQUIRE(radius > 0, "radius");
  NCAR_REQUIRE(static_cast<int>(spec.size()) == spec_size(), "spec size");
  const int t = truncation();
  const double a2 = radius * radius;
  for (int m = 0; m <= t; ++m) {
    cd* scol = spec.data() + index().column_start(m);
    for (int n = m; n <= t; ++n) {
      if (n == 0) {
        scol[n - m] = cd(0, 0);
      } else {
        scol[n - m] *= -a2 / (static_cast<double>(n) * (n + 1.0));
      }
    }
  }
}

double ShTransform::transform_flops() const {
  // Legendre part: nlat latitudes x (T+1)(T+2)/2 coefficients x one complex
  // axpy (4 real flops), plus the longitude FFTs.
  const double legendre =
      static_cast<double>(nlat_) * static_cast<double>(spec_size()) * 4.0;
  const double fft_part = static_cast<double>(nlat_) *
                          2.5 * static_cast<double>(nlon_) *
                          std::log2(static_cast<double>(nlon_));
  return legendre + fft_part;
}

}  // namespace ncar::spectral
