#include "spectral/gauss.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace ncar::spectral {

LegendreEval legendre_pn(int n, double x) {
  NCAR_REQUIRE(n >= 0, "degree");
  double p0 = 1.0, p1 = x;
  if (n == 0) return {1.0, 0.0};
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
    p0 = p1;
    p1 = pk;
  }
  // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
  const double dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
  return {p1, dp};
}

GaussNodes gauss_legendre(int n) {
  NCAR_REQUIRE(n >= 1, "need at least one node");
  GaussNodes g;
  g.mu.resize(static_cast<std::size_t>(n));
  g.weight.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Chebyshev-like initial guess for the i-th root (descending), then
    // Newton. Roots are symmetric; we fill ascending order at the end.
    double x = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
    for (int it = 0; it < 100; ++it) {
      const auto e = legendre_pn(n, x);
      const double dx = e.p / e.dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const auto e = legendre_pn(n, x);
    const double w = 2.0 / ((1.0 - x * x) * e.dp * e.dp);
    // i-th Newton target descends from +1; store ascending.
    g.mu[static_cast<std::size_t>(n - 1 - i)] = x;
    g.weight[static_cast<std::size_t>(n - 1 - i)] = w;
  }
  return g;
}

}  // namespace ncar::spectral
