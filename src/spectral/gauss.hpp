#pragma once
// Gauss–Legendre quadrature for the Gaussian polar grid (paper section
// 4.7.1: "the spectral transform calculations are performed on a polar grid
// which is irregularly spaced in latitude, called a Gaussian polar grid").

#include <vector>

namespace ncar::spectral {

struct GaussNodes {
  std::vector<double> mu;      ///< nodes (sin latitude), ascending in (-1,1)
  std::vector<double> weight;  ///< quadrature weights, sum = 2
};

/// Compute the n-point Gauss–Legendre rule on [-1, 1] by Newton iteration
/// on the Legendre polynomial P_n.
GaussNodes gauss_legendre(int n);

/// Evaluate the (unnormalised) Legendre polynomial P_n and its derivative.
struct LegendreEval {
  double p;   ///< P_n(x)
  double dp;  ///< P_n'(x)
};
LegendreEval legendre_pn(int n, double x);

}  // namespace ncar::spectral
