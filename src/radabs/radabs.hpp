#pragma once
// RADABS — the NCAR suite's raw-performance kernel (paper section 4.4).
//
// RADABS is the single most expensive subroutine of CCM2: longwave
// radiation absorptivities computed in vertical columns, dominated by
// intrinsic calls (EXP, LOG, PWR, SQRT) threaded through multi-line
// path-length and band-absorptance expressions. It is embarrassingly
// parallel across columns and vectorises over the column (longitude) axis.
// The paper reports it in "Cray Y-MP equivalent Mflops": flops counted with
// the Y-MP hardware-performance-monitor convention, divided by wall time.
//
// This implementation computes a real two-band absorptance model on
// synthetic atmospheric columns (pressure/temperature/water-vapour profiles)
// so that results are numerically checkable, and charges the machine model
// with the loop structure a vector compiler produces: one vector operation
// over the column axis per level pair per expression group.

#include <vector>

#include "machines/comparator.hpp"

namespace ncar::radabs {

struct ColumnField {
  int ncol = 0;   ///< columns (vector axis; nlon on the Gaussian grid)
  int nlev = 0;   ///< vertical levels
  std::vector<double> pressure;  ///< [lev] interface pressure (Pa)
  std::vector<double> temp;      ///< [col * nlev] layer temperature (K)
  std::vector<double> qh2o;      ///< [col * nlev] water vapour mass mixing
};

/// Build a deterministic synthetic atmosphere (US-standard-like profiles
/// with a small per-column perturbation).
ColumnField make_test_atmosphere(int ncol, int nlev, std::uint64_t seed = 3);

/// Reusable workspace for run_radabs: level-major transposes of the column
/// fields plus per-column accumulators, sized once so repeated runs (the
/// benchmark sweep) never allocate.
struct RadabsWorkspace {
  /// Grow the buffers to fit a (ncol, nlev) field. Cheap when already big
  /// enough.
  void ensure(int ncol, int nlev);

  std::vector<double> qt;       ///< [lev * ncol] transposed qh2o
  std::vector<double> tt;       ///< [lev * ncol] transposed temp
  std::vector<double> dwt;      ///< [lev * ncol] path increments, level-major
  std::vector<double> w;        ///< [ncol] accumulated path
  std::vector<double> a12;      ///< [ncol] per-column absorptivity
  std::vector<double> scratch;  ///< [4 * ncol] kernel scratch
};

struct RadabsResult {
  double seconds = 0;        ///< simulated time
  double equiv_mflops = 0;   ///< Cray-Y-MP-equivalent Mflops
  double hw_mflops = 0;      ///< hardware-counted Mflops
  double checksum = 0;       ///< sum of absorptivities (regression check)
  long level_pairs = 0;
};

/// Run the kernel once over the field on the given machine model.
RadabsResult run_radabs(machines::Comparator& machine, const ColumnField& f);

/// Same, with a caller-owned workspace (allocation-free after the first
/// call at a given shape).
RadabsResult run_radabs(machines::Comparator& machine, const ColumnField& f,
                        RadabsWorkspace& ws);

/// Convenience: run at the benchmark's standard shape (a CCM2 T42 latitude
/// row: 128 columns x 18 levels).
RadabsResult run_radabs_standard(machines::Comparator& machine);

}  // namespace ncar::radabs
