#include "radabs/radabs.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"

namespace ncar::radabs {

namespace {

// Two-band absorptance coefficients (representative magnitudes for the
// H2O rotation band and continuum used by CCM2's longwave scheme).
constexpr double kBandCoeff1 = 8.0;
constexpr double kBandCoeff2 = 0.04;
constexpr double kDiffusivity = 1.66;   // diffusivity factor
constexpr double kRefTemp = 250.0;
constexpr double kGravityInv = 1.0 / 9.80616;

}  // namespace

ColumnField make_test_atmosphere(int ncol, int nlev, std::uint64_t seed) {
  NCAR_REQUIRE(ncol >= 1 && nlev >= 2, "atmosphere shape");
  ColumnField f;
  f.ncol = ncol;
  f.nlev = nlev;
  f.pressure.resize(static_cast<std::size_t>(nlev));
  f.temp.resize(static_cast<std::size_t>(ncol) * nlev);
  f.qh2o.resize(static_cast<std::size_t>(ncol) * nlev);

  Rng rng(seed);
  // Sigma-like pressure levels from ~2 hPa to 1000 hPa.
  for (int k = 0; k < nlev; ++k) {
    const double sigma = std::pow((k + 1.0) / nlev, 1.5);
    f.pressure[static_cast<std::size_t>(k)] = 200.0 + 99800.0 * sigma;
  }
  for (int c = 0; c < ncol; ++c) {
    const double perturb = 1.0 + 0.02 * (rng.next_double() - 0.5);
    for (int k = 0; k < nlev; ++k) {
      const double p = f.pressure[static_cast<std::size_t>(k)];
      const std::size_t idx = static_cast<std::size_t>(c) * nlev + k;
      // Crude lapse-rate temperature and exponentially decaying moisture.
      f.temp[idx] = perturb * (210.0 + 85.0 * std::pow(p / 1.0e5, 0.28));
      f.qh2o[idx] = perturb * 0.012 * std::exp(-4.0 * (1.0 - p / 1.0e5));
    }
  }
  return f;
}

void RadabsWorkspace::ensure(int ncol, int nlev) {
  const std::size_t plane = static_cast<std::size_t>(ncol) * nlev;
  if (qt.size() < plane) {
    qt.resize(plane);
    tt.resize(plane);
    dwt.resize(plane);
  }
  if (w.size() < static_cast<std::size_t>(ncol)) {
    w.resize(static_cast<std::size_t>(ncol));
    a12.resize(static_cast<std::size_t>(ncol));
    scratch.resize(static_cast<std::size_t>(ncol) * 4);
  }
}

RadabsResult run_radabs(machines::Comparator& machine, const ColumnField& f) {
  RadabsWorkspace ws;
  return run_radabs(machine, f, ws);
}

RadabsResult run_radabs(machines::Comparator& machine, const ColumnField& f,
                        RadabsWorkspace& ws) {
  NCAR_REQUIRE(f.ncol >= 1 && f.nlev >= 2, "field shape");
  using sxs::Intrinsic;
  const int ncol = f.ncol;
  const int nlev = f.nlev;

  machine.reset();
  double checksum = 0.0;
  long pairs = 0;

  const simd::KernelTable& kt = simd::table();
  ws.ensure(ncol, nlev);

  // Transpose the column-major fields to level-major rows so every level
  // pair streams unit-stride over the column (vector) axis.
  for (int k = 0; k < nlev; ++k) {
    kt.strided_copy_d(f.qh2o.data() + k, nlev,
                      ws.qt.data() + static_cast<std::size_t>(k) * ncol, ncol);
    kt.strided_copy_d(f.temp.data() + k, nlev,
                      ws.tt.data() + static_cast<std::size_t>(k) * ncol, ncol);
  }

  // Precompute per-column path increments dW(k) = q * dp / g (vector loop).
  for (int k = 0; k < nlev; ++k) {
    const double dp = (k == 0)
                          ? f.pressure[0]
                          : f.pressure[static_cast<std::size_t>(k)] -
                                f.pressure[static_cast<std::size_t>(k - 1)];
    kt.scale2_d(ws.qt.data() + static_cast<std::size_t>(k) * ncol, dp,
                kGravityInv, ws.dwt.data() + static_cast<std::size_t>(k) * ncol,
                ncol);
  }
  {
    sxs::VectorOp op;
    op.n = ncol;
    op.flops_per_elem = 2;
    op.load_words = 2;
    op.store_words = 1;
    for (int k = 0; k < nlev; ++k) machine.vec(op);  // one op per level
  }

  // Absorptivity between every pair of levels (k1 < k2): the O(nlev^2)
  // structure that makes RADABS the most expensive routine in CCM2.
  for (int k1 = 0; k1 < nlev; ++k1) {
    // The path accumulates incrementally across k2: after the (k1, k2)
    // pair, w[c] holds ((0 + dw[k1+1]) + ...) + dw[k2] — the same additions
    // in the same order as the per-pair inner sum it replaces.
    std::fill(ws.w.begin(), ws.w.begin() + ncol, 0.0);
    const double* t1_row = ws.tt.data() + static_cast<std::size_t>(k1) * ncol;
    for (int k2 = k1 + 1; k2 < nlev; ++k2) {
      ++pairs;
      // -- numerics over the column (vector) axis ------------------------
      kt.add_d(ws.w.data(),
               ws.dwt.data() + static_cast<std::size_t>(k2) * ncol, ncol);
      const double pbar = 0.5 * (f.pressure[static_cast<std::size_t>(k1)] +
                                 f.pressure[static_cast<std::size_t>(k2)]);
      // sqrt(pbar/1e5) is the same value for every column of the pair.
      const double sp = std::sqrt(pbar / 1.0e5);
      kt.radabs_pair_d(ws.w.data(), t1_row,
                       ws.tt.data() + static_cast<std::size_t>(k2) * ncol, sp,
                       ws.a12.data(), ws.scratch.data(), ncol);
      for (int c = 0; c < ncol; ++c) {
        checksum += ws.a12[static_cast<std::size_t>(c)];
      }
      // -- timing: what the vector compiler generates for the loop above --
      // Path accumulation: (k2-k1) chained adds over the column axis.
      sxs::VectorOp acc;
      acc.n = ncol;
      acc.flops_per_elem = static_cast<double>(k2 - k1);
      acc.load_words = static_cast<double>(k2 - k1);
      acc.load_stride = nlev;  // dw is level-fastest per column here
      acc.pipe_groups = 1;
      machine.vec(acc);
      // Algebraic body: means, scalings, band combination (~14 flops).
      sxs::VectorOp body;
      body.n = ncol;
      body.flops_per_elem = 14;
      body.load_words = 3;
      body.store_words = 1;
      body.pipe_groups = 2;
      machine.vec(body);
      // Intrinsics: 2 sqrt, 1 exp, 1 pow, 1 log per (column, pair).
      machine.intrinsic(Intrinsic::Sqrt, ncol);
      machine.intrinsic(Intrinsic::Sqrt, ncol);
      machine.intrinsic(Intrinsic::Exp, ncol);
      machine.intrinsic(Intrinsic::Pow, ncol);
      machine.intrinsic(Intrinsic::Log, ncol);
    }
  }

  RadabsResult r;
  r.seconds = machine.seconds().value();
  r.equiv_mflops = machine.equiv_flops().value() / r.seconds / 1e6;
  r.hw_mflops = machine.hw_flops().value() / r.seconds / 1e6;
  r.checksum = checksum;
  r.level_pairs = pairs;
  NCAR_REQUIRE(std::isfinite(checksum) && checksum > 0,
               "absorptivity checksum invalid");
  return r;
}

RadabsResult run_radabs_standard(machines::Comparator& machine) {
  // CCM2 T42 shape: a latitude row of 128 columns with 18 levels. Rates are
  // intensive, so one row establishes the benchmark figure.
  const auto field = make_test_atmosphere(128, 18);
  return run_radabs(machine, field);
}

}  // namespace ncar::radabs
