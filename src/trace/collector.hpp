#pragma once
// Per-track span and cycle-attribution collector.
//
// One Collector instance backs one timeline track: a simulated Cpu, a node's
// runtime (barriers, idle, IXS waits), an I/O device clock, or the PRODLOAD
// scheduler. The owner is the single writer — a Cpu's collector is only
// touched by the rank charging that Cpu, which is exactly the discipline
// Node::parallel already imposes on the Cpu itself — so recording needs no
// synchronisation and is bit-identical under sequential and threaded host
// execution.
//
// Two recording tiers, selected by trace::mode():
//   * aggregation counters (per-category tick totals plus a chronological
//     track total) are ALWAYS maintained — the off-mode cost is a couple of
//     double additions per charge;
//   * the span buffer ({start, duration, category, tag}) fills only in
//     Mode::Full. It is preallocated up front (SX4NCAR_TRACE_MAX_SPANS,
//     default 65536 per track) and appends until full; overflow increments
//     dropped_spans() instead of reallocating mid-region.
//
// Ticks are the owner's native time unit (cycles for Cpu/node tracks,
// seconds for device clocks); seconds_per_tick() declares the conversion so
// exporters can place every track on one microsecond timeline.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "trace/category.hpp"

namespace ncar::trace {

namespace stream {
class TrackSink;
}  // namespace stream

struct Span {
  double start = 0;     ///< track-local time, in the owner's ticks
  double duration = 0;  ///< ticks
  Category category = Category::Other;
  const char* tag = "";  ///< static string or Collector::intern result
};

class Collector {
public:
  /// `seconds_per_tick` converts this track's native unit to seconds
  /// (a Cpu passes its clock period; device clocks pass 1.0).
  /// `max_spans` == 0 selects the SX4NCAR_TRACE_MAX_SPANS default.
  explicit Collector(double seconds_per_tick = 1.0,
                     std::size_t max_spans = 0);

  // --- counters (always on) ----------------------------------------------
  /// Accumulate onto the chronological track total. Cpu mirrors every
  /// charge here with the *same* addition it applies to its cycle counter,
  /// so total_ticks() stays bit-identical to the owner's clock.
  void count_total(double ticks) { total_ += ticks; }
  /// Accumulate onto one category's counter (no total, no span).
  void count(Category c, double ticks) {
    category_[static_cast<std::size_t>(c)] += ticks;
  }

  // --- spans (Mode::Full and Mode::Stream) -------------------------------
  /// Record a span: appended to the in-memory buffer in Mode::Full (while
  /// it has room), forwarded to the attached streaming sink in
  /// Mode::Stream (dropped and counted when none is attached).
  void span(Category c, double start, double ticks, const char* tag);

  /// Attach/detach the Mode::Stream destination. The sink must outlive
  /// every span() call that can see it; pass nullptr to detach.
  void set_stream_sink(stream::TrackSink* sink) { stream_ = sink; }
  stream::TrackSink* stream_sink() const { return stream_; }

  /// Convenience for simple tracks: total + category counter + span.
  void add(Category c, double start, double ticks, const char* tag);

  // --- accessors ----------------------------------------------------------
  double total_ticks() const { return total_; }
  double category_ticks(Category c) const {
    return category_[static_cast<std::size_t>(c)];
  }
  const std::vector<Span>& spans() const { return spans_; }
  std::uint64_t dropped_spans() const { return dropped_; }
  double seconds_per_tick() const { return seconds_per_tick_; }
  std::size_t max_spans() const { return max_spans_; }

  /// Copy `name` into collector-owned stable storage (span tags outlive the
  /// strings they were built from; deque elements never move).
  const char* intern(std::string_view name);

  /// Zero counters and drop recorded spans (capacity and interned tags are
  /// kept — they are evaluator details, like the op-cost caches). An
  /// attached streaming sink starts a new epoch.
  void reset();

  // --- offline reconstruction (sxtrace converter) ------------------------
  /// Append a span unconditionally, bypassing mode and capacity checks.
  /// Only the .sxt converter uses this, to rebuild a Collector whose span
  /// buffer is bit-identical to the live run's.
  void restore_span(Category c, double start, double ticks, const char* tag) {
    spans_.push_back(Span{start, ticks, c, tag});
  }
  /// Companion to restore_span: reinstate the recorded drop count.
  void restore_dropped_spans(std::uint64_t dropped) { dropped_ = dropped; }

private:
  double seconds_per_tick_;
  std::size_t max_spans_;
  double total_ = 0;
  double category_[kCategoryCount] = {};
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
  stream::TrackSink* stream_ = nullptr;
  std::deque<std::string> interned_;
};

}  // namespace ncar::trace
