#pragma once
// LEB128 varints — the integer substrate of the .sxt trace format.
//
// Unsigned little-endian base-128: seven payload bits per byte, high bit
// set on every byte but the last. Values below 128 cost one byte, which is
// what makes the delta/XOR record codec in codec.hpp pay off: a perfectly
// predicted timestamp XORs to zero and serialises as a single 0x00.
//
// Header-only on purpose: both the charge-path encoder (sink.cpp) and the
// offline reader want these inlined, and the property tests in
// tests/trace/test_stream_codec.cpp drive them over adversarial values.

#include <cstddef>
#include <cstdint>

namespace ncar::trace::stream {

/// Longest encoding of a 64-bit value: ceil(64 / 7) bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Append `value` to `out` (which must have kMaxVarintBytes of room);
/// returns the number of bytes written (1..10).
inline std::size_t put_varint(std::uint8_t* out, std::uint64_t value) {
  std::size_t n = 0;
  while (value >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(value | 0x80);
    value >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(value);
  return n;
}

/// Decode a varint from `in[pos..len)`. Returns true and advances `pos`
/// past the encoding; returns false (leaving `pos` unspecified) when the
/// buffer ends mid-varint or the encoding runs past 10 bytes.
inline bool get_varint(const std::uint8_t* in, std::size_t len,
                       std::size_t& pos, std::uint64_t& value) {
  std::uint64_t v = 0;
  for (std::size_t shift = 0; shift < 64; shift += 7) {
    if (pos >= len) return false;
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      value = v;
      return true;
    }
  }
  return false;  // 11th continuation byte: not a canonical u64 varint
}

}  // namespace ncar::trace::stream
