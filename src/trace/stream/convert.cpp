#include "trace/stream/convert.hpp"

#include <deque>
#include <vector>

#include "trace/chrome_trace.hpp"
#include "trace/collector.hpp"

namespace ncar::trace::stream {

void write_chrome_json(const SxtFile& file, std::ostream& os) {
  // deque: TraceTrack keeps Collector pointers, so addresses must hold
  // while tracks accumulate.
  std::deque<Collector> collectors;
  std::vector<TraceTrack> tracks;
  for (const TrackData& track : file.tracks) {
    if (track.skip_if_empty && track.spans.empty()) continue;
    Collector& c = collectors.emplace_back(
        track.seconds_per_tick,
        static_cast<std::size_t>(track.max_spans));
    std::vector<const char*> interned;
    interned.reserve(track.tags.size());
    for (const std::string& tag : track.tags) {
      interned.push_back(c.intern(tag));
    }
    for (const RawRecord& r : track.spans) {
      c.restore_span(static_cast<Category>(r.category), r.start, r.duration,
                     interned[r.tag]);
    }
    c.restore_dropped_spans(track.dropped);
    tracks.push_back(TraceTrack{&c, track.pid, track.tid, track.process_name,
                                track.thread_name});
  }
  write_chrome_trace(os, tracks);
}

}  // namespace ncar::trace::stream
