#include "trace/stream/sink.hpp"

#include "common/error.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/writer.hpp"

namespace ncar::trace::stream {

TrackSink::TrackSink(Writer* writer, std::uint32_t id,
                     std::size_t chunk_records)
    : writer_(writer), id_(id) {
  ring_.resize(chunk_records);
  encode_buf_.resize(chunk_records * kMaxRecordBytes);
}

void TrackSink::on_reset() {
  fill_ = 0;
  live_records_ = 0;
  dropped_ = 0;
  ++epoch_;
}

void TrackSink::flush() {
  if (fill_ == 0) return;
  const std::size_t raw_len = encode_records(ring_.data(), fill_,
                                             encode_buf_.data());
  if (!writer_->append_chunk(id_, epoch_, seq_, fill_, encode_buf_.data(),
                             raw_len)) {
    dropped_ += fill_;
    live_records_ -= fill_;
  }
  ++seq_;
  fill_ = 0;
}

std::uint32_t TrackSink::tag_id(const char* tag) {
  // Identity hash on the tag pointer (tags are op-table string literals
  // or Collector-interned strings, both address-stable): multiply-shift
  // to the slot, linear probe from there.
  const auto key = reinterpret_cast<std::uintptr_t>(tag);
  std::size_t slot =
      static_cast<std::size_t>((static_cast<std::uint64_t>(key >> 3) *
                                0x9E3779B97F4A7C15ull) >>
                               54) &
      (kTagSlots - 1);
  while (tag_slot_key_[slot] != nullptr) {
    if (tag_slot_key_[slot] == tag) {
      last_tag_ = tag;
      last_tag_id_ = tag_slot_id_[slot];
      return last_tag_id_;
    }
    slot = (slot + 1) & (kTagSlots - 1);
  }
  // First sighting: intern a copy. Amortised growth, off the steady-state
  // charge path; the slot bound is far above any real tag cardinality.
  NCAR_REQUIRE(tags_.size() < kTagSlots - 1, "trace stream tag overflow");
  tag_slot_key_[slot] = tag;
  tag_slot_id_[slot] = static_cast<std::uint32_t>(tags_.size());
  tags_.emplace_back(tag);
  last_tag_ = tag;
  last_tag_id_ = tag_slot_id_[slot];
  return last_tag_id_;
}

}  // namespace ncar::trace::stream
