#pragma once
// Offline .sxt → Chrome trace_event conversion.
//
// The converter does not reimplement the JSON exporter: it rebuilds one
// Collector per recorded track (restore_span on the bit-exact decoded
// doubles, tags re-interned, drop counts reinstated) and hands them to
// the very same trace::write_chrome_trace the live Mode::Full path uses.
// For a run with no sink drops, the JSON that comes out is byte-identical
// to what SX4NCAR_TRACE=full would have written — that is the subsystem's
// core correctness claim and what the round-trip tests pin.

#include <iosfwd>

#include "trace/stream/reader.hpp"

namespace ncar::trace::stream {

/// Emit Chrome trace_event JSON for `file` to `os`. Tracks flagged
/// skip-if-empty that carry no spans are omitted, matching the bench
/// harness's empty-CPU-track rule.
void write_chrome_json(const SxtFile& file, std::ostream& os);

}  // namespace ncar::trace::stream
