#include "trace/stream/codec.hpp"

#include <bit>
#include <vector>

#include "trace/stream/varint.hpp"

namespace ncar::trace::stream {

namespace {

inline std::uint64_t bits_of(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

inline double double_of(std::uint64_t b) { return std::bit_cast<double>(b); }

// Tag ids above this bound predict 0.0 instead of growing the table —
// a bound on decoder memory for hostile inputs, unreachable for real
// traces (tag cardinality is the op-table size).
constexpr std::size_t kMaxPredictedTags = 4096;

}  // namespace

// Duration prediction is per tag: an op's cost repeats bit-identically
// across timesteps (the per-CPU cost caches guarantee it), so the last
// duration seen for the same tag id is a far better predictor than the
// chronological neighbour, which alternates between unrelated ops. The
// table resets at every chunk boundary — chunks decode independently —
// and grows on first sighting of a tag id (predicting 0.0).
std::size_t encode_records(const RawRecord* records, std::size_t n,
                           std::uint8_t* out) {
  std::size_t pos = 0;
  double pred_start = 0.0;
  std::vector<double> last_duration;
  for (std::size_t i = 0; i < n; ++i) {
    const RawRecord& r = records[i];
    const std::uint64_t header =
        (static_cast<std::uint64_t>(r.tag) << 4) |
        static_cast<std::uint64_t>(r.category & 0x0F);
    double fallback = 0.0;
    if (r.tag < kMaxPredictedTags && r.tag >= last_duration.size()) {
      last_duration.resize(static_cast<std::size_t>(r.tag) + 1, 0.0);
    }
    double& pred_duration =
        r.tag < kMaxPredictedTags ? last_duration[r.tag] : fallback;
    pos += put_varint(out + pos, header);
    pos += put_varint(out + pos, bits_of(r.start) ^ bits_of(pred_start));
    pos += put_varint(out + pos,
                      bits_of(r.duration) ^ bits_of(pred_duration));
    pred_start = r.start + r.duration;
    pred_duration = r.duration;
  }
  return pos;
}

bool decode_records(const std::uint8_t* in, std::size_t len, std::size_t n,
                    RawRecord* out) {
  std::size_t pos = 0;
  double pred_start = 0.0;
  std::vector<double> last_duration;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t header = 0, start_xor = 0, duration_xor = 0;
    if (!get_varint(in, len, pos, header) ||
        !get_varint(in, len, pos, start_xor) ||
        !get_varint(in, len, pos, duration_xor)) {
      return false;
    }
    if ((header >> 4) > 0xFFFFFFFFull) return false;  // tag id overflow
    RawRecord& r = out[i];
    r.category = static_cast<std::uint8_t>(header & 0x0F);
    r.tag = static_cast<std::uint32_t>(header >> 4);
    double fallback = 0.0;
    if (r.tag < kMaxPredictedTags && r.tag >= last_duration.size()) {
      last_duration.resize(static_cast<std::size_t>(r.tag) + 1, 0.0);
    }
    double& pred_duration =
        r.tag < kMaxPredictedTags ? last_duration[r.tag] : fallback;
    r.start = double_of(bits_of(pred_start) ^ start_xor);
    r.duration = double_of(bits_of(pred_duration) ^ duration_xor);
    pred_start = r.start + r.duration;
    pred_duration = r.duration;
  }
  return pos == len;
}

}  // namespace ncar::trace::stream
