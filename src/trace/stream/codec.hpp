#pragma once
// Stage-1 span record codec: delta prediction + XOR + varints.
//
// A RawRecord is the sink-side shape of one span: the Collector's doubles
// plus an interned tag id. encode_records turns a run of them into the
// compact byte form specified in format.hpp; decode_records is its exact
// inverse. Both are lossless on the IEEE-754 bit patterns — the offline
// converter reproduces the Chrome exporter's output byte for byte because
// the doubles it formats are the very bits that were charged.
//
// The predictor is the span-stream structure itself: a track's next span
// usually starts where the previous one ended (start == prev start +
// prev duration, computed in double arithmetic, deterministically), and
// op costs repeat bit-identically thanks to the per-CPU cost caches. Both
// XOR deltas are then zero and the whole record is three bytes; the
// second-stage entropy pack (entropy.hpp) squeezes the remaining skew.

#include <cstddef>
#include <cstdint>

#include "trace/category.hpp"

namespace ncar::trace::stream {

/// One span as staged in a sink ring: Collector ticks plus interned ids.
struct RawRecord {
  double start = 0;
  double duration = 0;
  std::uint32_t tag = 0;  ///< index into the owning track's tag table
  std::uint8_t category = 0;
};

/// Encode `n` records into `out` (caller provides at least
/// n * kMaxRecordBytes). Returns the bytes written. Prediction state
/// starts fresh, matching decode_records on a chunk boundary.
std::size_t encode_records(const RawRecord* records, std::size_t n,
                           std::uint8_t* out);

/// Decode exactly `n` records from `in[0..len)` into `out`. Returns false
/// when the buffer truncates mid-record, a varint is malformed, or fewer
/// than `len` bytes are consumed (trailing garbage).
bool decode_records(const std::uint8_t* in, std::size_t len, std::size_t n,
                    RawRecord* out);

}  // namespace ncar::trace::stream
