#pragma once
// Writer — incremental chunk-flushing .sxt file writer.
//
// Owns the output stream and every TrackSink. Sinks hand it raw stage-1
// chunks as their rings fill (append_chunk, mutex-serialised); finalize()
// flushes the partial rings, then rewrites the chunk stream in one pass:
// chunks from dead epochs (spans recorded before the last
// Collector::reset, which the in-memory exporter would not have shown
// either) are dropped, and survivors are entropy-packed. Packing at
// finalize rather than on the charge path keeps the in-run cost to the
// stage-1 encode and never spends coder time on records a reset is about
// to discard. The file on disk is a valid chunk stream at all times
// before the footer, so a crashed run leaves a prefix a tolerant reader
// could still scan (raw chunks only, which is also the robust choice).

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/stream/sink.hpp"

namespace ncar::trace::stream {

class Writer {
public:
  /// Track identity as it lands in the footer; mirrors harness
  /// TraceTrack so the converter can rebuild the exporter's inputs.
  struct TrackSpec {
    int pid = 0;
    int tid = 0;
    std::string process_name;
    std::string thread_name;
    double seconds_per_tick = 1.0;
    bool skip_if_empty = false;  ///< empty-CPU-track rule of the exporter
    std::uint64_t max_spans = 0;
  };

  struct Options {
    std::size_t chunk_records = 0;  ///< 0: SX4NCAR_TRACE_STREAM_CHUNK / 4096
    int pack = -1;                  ///< -1: SX4NCAR_TRACE_STREAM_PACK / on
  };

  struct Stats {
    std::uint64_t events = 0;      ///< live records across all tracks
    std::uint64_t dropped = 0;     ///< spans the sinks had to discard
    std::uint64_t chunks = 0;      ///< chunks surviving compaction
    std::uint64_t file_bytes = 0;  ///< final size on disk
  };

  /// Create `path` (parent directories included) and write the header.
  /// Returns nullptr when the file cannot be created.
  static std::unique_ptr<Writer> open(const std::string& path, Options opt);
  static std::unique_ptr<Writer> open(const std::string& path) {
    return open(path, Options());
  }

  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Register a track. All tracks must be added before spans flow.
  TrackSink& add_track(const TrackSpec& spec);

  /// Flush pending rings, compact dead epochs and entropy-pack the
  /// survivors, write footer + trailer. Idempotent; returns false if any
  /// file operation failed.
  bool finalize();

  /// Valid after finalize().
  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  std::size_t chunk_records() const { return chunk_records_; }

private:
  friend class TrackSink;
  Writer(const std::string& path, std::fstream file,
         std::size_t chunk_records, bool pack);

  /// Sink handoff: write one raw (stage-1) chunk. Returns false (and
  /// latches the failed state) when the stream errors; the sink counts
  /// the drop.
  bool append_chunk(std::uint32_t track_id, std::uint64_t epoch,
                    std::uint64_t seq, std::size_t record_count,
                    const std::uint8_t* payload, std::size_t payload_bytes);

  struct ChunkIndexEntry {
    std::uint64_t offset = 0;  ///< of the 0x01 marker byte
    std::uint64_t length = 0;  ///< marker + header + payload
    std::uint32_t track_id = 0;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    std::uint64_t record_count = 0;
    std::uint64_t payload_bytes = 0;  ///< raw until the finalize rewrite
  };

  /// The finalize pass over the chunk stream: drop dead-epoch chunks and
  /// (when packing is on) entropy-pack the survivors, sliding everything
  /// down in place. Chunks only ever shrink, so the copy is forward-safe.
  bool rewrite_stream(std::uint64_t& stream_end);

  std::string path_;
  std::fstream file_;
  std::size_t chunk_records_;
  bool pack_;
  std::mutex mutex_;
  bool failed_ = false;
  bool finalized_ = false;
  std::uint64_t write_offset_ = 0;
  std::vector<ChunkIndexEntry> index_;
  std::vector<TrackSpec> specs_;
  std::vector<std::unique_ptr<TrackSink>> sinks_;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_payload_bytes_ = 0;
  Stats stats_;
};

}  // namespace ncar::trace::stream
