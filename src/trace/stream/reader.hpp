#pragma once
// Reader — offline parser for .sxt files (format.hpp, version 1).
//
// Strict by design: any structural damage — truncation, a bad marker, a
// corrupt entropy stream, a record count that disagrees with the footer —
// raises FormatError with a stable "sxt: ..." message that tools print
// verbatim and tests assert on. The parser never guesses: a file either
// reproduces the writer's state exactly or is rejected.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/stream/codec.hpp"

namespace ncar::trace::stream {

class FormatError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// One track reassembled from the chunk stream and the footer. `spans`
/// holds only the final epoch, in record order.
struct TrackData {
  int pid = 0;
  int tid = 0;
  std::string process_name;
  std::string thread_name;
  double seconds_per_tick = 1.0;
  bool skip_if_empty = false;
  std::uint64_t final_epoch = 0;
  std::uint64_t dropped = 0;
  std::uint64_t max_spans = 0;
  std::vector<std::string> tags;
  std::vector<RawRecord> spans;
};

struct FileStats {
  std::uint64_t total_chunks = 0;
  std::uint64_t total_records = 0;  ///< all epochs, pre-compaction count
  std::uint64_t total_payload_bytes = 0;
  std::uint64_t file_bytes = 0;
};

struct SxtFile {
  std::vector<TrackData> tracks;
  FileStats stats;
};

/// Parse an in-memory .sxt image. Throws FormatError on any defect.
SxtFile parse_sxt(const std::uint8_t* data, std::size_t len);

/// Read and parse a .sxt file. Throws FormatError on I/O or format errors.
SxtFile read_sxt_file(const std::string& path);

}  // namespace ncar::trace::stream
