#pragma once
// Order-0 tANS byte entropy coder — the optional second compression stage
// of .sxt chunks.
//
// The first stage (codec.hpp) turns a span stream into bytes whose
// distribution is extremely skewed: perfectly predicted timestamps and
// repeated durations XOR to 0x00, and the tag/category headers of a hot
// loop repeat a handful of values. A table-based asymmetric numeral system
// (the FSE construction: 1024 states, symbols spread with the classic
// (size/2 + size/8 + 3) step) squeezes that skew at a fixed
// bits-per-symbol cost with no multiplies on the decode path.
//
// pack() is honest about its wins: it returns false whenever the packed
// form (normalised histogram + final state + bitstream) would not be
// strictly smaller than the input, so the chunk writer falls back to the
// raw stage-1 bytes and the format never regresses. A chunk of one
// distinct byte value short-circuits to a run-length form.
//
// Determinism: normalisation, spread, and encoding are pure functions of
// the input bytes, so packed chunks are byte-identical across runs and
// host-thread policies — the same contract the rest of the trace
// subsystem keeps.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ncar::trace::stream {

/// Reusable encode-side scratch: hoists the bitstream buffer out of the
/// per-chunk call so a sink flushing thousands of chunks allocates once.
struct EntropyWorkspace {
  std::vector<std::uint8_t> bitstream;
};

/// Entropy-pack `n` bytes of `data` into `out` (replacing its contents).
/// Returns false — leaving `out` unspecified — when packing would not
/// strictly shrink the input; callers then store the raw bytes.
bool entropy_pack(const std::uint8_t* data, std::size_t n,
                  std::vector<std::uint8_t>& out, EntropyWorkspace& ws);

/// Convenience wrapper with a throwaway workspace (tests, one-shot use).
inline bool entropy_pack(const std::uint8_t* data, std::size_t n,
                         std::vector<std::uint8_t>& out) {
  EntropyWorkspace ws;
  return entropy_pack(data, n, out, ws);
}

/// Inverse of entropy_pack: decode `n` packed bytes into exactly
/// `raw_size` original bytes (replacing `out`). Returns false when the
/// payload is corrupt (bad mode byte, histogram that does not normalise,
/// or a bitstream too short for raw_size symbols).
bool entropy_unpack(const std::uint8_t* data, std::size_t n,
                    std::size_t raw_size, std::vector<std::uint8_t>& out);

}  // namespace ncar::trace::stream
