#pragma once
// The .sxt binary streaming trace format, version 1.
//
// One file = one traced run. Layout (all integers are LEB128 varints from
// varint.hpp unless noted; byte order of fixed fields is little-endian):
//
//   [header]   magic "SXT1" (4 bytes), u32 version = 1, u64 reserved = 0
//   [chunk]*   a 0x01 marker byte, then
//                varint track_id      index into the footer's track table
//                varint epoch         Collector::reset generation; only the
//                                     final epoch of a track is live
//                varint seq           per-track chunk counter (monotone)
//                varint record_count  spans encoded in this chunk
//                u8     encoding      0 = raw stage-1 bytes,
//                                     1 = entropy-packed (entropy.hpp)
//                varint raw_bytes     stage-1 size (what decoding yields)
//                varint payload_bytes bytes that follow
//                payload...
//   [end]      a single 0x00 marker byte
//   [footer]   varint track_count, then per track:
//                varint pid, varint tid
//                varint len + process_name bytes
//                varint len + thread_name bytes
//                u64    seconds_per_tick as raw IEEE-754 bits
//                u8     flags (bit 0: skip track when it has no spans —
//                       the Chrome exporter's empty-CPU-track rule)
//                varint final_epoch
//                varint live_records  records in the final epoch
//                varint dropped       spans the sink had to discard
//                varint max_spans     the Collector's configured span cap
//                varint tag_count, then per tag: varint len + bytes
//              then varint total_chunks, varint total_records (all
//              epochs), varint total_payload_bytes
//   [trailer]  magic "SXTE" (4 bytes)
//
// Record payload (stage 1, before the optional entropy pack): per record
//   varint header       (tag_id << 4) | category   — kCategoryCount <= 16
//   varint start_xor    IEEE bits of start XOR bits of the predicted
//                       start (previous start + previous duration; 0.0
//                       for the first record of a chunk). A contiguous
//                       span stream encodes as a single 0x00.
//   varint duration_xor IEEE bits of duration XOR the last duration seen
//                       for the SAME tag id in this chunk (0.0 before its
//                       first record). Op costs repeat bit-identically
//                       across timesteps (per-CPU cost caches), so a
//                       repeating op stream encodes its durations as
//                       single 0x00 bytes. Tag ids >= 4096 always
//                       predict 0.0 — a decoder memory bound.
// Prediction state resets at every chunk boundary so chunks decode
// independently of one another.
//
// Versioning and forward compatibility: the header version is bumped on
// any layout change; readers reject versions they do not know
// ("sxt: unsupported version") rather than guessing. Unknown footer flag
// bits are reserved-zero in v1 and readers must ignore them. Drop
// semantics: a sink that cannot hand records to the writer (no writer
// attached, or the file write failed) counts the span in `dropped`
// instead of blocking the charge path; converted traces surface the count
// as Chrome metadata, exactly like the in-memory exporter does for
// SX4NCAR_TRACE_MAX_SPANS saturation.

#include <cstddef>
#include <cstdint>

#include "trace/category.hpp"

namespace ncar::trace::stream {

static_assert(kCategoryCount <= 16,
              "record header packs the category into four bits");

inline constexpr char kMagic[4] = {'S', 'X', 'T', '1'};
inline constexpr char kTrailer[4] = {'S', 'X', 'T', 'E'};
inline constexpr std::uint32_t kVersion = 1;

inline constexpr std::uint8_t kChunkMarker = 0x01;
inline constexpr std::uint8_t kEndMarker = 0x00;

inline constexpr std::uint8_t kEncodingRaw = 0;
inline constexpr std::uint8_t kEncodingEntropy = 1;

/// Track-table flags (footer).
inline constexpr std::uint8_t kFlagSkipIfEmpty = 0x01;

/// Worst-case stage-1 bytes per record: three maximal varints.
inline constexpr std::size_t kMaxRecordBytes = 30;

}  // namespace ncar::trace::stream
