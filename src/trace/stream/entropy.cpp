#include "trace/stream/entropy.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "trace/stream/varint.hpp"

namespace ncar::trace::stream {

namespace {

constexpr int kTableLog = 10;
constexpr std::uint32_t kTableSize = 1u << kTableLog;
constexpr std::uint32_t kTableMask = kTableSize - 1;
constexpr std::uint32_t kSpreadStep =
    (kTableSize >> 1) + (kTableSize >> 3) + 3;  // coprime with kTableSize

constexpr std::uint8_t kModeRle = 0;   // one distinct byte value
constexpr std::uint8_t kModeTans = 1;  // histogram + state + bitstream

/// Scale the raw histogram to counts summing to exactly kTableSize, every
/// present symbol keeping at least one slot. Deterministic: floor-scale,
/// then push the remainder onto the most frequent symbol (ties to the
/// lowest byte value), stealing slots back from the largest normalised
/// counts when the floors overshoot.
void normalise(const std::array<std::uint64_t, 256>& count,
               std::uint64_t total, std::array<std::uint32_t, 256>& norm) {
  norm.fill(0);
  std::uint64_t sum = 0;
  for (int s = 0; s < 256; ++s) {
    if (count[static_cast<std::size_t>(s)] == 0) continue;
    const std::uint64_t scaled =
        count[static_cast<std::size_t>(s)] * kTableSize / total;
    norm[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(std::max<std::uint64_t>(1, scaled));
    sum += norm[static_cast<std::size_t>(s)];
  }
  while (sum > kTableSize) {
    int big = -1;
    for (int s = 0; s < 256; ++s) {
      if (norm[static_cast<std::size_t>(s)] > 1 &&
          (big < 0 || norm[static_cast<std::size_t>(s)] >
                          norm[static_cast<std::size_t>(big)])) {
        big = s;
      }
    }
    --norm[static_cast<std::size_t>(big)];
    --sum;
  }
  if (sum < kTableSize) {
    int top = 0;
    for (int s = 1; s < 256; ++s) {
      if (count[static_cast<std::size_t>(s)] >
          count[static_cast<std::size_t>(top)]) {
        top = s;
      }
    }
    norm[static_cast<std::size_t>(top)] +=
        static_cast<std::uint32_t>(kTableSize - sum);
  }
}

struct DecodeCell {
  std::uint16_t base = 0;  ///< (sub_state << nb) - kTableSize
  std::uint8_t symbol = 0;
  std::uint8_t nb = 0;  ///< bits to pull from the stream
};

/// Per-symbol encode constants (the FSE formulation): the bit count for a
/// state is (state + delta_nb_bits) >> 16 — the 16.16 fixed-point delta
/// folds the "one fewer bit below min_state" boundary into an add and a
/// shift, replacing a per-byte search loop.
struct SymbolTransform {
  std::uint32_t delta_nb_bits = 0;
  std::int32_t delta_find_state = 0;  ///< cum[s] - norm[s]
};

/// Stack-resident coding tables (~9 KB): the encoder transition table is
/// flat — per-symbol slices located by the cumulative normalised counts —
/// so building and using it never allocates.
struct Tables {
  std::array<DecodeCell, kTableSize> decode;
  std::array<std::uint16_t, kTableSize> encode;
  std::array<SymbolTransform, 256> tt;
};

void build_tables(const std::array<std::uint32_t, 256>& norm, Tables& t) {
  std::array<std::uint8_t, kTableSize> spread{};
  std::uint32_t pos = 0;
  for (int s = 0; s < 256; ++s) {
    for (std::uint32_t k = 0; k < norm[static_cast<std::size_t>(s)]; ++k) {
      spread[pos] = static_cast<std::uint8_t>(s);
      pos = (pos + kSpreadStep) & kTableMask;
    }
  }
  std::uint32_t running = 0;
  std::array<std::uint32_t, 256> cum{};
  std::array<std::uint32_t, 256> next{};
  for (int s = 0; s < 256; ++s) {
    const auto u = static_cast<std::size_t>(s);
    cum[u] = running;
    running += norm[u];
    next[u] = norm[u];
    if (norm[u] > 0) {
      // Most bits a state can shed for this symbol; states below
      // norm << max_bits shed one fewer, which the 16.16 delta encodes
      // as the borrow out of the low half.
      const auto max_bits =
          static_cast<std::uint32_t>(kTableLog + 1 - std::bit_width(norm[u] - 1));
      t.tt[u].delta_nb_bits = (max_bits << 16) - (norm[u] << max_bits);
      t.tt[u].delta_find_state =
          static_cast<std::int32_t>(cum[u]) - static_cast<std::int32_t>(norm[u]);
    }
  }
  for (std::uint32_t i = 0; i < kTableSize; ++i) {
    const std::uint8_t s = spread[i];
    const std::uint32_t sub = next[s]++;  // in [norm[s], 2*norm[s])
    const int nb = kTableLog + 1 - std::bit_width(sub);
    t.decode[i].symbol = s;
    t.decode[i].nb = static_cast<std::uint8_t>(nb);
    t.decode[i].base = static_cast<std::uint16_t>(
        (sub << static_cast<std::uint32_t>(nb)) - kTableSize);
    // Slice index for symbol s: sub runs [norm[s], 2*norm[s]), so
    // cum[s] + (sub - norm[s]) lands in [cum[s], cum[s] + norm[s]).
    t.encode[cum[s] + sub - norm[s]] =
        static_cast<std::uint16_t>(kTableSize + i);
  }
}

/// LSB-first bit packer over a caller-guaranteed buffer (worst case is
/// kTableLog+1 bits per symbol plus eight bytes of store slack; callers
/// size for it up front). Each put() stores the accumulator as one
/// little-endian 64-bit word and advances by the completed bytes — no
/// per-byte loop; a spill loop covers big-endian hosts.
class BitWriter {
public:
  explicit BitWriter(std::uint8_t* out) : out_(out) {}
  void put(std::uint32_t value, std::uint32_t nbits) {
    acc_ |= static_cast<std::uint64_t>(value) << filled_;
    filled_ += nbits;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out_, &acc_, 8);
      out_ += filled_ >> 3;
      acc_ >>= filled_ & ~7u;
      filled_ &= 7u;
    } else {
      while (filled_ >= 8) {
        *out_++ = static_cast<std::uint8_t>(acc_ & 0xFF);
        acc_ >>= 8;
        filled_ -= 8;
      }
    }
    total_bits_ += nbits;
  }
  std::size_t flush() {
    if (filled_ > 0) {
      *out_ = static_cast<std::uint8_t>(acc_ & 0xFF);
      acc_ = 0;
      filled_ = 0;
    }
    return static_cast<std::size_t>((total_bits_ + 7) / 8);
  }
  std::uint64_t total_bits() const { return total_bits_; }

private:
  std::uint8_t* out_;
  std::uint64_t acc_ = 0;
  std::uint32_t filled_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// Pops bits in the reverse of the order BitWriter pushed them — the
/// encoder walks the input backwards, so the decoder, walking forwards,
/// consumes the stream from its tail.
class ReverseBitReader {
public:
  ReverseBitReader(const std::uint8_t* bytes, std::uint64_t total_bits)
      : bytes_(bytes), pos_(total_bits) {}

  bool pop(int nbits, std::uint32_t& out) {
    if (pos_ < static_cast<std::uint64_t>(nbits)) return false;
    pos_ -= static_cast<std::uint64_t>(nbits);
    std::uint32_t v = 0;
    for (int b = 0; b < nbits; ++b) {
      const std::uint64_t bit = pos_ + static_cast<std::uint64_t>(b);
      const std::uint8_t byte = bytes_[bit >> 3];
      v |= static_cast<std::uint32_t>((byte >> (bit & 7)) & 1u) << b;
    }
    out = v;
    return true;
  }

private:
  const std::uint8_t* bytes_;
  std::uint64_t pos_;
};

}  // namespace

bool entropy_pack(const std::uint8_t* data, std::size_t n,
                  std::vector<std::uint8_t>& out, EntropyWorkspace& ws) {
  if (n < 2) return false;

  // Four interleaved sub-histograms: stage-1 bytes are dominated by one
  // value (0x00), and a single counter array would serialise every
  // increment on the same slot.
  std::array<std::uint32_t, 256> c0{}, c1{}, c2{}, c3{};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++c0[data[i]];
    ++c1[data[i + 1]];
    ++c2[data[i + 2]];
    ++c3[data[i + 3]];
  }
  for (; i < n; ++i) ++c0[data[i]];
  std::array<std::uint64_t, 256> count{};
  for (int s = 0; s < 256; ++s) {
    const auto u = static_cast<std::size_t>(s);
    count[u] = static_cast<std::uint64_t>(c0[u]) + c1[u] + c2[u] + c3[u];
  }
  int distinct = 0;
  for (int s = 0; s < 256; ++s) {
    if (count[static_cast<std::size_t>(s)] != 0) ++distinct;
  }
  if (distinct == 1) {
    out.assign({kModeRle, data[0]});
    return out.size() < n;
  }

  std::array<std::uint32_t, 256> norm{};
  normalise(count, static_cast<std::uint64_t>(n), norm);
  Tables tables;
  build_tables(norm, tables);

  // Worst case kTableLog+1 bits per input byte, plus accumulator slack.
  ws.bitstream.resize(n * (kTableLog + 1) / 8 + 16);
  BitWriter bits(ws.bitstream.data());
  std::uint32_t state = kTableSize;  // any state in [size, 2*size) works
  for (std::size_t j = n; j-- > 0;) {
    const SymbolTransform& tt = tables.tt[data[j]];
    const std::uint32_t nb = (state + tt.delta_nb_bits) >> 16;
    bits.put(state & ((1u << nb) - 1u), nb);
    state = tables.encode[static_cast<std::uint32_t>(
        static_cast<std::int32_t>(state >> nb) + tt.delta_find_state)];
  }
  const std::size_t stream_bytes = bits.flush();

  out.clear();
  out.reserve(300 + stream_bytes);
  out.push_back(kModeTans);
  std::uint8_t scratch[kMaxVarintBytes];
  for (int s = 0; s < 256; ++s) {
    const std::size_t len =
        put_varint(scratch, norm[static_cast<std::size_t>(s)]);
    out.insert(out.end(), scratch, scratch + len);
  }
  std::size_t len = put_varint(scratch, state - kTableSize);
  out.insert(out.end(), scratch, scratch + len);
  len = put_varint(scratch, bits.total_bits());
  out.insert(out.end(), scratch, scratch + len);
  out.insert(out.end(), ws.bitstream.data(),
             ws.bitstream.data() + stream_bytes);
  return out.size() < n;
}

bool entropy_unpack(const std::uint8_t* data, std::size_t n,
                    std::size_t raw_size, std::vector<std::uint8_t>& out) {
  if (n == 0) return false;
  const std::uint8_t packed_mode = data[0];
  if (packed_mode == kModeRle) {
    if (n != 2) return false;
    out.assign(raw_size, data[1]);
    return true;
  }
  if (packed_mode != kModeTans) return false;

  std::size_t pos = 1;
  std::array<std::uint32_t, 256> norm{};
  std::uint64_t sum = 0;
  for (int s = 0; s < 256; ++s) {
    std::uint64_t v = 0;
    if (!get_varint(data, n, pos, v) || v > kTableSize) return false;
    norm[static_cast<std::size_t>(s)] = static_cast<std::uint32_t>(v);
    sum += v;
  }
  if (sum != kTableSize) return false;
  std::uint64_t state64 = 0, total_bits = 0;
  if (!get_varint(data, n, pos, state64) || state64 >= kTableSize) {
    return false;
  }
  if (!get_varint(data, n, pos, total_bits)) return false;
  const std::size_t stream_bytes = n - pos;
  if (total_bits > static_cast<std::uint64_t>(stream_bytes) * 8) return false;

  Tables tables;
  build_tables(norm, tables);

  out.assign(raw_size, 0);
  ReverseBitReader bits(data + pos, total_bits);
  std::uint32_t state = static_cast<std::uint32_t>(state64);
  for (std::size_t i = 0; i < raw_size; ++i) {
    const DecodeCell& cell = tables.decode[state];
    out[i] = cell.symbol;
    std::uint32_t rest = 0;
    if (!bits.pop(cell.nb, rest)) return false;
    state = static_cast<std::uint32_t>(cell.base) + rest;
  }
  return true;
}

}  // namespace ncar::trace::stream
