#include "trace/stream/reader.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "trace/stream/entropy.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/varint.hpp"

namespace ncar::trace::stream {

namespace {

/// All decoded chunks of one track, in file (= per-track seq) order.
struct PendingChunk {
  std::uint64_t epoch = 0;
  std::vector<RawRecord> records;
};

class Parser {
public:
  Parser(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  SxtFile run() {
    check_frame();
    while (true) {
      const std::uint8_t marker = data_[pos_++];
      if (marker == kEndMarker) break;
      if (marker != kChunkMarker) throw FormatError("sxt: bad section marker");
      read_chunk();
    }
    SxtFile file = read_footer();
    file.stats.file_bytes = len_;
    return file;
  }

private:
  void check_frame() {
    // header (16) + end marker (1) + footer track/total counts (>= 4) +
    // trailer (4) is the smallest well-formed file.
    if (len_ < 25) throw FormatError("sxt: file too small");
    if (std::memcmp(data_, kMagic, 4) != 0) throw FormatError("sxt: bad magic");
    std::uint32_t version = 0;
    for (int b = 0; b < 4; ++b) {
      version |= static_cast<std::uint32_t>(data_[4 + b]) << (8 * b);
    }
    if (version != kVersion) throw FormatError("sxt: unsupported version");
    if (std::memcmp(data_ + len_ - 4, kTrailer, 4) != 0) {
      throw FormatError("sxt: missing trailer");
    }
    pos_ = 16;  // magic + version + reserved
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    if (!get_varint(data_, len_, pos_, v)) {
      throw FormatError("sxt: truncated varint");
    }
    return v;
  }

  std::string string_field() {
    const std::uint64_t n = varint();
    if (n > len_ - pos_) throw FormatError("sxt: truncated footer");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  void read_chunk() {
    const std::uint64_t track_id = varint();
    const std::uint64_t epoch = varint();
    varint();  // seq: informational; file order is authoritative
    const std::uint64_t record_count = varint();
    if (pos_ >= len_) throw FormatError("sxt: truncated varint");
    const std::uint8_t encoding = data_[pos_++];
    const std::uint64_t raw_bytes = varint();
    const std::uint64_t payload_bytes = varint();
    if (payload_bytes > len_ - pos_) {
      throw FormatError("sxt: truncated chunk payload");
    }
    const std::uint8_t* payload = data_ + pos_;
    pos_ += static_cast<std::size_t>(payload_bytes);

    const std::uint8_t* raw = payload;
    if (encoding == kEncodingEntropy) {
      if (!entropy_unpack(payload, static_cast<std::size_t>(payload_bytes),
                          static_cast<std::size_t>(raw_bytes), scratch_)) {
        throw FormatError("sxt: entropy payload corrupt");
      }
      raw = scratch_.data();
    } else if (encoding == kEncodingRaw) {
      if (raw_bytes != payload_bytes) {
        throw FormatError("sxt: record payload corrupt");
      }
    } else {
      throw FormatError("sxt: bad chunk encoding");
    }

    if (track_id >= chunks_.size()) {
      chunks_.resize(static_cast<std::size_t>(track_id) + 1);
    }
    PendingChunk chunk;
    chunk.epoch = epoch;
    chunk.records.resize(static_cast<std::size_t>(record_count));
    if (!decode_records(raw, static_cast<std::size_t>(raw_bytes),
                        chunk.records.size(), chunk.records.data())) {
      throw FormatError("sxt: record payload corrupt");
    }
    chunks_[static_cast<std::size_t>(track_id)].push_back(std::move(chunk));
  }

  SxtFile read_footer() {
    SxtFile file;
    const std::uint64_t track_count = varint();
    if (chunks_.size() > track_count) {
      throw FormatError("sxt: chunk for unknown track");
    }
    file.tracks.resize(static_cast<std::size_t>(track_count));
    for (std::size_t id = 0; id < file.tracks.size(); ++id) {
      TrackData& track = file.tracks[id];
      track.pid = static_cast<int>(varint());
      track.tid = static_cast<int>(varint());
      track.process_name = string_field();
      track.thread_name = string_field();
      if (len_ - pos_ < 8) throw FormatError("sxt: truncated footer");
      std::uint64_t tick_bits = 0;
      for (int b = 0; b < 8; ++b) {
        tick_bits |= static_cast<std::uint64_t>(data_[pos_ + static_cast<
                         std::size_t>(b)])
                     << (8 * b);
      }
      pos_ += 8;
      track.seconds_per_tick = std::bit_cast<double>(tick_bits);
      if (pos_ >= len_) throw FormatError("sxt: truncated footer");
      const std::uint8_t flags = data_[pos_++];
      track.skip_if_empty = (flags & kFlagSkipIfEmpty) != 0;
      track.final_epoch = varint();
      const std::uint64_t live_records = varint();
      track.dropped = varint();
      track.max_spans = varint();
      const std::uint64_t tag_count = varint();
      track.tags.reserve(static_cast<std::size_t>(tag_count));
      for (std::uint64_t t = 0; t < tag_count; ++t) {
        track.tags.push_back(string_field());
      }

      if (id < chunks_.size()) {
        for (PendingChunk& chunk : chunks_[id]) {
          if (chunk.epoch != track.final_epoch) continue;
          for (const RawRecord& r : chunk.records) {
            if (r.tag >= track.tags.size()) {
              throw FormatError("sxt: tag id out of range");
            }
            track.spans.push_back(r);
          }
        }
      }
      if (track.spans.size() != live_records) {
        throw FormatError("sxt: track record count mismatch");
      }
    }
    file.stats.total_chunks = varint();
    file.stats.total_records = varint();
    file.stats.total_payload_bytes = varint();
    if (pos_ != len_ - 4) throw FormatError("sxt: footer size mismatch");
    return file;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  std::vector<std::vector<PendingChunk>> chunks_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace

SxtFile parse_sxt(const std::uint8_t* data, std::size_t len) {
  return Parser(data, len).run();
}

SxtFile read_sxt_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw FormatError("sxt: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  bytes.resize(static_cast<std::size_t>(size > 0 ? size : 0));
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  if (!in) throw FormatError("sxt: cannot open " + path);
  return parse_sxt(bytes.data(), bytes.size());
}

}  // namespace ncar::trace::stream
