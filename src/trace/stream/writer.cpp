#include "trace/stream/writer.hpp"

#include <bit>
#include <cstdlib>
#include <filesystem>

#include "trace/stream/entropy.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/varint.hpp"

namespace ncar::trace::stream {

namespace {

constexpr std::size_t kDefaultChunkRecords = 4096;
constexpr std::size_t kMinChunkRecords = 16;
constexpr std::size_t kMaxChunkRecords = 1u << 20;

std::size_t chunk_records_from_env() {
  const char* env = std::getenv("SX4NCAR_TRACE_STREAM_CHUNK");
  if (env == nullptr || *env == '\0') return kDefaultChunkRecords;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return kDefaultChunkRecords;
  if (v < kMinChunkRecords) return kMinChunkRecords;
  if (v > kMaxChunkRecords) return kMaxChunkRecords;
  return static_cast<std::size_t>(v);
}

bool pack_from_env() {
  const char* env = std::getenv("SX4NCAR_TRACE_STREAM_PACK");
  if (env == nullptr || *env == '\0') return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false");
}

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t scratch[kMaxVarintBytes];
  const std::size_t len = put_varint(scratch, v);
  out.insert(out.end(), scratch, scratch + len);
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xFF));
  }
}

}  // namespace

std::unique_ptr<Writer> Writer::open(const std::string& path, Options opt) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);

  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out |
                              std::ios::trunc);
  if (!file.is_open()) return nullptr;

  const std::size_t chunk_records =
      opt.chunk_records != 0 ? opt.chunk_records : chunk_records_from_env();
  const bool pack = opt.pack >= 0 ? opt.pack != 0 : pack_from_env();
  return std::unique_ptr<Writer>(
      new Writer(path, std::move(file), chunk_records, pack));
}

Writer::Writer(const std::string& path, std::fstream file,
               std::size_t chunk_records, bool pack)
    : path_(path),
      file_(std::move(file)),
      chunk_records_(chunk_records),
      pack_(pack) {
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagic, kMagic + 4);
  for (int b = 0; b < 4; ++b) {
    header.push_back(static_cast<std::uint8_t>((kVersion >> (8 * b)) & 0xFF));
  }
  append_u64_le(header, 0);  // reserved
  file_.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
  write_offset_ = header.size();
  if (!file_) failed_ = true;
}

Writer::~Writer() {
  if (!finalized_) finalize();
}

TrackSink& Writer::add_track(const TrackSpec& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  specs_.push_back(spec);
  const auto id = static_cast<std::uint32_t>(sinks_.size());
  sinks_.push_back(std::unique_ptr<TrackSink>(
      new TrackSink(this, id, chunk_records_)));
  return *sinks_.back();
}

namespace {

/// Compose a chunk header in place; returns its length.
std::size_t chunk_header(std::uint8_t* header, std::uint32_t track_id,
                         std::uint64_t epoch, std::uint64_t seq,
                         std::uint64_t record_count, std::uint8_t encoding,
                         std::uint64_t raw_bytes,
                         std::uint64_t payload_bytes) {
  std::size_t pos = 0;
  header[pos++] = kChunkMarker;
  pos += put_varint(header + pos, track_id);
  pos += put_varint(header + pos, epoch);
  pos += put_varint(header + pos, seq);
  pos += put_varint(header + pos, record_count);
  header[pos++] = encoding;
  pos += put_varint(header + pos, raw_bytes);
  pos += put_varint(header + pos, payload_bytes);
  return pos;
}

}  // namespace

bool Writer::append_chunk(std::uint32_t track_id, std::uint64_t epoch,
                          std::uint64_t seq, std::size_t record_count,
                          const std::uint8_t* payload,
                          std::size_t payload_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (failed_ || finalized_) return false;

  std::uint8_t header[2 + 6 * kMaxVarintBytes];
  const std::size_t pos =
      chunk_header(header, track_id, epoch, seq, record_count, kEncodingRaw,
                   payload_bytes, payload_bytes);

  file_.seekp(static_cast<std::streamoff>(write_offset_));
  file_.write(reinterpret_cast<const char*>(header),
              static_cast<std::streamsize>(pos));
  file_.write(reinterpret_cast<const char*>(payload),
              static_cast<std::streamsize>(payload_bytes));
  if (!file_) {
    failed_ = true;
    return false;
  }
  index_.push_back({write_offset_, pos + payload_bytes, track_id, epoch, seq,
                    record_count, payload_bytes});
  write_offset_ += pos + payload_bytes;
  total_records_ += record_count;
  return true;
}

bool Writer::rewrite_stream(std::uint64_t& stream_end) {
  std::vector<ChunkIndexEntry> live;
  live.reserve(index_.size());
  bool any_dead = false;
  for (const ChunkIndexEntry& e : index_) {
    if (e.epoch == sinks_[e.track_id]->epoch()) {
      live.push_back(e);
    } else {
      any_dead = true;
    }
  }
  std::uint64_t dst = 16;  // header: magic + version + reserved
  if (!any_dead && !pack_) {
    dst = write_offset_;
  } else {
    std::vector<std::uint8_t> raw;
    std::vector<std::uint8_t> packed;
    EntropyWorkspace ws;
    std::uint8_t header[2 + 6 * kMaxVarintBytes];
    for (ChunkIndexEntry& e : live) {
      bool shrunk = false;
      if (pack_) {
        raw.resize(e.payload_bytes);
        file_.seekg(
            static_cast<std::streamoff>(e.offset + e.length - e.payload_bytes));
        file_.read(reinterpret_cast<char*>(raw.data()),
                   static_cast<std::streamsize>(e.payload_bytes));
        if (!file_) return false;
        shrunk = entropy_pack(raw.data(), raw.size(), packed, ws);
      }
      if (shrunk) {
        const std::size_t pos =
            chunk_header(header, e.track_id, e.epoch, e.seq, e.record_count,
                         kEncodingEntropy, e.payload_bytes, packed.size());
        file_.seekp(static_cast<std::streamoff>(dst));
        file_.write(reinterpret_cast<const char*>(header),
                    static_cast<std::streamsize>(pos));
        file_.write(reinterpret_cast<const char*>(packed.data()),
                    static_cast<std::streamsize>(packed.size()));
        if (!file_) return false;
        e.offset = dst;
        e.length = pos + packed.size();
        e.payload_bytes = packed.size();
      } else if (e.offset != dst) {
        // Raw chunk sliding down past dropped predecessors: plain copy.
        raw.resize(e.length);
        file_.seekg(static_cast<std::streamoff>(e.offset));
        file_.read(reinterpret_cast<char*>(raw.data()),
                   static_cast<std::streamsize>(e.length));
        file_.seekp(static_cast<std::streamoff>(dst));
        file_.write(reinterpret_cast<const char*>(raw.data()),
                    static_cast<std::streamsize>(e.length));
        if (!file_) return false;
        e.offset = dst;
      }
      dst += e.length;
    }
  }
  stream_end = dst;
  stats_.chunks = live.size();
  total_payload_bytes_ = 0;
  for (const ChunkIndexEntry& e : live) total_payload_bytes_ += e.payload_bytes;
  index_ = std::move(live);
  return true;
}

bool Writer::finalize() {
  for (const std::unique_ptr<TrackSink>& sink : sinks_) sink->flush();

  const std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return !failed_;
  finalized_ = true;

  std::uint64_t stream_end = write_offset_;
  if (!failed_ && !rewrite_stream(stream_end)) failed_ = true;

  std::vector<std::uint8_t> tail;
  tail.push_back(kEndMarker);
  append_varint(tail, specs_.size());
  stats_.events = 0;
  stats_.dropped = 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const TrackSpec& spec = specs_[i];
    const TrackSink& sink = *sinks_[i];
    append_varint(tail, static_cast<std::uint64_t>(spec.pid));
    append_varint(tail, static_cast<std::uint64_t>(spec.tid));
    append_string(tail, spec.process_name);
    append_string(tail, spec.thread_name);
    append_u64_le(tail, std::bit_cast<std::uint64_t>(spec.seconds_per_tick));
    tail.push_back(spec.skip_if_empty ? kFlagSkipIfEmpty : 0);
    append_varint(tail, sink.epoch());
    append_varint(tail, sink.live_records());
    append_varint(tail, sink.dropped());
    append_varint(tail, spec.max_spans);
    append_varint(tail, sink.tags().size());
    for (const std::string& tag : sink.tags()) append_string(tail, tag);
    stats_.events += sink.live_records();
    stats_.dropped += sink.dropped();
  }
  append_varint(tail, stats_.chunks);
  append_varint(tail, total_records_);
  append_varint(tail, total_payload_bytes_);
  tail.insert(tail.end(), kTrailer, kTrailer + 4);

  if (!failed_) {
    file_.seekp(static_cast<std::streamoff>(stream_end));
    file_.write(reinterpret_cast<const char*>(tail.data()),
                static_cast<std::streamsize>(tail.size()));
    file_.flush();
    if (!file_) failed_ = true;
  }
  file_.close();

  const std::uint64_t final_size = stream_end + tail.size();
  if (!failed_) {
    std::error_code ec;
    std::filesystem::resize_file(path_, final_size, ec);
    if (ec) failed_ = true;
  }
  stats_.file_bytes = final_size;
  return !failed_;
}

}  // namespace ncar::trace::stream
