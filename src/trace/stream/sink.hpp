#pragma once
// TrackSink — the per-track (per-CPU) staging ring of the streaming sink.
//
// One TrackSink backs one Collector in SX4NCAR_TRACE=stream mode, under
// the same single-writer discipline: only the rank that owns the Cpu
// touches its sink, so record() needs no synchronisation. The ring is a
// fixed preallocated array of RawRecords; the per-span path writes one
// slot and bumps a counter — no allocation, no branching on file state.
// When the ring fills, the sink encodes it (codec.hpp) into preallocated
// scratch and hands the raw chunk to the Writer, which serialises file
// appends behind a mutex. Only that once-per-chunk handoff contends; the
// optional entropy stage runs once at finalize, on the chunks that
// survive epoch compaction, so dead-epoch records never pay for packing.
//
// Epochs mirror Collector::reset: resetting a collector abandons its
// pending ring and bumps the sink's epoch, so chunks written before the
// reset become dead weight that Writer::finalize compacts away — the
// converted trace shows exactly what the in-memory exporter would have
// shown (spans since the last reset).
//
// Drops are counted, never blocking: when no writer is attached or a file
// write has failed, the span is discarded and dropped() grows, exactly
// like the in-memory buffer saturating at SX4NCAR_TRACE_MAX_SPANS.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/category.hpp"
#include "trace/stream/codec.hpp"

namespace ncar::trace::stream {

class Writer;

class TrackSink {
public:
  /// Stage one span. Called from the owning rank only (charge path):
  /// one ring-slot store plus a tag lookup that is a pointer compare for
  /// a repeated tag and one hash probe otherwise.
  void record(Category c, double start, double ticks, const char* tag) {
    RawRecord& r = ring_[fill_];
    r.start = start;
    r.duration = ticks;
    r.tag = tag == last_tag_ ? last_tag_id_ : tag_id(tag);
    r.category = static_cast<std::uint8_t>(c);
    ++fill_;
    ++live_records_;
    if (fill_ == ring_.size()) flush();
  }

  /// Collector::reset hook: abandon pending records, start a new epoch.
  void on_reset();

  /// Spans discarded (writer missing or failed) since the last reset.
  std::uint64_t dropped() const { return dropped_; }
  /// Records staged or written in the current epoch.
  std::uint64_t live_records() const { return live_records_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Tag-table snapshot (id order). Strings are sink-owned copies.
  const std::vector<std::string>& tags() const { return tags_; }

private:
  friend class Writer;
  TrackSink(Writer* writer, std::uint32_t id, std::size_t chunk_records);

  /// Encode the pending ring into a chunk and hand it to the writer.
  void flush();
  std::uint32_t tag_id(const char* tag);

  Writer* writer_;
  std::uint32_t id_;
  std::vector<RawRecord> ring_;
  std::size_t fill_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t live_records_ = 0;
  std::uint64_t dropped_ = 0;
  const char* last_tag_ = nullptr;
  std::uint32_t last_tag_id_ = 0;
  /// Open-addressed identity hash (pointer keys, linear probing). Tag
  /// cardinality is the op-table size, far below kTagSlots, so the table
  /// never needs growing and probes stay short.
  static constexpr std::size_t kTagSlots = 1024;
  std::array<const char*, kTagSlots> tag_slot_key_{};
  std::array<std::uint32_t, kTagSlots> tag_slot_id_{};
  std::vector<std::string> tags_;
  std::vector<std::uint8_t> encode_buf_;
};

}  // namespace ncar::trace::stream
