#pragma once
// Simulated-cycle attribution taxonomy.
//
// The paper's argument is an attribution argument: Tables 1-7 decompose each
// benchmark's time into vector-pipe work, scalar issue, bank conflicts, and
// IXS / barrier communication. Category is that decomposition as a type:
// every cycle charged against a simulated Cpu (and every overhead the node
// runtime adds on top) is filed under exactly one category, so the model can
// report *why* a curve has its shape, not just its end-to-end seconds.
//
// Charged categories (they appear in per-CPU attribution tables and must sum
// to the CPU's charged cycles — see trace::build_attribution):
//   vector_add      single-pipe-group vector arithmetic
//   vector_mul      multi-group (madd-style) vector arithmetic + intrinsics
//   vector_div      divide/sqrt-pipe-bound vector loops
//   vector_logical  flop-free vector loops (copies, masks, shifts)
//   scalar          superscalar issue of cache-style code
//   cache_miss      data-cache miss stall cycles of scalar loops
//   bank_conflict   memory-bank conflict inflation: stride conflicts plus
//                   the multi-CPU contention factor
//   gather_scatter  indexed (gather/scatter) memory traffic priced above
//                   the unit-stride rate — split out of the vector pipe
//                   categories so irregular access shows up separately
//   slt_interp      semi-Lagrangian transport interpolation: the
//                   gather-heavy SLT loops of CCM2, filed apart from the
//                   rest of the dynamics so the paper's "SLT is the
//                   irregular part" argument is visible in the tables
//   ixs_transfer    internode crossbar transfer waits
//   io_xmu          XMU (semiconductor-disk) staging
//   io_disk         conventional-disk transfers
//   io_hippi        HIPPI channel transfers
//   other           uncategorised charges + attribution rounding residue
//
// Node-runtime categories (recorded on the node track, never charged to a
// Cpu, so they sit outside the per-CPU conservation sum):
//   barrier         macrotask / communications-register barrier cost
//   idle            rank cycles lost waiting for the slowest rank of a
//                   parallel region

#include <cstdint>

namespace ncar::trace {

enum class Category : std::uint8_t {
  VectorAdd = 0,
  VectorMul,
  VectorDiv,
  VectorLogical,
  Scalar,
  CacheMiss,
  BankConflict,
  GatherScatter,
  SltInterp,
  IxsTransfer,
  Barrier,
  IoXmu,
  IoDisk,
  IoHippi,
  Idle,
  Other,  // keep last: build_attribution uses it as the residual bucket
};

inline constexpr int kCategoryCount = static_cast<int>(Category::Other) + 1;

/// Stable snake_case name ("vector_add", "bank_conflict", ...) used in
/// attribution metric names and Chrome trace "cat" fields.
const char* to_string(Category c);

/// Inverse of to_string; returns false when `name` is not a category.
bool category_from_string(const char* name, Category& out);

/// Charged categories participate in the per-CPU conservation sum; Barrier
/// and Idle are node-runtime overheads recorded outside the Cpus.
constexpr bool is_charged_category(Category c) {
  return c != Category::Barrier && c != Category::Idle;
}

// --- tracing mode ----------------------------------------------------------

enum class Mode : std::uint8_t {
  Off,      ///< aggregate counters only, nothing exported
  Summary,  ///< + refined splits and attribution tables in bench JSON
  Full,     ///< + per-span buffers and Chrome trace export
  Stream,   ///< + spans streamed to a binary .sxt sink (trace/stream/)
};

/// True when the current mode records spans at all — Full keeps them in the
/// Collector's in-memory buffer, Stream forwards them to the attached
/// binary sink. Summary/Off record counters only.
constexpr bool spans_enabled(Mode m) {
  return m == Mode::Full || m == Mode::Stream;
}

/// Pure parse of the SX4NCAR_TRACE value ("off" | "summary" | "full" |
/// "stream"; unset/empty/unknown -> Off). Exposed for tests.
Mode mode_from_env(const char* value);

/// Process-wide tracing mode: initialised from SX4NCAR_TRACE on first use.
Mode mode();

/// Override the process-wide mode (tests and bench mains).
void set_mode(Mode m);

const char* to_string(Mode m);

}  // namespace ncar::trace
