#include "trace/category.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ncar::trace {

const char* to_string(Category c) {
  switch (c) {
    case Category::VectorAdd: return "vector_add";
    case Category::VectorMul: return "vector_mul";
    case Category::VectorDiv: return "vector_div";
    case Category::VectorLogical: return "vector_logical";
    case Category::Scalar: return "scalar";
    case Category::CacheMiss: return "cache_miss";
    case Category::BankConflict: return "bank_conflict";
    case Category::GatherScatter: return "gather_scatter";
    case Category::SltInterp: return "slt_interp";
    case Category::IxsTransfer: return "ixs_transfer";
    case Category::Barrier: return "barrier";
    case Category::IoXmu: return "io_xmu";
    case Category::IoDisk: return "io_disk";
    case Category::IoHippi: return "io_hippi";
    case Category::Idle: return "idle";
    case Category::Other: return "other";
  }
  return "other";
}

bool category_from_string(const char* name, Category& out) {
  if (name == nullptr) return false;
  for (int i = 0; i < kCategoryCount; ++i) {
    const Category c = static_cast<Category>(i);
    if (std::strcmp(name, to_string(c)) == 0) {
      out = c;
      return true;
    }
  }
  return false;
}

Mode mode_from_env(const char* value) {
  if (value == nullptr || *value == '\0') return Mode::Off;
  if (std::strcmp(value, "summary") == 0) return Mode::Summary;
  if (std::strcmp(value, "full") == 0) return Mode::Full;
  if (std::strcmp(value, "stream") == 0) return Mode::Stream;
  return Mode::Off;
}

namespace {

// Relaxed is enough: the mode is set once up front (env or a test override
// on the main thread) and only read inside parallel regions.
std::atomic<Mode>& mode_storage() {
  static std::atomic<Mode> storage{
      mode_from_env(std::getenv("SX4NCAR_TRACE"))};
  return storage;
}

}  // namespace

Mode mode() { return mode_storage().load(std::memory_order_relaxed); }

void set_mode(Mode m) {
  mode_storage().store(m, std::memory_order_relaxed);
}

const char* to_string(Mode m) {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Summary: return "summary";
    case Mode::Full: return "full";
    case Mode::Stream: return "stream";
  }
  return "off";
}

}  // namespace ncar::trace
