#pragma once
// Cycle-attribution tables built from trace::Collector counters.
//
// An attribution table answers "where did the simulated time go" the way the
// paper's Tables 1-7 do: one row per Category with absolute ticks and the
// fraction of the track total. Rows are emitted for every category (zeros
// included) in enum order so the table layout — and therefore the exported
// JSON — is byte-stable across runs and host execution policies.
//
// Bit-exact conservation: a track's total is accumulated chronologically
// (mirroring the Cpu's own cycle counter) while category counters group the
// same charges by kind, so the two foldings differ in the last ulp in
// general. The Other row therefore reports the *residual*
//     other = total - fold(non-Other rows, enum order)
// which makes
//     fold(all rows, enum order) == total
// hold exactly whenever the categorised work dominates (Sterbenz: the
// non-Other fold lies within [total/2, 2*total]), which the conservation
// tests assert for the real benchmarks. Other thus holds explicit
// uncategorised charges plus the attribution rounding residue.

#include <span>
#include <vector>

#include "trace/category.hpp"
#include "trace/collector.hpp"

namespace ncar::trace {

struct AttributionRow {
  Category category = Category::Other;
  double ticks = 0;
  double fraction = 0;  ///< ticks / total (0 when the total is 0)
};

struct Attribution {
  double total_ticks = 0;  ///< fold of per-track totals, track order
  std::vector<AttributionRow> rows;  ///< kCategoryCount rows, enum order
};

/// Fold the counters of `tracks` (in the given order) into one table.
/// Passing a single track yields that track's per-CPU table; passing all of
/// a node's CPU collectors yields the node-aggregate table.
Attribution build_attribution(std::span<const Collector* const> tracks);

inline Attribution build_attribution(const Collector& track) {
  const Collector* one[] = {&track};
  return build_attribution(std::span<const Collector* const>(one));
}

}  // namespace ncar::trace
