#include "trace/chrome_trace.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace ncar::trace {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan; traces never do
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void write_metadata(std::ostream& os, const char* kind, int pid, int tid,
                    std::string_view name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << kind << R"(","ph":"M","pid":)" << pid
     << R"(,"tid":)" << tid << R"(,"args":{"name":)";
  write_escaped(os, name);
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceTrack> tracks) {
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Metadata: one process_name per distinct pid (first track wins), one
  // thread_name per track, plus a truncation marker on any track whose
  // collector had to drop spans — a trace that silently lost its tail
  // would otherwise read as a short run.
  int last_named_pid = -1;
  for (const TraceTrack& t : tracks) {
    if (t.pid != last_named_pid) {
      write_metadata(os, "process_name", t.pid, 0, t.process_name, first);
      last_named_pid = t.pid;
    }
    write_metadata(os, "thread_name", t.pid, t.tid, t.thread_name, first);
    if (t.collector->dropped_spans() > 0) {
      if (!first) os << ",\n";
      first = false;
      os << R"({"name":"trace_dropped_spans","ph":"M","pid":)" << t.pid
         << R"(,"tid":)" << t.tid << R"(,"args":{"dropped":)"
         << t.collector->dropped_spans() << R"(,"max_spans":)"
         << t.collector->max_spans() << "}}";
    }
  }

  for (const TraceTrack& t : tracks) {
    const double to_us = t.collector->seconds_per_tick() * 1e6;
    for (const Span& s : t.collector->spans()) {
      if (!first) os << ",\n";
      first = false;
      os << R"({"name":)";
      write_escaped(os, s.tag);
      os << R"(,"cat":")" << to_string(s.category) << R"(","ph":"X","ts":)"
         << format_double(s.start * to_us) << R"(,"dur":)"
         << format_double(s.duration * to_us) << R"(,"pid":)" << t.pid
         << R"(,"tid":)" << t.tid << '}';
    }
  }
  os << "\n]}\n";
}

}  // namespace ncar::trace
