#include "trace/attribution.hpp"

namespace ncar::trace {

Attribution build_attribution(std::span<const Collector* const> tracks) {
  Attribution out;
  out.rows.resize(static_cast<std::size_t>(kCategoryCount));

  for (const Collector* t : tracks) out.total_ticks += t->total_ticks();

  // Non-Other rows: fold each category across tracks, then fold the rows in
  // enum order so the residual below reproduces the documented identity.
  double folded = 0;
  for (int i = 0; i < kCategoryCount; ++i) {
    const Category c = static_cast<Category>(i);
    AttributionRow& row = out.rows[static_cast<std::size_t>(i)];
    row.category = c;
    if (c == Category::Other) continue;
    for (const Collector* t : tracks) row.ticks += t->category_ticks(c);
    folded += row.ticks;
  }

  // Other is the residual, so fold(all rows) == total bit-exactly whenever
  // categorised work dominates (see header).
  out.rows.back().ticks = out.total_ticks - folded;

  if (out.total_ticks != 0) {
    for (AttributionRow& row : out.rows) {
      row.fraction = row.ticks / out.total_ticks;
    }
  }
  return out;
}

}  // namespace ncar::trace
