#include "trace/collector.hpp"

#include <cstdlib>

#include "trace/stream/sink.hpp"

namespace ncar::trace {

namespace {

std::size_t default_max_spans() {
  static const std::size_t value = [] {
    if (const char* env = std::getenv("SX4NCAR_TRACE_MAX_SPANS")) {
      char* end = nullptr;
      const long long parsed = std::strtoll(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    }
    return static_cast<std::size_t>(65536);
  }();
  return value;
}

}  // namespace

Collector::Collector(double seconds_per_tick, std::size_t max_spans)
    : seconds_per_tick_(seconds_per_tick),
      max_spans_(max_spans != 0 ? max_spans : default_max_spans()) {}

void Collector::span(Category c, double start, double ticks,
                     const char* tag) {
  const Mode m = mode();
  if (!spans_enabled(m)) return;
  if (ticks <= 0) return;  // zero-width boxes only clutter the timeline
  if (m == Mode::Stream) {
    // Streamed spans never touch the in-memory buffer: bounded memory is
    // the sink ring's job, and its drop counter stands in for ours.
    if (stream_ != nullptr) {
      stream_->record(c, start, ticks, tag);
    } else {
      ++dropped_;
    }
    return;
  }
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  if (spans_.capacity() == 0) spans_.reserve(max_spans_);
  spans_.push_back(Span{start, ticks, c, tag});
}

void Collector::add(Category c, double start, double ticks,
                    const char* tag) {
  count_total(ticks);
  count(c, ticks);
  span(c, start, ticks, tag);
}

const char* Collector::intern(std::string_view name) {
  // Linear scan: tag cardinality is small (job names, device labels), and
  // interning only happens on span-producing paths.
  for (const std::string& s : interned_) {
    if (s == name) return s.c_str();
  }
  interned_.emplace_back(name);
  return interned_.back().c_str();
}

void Collector::reset() {
  total_ = 0;
  for (double& c : category_) c = 0;
  spans_.clear();
  dropped_ = 0;
  if (stream_ != nullptr) stream_->on_reset();
}

}  // namespace ncar::trace
