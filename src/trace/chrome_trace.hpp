#pragma once
// Chrome trace_event exporter.
//
// Serialises recorded spans as a JSON object trace
// ({"traceEvents":[...]}) in the Trace Event Format understood by
// Perfetto and chrome://tracing. Mapping:
//   * one pid per node (process_name metadata, e.g. "node0"),
//   * one tid per track within the node (thread_name metadata, "cpu3",
//     "runtime", "sfs", "scheduler", ...),
//   * every Span becomes a complete event (ph "X") whose name is the op
//     tag and whose cat is the Category name, with ts/dur in microseconds
//     of simulated time (ticks * seconds_per_tick * 1e6).
//
// Output is deterministic: tracks are emitted in caller order, spans in
// record order, and doubles are rendered with the shortest round-trip
// representation (std::to_chars), so byte-comparing two trace files is a
// valid determinism check.

#include <iosfwd>
#include <span>
#include <string>

#include "trace/collector.hpp"

namespace ncar::trace {

/// One timeline row of the exported trace.
struct TraceTrack {
  const Collector* collector = nullptr;
  int pid = 0;                ///< process id (node index)
  int tid = 0;                ///< thread id within the process (cpu index)
  std::string process_name;   ///< e.g. "node0"
  std::string thread_name;    ///< e.g. "cpu3"
};

/// Write the full trace JSON for `tracks` to `os`.
void write_chrome_trace(std::ostream& os,
                        std::span<const TraceTrack> tracks);

/// Shortest round-trip decimal rendering of `v` (exposed for tests; the
/// bench harness JSON writer follows the same convention, so attribution
/// values survive the JSON round trip bit-exactly).
std::string format_double(double v);

}  // namespace ncar::trace
