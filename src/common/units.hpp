#pragma once
// Unit conversions and human-readable formatting of rates and durations.
//
// The paper reports results in MB/s, Mflops, Gflops, Mcalls/s, and
// minutes:seconds; these helpers keep the bench output in the same units.

#include <string>

#include "common/quantity.hpp"

namespace ncar {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

/// Bytes/second -> MB/s (decimal megabytes, as the paper uses).
inline double to_mb_per_s(double bytes_per_s) { return bytes_per_s / kMega; }
inline double to_mb_per_s(BytesPerSec rate) { return rate.value() / kMega; }

/// Flops/second -> Mflops.
inline double to_mflops(double flops_per_s) { return flops_per_s / kMega; }
inline double to_mflops(FlopsPerSec rate) { return rate.value() / kMega; }

/// Flops/second -> Gflops.
inline double to_gflops(double flops_per_s) { return flops_per_s / kGiga; }
inline double to_gflops(FlopsPerSec rate) { return rate.value() / kGiga; }

/// Format seconds as "Hh MMm SS.Ss" / "MMm SS.Ss" / "SS.Ss".
std::string format_duration(double seconds);
inline std::string format_duration(Seconds s) {
  return format_duration(s.value());
}

/// Format a double with `digits` significant decimals, fixed notation.
std::string format_fixed(double value, int digits);

}  // namespace ncar
