#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>

namespace ncar {

struct ThreadPool::Batch {
  Batch(int n_in, const std::function<void(int)>& fn_in)
      : n(n_in), fn(&fn_in), remaining(n_in) {}

  const int n;
  const std::function<void(int)>* fn;
  std::atomic<int> next{0};
  std::atomic<int> remaining;
  std::mutex mu;
  std::condition_variable done;
  std::exception_ptr error;
  int error_index = std::numeric_limits<int>::max();
};

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_index(Batch& b, int i) {
  try {
    (*b.fn)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lk(b.mu);
    if (i < b.error_index) {
      b.error_index = i;
      b.error = std::current_exception();
    }
  }
  if (b.remaining.fetch_sub(1) == 1) {
    // Take the batch mutex so the notify cannot slip between the waiter's
    // predicate check and its wait.
    std::lock_guard<std::mutex> lk(b.mu);
    b.done.notify_all();
  }
}

void ThreadPool::claim_and_run(Batch& b) {
  for (;;) {
    const int i = b.next.fetch_add(1);
    if (i >= b.n) return;
    run_index(b, i);
  }
}

void ThreadPool::remove(const std::shared_ptr<Batch>& b) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = std::find(active_.begin(), active_.end(), b);
  if (it != active_.end()) active_.erase(it);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !active_.empty(); });
      if (stop_) return;
      b = active_.front();
    }
    claim_and_run(*b);
    remove(b);
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  auto b = std::make_shared<Batch>(n, fn);
  {
    std::lock_guard<std::mutex> lk(mu_);
    active_.push_back(b);
  }
  // Waking every worker for a two-index batch is pure contention; wake only
  // as many as could possibly claim an index alongside the caller.
  const int wake =
      std::min(n - 1, static_cast<int>(workers_.size()));
  for (int k = 0; k < wake; ++k) cv_.notify_one();

  claim_and_run(*b);
  remove(b);
  {
    std::unique_lock<std::mutex> lk(b->mu);
    b->done.wait(lk, [&] { return b->remaining.load() == 0; });
  }
  if (b->error) std::rethrow_exception(b->error);
}

int ThreadPool::configured_host_threads() {
  if (const char* env = std::getenv("SX4NCAR_HOST_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<int>(std::clamp(n, 1L, 1024L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_host_threads());
  return pool;
}

}  // namespace ncar
