#pragma once
// Compile-time dimensional safety for the performance model.
//
// Every number the paper reports (Table 2 bandwidths, Figure 5 MB/s curves,
// Table 7 MOM minutes) flows through model code that used to pass raw
// `double`s — cycles, seconds, bytes and bytes/s were all the same type, so
// a cycles-vs-seconds or decimal-MB-vs-bytes mix-up silently corrupted a
// "reproduced" figure instead of failing the build. Quantity<Dim> is a
// zero-cost phantom-typed wrapper: same-dimension arithmetic works, mixing
// dimensions is a compile error, and cycles<->seconds conversion only
// exists through a MachineConfig clock (sxs::MachineConfig::to_seconds /
// to_cycles), so there is no way to cross that boundary without saying
// which clock you mean.
//
// Design rules:
//  * construction from double is explicit — `Seconds(3.5)` at the boundary,
//    never an accidental promotion;
//  * `value()` is the only way back out — call sites that print or feed the
//    bench reporter unwrap deliberately;
//  * ratios of like quantities are dimensionless doubles (speedups,
//    fractions), so `a / b` of two Seconds is a plain double;
//  * the few physically meaningful cross-dimension products are defined
//    below (Bytes / Seconds = BytesPerSec and friends); everything else
//    does not compile.

#include <compare>

namespace ncar {

template <class Dim>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// The raw magnitude, in this dimension's base unit (see Dim::unit).
  constexpr double value() const { return value_; }

  // --- same-dimension arithmetic -----------------------------------------
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }

  // --- scaling by dimensionless factors ----------------------------------
  friend constexpr Quantity operator*(Quantity q, double s) {
    return Quantity(q.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity q) {
    return Quantity(s * q.value_);
  }
  friend constexpr Quantity operator/(Quantity q, double s) {
    return Quantity(q.value_ / s);
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  /// Ratio of like quantities is dimensionless (speedup, utilisation, ...).
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  constexpr auto operator<=>(const Quantity&) const = default;

 private:
  double value_ = 0.0;
};

namespace dim {
struct Cycles {
  static constexpr const char* unit = "cycles";
};
struct Seconds {
  static constexpr const char* unit = "s";
};
struct Bytes {
  static constexpr const char* unit = "B";
};
struct Words {
  static constexpr const char* unit = "words";
};
struct BytesPerSec {
  static constexpr const char* unit = "B/s";
};
struct Flops {
  static constexpr const char* unit = "flop";
};
struct FlopsPerSec {
  static constexpr const char* unit = "flop/s";
};
}  // namespace dim

using Cycles = Quantity<dim::Cycles>;
using Seconds = Quantity<dim::Seconds>;
using Bytes = Quantity<dim::Bytes>;
using Words = Quantity<dim::Words>;
using BytesPerSec = Quantity<dim::BytesPerSec>;
using Flops = Quantity<dim::Flops>;
using FlopsPerSec = Quantity<dim::FlopsPerSec>;

// --- physically meaningful cross-dimension relations -----------------------

constexpr BytesPerSec operator/(Bytes b, Seconds s) {
  return BytesPerSec(b.value() / s.value());
}
constexpr Seconds operator/(Bytes b, BytesPerSec r) {
  return Seconds(b.value() / r.value());
}
constexpr Bytes operator*(BytesPerSec r, Seconds s) {
  return Bytes(r.value() * s.value());
}
constexpr Bytes operator*(Seconds s, BytesPerSec r) {
  return Bytes(s.value() * r.value());
}

constexpr FlopsPerSec operator/(Flops f, Seconds s) {
  return FlopsPerSec(f.value() / s.value());
}
constexpr Seconds operator/(Flops f, FlopsPerSec r) {
  return Seconds(f.value() / r.value());
}
constexpr Flops operator*(FlopsPerSec r, Seconds s) {
  return Flops(r.value() * s.value());
}
constexpr Flops operator*(Seconds s, FlopsPerSec r) {
  return Flops(s.value() * r.value());
}

/// An SX-4 word is 64 bits (section 2.2: 64-bit-wide SSRAM banks).
inline constexpr double kBytesPerWord = 8.0;

constexpr Bytes to_bytes(Words w) { return Bytes(w.value() * kBytesPerWord); }
constexpr Words to_words(Bytes b) { return Words(b.value() / kBytesPerWord); }

}  // namespace ncar
