#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ncar {

void BestOf::add_time(double seconds) {
  NCAR_REQUIRE(seconds >= 0.0, "negative duration");
  if (trials_ == 0) {
    best_ = worst_ = seconds;
  } else {
    best_ = std::min(best_, seconds);
    worst_ = std::max(worst_, seconds);
  }
  ++trials_;
}

double BestOf::best_time() const {
  NCAR_REQUIRE(trials_ > 0, "no trials recorded");
  return best_;
}

double BestOf::worst_time() const {
  NCAR_REQUIRE(trials_ > 0, "no trials recorded");
  return worst_;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = s.max = xs[0];
  double sum = 0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(s.n);
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / static_cast<double>(s.n - 1)) : 0.0;
  return s;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  NCAR_REQUIRE(a.size() == b.size(), "span length mismatch");
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double max_rel_diff(std::span<const double> a, std::span<const double> b,
                    double floor) {
  NCAR_REQUIRE(a.size() == b.size(), "span length mismatch");
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(std::abs(b[i]), floor);
    m = std::max(m, std::abs(a[i] - b[i]) / denom);
  }
  return m;
}

}  // namespace ncar
