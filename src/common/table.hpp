#pragma once
// Fixed-width text table printer.
//
// Every bench binary reproduces a table or figure from the paper; this
// printer renders them in a uniform, diffable format (left-aligned text
// columns, right-aligned numeric columns, a rule under the header).

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace ncar {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: cells may be built with format_fixed / std::to_string.
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Render with 2-space column gutters.
  void print(std::ostream& os) const;
  std::string str() const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a titled rule ("== title ==================") before a table.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ncar
