#pragma once
// Error handling for the sx4ncar library.
//
// Following the C++ Core Guidelines (E.2, I.6) we throw exceptions for
// precondition violations in library code rather than aborting, so that
// harness code and tests can observe and report them.

#include <stdexcept>
#include <string>

namespace ncar {

/// Exception thrown when a library precondition is violated.
class precondition_error : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

/// Exception thrown when a model configuration is internally inconsistent.
class config_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw precondition_error(std::string(file) + ":" + std::to_string(line) +
                           ": requirement failed: " + expr +
                           (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace ncar

/// Precondition check; throws ncar::precondition_error when `expr` is false.
#define NCAR_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::ncar::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)
