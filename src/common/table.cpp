#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ncar {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NCAR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NCAR_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
             c != '%' && c != ':') {
      return false;
    }
  }
  return digits > 0;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  std::vector<bool> numeric(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
    }
  }
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const std::size_t pad = width[c] - row[c].size();
      if (align_numeric && numeric[c]) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
}

std::string Table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " "
     << std::string(title.size() < 66 ? 66 - title.size() : 2, '=') << "\n\n";
}

}  // namespace ncar
