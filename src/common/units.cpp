#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace ncar {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  // Decide the layout from the value *rounded at display precision*, so
  // 59.996 renders as "1m 00.0s" rather than snprintf carrying it past the
  // unit boundary into "60.00s".
  if (std::round(seconds * 100.0) / 100.0 < 60.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
    return buf;
  }
  const double rounded = std::round(seconds * 10.0) / 10.0;
  const long total = static_cast<long>(rounded);
  const long h = total / 3600;
  const long m = (total % 3600) / 60;
  const double s = rounded - static_cast<double>(h * 3600 + m * 60);
  if (h > 0) {
    std::snprintf(buf, sizeof buf, "%ldh %02ldm %04.1fs", h, m, s);
  } else {
    std::snprintf(buf, sizeof buf, "%ldm %04.1fs", m, s);
  }
  return buf;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace ncar
