#pragma once
// Owning multi-dimensional arrays with contiguous, aligned storage.
//
// The geophysical models in this repository are Fortran re-implementations;
// these arrays use column-major ("leftmost index fastest") layout to keep the
// loop structure of the original codes — the loop ordering is the entire
// point of the RFFT/VFFT coding-style benchmark (paper section 4.3).

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ncar {

/// 2-D column-major array: a(i, j) with `i` fastest (Fortran a(ni, nj)).
template <typename T>
class Array2D {
public:
  Array2D() = default;
  Array2D(std::size_t ni, std::size_t nj, T init = T{})
      : ni_(ni), nj_(nj), data_(ni * nj, init) {}

  T& operator()(std::size_t i, std::size_t j) {
    return data_[i + ni_ * j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    return data_[i + ni_ * j];
  }

  std::size_t ni() const { return ni_; }
  std::size_t nj() const { return nj_; }
  std::size_t size() const { return data_.size(); }

  std::span<T> flat() { return data_; }
  std::span<const T> flat() const { return data_; }

  /// Column j as a contiguous span (the unit-stride axis).
  std::span<T> column(std::size_t j) {
    NCAR_REQUIRE(j < nj_, "column index");
    return std::span<T>(data_.data() + ni_ * j, ni_);
  }
  std::span<const T> column(std::size_t j) const {
    NCAR_REQUIRE(j < nj_, "column index");
    return std::span<const T>(data_.data() + ni_ * j, ni_);
  }

  void fill(T v) { data_.assign(data_.size(), v); }

private:
  std::size_t ni_ = 0, nj_ = 0;
  std::vector<T> data_;
};

/// 3-D column-major array: a(i, j, k) with `i` fastest (Fortran a(ni,nj,nk)).
template <typename T>
class Array3D {
public:
  Array3D() = default;
  Array3D(std::size_t ni, std::size_t nj, std::size_t nk, T init = T{})
      : ni_(ni), nj_(nj), nk_(nk), data_(ni * nj * nk, init) {}

  T& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[i + ni_ * (j + nj_ * k)];
  }
  const T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[i + ni_ * (j + nj_ * k)];
  }

  std::size_t ni() const { return ni_; }
  std::size_t nj() const { return nj_; }
  std::size_t nk() const { return nk_; }
  std::size_t size() const { return data_.size(); }

  std::span<T> flat() { return data_; }
  std::span<const T> flat() const { return data_; }

  /// Contiguous (i, j) plane at level k.
  std::span<T> plane(std::size_t k) {
    NCAR_REQUIRE(k < nk_, "plane index");
    return std::span<T>(data_.data() + ni_ * nj_ * k, ni_ * nj_);
  }
  std::span<const T> plane(std::size_t k) const {
    NCAR_REQUIRE(k < nk_, "plane index");
    return std::span<const T>(data_.data() + ni_ * nj_ * k, ni_ * nj_);
  }

  void fill(T v) { data_.assign(data_.size(), v); }

private:
  std::size_t ni_ = 0, nj_ = 0, nk_ = 0;
  std::vector<T> data_;
};

}  // namespace ncar
