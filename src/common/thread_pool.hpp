#pragma once
// A small fork-join host thread pool used to run simulated-CPU work bodies
// concurrently on the host.
//
// The pool distributes the indices of a `parallel_for` through a shared
// atomic counter, so idle threads steal whatever indices remain — a blocked
// caller never waits on an *unclaimed* index, it claims and runs it itself.
// That property makes nested `parallel_for` calls (a Machine region fanning
// out per node, each node fanning out per rank) deadlock-free even with a
// single host thread: every batch is fully driven by at least its initiating
// thread.
//
// The pool moves *host* work around; it must never change *simulated*
// results. Callers are responsible for handing it bodies whose side effects
// are confined to per-index state (see Node::parallel).

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ncar {

class ThreadPool {
public:
  /// A pool of `threads` host threads in total, counting the caller of
  /// `parallel_for`; `threads - 1` workers are spawned. `threads <= 1`
  /// spawns no workers, and `parallel_for` degenerates to an inline loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Host threads participating in parallel_for, including the caller.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run `fn(i)` for every i in [0, n), concurrently, returning when all
  /// calls have completed. The calling thread participates. If any calls
  /// throw, the exception thrown by the *lowest* index is rethrown (after
  /// every claimed index has finished), so propagation is deterministic.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// The process-wide pool, lazily created with `configured_host_threads()`
  /// threads on first use.
  static ThreadPool& global();

  /// Host thread count from SX4NCAR_HOST_THREADS, falling back to
  /// std::thread::hardware_concurrency() when unset or unparsable.
  static int configured_host_threads();

private:
  struct Batch;

  void worker_loop();
  static void run_index(Batch& b, int i);
  static void claim_and_run(Batch& b);
  void remove(const std::shared_ptr<Batch>& b);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> active_;
  bool stop_ = false;
};

}  // namespace ncar
