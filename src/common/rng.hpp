#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// Benchmarks and tests must be reproducible run-to-run, so all randomness in
// the repository flows through this splitmix64/xoshiro256** generator with
// explicit seeds (never std::random_device).

#include <cstdint>

namespace ncar {

/// xoshiro256** by Blackman & Vigna — small, fast, and high quality; state is
/// seeded via splitmix64 so that any 64-bit seed gives a well-mixed state.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's unbiased bounded generation (approximation without widening
    // rejection is fine here: n is always far below 2^64 in this codebase).
    return next_u64() % n;
  }

private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ncar
