#pragma once
// Small statistics helpers used by the benchmark harnesses.
//
// The NCAR suite's KTRIES convention (paper section 4): each experiment is
// repeated KTRIES times and the *best* performance is reported. BestOf
// implements exactly that policy; Summary provides the usual moments for
// tests and diagnostics.

#include <span>
#include <vector>

namespace ncar {

/// Accumulates repeated measurements and reports the best (minimum time /
/// maximum rate), per the suite's KTRIES rule.
class BestOf {
public:
  void add_time(double seconds);

  int trials() const { return trials_; }
  double best_time() const;       ///< minimum observed time (seconds)
  double worst_time() const;      ///< maximum observed time (seconds)
  bool empty() const { return trials_ == 0; }

private:
  int trials_ = 0;
  double best_ = 0, worst_ = 0;
};

/// Descriptive statistics over a sample.
struct Summary {
  std::size_t n = 0;
  double min = 0, max = 0, mean = 0, stddev = 0;
};

Summary summarize(std::span<const double> xs);

/// Max |a-b| over paired spans; spans must be the same length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// Max |a-b| / max(|b|, floor) over paired spans (relative error).
double max_rel_diff(std::span<const double> a, std::span<const double> b,
                    double floor = 1e-300);

}  // namespace ncar
