#pragma once
// Memoization cache for analytic cost evaluations.
//
// The timing model prices the same operation descriptor over and over: every
// latitude row of CCM2 charges the same Legendre-pass VectorOp, every SOR
// sweep of MOM re-prices the same per-row stencil op, and the PRODLOAD /
// ensemble replays repeat whole charge sequences. The priced cost is a pure
// function of (descriptor, machine configuration), so each distinct
// descriptor needs to be evaluated exactly once per evaluator.
//
// CostCache is a small open-addressing hash table (linear probing) from a
// descriptor key to its cached double. Determinism argument: the cached
// value IS the double the uncached evaluation produced on first sight, so a
// hit replays the bit-identical result — simulated numbers cannot drift, no
// matter how the cache behaves. The hits()/misses() counters are threaded
// into the bench reporter JSON so the win stays observable.
//
// Sizing: the table grows by doubling at 50% load until `kMaxSlots`; past
// that, a colliding insert overwrites the oldest slot of its probe window.
// Both policies depend only on the insertion sequence, so counter values are
// deterministic and policy-invariant (each sxs::Cpu owns its caches and is
// charged by exactly one rank at a time).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ncar {

/// Mix a field's hash into a running seed (boost-style combiner).
inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

template <class Key, class Hash, class Eq = std::equal_to<Key>>
class CostCache {
public:
  explicit CostCache(std::size_t initial_slots = 256)
      : slots_(initial_slots) {
    NCAR_REQUIRE(initial_slots >= kProbeWindow &&
                     (initial_slots & (initial_slots - 1)) == 0,
                 "slot count must be a power of two");
  }

  /// The cached cost of `key`, computing it with `compute()` on first sight.
  template <class Fn>
  double get(const Key& key, Fn&& compute) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = Hash{}(key)&mask;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      Slot& s = slots_[(pos + probe) & mask];
      if (!s.used) {
        ++misses_;
        s.key = key;
        // Return the local copy, not s.value: grow() reallocates the slot
        // vector, which would leave `s` dangling.
        const double value = compute();
        s.value = value;
        s.used = true;
        if (++occupied_ * 2 > slots_.size()) grow();
        return value;
      }
      if (Eq{}(s.key, key)) {
        ++hits_;
        return s.value;
      }
    }
    // Probe window exhausted (only reachable at kMaxSlots): overwrite the
    // window's rotating victim. Deterministic in the insertion sequence.
    ++misses_;
    Slot& victim = slots_[(pos + evict_rotor_++ % kProbeWindow) & mask];
    victim.key = key;
    victim.value = compute();
    victim.used = true;
    return victim.value;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return occupied_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Drop every entry and zero the counters.
  void clear() {
    slots_.assign(slots_.size(), Slot{});
    occupied_ = 0;
    hits_ = misses_ = 0;
    evict_rotor_ = 0;
  }

private:
  struct Slot {
    Key key{};
    double value = 0.0;
    bool used = false;
  };

  static constexpr std::size_t kProbeWindow = 16;
  static constexpr std::size_t kMaxSlots = 1u << 16;

  void grow() {
    if (slots_.size() >= kMaxSlots) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t pos = Hash{}(s.key) & mask;
      while (slots_[pos].used) pos = (pos + 1) & mask;
      slots_[pos] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t occupied_ = 0;
  std::size_t evict_rotor_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ncar
