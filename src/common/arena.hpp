#pragma once
// Bump-pointer workspace arena for allocation-free hot paths.
//
// Kernel step functions used to construct per-step std::vector workspaces;
// under the sema-hot-alloc discipline the hot path must not allocate. An
// Arena owns one pre-sized pool (allocated at setup time) and hands out
// spans by bumping an offset — take() never touches the heap. ArenaScope
// restores the offset on scope exit, so nested transforms (SHT -> real FFT)
// stack their workspaces like frames.
//
// The pool is sized once while idle (reserve() requires no spans are live);
// overflowing a take() is a precondition error, not a grow — growth on the
// hot path is exactly the bug the arena exists to remove.

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ncar {

class Arena {
public:
  Arena() = default;
  explicit Arena(std::size_t doubles) { reserve(doubles); }

  /// (Re)size the pool, in units of doubles. Only legal while no spans are
  /// outstanding — the pool may move.
  void reserve(std::size_t doubles) {
    NCAR_REQUIRE(used_ == 0, "cannot resize an arena with live spans");
    if (doubles > pool_.size()) pool_.resize(doubles);
  }

  /// Bump-allocate `count` objects of trivially-destructible type T
  /// (alignment at most that of double). Contents are uninitialised.
  template <typename T>
  std::span<T> take(std::size_t count) {
    static_assert(alignof(T) <= alignof(double),
                  "arena storage is double-aligned");
    static_assert(sizeof(T) % sizeof(double) == 0,
                  "arena is sized in doubles");
    const std::size_t doubles = count * (sizeof(T) / sizeof(double));
    NCAR_REQUIRE(used_ + doubles <= pool_.size(), "arena overflow");
    T* p = reinterpret_cast<T*>(pool_.data() + used_);
    used_ += doubles;
    return std::span<T>(p, count);
  }

  /// Current offset; pass back to release_to() to drop everything taken
  /// since. ArenaScope does this automatically.
  std::size_t mark() const { return used_; }
  void release_to(std::size_t m) {
    NCAR_REQUIRE(m <= used_, "arena release past the live frontier");
    used_ = m;
  }

  std::size_t capacity() const { return pool_.size(); }
  std::size_t used() const { return used_; }

private:
  std::vector<double> pool_;
  std::size_t used_ = 0;
};

/// RAII frame: releases everything taken from `arena` since construction.
class ArenaScope {
public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_->release_to(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

private:
  Arena* arena_;
  std::size_t mark_;
};

}  // namespace ncar
