file(REMOVE_RECURSE
  "CMakeFiles/ocean_spinup.dir/ocean_spinup.cpp.o"
  "CMakeFiles/ocean_spinup.dir/ocean_spinup.cpp.o.d"
  "ocean_spinup"
  "ocean_spinup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_spinup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
