# Empty dependencies file for procurement_shootout.
# This may be replaced when dependencies are built.
