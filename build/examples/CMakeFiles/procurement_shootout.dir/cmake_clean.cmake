file(REMOVE_RECURSE
  "CMakeFiles/procurement_shootout.dir/procurement_shootout.cpp.o"
  "CMakeFiles/procurement_shootout.dir/procurement_shootout.cpp.o.d"
  "procurement_shootout"
  "procurement_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procurement_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
