file(REMOVE_RECURSE
  "../bench/pop_sx4"
  "../bench/pop_sx4.pdb"
  "CMakeFiles/pop_sx4.dir/pop_sx4.cpp.o"
  "CMakeFiles/pop_sx4.dir/pop_sx4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_sx4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
