# Empty compiler generated dependencies file for pop_sx4.
# This may be replaced when dependencies are built.
