file(REMOVE_RECURSE
  "../bench/micro_substrates"
  "../bench/micro_substrates.pdb"
  "CMakeFiles/micro_substrates.dir/micro_substrates.cpp.o"
  "CMakeFiles/micro_substrates.dir/micro_substrates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
