# Empty dependencies file for radabs_sx4.
# This may be replaced when dependencies are built.
