file(REMOVE_RECURSE
  "../bench/radabs_sx4"
  "../bench/radabs_sx4.pdb"
  "CMakeFiles/radabs_sx4.dir/radabs_sx4.cpp.o"
  "CMakeFiles/radabs_sx4.dir/radabs_sx4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radabs_sx4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
