# Empty compiler generated dependencies file for table1_hint_radabs.
# This may be replaced when dependencies are built.
