file(REMOVE_RECURSE
  "../bench/table1_hint_radabs"
  "../bench/table1_hint_radabs.pdb"
  "CMakeFiles/table1_hint_radabs.dir/table1_hint_radabs.cpp.o"
  "CMakeFiles/table1_hint_radabs.dir/table1_hint_radabs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hint_radabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
