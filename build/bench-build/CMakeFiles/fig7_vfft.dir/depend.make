# Empty dependencies file for fig7_vfft.
# This may be replaced when dependencies are built.
