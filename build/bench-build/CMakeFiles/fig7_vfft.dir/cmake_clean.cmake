file(REMOVE_RECURSE
  "../bench/fig7_vfft"
  "../bench/fig7_vfft.pdb"
  "CMakeFiles/fig7_vfft.dir/fig7_vfft.cpp.o"
  "CMakeFiles/fig7_vfft.dir/fig7_vfft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
