file(REMOVE_RECURSE
  "../bench/fig5_membw"
  "../bench/fig5_membw.pdb"
  "CMakeFiles/fig5_membw.dir/fig5_membw.cpp.o"
  "CMakeFiles/fig5_membw.dir/fig5_membw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
