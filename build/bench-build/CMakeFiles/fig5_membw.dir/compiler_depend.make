# Empty compiler generated dependencies file for fig5_membw.
# This may be replaced when dependencies are built.
