file(REMOVE_RECURSE
  "../bench/table6_ensemble"
  "../bench/table6_ensemble.pdb"
  "CMakeFiles/table6_ensemble.dir/table6_ensemble.cpp.o"
  "CMakeFiles/table6_ensemble.dir/table6_ensemble.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
