# Empty compiler generated dependencies file for table6_ensemble.
# This may be replaced when dependencies are built.
