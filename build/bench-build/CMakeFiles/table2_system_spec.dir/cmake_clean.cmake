file(REMOVE_RECURSE
  "../bench/table2_system_spec"
  "../bench/table2_system_spec.pdb"
  "CMakeFiles/table2_system_spec.dir/table2_system_spec.cpp.o"
  "CMakeFiles/table2_system_spec.dir/table2_system_spec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_system_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
