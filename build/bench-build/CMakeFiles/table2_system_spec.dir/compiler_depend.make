# Empty compiler generated dependencies file for table2_system_spec.
# This may be replaced when dependencies are built.
