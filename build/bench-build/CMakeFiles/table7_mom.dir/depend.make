# Empty dependencies file for table7_mom.
# This may be replaced when dependencies are built.
