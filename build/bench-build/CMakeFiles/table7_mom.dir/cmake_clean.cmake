file(REMOVE_RECURSE
  "../bench/table7_mom"
  "../bench/table7_mom.pdb"
  "CMakeFiles/table7_mom.dir/table7_mom.cpp.o"
  "CMakeFiles/table7_mom.dir/table7_mom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_mom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
