file(REMOVE_RECURSE
  "../bench/table5_ccm2_year"
  "../bench/table5_ccm2_year.pdb"
  "CMakeFiles/table5_ccm2_year.dir/table5_ccm2_year.cpp.o"
  "CMakeFiles/table5_ccm2_year.dir/table5_ccm2_year.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ccm2_year.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
