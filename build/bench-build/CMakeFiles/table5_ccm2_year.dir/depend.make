# Empty dependencies file for table5_ccm2_year.
# This may be replaced when dependencies are built.
