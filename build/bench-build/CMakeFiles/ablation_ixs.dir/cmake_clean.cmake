file(REMOVE_RECURSE
  "../bench/ablation_ixs"
  "../bench/ablation_ixs.pdb"
  "CMakeFiles/ablation_ixs.dir/ablation_ixs.cpp.o"
  "CMakeFiles/ablation_ixs.dir/ablation_ixs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ixs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
