# Empty dependencies file for ablation_ixs.
# This may be replaced when dependencies are built.
