# Empty dependencies file for fig6_rfft.
# This may be replaced when dependencies are built.
