file(REMOVE_RECURSE
  "../bench/fig6_rfft"
  "../bench/fig6_rfft.pdb"
  "CMakeFiles/fig6_rfft.dir/fig6_rfft.cpp.o"
  "CMakeFiles/fig6_rfft.dir/fig6_rfft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
