file(REMOVE_RECURSE
  "../bench/prodload"
  "../bench/prodload.pdb"
  "CMakeFiles/prodload.dir/prodload.cpp.o"
  "CMakeFiles/prodload.dir/prodload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
