# Empty compiler generated dependencies file for prodload.
# This may be replaced when dependencies are built.
