# Empty dependencies file for table3_elefunt.
# This may be replaced when dependencies are built.
