file(REMOVE_RECURSE
  "../bench/table3_elefunt"
  "../bench/table3_elefunt.pdb"
  "CMakeFiles/table3_elefunt.dir/table3_elefunt.cpp.o"
  "CMakeFiles/table3_elefunt.dir/table3_elefunt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_elefunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
