# Empty compiler generated dependencies file for io_hippi_network.
# This may be replaced when dependencies are built.
