file(REMOVE_RECURSE
  "../bench/io_hippi_network"
  "../bench/io_hippi_network.pdb"
  "CMakeFiles/io_hippi_network.dir/io_hippi_network.cpp.o"
  "CMakeFiles/io_hippi_network.dir/io_hippi_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_hippi_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
