file(REMOVE_RECURSE
  "../bench/fig8_ccm2"
  "../bench/fig8_ccm2.pdb"
  "CMakeFiles/fig8_ccm2.dir/fig8_ccm2.cpp.o"
  "CMakeFiles/fig8_ccm2.dir/fig8_ccm2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ccm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
