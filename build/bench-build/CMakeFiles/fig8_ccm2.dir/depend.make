# Empty dependencies file for fig8_ccm2.
# This may be replaced when dependencies are built.
