# Empty compiler generated dependencies file for sx4ncar.
# This may be replaced when dependencies are built.
