file(REMOVE_RECURSE
  "libsx4ncar.a"
)
