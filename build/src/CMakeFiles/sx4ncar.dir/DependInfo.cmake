
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccm2/model.cpp" "src/CMakeFiles/sx4ncar.dir/ccm2/model.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/ccm2/model.cpp.o.d"
  "/root/repo/src/ccm2/resolution.cpp" "src/CMakeFiles/sx4ncar.dir/ccm2/resolution.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/ccm2/resolution.cpp.o.d"
  "/root/repo/src/ccm2/slt.cpp" "src/CMakeFiles/sx4ncar.dir/ccm2/slt.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/ccm2/slt.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/sx4ncar.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/sx4ncar.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/common/table.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/sx4ncar.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/common/units.cpp.o.d"
  "/root/repo/src/fft/complex_fft.cpp" "src/CMakeFiles/sx4ncar.dir/fft/complex_fft.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/fft/complex_fft.cpp.o.d"
  "/root/repo/src/fft/real_fft.cpp" "src/CMakeFiles/sx4ncar.dir/fft/real_fft.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/fft/real_fft.cpp.o.d"
  "/root/repo/src/fft/style_bench.cpp" "src/CMakeFiles/sx4ncar.dir/fft/style_bench.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/fft/style_bench.cpp.o.d"
  "/root/repo/src/fpt/elefunt.cpp" "src/CMakeFiles/sx4ncar.dir/fpt/elefunt.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/fpt/elefunt.cpp.o.d"
  "/root/repo/src/fpt/paranoia.cpp" "src/CMakeFiles/sx4ncar.dir/fpt/paranoia.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/fpt/paranoia.cpp.o.d"
  "/root/repo/src/hint/hint.cpp" "src/CMakeFiles/sx4ncar.dir/hint/hint.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/hint/hint.cpp.o.d"
  "/root/repo/src/iosim/disk.cpp" "src/CMakeFiles/sx4ncar.dir/iosim/disk.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/iosim/disk.cpp.o.d"
  "/root/repo/src/iosim/hippi.cpp" "src/CMakeFiles/sx4ncar.dir/iosim/hippi.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/iosim/hippi.cpp.o.d"
  "/root/repo/src/iosim/history.cpp" "src/CMakeFiles/sx4ncar.dir/iosim/history.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/iosim/history.cpp.o.d"
  "/root/repo/src/iosim/network.cpp" "src/CMakeFiles/sx4ncar.dir/iosim/network.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/iosim/network.cpp.o.d"
  "/root/repo/src/iosim/sfs.cpp" "src/CMakeFiles/sx4ncar.dir/iosim/sfs.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/iosim/sfs.cpp.o.d"
  "/root/repo/src/iosim/xmu_array.cpp" "src/CMakeFiles/sx4ncar.dir/iosim/xmu_array.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/iosim/xmu_array.cpp.o.d"
  "/root/repo/src/kernels/memory_kernels.cpp" "src/CMakeFiles/sx4ncar.dir/kernels/memory_kernels.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/kernels/memory_kernels.cpp.o.d"
  "/root/repo/src/machines/comparator.cpp" "src/CMakeFiles/sx4ncar.dir/machines/comparator.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/machines/comparator.cpp.o.d"
  "/root/repo/src/ocean/mask.cpp" "src/CMakeFiles/sx4ncar.dir/ocean/mask.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/ocean/mask.cpp.o.d"
  "/root/repo/src/ocean/mom.cpp" "src/CMakeFiles/sx4ncar.dir/ocean/mom.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/ocean/mom.cpp.o.d"
  "/root/repo/src/ocean/pop.cpp" "src/CMakeFiles/sx4ncar.dir/ocean/pop.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/ocean/pop.cpp.o.d"
  "/root/repo/src/prodload/nqs.cpp" "src/CMakeFiles/sx4ncar.dir/prodload/nqs.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/prodload/nqs.cpp.o.d"
  "/root/repo/src/prodload/scheduler.cpp" "src/CMakeFiles/sx4ncar.dir/prodload/scheduler.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/prodload/scheduler.cpp.o.d"
  "/root/repo/src/radabs/radabs.cpp" "src/CMakeFiles/sx4ncar.dir/radabs/radabs.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/radabs/radabs.cpp.o.d"
  "/root/repo/src/spectral/gauss.cpp" "src/CMakeFiles/sx4ncar.dir/spectral/gauss.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/spectral/gauss.cpp.o.d"
  "/root/repo/src/spectral/legendre.cpp" "src/CMakeFiles/sx4ncar.dir/spectral/legendre.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/spectral/legendre.cpp.o.d"
  "/root/repo/src/spectral/sht.cpp" "src/CMakeFiles/sx4ncar.dir/spectral/sht.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/spectral/sht.cpp.o.d"
  "/root/repo/src/sxs/cache_sim.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/cache_sim.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/cache_sim.cpp.o.d"
  "/root/repo/src/sxs/cpu.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/cpu.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/cpu.cpp.o.d"
  "/root/repo/src/sxs/ixs.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/ixs.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/ixs.cpp.o.d"
  "/root/repo/src/sxs/machine.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/machine.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/machine.cpp.o.d"
  "/root/repo/src/sxs/machine_config.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/machine_config.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/machine_config.cpp.o.d"
  "/root/repo/src/sxs/memory_model.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/memory_model.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/memory_model.cpp.o.d"
  "/root/repo/src/sxs/node.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/node.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/node.cpp.o.d"
  "/root/repo/src/sxs/ops.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/ops.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/ops.cpp.o.d"
  "/root/repo/src/sxs/resource_block.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/resource_block.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/resource_block.cpp.o.d"
  "/root/repo/src/sxs/scalar_unit.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/scalar_unit.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/scalar_unit.cpp.o.d"
  "/root/repo/src/sxs/vector_unit.cpp" "src/CMakeFiles/sx4ncar.dir/sxs/vector_unit.cpp.o" "gcc" "src/CMakeFiles/sx4ncar.dir/sxs/vector_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
