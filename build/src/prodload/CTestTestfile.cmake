# CMake generated Testfile for 
# Source directory: /root/repo/src/prodload
# Build directory: /root/repo/build/src/prodload
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
