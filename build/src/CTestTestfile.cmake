# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sxs")
subdirs("machines")
subdirs("fpt")
subdirs("kernels")
subdirs("fft")
subdirs("radabs")
subdirs("hint")
subdirs("iosim")
subdirs("prodload")
subdirs("spectral")
subdirs("ccm2")
subdirs("ocean")
