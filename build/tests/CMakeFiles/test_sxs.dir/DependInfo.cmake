
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sxs/test_cache_sim.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_cache_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_cache_sim.cpp.o.d"
  "/root/repo/tests/sxs/test_cpu.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_cpu.cpp.o.d"
  "/root/repo/tests/sxs/test_cycle_breakdown.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_cycle_breakdown.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_cycle_breakdown.cpp.o.d"
  "/root/repo/tests/sxs/test_ixs.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_ixs.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_ixs.cpp.o.d"
  "/root/repo/tests/sxs/test_machine_config.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_machine_config.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_machine_config.cpp.o.d"
  "/root/repo/tests/sxs/test_machine_parallel.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_machine_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_machine_parallel.cpp.o.d"
  "/root/repo/tests/sxs/test_memory_model.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_memory_model.cpp.o.d"
  "/root/repo/tests/sxs/test_node.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_node.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_node.cpp.o.d"
  "/root/repo/tests/sxs/test_properties.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_properties.cpp.o.d"
  "/root/repo/tests/sxs/test_resource_block.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_resource_block.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_resource_block.cpp.o.d"
  "/root/repo/tests/sxs/test_scalar_unit.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_scalar_unit.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_scalar_unit.cpp.o.d"
  "/root/repo/tests/sxs/test_vector_unit.cpp" "tests/CMakeFiles/test_sxs.dir/sxs/test_vector_unit.cpp.o" "gcc" "tests/CMakeFiles/test_sxs.dir/sxs/test_vector_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sx4ncar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
