file(REMOVE_RECURSE
  "CMakeFiles/test_sxs.dir/sxs/test_cache_sim.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_cache_sim.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_cpu.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_cpu.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_cycle_breakdown.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_cycle_breakdown.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_ixs.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_ixs.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_machine_config.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_machine_config.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_machine_parallel.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_machine_parallel.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_memory_model.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_memory_model.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_node.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_node.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_properties.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_properties.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_resource_block.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_resource_block.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_scalar_unit.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_scalar_unit.cpp.o.d"
  "CMakeFiles/test_sxs.dir/sxs/test_vector_unit.cpp.o"
  "CMakeFiles/test_sxs.dir/sxs/test_vector_unit.cpp.o.d"
  "test_sxs"
  "test_sxs.pdb"
  "test_sxs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sxs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
