# Empty dependencies file for test_sxs.
# This may be replaced when dependencies are built.
