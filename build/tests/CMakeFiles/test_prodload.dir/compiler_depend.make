# Empty compiler generated dependencies file for test_prodload.
# This may be replaced when dependencies are built.
