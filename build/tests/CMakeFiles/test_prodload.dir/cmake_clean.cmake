file(REMOVE_RECURSE
  "CMakeFiles/test_prodload.dir/prodload/test_nqs.cpp.o"
  "CMakeFiles/test_prodload.dir/prodload/test_nqs.cpp.o.d"
  "CMakeFiles/test_prodload.dir/prodload/test_scheduler.cpp.o"
  "CMakeFiles/test_prodload.dir/prodload/test_scheduler.cpp.o.d"
  "test_prodload"
  "test_prodload.pdb"
  "test_prodload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prodload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
