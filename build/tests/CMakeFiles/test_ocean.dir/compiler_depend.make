# Empty compiler generated dependencies file for test_ocean.
# This may be replaced when dependencies are built.
