file(REMOVE_RECURSE
  "CMakeFiles/test_ocean.dir/ocean/test_mask.cpp.o"
  "CMakeFiles/test_ocean.dir/ocean/test_mask.cpp.o.d"
  "CMakeFiles/test_ocean.dir/ocean/test_mom.cpp.o"
  "CMakeFiles/test_ocean.dir/ocean/test_mom.cpp.o.d"
  "CMakeFiles/test_ocean.dir/ocean/test_pop.cpp.o"
  "CMakeFiles/test_ocean.dir/ocean/test_pop.cpp.o.d"
  "test_ocean"
  "test_ocean.pdb"
  "test_ocean[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
