file(REMOVE_RECURSE
  "CMakeFiles/test_ccm2.dir/ccm2/test_checkpoint.cpp.o"
  "CMakeFiles/test_ccm2.dir/ccm2/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_ccm2.dir/ccm2/test_dynamics.cpp.o"
  "CMakeFiles/test_ccm2.dir/ccm2/test_dynamics.cpp.o.d"
  "CMakeFiles/test_ccm2.dir/ccm2/test_model.cpp.o"
  "CMakeFiles/test_ccm2.dir/ccm2/test_model.cpp.o.d"
  "CMakeFiles/test_ccm2.dir/ccm2/test_slt.cpp.o"
  "CMakeFiles/test_ccm2.dir/ccm2/test_slt.cpp.o.d"
  "test_ccm2"
  "test_ccm2.pdb"
  "test_ccm2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
