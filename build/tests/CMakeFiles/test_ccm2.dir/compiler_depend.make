# Empty compiler generated dependencies file for test_ccm2.
# This may be replaced when dependencies are built.
