
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/iosim/test_disk.cpp" "tests/CMakeFiles/test_iosim.dir/iosim/test_disk.cpp.o" "gcc" "tests/CMakeFiles/test_iosim.dir/iosim/test_disk.cpp.o.d"
  "/root/repo/tests/iosim/test_hippi_network.cpp" "tests/CMakeFiles/test_iosim.dir/iosim/test_hippi_network.cpp.o" "gcc" "tests/CMakeFiles/test_iosim.dir/iosim/test_hippi_network.cpp.o.d"
  "/root/repo/tests/iosim/test_history.cpp" "tests/CMakeFiles/test_iosim.dir/iosim/test_history.cpp.o" "gcc" "tests/CMakeFiles/test_iosim.dir/iosim/test_history.cpp.o.d"
  "/root/repo/tests/iosim/test_sfs.cpp" "tests/CMakeFiles/test_iosim.dir/iosim/test_sfs.cpp.o" "gcc" "tests/CMakeFiles/test_iosim.dir/iosim/test_sfs.cpp.o.d"
  "/root/repo/tests/iosim/test_xmu_array.cpp" "tests/CMakeFiles/test_iosim.dir/iosim/test_xmu_array.cpp.o" "gcc" "tests/CMakeFiles/test_iosim.dir/iosim/test_xmu_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sx4ncar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
