file(REMOVE_RECURSE
  "CMakeFiles/test_iosim.dir/iosim/test_disk.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/test_disk.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/test_hippi_network.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/test_hippi_network.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/test_history.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/test_history.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/test_sfs.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/test_sfs.cpp.o.d"
  "CMakeFiles/test_iosim.dir/iosim/test_xmu_array.cpp.o"
  "CMakeFiles/test_iosim.dir/iosim/test_xmu_array.cpp.o.d"
  "test_iosim"
  "test_iosim.pdb"
  "test_iosim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
