# Empty dependencies file for test_radabs.
# This may be replaced when dependencies are built.
