file(REMOVE_RECURSE
  "CMakeFiles/test_radabs.dir/radabs/test_radabs.cpp.o"
  "CMakeFiles/test_radabs.dir/radabs/test_radabs.cpp.o.d"
  "test_radabs"
  "test_radabs.pdb"
  "test_radabs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
