
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fpt/test_elefunt.cpp" "tests/CMakeFiles/test_fpt.dir/fpt/test_elefunt.cpp.o" "gcc" "tests/CMakeFiles/test_fpt.dir/fpt/test_elefunt.cpp.o.d"
  "/root/repo/tests/fpt/test_paranoia.cpp" "tests/CMakeFiles/test_fpt.dir/fpt/test_paranoia.cpp.o" "gcc" "tests/CMakeFiles/test_fpt.dir/fpt/test_paranoia.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sx4ncar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
