file(REMOVE_RECURSE
  "CMakeFiles/test_fpt.dir/fpt/test_elefunt.cpp.o"
  "CMakeFiles/test_fpt.dir/fpt/test_elefunt.cpp.o.d"
  "CMakeFiles/test_fpt.dir/fpt/test_paranoia.cpp.o"
  "CMakeFiles/test_fpt.dir/fpt/test_paranoia.cpp.o.d"
  "test_fpt"
  "test_fpt.pdb"
  "test_fpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
