
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fft/test_complex_fft.cpp" "tests/CMakeFiles/test_fft.dir/fft/test_complex_fft.cpp.o" "gcc" "tests/CMakeFiles/test_fft.dir/fft/test_complex_fft.cpp.o.d"
  "/root/repo/tests/fft/test_real_fft.cpp" "tests/CMakeFiles/test_fft.dir/fft/test_real_fft.cpp.o" "gcc" "tests/CMakeFiles/test_fft.dir/fft/test_real_fft.cpp.o.d"
  "/root/repo/tests/fft/test_style_bench.cpp" "tests/CMakeFiles/test_fft.dir/fft/test_style_bench.cpp.o" "gcc" "tests/CMakeFiles/test_fft.dir/fft/test_style_bench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sx4ncar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
