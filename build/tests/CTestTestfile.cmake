# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sxs[1]_include.cmake")
include("/root/repo/build/tests/test_machines[1]_include.cmake")
include("/root/repo/build/tests/test_fpt[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_hint[1]_include.cmake")
include("/root/repo/build/tests/test_spectral[1]_include.cmake")
include("/root/repo/build/tests/test_radabs[1]_include.cmake")
include("/root/repo/build/tests/test_iosim[1]_include.cmake")
include("/root/repo/build/tests/test_prodload[1]_include.cmake")
include("/root/repo/build/tests/test_ccm2[1]_include.cmake")
include("/root/repo/build/tests/test_ocean[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
