#include "fpt/paranoia.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ncar::fpt;

TEST(Paranoia, DiscoverRadixIsTwo) { EXPECT_EQ(discover_radix(), 2); }

TEST(Paranoia, DiscoverDigitsIs53) { EXPECT_EQ(discover_digits(), 53); }

TEST(Paranoia, GuardDigitPresent) { EXPECT_TRUE(check_guard_digit()); }

TEST(Paranoia, RoundsToNearestEven) { EXPECT_TRUE(check_round_to_nearest()); }

TEST(Paranoia, SmallIntegerArithmeticExact) {
  EXPECT_TRUE(check_small_integer_arithmetic());
}

TEST(Paranoia, SqrtExactOnPerfectSquares) {
  EXPECT_TRUE(check_sqrt_exactness());
}

TEST(Paranoia, GradualUnderflow) { EXPECT_TRUE(check_gradual_underflow()); }

TEST(Paranoia, InfinityAndNanSemantics) {
  EXPECT_TRUE(check_infinity_semantics());
}

TEST(Paranoia, FullReportPassesOnIeeeHost) {
  const auto r = run_paranoia();
  EXPECT_TRUE(r.all_passed()) << r.failures() << " checks failed";
  EXPECT_EQ(r.radix, 2);
  EXPECT_EQ(r.digits, 53);
  EXPECT_TRUE(r.has_guard_digit);
  EXPECT_TRUE(r.rounds_to_nearest);
  EXPECT_TRUE(r.gradual_underflow);
  EXPECT_EQ(r.checks.size(), 8u);
}

}  // namespace
