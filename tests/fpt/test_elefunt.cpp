#include "fpt/elefunt.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "machines/comparator.hpp"

namespace {

using namespace ncar;
using fpt::measure_accuracy;
using fpt::measure_performance;
using sxs::Intrinsic;

class AccuracyParam : public ::testing::TestWithParam<Intrinsic> {};

TEST_P(AccuracyParam, HostLibmPassesIdentityTests) {
  const auto r = measure_accuracy(GetParam(), 5000);
  EXPECT_TRUE(r.passed) << "max ulp " << r.max_ulp;
  EXPECT_LE(r.rms_ulp, r.max_ulp);
  EXPECT_EQ(r.samples, 5000);
}

TEST_P(AccuracyParam, DeterministicForSameSeed) {
  const auto a = measure_accuracy(GetParam(), 2000, 11);
  const auto b = measure_accuracy(GetParam(), 2000, 11);
  EXPECT_DOUBLE_EQ(a.max_ulp, b.max_ulp);
  EXPECT_DOUBLE_EQ(a.rms_ulp, b.rms_ulp);
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, AccuracyParam,
                         ::testing::Values(Intrinsic::Exp, Intrinsic::Log,
                                           Intrinsic::Pow, Intrinsic::Sin,
                                           Intrinsic::Cos, Intrinsic::Sqrt));

TEST(ElefuntAccuracy, SqrtIsExactlyRounded) {
  const auto r = measure_accuracy(Intrinsic::Sqrt, 20000);
  EXPECT_DOUBLE_EQ(r.max_ulp, 0.0);  // exact for representable squares
}

TEST(ElefuntAccuracy, BatteryCoversPaperFunctions) {
  const auto rs = fpt::run_elefunt_accuracy(1000);
  ASSERT_EQ(rs.size(), 5u);  // EXP, LOG, PWR, SIN, SQRT
  for (const auto& r : rs) EXPECT_TRUE(r.passed);
}

TEST(ElefuntAccuracy, ZeroSamplesThrows) {
  EXPECT_THROW(measure_accuracy(Intrinsic::Exp, 0), ncar::precondition_error);
}

TEST(ElefuntPerformance, Sx4RatesAreInPaperRange) {
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  for (const auto& r : fpt::run_elefunt_performance(sx4)) {
    // Vectorised intrinsics: tens to hundreds of Mcalls/s.
    EXPECT_GT(r.mcalls_per_s, 20.0) << sxs::intrinsic_name(r.func);
    EXPECT_LT(r.mcalls_per_s, 500.0) << sxs::intrinsic_name(r.func);
  }
}

TEST(ElefuntPerformance, SqrtIsFastestPwrIsSlowest) {
  // PWR = exp(y log x) costs roughly exp+log; sqrt has its own pipes.
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  const auto rs = fpt::run_elefunt_performance(sx4);
  double pwr = 0, sqrt = 0;
  for (const auto& r : rs) {
    if (r.func == Intrinsic::Pow) pwr = r.mcalls_per_s;
    if (r.func == Intrinsic::Sqrt) sqrt = r.mcalls_per_s;
  }
  for (const auto& r : rs) {
    EXPECT_LE(pwr, r.mcalls_per_s + 1e-9);
    EXPECT_GE(sqrt, r.mcalls_per_s - 1e-9);
  }
}

TEST(ElefuntPerformance, VectorMachineBeatsScalarMachine) {
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  machines::Comparator sparc(machines::Comparator::sun_sparc20());
  const auto a = measure_performance(sx4, Intrinsic::Exp);
  const auto b = measure_performance(sparc, Intrinsic::Exp);
  EXPECT_GT(a.mcalls_per_s, 20.0 * b.mcalls_per_s);
}

}  // namespace
