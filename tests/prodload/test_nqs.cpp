#include "prodload/nqs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace ncar::prodload;

Nqs batch_and_interactive() {
  return Nqs({{"batch", 16, 2}, {"express", 4, 1}});
}

TEST(Nqs, QueueLookup) {
  auto nqs = batch_and_interactive();
  EXPECT_EQ(nqs.queue_count(), 2);
  EXPECT_EQ(nqs.queue_index("express"), 1);
  EXPECT_EQ(nqs.queue_index("nope"), -1);
  EXPECT_EQ(nqs.queue(0).run_limit, 2);
}

TEST(Nqs, PerJobCpuCeilingEnforced) {
  auto nqs = batch_and_interactive();
  EXPECT_THROW(nqs.submit("express", {"big", 8, ncar::Seconds(100.0), 0}),
               ncar::precondition_error);
  nqs.submit("express", {"ok", 4, ncar::Seconds(100.0), 0});
  EXPECT_EQ(nqs.backlog(1), 1);
}

TEST(Nqs, PriorityOrdersJobsWithinAQueue) {
  Nqs nqs({{"q", 8, 1}});  // run_limit 1: strictly serial
  nqs.submit("q", {"low", 2, ncar::Seconds(10.0), 0});
  nqs.submit("q", {"high", 2, ncar::Seconds(10.0), 9});
  const auto seqs = nqs.lower();
  ASSERT_EQ(seqs.size(), 1u);
  ASSERT_EQ(seqs[0].jobs.size(), 2u);
  EXPECT_EQ(seqs[0].jobs[0].name, "high");
  EXPECT_EQ(seqs[0].jobs[1].name, "low");
}

TEST(Nqs, RunLimitBoundsConcurrency) {
  // 4 equal jobs, run_limit 2, each needing 8 CPUs of a 32-CPU node:
  // CPUs are plentiful, so the run limit is the binding constraint and
  // the makespan is two job lengths.
  Nqs nqs({{"q", 8, 2}});
  for (int j = 0; j < 4; ++j) {
    nqs.submit("q", {"j" + std::to_string(j), 8, ncar::Seconds(100.0), 0});
  }
  Scheduler sched(32, 0.0);
  const auto r = nqs.run(sched);
  EXPECT_NEAR(r.makespan.value(), 200.0, 1e-9);
  EXPECT_EQ(r.jobs.size(), 4u);
}

TEST(Nqs, HigherRunLimitShortensTheBacklog) {
  auto run_with_limit = [](int limit) {
    Nqs nqs({{"q", 8, limit}});
    for (int j = 0; j < 4; ++j) {
      nqs.submit("q", {"j" + std::to_string(j), 8, ncar::Seconds(100.0), 0});
    }
    Scheduler sched(32, 0.0);
    return nqs.run(sched).makespan.value();
  };
  EXPECT_NEAR(run_with_limit(1), 400.0, 1e-9);
  EXPECT_NEAR(run_with_limit(4), 100.0, 1e-9);
}

TEST(Nqs, QueuesCompeteForTheNode) {
  // Two queues with unlimited run limits but a 8-CPU node: the scheduler's
  // FIFO gate serialises what the queues release.
  Nqs nqs({{"a", 8, 4}, {"b", 8, 4}});
  nqs.submit("a", {"a1", 8, ncar::Seconds(50.0), 0});
  nqs.submit("b", {"b1", 8, ncar::Seconds(50.0), 0});
  Scheduler sched(8, 0.0);
  const auto r = nqs.run(sched);
  EXPECT_NEAR(r.makespan.value(), 100.0, 1e-9);
}

TEST(Nqs, AccountingRecordsStartAndStop) {
  // The PRODLOAD benchmark "considers start and stop times of individual
  // jobs"; the run result carries them.
  Nqs nqs({{"q", 8, 1}});
  nqs.submit("q", {"first", 4, ncar::Seconds(30.0), 1});
  nqs.submit("q", {"second", 4, ncar::Seconds(20.0), 0});
  Scheduler sched(32, 0.0);
  const auto r = nqs.run(sched);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_NEAR((r.jobs[0].end - r.jobs[0].start).value(), 30.0, 1e-9);
  EXPECT_NEAR(r.jobs[1].start.value(), 30.0, 1e-9);
}

TEST(Nqs, InvalidConfigurationsThrow) {
  EXPECT_THROW(Nqs({}), ncar::precondition_error);
  EXPECT_THROW(Nqs({{"", 8, 1}}), ncar::precondition_error);
  EXPECT_THROW(Nqs({{"q", 0, 1}}), ncar::precondition_error);
  auto nqs = batch_and_interactive();
  EXPECT_THROW(nqs.submit("nope", {"x", 1, ncar::Seconds(1.0), 0}), ncar::precondition_error);
  EXPECT_THROW(nqs.submit("batch", {"x", 1, ncar::Seconds(0.0), 0}), ncar::precondition_error);
  Scheduler sched(32, 0.0);
  EXPECT_THROW(nqs.run(sched), ncar::precondition_error);  // nothing queued
}

}  // namespace
