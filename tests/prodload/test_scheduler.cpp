#include "prodload/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace ncar::prodload;

Sequence one_job(const std::string& name, int cpus, double secs) {
  return Sequence{name, {Job{"job", {Component{"c", cpus, ncar::Seconds(secs)}}}}};
}

TEST(Scheduler, SingleComponentRunsForItsServiceTime) {
  Scheduler s(32, 0.0);
  const auto r = s.run({one_job("a", 4, 100.0)});
  EXPECT_NEAR(r.makespan.value(), 100.0, 1e-9);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_NEAR((r.jobs[0].end - r.jobs[0].start).value(), 100.0, 1e-9);
}

TEST(Scheduler, JobsInASequenceRunBackToBack) {
  Scheduler s(32, 0.0);
  Sequence seq{"s", {Job{"j1", {{"c", 4, ncar::Seconds(50.0)}}}, Job{"j2", {{"c", 4, ncar::Seconds(70.0)}}}}};
  const auto r = s.run({seq});
  EXPECT_NEAR(r.makespan.value(), 120.0, 1e-9);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_NEAR(r.jobs[1].start.value(), 50.0, 1e-9);
}

TEST(Scheduler, JobEndsWhenSlowestComponentEnds) {
  Scheduler s(32, 0.0);
  Sequence seq{"s", {Job{"j", {{"fast", 2, ncar::Seconds(10.0)}, {"slow", 2, ncar::Seconds(90.0)}}}}};
  const auto r = s.run({seq});
  EXPECT_NEAR(r.makespan.value(), 90.0, 1e-9);
}

TEST(Scheduler, ConcurrentSequencesOverlapWhenCpusSuffice) {
  Scheduler s(32, 0.0);
  const auto r = s.run({one_job("a", 8, 100.0), one_job("b", 8, 100.0)});
  EXPECT_NEAR(r.makespan.value(), 100.0, 1e-9);
}

TEST(Scheduler, QueueingWhenCpusExhausted) {
  Scheduler s(8, 0.0);
  // Two 8-CPU components cannot overlap on an 8-CPU node.
  const auto r = s.run({one_job("a", 8, 100.0), one_job("b", 8, 100.0)});
  EXPECT_NEAR(r.makespan.value(), 200.0, 1e-9);
}

TEST(Scheduler, FifoOrderPreserved) {
  Scheduler s(8, 0.0);
  // A big waiting component blocks later small ones (strict FIFO).
  Sequence a{"a", {Job{"j", {{"c", 8, ncar::Seconds(100.0)}}}}};
  Sequence b{"b", {Job{"j", {{"c", 8, ncar::Seconds(10.0)}}}}};
  Sequence c{"c", {Job{"j", {{"c", 1, ncar::Seconds(1.0)}}}}};
  const auto r = s.run({a, b, c});
  // a runs first; b waits; c (admitted third) waits behind b.
  EXPECT_NEAR(r.makespan.value(), 111.0, 1e-9);
}

TEST(Scheduler, ContentionStretchesConcurrentWork) {
  Scheduler quiet(32, 0.0);
  Scheduler contended(32, 1e-3);
  const std::vector<Sequence> load = {one_job("a", 16, 100.0),
                                      one_job("b", 16, 100.0)};
  const double t0 = quiet.run(load).makespan.value();
  const double t1 = contended.run(load).makespan.value();
  EXPECT_GT(t1, t0);
  EXPECT_NEAR(t1 / t0, 1.0 + 31e-3, 1e-6);
}

TEST(Scheduler, ContentionDropsWhenLoadRetires) {
  // One long and one short 16-CPU job: after the short one ends, the long
  // one speeds up; total < stretched-all-the-way.
  Scheduler s(32, 1e-3);
  const auto r = s.run({one_job("long", 16, 100.0), one_job("short", 16, 10.0)});
  const double all_contended = 100.0 * (1.0 + 31e-3);
  EXPECT_LT(r.makespan.value(), all_contended);
  EXPECT_GT(r.makespan.value(), 100.0);
}

TEST(Scheduler, RecordsAllJobs) {
  Scheduler s(32, 0.0);
  Sequence seq{"s", {}};
  for (int j = 0; j < 4; ++j) {
    seq.jobs.push_back(Job{"j" + std::to_string(j), {{"c", 2, ncar::Seconds(5.0)}}});
  }
  const auto r = s.run({seq, seq});
  EXPECT_EQ(r.jobs.size(), 8u);
}

TEST(Scheduler, InvalidInputsThrow) {
  Scheduler s(8, 0.0);
  EXPECT_THROW(s.run({}), ncar::precondition_error);
  EXPECT_THROW(s.run({one_job("a", 9, 10.0)}), ncar::precondition_error);
  EXPECT_THROW(s.run({one_job("a", 0, 10.0)}), ncar::precondition_error);
  EXPECT_THROW(s.run({one_job("a", 4, 0.0)}), ncar::precondition_error);
  EXPECT_THROW(Scheduler(0, 0.0), ncar::precondition_error);
}

}  // namespace
