#include "iosim/history.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace ncar::iosim;

TEST(History, RecordBytesMatchShape) {
  HistoryShape s{128, 64, 18, 16};
  EXPECT_DOUBLE_EQ(history_record_bytes(s).value(), 8.0 * 128 * 18 * 16);
}

TEST(History, WriteBytesIncludeHeaderAndAllLatitudes) {
  HistoryShape s{128, 64, 18, 16};
  EXPECT_GT(history_write_bytes(s).value(),
            history_record_bytes(s).value() * 64);
}

TEST(History, T63YearIsRoughly15GB) {
  // Paper: ~15 GB of data + restart written during the one-year T63 test.
  HistoryShape s{192, 96, 18, 16};
  const double year = history_write_bytes(s).value() * 365;
  EXPECT_GT(year, 12e9);
  EXPECT_LT(year, 18e9);
}

TEST(History, ConcurrentWritersFaster) {
  DiskSystem disk;
  HistoryShape s{320, 160, 18, 16};
  const double t1 = write_history_seconds(disk, s, 1).value();
  const double t32 = write_history_seconds(disk, s, 32).value();
  EXPECT_LT(t32, t1);
}

TEST(History, AccountingRecordsBytes) {
  DiskSystem disk;
  HistoryShape s{128, 64, 18, 16};
  write_history_seconds(disk, s, 8);
  EXPECT_DOUBLE_EQ(disk.total_bytes().value(),
                   history_write_bytes(s).value());
}

TEST(History, ReadInitialPositiveAndRecorded) {
  DiskSystem disk;
  HistoryShape s{128, 64, 18, 16};
  const double t = read_initial_seconds(disk, s).value();
  EXPECT_GT(t, 0.0);
  EXPECT_GT(disk.busy_seconds().value(), 0.0);
}

TEST(History, InvalidShapeThrows) {
  HistoryShape bad{0, 64, 18, 16};
  EXPECT_THROW(history_record_bytes(bad), ncar::precondition_error);
}

}  // namespace
