#include "iosim/disk.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace ncar::iosim;

TEST(DiskSystem, StreamingRateBoundedByControllerAndSpindles) {
  DiskSystem d;
  const auto& c = d.config();
  EXPECT_LE(d.streaming_bytes_per_s().value(), c.controller_rate.value());
  EXPECT_LE(d.streaming_bytes_per_s().value(),
            c.media_rate.value() * c.spindles);
}

TEST(DiskSystem, SmallTransferDominatedByPositioning) {
  DiskSystem d;
  const double t = d.sequential_seconds(ncar::Bytes(512)).value();
  EXPECT_GT(t, d.config().seek.value());
  EXPECT_LT(t, d.config().seek.value() + d.config().rotational.value() + 1e-3);
}

TEST(DiskSystem, LargeTransferApproachesStreamingRate) {
  DiskSystem d;
  const double bytes = 1e9;
  const double t = d.sequential_seconds(ncar::Bytes(bytes)).value();
  EXPECT_NEAR(bytes / t, d.streaming_bytes_per_s().value(),
              0.02 * d.streaming_bytes_per_s().value());
}

TEST(DiskSystem, StripingEngagesWithSize) {
  DiskSystem d;
  // A one-stripe transfer runs at single-spindle speed.
  const double small = 256.0 * 1024;
  const double t_small = d.sequential_seconds(ncar::Bytes(small)).value() -
                         d.config().seek.value() -
                         d.config().rotational.value();
  EXPECT_NEAR(small / t_small, d.config().media_rate.value(),
              0.01 * d.config().media_rate.value());
}

TEST(DiskSystem, ConcurrentWritersOverlapPositioning) {
  DiskSystem d;
  const double t1 =
      d.direct_access_seconds(1000, ncar::Bytes(64 * 1024), 1).value();
  const double t16 =
      d.direct_access_seconds(1000, ncar::Bytes(64 * 1024), 16).value();
  EXPECT_LT(t16, t1);
}

TEST(DiskSystem, WritersBeyondSpindlesDoNotHelp) {
  DiskSystem d;
  const double t16 =
      d.direct_access_seconds(1000, ncar::Bytes(64 * 1024), 16).value();
  const double t64 =
      d.direct_access_seconds(1000, ncar::Bytes(64 * 1024), 64).value();
  EXPECT_DOUBLE_EQ(t16, t64);
}

TEST(DiskSystem, ZeroRecordsFree) {
  DiskSystem d;
  EXPECT_DOUBLE_EQ(d.direct_access_seconds(0, ncar::Bytes(1024), 4).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(d.sequential_seconds(ncar::Bytes(0)).value(), 0.0);
}

TEST(DiskSystem, AccountingAccumulates) {
  DiskSystem d;
  d.record_transfer(ncar::Bytes(100), ncar::Seconds(1.0));
  d.record_transfer(ncar::Bytes(50), ncar::Seconds(0.5));
  EXPECT_DOUBLE_EQ(d.total_bytes().value(), 150);
  EXPECT_DOUBLE_EQ(d.busy_seconds().value(), 1.5);
  d.reset_accounting();
  EXPECT_DOUBLE_EQ(d.total_bytes().value(), 0);
}

TEST(DiskSystem, InvalidInputsThrow) {
  DiskSystem d;
  EXPECT_THROW(d.sequential_seconds(ncar::Bytes(-1)),
               ncar::precondition_error);
  EXPECT_THROW(d.direct_access_seconds(10, ncar::Bytes(1024), 0),
               ncar::precondition_error);
  DiskConfig bad;
  bad.spindles = 0;
  EXPECT_THROW(DiskSystem{bad}, ncar::precondition_error);
}

}  // namespace
