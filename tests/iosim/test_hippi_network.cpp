#include <gtest/gtest.h>

#include "common/error.hpp"
#include "iosim/hippi.hpp"
#include "iosim/network.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;
using iosim::HippiChannel;
using iosim::Network;

class HippiTest : public ::testing::Test {
protected:
  sxs::MachineConfig cfg = sxs::MachineConfig::sx4_benchmarked();
  HippiChannel hippi{cfg};
};

TEST_F(HippiTest, LargePacketsApproachLineRate) {
  const double rate =
      hippi.effective_bytes_per_s(Bytes(16.0 * 1024 * 1024)).value();
  EXPECT_GT(rate, 0.95 * cfg.hippi_bytes_per_s.value());
  EXPECT_LE(rate, cfg.hippi_bytes_per_s.value());
}

TEST_F(HippiTest, SmallPacketsSetupDominated) {
  const double rate = hippi.effective_bytes_per_s(Bytes(1024)).value();
  EXPECT_LT(rate, 0.3 * cfg.hippi_bytes_per_s.value());
}

TEST_F(HippiTest, EffectiveRateMonotoneInPacketSize) {
  double prev = 0;
  for (double kb = 1; kb <= 4096; kb *= 4) {
    const double r = hippi.effective_bytes_per_s(Bytes(kb * 1024)).value();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST_F(HippiTest, TransferTimeIncludesPerPacketSetup) {
  const Bytes packet(1 << 20);
  const double one = hippi.transfer_seconds(packet, packet).value();
  const double ten = hippi.transfer_seconds(packet * 10.0, packet).value();
  EXPECT_NEAR(ten, 10 * one, 1e-9);
}

TEST_F(HippiTest, ConcurrencyScalesToIopCountOnly) {
  const Bytes p(1 << 20);
  EXPECT_NEAR(hippi.concurrent_bytes_per_s(2, p).value(),
              2 * hippi.effective_bytes_per_s(p).value(), 1e-6);
  EXPECT_DOUBLE_EQ(hippi.concurrent_bytes_per_s(4, p).value(),
                   hippi.concurrent_bytes_per_s(9, p).value());
}

TEST_F(HippiTest, InvalidInputsThrow) {
  EXPECT_THROW(hippi.transfer_seconds(Bytes(-1), Bytes(1024)),
               ncar::precondition_error);
  EXPECT_THROW(hippi.transfer_seconds(Bytes(1024), Bytes(0)),
               ncar::precondition_error);
  EXPECT_THROW(hippi.concurrent_bytes_per_s(0, Bytes(1024)),
               ncar::precondition_error);
}

TEST(NetworkTest, ThroughputBoundedByFddiLineRate) {
  Network net;
  EXPECT_LE(net.throughput_bytes_per_s().value(), 100e6 / 8.0);
  EXPECT_GT(net.throughput_bytes_per_s().value(), 1e6);
}

TEST(NetworkTest, BigTransfersScaleLinearly) {
  Network net;
  const double t1 = net.data_transfer_seconds(Bytes(10e6)).value();
  const double t2 = net.data_transfer_seconds(Bytes(20e6)).value();
  // Fixed overheads subtract out.
  EXPECT_NEAR(t2 - t1, (Bytes(10e6) / net.throughput_bytes_per_s()).value(),
              1e-9);
}

TEST(NetworkTest, CommandsAreMilliseconds) {
  Network net;
  EXPECT_GT(net.command_seconds().value(), 1e-3);
  EXPECT_LT(net.command_seconds().value(), 1.0);
}

TEST(NetworkTest, WindowLimitCanBind) {
  ncar::iosim::NetworkConfig c;
  c.rtt_s = 50e-3;  // WAN round trip
  Network net(c);
  EXPECT_NEAR(net.throughput_bytes_per_s().value(),
              c.tcp_window_bytes / c.rtt_s, 1.0);
}

TEST(NetworkTest, InvalidConfigThrows) {
  ncar::iosim::NetworkConfig c;
  c.rtt_s = 0;
  EXPECT_THROW(Network{c}, ncar::precondition_error);
}

}  // namespace
