#include "iosim/sfs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;
using iosim::DiskSystem;
using iosim::Sfs;
using iosim::SfsConfig;
using iosim::WriteBackMethod;

class SfsTest : public ::testing::Test {
protected:
  sxs::MachineConfig machine = sxs::MachineConfig::sx4_benchmarked();
  DiskSystem disk;
};

TEST_F(SfsTest, WriteBackCompletesAtXmuSpeed) {
  Sfs fs(machine, disk);
  const Bytes bytes(256e6);
  const Seconds wait = fs.write(bytes);
  // XMU carries 16 GB/s at 8 ns (less at 9.2 ns); a cached write is far
  // faster than the disk's ~80 MB/s ceiling.
  EXPECT_LT(wait.value(),
            0.1 * (bytes / disk.streaming_bytes_per_s()).value());
  EXPECT_GT(fs.dirty_bytes().value(), 0.0);
}

TEST_F(SfsTest, WriteThroughWaitsForDisk) {
  SfsConfig cfg;
  cfg.method = WriteBackMethod::WriteThrough;
  Sfs fs(machine, disk, cfg);
  const Bytes bytes(64e6);
  const Seconds wait = fs.write(bytes);
  EXPECT_GT(wait.value(),
            0.9 * (bytes / disk.streaming_bytes_per_s()).value());
}

TEST_F(SfsTest, DrainProceedsWhileComputing) {
  Sfs fs(machine, disk);
  fs.write(Bytes(100e6));
  const double dirty0 = fs.dirty_bytes().value();
  fs.advance(Seconds(0.5));
  EXPECT_LT(fs.dirty_bytes().value(), dirty0);
}

TEST_F(SfsTest, FlushEmptiesTheCache) {
  Sfs fs(machine, disk);
  fs.write(Bytes(100e6));
  const double wait = fs.flush().value();
  EXPECT_GT(wait, 0.0);
  EXPECT_NEAR(fs.dirty_bytes().value(), 0.0, 1.0);
}

TEST_F(SfsTest, FullCacheStallsTheWriter) {
  SfsConfig cfg;
  cfg.cache = Bytes(64e6);  // small cache
  Sfs fast(machine, disk, cfg);
  // First fill the cache, then write more: the second write must wait on
  // the drain, so its per-byte cost approaches disk speed.
  fast.write(Bytes(64e6));
  const double stalled = fast.write(Bytes(256e6)).value();
  EXPECT_GT(stalled,
            0.8 * (Bytes(256e6) / disk.streaming_bytes_per_s()).value());
}

TEST_F(SfsTest, CachedReadIsFast) {
  Sfs fs(machine, disk);
  fs.write(Bytes(50e6));
  // Resident (dirty counts as cached).
  const double t = fs.read(Bytes(50e6)).value();
  EXPECT_LT(t, 0.05 * (Bytes(50e6) / disk.streaming_bytes_per_s()).value());
}

TEST_F(SfsTest, UncachedReadGoesToDisk) {
  Sfs fs(machine, disk);
  const double t = fs.read(Bytes(50e6)).value();
  EXPECT_GT(t, 0.9 * (Bytes(50e6) / disk.streaming_bytes_per_s()).value());
}

TEST_F(SfsTest, DrainedBytesLandOnDiskAccounting) {
  Sfs fs(machine, disk);
  fs.write(Bytes(100e6));
  fs.flush();
  EXPECT_NEAR(disk.total_bytes().value(), 100e6, 1e6);
}

TEST_F(SfsTest, InvalidConfigThrows) {
  SfsConfig bad;
  bad.cache = machine.xmu_capacity_bytes * 2.0;
  EXPECT_THROW(Sfs(machine, disk, bad), ncar::precondition_error);
  SfsConfig bad2;
  bad2.staging_unit = bad2.cache * 2.0;
  EXPECT_THROW(Sfs(machine, disk, bad2), ncar::precondition_error);
  Sfs fs(machine, disk);
  EXPECT_THROW(fs.write(Bytes(-1)), ncar::precondition_error);
  EXPECT_THROW(fs.advance(Seconds(-1)), ncar::precondition_error);
}

}  // namespace
