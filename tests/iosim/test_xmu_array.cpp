#include "iosim/xmu_array.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using namespace ncar;
using iosim::XmuArray;

class XmuArrayTest : public ::testing::Test {
protected:
  sxs::MachineConfig machine = sxs::MachineConfig::sx4_benchmarked();
};

TEST_F(XmuArrayTest, ValuesRoundTrip) {
  XmuArray a(machine, 1'000'000, 131072, 65536);
  a.write(0, 1.5);
  a.write(999'999, -2.5);
  EXPECT_DOUBLE_EQ(a.read(0), 1.5);
  EXPECT_DOUBLE_EQ(a.read(999'999), -2.5);
}

TEST_F(XmuArrayTest, SequentialWalkFaultsOncePerBlock) {
  const long n = 1'000'000, block = 65536;
  XmuArray a(machine, n, 2 * block, block);
  for (long i = 0; i < n; ++i) a.write(i, static_cast<double>(i));
  // ceil(n / block) = 16 blocks.
  EXPECT_EQ(a.faults(), (n + block - 1) / block);
}

TEST_F(XmuArrayTest, WindowResidentAccessIsFree) {
  XmuArray a(machine, 100'000, 131072, 65536);  // whole array fits
  for (long i = 0; i < 100'000; ++i) a.write(i, 1.0);
  const long cold = a.faults();
  for (long i = 0; i < 100'000; ++i) a.read(i);
  EXPECT_EQ(a.faults(), cold);  // no further staging
}

TEST_F(XmuArrayTest, ThrashingPatternPaysStaging) {
  const long block = 4096;
  XmuArray a(machine, 16 * block, block, block);  // one-slot window
  // Alternate between two blocks: every access faults after the first.
  for (int r = 0; r < 10; ++r) {
    a.read(0);
    a.read(8 * block);
  }
  EXPECT_GE(a.faults(), 19);
  EXPECT_GT(a.staging_seconds().value(), 0.0);
}

TEST_F(XmuArrayTest, StagingTimeMatchesXmuBandwidth) {
  const long block = 65536;
  XmuArray a(machine, 10 * block, block, block);
  for (long b = 0; b < 10; ++b) a.read(b * block);  // 10 cold faults
  // First fault stages in only; the rest stage in + out.
  const double rate = machine.xmu_bandwidth().value();
  const double want = (8.0 * block * 1 + 9 * 8.0 * block * 2) / rate;
  EXPECT_NEAR(a.staging_seconds().value(), want, 1e-12);
}

TEST_F(XmuArrayTest, ChargeMovesTimeToCpu) {
  sxs::Node node(machine);
  XmuArray a(machine, 1'000'000, 65536, 65536);
  for (long i = 0; i < 1'000'000; i += 65536) a.read(i);
  const double staged = a.staging_seconds().value();
  EXPECT_GT(staged, 0.0);
  a.charge(node.cpu(0));
  EXPECT_DOUBLE_EQ(a.staging_seconds().value(), 0.0);
  EXPECT_NEAR(node.cpu(0).seconds(), staged, 1e-12);
}

TEST_F(XmuArrayTest, InvalidShapesThrow) {
  EXPECT_THROW(XmuArray(machine, 100, 64, 128), ncar::precondition_error);
  EXPECT_THROW(XmuArray(machine, 100, 100, 64), ncar::precondition_error);
  // Exceeds the 4 GB XMU.
  EXPECT_THROW(XmuArray(machine, 1'000'000'000, 65536, 65536),
               ncar::precondition_error);
  XmuArray a(machine, 100, 64, 64);
  EXPECT_THROW(a.read(100), ncar::precondition_error);
  EXPECT_THROW(a.read(-1), ncar::precondition_error);
}

}  // namespace
