#include "spectral/sht.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace ncar;
using spectral::cd;
using spectral::ShTransform;

/// Random band-limited spectral state (m=0 column real, others complex).
std::vector<cd> random_spec(const ShTransform& sht, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cd> s(static_cast<std::size_t>(sht.spec_size()));
  const auto& idx = sht.index();
  for (int m = 0; m <= sht.truncation(); ++m) {
    for (int n = m; n <= sht.truncation(); ++n) {
      const double re = rng.uniform(-1, 1);
      const double im = (m == 0) ? 0.0 : rng.uniform(-1, 1);
      s[static_cast<std::size_t>(idx.at(m, n))] = cd(re, im);
    }
  }
  return s;
}

class ShtTest : public ::testing::Test {
protected:
  ShTransform sht{21, 32, 64};  // T21 on a 64 x 32 grid
};

TEST_F(ShtTest, RoundTripSpectralIdentity) {
  const auto s = random_spec(sht, 1);
  Array2D<double> grid(64, 32);
  std::vector<cd> back(s.size());
  sht.synthesis(s, grid);
  sht.analysis(grid, back);
  for (std::size_t k = 0; k < s.size(); ++k) {
    EXPECT_NEAR(std::abs(back[k] - s[k]), 0.0, 1e-11) << "k=" << k;
  }
}

TEST_F(ShtTest, RoundTripGridIdentityForBandLimitedField) {
  // Synthesised fields are band-limited by construction; a second
  // synthesis-analysis round trip must reproduce the grid exactly.
  const auto s = random_spec(sht, 2);
  Array2D<double> g1(64, 32), g2(64, 32);
  std::vector<cd> spec(s.size());
  sht.synthesis(s, g1);
  sht.analysis(g1, spec);
  sht.synthesis(spec, g2);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1.flat()[i], g2.flat()[i], 1e-11);
  }
}

TEST_F(ShtTest, ConstantFieldIsPureY00) {
  Array2D<double> grid(64, 32);
  grid.fill(3.25);
  std::vector<cd> spec(static_cast<std::size_t>(sht.spec_size()));
  sht.analysis(grid, spec);
  EXPECT_NEAR(spec[static_cast<std::size_t>(sht.index().at(0, 0))].real(),
              3.25, 1e-12);
  for (int m = 0; m <= 21; ++m) {
    for (int n = m; n <= 21; ++n) {
      if (m == 0 && n == 0) continue;
      EXPECT_NEAR(
          std::abs(spec[static_cast<std::size_t>(sht.index().at(m, n))]), 0.0,
          1e-11);
    }
  }
}

TEST_F(ShtTest, ZonalWavenumberLandsInItsColumn) {
  // cos(3 lambda) projects only onto m = 3.
  Array2D<double> grid(64, 32);
  for (std::size_t j = 0; j < 32; ++j) {
    for (std::size_t i = 0; i < 64; ++i) {
      grid(i, j) = std::cos(3.0 * 2.0 * M_PI * static_cast<double>(i) / 64.0);
    }
  }
  std::vector<cd> spec(static_cast<std::size_t>(sht.spec_size()));
  sht.analysis(grid, spec);
  double in_col = 0, out_col = 0;
  for (int m = 0; m <= 21; ++m) {
    for (int n = m; n <= 21; ++n) {
      const double a =
          std::abs(spec[static_cast<std::size_t>(sht.index().at(m, n))]);
      (m == 3 ? in_col : out_col) += a;
    }
  }
  EXPECT_GT(in_col, 0.4);
  EXPECT_NEAR(out_col, 0.0, 1e-10);
}

TEST_F(ShtTest, LaplacianEigenvalue) {
  // Y_n^m is an eigenfunction: lap(Y) = -n(n+1)/a^2 Y. Check via grid.
  const double a = 6.371e6;
  auto s = random_spec(sht, 3);
  auto lap = s;
  sht.laplacian(lap, a);
  const auto& idx = sht.index();
  for (int m = 0; m <= 21; ++m) {
    for (int n = m; n <= 21; ++n) {
      const cd want = s[static_cast<std::size_t>(idx.at(m, n))] *
                      (-static_cast<double>(n) * (n + 1.0) / (a * a));
      EXPECT_NEAR(std::abs(lap[static_cast<std::size_t>(idx.at(m, n))] - want),
                  0.0, 1e-18);
    }
  }
}

TEST_F(ShtTest, InverseLaplacianInvertsAwayFromN0) {
  const double a = 6.371e6;
  auto s = random_spec(sht, 4);
  s[static_cast<std::size_t>(sht.index().at(0, 0))] = cd(0, 0);
  auto t = s;
  sht.laplacian(t, a);
  sht.inverse_laplacian(t, a);
  for (std::size_t k = 0; k < s.size(); ++k) {
    EXPECT_NEAR(std::abs(t[k] - s[k]), 0.0, 1e-12);
  }
}

TEST_F(ShtTest, GradientOfZonalFieldIsMeridionalOnly) {
  // A zonal (m=0) field has zero lambda-derivative.
  auto s = random_spec(sht, 5);
  const auto& idx = sht.index();
  for (int m = 1; m <= 21; ++m) {
    for (int n = m; n <= 21; ++n) {
      s[static_cast<std::size_t>(idx.at(m, n))] = cd(0, 0);
    }
  }
  Array2D<double> dlam(64, 32), dmu(64, 32);
  sht.synthesis_gradient(s, dlam, dmu);
  for (double v : dlam.flat()) EXPECT_NEAR(v, 0.0, 1e-11);
}

TEST_F(ShtTest, LambdaGradientMatchesFiniteDifference) {
  // Central differences are only accurate well below the Nyquist
  // wavenumber, so restrict the state to m <= 4, n <= 6.
  auto s = random_spec(sht, 6);
  for (int m = 0; m <= 21; ++m) {
    for (int n = m; n <= 21; ++n) {
      if (m > 2 || n > 4) {
        s[static_cast<std::size_t>(sht.index().at(m, n))] = cd(0, 0);
      }
    }
  }
  Array2D<double> grid(64, 32), dlam(64, 32), dmu(64, 32);
  sht.synthesis(s, grid);
  sht.synthesis_gradient(s, dlam, dmu);
  const double dl = 2.0 * M_PI / 64.0;
  for (std::size_t j = 0; j < 32; ++j) {
    for (std::size_t i = 0; i < 64; ++i) {
      const std::size_t ip = (i + 1) % 64, im = (i + 63) % 64;
      const double fd4 = (grid(ip, j) - grid(im, j)) / (2 * dl);
      // Central FD attenuates mode m by sin(m dl)/(m dl); with m <= 2 the
      // worst-case attenuation is ~0.64%, so a 3% + offset band is safe.
      EXPECT_NEAR(dlam(i, j), fd4, 0.03 * std::max(1.0, std::abs(fd4)) + 0.02);
    }
  }
}

TEST_F(ShtTest, MuGradientMatchesLegendreDifference) {
  // Spot-check (1-mu^2) d/dmu via high-resolution synthesis at shifted
  // latitudes is costly; instead verify against the analytic derivative of
  // a single (m, n) = (0, 2) mode: field = sqrt(5)/2 (3 mu^2 - 1),
  // (1-mu^2) d/dmu = sqrt(5) * 3 mu (1 - mu^2).
  std::vector<cd> s(static_cast<std::size_t>(sht.spec_size()), cd(0, 0));
  s[static_cast<std::size_t>(sht.index().at(0, 2))] = cd(1, 0);
  Array2D<double> dlam(64, 32), dmu(64, 32);
  sht.synthesis_gradient(s, dlam, dmu);
  for (std::size_t j = 0; j < 32; ++j) {
    const double mu = sht.nodes().mu[j];
    const double want = std::sqrt(5.0) * 3.0 * mu * (1.0 - mu * mu);
    EXPECT_NEAR(dmu(0, j), want, 1e-10);
  }
}

TEST(Sht, PaperResolutionsConstruct) {
  // Table 4 grids: T42 64x128, T63 96x192, T85 128x256 (lat x lon).
  ShTransform t42(42, 64, 128);
  EXPECT_EQ(t42.spec_size(), 43 * 44 / 2);
  ShTransform t63(63, 96, 192);
  EXPECT_EQ(t63.truncation(), 63);
}

TEST(Sht, RejectsGridTooCoarseForTruncation) {
  EXPECT_THROW(ShTransform(42, 64, 64), ncar::precondition_error);
}

TEST(Sht, TransformFlopsScaleWithResolution) {
  ShTransform t21(21, 32, 64), t42(42, 64, 128);
  EXPECT_GT(t42.transform_flops(), 6.0 * t21.transform_flops());
}

}  // namespace
