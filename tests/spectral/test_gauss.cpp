#include "spectral/gauss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using namespace ncar::spectral;

TEST(GaussLegendre, WeightsSumToTwo) {
  for (int n : {2, 8, 64, 160, 256}) {
    const auto g = gauss_legendre(n);
    double sum = 0;
    for (double w : g.weight) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-12) << "n=" << n;
  }
}

TEST(GaussLegendre, NodesAscendInOpenInterval) {
  const auto g = gauss_legendre(64);
  for (std::size_t i = 0; i < g.mu.size(); ++i) {
    EXPECT_GT(g.mu[i], -1.0);
    EXPECT_LT(g.mu[i], 1.0);
    if (i) {
      EXPECT_GT(g.mu[i], g.mu[i - 1]);
    }
  }
}

TEST(GaussLegendre, NodesAreSymmetric) {
  const auto g = gauss_legendre(32);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(g.mu[i], -g.mu[31 - i], 1e-13);
    EXPECT_NEAR(g.weight[i], g.weight[31 - i], 1e-13);
  }
}

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  // n-point rule is exact for degree <= 2n-1.
  const int n = 6;
  const auto g = gauss_legendre(n);
  for (int d = 0; d <= 2 * n - 1; ++d) {
    double q = 0;
    for (std::size_t i = 0; i < g.mu.size(); ++i) {
      q += g.weight[i] * std::pow(g.mu[i], d);
    }
    const double exact = (d % 2 == 1) ? 0.0 : 2.0 / (d + 1.0);
    EXPECT_NEAR(q, exact, 1e-12) << "degree " << d;
  }
}

TEST(GaussLegendre, DoesNotIntegrateBeyondDegreeBound) {
  // Degree 2n polynomial must show quadrature error (sanity that the rule
  // is n-point Gauss, not something stronger).
  const int n = 4;
  const auto g = gauss_legendre(n);
  double q = 0;
  for (std::size_t i = 0; i < g.mu.size(); ++i) {
    q += g.weight[i] * std::pow(g.mu[i], 2 * n);
  }
  EXPECT_GT(std::abs(q - 2.0 / (2 * n + 1)), 1e-8);
}

TEST(GaussLegendre, RootsAreLegendreZeros) {
  const int n = 24;
  const auto g = gauss_legendre(n);
  for (double mu : g.mu) {
    EXPECT_NEAR(legendre_pn(n, mu).p, 0.0, 1e-12);
  }
}

TEST(LegendrePn, KnownValues) {
  EXPECT_DOUBLE_EQ(legendre_pn(0, 0.3).p, 1.0);
  EXPECT_DOUBLE_EQ(legendre_pn(1, 0.3).p, 0.3);
  EXPECT_NEAR(legendre_pn(2, 0.5).p, 0.5 * (3 * 0.25 - 1), 1e-14);
  EXPECT_NEAR(legendre_pn(3, -0.2).p, 0.5 * (5 * -0.008 - 3 * -0.2), 1e-14);
}

TEST(GaussLegendre, InvalidCountThrows) {
  EXPECT_THROW(gauss_legendre(0), ncar::precondition_error);
}

}  // namespace
