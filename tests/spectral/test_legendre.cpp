#include "spectral/legendre.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace {

using namespace ncar::spectral;

TEST(TriangularIndex, SizeIsTrianglePlusDiagonal) {
  TriangularIndex idx(42);
  EXPECT_EQ(idx.size(), 43 * 44 / 2);
  EXPECT_EQ(idx.column_length(0), 43);
  EXPECT_EQ(idx.column_length(42), 1);
}

TEST(TriangularIndex, FlatIndicesAreDenseAndOrdered) {
  TriangularIndex idx(5);
  int expect = 0;
  for (int m = 0; m <= 5; ++m) {
    EXPECT_EQ(idx.column_start(m), expect);
    for (int n = m; n <= 5; ++n) {
      EXPECT_EQ(idx.at(m, n), expect++);
    }
  }
  EXPECT_EQ(expect, idx.size());
}

TEST(TriangularIndex, OutOfRangeThrows) {
  TriangularIndex idx(5);
  EXPECT_THROW(idx.at(6, 6), ncar::precondition_error);
  EXPECT_THROW(idx.at(3, 2), ncar::precondition_error);  // n < m
  EXPECT_THROW(idx.at(-1, 0), ncar::precondition_error);
}

class LegendreTableTest : public ::testing::Test {
protected:
  static constexpr int kT = 21;
  static constexpr int kLat = 32;
  GaussNodes nodes = gauss_legendre(kLat);
  LegendreTable table{kT, nodes};
};

TEST_F(LegendreTableTest, MatchesClosedFormsLowDegree) {
  // Pbar_0^0 = 1, Pbar_1^0 = sqrt(3) mu, Pbar_1^1 = sqrt(3/2) sqrt(1-mu^2).
  for (int j = 0; j < kLat; ++j) {
    const double mu = nodes.mu[static_cast<std::size_t>(j)];
    EXPECT_NEAR(table.p(j, 0, 0), 1.0, 1e-13);
    EXPECT_NEAR(table.p(j, 0, 1), std::sqrt(3.0) * mu, 1e-13);
    EXPECT_NEAR(table.p(j, 1, 1), std::sqrt(1.5) * std::sqrt(1 - mu * mu),
                1e-13);
    EXPECT_NEAR(table.p(j, 0, 2), std::sqrt(5.0) * 0.5 * (3 * mu * mu - 1),
                1e-12);
  }
}

TEST_F(LegendreTableTest, OrthonormalUnderGaussianQuadrature) {
  // (1/2) sum_j w_j Pbar_n^m Pbar_n'^m = delta(n, n').
  for (int m : {0, 1, 5, 13}) {
    for (int n = m; n <= kT; ++n) {
      for (int n2 = m; n2 <= kT; ++n2) {
        double dot = 0;
        for (int j = 0; j < kLat; ++j) {
          dot += 0.5 * nodes.weight[static_cast<std::size_t>(j)] *
                 table.p(j, m, n) * table.p(j, m, n2);
        }
        EXPECT_NEAR(dot, n == n2 ? 1.0 : 0.0, 1e-11)
            << "m=" << m << " n=" << n << " n'=" << n2;
      }
    }
  }
}

TEST_F(LegendreTableTest, DerivativeMatchesFiniteDifference) {
  // dp stores (1-mu^2) dPbar/dmu; compare against a central difference of
  // evaluate_pbar.
  const TriangularIndex& idx = table.index();
  const double h = 1e-6;
  std::vector<double> lo, hi;
  for (int j : {3, 17, 28}) {
    const double mu = nodes.mu[static_cast<std::size_t>(j)];
    evaluate_pbar(kT, mu - h, idx, lo);
    evaluate_pbar(kT, mu + h, idx, hi);
    for (int m : {0, 2, 9}) {
      for (int n = m; n <= kT; ++n) {
        const double fd = (hi[static_cast<std::size_t>(idx.at(m, n))] -
                           lo[static_cast<std::size_t>(idx.at(m, n))]) /
                          (2 * h);
        const double want = (1 - mu * mu) * fd;
        EXPECT_NEAR(table.dp(j, m, n), want, 1e-5 * std::max(1.0, std::abs(want)))
            << "m=" << m << " n=" << n;
      }
    }
  }
}

TEST_F(LegendreTableTest, ColumnsAreContiguous) {
  for (int m : {0, 7}) {
    const double* col = table.p_column(5, m);
    for (int n = m; n <= kT; ++n) {
      EXPECT_DOUBLE_EQ(col[n - m], table.p(5, m, n));
    }
  }
}

TEST_F(LegendreTableTest, ParityAlternatesAcrossEquator) {
  // Pbar_n^m(-mu) = (-1)^(n-m) Pbar_n^m(mu); Gaussian nodes are symmetric.
  for (int m : {0, 1, 4}) {
    for (int n = m; n <= kT; ++n) {
      const double south = table.p(0, m, n);
      const double north = table.p(kLat - 1, m, n);
      const double sign = ((n - m) % 2 == 0) ? 1.0 : -1.0;
      EXPECT_NEAR(south, sign * north, 1e-11);
    }
  }
}

TEST(LegendreTable, TooFewLatitudesThrow) {
  const auto nodes = gauss_legendre(8);
  EXPECT_THROW(LegendreTable(10, nodes), ncar::precondition_error);
}

}  // namespace
