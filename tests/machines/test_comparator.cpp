#include "machines/comparator.hpp"

#include <gtest/gtest.h>

#include "sxs/ops.hpp"

namespace {

using ncar::machines::Comparator;
using ncar::sxs::Intrinsic;
using ncar::sxs::VectorOp;

VectorOp triad(long n) {
  VectorOp op;
  op.n = n;
  op.flops_per_elem = 2;
  op.load_words = 2;
  op.store_words = 1;
  return op;
}

TEST(Comparator, AllPresetsValidate) {
  // Construction validates each preset's configuration.
  Comparator a(Comparator::sun_sparc20());
  Comparator b(Comparator::ibm_rs6000_590());
  Comparator c(Comparator::cray_j90());
  Comparator d(Comparator::cray_ymp());
  Comparator e(Comparator::nec_sx4_single());
  EXPECT_FALSE(a.has_vector());
  EXPECT_FALSE(b.has_vector());
  EXPECT_TRUE(c.has_vector());
  EXPECT_TRUE(d.has_vector());
  EXPECT_TRUE(e.has_vector());
}

TEST(Comparator, VectorMachinesWinLongVectorLoops) {
  // The same long triad loop must run far faster on the Y-MP than on the
  // Sparc20 — this asymmetry is what Table 1's RADABS column shows.
  Comparator ymp(Comparator::cray_ymp());
  Comparator sparc(Comparator::sun_sparc20());
  const long n = 1 << 20;
  ymp.vec(triad(n));
  sparc.vec(triad(n));
  EXPECT_GT(sparc.seconds().value(), 4.0 * ymp.seconds().value());
}

TEST(Comparator, ScalarMachinesCompetitiveOnScalarWork) {
  // Cache-friendly scalar work (HINT-like) runs comparably or better on the
  // workstations than on the Crays' scalar units.
  ncar::sxs::ScalarOp op;
  op.iters = 100000;
  op.flops_per_iter = 4;
  op.mem_words_per_iter = 4;
  op.other_ops_per_iter = 8;
  op.working_set_bytes = 8 * 1024;
  op.reuse_fraction = 0.9;

  Comparator j90(Comparator::cray_j90());
  Comparator sparc(Comparator::sun_sparc20());
  j90.scalar(op);
  sparc.scalar(op);
  EXPECT_LT(sparc.seconds().value(), j90.seconds().value());
}

TEST(Comparator, Sx4BeatsYmpOnVectorWork) {
  Comparator sx4(Comparator::nec_sx4_single());
  Comparator ymp(Comparator::cray_ymp());
  const long n = 1 << 20;
  sx4.vec(triad(n));
  ymp.vec(triad(n));
  // ~1.7 Gflops peak vs 333 Mflops peak; memory-bound triad still >2x.
  EXPECT_GT(ymp.seconds().value(), 2.0 * sx4.seconds().value());
}

TEST(Comparator, IntrinsicsVectoriseOnVectorMachines) {
  Comparator ymp(Comparator::cray_ymp());
  Comparator rs6k(Comparator::ibm_rs6000_590());
  const long n = 100000;
  ymp.intrinsic(Intrinsic::Exp, n);
  rs6k.intrinsic(Intrinsic::Exp, n);
  EXPECT_LT(ymp.seconds().value(), rs6k.seconds().value());
}

TEST(Comparator, EquivalentFlopsUseCrayCurrency) {
  Comparator ymp(Comparator::cray_ymp());
  ymp.intrinsic(Intrinsic::Exp, 1000);
  EXPECT_DOUBLE_EQ(ymp.equiv_flops().value(), 11000.0);
}

TEST(Comparator, ResetClearsAccounting) {
  Comparator sx4(Comparator::nec_sx4_single());
  sx4.vec(triad(1000));
  sx4.reset();
  EXPECT_DOUBLE_EQ(sx4.seconds().value(), 0.0);
  EXPECT_DOUBLE_EQ(sx4.equiv_flops().value(), 0.0);
}

TEST(Comparator, ScalarFallbackChargesVectorLoopAsScalar) {
  Comparator sparc(Comparator::sun_sparc20());
  sparc.vec(triad(10000));
  // 2 flops/elem accounted either way.
  EXPECT_DOUBLE_EQ(sparc.hw_flops().value(), 20000.0);
  EXPECT_GT(sparc.seconds().value(), 0.0);
}

}  // namespace
