#include "machines/comparator.hpp"

#include <gtest/gtest.h>

#include "sxs/ops.hpp"

namespace {

using ncar::machines::Comparator;
using ncar::sxs::Intrinsic;
using ncar::sxs::VectorOp;

VectorOp triad(long n) {
  VectorOp op;
  op.n = n;
  op.flops_per_elem = 2;
  op.load_words = 2;
  op.store_words = 1;
  return op;
}

TEST(Comparator, AllPresetsValidate) {
  // Construction validates each preset's configuration.
  Comparator a(Comparator::sun_sparc20());
  Comparator b(Comparator::ibm_rs6000_590());
  Comparator c(Comparator::cray_j90());
  Comparator d(Comparator::cray_ymp());
  Comparator e(Comparator::nec_sx4_single());
  EXPECT_FALSE(a.has_vector());
  EXPECT_FALSE(b.has_vector());
  EXPECT_TRUE(c.has_vector());
  EXPECT_TRUE(d.has_vector());
  EXPECT_TRUE(e.has_vector());
}

TEST(Comparator, VectorMachinesWinLongVectorLoops) {
  // The same long triad loop must run far faster on the Y-MP than on the
  // Sparc20 — this asymmetry is what Table 1's RADABS column shows.
  Comparator ymp(Comparator::cray_ymp());
  Comparator sparc(Comparator::sun_sparc20());
  const long n = 1 << 20;
  ymp.vec(triad(n));
  sparc.vec(triad(n));
  EXPECT_GT(sparc.seconds().value(), 4.0 * ymp.seconds().value());
}

TEST(Comparator, ScalarMachinesCompetitiveOnScalarWork) {
  // Cache-friendly scalar work (HINT-like) runs comparably or better on the
  // workstations than on the Crays' scalar units.
  ncar::sxs::ScalarOp op;
  op.iters = 100000;
  op.flops_per_iter = 4;
  op.mem_words_per_iter = 4;
  op.other_ops_per_iter = 8;
  op.working_set_bytes = 8 * 1024;
  op.reuse_fraction = 0.9;

  Comparator j90(Comparator::cray_j90());
  Comparator sparc(Comparator::sun_sparc20());
  j90.scalar(op);
  sparc.scalar(op);
  EXPECT_LT(sparc.seconds().value(), j90.seconds().value());
}

TEST(Comparator, Sx4BeatsYmpOnVectorWork) {
  Comparator sx4(Comparator::nec_sx4_single());
  Comparator ymp(Comparator::cray_ymp());
  const long n = 1 << 20;
  sx4.vec(triad(n));
  ymp.vec(triad(n));
  // ~1.7 Gflops peak vs 333 Mflops peak; memory-bound triad still >2x.
  EXPECT_GT(ymp.seconds().value(), 2.0 * sx4.seconds().value());
}

TEST(Comparator, IntrinsicsVectoriseOnVectorMachines) {
  Comparator ymp(Comparator::cray_ymp());
  Comparator rs6k(Comparator::ibm_rs6000_590());
  const long n = 100000;
  ymp.intrinsic(Intrinsic::Exp, n);
  rs6k.intrinsic(Intrinsic::Exp, n);
  EXPECT_LT(ymp.seconds().value(), rs6k.seconds().value());
}

TEST(Comparator, EquivalentFlopsUseCrayCurrency) {
  Comparator ymp(Comparator::cray_ymp());
  ymp.intrinsic(Intrinsic::Exp, 1000);
  EXPECT_DOUBLE_EQ(ymp.equiv_flops().value(), 11000.0);
}

TEST(Comparator, ResetClearsAccounting) {
  Comparator sx4(Comparator::nec_sx4_single());
  sx4.vec(triad(1000));
  sx4.reset();
  EXPECT_DOUBLE_EQ(sx4.seconds().value(), 0.0);
  EXPECT_DOUBLE_EQ(sx4.equiv_flops().value(), 0.0);
}

TEST(Comparator, ScalarFallbackChargesVectorLoopAsScalar) {
  Comparator sparc(Comparator::sun_sparc20());
  sparc.vec(triad(10000));
  // 2 flops/elem accounted either way.
  EXPECT_DOUBLE_EQ(sparc.hw_flops().value(), 20000.0);
  EXPECT_GT(sparc.seconds().value(), 0.0);
}

TEST(Comparator, VecRepeatsMultiplyChargesOnBothPaths) {
  // repeats must behave as "charge the same loop k times" on the vector
  // path and on the scalar-fallback path alike.
  Comparator sx4_once(Comparator::nec_sx4_single());
  Comparator sx4_many(Comparator::nec_sx4_single());
  for (int r = 0; r < 5; ++r) sx4_once.vec(triad(4096));
  sx4_many.vec(triad(4096), 5);
  EXPECT_EQ(sx4_once.seconds().value(), sx4_many.seconds().value());
  EXPECT_EQ(sx4_once.hw_flops().value(), sx4_many.hw_flops().value());

  Comparator sparc_once(Comparator::sun_sparc20());
  Comparator sparc_many(Comparator::sun_sparc20());
  for (int r = 0; r < 5; ++r) sparc_once.vec(triad(4096));
  sparc_many.vec(triad(4096), 5);
  EXPECT_EQ(sparc_once.seconds().value(), sparc_many.seconds().value());
}

namespace sink_test {

struct CountingSink final : ncar::machines::OpSink {
  long vec_ops = 0, vec_repeats = 0, scalar_ops = 0, intrinsic_calls = 0;
  void on_vec(const VectorOp&, long repeats) override {
    ++vec_ops;
    vec_repeats += repeats;
  }
  void on_scalar(const ncar::sxs::ScalarOp&) override { ++scalar_ops; }
  void on_intrinsic(Intrinsic, long n) override { intrinsic_calls += n; }
};

}  // namespace sink_test

TEST(Comparator, OpSinkObservesLogicalOpsPreDispatch) {
  // The sink sees a vec() as a vector op even on a machine without vector
  // hardware — that's what makes recorded streams machine-portable.
  sink_test::CountingSink sink;
  Comparator sparc(Comparator::sun_sparc20());
  sparc.set_op_sink(&sink);
  sparc.vec(triad(100), 3);
  sparc.scalar(ncar::sxs::ScalarOp{.iters = 10});
  sparc.intrinsic(Intrinsic::Exp, 7);
  EXPECT_EQ(sink.vec_ops, 1);
  EXPECT_EQ(sink.vec_repeats, 3);
  EXPECT_EQ(sink.scalar_ops, 1);
  EXPECT_EQ(sink.intrinsic_calls, 7);
}

TEST(Comparator, OpSinkSurvivesResetAndDetaches) {
  sink_test::CountingSink sink;
  Comparator sx4(Comparator::nec_sx4_single());
  sx4.set_op_sink(&sink);
  sx4.reset();  // kernels reset on entry; recording must keep working
  sx4.vec(triad(100));
  EXPECT_EQ(sink.vec_ops, 1);
  sx4.set_op_sink(nullptr);
  sx4.vec(triad(100));
  EXPECT_EQ(sink.vec_ops, 1);
}

TEST(Comparator, OpSinkDoesNotPerturbCharges) {
  sink_test::CountingSink sink;
  Comparator observed(Comparator::nec_sx4_single());
  Comparator plain(Comparator::nec_sx4_single());
  observed.set_op_sink(&sink);
  observed.vec(triad(1 << 16));
  plain.vec(triad(1 << 16));
  EXPECT_EQ(observed.seconds().value(), plain.seconds().value());
}

}  // namespace
