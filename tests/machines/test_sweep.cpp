// Sweep determinism + bounded-memory battery (ISSUE 7 satellite): the grid
// is lazy (index-decoded, never materialised), sequential and threaded
// sweeps emit byte-identical JSON, repeated runs are byte-identical, and
// the number of simultaneously-live replay workspaces is bounded by the
// host thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "machines/description.hpp"
#include "machines/sweep.hpp"
#include "radabs/radabs.hpp"
#include "sxs/execution_policy.hpp"

namespace {

using ncar::ThreadPool;
using ncar::machines::Axis;
using ncar::machines::builtin_catalog;
using ncar::machines::Comparator;
using ncar::machines::Grid;
using ncar::machines::MachineDescription;
using ncar::machines::Probe;
using ncar::machines::record_probe;
using ncar::machines::replay_probe;
using ncar::machines::run_sweep;
using ncar::machines::SweepOptions;
using ncar::machines::SweepReport;
using ncar::sxs::ExecutionPolicy;

MachineDescription sx4_base() { return builtin_catalog().at("NEC SX-4/1"); }

/// The small grid used by the determinism tests: 3*2*2*2 = 24 points,
/// including invalid combinations (pipes=3 never divides VL 64/256).
Grid small_grid() {
  return Grid(sx4_base(), {
                              {"pipes_per_group", {3, 8, 16}},
                              {"vector_length", {64, 256}},
                              {"port_bytes_per_clock", {32, 128}},
                              {"memory_banks", {256, 1024}},
                          });
}

// ---------------------------------------------------------------------------
// Grid

TEST(Grid, MixedRadixDecodingFirstAxisFastest) {
  const Grid g(sx4_base(), {{"pipes_per_group", {2, 4, 8}},
                            {"memory_banks", {256, 1024}}});
  ASSERT_EQ(g.size(), 6u);
  EXPECT_EQ(g.coordinates(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(g.coordinates(1), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(g.coordinates(2), (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(g.coordinates(3), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(g.coordinates(5), (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(g.values(4), (std::vector<double>{4, 1024}));
  const MachineDescription d = g.config(4);
  EXPECT_EQ(d.get_or("pipes_per_group", 0.0), 4.0);
  EXPECT_EQ(d.get_or("memory_banks", 0.0), 1024.0);
  EXPECT_EQ(d.get_or("clock_ns", 0.0), 9.2);  // base survives the overlay
}

TEST(Grid, NeighborWalksOneAxisAndStopsAtTheEdge) {
  const Grid g(sx4_base(), {{"pipes_per_group", {2, 4, 8}},
                            {"memory_banks", {256, 1024}}});
  EXPECT_EQ(g.neighbor(0, 0), 1u);
  EXPECT_EQ(g.neighbor(2, 0), g.size());  // pipes already at the last value
  EXPECT_EQ(g.neighbor(0, 1), 3u);
  EXPECT_EQ(g.neighbor(3, 1), g.size());  // banks already at the last value
}

TEST(Grid, HugeGridsStayLazy) {
  // A ~10^8-point grid must construct instantly and answer point queries
  // without materialising anything: memory stays O(axes), not O(points).
  std::vector<double> many;
  for (int i = 1; i <= 10'000; ++i) many.push_back(i);
  const Grid g(sx4_base(), {{"cache_miss_clocks", many},
                            {"vector_startup_clocks", many}});
  ASSERT_EQ(g.size(), 100'000'000u);
  const MachineDescription d = g.config(g.size() - 1);
  EXPECT_EQ(d.get_or("cache_miss_clocks", 0.0), 10'000.0);
  EXPECT_EQ(d.get_or("vector_startup_clocks", 0.0), 10'000.0);
  EXPECT_EQ(g.neighbor(g.size() - 1, 0), g.size());
}

TEST(Grid, RejectsBadAxes) {
  EXPECT_THROW(Grid(sx4_base(), {{"warp_factor", {1}}}), ncar::config_error);
  EXPECT_THROW(Grid(sx4_base(), {{"pipes_per_group", {}}}),
               ncar::config_error);
  EXPECT_THROW(Grid(sx4_base(), {{"pipes_per_group", {2}},
                                 {"pipes_per_group", {4}}}),
               ncar::config_error);
}

// ---------------------------------------------------------------------------
// Probe record / replay

TEST(Probe, RecordedRadabsReplaysBitIdentically) {
  // The whole engine rests on this: replaying the recorded op stream must
  // charge exactly what the real kernel run charged, machine by machine.
  const Probe probe = record_probe("radabs");
  EXPECT_GT(probe.ops.size(), 1000u);
  for (const auto* name : {"NEC SX-4/1", "CRI Y-MP", "SUN Sparc20",
                           "NEC SX-Aurora TSUBASA"}) {
    SCOPED_TRACE(name);
    Comparator machine(ncar::machines::spec_for(name));
    const auto direct = ncar::radabs::run_radabs_standard(machine);
    const auto replay = replay_probe(probe, ncar::machines::spec_for(name));
    EXPECT_EQ(replay.seconds, direct.seconds);
  }
}

TEST(Probe, KernelsRecordAndUnknownNamesThrow) {
  EXPECT_EQ(ncar::machines::probe_kernels(),
            (std::vector<std::string>{"radabs", "hint", "vfft"}));
  const Probe hint = record_probe("hint");
  EXPECT_EQ(hint.kernel, "hint");
  EXPECT_GT(hint.ops.size(), 10u);
  const Probe vfft = record_probe("vfft");
  EXPECT_EQ(vfft.ops.size(), 8u);
  EXPECT_EQ(vfft.total_charges(), 8.0 * 128.0);
  EXPECT_THROW(record_probe("linpack"), ncar::config_error);
}

// ---------------------------------------------------------------------------
// Sweep determinism

TEST(Sweep, SequentialAndThreadedJsonByteIdentical) {
  SweepOptions seq;
  seq.kernel = "radabs";
  seq.policy = ExecutionPolicy::Sequential;
  const SweepReport a = run_sweep(small_grid(), seq);

  ThreadPool pool(8);
  SweepOptions thr;
  thr.kernel = "radabs";
  thr.policy = ExecutionPolicy::Threaded;
  thr.pool = &pool;
  const SweepReport b = run_sweep(small_grid(), thr);

  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(Sweep, RepeatedRunsByteIdentical) {
  SweepOptions opts;
  opts.kernel = "vfft";
  opts.policy = ExecutionPolicy::Sequential;
  const std::string first = run_sweep(small_grid(), opts).to_json();
  const std::string second = run_sweep(small_grid(), opts).to_json();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Sweep, LiveWorkspacesBoundedByHostThreads) {
  SweepOptions seq;
  seq.kernel = "vfft";
  seq.policy = ExecutionPolicy::Sequential;
  const SweepReport a = run_sweep(small_grid(), seq);
  EXPECT_EQ(a.peak_live_workspaces, 1);

  ThreadPool pool(4);
  SweepOptions thr = seq;
  thr.policy = ExecutionPolicy::Threaded;
  thr.pool = &pool;
  const SweepReport b = run_sweep(small_grid(), thr);
  EXPECT_GE(b.peak_live_workspaces, 1);
  EXPECT_LE(b.peak_live_workspaces, pool.thread_count());
}

// ---------------------------------------------------------------------------
// Sweep semantics

TEST(Sweep, InvalidCombinationsKeepTheGridRectangular) {
  SweepOptions opts;
  opts.kernel = "vfft";
  opts.policy = ExecutionPolicy::Sequential;
  const SweepReport rep = run_sweep(small_grid(), opts);
  ASSERT_EQ(rep.points.size(), 24u);
  // pipes=3 divides neither VL 64 nor 256: a third of the grid is invalid,
  // present, and carries the lowering error.
  EXPECT_EQ(rep.valid_count(), 16u);
  for (const auto& p : rep.points) {
    if (p.valid) {
      EXPECT_GT(p.seconds, 0.0);
      EXPECT_TRUE(p.error.empty());
    } else {
      EXPECT_NE(p.error.find("vector register length"), std::string::npos)
          << p.error;
    }
  }
}

TEST(Sweep, ClassificationIsAPureFunctionOfTheGains) {
  SweepOptions opts;
  opts.kernel = "radabs";
  opts.policy = ExecutionPolicy::Sequential;
  const SweepReport rep = run_sweep(small_grid(), opts);
  for (const auto& p : rep.points) {
    if (!p.valid) continue;
    EXPECT_GT(p.memory_gain, 0.0);
    EXPECT_GT(p.compute_gain, 0.0);
    EXPECT_EQ(p.memory_bound, p.memory_gain >= p.compute_gain);
  }
  EXPECT_EQ(rep.valid_count(),
            rep.memory_bound_count() +
                (rep.valid_count() - rep.memory_bound_count()));
}

TEST(Sweep, FlipEdgesConnectDisagreeingNeighbors) {
  const Grid grid = small_grid();
  SweepOptions opts;
  opts.kernel = "radabs";
  opts.policy = ExecutionPolicy::Sequential;
  const SweepReport rep = run_sweep(grid, opts);
  // A 16-pipe SX-4 behind a weak 32-byte port is memory-bound while the
  // 8-pipe one is compute-bound: the pipes and port axes must both flip
  // somewhere on this grid.
  EXPECT_FALSE(rep.flips.empty());
  for (const auto& f : rep.flips) {
    ASSERT_LT(f.from, rep.points.size());
    ASSERT_LT(f.to, rep.points.size());
    EXPECT_TRUE(rep.points[f.from].valid);
    EXPECT_TRUE(rep.points[f.to].valid);
    EXPECT_NE(rep.points[f.from].memory_bound, rep.points[f.to].memory_bound);
    // The edge really is a neighbor relation along the named axis.
    bool named_axis_found = false;
    for (std::size_t a = 0; a < grid.axes().size(); ++a) {
      if (grid.axes()[a].key == f.axis) {
        named_axis_found = true;
        EXPECT_EQ(grid.neighbor(f.from, a), f.to);
      }
    }
    EXPECT_TRUE(named_axis_found) << f.axis;
  }
}

TEST(Sweep, FastestPointAndJsonShape) {
  SweepOptions opts;
  opts.kernel = "radabs";
  opts.policy = ExecutionPolicy::Sequential;
  const SweepReport rep = run_sweep(small_grid(), opts);
  const auto* best = rep.fastest();
  ASSERT_NE(best, nullptr);
  for (const auto& p : rep.points) {
    if (p.valid) {
      EXPECT_LE(best->seconds, p.seconds);
    }
  }
  const std::string j = rep.to_json();
  EXPECT_NE(j.find("\"kernel\": \"radabs\""), std::string::npos);
  EXPECT_NE(j.find("\"grid_size\": 24"), std::string::npos);
  EXPECT_NE(j.find("\"valid_points\": 16"), std::string::npos);
  EXPECT_NE(j.find("\"memory_bound\""), std::string::npos);
  EXPECT_NE(j.find("\"flips\""), std::string::npos);
  // peak_live_workspaces is host-thread-dependent: never serialised.
  EXPECT_EQ(j.find("peak_live_workspaces"), std::string::npos);
}

}  // namespace
