// Description-validation battery (ISSUE 7 satellite): malformed machine
// tables must be rejected with precise, line-numbered messages, and
// parse → lower → re-emit must round-trip bit-exactly.

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "machines/description.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::config_error;
using ncar::machines::builtin_catalog;
using ncar::machines::builtin_names;
using ncar::machines::Catalog;
using ncar::machines::KeyKind;
using ncar::machines::MachineDescription;
using ncar::machines::parse_catalog;
using ncar::machines::Spec;
using ncar::machines::spec_for;

/// Expect `fn` to throw config_error whose message contains `substr`.
template <typename Fn>
void expect_rejected(Fn&& fn, const std::string& substr) {
  try {
    fn();
    FAIL() << "expected config_error containing: " << substr;
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
        << "message was: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Schema

TEST(DescriptionSchema, EveryKeyIsKnownAndUnique) {
  const auto& schema = ncar::machines::description_schema();
  EXPECT_GE(schema.size(), 30u);
  for (std::size_t i = 0; i < schema.size(); ++i) {
    EXPECT_TRUE(ncar::machines::known_key(schema[i].key)) << schema[i].key;
    for (std::size_t j = i + 1; j < schema.size(); ++j) {
      EXPECT_STRNE(schema[i].key, schema[j].key);
    }
  }
  EXPECT_FALSE(ncar::machines::known_key("flux_capacitor_jw"));
  EXPECT_FALSE(ncar::machines::known_key(""));
}

// ---------------------------------------------------------------------------
// Parser rejections (satellite checklist: zero clock, negative bank count,
// VL=0, unknown keys, duplicate machine names — plus the format errors)

TEST(DescriptionParse, UnknownKeyRejectedWithLineNumber) {
  expect_rejected(
      [] {
        parse_catalog("machine \"M\"\n  clock_ns = 1\n  warp_factor = 9\n");
      },
      "catalog line 3: unknown key 'warp_factor'");
}

TEST(DescriptionParse, DuplicateKeyRejected) {
  expect_rejected(
      [] {
        parse_catalog("machine \"M\"\n  clock_ns = 1\n  clock_ns = 2\n");
      },
      "catalog line 3: duplicate key 'clock_ns' in machine 'M'");
}

TEST(DescriptionParse, DuplicateMachineNameRejected) {
  expect_rejected(
      [] { parse_catalog("machine \"M\"\n  clock_ns = 1\nmachine \"M\"\n"); },
      "catalog line 3: duplicate machine name 'M'");
}

TEST(DescriptionParse, KeyBeforeFirstMachineRejected) {
  expect_rejected([] { parse_catalog("clock_ns = 1\n"); },
                  "catalog line 1: key before the first machine header");
}

TEST(DescriptionParse, MalformedNumberRejected) {
  expect_rejected(
      [] { parse_catalog("machine \"M\"\n  clock_ns = fast\n"); },
      "catalog line 2: malformed number 'fast'");
  expect_rejected(
      [] { parse_catalog("machine \"M\"\n  clock_ns = 1.0x\n"); },
      "malformed number '1.0x'");
}

TEST(DescriptionParse, MalformedHeaderRejected) {
  expect_rejected([] { parse_catalog("machine M\n"); },
                  "machine header must be: machine \"Name\"");
  expect_rejected([] { parse_catalog("machine \"\"\n"); },
                  "machine name must not be empty");
  expect_rejected([] { parse_catalog("machine \"a\"b\"\n"); },
                  "machine name must not contain quotes");
}

TEST(DescriptionParse, StrayLineRejected) {
  expect_rejected([] { parse_catalog("machine \"M\"\n  what is this\n"); },
                  "expected `key = value`");
}

TEST(DescriptionParse, FlagMustBeTrueOrFalse) {
  expect_rejected(
      [] { parse_catalog("machine \"M\"\n  vector_unit = 1\n"); },
      "vector_unit must be true or false, got '1'");
  const Catalog ok =
      parse_catalog("machine \"M\"\n  clock_ns = 1\n  vector_unit = false\n");
  EXPECT_EQ(ok.machines.at(0).get_or("vector_unit", 1.0), 0.0);
}

TEST(DescriptionParse, CommentsAndBlankLinesIgnored) {
  const Catalog cat = parse_catalog(
      "# header comment\n\nmachine \"M\"\n  # indented comment\n"
      "  clock_ns = 2.5\n\n");
  ASSERT_EQ(cat.machines.size(), 1u);
  EXPECT_EQ(cat.machines[0].get_or("clock_ns", 0.0), 2.5);
}

// ---------------------------------------------------------------------------
// Lowering rejections (kind checks + MachineConfig::validate, named)

TEST(DescriptionLower, ZeroClockRejected) {
  expect_rejected(
      [] {
        parse_catalog("machine \"Broken\"\n  clock_ns = 0\n")
            .machines.at(0)
            .lower();
      },
      "machine 'Broken': clock_ns must be a positive number (got 0)");
}

TEST(DescriptionLower, NegativeBankCountRejected) {
  expect_rejected(
      [] {
        parse_catalog(
            "machine \"Broken\"\n  clock_ns = 1\n  memory_banks = -256\n")
            .machines.at(0)
            .lower();
      },
      "machine 'Broken': memory_banks must be a positive integer (got -256)");
}

TEST(DescriptionLower, ZeroVectorLengthRejected) {
  expect_rejected(
      [] {
        parse_catalog(
            "machine \"Broken\"\n  clock_ns = 1\n  vector_length = 0\n")
            .machines.at(0)
            .lower();
      },
      "machine 'Broken': vector_length must be a positive integer (got 0)");
}

TEST(DescriptionLower, NonIntegralCountRejected) {
  expect_rejected(
      [] {
        parse_catalog(
            "machine \"Broken\"\n  clock_ns = 1\n  pipes_per_group = 2.5\n")
            .machines.at(0)
            .lower();
      },
      "pipes_per_group must be a positive integer (got 2.5)");
}

TEST(DescriptionLower, ConfigValidateFailuresNameTheMachine) {
  // Consistency checks beyond per-key kinds still come from
  // MachineConfig::validate, wrapped with the machine's name.
  expect_rejected(
      [] {
        parse_catalog(
            "machine \"Odd\"\n  clock_ns = 1\n  vector_length = 100\n"
            "  pipes_per_group = 3\n")
            .machines.at(0)
            .lower();
      },
      "machine 'Odd': MachineConfig: vector register length");
  expect_rejected(
      [] {
        parse_catalog(
            "machine \"Odd\"\n  clock_ns = 1\n  memory_banks = 100\n")
            .machines.at(0)
            .lower();
      },
      "machine 'Odd': MachineConfig: bank count must be a power of two");
}

TEST(DescriptionLower, ClockIsRequired) {
  expect_rejected(
      [] { parse_catalog("machine \"M\"\n  nodes = 1\n").machines.at(0).lower(); },
      "machine 'M': clock_ns is required");
}

TEST(DescriptionLower, UnsetKeysInheritSx4Defaults) {
  const Spec s =
      parse_catalog("machine \"Tweaked\"\n  clock_ns = 4\n")
          .machines.at(0)
          .lower();
  const ncar::sxs::MachineConfig defaults;
  EXPECT_EQ(s.cfg.clock_ns, 4.0);
  EXPECT_EQ(s.cfg.name, "Tweaked");
  EXPECT_EQ(s.cfg.vector_length, defaults.vector_length);
  EXPECT_EQ(s.cfg.pipes_per_group, defaults.pipes_per_group);
  EXPECT_EQ(s.cfg.memory_banks, defaults.memory_banks);
  EXPECT_EQ(s.cfg.port_bytes_per_clock.value(),
            defaults.port_bytes_per_clock.value());
  EXPECT_TRUE(s.has_vector);
  EXPECT_EQ(s.libm_call_overhead_cycles, 0.0);
  EXPECT_EQ(s.vector_libm_multiplier, 1.0);
}

// ---------------------------------------------------------------------------
// set / get_or / canonical order

TEST(Description, SetKeepsCanonicalOrderRegardlessOfCallOrder) {
  MachineDescription a{"M", {}};
  a.set("memory_banks", 512);
  a.set("clock_ns", 2);
  a.set("vector_length", 128);
  MachineDescription b{"M", {}};
  b.set("vector_length", 128);
  b.set("memory_banks", 512);
  b.set("clock_ns", 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.entries[0].first, "clock_ns");
  EXPECT_EQ(a.entries[1].first, "vector_length");
  EXPECT_EQ(a.entries[2].first, "memory_banks");
  a.set("clock_ns", 3);  // overwrite, no duplicate
  EXPECT_EQ(a.entries.size(), 3u);
  EXPECT_EQ(a.get_or("clock_ns", 0.0), 3.0);
  EXPECT_EQ(a.get_or("iops", -1.0), -1.0);
  EXPECT_TRUE(a.has("memory_banks"));
  EXPECT_FALSE(a.has("iops"));
  expect_rejected([&] { a.set("warp_factor", 9); },
                  "machine 'M': unknown key 'warp_factor'");
}

TEST(Description, KeyOrderInTableDoesNotMatter) {
  const Catalog a = parse_catalog(
      "machine \"M\"\n  clock_ns = 2\n  memory_banks = 512\n");
  const Catalog b = parse_catalog(
      "machine \"M\"\n  memory_banks = 512\n  clock_ns = 2\n");
  EXPECT_EQ(a.machines.at(0), b.machines.at(0));
  EXPECT_EQ(a.machines.at(0).to_table(), b.machines.at(0).to_table());
}

// ---------------------------------------------------------------------------
// Round trips

TEST(DescriptionRoundTrip, EveryBuiltinMachineSurvivesReEmission) {
  for (const MachineDescription& m : builtin_catalog().machines) {
    SCOPED_TRACE(m.name);
    const Catalog re = parse_catalog(m.to_table());
    ASSERT_EQ(re.machines.size(), 1u);
    EXPECT_EQ(re.machines[0], m) << m.to_table();
  }
}

TEST(DescriptionRoundTrip, WholeCatalogSurvivesReEmission) {
  const Catalog& cat = builtin_catalog();
  const Catalog re = parse_catalog(cat.to_table());
  ASSERT_EQ(re.machines.size(), cat.machines.size());
  for (std::size_t i = 0; i < cat.machines.size(); ++i) {
    EXPECT_EQ(re.machines[i], cat.machines[i]);
  }
}

TEST(DescriptionRoundTrip, AwkwardDoublesSurviveShortestForm) {
  // Non-terminating binary fractions and tiny coefficients must re-emit to
  // the exact same double (shortest round-trip formatting).
  MachineDescription m{"M", {}};
  m.set("clock_ns", 16.7);
  m.set("bank_contention_per_cpu", 6.8e-4);
  m.set("hippi_setup_s", 40e-6);
  m.set("vector_libm_multiplier", 2.2);
  const Catalog re = parse_catalog(m.to_table());
  EXPECT_EQ(re.machines.at(0), m);
  EXPECT_EQ(re.machines.at(0).get_or("clock_ns", 0.0), 16.7);
  EXPECT_EQ(re.machines.at(0).get_or("bank_contention_per_cpu", 0.0), 6.8e-4);
}

TEST(DescriptionRoundTrip, ParseLowerReEmitIsStable) {
  // to_table → parse → lower must equal direct lower, for every builtin.
  for (const MachineDescription& m : builtin_catalog().machines) {
    SCOPED_TRACE(m.name);
    const Spec direct = m.lower();
    const Spec rebuilt = parse_catalog(m.to_table()).machines.at(0).lower();
    EXPECT_EQ(direct.cfg.clock_ns, rebuilt.cfg.clock_ns);
    EXPECT_EQ(direct.cfg.vector_length, rebuilt.cfg.vector_length);
    EXPECT_EQ(direct.cfg.port_bytes_per_clock.value(),
              rebuilt.cfg.port_bytes_per_clock.value());
    EXPECT_EQ(direct.has_vector, rebuilt.has_vector);
    EXPECT_EQ(direct.vector_libm_multiplier, rebuilt.vector_libm_multiplier);
  }
}

// ---------------------------------------------------------------------------
// Builtin catalog contents

TEST(BuiltinCatalog, HasTheLegacyAndModernMachines) {
  const auto names = builtin_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "SUN Sparc20");
  EXPECT_EQ(names[1], "IBM RS6000/590");
  EXPECT_EQ(names[2], "CRI J90");
  EXPECT_EQ(names[3], "CRI Y-MP");
  EXPECT_EQ(names[4], "NEC SX-4/1");
  EXPECT_EQ(names[5], "NEC SX-Aurora TSUBASA");
  EXPECT_EQ(names[6], "Fujitsu A64FX");
  EXPECT_EQ(names[7], "RISC-V RVV Vitruvius");
}

TEST(BuiltinCatalog, EveryEntryLowersAndValidates) {
  for (const auto& name : builtin_names()) {
    SCOPED_TRACE(name);
    const Spec s = spec_for(name);
    EXPECT_EQ(s.name, name);
    EXPECT_NO_THROW(s.cfg.validate());
  }
}

TEST(BuiltinCatalog, ModernDesignPointsAreFasterThanThe1996Crays) {
  // Sub-nanosecond clocks and wider pipes: peak per-CPU flops of every
  // modern point must dominate the Y-MP's.
  const double ymp = spec_for("CRI Y-MP").cfg.peak_flops_per_cpu();
  for (const auto* name :
       {"NEC SX-Aurora TSUBASA", "Fujitsu A64FX", "RISC-V RVV Vitruvius"}) {
    SCOPED_TRACE(name);
    EXPECT_GT(spec_for(name).cfg.peak_flops_per_cpu(), ymp);
  }
}

TEST(BuiltinCatalog, LookupMissesListKnownNames) {
  expect_rejected([] { spec_for("DEC Alpha"); },
                  "no machine named 'DEC Alpha' in catalog");
  expect_rejected([] { spec_for("DEC Alpha"); }, "SUN Sparc20");
  EXPECT_EQ(builtin_catalog().find("DEC Alpha"), nullptr);
  EXPECT_NE(builtin_catalog().find("CRI J90"), nullptr);
}

}  // namespace
