// Golden equivalence battery (ISSUE 7): every legacy comparator preset,
// rebuilt from its builtin-catalog description table, must charge
// bit-identically to the hard-coded Spec it replaced.
//
// The pre-catalog presets live in this file VERBATIM (copied from
// src/machines/comparator.cpp as of PR 6, same pinning style as
// tests/des/test_golden.cpp): if a catalog edit, a parser change, or a
// lowering change perturbs any preset by even one ulp on the RADABS or
// HINT probes, these tests fail.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hint/hint.hpp"
#include "machines/comparator.hpp"
#include "machines/description.hpp"
#include "radabs/radabs.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::Bytes;
using ncar::machines::Comparator;
using ncar::machines::Spec;

// ---------------------------------------------------------------------------
// The legacy presets, verbatim (pre-description hard-coded Specs).

/// Shared starting point: strip the SX-4 defaults down to a single CPU.
ncar::sxs::MachineConfig base_single_cpu() {
  ncar::sxs::MachineConfig c;
  c.cpus_per_node = 1;
  c.nodes = 1;
  return c;
}

Spec legacy_sun_sparc20() {
  Spec s;
  s.name = "SUN Sparc20";
  s.has_vector = false;
  s.libm_call_overhead_cycles = 52.0;
  ncar::sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 16.7;  // 60 MHz SuperSPARC
  c.scalar_issue_width = 2;  // 3-way issue, ~2 sustained on tuned loops
  c.dcache_bytes = 16 * 1024;
  c.cache_line_bytes = 32;
  c.cache_ways = 4;
  c.cache_miss_clocks = 12.0;  // L2 / memory blend
  // Vector parameters are unused (has_vector == false) but must validate.
  return s;
}

Spec legacy_ibm_rs6000_590() {
  Spec s;
  s.name = "IBM RS6000/590";
  s.has_vector = false;
  s.libm_call_overhead_cycles = 42.0;
  ncar::sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 15.0;  // 66.5 MHz POWER2
  c.scalar_issue_width = 2;  // dual FMA units; ~2 sustained instr/clock
  c.dcache_bytes = 256 * 1024;
  c.cache_line_bytes = 256;
  c.cache_ways = 4;
  c.cache_miss_clocks = 12.0;
  return s;
}

Spec legacy_cray_j90() {
  Spec s;
  s.name = "CRI J90";
  s.has_vector = true;
  s.vector_libm_multiplier = 2.2;  // early CMOS vector libm, poorly tuned
  ncar::sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 10.0;  // 100 MHz CMOS
  c.vector_length = 64;
  c.pipes_per_group = 1;  // one add pipe + one multiply pipe
  c.vector_startup_clocks = 28.0;
  c.vector_issue_clocks = 1.0;
  c.divide_cycles_per_result = 6.0;
  c.memory_banks = 256;
  c.port_bytes_per_clock = Bytes(8.0);  // one word per clock (J90's weak memory)
  c.node_bytes_per_clock = Bytes(8.0);
  c.gather_port_divisor = 2.0;
  c.scatter_port_divisor = 2.0;
  // Scalar side: no data cache on Crays; model as a tiny buffer with a short
  // pipelined memory latency per reference.
  c.scalar_issue_width = 1;
  c.dcache_bytes = 512;
  c.cache_line_bytes = 8;
  c.cache_ways = 1;
  c.cache_miss_clocks = 6.0;
  return s;
}

Spec legacy_cray_ymp() {
  Spec s;
  s.name = "CRI Y-MP";
  s.has_vector = true;
  s.vector_libm_multiplier = 1.25;  // library flops beyond the pipe model
  ncar::sxs::MachineConfig& c = s.cfg;
  c = base_single_cpu();
  c.name = s.name;
  c.clock_ns = 6.0;  // 166 MHz ECL
  c.vector_length = 64;
  c.pipes_per_group = 1;
  c.vector_startup_clocks = 18.0;
  c.vector_issue_clocks = 1.0;
  c.divide_cycles_per_result = 4.0;
  c.memory_banks = 256;
  c.port_bytes_per_clock = Bytes(24.0);  // two loads + one store per clock
  c.node_bytes_per_clock = Bytes(24.0);
  c.gather_port_divisor = 2.0;
  c.scatter_port_divisor = 2.0;
  c.scalar_issue_width = 1;
  c.dcache_bytes = 512;
  c.cache_line_bytes = 8;
  c.cache_ways = 1;
  c.cache_miss_clocks = 5.0;
  return s;
}

Spec legacy_nec_sx4_single() {
  Spec s;
  s.name = "NEC SX-4/1";
  s.has_vector = true;
  s.cfg = ncar::sxs::MachineConfig::sx4_benchmarked();
  s.cfg.cpus_per_node = 1;
  s.cfg.name = s.name;
  return s;
}

// ---------------------------------------------------------------------------
// Equivalence harness

struct GoldenCase {
  const char* catalog_name;
  Spec (*legacy)();
  Spec (*preset)();
};

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> kCases = {
      {"SUN Sparc20", &legacy_sun_sparc20, &Comparator::sun_sparc20},
      {"IBM RS6000/590", &legacy_ibm_rs6000_590, &Comparator::ibm_rs6000_590},
      {"CRI J90", &legacy_cray_j90, &Comparator::cray_j90},
      {"CRI Y-MP", &legacy_cray_ymp, &Comparator::cray_ymp},
      {"NEC SX-4/1", &legacy_nec_sx4_single, &Comparator::nec_sx4_single},
  };
  return kCases;
}

/// Every field of the lowered configuration that the timing model reads.
void expect_config_identical(const ncar::sxs::MachineConfig& a,
                             const ncar::sxs::MachineConfig& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.clock_ns, b.clock_ns);
  EXPECT_EQ(a.cpus_per_node, b.cpus_per_node);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.vector_length, b.vector_length);
  EXPECT_EQ(a.pipes_per_group, b.pipes_per_group);
  EXPECT_EQ(a.vector_issue_clocks, b.vector_issue_clocks);
  EXPECT_EQ(a.vector_startup_clocks, b.vector_startup_clocks);
  EXPECT_EQ(a.divide_cycles_per_result, b.divide_cycles_per_result);
  EXPECT_EQ(a.scalar_issue_width, b.scalar_issue_width);
  EXPECT_EQ(a.dcache_bytes, b.dcache_bytes);
  EXPECT_EQ(a.icache_bytes, b.icache_bytes);
  EXPECT_EQ(a.cache_line_bytes, b.cache_line_bytes);
  EXPECT_EQ(a.cache_ways, b.cache_ways);
  EXPECT_EQ(a.cache_miss_clocks, b.cache_miss_clocks);
  EXPECT_EQ(a.memory_banks, b.memory_banks);
  EXPECT_EQ(a.bank_cycle_clocks, b.bank_cycle_clocks);
  EXPECT_EQ(a.port_bytes_per_clock.value(), b.port_bytes_per_clock.value());
  EXPECT_EQ(a.node_bytes_per_clock.value(), b.node_bytes_per_clock.value());
  EXPECT_EQ(a.gather_port_divisor, b.gather_port_divisor);
  EXPECT_EQ(a.scatter_port_divisor, b.scatter_port_divisor);
  EXPECT_EQ(a.strided_port_divisor, b.strided_port_divisor);
  EXPECT_EQ(a.bank_contention_per_cpu, b.bank_contention_per_cpu);
  EXPECT_EQ(a.commreg_op_clocks, b.commreg_op_clocks);
  EXPECT_EQ(a.barrier_base_clocks, b.barrier_base_clocks);
  EXPECT_EQ(a.barrier_per_cpu_clocks, b.barrier_per_cpu_clocks);
  EXPECT_EQ(a.xmu_bytes_per_clock.value(), b.xmu_bytes_per_clock.value());
  EXPECT_EQ(a.xmu_capacity_bytes.value(), b.xmu_capacity_bytes.value());
  EXPECT_EQ(a.iops, b.iops);
  EXPECT_EQ(a.iop_bytes_per_s.value(), b.iop_bytes_per_s.value());
  EXPECT_EQ(a.hippi_bytes_per_s.value(), b.hippi_bytes_per_s.value());
  EXPECT_EQ(a.hippi_setup_s, b.hippi_setup_s);
  EXPECT_EQ(a.ixs_channel_bytes_per_s.value(),
            b.ixs_channel_bytes_per_s.value());
  EXPECT_EQ(a.ixs_latency_s, b.ixs_latency_s);
  EXPECT_EQ(a.ixs_max_nodes, b.ixs_max_nodes);
}

TEST(GoldenDescriptions, LoweredConfigsFieldIdentical) {
  for (const GoldenCase& g : golden_cases()) {
    SCOPED_TRACE(g.catalog_name);
    const Spec legacy = g.legacy();
    const Spec built = ncar::machines::spec_for(g.catalog_name);
    EXPECT_EQ(legacy.name, built.name);
    EXPECT_EQ(legacy.has_vector, built.has_vector);
    EXPECT_EQ(legacy.libm_call_overhead_cycles,
              built.libm_call_overhead_cycles);
    EXPECT_EQ(legacy.vector_libm_multiplier, built.vector_libm_multiplier);
    expect_config_identical(legacy.cfg, built.cfg);
  }
}

TEST(GoldenDescriptions, PresetsAreTheCatalogTwins) {
  // The Comparator preset factories now lower the catalog; they must agree
  // with spec_for, and (via the legacy functions above) with the pre-PR
  // hard-coded values.
  for (const GoldenCase& g : golden_cases()) {
    SCOPED_TRACE(g.catalog_name);
    const Spec preset = g.preset();
    const Spec legacy = g.legacy();
    EXPECT_EQ(preset.name, legacy.name);
    expect_config_identical(preset.cfg, legacy.cfg);
  }
}

TEST(GoldenDescriptions, RadabsChargesBitIdentical) {
  for (const GoldenCase& g : golden_cases()) {
    SCOPED_TRACE(g.catalog_name);
    Comparator legacy(g.legacy());
    Comparator built(ncar::machines::spec_for(g.catalog_name));
    const auto want = ncar::radabs::run_radabs_standard(legacy);
    const auto got = ncar::radabs::run_radabs_standard(built);
    EXPECT_EQ(want.seconds, got.seconds);
    EXPECT_EQ(want.equiv_mflops, got.equiv_mflops);
    EXPECT_EQ(want.hw_mflops, got.hw_mflops);
    EXPECT_EQ(legacy.hw_flops().value(), built.hw_flops().value());
    EXPECT_EQ(legacy.equiv_flops().value(), built.equiv_flops().value());
    EXPECT_EQ(legacy.cpu().cycles(), built.cpu().cycles());
  }
}

TEST(GoldenDescriptions, HintChargesBitIdentical) {
  for (const GoldenCase& g : golden_cases()) {
    SCOPED_TRACE(g.catalog_name);
    Comparator legacy(g.legacy());
    Comparator built(ncar::machines::spec_for(g.catalog_name));
    const auto want = ncar::hint::run_hint(legacy, 20'000);
    const auto got = ncar::hint::run_hint(built, 20'000);
    EXPECT_EQ(want.seconds, got.seconds);
    EXPECT_EQ(want.mquips, got.mquips);
    EXPECT_EQ(legacy.cpu().cycles(), built.cpu().cycles());
  }
}

TEST(GoldenDescriptions, IntrinsicPathBitIdentical) {
  // The libm extras (call overhead on scalar machines, multiplier on
  // vector machines) ride in the Spec, outside MachineConfig — cover the
  // lowered values through the charging path too.
  for (const GoldenCase& g : golden_cases()) {
    SCOPED_TRACE(g.catalog_name);
    Comparator legacy(g.legacy());
    Comparator built(ncar::machines::spec_for(g.catalog_name));
    for (const auto f :
         {ncar::sxs::Intrinsic::Exp, ncar::sxs::Intrinsic::Sqrt,
          ncar::sxs::Intrinsic::Pow}) {
      legacy.intrinsic(f, 10'000);
      built.intrinsic(f, 10'000);
    }
    EXPECT_EQ(legacy.seconds().value(), built.seconds().value());
    EXPECT_EQ(legacy.equiv_flops().value(), built.equiv_flops().value());
  }
}

}  // namespace
