#include "ocean/mask.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using ncar::ocean::LandMask;

TEST(LandMask, OceanFractionNearHalf) {
  LandMask m(360, 180);
  EXPECT_GT(m.ocean_fraction(), 0.35);
  EXPECT_LT(m.ocean_fraction(), 0.60);
}

TEST(LandMask, SouthernOceanBandIsAllWater) {
  LandMask m(360, 180);
  // Rows between 64S and 40S (j = lat + 90 - 0.5).
  for (int j = 30; j <= 48; ++j) {
    EXPECT_EQ(m.ocean_in_row(j), 360) << "row " << j;
  }
}

TEST(LandMask, PolarCapsMostlyLand) {
  LandMask m(360, 180);
  EXPECT_LT(m.ocean_in_row(0), 80);
  EXPECT_LT(m.ocean_in_row(179), 80);
}

TEST(LandMask, RowCountsMatchMask) {
  LandMask m(120, 60);
  long total = 0;
  for (int j = 0; j < 60; ++j) {
    int count = 0;
    for (int i = 0; i < 120; ++i) count += m.ocean(i, j);
    EXPECT_EQ(count, m.ocean_in_row(j));
    total += count;
  }
  EXPECT_EQ(total, m.ocean_total());
}

TEST(LandMask, ImbalanceGrowsWithProcessorCount) {
  LandMask m(360, 180);
  EXPECT_DOUBLE_EQ(m.block_imbalance(1), 1.0);
  EXPECT_GT(m.block_imbalance(8), m.block_imbalance(4));
  EXPECT_GE(m.block_imbalance(32), m.block_imbalance(16) * 0.99);
  // The Southern Ocean band caps the imbalance around 1/ocean_fraction.
  EXPECT_LT(m.block_imbalance(32), 1.0 / m.ocean_fraction() * 1.15);
}

TEST(LandMask, LowResolutionSameCharacter) {
  LandMask m(120, 60);
  EXPECT_GT(m.ocean_fraction(), 0.3);
  EXPECT_GT(m.block_imbalance(8), 1.2);
}

TEST(LandMask, InvalidShapesThrow) {
  EXPECT_THROW(LandMask(4, 180), ncar::precondition_error);
  LandMask m(120, 60);
  EXPECT_THROW(m.block_imbalance(0), ncar::precondition_error);
  EXPECT_THROW(m.block_imbalance(61), ncar::precondition_error);
}

}  // namespace
