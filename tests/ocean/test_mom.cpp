#include "ocean/mom.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;

class MomTest : public ::testing::Test {
protected:
  MomTest() : node(sxs::MachineConfig::sx4_benchmarked()) {}
  sxs::Node node;
};

TEST_F(MomTest, LowResolutionConfigMatchesPaper) {
  // "The low resolution version has a nominal horizontal resolution of 3
  // degrees ... with 25 levels"; high resolution 1 degree, 45 levels.
  const auto lo = ocean::MomConfig::low_resolution();
  EXPECT_EQ(lo.nlon, 120);
  EXPECT_EQ(lo.nlev, 25);
  const auto hi = ocean::MomConfig::high_resolution();
  EXPECT_EQ(hi.nlon, 360);
  EXPECT_EQ(hi.nlat, 180);
  EXPECT_EQ(hi.nlev, 45);
}

TEST_F(MomTest, SorSolverConverges) {
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  mom.step(1);
  // 60 SOR sweeps on the coarse grid drive the residual well down from the
  // O(1e-11) forcing magnitude.
  EXPECT_LT(mom.last_sor_residual(), 1e-11);
  EXPECT_GT(mom.last_sor_residual(), 0.0);
}

TEST_F(MomTest, TemperatureStaysPhysicalOver40Steps) {
  // Paper: "A run of 40 timesteps ... is used for testing and verification".
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  for (int s = 0; s < 40; ++s) mom.step(2);
  EXPECT_GT(mom.mean_temperature(), 0.0);
  EXPECT_LT(mom.mean_temperature(), 30.0);
  EXPECT_GT(mom.mean_salinity(), 33.0);
  EXPECT_LT(mom.mean_salinity(), 36.0);
}

TEST_F(MomTest, CirculationSpinsUpFromRest) {
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  EXPECT_DOUBLE_EQ(mom.barotropic_ke(), 0.0);
  mom.step(1);
  EXPECT_GT(mom.barotropic_ke(), 0.0);
}

TEST_F(MomTest, ConvectiveAdjustmentKeepsColumnsStable) {
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  for (int s = 0; s < 10; ++s) mom.step(1);
  // After adjustment, no deeper cell may be warmer than the one above.
  EXPECT_TRUE(mom.columns_statically_stable());
}

TEST_F(MomTest, DeterministicAcrossCpuCounts) {
  ocean::Mom a(ocean::MomConfig::low_resolution(), node);
  for (int s = 0; s < 5; ++s) a.step(1);
  ocean::Mom b(ocean::MomConfig::low_resolution(), node);
  for (int s = 0; s < 5; ++s) b.step(16);
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
}

TEST_F(MomTest, DiagnosticsStepIsSlower) {
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  // Steps 1..9 have no diagnostics; step 10 does.
  double t9 = 0;
  for (int s = 0; s < 9; ++s) t9 = mom.step(1);
  const double t10 = mom.step(1);
  EXPECT_GT(t10, t9);
}

TEST_F(MomTest, SpeedupShapeMatchesTable7) {
  // The headline: modest scalability — speedup at 32 CPUs lands near 9,
  // far below ideal (paper Table 7).
  ocean::Mom mom(ocean::MomConfig::high_resolution(), node);
  node.reset();
  mom.reset();
  const double t1 = mom.measure_step_seconds(1, 10);
  node.reset();
  mom.reset();
  const double t32 = mom.measure_step_seconds(32, 10);
  const double speedup = t1 / t32;
  EXPECT_GT(speedup, 6.0);
  EXPECT_LT(speedup, 12.0);
}

// The memoized replay contract: MOM's charges depend only on the config,
// the immutable land mask, ncpu, and the step index's diagnostics parity —
// never on the prognostic fields — so replaying charges must reproduce the
// full step's timing and per-CPU accumulators bit for bit.
TEST_F(MomTest, ChargeReplayBitIdenticalToFullStep) {
  sxs::Node node_full(sxs::MachineConfig::sx4_benchmarked());
  sxs::Node node_replay(sxs::MachineConfig::sx4_benchmarked());
  ocean::Mom full(ocean::MomConfig::low_resolution(), node_full);
  ocean::Mom replay(ocean::MomConfig::low_resolution(), node_replay);
  // Span a diagnostics step so the parity-dependent serial charge is hit.
  const int nsteps = static_cast<int>(
      ocean::MomConfig::low_resolution().diag_every) + 2;
  for (int s = 0; s < nsteps; ++s) {
    const double a = full.step(4);
    const double b = replay.charge_step(4, s);
    EXPECT_EQ(a, b) << "step " << s;
  }
  EXPECT_EQ(node_full.elapsed_seconds(), node_replay.elapsed_seconds());
  for (int r = 0; r < node_full.cpu_count(); ++r) {
    EXPECT_EQ(node_full.cpu(r).cycles(), node_replay.cpu(r).cycles());
  }
}

TEST_F(MomTest, ResetRestoresState) {
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  const double c0 = mom.checksum();
  for (int s = 0; s < 3; ++s) mom.step(1);
  mom.reset();
  EXPECT_DOUBLE_EQ(mom.checksum(), c0);
}

TEST_F(MomTest, InvalidArgsThrow) {
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  EXPECT_THROW(mom.step(0), ncar::precondition_error);
  EXPECT_THROW(mom.step(64), ncar::precondition_error);
  EXPECT_THROW(mom.measure_step_seconds(1, 0), ncar::precondition_error);
}

}  // namespace
