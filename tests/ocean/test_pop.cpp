#include "ocean/pop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;
using ocean::cshift;

sxs::MachineConfig single_cpu() {
  auto c = sxs::MachineConfig::sx4_benchmarked();
  c.cpus_per_node = 1;
  return c;
}

TEST(Cshift, PeriodicInLongitude) {
  Array2D<double> a(4, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 4; ++i) a(i, j) = static_cast<double>(10 * j + i);
  }
  const auto s = cshift(a, 0, 1);
  EXPECT_DOUBLE_EQ(s(0, 0), a(1, 0));
  EXPECT_DOUBLE_EQ(s(3, 0), a(0, 0));  // wraps
  const auto m = cshift(a, 0, -1);
  EXPECT_DOUBLE_EQ(m(0, 1), a(3, 1));
}

TEST(Cshift, ClampedAtLatitudeWalls) {
  Array2D<double> a(4, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 4; ++i) a(i, j) = static_cast<double>(j);
  }
  const auto up = cshift(a, 1, 1);
  EXPECT_DOUBLE_EQ(up(0, 2), 2.0);  // clamped, not wrapped
  const auto dn = cshift(a, 1, -1);
  EXPECT_DOUBLE_EQ(dn(0, 0), 0.0);
}

TEST(Cshift, InvalidDimThrows) {
  Array2D<double> a(4, 3);
  EXPECT_THROW(cshift(a, 2, 1), ncar::precondition_error);
}

class PopTest : public ::testing::Test {
protected:
  PopTest() : node(single_cpu()), pop(ocean::PopConfig::two_degree(), node) {}
  sxs::Node node;
  ocean::Pop pop;
};

TEST_F(PopTest, FreeSurfaceVolumeConserved) {
  const double m0 = pop.mean_eta();
  for (int s = 0; s < 20; ++s) pop.step();
  // The centred divergence over a periodic/walled grid conserves volume to
  // rounding.
  EXPECT_NEAR(pop.mean_eta(), m0, 1e-12);
}

TEST_F(PopTest, GravityWavesConvertHeightToMotion) {
  EXPECT_DOUBLE_EQ(pop.surface_ke(), 0.0);
  pop.step();
  EXPECT_GT(pop.surface_ke(), 0.0);
}

TEST_F(PopTest, EnergyBoundedUnderDrag) {
  double peak = 0;
  for (int s = 0; s < 50; ++s) {
    pop.step();
    peak = std::max(peak, pop.surface_ke());
  }
  EXPECT_TRUE(std::isfinite(peak));
  // With drag, late-time KE must not exceed the early peak by much.
  EXPECT_LT(pop.surface_ke(), 2.0 * peak);
}

TEST_F(PopTest, TracerMeanDriftsAtMostSlowly) {
  const double t0 = pop.mean_tracer(0);
  for (int s = 0; s < 20; ++s) pop.step();
  EXPECT_NEAR(pop.mean_tracer(0), t0, 0.02 * t0);
}

TEST_F(PopTest, MflopsMatchPaperFigure) {
  node.reset();
  pop.reset();
  const double mf = pop.measure_mflops(3);
  // Paper: 537 Mflops on one SX-4 processor.
  EXPECT_GT(mf, 0.8 * 537.0);
  EXPECT_LT(mf, 1.25 * 537.0);
}

TEST_F(PopTest, CshiftDominatesTime) {
  // The unvectorised CSHIFT is where the time goes — the paper's "even so"
  // hinges on it.
  node.reset();
  pop.reset();
  pop.measure_mflops(2);
  EXPECT_GT(pop.cshift_time_fraction(), 0.4);
  EXPECT_LT(pop.cshift_time_fraction(), 0.95);
}

TEST_F(PopTest, DeterministicChecksum) {
  ocean::Pop a(ocean::PopConfig::two_degree(), node);
  ocean::Pop b(ocean::PopConfig::two_degree(), node);
  for (int s = 0; s < 5; ++s) {
    a.step();
    b.step();
  }
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
}

TEST_F(PopTest, ResetRestoresState) {
  const double c0 = pop.checksum();
  for (int s = 0; s < 3; ++s) pop.step();
  pop.reset();
  EXPECT_DOUBLE_EQ(pop.checksum(), c0);
  EXPECT_EQ(pop.steps_taken(), 0);
}

TEST_F(PopTest, InvalidConfigThrows) {
  auto bad = ocean::PopConfig::two_degree();
  bad.nlev = 0;
  EXPECT_THROW(ocean::Pop(bad, node), ncar::precondition_error);
  EXPECT_THROW(pop.mean_tracer(99), ncar::precondition_error);
}

}  // namespace
