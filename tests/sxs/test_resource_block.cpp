#include "sxs/resource_block.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using namespace ncar::sxs;

std::vector<ResourceBlockSpec> ncar_style() {
  // The paper's example: an interactive partition, a FIFO static-parallel
  // partition, and a traditional vector-batch partition.
  return {
      {"interactive", 2, 4, SchedulingPolicy::Interactive},
      {"parallel", 8, 24, SchedulingPolicy::Fifo},
      {"vector-batch", 4, 16, SchedulingPolicy::Vector},
  };
}

TEST(ResourceBlocks, ConstructionValidates) {
  ResourceBlockTable t(32, ncar_style());
  EXPECT_EQ(t.block_count(), 3);
  EXPECT_EQ(t.total_cpus(), 32);
  EXPECT_EQ(t.block_index("parallel"), 1);
  EXPECT_EQ(t.block_index("nope"), -1);
}

TEST(ResourceBlocks, MinimaAreReservedAcrossBlocks) {
  ResourceBlockTable t(32, ncar_style());
  // parallel's max is 24, but interactive(2) + vector-batch(4) minima are
  // reserved: only 32 - 6 = 26 -> still capped by max 24... but if max
  // were larger the reservation binds. Check with a fresh table:
  ResourceBlockTable t2(32, {{"a", 8, 32, SchedulingPolicy::Fifo},
                             {"b", 8, 32, SchedulingPolicy::Fifo}});
  EXPECT_EQ(t2.available(0), 24);  // 32 minus b's reserved 8
}

TEST(ResourceBlocks, AllocateAndRelease) {
  ResourceBlockTable t(32, ncar_style());
  auto a = t.allocate("parallel", 16);
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(t.used(1), 16);
  EXPECT_LE(t.available(1), 8);  // max 24 minus 16
  t.release(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(t.used(1), 0);
}

TEST(ResourceBlocks, BlockMaxEnforced) {
  ResourceBlockTable t(32, ncar_style());
  EXPECT_FALSE(t.allocate("interactive", 5).valid());  // max 4
  auto a = t.allocate("interactive", 4);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(t.allocate("interactive", 1).valid());
}

TEST(ResourceBlocks, NodeCapacityEnforcedAcrossBlocks) {
  ResourceBlockTable t(32, {{"a", 0, 32, SchedulingPolicy::Fifo},
                            {"b", 0, 32, SchedulingPolicy::Fifo}});
  auto a = t.allocate("a", 20);
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(t.available(1), 12);
  EXPECT_FALSE(t.allocate("b", 13).valid());
  EXPECT_TRUE(t.allocate("b", 12).valid());
}

TEST(ResourceBlocks, SingleProcessCapability) {
  // Paper: "All processors can be assigned to a single process by properly
  // defining the Resource Blocks."
  ResourceBlockTable whole(32, {{"all", 0, 32, SchedulingPolicy::Fifo}});
  EXPECT_TRUE(whole.single_process_capable());
  auto a = whole.allocate("all", 32);
  EXPECT_TRUE(a.valid());

  ResourceBlockTable split(32, ncar_style());
  EXPECT_FALSE(split.single_process_capable());
}

TEST(ResourceBlocks, ReleaseRestoresAvailability) {
  ResourceBlockTable t(32, {{"a", 0, 32, SchedulingPolicy::Fifo}});
  auto a = t.allocate(0, 32);
  EXPECT_EQ(t.available(0), 0);
  t.release(a);
  EXPECT_EQ(t.available(0), 32);
}

TEST(ResourceBlocks, InvalidConfigurationsThrow) {
  using V = std::vector<ResourceBlockSpec>;
  EXPECT_THROW(ResourceBlockTable(32, V{}), ncar::precondition_error);
  EXPECT_THROW(ResourceBlockTable(
                   32, V{{"a", 20, 32, SchedulingPolicy::Fifo},
                         {"b", 20, 32, SchedulingPolicy::Fifo}}),
               ncar::precondition_error);  // minima 40 > 32
  EXPECT_THROW(ResourceBlockTable(32, V{{"a", 4, 2, SchedulingPolicy::Fifo}}),
               ncar::precondition_error);  // max < min
  EXPECT_THROW(ResourceBlockTable(32, V{{"a", 0, 64, SchedulingPolicy::Fifo}}),
               ncar::precondition_error);  // max > node
  ResourceBlockTable t(32, {{"a", 0, 32, SchedulingPolicy::Fifo}});
  EXPECT_THROW(t.allocate(0, 0), ncar::precondition_error);
  Allocation bad;
  EXPECT_THROW(t.release(bad), ncar::precondition_error);
}

}  // namespace
