#include "sxs/node.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::sxs::Cpu;
using ncar::sxs::MachineConfig;
using ncar::sxs::Node;
using ncar::sxs::VectorOp;

VectorOp work(long n) {
  VectorOp op;
  op.n = n;
  op.flops_per_elem = 2;
  op.load_words = 2;
  op.store_words = 1;
  return op;
}

class NodeTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_benchmarked();
  Node node{cfg};
};

TEST_F(NodeTest, HasConfiguredCpuCount) { EXPECT_EQ(node.cpu_count(), 32); }

TEST_F(NodeTest, SerialRegionAdvancesClockByCpuTime) {
  const double t = node.serial([&](Cpu& c) { c.vec(work(100000)); });
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(node.elapsed_seconds(), t);
}

TEST_F(NodeTest, ParallelRegionTakesMaxOverCpus) {
  // Rank 0 does 4x the work of everyone else; region time tracks rank 0.
  const double t = node.parallel(4, [&](int rank, Cpu& c) {
    c.vec(work(rank == 0 ? 400000 : 100000));
  });
  Node solo{cfg};
  const double t0 = solo.parallel(
      1, [&](int, Cpu& c) { c.vec(work(400000)); });
  EXPECT_GT(t, t0 * 0.99);        // at least the big rank
  EXPECT_LT(t, t0 * 1.2);         // but not the sum of all ranks
}

TEST_F(NodeTest, PerfectlyBalancedWorkSpeedsUp) {
  const long n = 1 << 22;
  Node solo{cfg};
  const double t1 = solo.parallel(1, [&](int, Cpu& c) { c.vec(work(n)); });
  const double t8 =
      node.parallel(8, [&](int, Cpu& c) { c.vec(work(n / 8)); });
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 6.0);
  EXPECT_LT(speedup, 8.0);  // barrier + startup keep it below ideal
}

TEST_F(NodeTest, BarrierCostGrowsWithWidth) {
  EXPECT_DOUBLE_EQ(node.barrier_seconds(1), 0.0);
  EXPECT_GT(node.barrier_seconds(2), 0.0);
  EXPECT_GT(node.barrier_seconds(32), node.barrier_seconds(2));
}

TEST_F(NodeTest, ContentionFactorGrowsWithActiveCpus) {
  EXPECT_DOUBLE_EQ(node.contention_factor(1), 1.0);
  EXPECT_GT(node.contention_factor(32), node.contention_factor(4));
  // The scale is small: tuned for the 1.89% ensemble degradation.
  EXPECT_LT(node.contention_factor(32), 1.05);
}

TEST_F(NodeTest, ExternalLoadInflatesRegionTime) {
  const long n = 1 << 20;
  const double quiet = node.parallel(4, [&](int, Cpu& c) { c.vec(work(n)); });
  node.set_external_active_cpus(28);
  const double loaded = node.parallel(4, [&](int, Cpu& c) { c.vec(work(n)); });
  EXPECT_GT(loaded, quiet);
  EXPECT_LT(loaded / quiet, 1.05);  // degradation is percent-level
}

TEST_F(NodeTest, ParallelWidthBeyondNodeThrows) {
  EXPECT_THROW(node.parallel(33, [](int, Cpu&) {}), ncar::precondition_error);
  EXPECT_THROW(node.parallel(0, [](int, Cpu&) {}), ncar::precondition_error);
}

TEST_F(NodeTest, AdvanceAddsIdleTime) {
  node.advance_seconds(ncar::Seconds(1.5));
  EXPECT_DOUBLE_EQ(node.elapsed_seconds(), 1.5);
  EXPECT_THROW(node.advance_seconds(ncar::Seconds(-1)),
               ncar::precondition_error);
}

TEST_F(NodeTest, ResetRestoresPristineState) {
  node.parallel(2, [&](int, Cpu& c) { c.vec(work(1000)); });
  node.set_external_active_cpus(10);
  node.reset();
  EXPECT_DOUBLE_EQ(node.elapsed_seconds(), 0.0);
  EXPECT_EQ(node.external_active_cpus(), 0);
  EXPECT_DOUBLE_EQ(node.cpu(0).cycles(), 0.0);
}

// Parameterised scalability property: balanced work never slows down with
// more CPUs, and never exceeds ideal speedup.
class WidthParam : public ::testing::TestWithParam<int> {};

TEST_P(WidthParam, SpeedupBoundedByIdeal) {
  const int p = GetParam();
  const long n = 1 << 22;
  const auto cfg = MachineConfig::sx4_benchmarked();
  Node node{cfg};
  const double t1 = node.parallel(1, [&](int, Cpu& c) { c.vec(work(n)); });
  Node nodep{cfg};
  const double tp =
      nodep.parallel(p, [&](int, Cpu& c) { c.vec(work(n / p)); });
  const double speedup = t1 / tp;
  EXPECT_LE(speedup, p * 1.001);
  EXPECT_GT(speedup, p * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthParam,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
