#include "sxs/vector_unit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/memory_model.hpp"

namespace {

using ncar::sxs::MachineConfig;
using ncar::sxs::MemoryModel;
using ncar::sxs::VectorOp;
using ncar::sxs::VectorUnit;

class VectorUnitTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_product();
  MemoryModel mem{cfg};
  VectorUnit vu{cfg, mem};
};

TEST_F(VectorUnitTest, LongComputeBoundLoopApproachesPeak) {
  // Register-resident FMA loop: 2 flops/element on both pipe groups.
  VectorOp op;
  op.n = 1 << 22;
  op.flops_per_elem = 2;
  op.load_words = 0;
  op.store_words = 0;
  op.pipe_groups = 2;
  op.instructions = 1;
  const double cycles = vu.cycles(op).value();
  const double flops_per_cycle = 2.0 * op.n / cycles;
  // Within 5% of the 16 flops/clock peak once startup is amortised.
  EXPECT_GT(flops_per_cycle, 0.95 * 16.0);
  EXPECT_LE(flops_per_cycle, 16.0);
}

TEST_F(VectorUnitTest, ShortVectorsPayStartup) {
  VectorOp op;
  op.n = 8;
  op.flops_per_elem = 2;
  op.pipe_groups = 2;
  op.instructions = 1;
  const double cycles = vu.cycles(op).value();
  // Startup dominates: far more cycles than the n/16 steady-state work.
  EXPECT_GT(cycles, cfg.vector_startup_clocks);
  EXPECT_LT(2.0 * op.n / cycles, 4.0);
}

TEST_F(VectorUnitTest, EfficiencyGrowsMonotonicallyWithLength) {
  double prev = 0.0;
  for (long n : {16L, 64L, 256L, 1024L, 4096L, 65536L}) {
    VectorOp op;
    op.n = n;
    op.flops_per_elem = 2;
    op.pipe_groups = 2;
    op.instructions = 1;
    const double rate = 2.0 * n / vu.cycles(op).value();
    EXPECT_GT(rate, prev) << "n=" << n;
    prev = rate;
  }
}

TEST_F(VectorUnitTest, MemoryBoundLoopLimitedByPort) {
  // Pure copy: no flops, 1 load + 1 store word per element.
  VectorOp op;
  op.n = 1 << 22;
  op.load_words = 1;
  op.store_words = 1;
  op.instructions = 2;
  const double cycles = vu.cycles(op).value();
  const double words_per_cycle = 2.0 * op.n / cycles;
  EXPECT_NEAR(words_per_cycle, 16.0, 1.0);  // full port width
}

TEST_F(VectorUnitTest, ComputeAndMemoryOverlapAsMax) {
  VectorOp mem_only;
  mem_only.n = 1 << 20;
  mem_only.load_words = 2;
  mem_only.store_words = 1;
  mem_only.instructions = 3;

  VectorOp with_flops = mem_only;
  with_flops.flops_per_elem = 2;  // cheap relative to 3 words of traffic
  with_flops.instructions = 4;

  const double t_mem = vu.cycles(mem_only).value();
  const double t_both = vu.cycles(with_flops).value();
  // Chained arithmetic hides behind the memory streams (within issue cost).
  EXPECT_NEAR(t_both / t_mem, 1.0, 0.05);
}

TEST_F(VectorUnitTest, DividePipesAreSlower) {
  VectorOp add;
  add.n = 1 << 18;
  add.flops_per_elem = 1;
  add.pipe_groups = 1;
  add.instructions = 1;

  VectorOp div;
  div.n = 1 << 18;
  div.div_per_elem = 1;
  div.pipe_groups = 1;
  div.instructions = 1;

  EXPECT_GT(vu.cycles(div), vu.cycles(add));
  EXPECT_NEAR(vu.cycles(div) / vu.cycles(add),
              cfg.divide_cycles_per_result,
              0.2);
}

TEST_F(VectorUnitTest, ConcurrentDivideCanExceedNominalPeak) {
  // Paper section 2.1: with add, multiply, and divide all busy the CPU "can
  // exceed its peak rating". Results (flops incl. divides) per cycle > 16.
  VectorOp op;
  op.n = 1 << 20;
  op.flops_per_elem = 2;   // saturate add + multiply
  op.div_per_elem = 0.2;   // divide group under its throughput bound
  op.pipe_groups = 2;
  op.instructions = 1;
  const double cycles = vu.cycles(op).value();
  const double results_per_cycle = (2.0 + 0.2) * op.n / cycles;
  EXPECT_GT(results_per_cycle, 16.0);
}

TEST_F(VectorUnitTest, GatherBoundLoopSlowerThanUnitStride) {
  VectorOp unit;
  unit.n = 1 << 20;
  unit.load_words = 1;
  unit.store_words = 1;
  unit.instructions = 2;

  VectorOp gathered = unit;
  gathered.load_words = 0;
  gathered.gather_words = 1;

  EXPECT_GT(vu.cycles(gathered), vu.cycles(unit));
}

TEST_F(VectorUnitTest, ZeroLengthIsFree) {
  VectorOp op;
  op.n = 0;
  op.flops_per_elem = 10;
  EXPECT_DOUBLE_EQ(vu.cycles(op).value(), 0.0);
}

TEST_F(VectorUnitTest, NegativeLengthThrows) {
  VectorOp op;
  op.n = -5;
  EXPECT_THROW(vu.cycles(op), ncar::precondition_error);
}

TEST_F(VectorUnitTest, InvalidPipeGroupsThrow) {
  VectorOp op;
  op.n = 10;
  op.flops_per_elem = 1;
  op.pipe_groups = 0;
  EXPECT_THROW(vu.cycles(op), ncar::precondition_error);
  op.pipe_groups = 4;
  EXPECT_THROW(vu.cycles(op), ncar::precondition_error);
}

class VectorLengthParam : public ::testing::TestWithParam<int> {};

TEST_P(VectorLengthParam, ShorterRegistersLowerShortLoopEfficiency) {
  // Property: for loops shorter than one register, efficiency does not
  // depend on VL; for much longer loops a bigger VL amortises issue costs.
  auto cfg = MachineConfig::sx4_product();
  cfg.vector_length = GetParam();
  MemoryModel mem{cfg};
  VectorUnit vu{cfg, mem};
  VectorOp op;
  op.n = 1 << 16;
  op.flops_per_elem = 2;
  op.pipe_groups = 2;
  op.instructions = 4;
  const double rate = 2.0 * op.n / vu.cycles(op).value();
  EXPECT_GT(rate, 4.0);
  EXPECT_LE(rate, 16.0);
}

INSTANTIATE_TEST_SUITE_P(VectorLengths, VectorLengthParam,
                         ::testing::Values(64, 128, 256, 512));

}  // namespace
