// Cross-cutting property tests on the SX-4 model: invariants that must
// hold across machine configurations, not just the benchmarked preset.

#include <gtest/gtest.h>

#include "machines/comparator.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/memory_model.hpp"
#include "sxs/node.hpp"
#include "sxs/vector_unit.hpp"

namespace {

using namespace ncar;
using sxs::MachineConfig;

std::vector<MachineConfig> vector_machine_configs() {
  return {MachineConfig::sx4_benchmarked(), MachineConfig::sx4_product(),
          machines::Comparator::cray_ymp().cfg,
          machines::Comparator::cray_j90().cfg};
}

class ConfigParam : public ::testing::TestWithParam<int> {
protected:
  MachineConfig cfg = vector_machine_configs()[static_cast<std::size_t>(GetParam())];
};

TEST_P(ConfigParam, PeakRateConsistentWithPipes) {
  EXPECT_NEAR(cfg.peak_flops_per_cpu(),
              2.0 * cfg.pipes_per_group * cfg.clock_hz(), 1.0);
}

TEST_P(ConfigParam, VectorRateNeverExceedsPeak) {
  sxs::MemoryModel mem(cfg);
  sxs::VectorUnit vu(cfg, mem);
  for (long n : {1L, 7L, 64L, 255L, 256L, 100000L}) {
    sxs::VectorOp op;
    op.n = n;
    op.flops_per_elem = 2;
    op.pipe_groups = 2;
    op.instructions = 1;
    const double flops_per_s =
        2.0 * n / (vu.cycles(op).value() * cfg.seconds_per_clock());
    EXPECT_LE(flops_per_s, cfg.peak_flops_per_cpu() * 1.0001) << "n=" << n;
  }
}

TEST_P(ConfigParam, MemoryBoundRateNeverExceedsPort) {
  sxs::MemoryModel mem(cfg);
  sxs::VectorUnit vu(cfg, mem);
  sxs::VectorOp op;
  op.n = 1 << 20;
  op.load_words = 1;
  op.store_words = 1;
  op.instructions = 2;
  const double bytes_per_s =
      16.0 * op.n / (vu.cycles(op).value() * cfg.seconds_per_clock());
  EXPECT_LE(bytes_per_s, cfg.port_bandwidth().value() * 1.0001);
}

TEST_P(ConfigParam, StrideFactorsAtLeastOne) {
  sxs::MemoryModel mem(cfg);
  for (long s : {1L, 2L, 3L, 5L, 8L, 17L, 64L, 255L, 256L, 1024L, 4096L}) {
    EXPECT_GE(mem.stride_conflict_factor(s), 1.0) << "stride " << s;
  }
}

TEST_P(ConfigParam, CyclesMonotoneInLength) {
  // Non-decreasing everywhere (tiny vectors sit on an issue-bound plateau),
  // strictly growing once the loop leaves the startup regime.
  sxs::MemoryModel mem(cfg);
  sxs::VectorUnit vu(cfg, mem);
  double prev = -1, first = 0, last = 0;
  for (long n = 1; n <= (1 << 16); n *= 4) {
    sxs::VectorOp op;
    op.n = n;
    op.flops_per_elem = 3;
    op.load_words = 2;
    op.store_words = 1;
    const double c = vu.cycles(op).value();
    EXPECT_GE(c, prev) << "n=" << n;
    if (n == 1) first = c;
    last = c;
    prev = c;
  }
  EXPECT_GT(last, 10.0 * first);
}

INSTANTIATE_TEST_SUITE_P(VectorMachines, ConfigParam,
                         ::testing::Values(0, 1, 2, 3));

// --- node-level invariants ---------------------------------------------------

TEST(NodeProperties, RegionTimeAdditiveAcrossRegions) {
  sxs::Node node(MachineConfig::sx4_benchmarked());
  auto work = [](int, sxs::Cpu& c) {
    sxs::VectorOp op;
    op.n = 10000;
    op.flops_per_elem = 2;
    op.load_words = 2;
    c.vec(op);
  };
  const double t1 = node.parallel(8, work);
  const double t2 = node.parallel(8, work);
  EXPECT_NEAR(node.elapsed_seconds(), t1 + t2, 1e-15);
}

TEST(NodeProperties, ContentionNeverShrinksTime) {
  for (int active : {1, 2, 8, 16, 32}) {
    sxs::Node node(MachineConfig::sx4_benchmarked());
    EXPECT_GE(node.contention_factor(active), 1.0);
    if (active > 1) {
      EXPECT_GT(node.contention_factor(active),
                node.contention_factor(active - 1));
    }
  }
}

TEST(NodeProperties, EightNodesOfFourBehaveLikeTable6) {
  // The ensemble ratio in pure model terms:
  // contention(32) / contention(4) ~ 1.019.
  sxs::Node node(MachineConfig::sx4_benchmarked());
  const double ratio = node.contention_factor(32) / node.contention_factor(4);
  EXPECT_NEAR(ratio, 1.019, 0.002);
}

}  // namespace
