// The per-class cycle breakdown on Cpu (vector / scalar / intrinsic /
// other) must partition the total.

#include <gtest/gtest.h>

#include "machines/comparator.hpp"
#include "radabs/radabs.hpp"
#include "sxs/cpu.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;
using sxs::Cpu;
using sxs::Intrinsic;
using sxs::MachineConfig;

class BreakdownTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_benchmarked();
  Cpu cpu{cfg};
};

TEST_F(BreakdownTest, ClassesPartitionTotal) {
  sxs::VectorOp v;
  v.n = 1000;
  v.flops_per_elem = 2;
  v.load_words = 2;
  cpu.vec(v);
  sxs::ScalarOp s;
  s.iters = 500;
  s.flops_per_iter = 3;
  s.mem_words_per_iter = 2;
  cpu.scalar(s);
  cpu.intrinsic(Intrinsic::Exp, 200);
  cpu.charge_cycles(ncar::Cycles(123.0));

  EXPECT_GT(cpu.vector_cycles(), 0.0);
  EXPECT_GT(cpu.scalar_cycles(), 0.0);
  EXPECT_GT(cpu.intrinsic_cycles(), 0.0);
  EXPECT_NEAR(cpu.other_cycles(), 123.0, 1e-9);
  EXPECT_NEAR(cpu.vector_cycles() + cpu.scalar_cycles() +
                  cpu.intrinsic_cycles() + cpu.other_cycles(),
              cpu.cycles(), 1e-9);
}

TEST_F(BreakdownTest, ScalarIntrinsicCountsAsIntrinsic) {
  cpu.scalar_intrinsic(Intrinsic::Log, 100);
  EXPECT_GT(cpu.intrinsic_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.scalar_cycles(), 0.0);
}

TEST_F(BreakdownTest, ResetClearsBreakdown) {
  cpu.intrinsic(Intrinsic::Sin, 100);
  cpu.reset();
  EXPECT_DOUBLE_EQ(cpu.vector_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.intrinsic_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.other_cycles(), 0.0);
}

TEST(BreakdownRadabs, IntrinsicsDominateRadabs) {
  // Paper section 4.4: "Much of the time in RADABS is spent in intrinsic
  // function calls (EXP, LOG, PWR, SIN, and SQRT)."
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  radabs::run_radabs_standard(sx4);
  EXPECT_GT(sx4.intrinsic_time_fraction(), 0.4);
  EXPECT_LT(sx4.intrinsic_time_fraction(), 0.95);
}

TEST(BreakdownRadabs, FractionIsZeroBeforeAnyWork) {
  machines::Comparator sx4(machines::Comparator::nec_sx4_single());
  EXPECT_DOUBLE_EQ(sx4.intrinsic_time_fraction(), 0.0);
}

}  // namespace
