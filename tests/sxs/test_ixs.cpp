#include "sxs/ixs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::sxs::Ixs;
using ncar::sxs::Machine;
using ncar::sxs::MachineConfig;

class IxsTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_multinode(4);
  Ixs ixs{cfg};
};

TEST_F(IxsTest, BisectionBandwidthIs128GBps) {
  // Paper section 2.5: 128 GB/s bisection for a full 16-node system.
  EXPECT_NEAR(ixs.bisection_bytes_per_s().value(), 128e9, 1e-3);
}

TEST_F(IxsTest, TransferRateApproaches8GBps) {
  const ncar::Bytes bytes(8e9);
  const ncar::Seconds t = ixs.transfer_seconds(bytes);
  EXPECT_NEAR((bytes / t).value(), 8e9, 0.1e9);
}

TEST_F(IxsTest, SmallTransferDominatedByLatency) {
  const double t = ixs.transfer_seconds(ncar::Bytes(64)).value();
  EXPECT_GT(t, cfg.ixs_latency_s);
  EXPECT_LT(t, cfg.ixs_latency_s * 1.01);
}

TEST_F(IxsTest, AllToAllRespectsChannelLimitAtSmallNodeCounts) {
  // 4 nodes * 8 GB/s = 32 GB/s aggregate < 128 GB/s bisection:
  // the per-node channel is the binding constraint.
  const double per_node = 1e9;
  const double t = ixs.all_to_all_seconds(4, ncar::Bytes(per_node)).value();
  EXPECT_NEAR(t, cfg.ixs_latency_s + per_node / 8e9, 1e-6);
}

TEST_F(IxsTest, AllToAllSingleNodeIsFree) {
  EXPECT_DOUBLE_EQ(ixs.all_to_all_seconds(1, ncar::Bytes(1e9)).value(), 0.0);
}

TEST_F(IxsTest, GlobalBarrierGrowsWithNodes) {
  EXPECT_DOUBLE_EQ(ixs.global_barrier_seconds(1).value(), 0.0);
  EXPECT_GT(ixs.global_barrier_seconds(16).value(),
            ixs.global_barrier_seconds(2).value());
}

TEST_F(IxsTest, InvalidNodeCountsThrow) {
  EXPECT_THROW(ixs.all_to_all_seconds(0, ncar::Bytes(1.0)),
               ncar::precondition_error);
  EXPECT_THROW(ixs.all_to_all_seconds(17, ncar::Bytes(1.0)),
               ncar::precondition_error);
  EXPECT_THROW(ixs.transfer_seconds(ncar::Bytes(-1.0)),
               ncar::precondition_error);
}

TEST(MachineTest, MultiNodeMachineHasIndependentNodes) {
  Machine m(MachineConfig::sx4_multinode(2));
  EXPECT_EQ(m.node_count(), 2);
  m.node(0).advance_seconds(ncar::Seconds(2.0));
  EXPECT_DOUBLE_EQ(m.node(1).elapsed_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(m.elapsed_seconds(), 2.0);  // max over nodes
}

TEST(MachineTest, XmuBandwidthIs16GBpsAt8ns) {
  Machine m(MachineConfig::sx4_product());
  // Paper section 2.3: 16 GB/s XMU bandwidth per 32-CPU node.
  const double t = m.xmu_transfer_seconds(ncar::Bytes(16e9)).value();
  EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(MachineTest, IopChannelIs1Point6GBps) {
  Machine m(MachineConfig::sx4_product());
  // Paper section 2.4: each IOP has 1.6 GB/s of bandwidth.
  EXPECT_NEAR(m.iop_transfer_seconds(ncar::Bytes(1.6e9)).value(), 1.0, 1e-9);
}

TEST(MachineTest, ResetClearsAllNodes) {
  Machine m(MachineConfig::sx4_multinode(2));
  m.node(0).advance_seconds(ncar::Seconds(1.0));
  m.node(1).advance_seconds(ncar::Seconds(2.0));
  m.reset();
  EXPECT_DOUBLE_EQ(m.elapsed_seconds(), 0.0);
}

TEST(MachineTest, OutOfRangeNodeThrows) {
  Machine m(MachineConfig::sx4_product());
  EXPECT_THROW(m.node(1), ncar::precondition_error);
  EXPECT_THROW(m.node(-1), ncar::precondition_error);
}

}  // namespace
