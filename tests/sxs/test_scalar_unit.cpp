#include "sxs/scalar_unit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/cache_sim.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::sxs::CacheSim;
using ncar::sxs::MachineConfig;
using ncar::sxs::ScalarOp;
using ncar::sxs::ScalarUnit;

class ScalarUnitTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_product();
  ScalarUnit su{cfg};
};

TEST_F(ScalarUnitTest, IssueWidthBoundsInstructionThroughput) {
  ScalarOp op;
  op.iters = 1000;
  op.flops_per_iter = 2;
  op.other_ops_per_iter = 2;
  op.mem_words_per_iter = 0;
  const double cycles = su.cycles(op).value();
  // 4 instructions/iter at width 2 = 2 cycles/iter.
  EXPECT_DOUBLE_EQ(cycles, 2000.0);
}

TEST_F(ScalarUnitTest, StreamingLoopsMissOncePerLine) {
  ScalarOp op;
  op.iters = 1;
  op.mem_words_per_iter = 1;
  op.reuse_fraction = 0.0;
  // 128-byte lines, 8-byte words: one miss per 16 words.
  EXPECT_NEAR(su.miss_rate(op), 1.0 / 16.0, 1e-12);
}

TEST_F(ScalarUnitTest, ResidentWorkingSetDoesNotMiss) {
  ScalarOp op;
  op.iters = 1;
  op.mem_words_per_iter = 1;
  op.reuse_fraction = 1.0;
  op.working_set_bytes = 32 * 1024;  // half the 64 KB data cache
  EXPECT_DOUBLE_EQ(su.miss_rate(op), 0.0);
}

TEST_F(ScalarUnitTest, OversizedWorkingSetMisses) {
  ScalarOp op;
  op.iters = 1;
  op.mem_words_per_iter = 1;
  op.reuse_fraction = 1.0;
  op.working_set_bytes = 1024.0 * 1024;  // 16x the cache
  EXPECT_GT(su.miss_rate(op), 0.04);
}

TEST_F(ScalarUnitTest, MissRateGrowsWithWorkingSet) {
  double prev = -1.0;
  for (double ws : {16e3, 64e3, 128e3, 512e3, 4e6}) {
    ScalarOp op;
    op.iters = 1;
    op.mem_words_per_iter = 1;
    op.reuse_fraction = 1.0;
    op.working_set_bytes = ws;
    const double mr = su.miss_rate(op);
    EXPECT_GE(mr, prev) << "ws=" << ws;
    prev = mr;
  }
}

TEST_F(ScalarUnitTest, MissesAddLatencyCycles) {
  ScalarOp cached;
  cached.iters = 10000;
  cached.flops_per_iter = 1;
  cached.mem_words_per_iter = 2;
  cached.reuse_fraction = 1.0;
  cached.working_set_bytes = 1024;

  ScalarOp streaming = cached;
  streaming.reuse_fraction = 0.0;

  EXPECT_GT(su.cycles(streaming), su.cycles(cached));
}

TEST_F(ScalarUnitTest, ZeroItersFree) {
  ScalarOp op;
  EXPECT_DOUBLE_EQ(su.cycles(op).value(), 0.0);
}

TEST_F(ScalarUnitTest, BadReuseFractionThrows) {
  ScalarOp op;
  op.iters = 1;
  op.reuse_fraction = 1.5;
  EXPECT_THROW(su.cycles(op), ncar::precondition_error);
}

// Cross-validation: the analytic streaming miss rate must match the
// reference CacheSim driven with an actual sequential access stream.
TEST_F(ScalarUnitTest, AnalyticStreamingMissRateMatchesCacheSim) {
  auto sim = CacheSim::dcache(cfg);
  const int words = 1 << 18;  // 2 MB stream, far beyond the 64 KB cache
  sim.access_stream(0, 8, static_cast<std::size_t>(words));

  ScalarOp op;
  op.iters = words;
  op.mem_words_per_iter = 1;
  op.reuse_fraction = 0.0;
  EXPECT_NEAR(su.miss_rate(op), sim.miss_rate(), 1e-3);
}

// Cross-validation: a resident working set hits in both models.
TEST_F(ScalarUnitTest, AnalyticResidentMissRateMatchesCacheSim) {
  auto sim = CacheSim::dcache(cfg);
  const int words = 1024;  // 8 KB working set
  for (int pass = 0; pass < 100; ++pass) {
    sim.access_stream(0, 8, static_cast<std::size_t>(words));
  }
  ScalarOp op;
  op.iters = words;
  op.mem_words_per_iter = 1;
  op.reuse_fraction = 1.0;
  op.working_set_bytes = words * 8;
  // CacheSim pays only cold misses over 100 passes -> ~0; analytic says 0.
  EXPECT_LT(sim.miss_rate(), 0.001);
  EXPECT_DOUBLE_EQ(su.miss_rate(op), 0.0);
}

}  // namespace
