#include "sxs/memory_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::sxs::MachineConfig;
using ncar::sxs::MemoryModel;

class MemoryModelTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_product();
  MemoryModel mem{cfg};
};

TEST_F(MemoryModelTest, UnitStrideRunsAtFullPortWidth) {
  // 16 words per clock at the 16 GB/s port (128 bytes / 8-byte words).
  EXPECT_DOUBLE_EQ(mem.port_words_per_clock().value(), 16.0);
  EXPECT_DOUBLE_EQ(mem.stream_cycles(1600, 1).value(), 100.0);
}

TEST_F(MemoryModelTest, StrideTwoIsConflictFree) {
  // Paper section 2.2: "Conflict free unit stride as well as stride 2
  // access is guaranteed".
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(2), 1.0);
  EXPECT_DOUBLE_EQ(mem.stream_cycles(1600, 2).value(),
                   mem.stream_cycles(1600, 1).value());
}

TEST_F(MemoryModelTest, SmallOddStridesBenefitFromShortBankCycle) {
  // With 1024 banks and a 2-clock bank cycle, moderate strides visit enough
  // banks that only the baseline strided penalty applies ("higher strides
  // ... benefit from the very short bank cycle time" — slower than unit
  // stride, but far from pathological).
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(3), cfg.strided_port_divisor);
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(7), cfg.strided_port_divisor);
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(100), cfg.strided_port_divisor);
}

TEST_F(MemoryModelTest, PowerOfTwoStridesConflict) {
  // A stride equal to the bank count folds everything onto one bank.
  const double f = mem.stride_conflict_factor(cfg.memory_banks);
  EXPECT_GT(f, 1.0);
  // Demand is 16 words/clock * 2-clock bank cycle on a single bank.
  EXPECT_DOUBLE_EQ(f, 32.0);
}

TEST_F(MemoryModelTest, HalfBankStrideConflictsLess) {
  const double f_full = mem.stride_conflict_factor(cfg.memory_banks);
  const double f_half = mem.stride_conflict_factor(cfg.memory_banks / 2);
  EXPECT_GT(f_half, 1.0);
  EXPECT_LT(f_half, f_full);
}

TEST_F(MemoryModelTest, NegativeStrideTreatedAsPositive) {
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(-1), 1.0);
  EXPECT_DOUBLE_EQ(mem.stride_conflict_factor(-1024),
                   mem.stride_conflict_factor(1024));
}

TEST_F(MemoryModelTest, GatherSlowerThanStream) {
  const long n = 100000;
  EXPECT_GT(mem.gather_cycles(n), mem.stream_cycles(n, 1));
  EXPECT_DOUBLE_EQ(mem.gather_cycles(n).value(),
                   (mem.stream_cycles(n, 1) * cfg.gather_port_divisor).value());
}

TEST_F(MemoryModelTest, ScatterSlowerThanStream) {
  const long n = 100000;
  EXPECT_DOUBLE_EQ(mem.scatter_cycles(n).value(),
                   (mem.stream_cycles(n, 1) * cfg.scatter_port_divisor).value());
}

TEST_F(MemoryModelTest, ZeroWordsIsFree) {
  EXPECT_DOUBLE_EQ(mem.stream_cycles(0, 1).value(), 0.0);
  EXPECT_DOUBLE_EQ(mem.gather_cycles(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(mem.scatter_cycles(0).value(), 0.0);
}

TEST_F(MemoryModelTest, NegativeWordCountThrows) {
  EXPECT_THROW(mem.stream_cycles(-1, 1), ncar::precondition_error);
  EXPECT_THROW(mem.gather_cycles(-1), ncar::precondition_error);
}

TEST_F(MemoryModelTest, StrideTableMatchesAnalyticFormulaEverywhere) {
  // The constructor tabulates strides [0, banks]; anything larger falls
  // back to the analytic formula. Both paths must agree bit-for-bit with
  // the formula written out longhand (gcd folding, bank-cycle demand).
  const auto longhand = [&](long stride) {
    stride = std::labs(stride);
    if (stride <= 2) return 1.0;
    const long visited = cfg.memory_banks / std::gcd(stride, cfg.memory_banks);
    const double demand =
        mem.port_words_per_clock().value() * cfg.bank_cycle_clocks;
    return std::max(cfg.strided_port_divisor,
                    demand / static_cast<double>(visited));
  };
  for (long s : {0L, 1L, 2L, 3L, 5L, 64L, 512L, 1023L, 1024L,  // in table
                 1025L, 1536L, 2048L, 3072L, 100000L}) {       // beyond it
    EXPECT_EQ(mem.stride_conflict_factor(s), longhand(s)) << "stride " << s;
    EXPECT_EQ(mem.stride_conflict_factor(-s), longhand(s)) << "stride " << -s;
  }
}

TEST_F(MemoryModelTest, StridesBeyondTableFoldByGcdPeriodicity) {
  // gcd(s, B) == gcd(s mod B, B): a stride past the table shares its
  // conflict geometry with its in-table representative.
  const long banks = cfg.memory_banks;
  for (long s : {banks + 3, banks + 64, 3 * banks, 5 * banks + 512}) {
    long rep = s % banks == 0 ? banks : s % banks;
    if (rep <= 2) continue;  // representative is conflict-free by fiat
    EXPECT_EQ(mem.stride_conflict_factor(s), mem.stride_conflict_factor(rep))
        << "stride " << s;
  }
}

TEST(MemoryModelBanks, FewerBanksConflictSooner) {
  auto small = MachineConfig::sx4_product();
  small.memory_banks = 64;
  MemoryModel mem_small{small};
  auto big = MachineConfig::sx4_product();
  MemoryModel mem_big{big};
  // Stride 64: on a 64-bank machine all requests hit one bank.
  EXPECT_GT(mem_small.stride_conflict_factor(64),
            mem_big.stride_conflict_factor(64));
}

}  // namespace
