#include "sxs/cache_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::sxs::CacheSim;

TEST(CacheSim, FirstAccessMissesSecondHits) {
  CacheSim c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(8));  // same line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheSim, SequentialWalkMissesOncePerLine) {
  CacheSim c(64 * 1024, 128, 2);
  const int n = 4096;
  for (int i = 0; i < n; ++i) c.access(static_cast<std::uint64_t>(i) * 8);
  // 4096 words * 8 bytes = 32 KB = 256 lines of 128 bytes.
  EXPECT_EQ(c.misses(), 256u);
}

TEST(CacheSim, WorkingSetWithinCapacityFullyHitsOnSecondPass) {
  CacheSim c(64 * 1024, 128, 2);
  const int words = 64 * 1024 / 8;  // exactly capacity
  for (int i = 0; i < words; ++i) c.access(static_cast<std::uint64_t>(i) * 8);
  const auto cold = c.misses();
  for (int i = 0; i < words; ++i) c.access(static_cast<std::uint64_t>(i) * 8);
  EXPECT_EQ(c.misses(), cold);  // no additional misses
}

TEST(CacheSim, WorkingSetBeyondCapacityThrashes) {
  CacheSim c(1024, 64, 1);  // 16 lines, direct mapped
  const int words = 512;    // 4 KB stream, 4x capacity
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < words; ++i)
      c.access(static_cast<std::uint64_t>(i) * 8);
  }
  // Every line access misses on both passes.
  EXPECT_EQ(c.misses(), 2u * (512 * 8 / 64));
}

TEST(CacheSim, LruEvictsLeastRecentlyUsed) {
  // 2-way, 1 set: capacity 2 lines.
  CacheSim c(128, 64, 2);
  c.access(0);       // miss, line A
  c.access(64);      // miss, line B
  c.access(0);       // hit A (B becomes LRU)
  c.access(128);     // miss, evicts B
  EXPECT_TRUE(c.access(0));    // A survived
  EXPECT_FALSE(c.access(64));  // B was evicted
}

TEST(CacheSim, ConflictingAddressesInOneSetEvict) {
  // Direct-mapped: two addresses mapping to the same set alternate-miss.
  CacheSim c(1024, 64, 1);  // 16 sets
  const std::uint64_t a = 0;
  const std::uint64_t b = 1024;  // same set, different tag
  for (int i = 0; i < 10; ++i) {
    c.access(a);
    c.access(b);
  }
  EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheSim, AssociativityResolvesConflicts) {
  CacheSim c(1024, 64, 2);  // 8 sets, 2-way
  const std::uint64_t a = 0;
  const std::uint64_t b = 512;  // same set in the 8-set cache
  c.access(a);
  c.access(b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(c.access(a));
    EXPECT_TRUE(c.access(b));
  }
}

TEST(CacheSim, FlushClearsStateAndCounters) {
  CacheSim c(1024, 64, 2);
  c.access(0);
  c.access(0);
  c.flush();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0));  // cold again
}

TEST(CacheSim, DcacheFactoryMatchesConfig) {
  const auto cfg = ncar::sxs::MachineConfig::sx4_product();
  auto c = CacheSim::dcache(cfg);
  EXPECT_EQ(c.line_bytes(), cfg.cache_line_bytes);
  EXPECT_EQ(c.ways(), cfg.cache_ways);
  EXPECT_EQ(c.sets() * c.line_bytes() * static_cast<std::size_t>(c.ways()),
            cfg.dcache_bytes);
}

TEST(CacheSim, InvalidGeometryThrows) {
  EXPECT_THROW(CacheSim(1000, 64, 2), ncar::precondition_error);   // not divisible
  EXPECT_THROW(CacheSim(1024, 60, 2), ncar::precondition_error);   // line not pow2
  EXPECT_THROW(CacheSim(1024, 64, 0), ncar::precondition_error);   // zero ways
}

TEST(CacheSim, RandomAccessesOverLargeRangeMostlyMiss) {
  CacheSim c(64 * 1024, 128, 2);
  ncar::Rng rng(99);
  const std::uint64_t range = 64ull * 1024 * 1024;  // 64 MB, 1024x capacity
  for (int i = 0; i < 20000; ++i) c.access(rng.next_u64() % range);
  EXPECT_GT(c.miss_rate(), 0.95);
}

}  // namespace
