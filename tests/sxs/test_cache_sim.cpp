#include "sxs/cache_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sxs/machine_config.hpp"

namespace {

using ncar::sxs::CacheSim;

TEST(CacheSim, FirstAccessMissesSecondHits) {
  CacheSim c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(8));  // same line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheSim, SequentialWalkMissesOncePerLine) {
  CacheSim c(64 * 1024, 128, 2);
  c.access_stream(0, 8, 4096);
  // 4096 words * 8 bytes = 32 KB = 256 lines of 128 bytes.
  EXPECT_EQ(c.misses(), 256u);
}

TEST(CacheSim, WorkingSetWithinCapacityFullyHitsOnSecondPass) {
  CacheSim c(64 * 1024, 128, 2);
  const std::size_t words = 64 * 1024 / 8;  // exactly capacity
  c.access_stream(0, 8, words);
  const auto cold = c.misses();
  c.access_stream(0, 8, words);
  EXPECT_EQ(c.misses(), cold);  // no additional misses
}

TEST(CacheSim, WorkingSetBeyondCapacityThrashes) {
  CacheSim c(1024, 64, 1);  // 16 lines, direct mapped
  const int words = 512;    // 4 KB stream, 4x capacity
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < words; ++i)
      c.access(static_cast<std::uint64_t>(i) * 8);
  }
  // Every line access misses on both passes.
  EXPECT_EQ(c.misses(), 2u * (512 * 8 / 64));
}

TEST(CacheSim, LruEvictsLeastRecentlyUsed) {
  // 2-way, 1 set: capacity 2 lines.
  CacheSim c(128, 64, 2);
  c.access(0);       // miss, line A
  c.access(64);      // miss, line B
  c.access(0);       // hit A (B becomes LRU)
  c.access(128);     // miss, evicts B
  EXPECT_TRUE(c.access(0));    // A survived
  EXPECT_FALSE(c.access(64));  // B was evicted
}

TEST(CacheSim, ConflictingAddressesInOneSetEvict) {
  // Direct-mapped: two addresses mapping to the same set alternate-miss.
  CacheSim c(1024, 64, 1);  // 16 sets
  const std::uint64_t a = 0;
  const std::uint64_t b = 1024;  // same set, different tag
  for (int i = 0; i < 10; ++i) {
    c.access(a);
    c.access(b);
  }
  EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheSim, AssociativityResolvesConflicts) {
  CacheSim c(1024, 64, 2);  // 8 sets, 2-way
  const std::uint64_t a = 0;
  const std::uint64_t b = 512;  // same set in the 8-set cache
  c.access(a);
  c.access(b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(c.access(a));
    EXPECT_TRUE(c.access(b));
  }
}

TEST(CacheSim, FlushClearsStateAndCounters) {
  CacheSim c(1024, 64, 2);
  c.access(0);
  c.access(0);
  c.flush();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_FALSE(c.access(0));  // cold again
}

TEST(CacheSim, DcacheFactoryMatchesConfig) {
  const auto cfg = ncar::sxs::MachineConfig::sx4_product();
  auto c = CacheSim::dcache(cfg);
  EXPECT_EQ(c.line_bytes(), cfg.cache_line_bytes);
  EXPECT_EQ(c.ways(), cfg.cache_ways);
  EXPECT_EQ(c.sets() * c.line_bytes() * static_cast<std::size_t>(c.ways()),
            cfg.dcache_bytes);
}

TEST(CacheSim, InvalidGeometryThrows) {
  EXPECT_THROW(CacheSim(1000, 64, 2), ncar::precondition_error);   // not divisible
  EXPECT_THROW(CacheSim(1024, 60, 2), ncar::precondition_error);   // line not pow2
  EXPECT_THROW(CacheSim(1024, 64, 0), ncar::precondition_error);   // zero ways
}

TEST(CacheSim, RandomAccessesOverLargeRangeMostlyMiss) {
  CacheSim c(64 * 1024, 128, 2);
  ncar::Rng rng(99);
  const std::uint64_t range = 64ull * 1024 * 1024;  // 64 MB, 1024x capacity
  for (int i = 0; i < 20000; ++i) c.access(rng.next_u64() % range);
  EXPECT_GT(c.miss_rate(), 0.95);
}

// --- batched API: exact equivalence with the per-byte path ------------------

TEST(CacheSim, AccessRangeMatchesPerByteExactly) {
  CacheSim batched(1024, 64, 2);
  CacheSim per_byte(1024, 64, 2);
  // Unaligned start and end, spanning several lines and wrapping sets.
  const std::uint64_t addr = 37;
  const std::uint64_t bytes = 1500;
  batched.access_range(addr, bytes);
  for (std::uint64_t b = 0; b < bytes; ++b) per_byte.access(addr + b);
  EXPECT_EQ(batched.hits(), per_byte.hits());
  EXPECT_EQ(batched.misses(), per_byte.misses());
  EXPECT_EQ(batched.accesses(), bytes);
}

TEST(CacheSim, AccessStreamMatchesPerByteExactly) {
  // Strides below, at, and above the line size, plus the degenerate zero
  // stride (n touches of one address).
  for (std::uint64_t stride : {0ull, 1ull, 8ull, 24ull, 64ull, 136ull}) {
    CacheSim batched(1024, 64, 2);
    CacheSim per_byte(1024, 64, 2);
    const std::uint64_t base = 21;
    const std::size_t n = 700;
    batched.access_stream(base, stride, n);
    for (std::size_t i = 0; i < n; ++i)
      per_byte.access(base + static_cast<std::uint64_t>(i) * stride);
    EXPECT_EQ(batched.hits(), per_byte.hits()) << "stride=" << stride;
    EXPECT_EQ(batched.misses(), per_byte.misses()) << "stride=" << stride;
  }
}

// Property test: random interleavings of ranges and streams keep the batched
// and per-byte counters identical, including the LRU state they leave behind
// (checked by comparing counts after every operation, so a divergence in
// replacement state surfaces on a later operation). Seeded Rng only — no
// wall-clock randomness.
TEST(CacheSim, BatchedPathsMatchPerBytePropertyTest) {
  ncar::Rng rng(20260807);
  CacheSim batched(4096, 64, 4);
  CacheSim per_byte(4096, 64, 4);
  const std::uint64_t range = 256 * 1024;  // 64x capacity: plenty of misses
  for (int op = 0; op < 400; ++op) {
    const std::uint64_t base = rng.next_u64() % range;
    if (rng.next_u64() % 2 == 0) {
      const std::uint64_t bytes = rng.next_u64() % 512;
      batched.access_range(base, bytes);
      for (std::uint64_t b = 0; b < bytes; ++b) per_byte.access(base + b);
    } else {
      const std::uint64_t stride = rng.next_u64() % 160;
      const std::size_t n = static_cast<std::size_t>(rng.next_u64() % 200);
      batched.access_stream(base, stride, n);
      for (std::size_t i = 0; i < n; ++i)
        per_byte.access(base + static_cast<std::uint64_t>(i) * stride);
    }
    ASSERT_EQ(batched.hits(), per_byte.hits()) << "op=" << op;
    ASSERT_EQ(batched.misses(), per_byte.misses()) << "op=" << op;
  }
  EXPECT_GT(batched.misses(), 0u);
  EXPECT_GT(batched.hits(), 0u);
}

}  // namespace
