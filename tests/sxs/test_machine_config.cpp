#include "sxs/machine_config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using ncar::sxs::MachineConfig;

TEST(MachineConfig, BenchmarkedSystemMatchesTable2) {
  const auto c = MachineConfig::sx4_benchmarked();
  EXPECT_DOUBLE_EQ(c.clock_ns, 9.2);
  EXPECT_EQ(c.cpus_per_node, 32);
  EXPECT_EQ(c.nodes, 1);
  EXPECT_EQ(c.total_cpus(), 32);
}

TEST(MachineConfig, ProductPartPeaksAtTwoGflops) {
  const auto c = MachineConfig::sx4_product();
  // 8 add + 8 multiply pipes at 125 MHz = 2 GFLOPS (paper section 2.1).
  EXPECT_NEAR(c.peak_flops_per_cpu(), 2e9, 1e-6);
}

TEST(MachineConfig, BenchmarkedClockLowersPeak) {
  const auto c = MachineConfig::sx4_benchmarked();
  EXPECT_NEAR(c.peak_flops_per_cpu(), 16.0 / 9.2e-9, 1.0);
  EXPECT_LT(c.peak_flops_per_cpu(), 2e9);
}

TEST(MachineConfig, PortBandwidthIs16GBPerSecAt8ns) {
  const auto c = MachineConfig::sx4_product();
  EXPECT_NEAR(c.port_bandwidth().value(), 16e9, 1e-3);
}

TEST(MachineConfig, MultiNodeScalesCpuCount) {
  const auto c = MachineConfig::sx4_multinode(4);
  EXPECT_EQ(c.nodes, 4);
  EXPECT_EQ(c.total_cpus(), 128);
}

TEST(MachineConfig, MultiNodeBeyondIxsLimitThrows) {
  EXPECT_THROW(MachineConfig::sx4_multinode(17), ncar::precondition_error);
}

TEST(MachineConfig, ValidateRejectsNonPowerOfTwoBanks) {
  auto c = MachineConfig::sx4_product();
  c.memory_banks = 1000;
  EXPECT_THROW(c.validate(), ncar::config_error);
}

TEST(MachineConfig, ValidateRejectsVectorLengthNotMultipleOfPipes) {
  auto c = MachineConfig::sx4_product();
  c.vector_length = 250;
  EXPECT_THROW(c.validate(), ncar::config_error);
}

TEST(MachineConfig, ValidateRejectsZeroClock) {
  auto c = MachineConfig::sx4_product();
  c.clock_ns = 0;
  EXPECT_THROW(c.validate(), ncar::config_error);
}

TEST(MachineConfig, SecondsPerClockInverseOfClockHz) {
  const auto c = MachineConfig::sx4_benchmarked();
  EXPECT_NEAR(c.seconds_per_clock() * c.clock_hz(), 1.0, 1e-12);
}

}  // namespace
