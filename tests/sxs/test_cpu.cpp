#include "sxs/cpu.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine_config.hpp"
#include "trace/category.hpp"

namespace {

using ncar::sxs::Cpu;
using ncar::sxs::Intrinsic;
using ncar::sxs::MachineConfig;
using ncar::sxs::ScalarOp;
using ncar::sxs::VectorOp;
namespace trace = ncar::trace;

// Restores the process-wide tracing mode on scope exit so carve tests do
// not leak Summary mode into the rest of the suite.
class ModeGuard {
public:
  explicit ModeGuard(trace::Mode m) : before_(trace::mode()) {
    trace::set_mode(m);
  }
  ~ModeGuard() { trace::set_mode(before_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

private:
  trace::Mode before_;
};

class CpuTest : public ::testing::Test {
protected:
  MachineConfig cfg = MachineConfig::sx4_benchmarked();
  Cpu cpu{cfg};
};

TEST_F(CpuTest, StartsAtZero) {
  EXPECT_DOUBLE_EQ(cpu.cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.hw_flops().value(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.equiv_flops().value(), 0.0);
}

TEST_F(CpuTest, VectorOpAccumulatesCyclesAndFlops) {
  VectorOp op;
  op.n = 1000;
  op.flops_per_elem = 2;
  op.load_words = 2;
  op.store_words = 1;
  cpu.vec(op);
  EXPECT_GT(cpu.cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.hw_flops().value(), 2000.0);
  EXPECT_DOUBLE_EQ(cpu.equiv_flops().value(), 2000.0);
}

TEST_F(CpuTest, SecondsAreCyclesTimesClock) {
  cpu.charge_cycles(ncar::Cycles(1000.0));
  EXPECT_NEAR(cpu.seconds(), 1000.0 * 9.2e-9, 1e-15);
}

TEST_F(CpuTest, ChargeSecondsRoundTrips) {
  cpu.charge_seconds(ncar::Seconds(1e-3));
  EXPECT_NEAR(cpu.seconds(), 1e-3, 1e-12);
}

TEST_F(CpuTest, IntrinsicUsesDifferentFlopCurrencies) {
  cpu.intrinsic(Intrinsic::Exp, 1000);
  // Hardware pipes executed 18 flops per EXP; Cray counting says 11.
  EXPECT_DOUBLE_EQ(cpu.hw_flops().value(), 18000.0);
  EXPECT_DOUBLE_EQ(cpu.equiv_flops().value(), 11000.0);
}

TEST_F(CpuTest, VectorIntrinsicRateIsPaperShaped) {
  // ELEFUNT reports millions of calls per second; a vectorised EXP on the
  // SX-4/1 should land in the tens-to-hundreds of Mcalls/s.
  const long n = 1 << 22;
  cpu.intrinsic(Intrinsic::Exp, n);
  const double mcalls = n / cpu.seconds() / 1e6;
  EXPECT_GT(mcalls, 30.0);
  EXPECT_LT(mcalls, 200.0);
}

TEST_F(CpuTest, ScalarIntrinsicMuchSlowerThanVector) {
  Cpu a{cfg}, b{cfg};
  const long n = 100000;
  a.intrinsic(Intrinsic::Sin, n);
  b.scalar_intrinsic(Intrinsic::Sin, n);
  EXPECT_GT(b.seconds(), 5.0 * a.seconds());
}

TEST_F(CpuTest, ContentionInflatesChargedTime) {
  VectorOp op;
  op.n = 100000;
  op.load_words = 1;
  op.store_words = 1;
  Cpu base{cfg};
  base.vec(op);
  cpu.set_contention(1.1);
  cpu.vec(op);
  EXPECT_NEAR(cpu.cycles() / base.cycles(), 1.1, 1e-9);
}

TEST_F(CpuTest, ContentionBelowOneThrows) {
  EXPECT_THROW(cpu.set_contention(0.9), ncar::precondition_error);
}

TEST_F(CpuTest, ResetClearsEverything) {
  cpu.charge_cycles(ncar::Cycles(10));
  cpu.add_equiv_flops(ncar::Flops(5));
  cpu.set_contention(1.5);
  cpu.reset();
  EXPECT_DOUBLE_EQ(cpu.cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.equiv_flops().value(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.contention(), 1.0);
}

TEST_F(CpuTest, NegativeChargesThrow) {
  EXPECT_THROW(cpu.charge_cycles(ncar::Cycles(-1)), ncar::precondition_error);
  EXPECT_THROW(cpu.charge_seconds(ncar::Seconds(-1)),
               ncar::precondition_error);
  EXPECT_THROW(cpu.intrinsic(Intrinsic::Exp, -1), ncar::precondition_error);
}

TEST_F(CpuTest, CostCacheCountsHitsAndMisses) {
  VectorOp op;
  op.n = 1000;
  op.flops_per_elem = 2;
  op.load_words = 2;
  op.store_words = 1;
  EXPECT_EQ(cpu.cost_cache_hits(), 0u);
  EXPECT_EQ(cpu.cost_cache_misses(), 0u);
  cpu.vec(op);  // first sight: priced once
  EXPECT_EQ(cpu.cost_cache_misses(), 1u);
  cpu.vec(op);  // identical descriptor: replayed
  cpu.vec(op);
  EXPECT_EQ(cpu.cost_cache_hits(), 2u);
  EXPECT_EQ(cpu.cost_cache_misses(), 1u);
  op.n = 1001;  // any field change is a new key
  cpu.vec(op);
  EXPECT_EQ(cpu.cost_cache_misses(), 2u);
}

TEST_F(CpuTest, CachedChargesAreBitIdenticalToFirstSight) {
  VectorOp op;
  op.n = 12345;
  op.load_words = 3;
  op.store_words = 1;
  op.load_stride = 7;
  op.flops_per_elem = 4;
  Cpu fresh{cfg};
  fresh.vec(op);
  const double first = fresh.cycles();
  cpu.vec(op);
  cpu.reset();  // reset clears counters but keeps the cache warm
  cpu.vec(op);  // replayed from cache
  EXPECT_EQ(cpu.cycles(), first);
  EXPECT_GE(cpu.cost_cache_hits(), 1u);
}

TEST_F(CpuTest, ScalarCostCacheCountsSeparately) {
  ScalarOp op;
  op.iters = 100;
  op.flops_per_iter = 1;
  op.mem_words_per_iter = 1;
  cpu.scalar(op);
  cpu.scalar(op);
  EXPECT_EQ(cpu.cost_cache_misses(), 1u);
  EXPECT_EQ(cpu.cost_cache_hits(), 1u);
}

TEST_F(CpuTest, ScalarOpGoesThroughCacheModel) {
  ScalarOp op;
  op.iters = 10000;
  op.flops_per_iter = 1;
  op.mem_words_per_iter = 2;
  op.reuse_fraction = 0.0;
  cpu.scalar(op);
  EXPECT_GT(cpu.cycles(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.hw_flops().value(), 10000.0);
}

// --- gather/scatter attribution carve ---------------------------------------

TEST_F(CpuTest, GatherTrafficFilesUnderGatherScatterInSummaryMode) {
  ModeGuard g(trace::Mode::Summary);
  VectorOp op;
  op.n = 4096;
  op.flops_per_elem = 1;
  op.load_words = 1;
  op.gather_words = 1;  // indexed load stream priced above unit stride
  cpu.vec(op);

  const double gs =
      cpu.trace().category_ticks(trace::Category::GatherScatter);
  EXPECT_GT(gs, 0.0);

  // The carve equals the repricing delta against the contiguous twin.
  VectorOp contiguous = op;
  contiguous.gather_words = 0;
  Cpu ref{cfg};
  ref.vec(contiguous);
  EXPECT_DOUBLE_EQ(gs, cpu.cycles() - ref.cycles());

  // Charged categories still sum to the charged cycles (conservation).
  double sum = 0.0;
  for (int i = 0; i < trace::kCategoryCount; ++i) {
    const auto c = static_cast<trace::Category>(i);
    if (trace::is_charged_category(c)) sum += cpu.trace().category_ticks(c);
  }
  EXPECT_DOUBLE_EQ(sum, cpu.cycles());
}

TEST_F(CpuTest, GatherScatterCarveComesOutOfThePipeCategory) {
  VectorOp op;
  op.n = 4096;
  op.flops_per_elem = 1;
  op.load_words = 1;
  op.scatter_words = 1;

  Cpu refined{cfg};
  {
    ModeGuard g(trace::Mode::Summary);
    refined.vec(op);
  }
  Cpu coarse{cfg};
  {
    ModeGuard g(trace::Mode::Off);
    coarse.vec(op);
  }

  // Tracing mode never perturbs the charge itself.
  EXPECT_EQ(refined.cycles(), coarse.cycles());

  // Off mode books everything under the pipe category; Summary mode carves
  // the gather/scatter premium out of it.
  EXPECT_DOUBLE_EQ(
      coarse.trace().category_ticks(trace::Category::GatherScatter), 0.0);
  const double gs =
      refined.trace().category_ticks(trace::Category::GatherScatter);
  EXPECT_GT(gs, 0.0);
  EXPECT_DOUBLE_EQ(
      refined.trace().category_ticks(trace::Category::VectorMul) + gs,
      coarse.trace().category_ticks(trace::Category::VectorMul));
}

TEST_F(CpuTest, ExplicitCategoryOverloadFilesUnderIt) {
  ModeGuard g(trace::Mode::Summary);
  VectorOp op;
  op.n = 4096;
  op.flops_per_elem = 2;   // memory-bound so the gather premium is visible
  op.gather_words = 4;     // the SLT bilinear corners
  op.load_words = 5;
  op.store_words = 1;
  op.pipe_groups = 2;
  cpu.vec(op, 64, trace::Category::SltInterp);

  // The pipe share lands under the explicit category instead of
  // vector_mul; the gather carve still comes out of it as usual.
  EXPECT_GT(cpu.trace().category_ticks(trace::Category::SltInterp), 0.0);
  EXPECT_DOUBLE_EQ(cpu.trace().category_ticks(trace::Category::VectorMul),
                   0.0);
  EXPECT_GT(cpu.trace().category_ticks(trace::Category::GatherScatter), 0.0);

  // Charged categories still sum to the charged cycles (conservation).
  double sum = 0.0;
  for (int i = 0; i < trace::kCategoryCount; ++i) {
    const auto c = static_cast<trace::Category>(i);
    if (trace::is_charged_category(c)) sum += cpu.trace().category_ticks(c);
  }
  EXPECT_DOUBLE_EQ(sum, cpu.cycles());
}

TEST_F(CpuTest, ExplicitCategoryChargeIsInvariantAcrossModesAndOverloads) {
  VectorOp op;
  op.n = 128;
  op.flops_per_elem = 28;
  op.gather_words = 4;
  op.load_words = 5;
  op.store_words = 1;
  op.pipe_groups = 2;

  Cpu off{cfg};
  {
    ModeGuard g(trace::Mode::Off);
    off.vec(op, 64, trace::Category::SltInterp);
  }
  Cpu summary{cfg};
  {
    ModeGuard g(trace::Mode::Summary);
    summary.vec(op, 64, trace::Category::SltInterp);
  }
  Cpu implicit{cfg};
  {
    ModeGuard g(trace::Mode::Off);
    implicit.vec(op, 64);
  }

  // The attribution category never perturbs the cycle or flop accounting,
  // and neither does the tracing mode.
  EXPECT_EQ(off.cycles(), summary.cycles());
  EXPECT_EQ(off.cycles(), implicit.cycles());
  EXPECT_EQ(off.hw_flops().value(), implicit.hw_flops().value());
  EXPECT_EQ(off.equiv_flops().value(), implicit.equiv_flops().value());
}

TEST_F(CpuTest, StrideAndGatherCarvesCoexist) {
  ModeGuard g(trace::Mode::Summary);
  VectorOp op;
  op.n = 4096;
  op.flops_per_elem = 1;
  op.load_words = 2;
  op.load_stride = 8;      // bank-conflict premium
  op.gather_words = 0.5;   // plus indexed traffic
  cpu.vec(op, 3);

  const double conflict =
      cpu.trace().category_ticks(trace::Category::BankConflict);
  const double gs =
      cpu.trace().category_ticks(trace::Category::GatherScatter);
  EXPECT_GT(conflict, 0.0);
  EXPECT_GT(gs, 0.0);
  double sum = 0.0;
  for (int i = 0; i < trace::kCategoryCount; ++i) {
    const auto c = static_cast<trace::Category>(i);
    if (trace::is_charged_category(c)) sum += cpu.trace().category_ticks(c);
  }
  EXPECT_DOUBLE_EQ(sum, cpu.cycles());
}

// Property sweep: every intrinsic has positive cost and a vector rate below
// the machine's arithmetic limit.
class IntrinsicParam : public ::testing::TestWithParam<Intrinsic> {};

TEST_P(IntrinsicParam, VectorRateBelowPipeLimit) {
  const auto cfg = MachineConfig::sx4_benchmarked();
  Cpu cpu{cfg};
  const long n = 1 << 20;
  cpu.intrinsic(GetParam(), n);
  const double calls_per_s = n / cpu.seconds();
  EXPECT_GT(calls_per_s, 0.0);
  // A call costs at least one result through the pipes.
  EXPECT_LT(calls_per_s, cfg.peak_flops_per_cpu());
}

TEST_P(IntrinsicParam, EquivalentFlopsArePositiveAndBelowHardware) {
  const auto cost = ncar::sxs::intrinsic_cost(GetParam());
  EXPECT_GT(cost.equiv_flops, 0.0);
  EXPECT_GT(cost.hw_flops + cost.hw_div, 0.0);
  // Cray counted fewer flops than the polynomial evaluation actually costs.
  EXPECT_LE(cost.equiv_flops, cost.hw_flops + cost.hw_div * 4);
}

INSTANTIATE_TEST_SUITE_P(AllIntrinsics, IntrinsicParam,
                         ::testing::Values(Intrinsic::Exp, Intrinsic::Log,
                                           Intrinsic::Pow, Intrinsic::Sin,
                                           Intrinsic::Cos, Intrinsic::Sqrt));

}  // namespace
