// Determinism of the host-parallel execution engine: threaded and
// sequential policies must produce bit-identical simulated results, and a
// throwing rank body must leave the node in a clean state (contention
// restored, later regions unaffected).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"

namespace {

using ncar::Rng;
using ncar::ThreadPool;
using ncar::sxs::Cpu;
using ncar::sxs::ExecutionPolicy;
using ncar::sxs::MachineConfig;
using ncar::sxs::Node;

// Charge a randomized mix of vector / scalar / intrinsic / raw operations.
// Seeded per (region, rank), so the mix is identical no matter which host
// thread runs the rank, or in what order.
void charge_random_mix(Cpu& cpu, std::uint64_t seed) {
  Rng rng(seed);
  const int ops = 3 + static_cast<int>(rng.next_below(6));
  for (int k = 0; k < ops; ++k) {
    switch (rng.next_below(4)) {
      case 0: {
        ncar::sxs::VectorOp op;
        op.n = 1 + static_cast<long>(rng.next_below(4096));
        op.flops_per_elem = 1.0 + rng.next_double() * 8.0;
        op.div_per_elem = rng.next_double() < 0.3 ? 1.0 : 0.0;
        op.load_words = 1.0 + rng.next_double() * 4.0;
        op.store_words = rng.next_double() * 2.0;
        op.gather_words = rng.next_double() < 0.25 ? 1.0 : 0.0;
        op.load_stride = 1 + static_cast<long>(rng.next_below(8));
        op.pipe_groups = 1 + static_cast<int>(rng.next_below(2));
        cpu.vec(op, 1 + static_cast<long>(rng.next_below(5)));
        break;
      }
      case 1: {
        ncar::sxs::ScalarOp op;
        op.iters = 1 + static_cast<long>(rng.next_below(2000));
        op.flops_per_iter = 1.0 + rng.next_double() * 4.0;
        op.mem_words_per_iter = 1.0 + rng.next_double() * 3.0;
        op.other_ops_per_iter = rng.next_double() * 6.0;
        op.working_set_bytes = rng.next_double() * 1e5;
        op.reuse_fraction = rng.next_double();
        cpu.scalar(op);
        break;
      }
      case 2: {
        const auto f = static_cast<ncar::sxs::Intrinsic>(rng.next_below(6));
        cpu.intrinsic(f, 1 + static_cast<long>(rng.next_below(1024)), 1.0,
                      1.0, 1.0, 1 + static_cast<long>(rng.next_below(3)));
        break;
      }
      default:
        cpu.charge_cycles(ncar::Cycles(rng.next_double() * 1e4));
        break;
    }
  }
}

// Every observable counter of a Cpu, for exact comparison.
void expect_cpus_bit_identical(const Node& a, const Node& b) {
  ASSERT_EQ(a.cpu_count(), b.cpu_count());
  for (int i = 0; i < a.cpu_count(); ++i) {
    const Cpu& ca = a.cpu(i);
    const Cpu& cb = b.cpu(i);
    EXPECT_EQ(ca.cycles(), cb.cycles()) << "cpu " << i;
    EXPECT_EQ(ca.vector_cycles(), cb.vector_cycles()) << "cpu " << i;
    EXPECT_EQ(ca.scalar_cycles(), cb.scalar_cycles()) << "cpu " << i;
    EXPECT_EQ(ca.intrinsic_cycles(), cb.intrinsic_cycles()) << "cpu " << i;
    EXPECT_EQ(ca.hw_flops(), cb.hw_flops()) << "cpu " << i;
    EXPECT_EQ(ca.equiv_flops(), cb.equiv_flops()) << "cpu " << i;
  }
}

class HostParallelDeterminism : public ::testing::TestWithParam<int> {
protected:
  MachineConfig cfg = MachineConfig::sx4_benchmarked();
};

TEST_P(HostParallelDeterminism, RandomMixesBitIdenticalAcrossPolicies) {
  const int ncpu = GetParam();
  // A dedicated pool with real workers, so the threaded path is exercised
  // even on single-core hosts (where the global pool has no workers).
  ThreadPool pool(4);
  Node seq(cfg, ExecutionPolicy::Sequential);
  Node thr(cfg, ExecutionPolicy::Threaded);
  thr.set_thread_pool(&pool);

  for (int rep = 0; rep < 100; ++rep) {
    const std::uint64_t region_seed =
        0x5eed0000ull + 131ull * static_cast<std::uint64_t>(rep) +
        static_cast<std::uint64_t>(ncpu);
    const auto body = [&](int rank, Cpu& cpu) {
      charge_random_mix(cpu, region_seed * 33ull +
                                 static_cast<std::uint64_t>(rank));
    };
    const double ts = seq.parallel(ncpu, body);
    const double tt = thr.parallel(ncpu, body);
    ASSERT_EQ(ts, tt) << "ncpu=" << ncpu << " rep=" << rep;
    ASSERT_EQ(seq.elapsed_seconds(), thr.elapsed_seconds());
  }
  expect_cpus_bit_identical(seq, thr);
}

INSTANTIATE_TEST_SUITE_P(Widths, HostParallelDeterminism,
                         ::testing::Values(1, 2, 8, 32));

TEST(HostParallel, ExternalLoadBitIdenticalAcrossPolicies) {
  const auto cfg = MachineConfig::sx4_benchmarked();
  ThreadPool pool(4);
  Node seq(cfg, ExecutionPolicy::Sequential);
  Node thr(cfg, ExecutionPolicy::Threaded);
  thr.set_thread_pool(&pool);
  seq.set_external_active_cpus(12);
  thr.set_external_active_cpus(12);
  const auto body = [](int rank, Cpu& cpu) {
    charge_random_mix(cpu, 7777ull + static_cast<std::uint64_t>(rank));
  };
  EXPECT_EQ(seq.parallel(8, body), thr.parallel(8, body));
  expect_cpus_bit_identical(seq, thr);
}

TEST(HostParallel, ResetRestoresPristineStateUnderThreadedPolicy) {
  ThreadPool pool(4);
  Node node(MachineConfig::sx4_benchmarked(), ExecutionPolicy::Threaded);
  node.set_thread_pool(&pool);
  node.parallel(16, [](int rank, Cpu& cpu) {
    charge_random_mix(cpu, static_cast<std::uint64_t>(rank));
  });
  node.set_external_active_cpus(4);
  node.reset();
  EXPECT_EQ(node.elapsed_seconds(), 0.0);
  EXPECT_EQ(node.external_active_cpus(), 0);
  for (int i = 0; i < node.cpu_count(); ++i) {
    EXPECT_EQ(node.cpu(i).cycles(), 0.0);
    EXPECT_EQ(node.cpu(i).contention(), 1.0);
  }
}

// --- exception safety (the set_contention regression) -----------------------

class ThrowingPolicy : public ::testing::TestWithParam<ExecutionPolicy> {};

TEST_P(ThrowingPolicy, ThrowingBodyDoesNotPoisonLaterRegions) {
  const auto cfg = MachineConfig::sx4_benchmarked();
  ThreadPool pool(4);
  Node node(cfg, GetParam());
  node.set_thread_pool(&pool);

  EXPECT_THROW(node.parallel(8,
                             [](int rank, Cpu& cpu) {
                               charge_random_mix(
                                   cpu, static_cast<std::uint64_t>(rank));
                               if (rank == 2) {
                                 throw std::runtime_error("rank body failed");
                               }
                             }),
               std::runtime_error);

  // The guard must have restored every CPU's contention factor...
  for (int i = 0; i < node.cpu_count(); ++i) {
    EXPECT_EQ(node.cpu(i).contention(), 1.0) << "cpu " << i;
  }
  // ...and the node clock must not have advanced for the failed region.
  EXPECT_EQ(node.elapsed_seconds(), 0.0);

  // Subsequent regions must time exactly as on a never-failed node.
  Node fresh(cfg, ExecutionPolicy::Sequential);
  const auto body = [](int rank, Cpu& cpu) {
    charge_random_mix(cpu, 99ull + static_cast<std::uint64_t>(rank));
  };
  EXPECT_EQ(node.parallel(4, body), fresh.parallel(4, body));
}

TEST_P(ThrowingPolicy, ThrowingSerialBodyRestoresContention) {
  const auto cfg = MachineConfig::sx4_benchmarked();
  Node node(cfg, GetParam());
  node.set_external_active_cpus(8);  // so serial contention is > 1
  EXPECT_THROW(node.serial([](Cpu&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  EXPECT_EQ(node.cpu(0).contention(), 1.0);
  EXPECT_EQ(node.elapsed_seconds(), 0.0);
}

TEST_P(ThrowingPolicy, LowestRankExceptionPropagates) {
  Node node(MachineConfig::sx4_benchmarked(), GetParam());
  ThreadPool pool(4);
  node.set_thread_pool(&pool);
  try {
    node.parallel(16, [](int rank, Cpu&) {
      if (rank == 5 || rank == 11) {
        throw std::runtime_error("rank " + std::to_string(rank));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 5");
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ThrowingPolicy,
                         ::testing::Values(ExecutionPolicy::Sequential,
                                           ExecutionPolicy::Threaded));

// --- SX4NCAR_HOST_THREADS parsing -------------------------------------------

TEST(ExecutionPolicyEnv, PolicyParsing) {
  using ncar::sxs::policy_from_env;
  EXPECT_EQ(policy_from_env(nullptr), ExecutionPolicy::Threaded);
  EXPECT_EQ(policy_from_env(""), ExecutionPolicy::Threaded);
  EXPECT_EQ(policy_from_env("0"), ExecutionPolicy::Sequential);
  EXPECT_EQ(policy_from_env("1"), ExecutionPolicy::Sequential);
  EXPECT_EQ(policy_from_env("2"), ExecutionPolicy::Threaded);
  EXPECT_EQ(policy_from_env("64"), ExecutionPolicy::Threaded);
  EXPECT_EQ(policy_from_env("seq"), ExecutionPolicy::Sequential);
  EXPECT_EQ(policy_from_env("sequential"), ExecutionPolicy::Sequential);
  EXPECT_EQ(policy_from_env("threaded"), ExecutionPolicy::Threaded);
  EXPECT_EQ(policy_from_env("garbage"), ExecutionPolicy::Threaded);
}

TEST(ExecutionPolicyEnv, ThreadCountParsing) {
  using ncar::sxs::threads_from_env;
  EXPECT_EQ(threads_from_env("8"), 8);
  EXPECT_EQ(threads_from_env("1"), 1);
  EXPECT_EQ(threads_from_env("0"), 1);   // clamped
  EXPECT_GE(threads_from_env(nullptr), 1);
  EXPECT_GE(threads_from_env("nonsense"), 1);
}

TEST(ExecutionPolicyEnv, Names) {
  EXPECT_STREQ(ncar::sxs::to_string(ExecutionPolicy::Sequential),
               "sequential");
  EXPECT_STREQ(ncar::sxs::to_string(ExecutionPolicy::Threaded), "threaded");
  EXPECT_FALSE(ncar::sxs::host_execution_summary().empty());
}

}  // namespace
