// Multi-node parallel regions over the IXS (single system image,
// paper section 2.5).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sxs/machine.hpp"
#include "sxs/machine_config.hpp"

namespace {

using namespace ncar;
using sxs::Cpu;
using sxs::Machine;
using sxs::MachineConfig;

sxs::VectorOp work(long n) {
  sxs::VectorOp op;
  op.n = n;
  op.flops_per_elem = 2;
  op.load_words = 2;
  op.store_words = 1;
  return op;
}

TEST(MachineParallel, TwoNodesNearlyHalveBalancedWork) {
  const long n = 1 << 22;
  Machine one(MachineConfig::sx4_multinode(1));
  const double t1 = one.parallel(1, 32, [&](int, int, Cpu& c) {
    c.vec(work(n / 32));
  });
  Machine two(MachineConfig::sx4_multinode(2));
  const double t2 = two.parallel(2, 32, [&](int, int, Cpu& c) {
    c.vec(work(n / 64));
  });
  EXPECT_LT(t2, t1);
  EXPECT_GT(t2, 0.45 * t1);  // global barrier + startup keep it above half
}

TEST(MachineParallel, SlowestNodeSetsRegionTime) {
  Machine m(MachineConfig::sx4_multinode(2));
  const double t = m.parallel(2, 4, [&](int node, int, Cpu& c) {
    c.vec(work(node == 0 ? 400000 : 100000));
  });
  Machine solo(MachineConfig::sx4_multinode(2));
  const double t_big = solo.parallel(1, 4, [&](int, int, Cpu& c) {
    c.vec(work(400000));
  });
  EXPECT_GE(t, t_big);            // at least the slow node
  EXPECT_LT(t, t_big * 1.1);      // but not the sum of both
}

TEST(MachineParallel, NodeClocksSynchroniseAtRegionEnd) {
  Machine m(MachineConfig::sx4_multinode(4));
  m.parallel(4, 8, [&](int node, int, Cpu& c) {
    c.vec(work(10000 * (node + 1)));  // imbalanced across nodes
  });
  const double t0 = m.node(0).elapsed_seconds();
  for (int n = 1; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(m.node(n).elapsed_seconds(), t0);
  }
}

TEST(MachineParallel, GlobalBarrierOnlyForMultipleNodes) {
  Machine m(MachineConfig::sx4_multinode(2));
  const double t_one_node = m.parallel(1, 8, [&](int, int, Cpu& c) {
    c.vec(work(100000));
  });
  Machine m2(MachineConfig::sx4_multinode(2));
  const double t_two_node = m2.parallel(2, 8, [&](int node, int, Cpu& c) {
    if (node == 0) c.vec(work(100000));  // node 1 idles
  });
  // Same critical path plus the IXS barrier.
  EXPECT_GT(t_two_node, t_one_node);
  EXPECT_NEAR(t_two_node - t_one_node,
              m2.ixs().global_barrier_seconds(2).value(), 1e-9);
}

TEST(MachineParallel, ExchangeAdvancesAllClocks) {
  Machine m(MachineConfig::sx4_multinode(4));
  const double t = m.exchange(4, ncar::Bytes(1e9));
  EXPECT_GT(t, 0.0);
  for (int n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(m.node(n).elapsed_seconds(), t);
  }
}

TEST(MachineParallel, InvalidNodeCountsThrow) {
  Machine m(MachineConfig::sx4_multinode(2));
  EXPECT_THROW(m.parallel(3, 8, [](int, int, Cpu&) {}),
               ncar::precondition_error);
  EXPECT_THROW(m.parallel(0, 8, [](int, int, Cpu&) {}),
               ncar::precondition_error);
  EXPECT_THROW(m.exchange(5, ncar::Bytes(1.0)), ncar::precondition_error);
}

}  // namespace
