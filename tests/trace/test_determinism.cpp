// Trace determinism: attribution counters, span buffers, and the exported
// Chrome trace must be byte-identical under sequential and threaded host
// execution, and across repeated runs. The collectors are rank-private
// (same single-writer discipline as the Cpus), so this is the tracing
// counterpart of tests/integration/test_policy_determinism.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ccm2/model.hpp"
#include "common/thread_pool.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"
#include "trace/attribution.hpp"
#include "trace/category.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/collector.hpp"

namespace {

using namespace ncar;
using sxs::ExecutionPolicy;
using sxs::MachineConfig;
using trace::Mode;

class ModeGuard {
public:
  explicit ModeGuard(Mode m) : before_(trace::mode()) { trace::set_mode(m); }
  ~ModeGuard() { trace::set_mode(before_); }

private:
  Mode before_;
};

/// Run two CCM2 steps on 8 CPUs under `policy` and return the node.
std::unique_ptr<sxs::Node> run_ccm2(ExecutionPolicy policy,
                                    ThreadPool* pool) {
  auto node = std::make_unique<sxs::Node>(MachineConfig::sx4_benchmarked(),
                                          policy);
  if (pool != nullptr) node->set_thread_pool(pool);
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, *node);
  for (int s = 0; s < 2; ++s) model.step(8);
  return node;
}

std::string render_chrome(const sxs::Node& node) {
  std::vector<trace::TraceTrack> tracks;
  tracks.push_back({&node.runtime_trace(), 0, 0, "node0", "runtime"});
  for (int i = 0; i < node.cpu_count(); ++i) {
    tracks.push_back({&node.cpu(i).trace(), 0, i + 1, "node0",
                      "cpu" + std::to_string(i)});
  }
  std::ostringstream os;
  trace::write_chrome_trace(
      os, std::span<const trace::TraceTrack>(tracks.data(), tracks.size()));
  return os.str();
}

void expect_tracks_identical(const sxs::Node& a, const sxs::Node& b) {
  ASSERT_EQ(a.cpu_count(), b.cpu_count());
  for (int i = 0; i < a.cpu_count(); ++i) {
    const trace::Collector& ca = a.cpu(i).trace();
    const trace::Collector& cb = b.cpu(i).trace();
    EXPECT_EQ(ca.total_ticks(), cb.total_ticks()) << "cpu " << i;
    for (int k = 0; k < trace::kCategoryCount; ++k) {
      const auto cat = static_cast<trace::Category>(k);
      EXPECT_EQ(ca.category_ticks(cat), cb.category_ticks(cat))
          << "cpu " << i << " " << trace::to_string(cat);
    }
    ASSERT_EQ(ca.spans().size(), cb.spans().size()) << "cpu " << i;
    for (std::size_t s = 0; s < ca.spans().size(); ++s) {
      EXPECT_EQ(ca.spans()[s].start, cb.spans()[s].start);
      EXPECT_EQ(ca.spans()[s].duration, cb.spans()[s].duration);
      EXPECT_EQ(ca.spans()[s].category, cb.spans()[s].category);
      EXPECT_STREQ(ca.spans()[s].tag, cb.spans()[s].tag);
    }
    EXPECT_EQ(ca.dropped_spans(), cb.dropped_spans());
  }
  EXPECT_EQ(a.runtime_trace().total_ticks(), b.runtime_trace().total_ticks());
}

TEST(TraceDeterminism, SummaryCountersPolicyInvariant) {
  ModeGuard g(Mode::Summary);
  ThreadPool pool(4);
  const auto seq = run_ccm2(ExecutionPolicy::Sequential, nullptr);
  const auto thr = run_ccm2(ExecutionPolicy::Threaded, &pool);
  expect_tracks_identical(*seq, *thr);
}

TEST(TraceDeterminism, FullSpansAndChromeTracePolicyInvariant) {
  ModeGuard g(Mode::Full);
  ThreadPool pool(4);
  const auto seq = run_ccm2(ExecutionPolicy::Sequential, nullptr);
  const auto thr = run_ccm2(ExecutionPolicy::Threaded, &pool);
  expect_tracks_identical(*seq, *thr);
  EXPECT_EQ(render_chrome(*seq), render_chrome(*thr));  // byte-identical
}

TEST(TraceDeterminism, RepeatedRunsByteIdentical) {
  ModeGuard g(Mode::Full);
  ThreadPool pool(4);
  const auto a = run_ccm2(ExecutionPolicy::Threaded, &pool);
  const auto b = run_ccm2(ExecutionPolicy::Threaded, &pool);
  expect_tracks_identical(*a, *b);
  EXPECT_EQ(render_chrome(*a), render_chrome(*b));
}

TEST(TraceDeterminism, AttributionTablesPolicyInvariant) {
  ModeGuard g(Mode::Summary);
  ThreadPool pool(4);
  const auto seq = run_ccm2(ExecutionPolicy::Sequential, nullptr);
  const auto thr = run_ccm2(ExecutionPolicy::Threaded, &pool);
  std::vector<const trace::Collector*> ta, tb;
  for (int i = 0; i < seq->cpu_count(); ++i) {
    ta.push_back(&seq->cpu(i).trace());
    tb.push_back(&thr->cpu(i).trace());
  }
  const auto aa = trace::build_attribution(
      std::span<const trace::Collector* const>(ta.data(), ta.size()));
  const auto ab = trace::build_attribution(
      std::span<const trace::Collector* const>(tb.data(), tb.size()));
  EXPECT_EQ(aa.total_ticks, ab.total_ticks);
  for (std::size_t i = 0; i < aa.rows.size(); ++i) {
    EXPECT_EQ(aa.rows[i].ticks, ab.rows[i].ticks);
    EXPECT_EQ(aa.rows[i].fraction, ab.rows[i].fraction);
  }
}

}  // namespace
