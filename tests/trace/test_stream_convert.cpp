// The streaming subsystem's core correctness claim: for the same model
// run, SX4NCAR_TRACE=stream → .sxt → sxtrace conversion produces Chrome
// trace JSON byte-identical to what SX4NCAR_TRACE=full writes live. The
// tests mirror the bench harness's track layout (trace_report.cpp):
// runtime on tid 0 always, cpu i on tid i+1 with the skip-empty rule.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ccm2/model.hpp"
#include "ocean/mom.hpp"
#include "sxs/execution_policy.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"
#include "trace/category.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/collector.hpp"
#include "trace/stream/convert.hpp"
#include "trace/stream/reader.hpp"
#include "trace/stream/writer.hpp"

namespace {

using namespace ncar;
using trace::Mode;
using trace::stream::Writer;

class ModeGuard {
public:
  explicit ModeGuard(Mode m) : before_(trace::mode()) { trace::set_mode(m); }
  ~ModeGuard() { trace::set_mode(before_); }

private:
  Mode before_;
};

/// Attach every collector of `node` to `writer` with the exact track
/// identities the bench harness uses (StreamTrace::attach_node).
std::vector<trace::Collector*> attach_node(Writer& writer, sxs::Node& node) {
  std::vector<trace::Collector*> attached;
  Writer::TrackSpec spec;
  spec.pid = 0;
  spec.process_name = "node0";
  auto attach = [&](trace::Collector& c) {
    Writer::TrackSpec full = spec;
    full.seconds_per_tick = c.seconds_per_tick();
    full.max_spans = c.max_spans();
    c.set_stream_sink(&writer.add_track(full));
    attached.push_back(&c);
  };
  spec.tid = 0;
  spec.thread_name = "runtime";
  attach(node.runtime_trace());
  for (int i = 0; i < node.cpu_count(); ++i) {
    spec.tid = i + 1;
    spec.thread_name = "cpu" + std::to_string(i);
    spec.skip_if_empty = true;
    attach(node.cpu(i).trace());
  }
  return attached;
}

/// The live Full-mode export with the harness's track layout
/// (append_node_tracks): runtime always, CPU tracks only when non-empty.
std::string render_full(const sxs::Node& node) {
  std::vector<trace::TraceTrack> tracks;
  tracks.push_back({&node.runtime_trace(), 0, 0, "node0", "runtime"});
  for (int i = 0; i < node.cpu_count(); ++i) {
    const trace::Collector& c = node.cpu(i).trace();
    if (c.spans().empty()) continue;
    tracks.push_back({&c, 0, i + 1, "node0", "cpu" + std::to_string(i)});
  }
  std::ostringstream os;
  trace::write_chrome_trace(
      os, std::span<const trace::TraceTrack>(tracks.data(), tracks.size()));
  return os.str();
}

std::string convert_sxt(const std::string& path) {
  const trace::stream::SxtFile file = trace::stream::read_sxt_file(path);
  std::ostringstream os;
  trace::stream::write_chrome_json(file, os);
  return os.str();
}

/// Run `model_fn(node)` once in Full mode rendering the live JSON, and
/// once in Stream mode converting the .sxt — the two must match byte for
/// byte.
template <typename ModelFn>
void expect_convert_byte_identical(const std::string& sxt_path,
                                   ModelFn model_fn) {
  std::string live;
  {
    ModeGuard g(Mode::Full);
    sxs::Node node(sxs::MachineConfig::sx4_benchmarked(),
                   sxs::ExecutionPolicy::Sequential);
    model_fn(node);
    live = render_full(node);
  }
  std::string converted;
  {
    ModeGuard g(Mode::Stream);
    sxs::Node node(sxs::MachineConfig::sx4_benchmarked(),
                   sxs::ExecutionPolicy::Sequential);
    auto writer = Writer::open(sxt_path);
    ASSERT_NE(writer, nullptr);
    const auto attached = attach_node(*writer, node);
    model_fn(node);
    for (trace::Collector* c : attached) c->set_stream_sink(nullptr);
    ASSERT_TRUE(writer->finalize());
    EXPECT_EQ(writer->stats().dropped, 0u);
    converted = convert_sxt(sxt_path);
  }
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(converted, live);
}

TEST(StreamConvert, Ccm2TraceByteIdentical) {
  expect_convert_byte_identical(
      ::testing::TempDir() + "convert_ccm2.sxt", [](sxs::Node& node) {
        ccm2::Ccm2Config c;
        c.res = ccm2::t42l18();
        c.active_levels = 1;
        ccm2::Ccm2 model(c, node);
        for (int s = 0; s < 2; ++s) model.step(8);
      });
}

TEST(StreamConvert, MomTraceByteIdentical) {
  expect_convert_byte_identical(
      ::testing::TempDir() + "convert_mom.sxt", [](sxs::Node& node) {
        ocean::Mom model(ocean::MomConfig::low_resolution(), node);
        for (int s = 0; s < 2; ++s) model.step(8);
      });
}

TEST(StreamConvert, ResetMatchesLiveExportToo) {
  // A mid-run Collector::reset discards in-memory spans in Full mode and
  // dead epochs in Stream mode; the converted trace must still match.
  expect_convert_byte_identical(
      ::testing::TempDir() + "convert_reset.sxt", [](sxs::Node& node) {
        ccm2::Ccm2Config c;
        c.res = ccm2::t42l18();
        c.active_levels = 1;
        ccm2::Ccm2 model(c, node);
        model.step(8);
        node.reset();
        model.step(8);
      });
}

}  // namespace
