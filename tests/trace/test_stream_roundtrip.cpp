// Writer → .sxt file → reader round-trip tests, plus the strict-rejection
// contract: a corrupt or truncated file raises FormatError with a stable
// "sxt: ..." message, never a partial parse.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/category.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/reader.hpp"
#include "trace/stream/varint.hpp"
#include "trace/stream/writer.hpp"

namespace {

using namespace ncar::trace::stream;
using ncar::trace::Category;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

Writer::TrackSpec spec(int pid, int tid, const char* process,
                       const char* thread, double tick, bool skip) {
  Writer::TrackSpec s;
  s.pid = pid;
  s.tid = tid;
  s.process_name = process;
  s.thread_name = thread;
  s.seconds_per_tick = tick;
  s.skip_if_empty = skip;
  s.max_spans = 1u << 20;
  return s;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  bytes.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void expect_rejected(const std::vector<std::uint8_t>& bytes,
                     const std::string& message) {
  try {
    parse_sxt(bytes.data(), bytes.size());
    FAIL() << "parse accepted a corrupt file (wanted: " << message << ")";
  } catch (const FormatError& e) {
    EXPECT_EQ(std::string(e.what()), message);
  }
}

/// Walk the first chunk's header with the same varint reader the parser
/// uses; returns positions needed by the corruption tests.
struct ChunkLayout {
  std::size_t encoding_pos = 0;
  std::size_t payload_pos = 0;
  std::size_t payload_bytes = 0;
};

ChunkLayout first_chunk_layout(const std::vector<std::uint8_t>& bytes) {
  ChunkLayout out;
  std::size_t pos = 16;
  EXPECT_EQ(bytes.at(pos), kChunkMarker);
  ++pos;
  std::uint64_t v = 0;
  for (int field = 0; field < 4; ++field) {  // track, epoch, seq, count
    EXPECT_TRUE(get_varint(bytes.data(), bytes.size(), pos, v));
  }
  out.encoding_pos = pos++;
  EXPECT_TRUE(get_varint(bytes.data(), bytes.size(), pos, v));  // raw_bytes
  EXPECT_TRUE(get_varint(bytes.data(), bytes.size(), pos, v));
  out.payload_pos = pos;
  out.payload_bytes = static_cast<std::size_t>(v);
  return out;
}

TEST(StreamRoundTrip, SpansSpecsAndTagsSurvive) {
  const std::string path = temp_path("roundtrip.sxt");
  Writer::Options opt;
  opt.chunk_records = 16;  // force several chunk flushes
  opt.pack = 0;
  auto writer = Writer::open(path, opt);
  ASSERT_NE(writer, nullptr);

  TrackSink& runtime = writer->add_track(
      spec(7, 0, "node0", "runtime", 8e-9, /*skip=*/false));
  TrackSink& cpu = writer->add_track(
      spec(7, 1, "node0", "cpu0", 9.2e-9, /*skip=*/true));

  std::vector<RawRecord> expect_cpu;
  double t = 0.0;
  const char* tags[] = {"saxpy", "fft", "gather"};
  for (int i = 0; i < 100; ++i) {
    const double dur = 10.0 + (i % 3);
    const auto c = static_cast<Category>(i % ncar::trace::kCategoryCount);
    cpu.record(c, t, dur, tags[i % 3]);
    expect_cpu.push_back({t, dur, static_cast<std::uint32_t>(i % 3),
                          static_cast<std::uint8_t>(c)});
    t += dur;
  }
  runtime.record(Category::Barrier, 5.0, 2.0, "barrier");
  ASSERT_TRUE(writer->finalize());
  EXPECT_EQ(writer->stats().events, 101u);
  EXPECT_EQ(writer->stats().dropped, 0u);

  const SxtFile file = read_sxt_file(path);
  ASSERT_EQ(file.tracks.size(), 2u);

  const TrackData& rt = file.tracks[0];
  EXPECT_EQ(rt.pid, 7);
  EXPECT_EQ(rt.tid, 0);
  EXPECT_EQ(rt.process_name, "node0");
  EXPECT_EQ(rt.thread_name, "runtime");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(rt.seconds_per_tick),
            std::bit_cast<std::uint64_t>(8e-9));
  EXPECT_FALSE(rt.skip_if_empty);
  EXPECT_EQ(rt.max_spans, 1u << 20);
  ASSERT_EQ(rt.spans.size(), 1u);
  EXPECT_EQ(rt.tags.at(rt.spans[0].tag), "barrier");

  const TrackData& cp = file.tracks[1];
  EXPECT_TRUE(cp.skip_if_empty);
  ASSERT_EQ(cp.tags.size(), 3u);
  EXPECT_EQ(cp.tags[0], "saxpy");
  EXPECT_EQ(cp.tags[1], "fft");
  EXPECT_EQ(cp.tags[2], "gather");
  ASSERT_EQ(cp.spans.size(), expect_cpu.size());
  for (std::size_t i = 0; i < expect_cpu.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cp.spans[i].start),
              std::bit_cast<std::uint64_t>(expect_cpu[i].start));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(cp.spans[i].duration),
              std::bit_cast<std::uint64_t>(expect_cpu[i].duration));
    EXPECT_EQ(cp.spans[i].tag, expect_cpu[i].tag);
    EXPECT_EQ(cp.spans[i].category, expect_cpu[i].category);
  }
  EXPECT_EQ(file.stats.file_bytes, writer->stats().file_bytes);
}

TEST(StreamRoundTrip, ResetCompactsDeadEpochs) {
  const std::string path = temp_path("epochs.sxt");
  Writer::Options opt;
  opt.chunk_records = 16;
  opt.pack = 0;
  auto writer = Writer::open(path, opt);
  ASSERT_NE(writer, nullptr);
  TrackSink& sink =
      writer->add_track(spec(1, 0, "node0", "cpu0", 8e-9, true));

  // 40 spans: two full chunks hit the file, 8 stay in the ring and are
  // abandoned by the reset, exactly like Collector::reset discards its
  // in-memory buffer.
  for (int i = 0; i < 40; ++i) {
    sink.record(Category::Scalar, i * 1.0, 1.0, "warmup");
  }
  sink.on_reset();
  EXPECT_EQ(sink.epoch(), 1u);
  EXPECT_EQ(sink.live_records(), 0u);
  for (int i = 0; i < 7; ++i) {
    sink.record(Category::VectorAdd, 100.0 + i, 2.0, "steady");
  }
  ASSERT_TRUE(writer->finalize());
  EXPECT_EQ(writer->stats().events, 7u);

  const SxtFile file = read_sxt_file(path);
  ASSERT_EQ(file.tracks.size(), 1u);
  const TrackData& track = file.tracks[0];
  EXPECT_EQ(track.final_epoch, 1u);
  ASSERT_EQ(track.spans.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(track.spans[i].start, 100.0 + static_cast<double>(i));
    EXPECT_EQ(track.tags.at(track.spans[i].tag), "steady");
  }
  // The dead-epoch chunks were rewritten away, not just skipped: every
  // chunk still in the file carries the final epoch.
  EXPECT_EQ(file.stats.total_chunks, writer->stats().chunks);
  const auto bytes = file_bytes(path);
  std::size_t count = 0;
  for (std::size_t p = 16; p < bytes.size() && bytes[p] == kChunkMarker;) {
    std::uint64_t v = 0;
    ++p;
    get_varint(bytes.data(), bytes.size(), p, v);  // track
    get_varint(bytes.data(), bytes.size(), p, v);  // epoch
    EXPECT_EQ(v, 1u) << "dead-epoch chunk survived finalize";
    get_varint(bytes.data(), bytes.size(), p, v);  // seq
    get_varint(bytes.data(), bytes.size(), p, v);  // record count
    ++p;                                           // encoding
    get_varint(bytes.data(), bytes.size(), p, v);  // raw bytes
    get_varint(bytes.data(), bytes.size(), p, v);  // payload bytes
    p += static_cast<std::size_t>(v);
    ++count;
  }
  EXPECT_EQ(count, file.stats.total_chunks);
}

TEST(StreamRoundTrip, PackedAndRawFilesParseIdentically) {
  Writer::Options raw_opt;
  raw_opt.chunk_records = 512;
  raw_opt.pack = 0;
  Writer::Options pack_opt = raw_opt;
  pack_opt.pack = 1;
  const std::string raw_path = temp_path("pack_off.sxt");
  const std::string pack_path = temp_path("pack_on.sxt");

  for (const auto& [path, opt] :
       {std::pair{raw_path, raw_opt}, std::pair{pack_path, pack_opt}}) {
    auto writer = Writer::open(path, opt);
    ASSERT_NE(writer, nullptr);
    TrackSink& sink =
        writer->add_track(spec(1, 0, "node0", "cpu0", 8e-9, true));
    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
      // Contiguous, repetitive: stage-1 bytes are almost all zero, so the
      // entropy stage engages on every full chunk.
      const double dur = (i % 4 == 0) ? 3.5 : 1.25;
      sink.record(i % 2 ? Category::VectorMul : Category::VectorAdd, t, dur,
                  i % 2 ? "mul8" : "add8");
      t += dur;
    }
    ASSERT_TRUE(writer->finalize());
  }

  const SxtFile raw_file = read_sxt_file(raw_path);
  const SxtFile pack_file = read_sxt_file(pack_path);
  EXPECT_LT(pack_file.stats.file_bytes, raw_file.stats.file_bytes);
  ASSERT_EQ(pack_file.tracks.size(), raw_file.tracks.size());
  const TrackData& a = raw_file.tracks[0];
  const TrackData& b = pack_file.tracks[0];
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.spans[i].start),
              std::bit_cast<std::uint64_t>(b.spans[i].start));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.spans[i].duration),
              std::bit_cast<std::uint64_t>(b.spans[i].duration));
    EXPECT_EQ(a.spans[i].tag, b.spans[i].tag);
    EXPECT_EQ(a.spans[i].category, b.spans[i].category);
  }
  EXPECT_EQ(a.tags, b.tags);

  // At least one chunk in the packed file actually used the entropy
  // encoding (otherwise the size comparison above proved nothing).
  const auto bytes = file_bytes(pack_path);
  EXPECT_EQ(bytes[first_chunk_layout(bytes).encoding_pos], kEncodingEntropy);
}

std::vector<std::uint8_t> small_valid_file(const std::string& path) {
  Writer::Options opt;
  opt.chunk_records = 4;
  opt.pack = 0;
  auto writer = Writer::open(path, opt);
  TrackSink& sink = writer->add_track({});
  for (int i = 0; i < 4; ++i) {
    sink.record(Category::Scalar, i * 1.0, 0.5, "op");
  }
  writer->finalize();
  return file_bytes(path);
}

TEST(StreamReject, StructuralDamageRaisesExactErrors) {
  const auto good = small_valid_file(temp_path("victim.sxt"));
  ASSERT_NO_THROW(parse_sxt(good.data(), good.size()));

  std::vector<std::uint8_t> tiny(good.begin(), good.begin() + 10);
  expect_rejected(tiny, "sxt: file too small");

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  expect_rejected(bad_magic, "sxt: bad magic");

  auto bad_version = good;
  bad_version[4] = 99;
  expect_rejected(bad_version, "sxt: unsupported version");

  const std::vector<std::uint8_t> truncated(good.begin(), good.end() - 1);
  expect_rejected(truncated, "sxt: missing trailer");

  auto bad_marker = good;
  bad_marker[16] = 0x77;
  expect_rejected(bad_marker, "sxt: bad section marker");

  const ChunkLayout layout = first_chunk_layout(good);
  auto bad_encoding = good;
  bad_encoding[layout.encoding_pos] = 9;
  expect_rejected(bad_encoding, "sxt: bad chunk encoding");

  // Setting the continuation bit on the payload's last byte leaves the
  // final varint unterminated: stage-1 decode must fail, not run on.
  auto bad_payload = good;
  bad_payload[layout.payload_pos + layout.payload_bytes - 1] |= 0x80;
  expect_rejected(bad_payload, "sxt: record payload corrupt");
}

TEST(StreamReject, TruncatedChunkPayloadAndCorruptEntropy) {
  // Hand-built file whose chunk claims more payload than the file holds.
  std::vector<std::uint8_t> fake = {'S', 'X', 'T', '1', 1, 0, 0, 0,
                                    0,   0,   0,   0,   0, 0, 0, 0};
  fake.push_back(kChunkMarker);
  std::uint8_t scratch[kMaxVarintBytes];
  for (const std::uint64_t v : {0ull, 0ull, 0ull, 4ull}) {
    fake.insert(fake.end(), scratch, scratch + put_varint(scratch, v));
  }
  fake.push_back(kEncodingRaw);
  fake.insert(fake.end(), scratch, scratch + put_varint(scratch, 200));
  fake.insert(fake.end(), scratch, scratch + put_varint(scratch, 200));
  fake.insert(fake.end(), 8, 0x00);  // far fewer than the 200 promised
  fake.insert(fake.end(), {'S', 'X', 'T', 'E'});
  expect_rejected(fake, "sxt: truncated chunk payload");

  // A real packed file with one histogram byte flipped: the entropy
  // decoder must reject, not emit garbage records.
  const std::string path = temp_path("entropy_victim.sxt");
  Writer::Options opt;
  opt.chunk_records = 512;
  opt.pack = 1;
  auto writer = Writer::open(path, opt);
  TrackSink& sink = writer->add_track({});
  for (int i = 0; i < 512; ++i) {
    sink.record(Category::Scalar, i * 1.0, 1.0, "op");
  }
  ASSERT_TRUE(writer->finalize());
  auto bytes = file_bytes(path);
  const ChunkLayout layout = first_chunk_layout(bytes);
  ASSERT_EQ(bytes[layout.encoding_pos], kEncodingEntropy);
  bytes[layout.payload_pos + 1] ^= 0x01;
  expect_rejected(bytes, "sxt: entropy payload corrupt");
}

TEST(StreamReject, MissingFileReportsPath) {
  const std::string path = temp_path("does_not_exist.sxt");
  try {
    read_sxt_file(path);
    FAIL() << "read_sxt_file accepted a missing file";
  } catch (const FormatError& e) {
    EXPECT_EQ(std::string(e.what()), "sxt: cannot open " + path);
  }
}

}  // namespace
