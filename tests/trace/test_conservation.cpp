// Attribution conservation on the real application models: for every
// simulated Cpu the per-category cycle rows must fold bit-exactly to the
// CPU's charged cycle counter, and tracing must never perturb the charged
// cycles themselves.

#include <gtest/gtest.h>

#include "ccm2/model.hpp"
#include "ocean/mom.hpp"
#include "prodload/scheduler.hpp"
#include "sxs/machine_config.hpp"
#include "sxs/node.hpp"
#include "trace/attribution.hpp"
#include "trace/category.hpp"
#include "trace/collector.hpp"

namespace {

using namespace ncar;
using sxs::MachineConfig;
using trace::Category;
using trace::Mode;

class ModeGuard {
public:
  explicit ModeGuard(Mode m) : before_(trace::mode()) { trace::set_mode(m); }
  ~ModeGuard() { trace::set_mode(before_); }

private:
  Mode before_;
};

double fold_rows(const trace::Attribution& a) {
  double s = 0;
  for (const auto& row : a.rows) s += row.ticks;
  return s;
}

/// Per-CPU conservation: collector total == Cpu cycle counter, rows fold to
/// the total, and the runtime-only categories never land on a Cpu track.
void expect_node_conserves(const sxs::Node& node) {
  for (int i = 0; i < node.cpu_count(); ++i) {
    const trace::Collector& c = node.cpu(i).trace();
    EXPECT_EQ(c.total_ticks(), node.cpu(i).cycles()) << "cpu " << i;
    const trace::Attribution a = trace::build_attribution(c);
    EXPECT_EQ(fold_rows(a), a.total_ticks) << "cpu " << i;
    EXPECT_EQ(c.category_ticks(Category::Barrier), 0.0) << "cpu " << i;
    EXPECT_EQ(c.category_ticks(Category::Idle), 0.0) << "cpu " << i;
  }
  // The node runtime track mirrors the wall clock the same way.
  EXPECT_EQ(node.runtime_trace().total_ticks(), node.elapsed_seconds());
  const trace::Attribution rt =
      trace::build_attribution(node.runtime_trace());
  EXPECT_EQ(fold_rows(rt), rt.total_ticks);
}

TEST(Conservation, Ccm2StepsConserve) {
  ModeGuard g(Mode::Summary);
  sxs::Node node(MachineConfig::sx4_benchmarked());
  ccm2::Ccm2Config c;
  c.res = ccm2::t42l18();
  c.active_levels = 1;
  ccm2::Ccm2 model(c, node);
  for (int s = 0; s < 2; ++s) model.step(8);
  expect_node_conserves(node);
  // Something was actually attributed beyond Other.
  double categorised = 0;
  for (int i = 0; i < node.cpu_count(); ++i) {
    for (int k = 0; k < trace::kCategoryCount - 1; ++k) {
      categorised +=
          node.cpu(i).trace().category_ticks(static_cast<Category>(k));
    }
  }
  EXPECT_GT(categorised, 0.0);
}

TEST(Conservation, MomStepsConserve) {
  ModeGuard g(Mode::Summary);
  sxs::Node node(MachineConfig::sx4_benchmarked());
  ocean::Mom mom(ocean::MomConfig::low_resolution(), node);
  for (int s = 0; s < 2; ++s) mom.step(8);
  expect_node_conserves(node);
}

TEST(Conservation, ProdloadSchedulerTrackTotalsJobSeconds) {
  ModeGuard g(Mode::Summary);
  trace::Collector track;
  prodload::Scheduler sched(32, 0.0006);
  sched.set_trace(&track);
  prodload::Sequence seq;
  seq.name = "seq";
  for (int j = 0; j < 3; ++j) {
    prodload::Job job;
    job.name = "job" + std::to_string(j);
    job.components = {{"work", 8, Seconds(100.0 + j)}};
    seq.jobs.push_back(job);
  }
  const auto result = sched.run({seq});
  // One span-equivalent per job; the track total is the sum of job
  // residence times (queue wait + service), conserved bit-exactly.
  double expected = 0;
  for (const auto& job : result.jobs) {
    expected += (job.end - job.start).value();
  }
  EXPECT_EQ(track.total_ticks(), expected);
  const trace::Attribution a = trace::build_attribution(track);
  EXPECT_EQ(fold_rows(a), a.total_ticks);
}

TEST(Conservation, TracingDoesNotPerturbChargedCycles) {
  // Off vs Summary vs Full must charge bit-identical cycles: tracing reads
  // the costs, it never participates in them.
  auto run = [](Mode m) {
    ModeGuard g(m);
    sxs::Node node(MachineConfig::sx4_benchmarked());
    ccm2::Ccm2Config c;
    c.res = ccm2::t42l18();
    c.active_levels = 1;
    ccm2::Ccm2 model(c, node);
    model.step(8);
    std::vector<double> cycles;
    for (int i = 0; i < node.cpu_count(); ++i) {
      cycles.push_back(node.cpu(i).cycles());
    }
    cycles.push_back(node.elapsed_seconds());
    return cycles;
  };
  const auto off = run(Mode::Off);
  EXPECT_EQ(off, run(Mode::Summary));
  EXPECT_EQ(off, run(Mode::Full));
}

}  // namespace
