#include "trace/collector.hpp"

#include <gtest/gtest.h>

#include <string>

#include "trace/category.hpp"

namespace {

using namespace ncar;
using trace::Category;
using trace::Collector;
using trace::Mode;

/// Pin the tracing mode for one test, restoring the previous mode on exit.
class ModeGuard {
public:
  explicit ModeGuard(Mode m) : before_(trace::mode()) { trace::set_mode(m); }
  ~ModeGuard() { trace::set_mode(before_); }

private:
  Mode before_;
};

TEST(Collector, CountersAccumulatePerCategory) {
  Collector c;
  c.count_total(10.0);
  c.count(Category::VectorAdd, 7.0);
  c.count_total(2.0);
  c.count(Category::Scalar, 2.0);
  EXPECT_DOUBLE_EQ(c.total_ticks(), 12.0);
  EXPECT_DOUBLE_EQ(c.category_ticks(Category::VectorAdd), 7.0);
  EXPECT_DOUBLE_EQ(c.category_ticks(Category::Scalar), 2.0);
  EXPECT_DOUBLE_EQ(c.category_ticks(Category::Other), 0.0);
}

TEST(Collector, SpansRecordOnlyInFullMode) {
  Collector c;
  {
    ModeGuard g(Mode::Off);
    c.span(Category::VectorAdd, 0.0, 5.0, "off");
  }
  {
    ModeGuard g(Mode::Summary);
    c.span(Category::VectorAdd, 0.0, 5.0, "summary");
  }
  EXPECT_TRUE(c.spans().empty());
  {
    ModeGuard g(Mode::Full);
    c.span(Category::VectorAdd, 3.0, 5.0, "full");
  }
  ASSERT_EQ(c.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(c.spans()[0].start, 3.0);
  EXPECT_DOUBLE_EQ(c.spans()[0].duration, 5.0);
  EXPECT_EQ(c.spans()[0].category, Category::VectorAdd);
  EXPECT_STREQ(c.spans()[0].tag, "full");
}

TEST(Collector, ZeroDurationSpansAreSkipped) {
  ModeGuard g(Mode::Full);
  Collector c;
  c.span(Category::Scalar, 1.0, 0.0, "zero");
  c.span(Category::Scalar, 1.0, -1.0, "negative");
  EXPECT_TRUE(c.spans().empty());
  EXPECT_EQ(c.dropped_spans(), 0u);
}

TEST(Collector, BufferCapsAndCountsDrops) {
  ModeGuard g(Mode::Full);
  Collector c(1.0, 4);
  for (int i = 0; i < 10; ++i) {
    c.span(Category::Other, i, 1.0, "s");
  }
  EXPECT_EQ(c.spans().size(), 4u);
  EXPECT_EQ(c.dropped_spans(), 6u);
}

TEST(Collector, AddCombinesCounterAndSpan) {
  ModeGuard g(Mode::Full);
  Collector c;
  c.add(Category::IoDisk, 2.0, 3.0, "xfer");
  EXPECT_DOUBLE_EQ(c.total_ticks(), 3.0);
  EXPECT_DOUBLE_EQ(c.category_ticks(Category::IoDisk), 3.0);
  ASSERT_EQ(c.spans().size(), 1u);
}

TEST(Collector, InternedTagsAreStable) {
  Collector c;
  std::string name = "job1";
  const char* p1 = c.intern(name);
  name = "job2";
  const char* p2 = c.intern(name);
  EXPECT_STREQ(p1, "job1");
  EXPECT_STREQ(p2, "job2");
  // Re-interning an existing name returns the same storage.
  EXPECT_EQ(c.intern("job1"), p1);
}

TEST(Collector, ResetClearsCountersAndSpansButKeepsTags) {
  ModeGuard g(Mode::Full);
  Collector c(1.0, 2);
  const char* tag = c.intern("keep");
  c.add(Category::Scalar, 0.0, 1.0, tag);
  c.span(Category::Scalar, 1.0, 1.0, tag);
  c.span(Category::Scalar, 2.0, 1.0, tag);  // dropped: cap is 2
  EXPECT_EQ(c.dropped_spans(), 1u);
  c.reset();
  EXPECT_DOUBLE_EQ(c.total_ticks(), 0.0);
  EXPECT_DOUBLE_EQ(c.category_ticks(Category::Scalar), 0.0);
  EXPECT_TRUE(c.spans().empty());
  EXPECT_EQ(c.dropped_spans(), 0u);
  EXPECT_STREQ(tag, "keep");  // interned storage survives reset
}

TEST(Collector, SecondsPerTickIsRemembered) {
  Collector cpu_track(9.2e-9);
  Collector device_track;
  EXPECT_DOUBLE_EQ(cpu_track.seconds_per_tick(), 9.2e-9);
  EXPECT_DOUBLE_EQ(device_track.seconds_per_tick(), 1.0);
}

}  // namespace
