#include "trace/category.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

namespace {

using namespace ncar;
using trace::Category;
using trace::Mode;

TEST(Category, NamesRoundTripAndAreUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < trace::kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    const char* name = trace::to_string(c);
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    Category back = Category::Other;
    EXPECT_TRUE(trace::category_from_string(name, back)) << name;
    EXPECT_EQ(back, c) << name;
  }
}

TEST(Category, NamesAreSnakeCase) {
  for (int i = 0; i < trace::kCategoryCount; ++i) {
    const std::string name = trace::to_string(static_cast<Category>(i));
    for (char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_') << name;
    }
  }
}

TEST(Category, FromStringRejectsUnknown) {
  Category out = Category::Other;
  EXPECT_FALSE(trace::category_from_string("not_a_category", out));
  EXPECT_FALSE(trace::category_from_string("", out));
}

TEST(Category, OtherIsLastAndIsTheResidualBucket) {
  EXPECT_EQ(trace::kCategoryCount,
            static_cast<int>(Category::Other) + 1);
}

TEST(Category, RuntimeCategoriesAreNotCharged) {
  EXPECT_FALSE(trace::is_charged_category(Category::Barrier));
  EXPECT_FALSE(trace::is_charged_category(Category::Idle));
  EXPECT_TRUE(trace::is_charged_category(Category::VectorAdd));
  EXPECT_TRUE(trace::is_charged_category(Category::BankConflict));
  EXPECT_TRUE(trace::is_charged_category(Category::GatherScatter));
  EXPECT_TRUE(trace::is_charged_category(Category::Other));
}

TEST(Mode, ParsesEnvValues) {
  EXPECT_EQ(trace::mode_from_env(nullptr), Mode::Off);
  EXPECT_EQ(trace::mode_from_env(""), Mode::Off);
  EXPECT_EQ(trace::mode_from_env("off"), Mode::Off);
  EXPECT_EQ(trace::mode_from_env("summary"), Mode::Summary);
  EXPECT_EQ(trace::mode_from_env("full"), Mode::Full);
  EXPECT_EQ(trace::mode_from_env("bogus"), Mode::Off);
}

TEST(Mode, SetModeOverrides) {
  const Mode before = trace::mode();
  trace::set_mode(Mode::Full);
  EXPECT_EQ(trace::mode(), Mode::Full);
  trace::set_mode(before);
  EXPECT_EQ(trace::mode(), before);
}

}  // namespace
