// Property tests for the .sxt stage-1 record codec, the LEB128 varints it
// is built on, and the optional tANS entropy stage: encode/decode must
// round-trip every well-formed input bit-exactly, and the decoders must
// reject truncated or corrupt payloads instead of reading past them.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "trace/stream/codec.hpp"
#include "trace/stream/entropy.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/varint.hpp"

namespace {

using namespace ncar::trace::stream;
using RawRecords = std::vector<RawRecord>;

std::uint64_t varint_roundtrip(std::uint64_t v, std::size_t* bytes = nullptr) {
  std::uint8_t buf[kMaxVarintBytes];
  const std::size_t len = put_varint(buf, v);
  if (bytes != nullptr) *bytes = len;
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_TRUE(get_varint(buf, len, pos, out));
  EXPECT_EQ(pos, len);
  return out;
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::size_t len = 0;
    EXPECT_EQ(varint_roundtrip(v, &len), v);
    EXPECT_LE(len, kMaxVarintBytes);
  }
  std::size_t len = 0;
  varint_roundtrip(std::numeric_limits<std::uint64_t>::max(), &len);
  EXPECT_EQ(len, kMaxVarintBytes);
}

TEST(Varint, RoundTripsRandomValues) {
  std::mt19937_64 rng(0xC0DEC);
  for (int i = 0; i < 4000; ++i) {
    // Mix magnitudes: raw 64-bit draws rarely exercise short encodings.
    const int shift = static_cast<int>(rng() % 64);
    const std::uint64_t v = rng() >> shift;
    EXPECT_EQ(varint_roundtrip(v), v);
  }
}

TEST(Varint, RejectsTruncation) {
  std::uint8_t buf[kMaxVarintBytes];
  const std::size_t len = put_varint(buf, 1ull << 60);
  for (std::size_t cut = 0; cut < len; ++cut) {
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_FALSE(get_varint(buf, cut, pos, out)) << "cut " << cut;
  }
}

RawRecords decode_all(const std::vector<std::uint8_t>& bytes, std::size_t n) {
  RawRecords out(n);
  EXPECT_TRUE(decode_records(bytes.data(), bytes.size(), n, out.data()));
  return out;
}

void expect_roundtrip(const RawRecords& records) {
  std::vector<std::uint8_t> buf(records.size() * kMaxRecordBytes);
  const std::size_t len =
      encode_records(records.data(), records.size(), buf.data());
  ASSERT_LE(len, buf.size());
  buf.resize(len);
  const RawRecords back = decode_all(buf, records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i].start),
              std::bit_cast<std::uint64_t>(records[i].start))
        << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i].duration),
              std::bit_cast<std::uint64_t>(records[i].duration))
        << i;
    EXPECT_EQ(back[i].tag, records[i].tag) << i;
    EXPECT_EQ(back[i].category, records[i].category) << i;
  }
}

TEST(RecordCodec, PerfectlyPredictedStreamIsOneByteHeaderPerRecord) {
  // Contiguous spans of a repeated duration: start always equals the
  // previous end and the duration matches the per-tag predictor, so both
  // XOR residues are zero and each record costs 3 varint bytes (header +
  // two zero residues).
  RawRecords r;
  double t = 1000.0;
  for (int i = 0; i < 64; ++i) {
    r.push_back({t, 2.5, 3, 1});
    t += 2.5;
  }
  std::vector<std::uint8_t> buf(r.size() * kMaxRecordBytes);
  const std::size_t len = encode_records(r.data(), r.size(), buf.data());
  // First record pays full residues; the rest are 3 bytes each.
  EXPECT_LE(len, 3 * (r.size() - 1) + kMaxRecordBytes);
  expect_roundtrip(r);
}

TEST(RecordCodec, RoundTripsAdversarialValues) {
  const double specials[] = {0.0,
                             -0.0,
                             1.0,
                             -1.0,
                             1e308,
                             -1e308,
                             5e-324,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::epsilon()};
  RawRecords r;
  std::uint32_t tag = 0;
  std::uint8_t cat = 0;
  for (const double start : specials) {
    for (const double dur : specials) {
      r.push_back({start, dur, tag++ % 7, static_cast<std::uint8_t>(cat++ % 16)});
    }
  }
  expect_roundtrip(r);
}

TEST(RecordCodec, RoundTripsRandomNonMonotoneRecords) {
  std::mt19937_64 rng(0x5EED);
  std::uniform_real_distribution<double> u(-1e12, 1e12);
  RawRecords r;
  for (int i = 0; i < 4096; ++i) {
    r.push_back({u(rng), u(rng), static_cast<std::uint32_t>(rng() % 40),
                 static_cast<std::uint8_t>(rng() % 16)});
  }
  expect_roundtrip(r);
}

TEST(RecordCodec, RoundTripsTagsBeyondPredictionTable) {
  // Tag ids past the decoder's per-tag prediction bound fall back to a
  // zero predictor on both sides; the stream must still round-trip.
  RawRecords r;
  for (int i = 0; i < 100; ++i) {
    r.push_back({static_cast<double>(i), 1.5 + i,
                 4096 + static_cast<std::uint32_t>(i % 3) * 100000, 2});
  }
  expect_roundtrip(r);
}

TEST(RecordCodec, RejectsTruncatedPayload) {
  RawRecords r;
  for (int i = 0; i < 16; ++i) r.push_back({1.0 * i, 2.0, 1, 1});
  std::vector<std::uint8_t> buf(r.size() * kMaxRecordBytes);
  const std::size_t len = encode_records(r.data(), r.size(), buf.data());
  RawRecords out(r.size());
  EXPECT_FALSE(decode_records(buf.data(), len - 1, r.size(), out.data()));
  EXPECT_FALSE(decode_records(buf.data(), 0, r.size(), out.data()));
}

TEST(RecordCodec, RejectsTrailingGarbage) {
  RawRecords r{{1.0, 2.0, 1, 1}};
  std::vector<std::uint8_t> buf(kMaxRecordBytes + 1);
  const std::size_t len = encode_records(r.data(), 1, buf.data());
  buf[len] = 0x00;  // one stray byte after the last record
  RawRecord out;
  EXPECT_FALSE(decode_records(buf.data(), len + 1, 1, &out));
}

TEST(RecordCodec, RejectsTagOverflowingThirtyTwoBits) {
  // Header varint of (tag << 4) | category with tag > uint32 max.
  std::vector<std::uint8_t> buf(3 * kMaxVarintBytes);
  std::size_t pos = put_varint(buf.data(), (0x1'0000'0000ull << 4) | 1u);
  pos += put_varint(buf.data() + pos, 0);  // start residue
  pos += put_varint(buf.data() + pos, 0);  // duration residue
  RawRecord out;
  EXPECT_FALSE(decode_records(buf.data(), pos, 1, &out));
}

std::vector<std::uint8_t> unpack_or_die(const std::vector<std::uint8_t>& packed,
                                        std::size_t raw_size) {
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(entropy_unpack(packed.data(), packed.size(), raw_size, out));
  EXPECT_EQ(out.size(), raw_size);
  return out;
}

TEST(Entropy, SingleValueRunShortCircuitsToRle) {
  const std::vector<std::uint8_t> raw(1000, 0x7F);
  std::vector<std::uint8_t> packed;
  ASSERT_TRUE(entropy_pack(raw.data(), raw.size(), packed));
  EXPECT_EQ(packed.size(), 2u);
  EXPECT_EQ(unpack_or_die(packed, raw.size()), raw);
}

TEST(Entropy, SkewedBytesRoundTripAndShrink) {
  std::mt19937_64 rng(0xE27);
  std::vector<std::uint8_t> raw;
  for (int i = 0; i < 20000; ++i) {
    // Stage-1-like distribution: mostly 0x00, a few hot header values.
    const std::uint64_t roll = rng() % 100;
    raw.push_back(roll < 70 ? 0x00
                  : roll < 90
                      ? static_cast<std::uint8_t>(0x10 + roll % 4)
                      : static_cast<std::uint8_t>(rng() & 0xFF));
  }
  std::vector<std::uint8_t> packed;
  ASSERT_TRUE(entropy_pack(raw.data(), raw.size(), packed));
  EXPECT_LT(packed.size(), raw.size());
  EXPECT_EQ(unpack_or_die(packed, raw.size()), raw);
}

TEST(Entropy, RefusesWhenNotStrictlySmaller) {
  std::mt19937_64 rng(0xFADE);
  std::vector<std::uint8_t> raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
  }
  std::vector<std::uint8_t> packed;
  EXPECT_FALSE(entropy_pack(raw.data(), raw.size(), packed));
  const std::vector<std::uint8_t> tiny{1};
  EXPECT_FALSE(entropy_pack(tiny.data(), tiny.size(), packed));
}

TEST(Entropy, AllByteValuesRoundTrip) {
  std::vector<std::uint8_t> raw;
  for (int rep = 0; rep < 8; ++rep) {
    for (int b = 0; b < 256; ++b) {
      raw.push_back(static_cast<std::uint8_t>(b));
    }
  }
  // Uniform input will not shrink; drive the coder through the workspace
  // API anyway and round-trip whatever it produced via a skewed prefix.
  raw.insert(raw.end(), 8192, 0x00);
  std::vector<std::uint8_t> packed;
  EntropyWorkspace ws;
  ASSERT_TRUE(entropy_pack(raw.data(), raw.size(), packed, ws));
  EXPECT_EQ(unpack_or_die(packed, raw.size()), raw);
}

TEST(Entropy, RejectsCorruptPayloads) {
  const std::vector<std::uint8_t> raw(1000, 0x42);
  std::vector<std::uint8_t> out;

  // Empty payload, unknown mode byte, RLE of the wrong length.
  EXPECT_FALSE(entropy_unpack(raw.data(), 0, 10, out));
  const std::vector<std::uint8_t> bad_mode{9, 1, 2, 3};
  EXPECT_FALSE(entropy_unpack(bad_mode.data(), bad_mode.size(), 10, out));
  const std::vector<std::uint8_t> long_rle{0, 0x42, 0x42};
  EXPECT_FALSE(entropy_unpack(long_rle.data(), long_rle.size(), 10, out));

  // A real tANS payload with a histogram that no longer sums to the table
  // size, and one with a truncated bitstream.
  std::vector<std::uint8_t> skewed(5000, 0x00);
  for (std::size_t i = 0; i < skewed.size(); i += 7) skewed[i] = 0x33;
  std::vector<std::uint8_t> packed;
  ASSERT_TRUE(entropy_pack(skewed.data(), skewed.size(), packed));
  std::vector<std::uint8_t> bad_hist = packed;
  bad_hist[1] = static_cast<std::uint8_t>(bad_hist[1] ^ 0x01);
  EXPECT_FALSE(
      entropy_unpack(bad_hist.data(), bad_hist.size(), skewed.size(), out));
  EXPECT_FALSE(entropy_unpack(packed.data(), packed.size() - 20,
                              skewed.size(), out));
}

}  // namespace
