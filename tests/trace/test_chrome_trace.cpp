#include "trace/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "trace/category.hpp"
#include "trace/collector.hpp"

namespace {

using namespace ncar;
using trace::Category;
using trace::Collector;
using trace::Mode;
using trace::TraceTrack;

class ChromeTraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    before_ = trace::mode();
    trace::set_mode(Mode::Full);
  }
  void TearDown() override { trace::set_mode(before_); }

  static std::string render(const std::vector<TraceTrack>& tracks) {
    std::ostringstream os;
    trace::write_chrome_trace(
        os, std::span<const TraceTrack>(tracks.data(), tracks.size()));
    return os.str();
  }

  Mode before_ = Mode::Off;
};

TEST_F(ChromeTraceTest, EmptyTrackListIsValidJson) {
  const std::string out = render({});
  EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(out.find("]}"), std::string::npos);
}

TEST_F(ChromeTraceTest, EmitsMetadataAndCompleteEvents) {
  Collector c(2.0);  // 2 seconds per tick: ts/dur scale by 2e6
  c.add(Category::VectorAdd, 1.0, 3.0, "vec");
  const std::string out =
      render({TraceTrack{&c, 0, 1, "node0", "cpu1"}});
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"node0\""), std::string::npos);
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"cpu1\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"vec\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"vector_add\""), std::string::npos);
  // ts = 1.0 tick * 2 s/tick * 1e6 us/s, dur = 3.0 * 2e6.
  EXPECT_NE(out.find("\"ts\":2e+06"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":6e+06"), std::string::npos);
}

TEST_F(ChromeTraceTest, EscapesTagStrings) {
  Collector c;
  const char* tag = c.intern("a\"b\\c\nd");
  c.add(Category::Other, 0.0, 1.0, tag);
  const std::string out = render({TraceTrack{&c, 0, 0, "node0", "cpu0"}});
  EXPECT_NE(out.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST_F(ChromeTraceTest, ByteIdenticalAcrossRenders) {
  Collector c(9.2e-9);
  c.add(Category::VectorMul, 100.0, 250.5, "vec");
  c.add(Category::Scalar, 350.5, 17.0, "scalar");
  const std::vector<TraceTrack> tracks = {
      TraceTrack{&c, 0, 1, "node0", "cpu0"}};
  EXPECT_EQ(render(tracks), render(tracks));
}

TEST(FormatDouble, ShortestRoundTrip) {
  EXPECT_EQ(trace::format_double(0.0), "0");
  EXPECT_EQ(trace::format_double(1.5), "1.5");
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(trace::format_double(v)), v);  // exact round trip
}

}  // namespace
